#!/usr/bin/env bash
# chaos_soak.sh — drive pbs-serve through fault-injected connections and
# require full convergence anyway.
#
# Usage:
#   scripts/chaos_soak.sh [workers] [duration] [scenario...]
#
# Defaults: 20 workers for 5s over every scenario. Scenarios:
#   drop     mid-frame disconnects
#   stall    frames frozen for 300ms
#   reset    immediate connection resets
#   corrupt  single-byte payload corruption
#   mixed    all of the above at lower rates
#   busy     no wire faults; an undersized server sheds the fleet with
#            busy hints instead (-reconnect so every sync re-admits)
#
# Each scenario gets its own pbs-serve instance and a reconnecting,
# retrying fleet (-chaos injects client-side faults; -retry redials with
# backoff and honors the server's retry-after hints). The pass criterion
# is the loadgen's post-run convergence check: per-sync failures are
# expected casualties, but every worker must end fully reconciled
# (unreconciled == 0). A markdown row per scenario goes to stdout and,
# when set, to $GITHUB_STEP_SUMMARY.
set -euo pipefail
cd "$(dirname "$0")/.."

workers="${1:-20}"
duration="${2:-5s}"
shift $(( $# > 2 ? 2 : $# )) || true
scenarios=("$@")
if [ ${#scenarios[@]} -eq 0 ]; then
  scenarios=(drop stall reset corrupt mixed busy)
fi

size=2000
diff=20
tmp="$(mktemp -d)"
srv=""
cleanup() {
  if [ -n "$srv" ] && kill -0 "$srv" 2>/dev/null; then
    kill -TERM "$srv" 2>/dev/null || true
    wait "$srv" 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbs-serve" ./cmd/pbs-serve
go build -o "$tmp/pbs-loadgen" ./cmd/pbs-loadgen

spec_for() {
  case "$1" in
    drop)    echo "drop=0.02,seed=7" ;;
    stall)   echo "stall=0.05,stall-ms=300,seed=7" ;;
    reset)   echo "reset=0.02,seed=7" ;;
    corrupt) echo "corrupt=0.02,seed=7" ;;
    mixed)   echo "drop=0.01,reset=0.01,corrupt=0.01,stall=0.02,stall-ms=200,seed=7" ;;
    busy)    echo "" ;;
    *)       echo "unknown scenario: $1" >&2; return 1 ;;
  esac
}

rows="$tmp/rows.md"
{
  echo "| scenario | syncs | errors | faults | retries | unreconciled |"
  echo "|---|---|---|---|---|---|"
} >"$rows"

for scenario in "${scenarios[@]}"; do
  spec="$(spec_for "$scenario")"

  serve_args=(-addr 127.0.0.1:0 -demo-size "$size" -demo-d "$diff" -demo-seed 1)
  load_args=(-workers "$workers" -duration "$duration"
             -size "$size" -diff "$diff" -workload-seed 1
             -retry -verify -json "$tmp/$scenario.json")
  if [ "$scenario" = busy ]; then
    # The overload scenario: fewer admitted sessions than workers, an
    # aggressive watermark, and a short hint the retry policy must honor.
    serve_args+=(-max-sessions $((workers / 2)) -soft-sessions $((workers / 4)) -retry-after 20ms)
    load_args+=(-reconnect -retry-attempts 10)
  else
    serve_args+=(-max-sessions $((workers * 2)))
    load_args+=(-chaos "$spec" -reconnect)
  fi

  log="$tmp/$scenario.serve.log"
  "$tmp/pbs-serve" "${serve_args[@]}" >"$log" 2>&1 &
  srv=$!
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/.*serving .* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log")"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    cat "$log" >&2
    echo "pbs-serve did not start for scenario $scenario" >&2
    exit 1
  fi

  echo "=== chaos scenario: $scenario (spec: ${spec:-server overload}) ==="
  "$tmp/pbs-loadgen" -addr "$addr" "${load_args[@]}"

  if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/$scenario.json" "$scenario" >>"$rows" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["unreconciled"] == 0, \
    f"{rep['unreconciled']} unreconciled: {rep.get('first_error','')}"
assert rep["syncs"] > 0, "no syncs completed"
print(f"| {sys.argv[2]} | {rep['syncs']} | {rep['errors']} "
      f"| {rep['faults_injected']} | {rep['retries']} | {rep['unreconciled']} |")
EOF
  else
    grep -q '"unreconciled": 0' "$tmp/$scenario.json" || {
      echo "scenario $scenario left workers unreconciled" >&2
      exit 1
    }
    echo "| $scenario | - | - | - | - | 0 |" >>"$rows"
  fi

  kill -TERM "$srv"
  wait "$srv" || { cat "$log" >&2; exit 1; }
  srv=""
  tail -n 1 "$log"
done

echo
cat "$rows"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  {
    echo "### Chaos soak ($workers workers, $duration per scenario)"
    echo
    cat "$rows"
  } >>"$GITHUB_STEP_SUMMARY"
fi
echo "chaos soak OK (${scenarios[*]})"
