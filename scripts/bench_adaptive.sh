#!/usr/bin/env bash
# bench_adaptive.sh — prove the online adaptive controller earns its keep:
# over real wire syncs (Set.Sync vs Set.Respond on net.Pipe), a warm
# adaptive Set with zero hand-set KnownD must spend no more wire bytes AND
# no more mean rounds per sync than the paper-fixed configuration (fresh
# Set per sync, WithAdaptive(false), stock DefaultSpeculativeD) at every
# difference size. Emits the comparison table to BENCH_adaptive.json.
#
# Usage:
#   scripts/bench_adaptive.sh [dmax] [syncs] [sizeA]
#
# Defaults run the full table (d in {10, 100, 1000, 10000}, 8 syncs per
# arm at |A| = 20000). The CI smoke pass trims it to the small regimes:
# `scripts/bench_adaptive.sh 100 6 8000`.
set -euo pipefail
cd "$(dirname "$0")/.."

dmax="${1:-10000}"
syncs="${2:-8}"
size="${3:-20000}"
out="BENCH_adaptive.json"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/pbs-experiments" ./cmd/pbs-experiments
"$tmp/pbs-experiments" -exp adaptive \
  -instances "$syncs" -sizeA "$size" -dmax "$dmax" -json "$out"

python3 - "$out" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
pts = rep["points"]
assert pts, "no data points"
for p in pts:
    d = p["d"]
    assert p["adaptive_bytes"] <= p["fixed_bytes"], \
        f"d={d}: adaptive put {p['adaptive_bytes']:.0f}B on the wire, fixed {p['fixed_bytes']:.0f}B"
    assert p["adaptive_rounds"] <= p["fixed_rounds"], \
        f"d={d}: adaptive used {p['adaptive_rounds']:.2f} mean rounds, fixed {p['fixed_rounds']:.2f}"
    print(f"d={d}: bytes {p['adaptive_bytes']:.0f} <= {p['fixed_bytes']:.0f}, "
          f"rounds {p['adaptive_rounds']:.2f} <= {p['fixed_rounds']:.2f}, "
          f"{p['replans_per_sync']:.2f} replans/sync")
print("bench_adaptive OK: adaptive <= paper-fixed on wire bytes and mean rounds at every d")
EOF
