#!/usr/bin/env bash
# Smoke-test the pbs-serve deployment pair end to end: start a server on
# an OS-assigned port, run one client sync against it (the client checks
# the learned difference against the workload ground truth), read the
# metrics endpoint, then SIGTERM the server and require a clean exit with
# the expected final stats line.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
bin="$tmp/pbs-serve"
log="$tmp/serve.log"

go build -o "$bin" ./cmd/pbs-serve

"$bin" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 \
  -demo-size 50000 -demo-d 200 -demo-seed 1 >"$log" 2>&1 &
srv=$!

addr="" metrics=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/.*serving .* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log")"
  metrics="$(sed -n 's/.*metrics on http:\/\/\(127\.0\.0\.1:[0-9]*\)\/.*/\1/p' "$log")"
  [ -n "$addr" ] && [ -n "$metrics" ] && break
  sleep 0.1
done
if [ -z "$addr" ] || [ -z "$metrics" ]; then
  cat "$log" >&2
  echo "pbs-serve did not start" >&2
  exit 1
fi

"$bin" -sync "$addr" -demo-size 50000 -demo-d 200 -demo-seed 1

if command -v curl >/dev/null 2>&1; then
  # The server accounts the session when it reads the client's closing
  # msgDone, which can land a beat after the client process exits: poll.
  ok=""
  for _ in $(seq 1 50); do
    if curl -fsS "http://$metrics/debug/vars" | grep -q '"Completed":1'; then
      ok=1
      break
    fi
    sleep 0.1
  done
  if [ -z "$ok" ]; then
    echo "metrics endpoint missing the completed session" >&2
    exit 1
  fi
fi

kill -TERM "$srv"
wait "$srv" # set -e: a non-zero server exit fails the smoke test

grep -q 'done: 1 completed, 0 failed, 0 rejected' "$log" || {
  cat "$log" >&2
  echo "unexpected final server stats" >&2
  exit 1
}
echo "pbs-serve smoke OK"
