#!/usr/bin/env bash
# bench_api.sh — run the API amortization benchmarks and emit
# machine-readable results to BENCH_api.json.
#
# Usage:
#   scripts/bench_api.sh [benchtime]
#
# benchtime is passed to `go test -benchtime` (default 1s; CI smoke uses
# a small fixed count). The JSON is an array of objects:
#   {"name", "iterations", "ns_per_op", "bytes_per_op", "allocs_per_op"}
# covering one full wire sync per iteration from warm, long-lived Set
# handles (BenchmarkAPI/warm-set) versus per-call construction through the
# legacy wrappers (BenchmarkAPI/cold-construct), so the Set API's
# amortization win — skipped re-validation, incremental ToW sketch, cached
# snapshot and partitions — is checkable by tooling.
set -euo pipefail

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
out="BENCH_api.json"

raw="$(go test -run '^$' -bench 'BenchmarkAPI' -benchmem \
	-benchtime "$benchtime" .)"

echo "$raw" | awk '
BEGIN { print "[" }
/^Benchmark/ {
	# BenchmarkAPI/warm-set/d=100-8  100  4659028 ns/op  123 B/op  4 allocs/op
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, $2, $3, $5, $7
}
END { if (n) printf "\n"; print "]" }
' >"$out"

echo "wrote $out:" >&2
cat "$out"
