#!/usr/bin/env bash
# bench_decode.sh — run the BCH decode-kernel benchmarks and emit
# machine-readable results to BENCH_decode.json.
#
# Usage:
#   scripts/bench_decode.sh [benchtime]
#
# benchtime is passed to `go test -benchtime` (default 1s; CI smoke uses
# 1x). The JSON is an array of objects:
#   {"name", "iterations", "ns_per_op", "bytes_per_op", "allocs_per_op"}
# covering both the workspace kernel (BenchmarkDecodeKernel) and the
# preserved pre-workspace baseline (BenchmarkDecodeKernelReference), so
# the speedup and the 0 allocs/op contract are checkable by tooling.
set -euo pipefail

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
out="BENCH_decode.json"

raw="$(go test -run '^$' -bench 'BenchmarkDecodeKernel' -benchmem \
	-benchtime "$benchtime" ./internal/bch/)"

echo "$raw" | awk '
BEGIN { print "[" }
/^Benchmark/ {
	# BenchmarkDecodeKernel/d=1000-8  30  3100255 ns/op  0 B/op  0 allocs/op
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, $2, $3, $5, $7
}
END { if (n) printf "\n"; print "]" }
' >"$out"

echo "wrote $out:" >&2
cat "$out"
