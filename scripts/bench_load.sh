#!/usr/bin/env bash
# bench_load.sh — measure what one pbs-serve process sustains under a
# concurrent warm-client fleet, and emit machine-readable results to
# BENCH_load.json.
#
# Usage:
#   scripts/bench_load.sh [workers] [duration] [size] [diff] [churn]
#
# Defaults (CI smoke): 500 workers for 10s against a |B|=1980 catalog with
# per-client |A|=2000 and d=20, churning 5 elements between syncs. The
# nightly soak raises the duration (e.g. `scripts/bench_load.sh 500 60s`).
#
# The script starts a pbs-serve on OS-assigned ports, runs the fleet
# closed-loop over warm connections (so `workers` is exactly the
# concurrent-session count), verifies every learned difference against the
# workload ground truth, checks the server's expvar endpoint exports the
# session histograms, and fails unless BENCH_load.json contains positive
# throughput and p50/p95/p99 latency entries.
set -euo pipefail
cd "$(dirname "$0")/.."

workers="${1:-500}"
duration="${2:-10s}"
size="${3:-2000}"
diff="${4:-20}"
churn="${5:-5}"
out="BENCH_load.json"

tmp="$(mktemp -d)"
srv=""
cleanup() {
  if [ -n "$srv" ] && kill -0 "$srv" 2>/dev/null; then
    kill -TERM "$srv" 2>/dev/null || true
    wait "$srv" 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbs-serve" ./cmd/pbs-serve
go build -o "$tmp/pbs-loadgen" ./cmd/pbs-loadgen

log="$tmp/serve.log"
"$tmp/pbs-serve" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 \
  -demo-size "$size" -demo-d "$diff" -demo-seed 1 \
  -max-sessions $((workers * 2)) >"$log" 2>&1 &
srv=$!

addr="" metrics=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/.*serving .* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log")"
  metrics="$(sed -n 's/.*metrics on http:\/\/\(127\.0\.0\.1:[0-9]*\)\/.*/\1/p' "$log")"
  [ -n "$addr" ] && [ -n "$metrics" ] && break
  sleep 0.1
done
if [ -z "$addr" ] || [ -z "$metrics" ]; then
  cat "$log" >&2
  echo "pbs-serve did not start" >&2
  exit 1
fi

"$tmp/pbs-loadgen" -addr "$addr" \
  -workers "$workers" -duration "$duration" \
  -size "$size" -diff "$diff" -churn "$churn" -workload-seed 1 \
  -verify -json "$out"

# The run must have measured real throughput and a full latency digest.
# The strict check runs whenever python3 exists (set -e fails the script
# on any assertion); only its complete absence selects the grep fallback.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out" "$workers" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
workers = int(sys.argv[2])
assert rep["workers"] == workers, f"workers {rep['workers']} != {workers}"
assert rep["syncs"] > 0, "no syncs"
assert rep["errors"] == 0, f"{rep['errors']} errors: {rep.get('first_error','')}"
assert rep["syncs_per_sec"] > 0, "no throughput"
assert rep["bytes_per_sec"] > 0, "no byte throughput"
lat = rep["latency_us"]
for q in ("p50", "p95", "p99"):
    assert lat[q] > 0, f"missing latency {q}"
assert lat["p50"] <= lat["p95"] <= lat["p99"], "latency quantiles not monotone"
print(f"BENCH_load.json OK: {rep['syncs']} syncs at {rep['syncs_per_sec']:.0f}/s, "
      f"p50={lat['p50']/1e3:.2f}ms p99={lat['p99']/1e3:.2f}ms")
EOF
else
  # No python3: minimal grep fallback for the required fields.
  for field in '"syncs_per_sec"' '"p50"' '"p95"' '"p99"'; do
    grep -q "$field" "$out" || { echo "missing $field in $out" >&2; exit 1; }
  done
  if ! grep -q '"errors": 0' "$out"; then
    echo "load run reported errors" >&2
    exit 1
  fi
fi

# Phase 2: loopback sync-latency probe. Latency and throughput need
# separate measurements: phase 1 loads the server with a closed-loop
# fleet, so its quantiles include queueing (on a small CI runner even a
# few concurrent workers serialize on the CPU and p50 degenerates to
# workers/throughput). A single closed-loop worker keeps exactly one
# sync in flight, so p50 here measures what the protocol actually costs
# end to end — the single-RTT fast path must land it at or under 1ms —
# and the quantiles are exported in benchgate format and gated against
# the committed BENCH_latency baseline (wide tolerance: wall-clock
# latency on shared CI runners jitters far more than the in-process
# benchmarks do).
lat_out="BENCH_latency.json"
"$tmp/pbs-loadgen" -addr "$addr" \
  -workers 1 -duration 5s \
  -size "$size" -diff "$diff" -churn "$churn" -workload-seed 1 \
  -verify -json "$tmp/latency_report.json" -latency-bench "$lat_out"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$lat_out" <<'EOF'
import json, sys
entries = {e["name"]: e for e in json.load(open(sys.argv[1]))}
p50_us = entries["SyncLatency/p50"]["ns_per_op"] / 1e3
assert p50_us > 0, "no p50 latency measured"
assert p50_us <= 1000, f"loopback sync p50 {p50_us:.0f}us exceeds the 1ms budget"
print(f"BENCH_latency.json OK: loopback sync p50={p50_us:.0f}us")
EOF
else
  grep -q '"SyncLatency/p50"' "$lat_out" || {
    echo "missing SyncLatency/p50 in $lat_out" >&2
    exit 1
  }
fi
go run ./cmd/pbs-benchgate \
  -baseline testdata/bench_baselines/BENCH_latency.json \
  -current "$lat_out" -max-ns-regress 1.5

# Phase 3: the same fleet multiplexed — `workers` workers sharing sockets
# 32-ways through the version-2 framed protocol (500 workers ride 16
# connections), against the same server, so the final clean-drain check
# covers the muxed sessions too. Gate: multiplexing must not cost
# throughput relative to the unmuxed smoke of phase 1.
mux_streams=32
mux_out="$tmp/mux_report.json"
"$tmp/pbs-loadgen" -addr "$addr" \
  -workers "$workers" -duration "$duration" \
  -size "$size" -diff "$diff" -churn "$churn" -workload-seed 1 \
  -mux "$mux_streams" -verify -json "$mux_out"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$mux_out" "$out" "$workers" "$mux_streams" <<'EOF'
import json, sys
mux = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
workers, streams = int(sys.argv[3]), int(sys.argv[4])
conns = -(-workers // streams)
assert mux["workers"] == workers, f"workers {mux['workers']} != {workers}"
assert mux.get("mux_streams") == streams and mux.get("mux_conns") == conns, \
    f"mux shape {mux.get('mux_streams')}x{mux.get('mux_conns')}, want {streams} streams over {conns} conns"
assert mux["syncs"] > 0, "no muxed syncs"
assert mux["errors"] == 0, f"{mux['errors']} errors: {mux.get('first_error','')}"
# Sharing sockets must not cost throughput: the muxed fleet has to keep
# pace with phase 1's one-socket-per-worker rate. 10% measurement slack —
# two 10s wall-clock runs on a shared CI runner never land on the same
# number, and the regression this guards against (streams serializing
# behind one another) would cost far more than 10%.
floor = 0.9 * base["syncs_per_sec"]
assert mux["syncs_per_sec"] >= floor, \
    f"muxed throughput {mux['syncs_per_sec']:.0f}/s below unmuxed floor {floor:.0f}/s"
print(f"mux OK: {mux['syncs']} syncs at {mux['syncs_per_sec']:.0f}/s "
      f"({streams} streams/conn over {mux['mux_conns']} conns; unmuxed {base['syncs_per_sec']:.0f}/s)")
EOF
else
  grep -q '"mux_conns"' "$mux_out" || { echo "missing mux_conns in $mux_out" >&2; exit 1; }
  if ! grep -q '"errors": 0' "$mux_out"; then
    echo "mux load run reported errors" >&2
    exit 1
  fi
fi

# The server must export the session histograms and mux counters on expvar.
if command -v curl >/dev/null 2>&1; then
  vars="$(curl -fsS "http://$metrics/debug/vars")"
  for key in LatencyUS SessionRounds SessionBytes StreamsOpen StreamsTotal BytesSavedCompression; do
    echo "$vars" | grep -q "\"$key\"" || {
      echo "metrics endpoint missing $key" >&2
      exit 1
    }
  done
fi

kill -TERM "$srv"
wait "$srv" || { cat "$log" >&2; exit 1; }
srv=""
tail -n 1 "$log"
# A clean run drains: every server-side session completed, none failed.
grep -Eq 'done: [1-9][0-9]* completed, 0 failed, 0 rejected' "$log" || {
  echo "server saw failed or rejected sessions" >&2
  exit 1
}
echo "pbs-loadgen smoke OK ($workers concurrent sessions)"

# Phase 4: chaos smoke — a short fault-injected run (own server
# instances, so the clean-drain grep above is unaffected) proves the
# retrying fleet converges through mid-frame disconnects and mixed
# faults. The nightly soak runs the full scenario matrix for longer.
scripts/chaos_soak.sh 20 5s drop mixed
