#!/usr/bin/env bash
# bench_manysets.sh — prove one pbs-serve process hosts far more named
# sets than fit under its resident-memory cap, with exact convergence,
# and emit machine-readable results to BENCH_manysets.json.
#
# Usage:
#   scripts/bench_manysets.sh [sets] [workers] [duration] [size] [diff] [zipf]
#
# Defaults (CI smoke): 10000 hosted sets of 400 elements, a resident cap
# sized for ~5% of them, and 32 workers syncing zipf-skewed (s=1.2) random
# catalog sets for 15s with ground-truth verification. The nightly soak
# raises the catalog (e.g. `scripts/bench_manysets.sh 100000 64 60s`).
#
# The script starts pbs-serve in hosting mode (-data-dir, -host-sets, a
# deliberately small -max-resident-bytes) on OS-assigned ports, drives it
# with pbs-loadgen -sets -verify, and fails unless: every sync verified
# exactly (0 errors), the eviction machinery actually ran (ColdLoads > 0
# and Evictions > 0 on expvar — i.e. the run really served sets colder
# than memory), resident bytes stayed near the cap, and the server
# drained cleanly. A restart pass then recovers the whole catalog from
# the data dir and re-verifies syncs against recovered (cold) sets.
set -euo pipefail
cd "$(dirname "$0")/.."

sets="${1:-10000}"
workers="${2:-32}"
duration="${3:-15s}"
size="${4:-400}"
diff="${5:-12}"
zipf="${6:-1.2}"
out="BENCH_manysets.json"

# Resident cap: room for ~5% of the catalog (per-set resident charge is
# 8 bytes/element plus fixed overhead), floored at 10 sets so tiny
# parameterizations still run.
per_set=$((size * 8 + 256))
cap=$((per_set * sets / 20))
[ "$cap" -lt $((per_set * 10)) ] && cap=$((per_set * 10))

tmp="$(mktemp -d)"
srv=""
cleanup() {
  if [ -n "$srv" ] && kill -0 "$srv" 2>/dev/null; then
    kill -TERM "$srv" 2>/dev/null || true
    wait "$srv" 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbs-serve" ./cmd/pbs-serve
go build -o "$tmp/pbs-loadgen" ./cmd/pbs-loadgen

start_server() { # args: logfile [extra flags...]
  local log="$1"
  shift
  "$tmp/pbs-serve" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 \
    -data-dir "$tmp/data" -max-resident-bytes "$cap" \
    -max-sessions $((workers * 2)) "$@" >"$log" 2>&1 &
  srv=$!
  # Hosting a large catalog persists one segment per set before the
  # listener comes up; wait generously (100k sets can take minutes on a
  # slow CI disk).
  addr="" metrics=""
  for _ in $(seq 1 1200); do
    addr="$(sed -n 's/.*serving .* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log")"
    metrics="$(sed -n 's/.*metrics on http:\/\/\(127\.0\.0\.1:[0-9]*\)\/.*/\1/p' "$log")"
    [ -n "$addr" ] && [ -n "$metrics" ] && break
    kill -0 "$srv" 2>/dev/null || break
    sleep 0.5
  done
  if [ -z "$addr" ] || [ -z "$metrics" ]; then
    cat "$log" >&2
    echo "pbs-serve did not start" >&2
    exit 1
  fi
}

check_report() { # args: report expected_sets
  python3 - "$1" "$2" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
sets = int(sys.argv[2])
assert rep.get("sets") == sets, f"sets {rep.get('sets')} != {sets}"
assert rep["syncs"] > 0, "no syncs"
assert rep["errors"] == 0, f"{rep['errors']} errors: {rep.get('first_error','')}"
assert rep["syncs_per_sec"] > 0, "no throughput"
print(f"many-sets run OK: {rep['syncs']} verified syncs at {rep['syncs_per_sec']:.0f}/s "
      f"across {sets} sets (zipf s={rep.get('zipf_s') or 'uniform'})")
EOF
}

check_metrics() { # args: metrics_addr expected_sets cap mode
  # mode: "full" requires the eviction machinery to have cycled (cold
  # loads AND evictions); "cold" requires only cold loads — the short
  # post-restart pass starts all-cold and may never refill the cap.
  curl -fsS "http://$1/debug/vars" >"$tmp/vars.json"
  python3 - "$tmp/vars.json" "$2" "$3" "$4" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))["pbs_serve"]
sets, cap, mode = int(sys.argv[2]), int(sys.argv[3]), sys.argv[4]
assert st["SetsHosted"] == sets, f"SetsHosted {st['SetsHosted']} != {sets}"
assert st["SetsResident"] < sets, "every set resident: the cap never bit"
# One in-flight promotion may briefly overshoot before eviction settles.
assert st["ResidentBytes"] <= cap * 1.5, \
    f"ResidentBytes {st['ResidentBytes']} far above cap {cap}"
assert st["ColdLoads"] > 0, "no cold loads: the run never touched an evicted set"
if mode == "full":
    assert st["Evictions"] > 0, "no evictions: the working set fit in the cap"
assert st["Failed"] == 0, f"{st['Failed']} failed sessions"
print(f"expvar OK: {st['SetsHosted']} hosted, {st['SetsResident']} resident "
      f"({st['ResidentBytes']} B <= ~{cap} B), {st['ColdLoads']} cold loads, "
      f"{st['Evictions']} evictions, {st['SegmentMerges']} merges")
EOF
}

# Phase 1: host the catalog fresh and load it.
log="$tmp/serve.log"
start_server "$log" -host-sets "$sets" -host-size "$size" -demo-seed 1

"$tmp/pbs-loadgen" -addr "$addr" \
  -workers "$workers" -duration "$duration" \
  -sets "$sets" -size "$size" -diff "$diff" -zipf "$zipf" \
  -workload-seed 1 -verify -json "$out"

check_report "$out" "$sets"
check_metrics "$metrics" "$sets" "$cap" full

kill -TERM "$srv"
wait "$srv" || { cat "$log" >&2; exit 1; }
srv=""
grep -Eq 'done: [1-9][0-9]* completed, 0 failed, 0 rejected' "$log" || {
  cat "$log" >&2
  echo "server saw failed or rejected sessions" >&2
  exit 1
}

# Phase 2: restart from the data dir alone — every set must come back
# (cold, serving hello estimates from its persisted sketch) and verify
# exactly under a short second fleet.
log2="$tmp/serve2.log"
start_server "$log2"
grep -Eq "hosting $sets sets \($sets recovered" "$log2" || {
  cat "$log2" >&2
  echo "restart did not recover the full catalog" >&2
  exit 1
}

"$tmp/pbs-loadgen" -addr "$addr" \
  -workers "$workers" -syncs 3 \
  -sets "$sets" -size "$size" -diff "$diff" -zipf "$zipf" \
  -workload-seed 1 -verify -json "$tmp/recovered.json"

check_report "$tmp/recovered.json" "$sets"
check_metrics "$metrics" "$sets" "$cap" cold

kill -TERM "$srv"
wait "$srv" || { cat "$log2" >&2; exit 1; }
srv=""
grep -Eq 'done: [1-9][0-9]* completed, 0 failed, 0 rejected' "$log2" || {
  cat "$log2" >&2
  echo "server saw failed or rejected sessions after recovery" >&2
  exit 1
}

echo "bench_manysets OK: $sets sets hosted under a $cap B resident cap, exact convergence before and after restart"
