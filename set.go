package pbs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pbs/internal/core"
	"pbs/internal/estimator"
)

// Set is a long-lived, mutable, concurrency-safe set handle and the primary
// entry point of the package: build it once, mutate it with Add/Remove as
// the underlying data changes, and reconcile it any number of times — as
// the initiator (Sync), the responder (Respond), a concurrent server
// (Serve), or fully in process (Reconcile).
//
// The handle is what makes repeated reconciliation cheap. Element
// validation happens once, at insertion. The Tug-of-War estimator sketch is
// maintained incrementally — O(ℓ) per Add/Remove, never re-sketched — so
// the estimation phase of every sync starts for free. The validated
// snapshot, the per-plan group partitions, and the strong-verification
// digest are computed lazily and cached until the next mutation, then
// shared read-only by every concurrent session. This is the amortization
// that lets one process carry thousands of syncs per second against the
// same data (see Server), now available to both protocol roles.
//
// All methods are safe for concurrent use. Mutating the set while a sync is
// in flight is safe: each sync operates on the immutable view current when
// it started, and later syncs pick up the mutations.
type Set struct {
	cfg setConfig
	tow *estimator.ToW

	// specPrior seeds the fast path's speculative difference bound: the
	// size of the last difference a wire Sync learned, plus one (zero
	// means no sync has completed yet). Churn between syncs is usually a
	// fraction of the last delta, so the previous outcome is the best
	// available predictor of the next.
	specPrior atomic.Uint64
	// specAvoid is the last speculative bound whose round failed to decode
	// in one round trip. Whether a given plan decodes a given difference
	// is a per-(plan, hash) draw, so on a quiet set the same speculation
	// would replay the same failing plan sync after sync; remembering the
	// loser and hopping to a nearby bound re-rolls the partition instead.
	specAvoid atomic.Uint64

	// prior is the learned EWMA over realized difference cardinalities,
	// fed by every completed sync and consulted by the adaptive controller
	// (see WithAdaptive) to size speculation and select estimators. It
	// subsumes specPrior's single-outcome memory with a smoothed regime
	// estimate; specPrior stays as the legacy heuristic's input and the
	// adaptive path's most-recent-outcome floor.
	prior dhatPrior

	mu    sync.RWMutex
	elems map[uint64]struct{}
	// sketch is the incrementally maintained ToW sketch, built on the
	// first operation that needs an estimate (nil until then, so handles
	// that only ever reconcile with WithKnownD never pay for it) and kept
	// exact under Add/Remove afterwards.
	sketch []int64
	shared *SharedSet // immutable view, nil when stale
}

// setConfig is the resolved configuration a Set call runs under: the
// protocol Options plus the call-scoped extras that functional options
// control. Options given to NewSet become the Set's defaults; options given
// to Sync/Serve/Respond/Reconcile override them for that call only.
type setConfig struct {
	opt      Options
	onDelta  func(elems []uint64, round int)
	setName  string
	fastSync bool
	// adaptiveOff inverts WithAdaptive so the zero value keeps the
	// adaptive controller on by default.
	adaptiveOff bool

	maxSessions       int
	idleTimeout       time.Duration
	sessionByteBudget int64
	sessionMaxRounds  int

	retry *RetryPolicy
}

// Option configures a Set or a single reconciliation call. Structural
// options (WithSeed, WithSigBits, WithEstimatorSketches) bind the cached
// snapshot and sketch and are therefore fixed at NewSet; passing a
// different value to a per-call site returns an error from that call.
type Option func(*setConfig)

// WithOptions applies a flat Options struct wholesale — the migration
// bridge from the pre-Set API. Later options override individual fields.
func WithOptions(o Options) Option { return func(c *setConfig) { c.opt = o } }

// WithSeed sets the shared protocol hash seed. Both parties must agree.
// Structural: fixed at NewSet.
func WithSeed(seed uint64) Option { return func(c *setConfig) { c.opt.Seed = seed } }

// WithSigBits sets the element signature width log|U| in bits (8..64).
// Structural: fixed at NewSet.
func WithSigBits(bits uint) Option { return func(c *setConfig) { c.opt.SigBits = bits } }

// WithEstimatorSketches sets the ToW sketch count ℓ (default 128).
// Structural: fixed at NewSet.
func WithEstimatorSketches(l int) Option {
	return func(c *setConfig) { c.opt.EstimatorSketches = l }
}

// WithGamma sets the conservative scale applied to the difference estimate
// (default 1.38).
func WithGamma(g float64) Option { return func(c *setConfig) { c.opt.Gamma = g } }

// WithDelta sets the target average number of distinct elements per group.
func WithDelta(delta int) Option { return func(c *setConfig) { c.opt.Delta = delta } }

// WithTargetRounds sets the round budget r the parameter optimizer plans
// for.
func WithTargetRounds(r int) Option { return func(c *setConfig) { c.opt.TargetRounds = r } }

// WithTargetSuccess sets the probability p0 of completing within the
// target rounds.
func WithTargetSuccess(p float64) Option {
	return func(c *setConfig) { c.opt.TargetSuccess = p }
}

// WithKnownD asserts |A△B| <= d, skipping the estimation phase where the
// protocol allows it (in-process Reconcile; wire sessions always run the
// one-round-trip estimate exchange so both endpoints derive the plan from
// the same value).
func WithKnownD(d int) Option { return func(c *setConfig) { c.opt.KnownD = d } }

// WithMaxD caps the difference estimate d̂ a wire session will accept
// before deriving a plan from it — the hostile-peer allocation guard. See
// Options.MaxD for the full semantics.
func WithMaxD(d int) Option { return func(c *setConfig) { c.opt.MaxD = d } }

// WithMaxRounds caps protocol rounds (0 selects the DefaultMaxRounds
// safety cap).
func WithMaxRounds(n int) Option { return func(c *setConfig) { c.opt.MaxRounds = n } }

// WithStrongVerify toggles the §2.2.3 strong multiset-hash verification
// exchange at the end of the session.
func WithStrongVerify(on bool) Option { return func(c *setConfig) { c.opt.StrongVerify = on } }

// WithParallelism sets the local worker count for per-group encoding and
// decoding (0 = GOMAXPROCS). Purely local: it never changes wire bytes.
func WithParallelism(n int) Option { return func(c *setConfig) { c.opt.Parallelism = n } }

// WithOnDelta streams the learned difference as it is learned: fn is
// invoked after each round with the elements of every group pair that
// passed checksum verification in that round, in sorted order, plus the
// 1-based round number. PBS is piecewise reconciliable — each group pair
// decodes independently — so the vast majority of differences arrive in
// the first round even when a few groups need more; WithOnDelta is that
// property expressed in the API, instead of buried until Result.
//
// fn is called from the session's own goroutine, never concurrently, and
// only for rounds that verified at least one new element; the batch may be
// retained. It applies to the initiator-side calls (Sync, Reconcile) —
// responders do not learn the difference. The callback must not block for
// long: the next round's message is not sent until it returns.
func WithOnDelta(fn func(elems []uint64, round int)) Option {
	return func(c *setConfig) { c.onDelta = fn }
}

// WithFastSync selects the single-RTT fast path for Sync: the opening
// frame carries the protocol version, the set name, the estimator
// sketches, and a speculative first round sized from WithKnownD, the
// previous sync's outcome, or DefaultSpeculativeD — so a warm sync whose
// speculation holds completes in one round trip instead of two-plus. A
// responder that predates the fast path answers with msgError; Sync
// surfaces that as ErrFastSyncRejected (wrapped), and the caller retries
// over a fresh connection without this option (Client automates exactly
// that). Off by default so existing deployments keep byte-identical
// wire streams; Respond and Serve answer both flows regardless.
func WithFastSync(on bool) Option { return func(c *setConfig) { c.fastSync = on } }

// WithSetName names a registry entry. On Sync it selects the remote set to
// reconcile against (sent as the session's opening hello frame; empty
// means the server's DefaultSetName). On Serve it additionally publishes
// the served set under this name alongside DefaultSetName. Respond and
// Reconcile have no registry and ignore it.
func WithSetName(name string) Option { return func(c *setConfig) { c.setName = name } }

// WithIdleTimeout bounds how long a sync waits for a single frame (and for
// a single frame write): a peer silent for longer fails the session with a
// timeout instead of hanging it forever. It requires a deadline-capable
// connection (net.Conn); on a bare io.ReadWriter it is ignored. For Serve
// it is the per-session idle deadline (ServerOptions.IdleTimeout:
// 0 selects DefaultIdleTimeout, negative disables). For Sync and Respond,
// 0 means no idle bound.
func WithIdleTimeout(d time.Duration) Option {
	return func(c *setConfig) { c.idleTimeout = d }
}

// WithMaxSessions caps a Serve call's concurrently open connections
// (ServerOptions.MaxSessions semantics).
func WithMaxSessions(n int) Option { return func(c *setConfig) { c.maxSessions = n } }

// WithSessionByteBudget caps the total wire bytes of one served session
// (ServerOptions.SessionByteBudget semantics).
func WithSessionByteBudget(n int64) Option {
	return func(c *setConfig) { c.sessionByteBudget = n }
}

// WithSessionMaxRounds caps the rounds answered in one served session
// (ServerOptions.SessionMaxRounds semantics).
func WithSessionMaxRounds(n int) Option {
	return func(c *setConfig) { c.sessionMaxRounds = n }
}

// WithRetry makes Sync retry retryable failures (see Retryable for the
// taxonomy) under p: exponential backoff with full jitter between
// attempts, honoring any retry-after hint from a shed-load server. With a
// policy set, Sync accepts a nil conn and dials every attempt through
// p.Dial; when a caller-provided conn's first attempt fails, Sync closes
// it (the stream state is unknown) and re-dials. Retried attempts reuse
// the d̂ prior learned before the failure, so a resumed fast sync usually
// completes in a single round trip.
func WithRetry(p RetryPolicy) Option {
	return func(c *setConfig) { c.retry = &p }
}

// sigMaskFor returns the valid-element mask for a signature width.
func sigMaskFor(bits uint) uint64 {
	if bits == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

// NewSet validates elems once and returns a reusable set handle. Elements
// must be nonzero, distinct, and fit in the configured SigBits. The one-off
// costs are O(|S|) validation here and the O(|S|·ℓ) initial estimator
// sketch on the first sync that estimates; after that, mutation costs O(ℓ)
// per element and every reconciliation starts from the warm state.
func NewSet(elems []uint64, opts ...Option) (*Set, error) {
	var cfg setConfig
	for _, o := range opts {
		o(&cfg)
	}
	cfg.opt = cfg.opt.withDefaults()
	if err := cfg.opt.validate(); err != nil {
		return nil, err
	}
	tow, err := estimator.NewToW(cfg.opt.EstimatorSketches, cfg.opt.Seed^towSeedTweak)
	if err != nil {
		return nil, err
	}
	mask := sigMaskFor(cfg.opt.SigBits)
	set := make(map[uint64]struct{}, len(elems))
	for _, x := range elems {
		if x == 0 || x&^mask != 0 {
			return nil, fmt.Errorf("pbs: element %#x outside %d-bit universe (0 excluded)", x, cfg.opt.SigBits)
		}
		if _, dup := set[x]; dup {
			return nil, fmt.Errorf("pbs: duplicate element %#x", x)
		}
		set[x] = struct{}{}
	}
	return &Set{
		cfg:   cfg,
		tow:   tow,
		elems: set,
	}, nil
}

// Len returns the current number of elements.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.elems)
}

// Contains reports whether x is currently in the set.
func (s *Set) Contains(x uint64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.elems[x]
	return ok
}

// Elements returns a copy of the current elements, in no particular order.
func (s *Set) Elements() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, 0, len(s.elems))
	for x := range s.elems {
		out = append(out, x)
	}
	return out
}

// Add inserts elements, returning how many were actually new (already
// present elements are no-ops). Invalid elements — zero, or wider than the
// set's SigBits — fail the whole call before anything is inserted. Each
// insertion updates the estimator sketch incrementally in O(ℓ).
func (s *Set) Add(xs ...uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mask := sigMaskFor(s.cfg.opt.SigBits)
	for _, x := range xs {
		if x == 0 || x&^mask != 0 {
			return 0, fmt.Errorf("pbs: element %#x outside %d-bit universe (0 excluded)", x, s.cfg.opt.SigBits)
		}
	}
	added := 0
	for _, x := range xs {
		if _, ok := s.elems[x]; ok {
			continue
		}
		s.elems[x] = struct{}{}
		if s.sketch != nil {
			s.tow.Add(s.sketch, x)
		}
		added++
	}
	if added > 0 {
		s.shared = nil
	}
	return added, nil
}

// Remove deletes elements, returning how many were actually present.
// Absent elements are no-ops. Each removal updates the estimator sketch
// incrementally in O(ℓ) — the ToW sketch is a linear ±1 sketch, so removal
// is exact cancellation, not recomputation.
func (s *Set) Remove(xs ...uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, x := range xs {
		if _, ok := s.elems[x]; !ok {
			continue
		}
		delete(s.elems, x)
		if s.sketch != nil {
			s.tow.Remove(s.sketch, x)
		}
		removed++
	}
	if removed > 0 {
		s.shared = nil
	}
	return removed
}

// sharedView returns the cached immutable view of the set (with its
// estimator sketch materialized), rebuilding it after a mutation. The
// rebuild collects the elements and re-derives the snapshot, but never
// re-validates elements (they were validated at insertion) and never
// re-sketches (the sketch is maintained incrementally); the per-plan group
// partitions and the verification digest are then re-cached lazily inside
// the view as sessions need them.
func (s *Set) sharedView() (*SharedSet, error) {
	return s.view(true)
}

// view returns the cached immutable view. withSketch additionally
// materializes the set's incrementally maintained ToW sketch into the
// view; callers that cannot need an estimate (a known-d in-process
// reconcile) pass false and skip the sketch entirely.
func (s *Set) view(withSketch bool) (*SharedSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shared == nil {
		elems := make([]uint64, 0, len(s.elems))
		for x := range s.elems {
			elems = append(elems, x)
		}
		snap, err := core.NewValidatedSnapshot(elems, s.cfg.opt.coreConfig())
		if err != nil {
			return nil, err
		}
		s.shared = &SharedSet{opt: s.cfg.opt, snap: snap, tow: s.tow}
	}
	if withSketch {
		if s.sketch == nil {
			// First estimate-needing operation on this handle: build the
			// sketch once; Add/Remove keep it exact from here on.
			ys := make([]int64, s.tow.L())
			for x := range s.elems {
				s.tow.Add(ys, x)
			}
			s.sketch = ys
		}
		sketch := append([]int64(nil), s.sketch...)
		// A no-op if a session already forced the view's own lazy
		// computation — which used the same immutable snapshot, so the
		// values agree.
		s.shared.sketchOnce.Do(func() { s.shared.sketch = sketch })
	}
	return s.shared, nil
}

// sessionOptions makes a Set a Server registry source (see RegisterSet):
// sessions admitted against it run under the Set's own options.
func (s *Set) sessionOptions() Options { return s.cfg.opt }

// callConfig resolves one call's configuration: the Set's defaults with the
// per-call options applied, rejecting changes to the structural fields the
// cached state was built under.
func (s *Set) callConfig(opts []Option) (setConfig, error) {
	cfg := s.cfg
	for _, o := range opts {
		o(&cfg)
	}
	// Re-resolve defaults: zero values introduced by per-call options
	// (e.g. a wholesale WithOptions bridge with SigBits or Gamma unset)
	// mean "default", exactly as they do at NewSet.
	cfg.opt = (&cfg.opt).withDefaults()
	base := s.cfg.opt
	switch {
	case cfg.opt.Seed != base.Seed:
		return setConfig{}, fmt.Errorf("pbs: Seed is structural and fixed at NewSet (have %#x, call asked for %#x)", base.Seed, cfg.opt.Seed)
	case cfg.opt.SigBits != base.SigBits:
		return setConfig{}, fmt.Errorf("pbs: SigBits is structural and fixed at NewSet (have %d, call asked for %d)", base.SigBits, cfg.opt.SigBits)
	case cfg.opt.EstimatorSketches != base.EstimatorSketches:
		return setConfig{}, fmt.Errorf("pbs: EstimatorSketches is structural and fixed at NewSet (have %d, call asked for %d)", base.EstimatorSketches, cfg.opt.EstimatorSketches)
	}
	if err := cfg.opt.validate(); err != nil {
		return setConfig{}, err
	}
	return cfg, nil
}

// Sync reconciles this set against a remote responder over conn, as the
// initiator (the side that learns the difference). It blocks until the
// exchange completes, the context is cancelled or expires, or the
// connection fails. The remote side runs Respond, Serve, or a
// server-driven responder session with matching options.
//
// ctx cancellation and deadline are plumbed into the connection's
// read/write deadlines when conn supports them (any net.Conn does), so a
// cancelled sync unblocks immediately and returns ctx.Err(); on a bare
// io.ReadWriter, cancellation is only observed between frames. WithOnDelta
// streams verified difference elements round by round; WithSetName
// addresses a named set on a Server.
func (s *Set) Sync(ctx context.Context, conn io.ReadWriter, opts ...Option) (*Result, error) {
	cfg, err := s.callConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.retry == nil {
		if conn == nil {
			return nil, errors.New("pbs: Sync needs a connection (or a WithRetry policy with a Dial hook)")
		}
		return s.syncAttempt(ctx, conn, &cfg)
	}
	nc, _ := conn.(net.Conn)
	if conn != nil && nc == nil {
		// Retrying needs Close; a bare io.ReadWriter can only run once.
		return s.syncAttempt(ctx, conn, &cfg)
	}
	return s.syncRetry(ctx, nc, &cfg)
}

// syncAttempt runs one sync exchange over conn. The shared snapshot is
// re-resolved per attempt, so a retry picks up any set churn since the
// failed try.
func (s *Set) syncAttempt(ctx context.Context, conn io.ReadWriter, cfg *setConfig) (*Result, error) {
	ss, err := s.sharedView()
	if err != nil {
		return nil, err
	}
	// A negotiating mux stream asks to fold its feature offer into the
	// fast hello; the offer only exists on the fast path, where the hello
	// reply is the one frame that can carry the answer back.
	var features uint64
	if fr, ok := conn.(featureRequester); ok {
		features = fr.muxFeatureRequest()
	}
	var res *Result
	if cfg.fastSync {
		spec := s.adaptiveSpeculativeD(cfg)
		is, opening, err := ss.newFastInitiatorSessionFeatures(cfg.opt, cfg.onDelta, cfg.setName, spec, features, !cfg.adaptiveOff)
		if err != nil {
			return nil, err
		}
		if res, err = runInitiator(ctx, conn, is, opening, cfg.idleTimeout); err != nil {
			// Even a failed session may have learned the peer's d̂; seed
			// the speculation prior with it so a retry sizes its first
			// round right and usually completes in one round trip.
			if d := is.dhat; d > 0 {
				s.specPrior.Store(d + 1)
			}
			return nil, err
		}
		if res != nil && res.Complete && res.Rounds > 1 {
			s.specAvoid.Store(spec)
		}
	} else {
		if features != 0 {
			return nil, errors.New("pbs: mux negotiation requires the fast-path sync (WithFastSync)")
		}
		is, opening := ss.newInitiatorSession(cfg.opt, cfg.onDelta)
		if cfg.setName != "" {
			opening = append([]Frame{{msgHello, []byte(cfg.setName)}}, opening...)
		}
		if res, err = runInitiator(ctx, conn, is, opening, cfg.idleTimeout); err != nil {
			if d := is.dhat; d > 0 {
				s.specPrior.Store(d + 1)
			}
			return nil, err
		}
		if res != nil && cfg.setName != "" {
			// The hello envelope is this side's extra cost; fold it in so
			// WireBytes stays reconcilable with the server's BytesIn.
			res.WireBytes += 5 + len(cfg.setName)
		}
	}
	if res != nil && res.Complete {
		// Remember the outcome to size the next fast sync's speculation:
		// the raw value for the legacy heuristic, and folded into the
		// learned EWMA prior the adaptive controller predicts from.
		s.specPrior.Store(uint64(len(res.Difference)) + 1)
		s.prior.observe(float64(len(res.Difference)))
	}
	return res, nil
}

// DefaultSpeculativeD is the speculative difference bound a fast sync
// opens with when neither WithKnownD nor a previous sync's outcome is
// available to size it. At the default δ it buys a first round of a few
// KiB — cheap enough to waste, large enough that most warm syncs finish
// in it.
const DefaultSpeculativeD = 128

// speculativeD sizes the fast path's speculative first round: an
// explicit WithKnownD wins, then the last wire sync's difference plus a
// small headroom, then DefaultSpeculativeD for a cold handle. The prior
// is an exact count (not a noisy estimate), and the plan derivation
// multiplies by Gamma on top, so the headroom only has to absorb churn
// between syncs — oversizing it inflates the BCH work on both sides of
// every sync, which on a loopback link costs more than the round trip
// the speculation exists to save.
func (s *Set) speculativeD(opt Options) uint64 {
	if opt.KnownD > 0 {
		return uint64(opt.KnownD)
	}
	p := s.specPrior.Load()
	if p == 0 {
		return DefaultSpeculativeD
	}
	d := p - 1
	spec := d + d/8 + 8
	if bad := s.specAvoid.Load(); bad != 0 && spec == bad {
		// This exact bound just cost an extra round; a nearby larger one
		// derives a different plan and so a fresh partition draw.
		spec = bad + bad/8 + 4
	}
	return spec
}

// Respond serves exactly one initiator session over conn — the peer-to-peer
// responder role (the counterpart of a remote Sync). It returns nil when
// the initiator signals completion, and ctx.Err() if the context ends
// first. For many concurrent sessions, use Serve instead.
func (s *Set) Respond(ctx context.Context, conn io.ReadWriter, opts ...Option) error {
	cfg, err := s.callConfig(opts)
	if err != nil {
		return err
	}
	ss, err := s.sharedView()
	if err != nil {
		return err
	}
	return runResponder(ctx, conn, ss.newResponderSession(cfg.opt), cfg.idleTimeout)
}

// Serve answers reconciliation sessions concurrently on ln until ctx ends,
// then tears the server down and returns ctx.Err(). Every session
// reconciles against this set's current immutable view (sessions in flight
// across a mutation keep the view they started with), under the per-session
// limits of WithMaxSessions, WithIdleTimeout, WithSessionByteBudget, and
// WithSessionMaxRounds. For registry-style deployments serving several
// named sets — or drain-first shutdown — use Server directly and register
// the Set with RegisterSet.
func (s *Set) Serve(ctx context.Context, ln net.Listener, opts ...Option) error {
	cfg, err := s.callConfig(opts)
	if err != nil {
		return err
	}
	srv := NewServer(ServerOptions{
		Protocol:          &cfg.opt,
		MaxSessions:       cfg.maxSessions,
		IdleTimeout:       cfg.idleTimeout,
		SessionByteBudget: cfg.sessionByteBudget,
		SessionMaxRounds:  cfg.sessionMaxRounds,
	})
	src := setWithOptions{set: s, opt: cfg.opt}
	if err := srv.registerSource(DefaultSetName, src, hostedElemBytes*int64(s.Len())); err != nil {
		return err
	}
	if cfg.setName != "" && cfg.setName != DefaultSetName {
		if err := srv.registerSource(cfg.setName, src, hostedElemBytes*int64(s.Len())); err != nil {
			return err
		}
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		srv.Close()
		<-serveErr
		return ctx.Err()
	case err := <-serveErr:
		return err
	}
}

// Reconcile learns this set △ other fully in process (both endpoints in
// this address space) — the mode tests, examples, and batch pipelines use.
// Both handles must have been built with the same structural options. The
// context is checked between rounds. WithKnownD skips the estimation;
// WithOnDelta streams per-round verified deltas.
func (s *Set) Reconcile(ctx context.Context, other *Set, opts ...Option) (*Result, error) {
	cfg, err := s.callConfig(opts)
	if err != nil {
		return nil, err
	}
	theirs := other.cfg.opt
	if theirs.Seed != cfg.opt.Seed || theirs.SigBits != cfg.opt.SigBits ||
		theirs.EstimatorSketches != cfg.opt.EstimatorSketches {
		return nil, fmt.Errorf("pbs: sets were built under different structural options (seed/sigbits/sketches)")
	}
	d := cfg.opt.KnownD
	needEstimate := d <= 0
	mine, err := s.view(needEstimate)
	if err != nil {
		return nil, err
	}
	remote, err := other.view(needEstimate)
	if err != nil {
		return nil, err
	}
	estBytes := 0
	if needEstimate {
		dhat, err := s.tow.Estimate(mine.towSketch(), remote.towSketch())
		if err != nil {
			return nil, err
		}
		// Automatic estimator selection: when the learned prior says this
		// handle's differences run large, the plan derived from a single
		// ToW draw is expensive to get wrong — cross-check against the
		// Strata and MinWise families and take the median. In-process
		// only; wire sessions always exchange ToW sketches.
		if !cfg.adaptiveOff {
			if pd, ok := s.prior.predict(); ok && pd >= adaptiveLargeD {
				dhat = crossCheckedEstimate(dhat, cfg.opt, mine, remote)
			}
		}
		d = estimator.ConservativeD(dhat, cfg.opt.Gamma)
		n := mine.Len()
		if remote.Len() > n {
			n = remote.Len()
		}
		estBytes = (s.tow.Bits(n) + 7) / 8
	}
	plan, err := core.NewPlan(d, cfg.opt.coreConfig())
	if err != nil {
		return nil, err
	}
	alice, err := core.NewAliceFromSnapshot(mine.snap, plan)
	if err != nil {
		return nil, err
	}
	if cfg.onDelta != nil {
		alice.OnVerifiedDelta(cfg.onDelta)
	}
	bob, err := core.NewBobFromSnapshot(remote.snap, plan)
	if err != nil {
		return nil, err
	}
	res, err := core.DriveContext(ctx, alice, bob, plan.MaxRounds)
	if err != nil {
		return nil, err
	}
	if res.Complete {
		s.prior.observe(float64(len(res.Difference)))
	}
	return &Result{
		Difference:     res.Difference,
		Complete:       res.Complete,
		Rounds:         res.Stats.Rounds,
		EstimatedD:     d,
		PayloadBytes:   res.Stats.TotalPayloadBytes(),
		WireBytes:      res.Stats.TotalWireBytes(),
		EstimatorBytes: estBytes,
	}, nil
}
