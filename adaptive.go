package pbs

import (
	"math"
	"sync"

	"pbs/internal/estimator"
)

// This file holds the online adaptive controller: a learned per-handle
// prior over realized difference cardinalities, the speculation sizing
// that replaces hand-set KnownD/DefaultSpeculativeD for warm handles, and
// the automatic estimator selection for the large-d regime. The wire side
// of adaptive mode — negotiating the grant in the fast hello and carrying
// re-planned (m, t) parameters on rounds ≥ 2 — lives in sync.go and
// session.go; the per-round re-planning policy itself is internal/core's
// Alice.EnableAdaptive/Bob.EnableAdaptive backed by markov.Replan.
//
// Everything here is initiator-local: it changes which parameters this
// side asks for, never the protocol's correctness. A peer that predates
// adaptive mode simply never grants it, and the session degrades to the
// static paper-fixed plan byte-for-byte.

// WithAdaptive toggles the online adaptive controller for a Set (default
// on). With it on, three things happen:
//
//   - Speculation sizing: fast syncs size their speculative first round
//     from a learned EWMA prior over this handle's realized differences
//     (the smoothed mean plus headroom, floored at DefaultSpeculativeD,
//     escalated to the latest outcome on a regime shift) instead of the
//     fixed last-difference heuristic. An explicit WithKnownD still wins,
//     and a cold handle still opens at DefaultSpeculativeD.
//   - Round re-planning: the fast hello offers adaptive mode to the peer;
//     when granted, both endpoints re-derive (n, t) per round from the
//     Markov occupancy model — survivor-only rounds shrink their parity
//     bitmaps well below the static plan's, split rounds replay it.
//   - Estimator selection: in-process Reconcile calls whose learned prior
//     predicts a large difference cross-check the ToW estimate against
//     Strata and MinWise estimates and use the median, trimming the tail
//     error that a single estimator family pays exactly where a
//     mis-estimate is most expensive. The wire protocol always exchanges
//     ToW sketches regardless.
//
// WithAdaptive(false) pins the paper-fixed behavior: the hello carries no
// adaptive offer, every round runs the static plan, and speculation sizing
// follows the legacy last-difference heuristic — the wire stream is
// byte-identical to a build without adaptive mode. The pre-Set wrappers
// (SyncInitiator, NewInitiatorSession, Session) never negotiate adaptive
// mode, so their streams are unchanged either way.
func WithAdaptive(on bool) Option { return func(c *setConfig) { c.adaptiveOff = !on } }

// specPredictHeadroom is the fixed slack added on top of the prior's
// mean + 2σ speculation size: it keeps a freshly converged prior (σ ≈ 0)
// from speculating exactly at the mean, where half of all outcomes would
// overflow the plan.
const specPredictHeadroom = 8

// ewmaAlphaFloor is the steady-state EWMA weight. Warm-up uses 1/count so
// the first observations are absorbed at full weight (the first IS the
// mean), decaying to this floor — a shift in the workload's difference
// regime is fully reflected after a handful of syncs.
const ewmaAlphaFloor = 0.25

// adaptiveLargeD is the predicted-difference threshold above which the
// in-process estimator selection engages. Below it a single ToW draw under
// γ = 1.38 is cheap insurance; above it the O(d)-scaling plan makes a tail
// mis-estimate expensive enough to justify building two extra O(|S|)
// sketch families and taking the median.
const adaptiveLargeD = 2048

// Seed tweaks for the cross-check estimator families, disjoint from
// towSeedTweak/verifySeedTweak so all hash domains stay independent.
const (
	strataSeedTweak  = 0x57247A
	minwiseSeedTweak = 0x313B15E
)

// ewmaObserve folds one realized difference cardinality into an
// exponentially weighted (mean, variance) pair. It is the shared update
// rule of the Set-level prior and the hosted set's persisted prior, so the
// two learn identically.
func ewmaObserve(mean, vr float64, count uint64, d float64) (float64, float64, uint64) {
	count++
	alpha := 1 / float64(count)
	if alpha < ewmaAlphaFloor {
		alpha = ewmaAlphaFloor
	}
	delta := d - mean
	mean += alpha * delta
	vr = (1 - alpha) * (vr + alpha*delta*delta)
	return mean, vr, count
}

// dhatPrior is a concurrency-safe learned prior over a set handle's
// realized difference cardinalities: an EWMA of the mean and variance of
// |A△B| as observed by completed syncs. It is the adaptive replacement
// for hand-tuning WithKnownD — after a few syncs the handle knows its own
// churn regime and sizes speculation from it.
type dhatPrior struct {
	mu    sync.Mutex
	mean  float64
	vr    float64
	count uint64
}

// observe folds one realized difference cardinality into the prior.
func (p *dhatPrior) observe(d float64) {
	if math.IsNaN(d) || d < 0 {
		return
	}
	p.mu.Lock()
	p.mean, p.vr, p.count = ewmaObserve(p.mean, p.vr, p.count, d)
	p.mu.Unlock()
}

// predict returns the speculative difference bound the prior recommends —
// the smoothed mean plus fixed headroom, clamped to at least 1 — and
// ok=false for a cold prior with nothing observed yet. The bound is
// deliberately NOT inflated by the prior's spread: syncPlan γ-scales every
// speculative bound by 1.38 (the same slack the estimator path carries),
// which already covers sync-to-sync churn variation, and PBS degrades
// gracefully when a draw lands past it — the speculative round decodes
// piecewise and a re-planned survivor round mops up. Adding σ terms here
// multiplies through γ into every warm plan and costs more bytes than the
// occasional extra round saves.
func (p *dhatPrior) predict() (uint64, bool) {
	p.mu.Lock()
	mean, _, count := p.mean, p.vr, p.count
	p.mu.Unlock()
	if count == 0 {
		return 0, false
	}
	spec := mean + specPredictHeadroom
	if spec < 1 {
		spec = 1
	}
	return uint64(math.Round(spec)), true
}

// shifted reports whether a realized difference d lies outside the prior's
// learned spread (mean + 2σ + headroom) — the signal that the workload
// changed regime rather than drew an ordinary fluctuation.
func (p *dhatPrior) shifted(d float64) bool {
	p.mu.Lock()
	mean, vr, count := p.mean, p.vr, p.count
	p.mu.Unlock()
	if count == 0 {
		return false
	}
	return d > mean+2*math.Sqrt(vr)+specPredictHeadroom
}

// snapshot returns the prior's raw state (hosted persistence reads it).
func (p *dhatPrior) snapshot() (mean, vr float64, count uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mean, p.vr, p.count
}

// adaptiveSpeculativeD sizes the fast path's speculative first round under
// the resolved call configuration: the learned prior when adaptive mode is
// on and warm, the legacy last-difference heuristic otherwise. WithKnownD
// always wins (speculativeD handles it), and the specAvoid hop — never
// replaying the exact bound whose plan just failed to decode in one round
// — applies to both paths.
func (s *Set) adaptiveSpeculativeD(cfg *setConfig) uint64 {
	if cfg.adaptiveOff || cfg.opt.KnownD > 0 {
		return s.speculativeD(cfg.opt)
	}
	spec, ok := s.prior.predict()
	if !ok {
		return s.speculativeD(cfg.opt)
	}
	// The learned bound never shrinks the speculative plan below the stock
	// default: small plans concentrate the difference into few groups,
	// raising the bin-collision rate — the dominant cause of a second
	// round in this regime — so shaving their already-small parity trades
	// a whole round trip for a handful of bytes. Above the default, parity
	// dominates the cost and the prior's mean-sized bound is the win.
	if spec < DefaultSpeculativeD {
		spec = DefaultSpeculativeD
	}
	// Regime-shift escape hatch: when the most recent outcome (specPrior
	// holds it plus one; after a failed attempt, the peer's observed d̂)
	// lands outside the prior's own spread, the workload moved and the
	// smoothed mean lags behind — size to the outcome until the EWMA
	// catches up. Ordinary fluctuations inside the spread stay with the
	// mean; chasing every above-mean draw would oversize most warm plans.
	// The legacy specAvoid hop deliberately does not apply here: under
	// adaptive mode a completed multi-round sync is the plan behaving
	// normally (a collision draw), not a bound to avoid, and hopping the
	// bound would oversize every subsequent warm plan.
	if p := s.specPrior.Load(); p > 0 && s.prior.shifted(float64(p-1)) {
		if last := p - 1 + specPredictHeadroom; last > spec {
			spec = last
		}
	}
	return spec
}

// crossCheckedEstimate is the large-d estimator selection: the median of
// the ToW, Strata, and MinWise difference estimates over the two in-process
// views. The three families fail independently — ToW by sketch variance,
// Strata by ladder extrapolation, MinWise by Jaccard resolution — so the
// median trims any single family's tail draw. Falls back to the ToW value
// alone if a cross-check estimator errors.
func crossCheckedEstimate(towD float64, opt Options, mine, remote *SharedSet) float64 {
	st := estimator.NewStrata(opt.Seed ^ strataSeedTweak)
	strataD, err := st.Estimate(st.Sketch(mine.snap.Elements()), st.Sketch(remote.snap.Elements()))
	if err != nil {
		return towD
	}
	mw, err := estimator.NewMinWise(opt.EstimatorSketches, opt.Seed^minwiseSeedTweak)
	if err != nil {
		return towD
	}
	minwiseD, err := mw.Estimate(mw.Sketch(mine.snap.Elements()), mw.Sketch(remote.snap.Elements()), mine.Len(), remote.Len())
	if err != nil {
		return towD
	}
	return median3(towD, strataD, minwiseD)
}

func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
