package pbs

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// runs the same code paths as cmd/pbs-experiments at reduced scale and
// reports the figure's headline metric (communication KB, success rate)
// via b.ReportMetric, so `go test -bench=. -benchmem` regenerates the
// series shapes. Full-scale sweeps: cmd/pbs-experiments.

import (
	"context"
	"fmt"
	"net"
	"testing"

	"pbs/internal/exper"
	"pbs/internal/markov"
	"pbs/internal/workload"
)

// benchSizeA keeps bench instances fast while preserving the |B| >> d
// regime of the paper for most d values.
const benchSizeA = 50000

func sweepBench(b *testing.B, algo exper.Algo, d int, run exper.RunConfig) {
	b.Helper()
	inst, err := exper.NewInstance(benchSizeA, d, int64(d)*31+7)
	if err != nil {
		b.Fatal(err)
	}
	var comm, success, rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := exper.Run(algo, inst, run)
		if err != nil {
			b.Fatal(err)
		}
		comm += m.CommBytes / 1024
		rounds += float64(m.Rounds)
		if m.Success {
			success++
		}
	}
	b.ReportMetric(comm/float64(b.N), "commKB")
	b.ReportMetric(success/float64(b.N), "success")
	b.ReportMetric(rounds/float64(b.N), "rounds")
}

// fig1Ds is the reduced d grid used by the figure benches.
var fig1Ds = []int{10, 100, 1000}

// BenchmarkFig1 regenerates Figure 1 (PBS vs PinSketch vs D.Digest,
// p0 = 0.99): success rate, data transmitted, encode+decode time.
func BenchmarkFig1(b *testing.B) {
	for _, algo := range []exper.Algo{exper.AlgoPBS, exper.AlgoPinSketch, exper.AlgoDDigest} {
		for _, d := range fig1Ds {
			if algo == exper.AlgoPinSketch && d > 1000 {
				continue
			}
			b.Run(fmt.Sprintf("%s/d=%d", algo, d), func(b *testing.B) {
				sweepBench(b, algo, d, exper.RunConfig{MaxRounds: 3})
			})
		}
	}
}

// BenchmarkFig2 regenerates Figure 2 (PBS vs Graphene, p0 = 239/240).
func BenchmarkFig2(b *testing.B) {
	for _, algo := range []exper.Algo{exper.AlgoPBS, exper.AlgoGraphene} {
		for _, d := range fig1Ds {
			b.Run(fmt.Sprintf("%s/d=%d", algo, d), func(b *testing.B) {
				sweepBench(b, algo, d, exper.RunConfig{
					TargetSuccess: 239.0 / 240, MaxRounds: 3, GrapheneTau: 2.4,
				})
			})
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (PBS vs PinSketch/WP, p0 = 0.99).
func BenchmarkFig3(b *testing.B) {
	for _, algo := range []exper.Algo{exper.AlgoPBS, exper.AlgoPinSketchWP} {
		for _, d := range fig1Ds {
			b.Run(fmt.Sprintf("%s/d=%d", algo, d), func(b *testing.B) {
				sweepBench(b, algo, d, exper.RunConfig{MaxRounds: 3})
			})
		}
	}
}

// BenchmarkFig4 regenerates Figure 4 (PBS vs δ at fixed d): the
// communication/computation tradeoff knob.
func BenchmarkFig4(b *testing.B) {
	const d = 1000
	for _, delta := range []int{3, 5, 10, 20, 30} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			sweepBench(b, exper.AlgoPBS, d, exper.RunConfig{Delta: delta, MaxRounds: 3})
		})
	}
}

// BenchmarkFig5 regenerates Figure 5 (communication at 256-bit signatures):
// PBS's margin over PinSketch/WP must widen versus Figure 3.
func BenchmarkFig5(b *testing.B) {
	for _, algo := range []exper.Algo{exper.AlgoPBS, exper.AlgoPinSketchWP} {
		for _, d := range fig1Ds {
			b.Run(fmt.Sprintf("%s/d=%d", algo, d), func(b *testing.B) {
				inst, err := exper.NewInstance(benchSizeA, d, int64(d)*17+3)
				if err != nil {
					b.Fatal(err)
				}
				var comm256 float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m, err := exper.Run(algo, inst, exper.RunConfig{MaxRounds: 3})
					if err != nil {
						b.Fatal(err)
					}
					comm256 += m.CommBytes256 / 1024
				}
				b.ReportMetric(comm256/float64(b.N), "commKB@256bit")
			})
		}
	}
}

// BenchmarkTable1 regenerates the Appendix H success-probability grid
// (d=1000, δ=5, r=3) and reports the optimal cell's bound.
func BenchmarkTable1(b *testing.B) {
	ts := []int{8, 9, 10, 11, 12, 13, 14, 15, 16, 17}
	ms := []uint{6, 7, 8, 9, 10, 11}
	var bound float64
	for i := 0; i < b.N; i++ {
		tab := markov.BoundTable(1000, 5, 3, ts, ms)
		bound = tab[5][1] // t=13, n=127: the paper's darkened cell
	}
	b.ReportMetric(bound, "bound(127,13)")
}

// BenchmarkTable2 regenerates the Appendix J.1 rounds pmf at a
// representative d and reports the mean number of rounds.
func BenchmarkTable2(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		pmf, err := exper.RoundsPMF(100, 20000, 5, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		mean = 0
		for r, p := range pmf {
			mean += float64(r+1) * p
		}
	}
	b.ReportMetric(mean, "meanRounds")
}

// BenchmarkSec52 regenerates the §5.2 study: optimal per-group
// communication versus the round budget r.
func BenchmarkSec52(b *testing.B) {
	var comm3 int
	for i := 0; i < b.N; i++ {
		rows, err := exper.Sec52(1000, 5, 4, 0.99, 32)
		if err != nil {
			b.Fatal(err)
		}
		comm3 = rows[2].CommBits
	}
	b.ReportMetric(float64(comm3), "bits/group@r=3")
}

// BenchmarkSec53 regenerates the §5.3 piecewise-reconciliability profile
// and reports the round-1 proportion (paper: 0.962).
func BenchmarkSec53(b *testing.B) {
	var p1 float64
	for i := 0; i < b.N; i++ {
		props, _, err := exper.Sec53(1000, 5, 3, 0.99, 4)
		if err != nil {
			b.Fatal(err)
		}
		p1 = props[0]
	}
	b.ReportMetric(p1, "round1Fraction")
}

// BenchmarkAblationBitmapSize sweeps the parity-bitmap length n at fixed
// t, isolating the §5.1 design choice of optimizing n: too-small bitmaps
// force extra rounds (more communication), too-large ones waste codeword
// bits.
func BenchmarkAblationBitmapSize(b *testing.B) {
	for _, m := range []uint{5, 7, 9, 11} {
		b.Run(fmt.Sprintf("n=%d", (1<<m)-1), func(b *testing.B) {
			inst, err := exper.NewInstance(20000, 200, 77)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := PlanFor(inst.DHat, &Options{Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			plan.M = m
			if uint64(plan.T) > plan.N()/2 {
				plan.T = int(plan.N() / 2)
			}
			var comm, rounds float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				init, err := NewInitiator(inst.Pair.A, plan)
				if err != nil {
					b.Fatal(err)
				}
				resp, err := NewResponder(inst.Pair.B, plan)
				if err != nil {
					b.Fatal(err)
				}
				bits := 0
				for !init.Done() {
					msg, err := init.BuildRound()
					if err != nil || msg == nil {
						break
					}
					reply, err := resp.HandleRound(msg)
					if err != nil {
						b.Fatal(err)
					}
					bits += (len(msg) + len(reply)) * 8
					if err := init.AbsorbReply(reply); err != nil {
						b.Fatal(err)
					}
				}
				comm += float64(bits) / 8192
				rounds += float64(init.Rounds())
			}
			b.ReportMetric(comm/float64(b.N), "commKB")
			b.ReportMetric(rounds/float64(b.N), "rounds")
		})
	}
}

// BenchmarkAblationSplitWays evaluates the §3.2 split fan-out analytically:
// the conditional probability that a split leaves an overloaded child.
func BenchmarkAblationSplitWays(b *testing.B) {
	for _, ways := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				p = markov.SplitOverloadProbability(1000, 200, 13, ways)
			}
			b.ReportMetric(p, "overloadProb")
		})
	}
}

// BenchmarkParallelism compares the sequential reference path
// (Parallelism: 1) against the worker-pool decode engine (Parallelism: 0 =
// GOMAXPROCS) on full reconciliation sessions. PBS group pairs decode
// independently (piecewise reconciliability), so per-group BCH work scales
// across cores; on a multi-core machine the par/seq ratio at d = 10000
// should approach the core count.
func BenchmarkParallelism(b *testing.B) {
	for _, d := range []int{100, 1000, 10000} {
		p := workload.MustGenerate(workload.Config{
			UniverseBits: 32, SizeA: benchSizeA, D: d, Seed: int64(d)*13 + 5,
		})
		for _, mode := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par", 0}} {
			b.Run(fmt.Sprintf("%s/d=%d", mode.name, d), func(b *testing.B) {
				plan, err := PlanFor(d, &Options{Seed: 9, Parallelism: mode.workers})
				if err != nil {
					b.Fatal(err)
				}
				var rounds float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					init, err := NewInitiator(p.A, plan)
					if err != nil {
						b.Fatal(err)
					}
					resp, err := NewResponder(p.B, plan)
					if err != nil {
						b.Fatal(err)
					}
					for !init.Done() {
						msg, err := init.BuildRound()
						if err != nil {
							b.Fatal(err)
						}
						if msg == nil {
							break
						}
						reply, err := resp.HandleRound(msg)
						if err != nil {
							b.Fatal(err)
						}
						if err := init.AbsorbReply(reply); err != nil {
							b.Fatal(err)
						}
					}
					if !init.Done() || len(init.Difference()) != len(p.Diff) {
						b.Fatal("reconciliation failed")
					}
					rounds += float64(init.Rounds())
				}
				b.ReportMetric(rounds/float64(b.N), "rounds")
			})
		}
	}
}

// BenchmarkEstimator measures the ToW estimator end to end (§6).
func BenchmarkEstimator(b *testing.B) {
	inst, err := exper.NewInstance(benchSizeA, 1000, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Reconcile(inst.Pair.A, inst.Pair.B, &Options{Seed: uint64(i)})
		if err != nil || !res.Complete {
			b.Fatal("reconcile failed")
		}
	}
}

// BenchmarkAPI quantifies the Set API's amortization win: one full wire
// sync per iteration over an in-memory pipe, either from long-lived warm
// handles (validation, ToW sketch, snapshot, and partitions carried over
// between syncs) or rebuilt from raw slices per call the way the legacy
// SyncInitiator/SyncResponder wrappers do. scripts/bench_api.sh emits the
// comparison to BENCH_api.json.
func BenchmarkAPI(b *testing.B) {
	p, err := workload.Generate(workload.Config{UniverseBits: 32, SizeA: 50000, D: 100, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	opt := &Options{Seed: 78}

	syncOnce := func(b *testing.B, initiate func(conn net.Conn) (*Result, error), respond func(conn net.Conn) error) {
		b.Helper()
		ca, cb := net.Pipe()
		respErr := make(chan error, 1)
		go func() {
			defer cb.Close()
			respErr <- respond(cb)
		}()
		res, err := initiate(ca)
		ca.Close()
		if err != nil {
			b.Fatal(err)
		}
		if err := <-respErr; err != nil {
			b.Fatal(err)
		}
		if !res.Complete || len(res.Difference) != len(p.Diff) {
			b.Fatalf("bad sync: complete=%v |diff|=%d", res.Complete, len(res.Difference))
		}
	}

	b.Run("warm-set/d=100", func(b *testing.B) {
		sa, err := NewSet(p.A, withBaseOptions(opt))
		if err != nil {
			b.Fatal(err)
		}
		sb, err := NewSet(p.B, withBaseOptions(opt))
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		// One untimed priming sync: the handle's lazy one-time costs
		// (estimator sketch, snapshot, partitions) land here, so the
		// timed loop measures the steady state a long-lived handle runs
		// in — which is the quantity this benchmark exists to compare.
		syncOnce(b,
			func(conn net.Conn) (*Result, error) { return sa.Sync(ctx, conn) },
			func(conn net.Conn) error { return sb.Respond(ctx, conn) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			syncOnce(b,
				func(conn net.Conn) (*Result, error) { return sa.Sync(ctx, conn) },
				func(conn net.Conn) error { return sb.Respond(ctx, conn) })
		}
	})

	b.Run("cold-construct/d=100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			syncOnce(b,
				func(conn net.Conn) (*Result, error) { return SyncInitiator(p.A, conn, opt) },
				func(conn net.Conn) error { return SyncResponder(p.B, conn, opt) })
		}
	})
}
