package pbs

import (
	"sort"
	"testing"

	"pbs/internal/workload"
)

func assertSameSet(t *testing.T, got, want []uint64) {
	t.Helper()
	g := append([]uint64(nil), got...)
	w := append([]uint64(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	if len(g) != len(w) {
		t.Fatalf("size mismatch: %d vs %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("element mismatch at %d", i)
		}
	}
}

func TestReconcileFullPipeline(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: 150, Seed: 1})
	res, err := Reconcile(p.A, p.B, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
	if res.EstimatedD < 60 || res.EstimatedD > 600 {
		t.Errorf("estimate %d wildly off for d=150", res.EstimatedD)
	}
	if res.EstimatorBytes < 200 || res.EstimatorBytes > 400 { // 336B at |S|=1e6; smaller here
		t.Errorf("estimator cost %dB; the paper's configuration costs ~336B", res.EstimatorBytes)
	}
	if res.PayloadBytes <= 0 || res.WireBytes < res.PayloadBytes {
		t.Errorf("accounting broken: payload=%d wire=%d", res.PayloadBytes, res.WireBytes)
	}
}

func TestReconcileKnownD(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 5000, D: 40, Seed: 3})
	res, err := Reconcile(p.A, p.B, &Options{Seed: 4, KnownD: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	if res.EstimatorBytes != 0 {
		t.Error("KnownD must skip the estimator")
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestReconcileNilOptions(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 10, Seed: 5})
	res, err := Reconcile(p.A, p.B, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestUnion(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 1000, D: 20, BOnlyFrac: 0.5, Seed: 6})
	res, err := Reconcile(p.A, p.B, &Options{Seed: 7, KnownD: 25})
	if err != nil || !res.Complete {
		t.Fatal("reconcile failed")
	}
	u := Union(p.A, res)
	want := map[uint64]struct{}{}
	for _, x := range p.A {
		want[x] = struct{}{}
	}
	for _, x := range p.B {
		want[x] = struct{}{}
	}
	if len(u) != len(want) {
		t.Fatalf("|union| = %d, want %d", len(u), len(want))
	}
	for _, x := range u {
		if _, ok := want[x]; !ok {
			t.Fatalf("union contains stray element %#x", x)
		}
	}
}

func TestSessionDrivenExchange(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 4000, D: 30, Seed: 8})
	plan, err := PlanFor(30, &Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	init, err := NewInitiator(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := NewResponder(p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	for rounds := 0; !init.Done() && rounds < 10; rounds++ {
		msg, err := init.BuildRound()
		if err != nil {
			t.Fatal(err)
		}
		if msg == nil {
			break
		}
		reply, err := resp.HandleRound(msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := init.AbsorbReply(reply); err != nil {
			t.Fatal(err)
		}
	}
	if !init.Done() {
		t.Fatalf("session not done after %d rounds", init.Rounds())
	}
	assertSameSet(t, init.Difference(), p.Diff)
}

func TestSessionRoleEnforcement(t *testing.T) {
	plan, _ := PlanFor(5, nil)
	init, _ := NewInitiator([]uint64{1}, plan)
	resp, _ := NewResponder([]uint64{2}, plan)
	if _, err := init.HandleRound(nil); err == nil {
		t.Error("initiator must not HandleRound")
	}
	if _, err := resp.BuildRound(); err == nil {
		t.Error("responder must not BuildRound")
	}
	if err := resp.AbsorbReply(nil); err == nil {
		t.Error("responder must not AbsorbReply")
	}
	if resp.Done() {
		t.Error("responder is never done on its own")
	}
	if resp.Difference() != nil || resp.Rounds() != 0 {
		t.Error("responder has no difference or rounds")
	}
}

func TestLargeSignatures(t *testing.T) {
	// 48-bit signatures exercise the non-default universe width.
	p := workload.MustGenerate(workload.Config{UniverseBits: 48, SizeA: 3000, D: 25, Seed: 10})
	res, err := Reconcile(p.A, p.B, &Options{Seed: 11, SigBits: 48, KnownD: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	assertSameSet(t, res.Difference, p.Diff)
}
