package pbs

import (
	"errors"
	"net"
	"sort"
	"testing"

	"pbs/internal/workload"
)

func assertSameSet(t *testing.T, got, want []uint64) {
	t.Helper()
	g := append([]uint64(nil), got...)
	w := append([]uint64(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	if len(g) != len(w) {
		t.Fatalf("size mismatch: %d vs %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("element mismatch at %d", i)
		}
	}
}

func TestReconcileFullPipeline(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: 150, Seed: 1})
	res, err := Reconcile(p.A, p.B, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
	if res.EstimatedD < 60 || res.EstimatedD > 600 {
		t.Errorf("estimate %d wildly off for d=150", res.EstimatedD)
	}
	if res.EstimatorBytes < 200 || res.EstimatorBytes > 400 { // 336B at |S|=1e6; smaller here
		t.Errorf("estimator cost %dB; the paper's configuration costs ~336B", res.EstimatorBytes)
	}
	if res.PayloadBytes <= 0 || res.WireBytes < res.PayloadBytes {
		t.Errorf("accounting broken: payload=%d wire=%d", res.PayloadBytes, res.WireBytes)
	}
}

func TestReconcileKnownD(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 5000, D: 40, Seed: 3})
	res, err := Reconcile(p.A, p.B, &Options{Seed: 4, KnownD: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	if res.EstimatorBytes != 0 {
		t.Error("KnownD must skip the estimator")
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestReconcileNilOptions(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 10, Seed: 5})
	res, err := Reconcile(p.A, p.B, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestUnion(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 1000, D: 20, BOnlyFrac: 0.5, Seed: 6})
	res, err := Reconcile(p.A, p.B, &Options{Seed: 7, KnownD: 25})
	if err != nil || !res.Complete {
		t.Fatal("reconcile failed")
	}
	u := Union(p.A, res)
	want := map[uint64]struct{}{}
	for _, x := range p.A {
		want[x] = struct{}{}
	}
	for _, x := range p.B {
		want[x] = struct{}{}
	}
	if len(u) != len(want) {
		t.Fatalf("|union| = %d, want %d", len(u), len(want))
	}
	for _, x := range u {
		if _, ok := want[x]; !ok {
			t.Fatalf("union contains stray element %#x", x)
		}
	}
}

func TestSessionDrivenExchange(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 4000, D: 30, Seed: 8})
	plan, err := PlanFor(30, &Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	init, err := NewInitiator(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := NewResponder(p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	for rounds := 0; !init.Done() && rounds < 10; rounds++ {
		msg, err := init.BuildRound()
		if err != nil {
			t.Fatal(err)
		}
		if msg == nil {
			break
		}
		reply, err := resp.HandleRound(msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := init.AbsorbReply(reply); err != nil {
			t.Fatal(err)
		}
	}
	if !init.Done() {
		t.Fatalf("session not done after %d rounds", init.Rounds())
	}
	assertSameSet(t, init.Difference(), p.Diff)
}

func TestSessionRoleEnforcement(t *testing.T) {
	plan, _ := PlanFor(5, nil)
	init, _ := NewInitiator([]uint64{1}, plan)
	resp, _ := NewResponder([]uint64{2}, plan)
	if _, err := init.HandleRound(nil); err == nil {
		t.Error("initiator must not HandleRound")
	}
	if _, err := resp.BuildRound(); err == nil {
		t.Error("responder must not BuildRound")
	}
	if err := resp.AbsorbReply(nil); err == nil {
		t.Error("responder must not AbsorbReply")
	}
	if resp.Done() {
		t.Error("responder is never done on its own")
	}
	if resp.Difference() != nil || resp.Rounds() != 0 {
		t.Error("responder has no difference or rounds")
	}
}

func TestOptionsSigBitsBounds(t *testing.T) {
	// The valid signature range is [8, 64]; both ends must work and both
	// out-of-range neighbours must be rejected up front.
	small := []uint64{1, 2, 3, 40, 50, 60, 200, 250}
	for _, bad := range []uint{1, 7, 65} {
		if _, err := Reconcile(small, small[:4], &Options{SigBits: bad, KnownD: 4}); err == nil {
			t.Errorf("SigBits=%d accepted; want error", bad)
		}
		if _, err := PlanFor(4, &Options{SigBits: bad}); err == nil {
			t.Errorf("PlanFor with SigBits=%d accepted; want error", bad)
		}
	}
	// SigBits=8: the whole universe is {1..255}.
	res, err := Reconcile(small, small[:4], &Options{SigBits: 8, KnownD: 4})
	if err != nil || !res.Complete {
		t.Fatalf("SigBits=8: err=%v complete=%v", err, res != nil && res.Complete)
	}
	assertSameSet(t, res.Difference, small[4:])
	// SigBits=64: full-width signatures, elements near the top of the range.
	wide := []uint64{1, ^uint64(0), ^uint64(0) - 7, 1 << 63, 12345}
	res, err = Reconcile(wide, wide[:2], &Options{SigBits: 64, KnownD: 3})
	if err != nil || !res.Complete {
		t.Fatalf("SigBits=64: err=%v", err)
	}
	assertSameSet(t, res.Difference, wide[2:])
	// Elements wider than SigBits must be rejected.
	if _, err := Reconcile([]uint64{1 << 40}, []uint64{1}, &Options{SigBits: 32, KnownD: 1}); err == nil {
		t.Error("element wider than SigBits accepted")
	}
}

func TestOptionsKnownDUnderestimate(t *testing.T) {
	// The caller asserts |A△B| <= KnownD but is off by 10x. BCH decoding
	// fails in overloaded groups, triggering the §3.2 splits; with an
	// unlimited round budget the protocol must still converge to the exact
	// difference.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 8000, D: 200, Seed: 31})
	res, err := Reconcile(p.A, p.B, &Options{Seed: 32, KnownD: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds despite unlimited budget", res.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
	if res.Rounds <= 1 {
		t.Errorf("a 10x underestimate finished in %d round(s); splits cannot have been exercised", res.Rounds)
	}
}

func TestOptionsMaxRoundsExhaustion(t *testing.T) {
	// One round against a badly undersized plan cannot finish: the result
	// must report Complete=false rather than an error or a wrong answer.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 8000, D: 500, Seed: 33})
	res, err := Reconcile(p.A, p.B, &Options{Seed: 34, KnownD: 10, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("claimed completion with KnownD=10, d=500, MaxRounds=1")
	}
	if res.Rounds != 1 {
		t.Errorf("ran %d rounds, budget was 1", res.Rounds)
	}
	// Whatever was learned must be a subset of the true difference: the
	// checksum layer never lets fake elements through on verified groups.
	truth := make(map[uint64]struct{}, len(p.Diff))
	for _, x := range p.Diff {
		truth[x] = struct{}{}
	}
	for _, x := range res.Difference {
		if _, ok := truth[x]; !ok {
			t.Fatalf("partial result contains non-difference element %#x", x)
		}
	}
}

func TestOptionsStrongVerifyMismatch(t *testing.T) {
	// Both StrongVerify failure surfaces: a well-formed digest that simply
	// disagrees must surface ErrVerificationFailed, while a digest of the
	// wrong length is protocol corruption and must fail with a different,
	// descriptive error.
	cases := []struct {
		name       string
		digest     []byte
		wantVerify bool // expect ErrVerificationFailed specifically
	}{
		{"zero digest", make([]byte, 32), true},
		{"truncated digest", make([]byte, 16), false},
		{"oversized digest", make([]byte, 33), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 5, Seed: 35})
			ca, cb := net.Pipe()
			go func() {
				defer cb.Close()
				hackedResponder(p.B, cb, tc.digest)
			}()
			_, err := SyncInitiator(p.A, ca, &Options{Seed: 11, StrongVerify: true})
			ca.Close()
			if tc.wantVerify {
				if !errors.Is(err, ErrVerificationFailed) {
					t.Fatalf("want ErrVerificationFailed, got %v", err)
				}
			} else {
				if err == nil || errors.Is(err, ErrVerificationFailed) {
					t.Fatalf("want a malformed-digest error, got %v", err)
				}
			}
		})
	}
}

func TestOptionsParallelismEquivalence(t *testing.T) {
	// The public API must return the same difference for any Parallelism.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 6000, D: 80, Seed: 37})
	for _, par := range []int{0, 1, 2, 8} {
		res, err := Reconcile(p.A, p.B, &Options{Seed: 38, KnownD: 80, Parallelism: par})
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", par, err)
		}
		if !res.Complete {
			t.Fatalf("Parallelism=%d: incomplete", par)
		}
		assertSameSet(t, res.Difference, p.Diff)
	}
}

func TestLargeSignatures(t *testing.T) {
	// 48-bit signatures exercise the non-default universe width.
	p := workload.MustGenerate(workload.Config{UniverseBits: 48, SizeA: 3000, D: 25, Seed: 10})
	res, err := Reconcile(p.A, p.B, &Options{Seed: 11, SigBits: 48, KnownD: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	assertSameSet(t, res.Difference, p.Diff)
}
