package pbs_test

import (
	"context"
	"fmt"
	"net"
	"sort"

	"pbs"
)

// ExampleSet_Sync shows the primary API: long-lived Set handles syncing
// over a connection — here a net.Pipe, in deployments any net.Conn — with
// context cancellation available throughout.
func ExampleSet_Sync() {
	local, err := pbs.NewSet([]uint64{10, 20, 30, 40, 50}, pbs.WithSeed(7))
	if err != nil {
		panic(err)
	}
	remote, err := pbs.NewSet([]uint64{10, 20, 30, 60}, pbs.WithSeed(7))
	if err != nil {
		panic(err)
	}

	ca, cb := net.Pipe()
	go remote.Respond(context.Background(), cb)
	res, err := local.Sync(context.Background(), ca)
	if err != nil {
		panic(err)
	}

	sort.Slice(res.Difference, func(i, j int) bool { return res.Difference[i] < res.Difference[j] })
	fmt.Println("complete:", res.Complete)
	fmt.Println("difference:", res.Difference)

	// The handles stay warm: mutate and sync again without re-validating
	// or re-sketching either set.
	local.Add(70)
	ca, cb = net.Pipe()
	go remote.Respond(context.Background(), cb)
	res, err = local.Sync(context.Background(), ca)
	if err != nil {
		panic(err)
	}
	sort.Slice(res.Difference, func(i, j int) bool { return res.Difference[i] < res.Difference[j] })
	fmt.Println("after Add(70):", res.Difference)
	// Output:
	// complete: true
	// difference: [40 50 60]
	// after Add(70): [40 50 60 70]
}

// ExampleWithOnDelta shows streaming delta delivery: PBS reconciles each
// group pair independently, so verified differences are handed to the
// callback round by round instead of only with the final Result.
func ExampleWithOnDelta() {
	a, err := pbs.NewSet([]uint64{1, 2, 3, 4, 5, 6, 7, 8}, pbs.WithSeed(3))
	if err != nil {
		panic(err)
	}
	b, err := pbs.NewSet([]uint64{1, 2, 3, 4, 9}, pbs.WithSeed(3))
	if err != nil {
		panic(err)
	}

	var streamed []uint64
	res, err := a.Reconcile(context.Background(), b,
		pbs.WithOnDelta(func(elems []uint64, round int) {
			streamed = append(streamed, elems...) // apply deltas as they verify
		}))
	if err != nil {
		panic(err)
	}
	sort.Slice(streamed, func(i, j int) bool { return streamed[i] < streamed[j] })
	fmt.Println("streamed:", streamed)
	fmt.Println("streamed everything:", len(streamed) == len(res.Difference))
	// Output:
	// streamed: [5 6 7 8 9]
	// streamed everything: true
}

// ExampleReconcile shows the one-call API: estimate the difference
// cardinality, pick parameters, and run the protocol in process.
func ExampleReconcile() {
	alice := []uint64{10, 20, 30, 40, 50}
	bob := []uint64{10, 20, 30, 60}

	res, err := pbs.Reconcile(alice, bob, &pbs.Options{Seed: 7})
	if err != nil {
		panic(err)
	}
	sort.Slice(res.Difference, func(i, j int) bool { return res.Difference[i] < res.Difference[j] })
	fmt.Println("complete:", res.Complete)
	fmt.Println("difference:", res.Difference)
	// Output:
	// complete: true
	// difference: [40 50 60]
}

// ExamplePlanFor shows explicit parameter planning for a known difference
// bound, the mode real deployments use after their own estimation step.
func ExamplePlanFor() {
	plan, err := pbs.PlanFor(1000, &pbs.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("bitmap bins n=%d, BCH capacity t=%d, groups g=%d\n",
		plan.N(), plan.T, plan.Groups)
	// Output:
	// bitmap bins n=127, BCH capacity t=11, groups g=200
}

// ExampleNewInitiator demonstrates the message-level endpoint API that a
// networked deployment drives over its own transport.
func ExampleNewInitiator() {
	alice := []uint64{1, 2, 3, 4}
	bob := []uint64{1, 2, 5}

	plan, _ := pbs.PlanFor(4, &pbs.Options{Seed: 3})
	init, _ := pbs.NewInitiator(alice, plan)
	resp, _ := pbs.NewResponder(bob, plan)

	for !init.Done() {
		msg, _ := init.BuildRound() // send this to the peer
		if msg == nil {
			break
		}
		reply, _ := resp.HandleRound(msg) // peer answers
		if err := init.AbsorbReply(reply); err != nil {
			panic(err)
		}
	}
	diff := init.Difference()
	sort.Slice(diff, func(i, j int) bool { return diff[i] < diff[j] })
	fmt.Println(diff)
	// Output:
	// [3 4 5]
}
