package pbs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"syscall"
	"testing"
	"time"
	"unicode"
	"unicode/utf8"
)

func TestErrCodeRoundTrip(t *testing.T) {
	cases := []struct {
		msg  string
		code string
		ra   time.Duration
	}{
		{"server at session capacity", ErrCodeBusy, 250 * time.Millisecond},
		{"server over session watermark, retry later", ErrCodeBusy, 0},
		{"unknown set \"x\"", ErrCodeRejected, 0},
		{"", ErrCodeBusy, time.Second},
		{"msg with [pbs:e=busy] inside", ErrCodeRejected, 5 * time.Millisecond},
	}
	for _, c := range cases {
		wire := appendErrCode(c.msg, c.code, c.ra)
		msg, code, ra := splitErrCode(wire)
		if msg != c.msg || code != c.code || ra != c.ra {
			t.Errorf("round trip %q/%q/%v -> %q -> %q/%q/%v", c.msg, c.code, c.ra, wire, msg, code, ra)
		}
	}
	// No code: the message passes through untouched.
	if got := appendErrCode("plain", "", time.Second); got != "plain" {
		t.Errorf("empty code appended a suffix: %q", got)
	}
}

func TestSplitErrCodeRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"plain legacy error",
		"trailing [pbs:e=busy",  // unterminated
		"bad code [pbs:e=BUSY]", // uppercase
		"bad code [pbs:e=]",     // empty
		"bad code [pbs:e=waaaaaaaaaaaaaaaytoolong]",
		"bad ra [pbs:e=busy,ra=xyz]",
		"bad ra [pbs:e=busy,ra=-5s]",
		"bad field [pbs:e=busy,xx=1s]",
	} {
		msg, code, ra := splitErrCode(s)
		if msg != s || code != "" || ra != 0 {
			t.Errorf("malformed %q parsed as %q/%q/%v", s, msg, code, ra)
		}
	}
	// A huge retry-after is clamped, not trusted.
	_, code, ra := splitErrCode("x [pbs:e=busy,ra=300h]")
	if code != ErrCodeBusy || ra != maxRetryAfter {
		t.Errorf("oversized retry-after not clamped: %q %v", code, ra)
	}
}

func TestSanitizeErrMsg(t *testing.T) {
	if got := sanitizeErrMsg("ordinary diagnostic"); got != "ordinary diagnostic" {
		t.Errorf("clean message altered: %q", got)
	}
	got := sanitizeErrMsg("a\x00b\x07c\xffd")
	if got != "a?b?c?d" {
		t.Errorf("control/invalid bytes: got %q", got)
	}
	long := strings.Repeat("x", 4*maxPeerErrLen)
	got = sanitizeErrMsg(long)
	if len(got) > maxPeerErrLen+32 || !strings.HasSuffix(got, "(truncated)") {
		t.Errorf("long message not truncated: %d bytes", len(got))
	}
}

func TestPeerErrorIs(t *testing.T) {
	busy := &PeerError{Code: ErrCodeBusy, Msg: "shed"}
	if !errors.Is(busy, ErrServerBusy) {
		t.Error("busy PeerError does not match ErrServerBusy")
	}
	rej := &PeerError{Code: ErrCodeRejected, Msg: "nope"}
	if errors.Is(rej, ErrServerBusy) {
		t.Error("rejected PeerError matches ErrServerBusy")
	}
	wrapped := fmt.Errorf("outer: %w", busy)
	var pe *PeerError
	if !errors.As(wrapped, &pe) || pe.Msg != "shed" {
		t.Error("PeerError does not unwrap through fmt.Errorf")
	}
}

func TestRetryableClassification(t *testing.T) {
	retryable := []error{
		io.EOF,
		io.ErrUnexpectedEOF,
		io.ErrClosedPipe,
		net.ErrClosed,
		syscall.ECONNRESET,
		syscall.ECONNREFUSED,
		syscall.EPIPE,
		ErrServerBusy,
		&PeerError{Code: ErrCodeBusy, Msg: "shed"},
		&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED},
		fmt.Errorf("wrapped: %w", io.ErrUnexpectedEOF),
	}
	for _, err := range retryable {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	final := []error{
		nil,
		context.Canceled,
		context.DeadlineExceeded,
		ErrVerificationFailed,
		ErrFastSyncRejected,
		&PeerError{Code: ErrCodeRejected, Msg: "unknown set"},
		&PeerError{Msg: "legacy uncoded"},
		errors.New("pbs: peer estimate d̂ = 99 exceeds limit 10"),
	}
	for _, err := range final {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	pol := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}.withDefaults()
	for attempt := 1; attempt <= 10; attempt++ {
		ceiling := min(pol.BaseDelay<<(attempt-1), pol.MaxDelay)
		for i := 0; i < 32; i++ {
			if d := pol.delay(attempt, io.EOF); d < 0 || d > ceiling {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceiling)
			}
		}
	}
	// A retry-after hint floors the jittered delay.
	hint := &PeerError{Code: ErrCodeBusy, RetryAfter: 3 * time.Second}
	for i := 0; i < 32; i++ {
		if d := pol.delay(1, hint); d < 3*time.Second {
			t.Fatalf("delay %v below the peer's retry-after floor", d)
		}
	}
}

// FuzzErrorPayload fuzzes the structured msgError payload parser with
// hostile input: whatever arrives, the resulting PeerError must be
// bounded, printable, and carry a valid-or-empty code and a clamped
// retry-after; clean suffixes must round-trip exactly.
func FuzzErrorPayload(f *testing.F) {
	f.Add([]byte("server at session capacity [pbs:e=busy,ra=250ms]"))
	f.Add([]byte("server over session watermark, retry later [pbs:e=busy]"))
	f.Add([]byte("unknown set \"x\" [pbs:e=rejected]"))
	f.Add([]byte("plain legacy diagnostic"))
	f.Add([]byte("bad [pbs:e=busy,ra=-5s]"))
	f.Add([]byte("bad [pbs:e=BUSY,ra=1s]"))
	f.Add([]byte("clamp [pbs:e=busy,ra=10000h]"))
	f.Add([]byte("nested [pbs:e=busy] tail [pbs:e=rejected,ra=1ms]"))
	f.Add([]byte{0x00, 0x07, 0xff, 0xfe})
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, payload []byte) {
		pe := parsePeerErrPayload(payload)
		if pe == nil {
			t.Fatal("nil PeerError")
		}
		if len(pe.Msg) > maxPeerErrLen+32 {
			t.Fatalf("unbounded message: %d bytes", len(pe.Msg))
		}
		for i := 0; i < len(pe.Msg); {
			r, size := utf8.DecodeRuneInString(pe.Msg[i:])
			if r == utf8.RuneError && size == 1 {
				t.Fatalf("invalid UTF-8 survived at %d: %q", i, pe.Msg)
			}
			if !unicode.IsPrint(r) && r != '?' {
				t.Fatalf("non-printable %#x survived: %q", r, pe.Msg)
			}
			i += size
		}
		if pe.Code != "" && !validErrCode(pe.Code) {
			t.Fatalf("invalid code %q parsed", pe.Code)
		}
		if pe.RetryAfter < 0 || pe.RetryAfter > maxRetryAfter {
			t.Fatalf("retry-after %v outside [0, %v]", pe.RetryAfter, maxRetryAfter)
		}
		// A parsed code must re-encode into a suffix the parser accepts
		// again with identical fields (sanitized message aside).
		if pe.Code != "" {
			wire := appendErrCode(pe.Msg, pe.Code, pe.RetryAfter)
			msg, code, ra := splitErrCode(wire)
			if msg != pe.Msg || code != pe.Code || ra != pe.RetryAfter {
				t.Fatalf("re-encode mismatch: %q/%q/%v -> %q -> %q/%q/%v",
					pe.Msg, pe.Code, pe.RetryAfter, wire, msg, code, ra)
			}
		}
	})
}
