package pbs

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"slices"
	"sync"
	"time"

	"pbs/internal/core"
	"pbs/internal/estimator"
)

// This file implements the blocking wire protocol over an io.ReadWriter:
// the Tug-of-War estimation phase (§6.2), deterministic parameter
// derivation on both sides, the multi-round PBS exchange, and an optional
// strong final verification using a multiset hash (the §2.2.3 hardening).
// The protocol logic itself lives in the non-blocking session engine
// (session.go); SyncInitiator and SyncResponder only pump frames between a
// connection and a session, and the concurrent Server (server.go) drives
// the same engine for many connections at once.
//
// Message flow (I = initiator, R = responder):
//
//	I -> R  msgEstimate      ℓ ToW sketches of I's set
//	R -> I  msgEstimateReply round(d̂) computed against R's sketches
//	I -> R  msgRound         scope descriptors + BCH codewords   ┐ repeated
//	R -> I  msgRoundReply    positions, XOR sums, checksums      ┘ per round
//	I -> R  msgVerify        (only with StrongVerify)
//	R -> I  msgVerifyReply   32-byte multiset-hash digest of R's set
//	I -> R  msgDone          closes the session
//
// Frames are length-prefixed with a one-byte type. Every parameter both
// sides must share (seed, δ, p0, r, signature width) travels out of band in
// Options, as a deployment would pin them in its protocol version.
// Options.Parallelism is the exception: it only sizes the local worker pool
// for per-group decoding, produces byte-identical frames for any value, and
// so may differ freely between the two endpoints.
//
// Two further frame types exist only at the edges of a pbs-serve
// deployment and never appear inside a reconciliation exchange: a Client
// may open its connection with msgHello naming the server-side set to
// reconcile against, and a Server reports a rejected or failed session
// with a final msgError carrying a diagnostic string.
//
// Fast path (protocol version 1): the flow above costs two round trips
// before the first difference element lands (estimate, then round 1).
// A fast initiator instead opens with a single msgHelloV1 frame carrying
// the protocol version, the set name, its ToW sketches, a speculative
// difference bound d_spec, and round 1 already built under the plan
// derived from d_spec. The responder computes the true d̂ from the
// piggybacked sketches and answers with one msgHelloReplyV1 frame: d̂,
// the round-1 reply when the speculation was adequately sized (PBS is
// piecewise decodable, so an undersized speculative round degrades into
// 3-way splits in round 2 instead of failing), and — when requested —
// the strong-verification digest, so even StrongVerify sessions finish
// in one round trip. When the responder declines the speculation
// (d̂ far above d_spec), both sides deterministically re-plan from d̂ and
// continue with the classic msgRound flow, which costs exactly what the
// legacy negotiation would have. A legacy peer answers msgHelloV1 with
// msgError; initiators surface that as ErrFastSyncRejected so callers
// (Client does this automatically) can negotiate down to the multi-RTT
// flow. The legacy flow itself is byte-identical to protocol version 0.

const (
	msgEstimate = iota + 1
	msgEstimateReply
	msgRound
	msgRoundReply
	msgVerify
	msgVerifyReply
	msgDone
	msgHello        // client -> server: name of the shared set to sync against
	msgError        // server -> client: session rejected or failed, payload = text
	msgHelloV1      // fast initiator open: version + name + sketches + speculative round 1
	msgHelloReplyV1 // fast responder answer: d̂ + optional round-1 reply + optional digest
	msgStreamClose  // mux only: bare stream teardown without a session message
)

// fastProtoVersion is the wire-protocol version this build negotiates in
// msgHelloV1. A responder replies with the version it selected; initiators
// reject a reply version they did not offer. Version 2 is version 1 plus
// hello-time feature negotiation (mux, compression): a v2 hello carries
// want-flags, and the responder answers with version 2 and grant-flags only
// when it grants stream multiplexing — otherwise it replies version 1 and
// the session proceeds exactly as the fast v1 flow.
const (
	fastProtoVersion    = 1
	fastProtoVersionMux = 2
)

// Feature bits negotiated by a version-2 fast hello. LZ compression is
// only ever granted together with mux — the compressed flag lives in the
// per-frame mux envelope, so there is nowhere to signal it without one.
const (
	featureMux = 1 << 0 // multiplex N logical streams over the connection
	featureLZ  = 1 << 1 // per-frame internal/lz payload compression
)

// ErrFastSyncRejected marks a fast-path msgHelloV1 open that the peer
// answered with msgError instead of msgHelloReplyV1 — the signature of a
// legacy peer that only speaks the multi-RTT flow (or a server that
// rejected the session outright). Callers that hold the dial (Client
// does) retry once over a fresh connection with the legacy negotiation;
// Set.Sync callers on a borrowed connection can do the same with
// WithFastSync(false).
var ErrFastSyncRejected = errors.New("pbs: peer rejected fast-path hello")

// ErrVerificationFailed is returned by SyncInitiator when the strong
// multiset-hash verification disagrees after the protocol reported
// completion — the ~2^−|sig| false-checksum event of §2.2.3.
var ErrVerificationFailed = errors.New("pbs: strong verification failed")

// maxFrame bounds a frame to keep a malicious peer from forcing huge
// allocations.
const maxFrame = 64 << 20

// frameCoalesceLimit is the largest frame batch that gets copied into one
// contiguous buffer for a single Write. Beyond it, frames go out as a
// net.Buffers vector — one writev on a real TCP connection — instead of
// memcpy'ing megabytes.
const frameCoalesceLimit = 256 << 10

// appendFrame serializes one frame (length prefix, type, payload) onto dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// writeFrame emits one frame in a single Write: header and payload used to
// go out as two conn.Write calls, which on a TCP connection meant two
// segments (or a Nagle stall) per frame and dominated loopback sync
// latency. Small frames are coalesced through a pooled buffer; large ones
// go out as a gather write.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) <= frameCoalesceLimit {
		buf := getPayloadBuf()
		b := appendFrame((*buf)[:0], typ, payload)
		_, err := w.Write(b)
		*buf = b[:0]
		putPayloadBuf(buf)
		return err
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	bufs := net.Buffers{hdr[:], payload}
	_, err := bufs.WriteTo(w)
	return err
}

// writeFrames sends every frame a session step produced, in order,
// coalesced into one Write (one syscall, one TCP segment train) whenever
// the batch fits frameCoalesceLimit, and into one gather write otherwise.
func writeFrames(w io.Writer, frames []Frame) error {
	switch len(frames) {
	case 0:
		return nil
	case 1:
		return writeFrame(w, frames[0].Type, frames[0].Payload)
	}
	total := 0
	for _, f := range frames {
		total += 5 + len(f.Payload)
	}
	if total <= frameCoalesceLimit {
		buf := getPayloadBuf()
		b := (*buf)[:0]
		for _, f := range frames {
			b = appendFrame(b, f.Type, f.Payload)
		}
		_, err := w.Write(b)
		*buf = b[:0]
		putPayloadBuf(buf)
		return err
	}
	hdrs := make([]byte, 5*len(frames))
	bufs := make(net.Buffers, 0, 2*len(frames))
	for i, f := range frames {
		h := hdrs[5*i : 5*i+5]
		binary.BigEndian.PutUint32(h[:4], uint32(len(f.Payload)))
		h[4] = f.Type
		bufs = append(bufs, h)
		if len(f.Payload) > 0 {
			bufs = append(bufs, f.Payload)
		}
	}
	_, err := bufs.WriteTo(w)
	return err
}

// setNoDelay disables Nagle's algorithm on TCP connections. Go already
// defaults TCP_NODELAY on, but the single-RTT fast path depends on it, so
// every accept and dial sets it explicitly rather than trusting a default
// that platform-specific dialers have been known to change.
func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
}

func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	return readFrameLimit(r, maxFrame)
}

// frameChunk is the increment readFrameLimit grows a payload buffer by, so
// held memory tracks bytes actually delivered rather than bytes claimed.
const frameChunk = 256 << 10

// frameLimitError reports a frame rejected on its declared size alone,
// before any payload was read. The Server matches on it to tell a
// budget-capped rejection apart from transport failures.
type frameLimitError struct{ n uint32 }

func (e *frameLimitError) Error() string {
	return fmt.Sprintf("pbs: frame of %d bytes exceeds limit", e.n)
}

// readFrameLimit reads one frame whose payload may not exceed limit. The
// payload buffer grows chunk-wise as data arrives: a peer that declares a
// huge frame and then stalls pins (at most) one chunk, not the claimed
// size — the allocation-amplification defense the Server relies on when
// it multiplies connections by the hundreds.
func readFrameLimit(r io.Reader, limit uint32) (typ byte, payload []byte, err error) {
	return readFrameInto(r, limit, nil)
}

// readFrameInto is readFrameLimit reading the payload into buf's capacity
// (buf must have length 0). A session pump that hands the previous frame's
// buffer back in reads its whole exchange into one steadily-sized
// allocation instead of one fresh payload per frame — with thousands of
// concurrent sessions the difference is most of the server's allocation
// churn. The returned payload aliases buf whenever it fits, so callers
// must not hand the buffer to a new frame read while the previous payload
// is still in use; the chunk-wise growth defense above still applies to
// capacity beyond what buf already owns.
func readFrameInto(r io.Reader, limit uint32, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > limit {
		return 0, nil, &frameLimitError{n: n}
	}
	payload = buf[:0]
	for uint32(len(payload)) < n {
		take := n - uint32(len(payload))
		// Capacity already owned is free to fill in one read; beyond it,
		// grow by at most one chunk per read.
		if owned := uint32(cap(payload) - len(payload)); owned > 0 && take > owned {
			take = owned
		} else if owned == 0 && take > frameChunk {
			take = frameChunk
		}
		start := len(payload)
		payload = slices.Grow(payload, int(take))[:start+int(take)]
		if _, err = io.ReadFull(r, payload[start:]); err != nil {
			return 0, nil, err
		}
	}
	return hdr[4], payload, nil
}

// payloadPool recycles frame payload buffers across sessions and
// connections. Buffers that ballooned past maxPooledBuf (a legitimately
// huge frame) are dropped instead of pinned in the pool.
var payloadPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4<<10); return &b },
}

const maxPooledBuf = 1 << 20

func getPayloadBuf() *[]byte { return payloadPool.Get().(*[]byte) }

// poolableBuf reports whether a payload buffer of capacity c may return
// to payloadPool: a single near-maxFrame hostile frame must not pin tens
// of megabytes in the pool forever.
func poolableBuf(c int) bool { return c <= maxPooledBuf }

func putPayloadBuf(b *[]byte) {
	if poolableBuf(cap(*b)) {
		*b = (*b)[:0]
		payloadPool.Put(b)
	}
}

// encodeSketches serializes ToW sketch values as zigzag varints.
func encodeSketches(ys []int64) []byte {
	buf := make([]byte, 0, len(ys)*3+10)
	buf = binary.AppendUvarint(buf, uint64(len(ys)))
	for _, y := range ys {
		buf = binary.AppendVarint(buf, y)
	}
	return buf
}

func decodeSketches(b []byte) ([]int64, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > 1<<20 {
		return nil, fmt.Errorf("pbs: bad sketch count")
	}
	b = b[k:]
	ys := make([]int64, n)
	for i := range ys {
		v, k := binary.Varint(b)
		if k <= 0 {
			return nil, fmt.Errorf("pbs: truncated sketches")
		}
		ys[i] = v
		b = b[k:]
	}
	// A corrupted frame must fail loudly, not half-parse: the declared
	// count has to consume the payload exactly.
	if len(b) != 0 {
		return nil, fmt.Errorf("pbs: %d trailing bytes after sketches", len(b))
	}
	return ys, nil
}

// Fast-path payload layouts. Every variable-length field is
// uvarint-length-prefixed except the round-1 message, which runs to the
// end of the frame (it is last, and its own codec rejects trailing bytes).
//
//	msgHelloV1:      version | flags | len(name) name | d_spec |
//	                 len(sketches) sketches | round-1 message
//	msgHelloReplyV1: version | flags | d̂ | [len(digest) digest] |
//	                 round-1 reply
const (
	fastHelloFlagWantDigest   = 1 << 0 // initiator asks for the verify digest
	fastHelloFlagWantMux      = 1 << 1 // v2: initiator offers stream multiplexing
	fastHelloFlagWantLZ       = 1 << 2 // v2: initiator offers lz frame compression
	fastHelloFlagWantAdaptive = 1 << 3 // initiator offers adaptive round re-planning

	fastReplyFlagAnswered = 1 << 0 // the speculative round was answered
	fastReplyFlagDigest   = 1 << 1 // a verification digest is attached
	fastReplyFlagMux      = 1 << 2 // v2: responder granted multiplexing
	fastReplyFlagLZ       = 1 << 3 // v2: responder granted lz compression
	fastReplyFlagAdaptive = 1 << 4 // responder granted adaptive round re-planning
)

// Adaptive round re-planning is negotiated in the same hello exchange but
// independently of the version-2 feature bits: it needs no mux envelope,
// so it works on a plain version-1 fast session. The grant is carried as a
// reply flag rather than a feature bit because version-1 replies must keep
// an empty feature set (initiators reject anything else). Peers that
// predate the flag ignore unknown bits on both sides, so the offer
// degrades to a static-plan session, never an error. Once granted, every
// round message with round number ≥ 2 carries a re-derived (m, t) header —
// see internal/core's adaptive round format.

// maxFastNameLen bounds the set name carried in a fast hello (the legacy
// msgHello is implicitly bounded by the frame limit; here the name shares
// the frame with the sketch and round payloads, so it gets its own cap).
const maxFastNameLen = 1 << 10

// fastHello is the decoded form of a msgHelloV1 payload. Byte-slice
// fields alias the frame payload; Step consumes them before returning.
type fastHello struct {
	version      uint64
	wantDigest   bool
	wantAdaptive bool   // initiator offers adaptive round re-planning
	features     uint64 // requested feature bits (featureMux | featureLZ), v2 only
	name         string
	specD        uint64 // speculative difference bound the round was sized for
	sketches     []byte // encodeSketches form
	round1       []byte // Alice's round 1 built under plan(specD)
}

func appendFastHello(dst []byte, h fastHello) []byte {
	dst = binary.AppendUvarint(dst, h.version)
	var flags uint64
	if h.wantDigest {
		flags |= fastHelloFlagWantDigest
	}
	if h.wantAdaptive {
		flags |= fastHelloFlagWantAdaptive
	}
	if h.features&featureMux != 0 {
		flags |= fastHelloFlagWantMux
	}
	if h.features&featureLZ != 0 {
		flags |= fastHelloFlagWantLZ
	}
	dst = binary.AppendUvarint(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(h.name)))
	dst = append(dst, h.name...)
	dst = binary.AppendUvarint(dst, h.specD)
	dst = binary.AppendUvarint(dst, uint64(len(h.sketches)))
	dst = append(dst, h.sketches...)
	return append(dst, h.round1...)
}

// cutUvarint decodes one uvarint off the front of b.
func cutUvarint(b []byte, what string) (uint64, []byte, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, fmt.Errorf("pbs: fast hello: truncated %s", what)
	}
	return v, b[k:], nil
}

// cutBytes decodes a uvarint-length-prefixed byte field off the front of
// b, bounding the declared length by limit.
func cutBytes(b []byte, limit uint64, what string) ([]byte, []byte, error) {
	n, b, err := cutUvarint(b, what)
	if err != nil {
		return nil, nil, err
	}
	if n > limit || n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("pbs: fast hello: oversized %s", what)
	}
	return b[:n], b[n:], nil
}

func parseFastHello(b []byte) (h fastHello, err error) {
	if h.version, b, err = cutUvarint(b, "version"); err != nil {
		return fastHello{}, err
	}
	flags, b, err := cutUvarint(b, "flags")
	if err != nil {
		return fastHello{}, err
	}
	h.wantDigest = flags&fastHelloFlagWantDigest != 0
	h.wantAdaptive = flags&fastHelloFlagWantAdaptive != 0
	if flags&fastHelloFlagWantMux != 0 {
		h.features |= featureMux
	}
	if flags&fastHelloFlagWantLZ != 0 {
		h.features |= featureLZ
	}
	name, b, err := cutBytes(b, maxFastNameLen, "set name")
	if err != nil {
		return fastHello{}, err
	}
	h.name = string(name)
	if h.specD, b, err = cutUvarint(b, "d_spec"); err != nil {
		return fastHello{}, err
	}
	if h.sketches, b, err = cutBytes(b, uint64(len(b)), "sketches"); err != nil {
		return fastHello{}, err
	}
	h.round1 = b
	return h, nil
}

// fastHelloSetName extracts just the set name from a msgHelloV1 payload —
// the Server admits a connection to a registered set before handing the
// frame to the session engine, exactly as it does for a legacy msgHello.
func fastHelloSetName(b []byte) (string, error) {
	h, err := parseFastHello(b)
	if err != nil {
		return "", err
	}
	return h.name, nil
}

// fastHelloReply is the decoded form of a msgHelloReplyV1 payload.
type fastHelloReply struct {
	version    uint64
	answered   bool
	adaptive   bool   // responder granted adaptive round re-planning
	features   uint64 // granted feature bits, v2 only (subset of the request)
	dhat       uint64 // true estimate from the piggybacked sketches
	digest     []byte // nil, or the strong-verification digest
	roundReply []byte // Bob's round-1 reply when answered
}

func appendFastHelloReply(dst []byte, r fastHelloReply) []byte {
	dst = binary.AppendUvarint(dst, r.version)
	var flags uint64
	if r.answered {
		flags |= fastReplyFlagAnswered
	}
	if r.digest != nil {
		flags |= fastReplyFlagDigest
	}
	if r.adaptive {
		flags |= fastReplyFlagAdaptive
	}
	if r.features&featureMux != 0 {
		flags |= fastReplyFlagMux
	}
	if r.features&featureLZ != 0 {
		flags |= fastReplyFlagLZ
	}
	dst = binary.AppendUvarint(dst, flags)
	dst = binary.AppendUvarint(dst, r.dhat)
	if r.digest != nil {
		dst = binary.AppendUvarint(dst, uint64(len(r.digest)))
		dst = append(dst, r.digest...)
	}
	return append(dst, r.roundReply...)
}

func parseFastHelloReply(b []byte) (r fastHelloReply, err error) {
	if r.version, b, err = cutUvarint(b, "reply version"); err != nil {
		return fastHelloReply{}, err
	}
	flags, b, err := cutUvarint(b, "reply flags")
	if err != nil {
		return fastHelloReply{}, err
	}
	r.answered = flags&fastReplyFlagAnswered != 0
	r.adaptive = flags&fastReplyFlagAdaptive != 0
	if flags&fastReplyFlagMux != 0 {
		r.features |= featureMux
	}
	if flags&fastReplyFlagLZ != 0 {
		r.features |= featureLZ
	}
	if r.dhat, b, err = cutUvarint(b, "d̂"); err != nil {
		return fastHelloReply{}, err
	}
	if flags&fastReplyFlagDigest != 0 {
		if r.digest, b, err = cutBytes(b, 64, "digest"); err != nil {
			return fastHelloReply{}, err
		}
	}
	if r.answered {
		r.roundReply = b
	} else if len(b) != 0 {
		return fastHelloReply{}, fmt.Errorf("pbs: fast hello: %d trailing bytes after declined reply", len(b))
	}
	return r, nil
}

// syncPlan derives the shared plan from the agreed d̂ — both sides must
// compute exactly the same Plan, so everything here is deterministic.
func syncPlan(dhatRounded uint64, opt Options) (core.Plan, error) {
	d := estimator.ConservativeD(float64(dhatRounded), opt.Gamma)
	return core.NewPlan(d, opt.coreConfig())
}

// deadlineConn is the deadline-capable subset of net.Conn the frame pumps
// use to honor context cancellation and idle timeouts. Any net.Conn
// (including net.Pipe ends) implements it.
type deadlineConn interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// aLongTimeAgo is a deadline certainly in the past: setting it unblocks
// any in-flight read or write immediately (the net/http interruption
// idiom).
var aLongTimeAgo = time.Unix(1, 0)

// framePump moves frames between a connection and a session under a
// context: the context's deadline (and the optional per-frame idle bound)
// are plumbed into the connection's read/write deadlines, and cancellation
// poisons the deadlines so blocked I/O returns immediately. On a bare
// io.ReadWriter without deadline support, cancellation is only observed
// between frames.
type framePump struct {
	ctx         context.Context
	conn        io.ReadWriter
	dl          deadlineConn // nil when conn cannot take deadlines
	idle        time.Duration
	ctxDeadline time.Time // zero when ctx has no deadline
	armed       bool      // a deadline was ever set on the conn
	buf         *[]byte   // pooled payload buffer reused across frames
}

// newFramePump builds a pump and starts the cancellation watcher. The
// returned stop function must be called when pumping ends; it releases the
// watcher goroutine (guaranteeing none is leaked, cancelled or not) and
// clears any deadline the pump set, so the caller gets its connection back
// in the state it lent it — reusable for a follow-up protocol.
func newFramePump(ctx context.Context, conn io.ReadWriter, idle time.Duration) (*framePump, func()) {
	p := &framePump{ctx: ctx, conn: conn, idle: idle, buf: getPayloadBuf()}
	p.dl, _ = conn.(deadlineConn)
	if d, ok := ctx.Deadline(); ok {
		p.ctxDeadline = d
	}
	var (
		done   chan struct{}
		exited chan struct{}
	)
	if p.dl != nil && ctx.Done() != nil {
		done = make(chan struct{})
		exited = make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-ctx.Done():
				p.armed = true
				p.dl.SetReadDeadline(aLongTimeAgo)
				p.dl.SetWriteDeadline(aLongTimeAgo)
			case <-done:
			}
		}()
	}
	stop := func() {
		if done != nil {
			close(done)
			// Wait the watcher out so its poisoning cannot land after the
			// reset below (the channels also order its p.armed write).
			<-exited
		}
		if p.dl != nil && p.armed {
			p.dl.SetReadDeadline(time.Time{})
			p.dl.SetWriteDeadline(time.Time{})
		}
		if p.buf != nil {
			putPayloadBuf(p.buf)
			p.buf = nil
		}
	}
	return p, stop
}

// deadline returns the effective per-operation deadline: the sooner of the
// context deadline and now+idle; zero when neither applies.
func (p *framePump) deadline() time.Time {
	d := p.ctxDeadline
	if p.idle > 0 {
		if id := time.Now().Add(p.idle); d.IsZero() || id.Before(d) {
			d = id
		}
	}
	return d
}

// armRead prepares the connection for one frame read. The post-set
// re-check closes the race where cancellation fires between the check and
// the deadline store: whichever of the watcher and this sequence runs
// last leaves the poisoned deadline in place.
func (p *framePump) armRead() {
	if p.dl == nil {
		return
	}
	if d := p.deadline(); !d.IsZero() {
		p.armed = true
		p.dl.SetReadDeadline(d)
	}
	if p.ctx.Err() != nil {
		p.armed = true
		p.dl.SetReadDeadline(aLongTimeAgo)
	}
}

func (p *framePump) armWrite() {
	if p.dl == nil {
		return
	}
	if d := p.deadline(); !d.IsZero() {
		p.armed = true
		p.dl.SetWriteDeadline(d)
	}
	if p.ctx.Err() != nil {
		p.armed = true
		p.dl.SetWriteDeadline(aLongTimeAgo)
	}
}

// readFrame reads one frame, honoring cancellation and deadlines. The
// payload is read into the pump's pooled buffer, valid until the next
// readFrame: session Steps fully consume a payload before returning, so
// one steady buffer serves the whole exchange.
func (p *framePump) readFrame() (byte, []byte, error) {
	if err := p.ctx.Err(); err != nil {
		return 0, nil, err
	}
	p.armRead()
	typ, payload, err := readFrameInto(p.conn, maxFrame, (*p.buf)[:0])
	if payload != nil {
		*p.buf = payload[:0]
	}
	if err != nil {
		return 0, nil, p.mapErr(err)
	}
	return typ, payload, nil
}

// writeFrames sends every frame a session step produced, in order.
func (p *framePump) writeFrames(frames []Frame) error {
	if len(frames) == 0 {
		return nil
	}
	p.armWrite()
	return p.mapErr(writeFrames(p.conn, frames))
}

// mapErr attributes an I/O failure to the context when the context ended:
// the poisoned-deadline interruption surfaces as a timeout error from the
// conn, but the caller asked for cancellation and gets ctx.Err(). A
// timeout at or past the context deadline is attributed the same way even
// if the context's own timer has not fired yet — the conn deadline and the
// ctx timer are armed for the same instant and can resolve in either
// order.
func (p *framePump) mapErr(err error) error {
	if err == nil {
		return nil
	}
	if cerr := p.ctx.Err(); cerr != nil {
		return cerr
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() &&
		!p.ctxDeadline.IsZero() && !time.Now().Before(p.ctxDeadline) {
		return context.DeadlineExceeded
	}
	return err
}

// runInitiator pumps an initiator session over conn until done, the
// context ends, or the exchange fails.
func runInitiator(ctx context.Context, conn io.ReadWriter, s *InitiatorSession, opening []Frame, idle time.Duration) (*Result, error) {
	p, stop := newFramePump(ctx, conn, idle)
	defer stop()
	if err := p.writeFrames(opening); err != nil {
		return nil, err
	}
	for {
		typ, payload, err := p.readFrame()
		if err != nil {
			return nil, err
		}
		out, done, stepErr := s.Step(typ, payload)
		// Frames are flushed even on error: a failed strong verification
		// still closes the session with msgDone.
		if werr := p.writeFrames(out); werr != nil && stepErr == nil {
			stepErr = werr
		}
		if stepErr != nil {
			return nil, stepErr
		}
		if done {
			return s.Result(), nil
		}
	}
}

// runResponder pumps a responder session over conn until the initiator
// closes it, the context ends, or the exchange fails. Step failures are
// reported to the peer as a msgError frame before returning, so a blocking
// initiator gets the diagnostic instead of waiting forever on a reply that
// will never come.
func runResponder(ctx context.Context, conn io.ReadWriter, s *ResponderSession, idle time.Duration) error {
	p, stop := newFramePump(ctx, conn, idle)
	defer stop()
	for {
		typ, payload, err := p.readFrame()
		if err != nil {
			return err
		}
		out, done, stepErr := s.Step(typ, payload)
		if werr := p.writeFrames(out); werr != nil && stepErr == nil {
			stepErr = werr
		}
		if stepErr != nil {
			notifyPeerError(conn, stepErr)
			return stepErr
		}
		if done {
			return nil
		}
	}
}

// SyncInitiator runs the full protocol over conn and learns the set
// difference. It blocks until the exchange completes or fails. The
// responder side must run SyncResponder (or a server-driven
// ResponderSession) with identical Options.
//
// SyncInitiator is the pre-Set spelling of Set.Sync with a background
// context; prefer the Set form, which adds cancellation, deadlines,
// streaming deltas, and state reuse across repeated syncs. The wire bytes
// are identical either way.
func SyncInitiator(set []uint64, conn io.ReadWriter, o *Options) (*Result, error) {
	s, opening, err := NewInitiatorSession(set, o)
	if err != nil {
		return nil, err
	}
	return runInitiator(context.Background(), conn, s, opening, 0)
}

// SyncResponder serves one full protocol session over conn. It returns nil
// when the initiator signals completion.
//
// SyncResponder is the pre-Set spelling of Set.Respond with a background
// context; prefer the Set form. The wire bytes are identical either way.
func SyncResponder(set []uint64, conn io.ReadWriter, o *Options) error {
	s, err := NewResponderSession(set, o)
	if err != nil {
		return err
	}
	return runResponder(context.Background(), conn, s, 0)
}

// notifyPeerError best-effort sends a msgError diagnostic. The write is
// bounded by a deadline when the transport supports one; on a bare
// io.ReadWriter (where an unread write could block forever) it is skipped.
func notifyPeerError(conn io.ReadWriter, stepErr error) {
	dw, ok := conn.(interface{ SetWriteDeadline(time.Time) error })
	if !ok {
		return
	}
	dw.SetWriteDeadline(time.Now().Add(time.Second))
	writeFrame(conn, msgError, []byte(stepErr.Error()))
	dw.SetWriteDeadline(time.Time{})
}
