package pbs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"pbs/internal/core"
	"pbs/internal/estimator"
	"pbs/internal/msethash"
)

// This file implements the complete wire protocol over an io.ReadWriter:
// the Tug-of-War estimation phase (§6.2), deterministic parameter
// derivation on both sides, the multi-round PBS exchange, and an optional
// strong final verification using a multiset hash (the §2.2.3 hardening).
//
// Message flow (I = initiator, R = responder):
//
//	I -> R  msgEstimate      ℓ ToW sketches of I's set
//	R -> I  msgEstimateReply round(d̂) computed against R's sketches
//	I -> R  msgRound         scope descriptors + BCH codewords   ┐ repeated
//	R -> I  msgRoundReply    positions, XOR sums, checksums      ┘ per round
//	I -> R  msgVerify        (only with StrongVerify)
//	R -> I  msgVerifyReply   32-byte multiset-hash digest of R's set
//	I -> R  msgDone          closes the session
//
// Frames are length-prefixed with a one-byte type. Every parameter both
// sides must share (seed, δ, p0, r, signature width) travels out of band in
// Options, as a deployment would pin them in its protocol version.
// Options.Parallelism is the exception: it only sizes the local worker pool
// for per-group decoding, produces byte-identical frames for any value, and
// so may differ freely between the two endpoints.

const (
	msgEstimate = iota + 1
	msgEstimateReply
	msgRound
	msgRoundReply
	msgVerify
	msgVerifyReply
	msgDone
)

// ErrVerificationFailed is returned by SyncInitiator when the strong
// multiset-hash verification disagrees after the protocol reported
// completion — the ~2^−|sig| false-checksum event of §2.2.3.
var ErrVerificationFailed = errors.New("pbs: strong verification failed")

// maxFrame bounds a frame to keep a malicious peer from forcing huge
// allocations.
const maxFrame = 64 << 20

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("pbs: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

func expectFrame(r io.Reader, want byte) ([]byte, error) {
	typ, payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("pbs: expected message type %d, got %d", want, typ)
	}
	return payload, nil
}

// encodeSketches serializes ToW sketch values as zigzag varints.
func encodeSketches(ys []int64) []byte {
	buf := make([]byte, 0, len(ys)*3+10)
	buf = binary.AppendUvarint(buf, uint64(len(ys)))
	for _, y := range ys {
		buf = binary.AppendVarint(buf, y)
	}
	return buf
}

func decodeSketches(b []byte) ([]int64, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > 1<<20 {
		return nil, fmt.Errorf("pbs: bad sketch count")
	}
	b = b[k:]
	ys := make([]int64, n)
	for i := range ys {
		v, k := binary.Varint(b)
		if k <= 0 {
			return nil, fmt.Errorf("pbs: truncated sketches")
		}
		ys[i] = v
		b = b[k:]
	}
	return ys, nil
}

// syncPlan derives the shared plan from the agreed d̂ — both sides must
// compute exactly the same Plan, so everything here is deterministic.
func syncPlan(dhatRounded uint64, opt Options) (Plan, error) {
	d := estimator.ConservativeD(float64(dhatRounded), opt.Gamma)
	return core.NewPlan(d, opt.coreConfig())
}

// SyncInitiator runs the full protocol over conn and learns the set
// difference. It blocks until the exchange completes or fails. The
// responder side must run SyncResponder with identical Options.
func SyncInitiator(set []uint64, conn io.ReadWriter, o *Options) (*Result, error) {
	opt := o.withDefaults()

	// Phase 1: estimation.
	tow, err := estimator.NewToW(opt.EstimatorSketches, opt.Seed^0x70E57)
	if err != nil {
		return nil, err
	}
	ys := tow.Sketch(set)
	est := encodeSketches(ys)
	if err := writeFrame(conn, msgEstimate, est); err != nil {
		return nil, err
	}
	reply, err := expectFrame(conn, msgEstimateReply)
	if err != nil {
		return nil, err
	}
	dhat, k := binary.Uvarint(reply)
	if k <= 0 {
		return nil, fmt.Errorf("pbs: bad estimate reply")
	}
	estBytes := len(est) + len(reply)

	plan, err := syncPlan(dhat, opt)
	if err != nil {
		return nil, err
	}
	alice, err := core.NewAlice(set, plan)
	if err != nil {
		return nil, err
	}

	// Phase 2: rounds.
	var st core.Stats
	maxRounds := plan.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	for round := 0; round < maxRounds && !alice.Done(); round++ {
		msg, err := alice.BuildRound()
		if err != nil {
			return nil, err
		}
		if msg == nil {
			break
		}
		if err := writeFrame(conn, msgRound, msg); err != nil {
			return nil, err
		}
		rr, err := expectFrame(conn, msgRoundReply)
		if err != nil {
			return nil, err
		}
		if err := alice.AbsorbReply(rr); err != nil {
			return nil, err
		}
		st.Rounds++
		st.AliceWireBits += len(msg) * 8
		st.BobWireBits += len(rr) * 8
	}

	res := &Result{
		Difference: alice.Difference(),
		Complete:   alice.Done(),
		Rounds:     st.Rounds,
		EstimatedD: estimator.ConservativeD(float64(dhat), opt.Gamma),
		// The initiator only knows its own payload bits exactly; the
		// peer's contribution is included in WireBytes.
		PayloadBytes:   (alice.PayloadBits() + 7) / 8,
		WireBytes:      (st.AliceWireBits+st.BobWireBits)/8 + estBytes,
		EstimatorBytes: estBytes,
	}

	// Phase 3: optional strong verification (§2.2.3).
	if opt.StrongVerify && res.Complete {
		if err := writeFrame(conn, msgVerify, nil); err != nil {
			return nil, err
		}
		vr, err := expectFrame(conn, msgVerifyReply)
		if err != nil {
			return nil, err
		}
		theirs, ok := msethash.DigestFromBytes(vr)
		if !ok {
			return nil, fmt.Errorf("pbs: malformed verification digest")
		}
		h := msethash.New(opt.Seed ^ 0x5EC)
		h.AddSet(set)
		in := make(map[uint64]struct{}, len(set))
		for _, x := range set {
			in[x] = struct{}{}
		}
		for _, x := range res.Difference {
			if _, present := in[x]; present {
				h.Remove(x)
			} else {
				h.Add(x)
			}
		}
		if h.Sum() != theirs {
			writeFrame(conn, msgDone, nil)
			return nil, ErrVerificationFailed
		}
	}
	if err := writeFrame(conn, msgDone, nil); err != nil {
		return nil, err
	}
	return res, nil
}

// SyncResponder serves one full protocol session over conn. It returns nil
// when the initiator signals completion.
func SyncResponder(set []uint64, conn io.ReadWriter, o *Options) error {
	opt := o.withDefaults()
	tow, err := estimator.NewToW(opt.EstimatorSketches, opt.Seed^0x70E57)
	if err != nil {
		return err
	}

	var bob *core.Bob // created after the estimate fixes the plan
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case msgEstimate:
			theirs, err := decodeSketches(payload)
			if err != nil {
				return err
			}
			if len(theirs) != opt.EstimatorSketches {
				return fmt.Errorf("pbs: peer sent %d sketches, want %d", len(theirs), opt.EstimatorSketches)
			}
			mine := tow.Sketch(set)
			dhatF, err := tow.Estimate(theirs, mine)
			if err != nil {
				return err
			}
			dhat := uint64(math.Round(dhatF))
			plan, err := syncPlan(dhat, opt)
			if err != nil {
				return err
			}
			bob, err = core.NewBob(set, plan)
			if err != nil {
				return err
			}
			buf := binary.AppendUvarint(nil, dhat)
			if err := writeFrame(conn, msgEstimateReply, buf); err != nil {
				return err
			}
		case msgRound:
			if bob == nil {
				return fmt.Errorf("pbs: round before estimation")
			}
			reply, err := bob.HandleRound(payload)
			if err != nil {
				return err
			}
			if err := writeFrame(conn, msgRoundReply, reply); err != nil {
				return err
			}
		case msgVerify:
			h := msethash.New(opt.Seed ^ 0x5EC)
			h.AddSet(set)
			d := h.Sum()
			if err := writeFrame(conn, msgVerifyReply, d.Bytes()); err != nil {
				return err
			}
		case msgDone:
			return nil
		default:
			return fmt.Errorf("pbs: unexpected message type %d", typ)
		}
	}
}
