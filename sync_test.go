package pbs

import (
	"encoding/binary"
	"errors"
	"math"
	"net"
	"testing"

	"pbs/internal/core"
	"pbs/internal/estimator"
	"pbs/internal/workload"
)

// runSync drives a full wire session over net.Pipe and returns the
// initiator's result plus the responder's error.
func runSync(t *testing.T, a, b []uint64, opt *Options) (*Result, error, error) {
	t.Helper()
	ca, cb := net.Pipe()
	respErr := make(chan error, 1)
	go func() {
		defer cb.Close()
		respErr <- SyncResponder(b, cb, opt)
	}()
	res, initErr := SyncInitiator(a, ca, opt)
	ca.Close()
	return res, initErr, <-respErr
}

func TestSyncFullProtocol(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 10000, D: 80, Seed: 1})
	res, initErr, respErr := runSync(t, p.A, p.B, &Options{Seed: 2})
	if initErr != nil || respErr != nil {
		t.Fatalf("init=%v resp=%v", initErr, respErr)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
	if res.EstimatorBytes <= 0 {
		t.Error("estimation phase bytes not accounted")
	}
	if res.EstimatedD < 30 || res.EstimatedD > 300 {
		t.Errorf("EstimatedD = %d for d=80", res.EstimatedD)
	}
}

func TestSyncStrongVerify(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 5000, D: 30, Seed: 3})
	res, initErr, respErr := runSync(t, p.A, p.B, &Options{Seed: 4, StrongVerify: true})
	if initErr != nil || respErr != nil {
		t.Fatalf("init=%v resp=%v", initErr, respErr)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestSyncIdenticalSets(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 0, Seed: 5})
	res, initErr, respErr := runSync(t, p.A, p.A, &Options{Seed: 6, StrongVerify: true})
	if initErr != nil || respErr != nil {
		t.Fatalf("init=%v resp=%v", initErr, respErr)
	}
	if !res.Complete || len(res.Difference) != 0 {
		t.Fatal("identical sets should reconcile to empty difference")
	}
}

func TestSyncBidirectionalDifference(t *testing.T) {
	p := workload.MustGenerate(workload.Config{
		UniverseBits: 32, SizeA: 5000, D: 50, BOnlyFrac: 0.4, Seed: 7,
	})
	res, initErr, respErr := runSync(t, p.A, p.B, &Options{Seed: 8})
	if initErr != nil || respErr != nil {
		t.Fatalf("init=%v resp=%v", initErr, respErr)
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestSyncSeedMismatchDetected(t *testing.T) {
	// Different seeds mean different hash functions: the protocol cannot
	// silently produce a wrong difference — checksums keep failing and the
	// round budget runs out (Complete=false), or strong verify trips.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 10, Seed: 9})
	ca, cb := net.Pipe()
	respDone := make(chan error, 1)
	go func() {
		defer cb.Close()
		respDone <- SyncResponder(p.B, cb, &Options{Seed: 111, MaxRounds: 3})
	}()
	res, err := SyncInitiator(p.A, ca, &Options{Seed: 222, MaxRounds: 3})
	ca.Close()
	<-respDone
	if err == nil && res.Complete {
		// Completing correctly with mismatched seeds is impossible unless
		// the difference was trivially empty.
		if len(res.Difference) != 0 || len(p.Diff) != 0 {
			t.Fatal("mismatched seeds must not yield a 'complete' wrong answer")
		}
	}
}

func TestSyncStrongVerifyCatchesCorruption(t *testing.T) {
	// Simulate the false-verification corner: the responder claims a
	// different set at verification time. Run a responder whose verify
	// digest is computed over a mutated set by giving the responder a set
	// that differs only after reconciliation would pass... simplest
	// faithful check: mismatched StrongVerify seeds make digests disagree,
	// which must surface as ErrVerificationFailed rather than success.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 5, Seed: 10})
	ca, cb := net.Pipe()
	go func() {
		defer cb.Close()
		// Responder with a tampered verification digest: emulate by
		// serving a set with one extra element only for the verify phase.
		// Easiest faithful emulation: run the normal responder on a set
		// with one extra element and a plan seeded identically; the
		// protocol rounds will fix the difference (it is a real difference)
		// so instead we tamper the seed only for msethash by flipping
		// StrongVerify seed via Options.Seed — not possible per-phase, so
		// this test uses a raw responder on a *different* set: rounds will
		// reconcile to that set, and verification then passes. The real
		// corruption case is exercised in unit form in msethash tests; here
		// we only pin that a digest mismatch propagates as
		// ErrVerificationFailed using a hacked responder below.
		corrupt := make([]byte, 32)
		for i := range corrupt {
			corrupt[i] = byte(i + 1)
		}
		hackedResponder(p.B, cb, corrupt)
	}()
	_, err := SyncInitiator(p.A, ca, &Options{Seed: 11, StrongVerify: true})
	ca.Close()
	if !errors.Is(err, ErrVerificationFailed) {
		t.Fatalf("want ErrVerificationFailed, got %v", err)
	}
}

// hackedResponder behaves like SyncResponder but answers the verification
// phase with the given digest bytes instead of the honest multiset hash,
// emulating the false-verification corner case (and, with a wrong-length
// digest, a protocol-corruption one).
func hackedResponder(set []uint64, conn net.Conn, digest []byte) {
	opt := (&Options{Seed: 11}).withDefaults()
	tow, err := estimator.NewToW(opt.EstimatorSketches, opt.Seed^towSeedTweak)
	if err != nil {
		return
	}
	var bob *core.Bob
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case msgEstimate:
			theirs, err := decodeSketches(payload)
			if err != nil {
				return
			}
			dhatF, err := tow.Estimate(theirs, tow.Sketch(set))
			if err != nil {
				return
			}
			dhat := uint64(math.Round(dhatF))
			plan, err := syncPlan(dhat, opt)
			if err != nil {
				return
			}
			if bob, err = core.NewBob(set, plan); err != nil {
				return
			}
			writeFrame(conn, msgEstimateReply, binary.AppendUvarint(nil, dhat))
		case msgRound:
			reply, err := bob.HandleRound(payload)
			if err != nil {
				return
			}
			writeFrame(conn, msgRoundReply, reply)
		case msgVerify:
			writeFrame(conn, msgVerifyReply, digest)
		case msgDone:
			return
		}
	}
}
