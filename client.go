package pbs

import (
	"fmt"
	"net"
	"time"
)

// Client reconciles a local set against a pbs Server over TCP. It is the
// initiator side of the wire protocol plus the thin server envelope: an
// optional msgHello naming the remote set, and msgError diagnostics
// surfaced as errors.
//
// The zero value is not usable — Addr is required — but every other field
// defaults sensibly. A Client is stateless and safe for concurrent use;
// each Sync dials its own connection.
type Client struct {
	// Addr is the server address (host:port).
	Addr string
	// Set names the server-side set to reconcile against. Empty means the
	// server's default set (DefaultSetName); no msgHello is sent.
	Set string
	// Options is the protocol configuration; it must match the server's.
	Options *Options
	// DialTimeout bounds the TCP dial (default 10s).
	DialTimeout time.Duration
	// Timeout bounds the whole exchange as a connection deadline
	// (0 = none).
	Timeout time.Duration
}

// Sync dials the server and learns local △ remote for the configured
// remote set. It blocks until the exchange completes or fails.
func (c *Client) Sync(local []uint64) (*Result, error) {
	if c.Addr == "" {
		return nil, fmt.Errorf("pbs: client has no server address")
	}
	dt := c.DialTimeout
	if dt == 0 {
		dt = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.Addr, dt)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if c.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	if c.Set != "" {
		if err := writeFrame(conn, msgHello, []byte(c.Set)); err != nil {
			return nil, err
		}
	}
	res, err := SyncInitiator(local, conn, c.Options)
	if res != nil && c.Set != "" {
		// SyncInitiator's accounting starts at the estimate frame; the
		// hello envelope is this client's extra cost, so fold it in to
		// keep WireBytes reconcilable with the server's BytesIn.
		res.WireBytes += 5 + len(c.Set)
	}
	return res, err
}
