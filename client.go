package pbs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// DefaultClientIdleTimeout is the per-frame deadline a Client applies when
// IdleTimeout is zero. Servers drop silent sessions after their own
// IdleTimeout (30s by default); mirroring that bound on the client side
// means a stalled, overloaded, or hostile server fails the sync with a
// timeout instead of hanging the caller forever.
const DefaultClientIdleTimeout = 30 * time.Second

// Client reconciles a local set against a pbs Server over TCP. It is the
// initiator side of the wire protocol plus the thin server envelope: an
// optional msgHello naming the remote set, and msgError diagnostics
// surfaced as errors.
//
// The zero value is not usable — Addr is required — but every other field
// defaults sensibly. A Client is stateless and safe for concurrent use;
// each Sync dials its own connection. Callers syncing the same data
// repeatedly should hold a Set and call Set.Sync over their own
// connections instead, reusing the validated snapshot and estimator sketch
// across syncs.
type Client struct {
	// Addr is the server address (host:port).
	Addr string
	// Set names the server-side set to reconcile against. Empty means the
	// server's default set (DefaultSetName); no msgHello is sent.
	Set string
	// Tenant, when non-empty, namespaces Set under a tenant: the wire name
	// becomes "Tenant/Set" ("Tenant/default" when Set is empty), which is
	// how a multi-tenant server addresses sets and accounts quotas. Leave
	// empty for unnamespaced (default-tenant) sets.
	Tenant string
	// Options is the protocol configuration; it must match the server's.
	Options *Options
	// DialTimeout bounds the TCP dial (default 10s).
	DialTimeout time.Duration
	// Timeout bounds the whole exchange (0 = none beyond the context's own
	// deadline). It is applied as a context deadline, which SyncContext
	// plumbs into the connection's read/write deadlines.
	Timeout time.Duration
	// IdleTimeout bounds the wait for each single frame: a server silent
	// for this long fails the sync with a timeout instead of hanging it.
	// 0 selects DefaultClientIdleTimeout; negative disables the bound.
	IdleTimeout time.Duration
	// LegacySync disables the single-RTT fast path and opens with the
	// multi-RTT protocol-0 negotiation. By default the client sends a
	// msgHelloV1 fast hello and, if the server answers with msgError
	// (a pre-fast-path build), transparently redials and retries the
	// legacy flow once — so leaving this false is safe against old
	// servers, at the cost of one wasted dial the first time.
	LegacySync bool
	// Retry, when set, retries retryable sync failures (dial errors,
	// mid-round disconnects, stalls, server-busy shedding) under the
	// policy: exponential backoff with full jitter, honoring any
	// retry-after hint the server sent. Retry.Dial defaults to the
	// client's own dialer. The fast-path downgrade negotiation composes
	// with it — each protocol leg gets its own attempt budget.
	Retry *RetryPolicy
}

// Sync dials the server and learns local △ remote for the configured
// remote set. It blocks until the exchange completes or fails. Equivalent
// to SyncContext with a background context.
func (c *Client) Sync(local []uint64) (*Result, error) {
	return c.SyncContext(context.Background(), local)
}

// SyncContext is Sync under a context: cancelling ctx (or reaching its
// deadline, or the Timeout field's) aborts the dial and the exchange
// promptly — the deadline is wired into the connection's read/write
// deadlines — and returns ctx.Err().
func (c *Client) SyncContext(ctx context.Context, local []uint64) (*Result, error) {
	if c.Addr == "" {
		return nil, fmt.Errorf("pbs: client has no server address")
	}
	set, err := NewSet(local, withBaseOptions(c.Options))
	if err != nil {
		return nil, err
	}
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	idle := c.IdleTimeout
	if idle == 0 {
		idle = DefaultClientIdleTimeout
	}
	syncOnce := func(fast bool) (*Result, error) {
		opts := []Option{WithIdleTimeout(idle), WithFastSync(fast)}
		if name := c.remoteName(); name != "" {
			opts = append(opts, WithSetName(name))
		}
		if c.Retry != nil {
			pol := *c.Retry
			if pol.Dial == nil {
				pol.Dial = c.dial
			}
			// Sync dials (and closes) every attempt's connection itself.
			return set.Sync(ctx, nil, append(opts, WithRetry(pol))...)
		}
		conn, err := c.dial(ctx)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		return set.Sync(ctx, conn, opts...)
	}
	res, err := syncOnce(!c.LegacySync)
	if err != nil && !c.LegacySync && errors.Is(err, ErrFastSyncRejected) {
		// The server does not speak the fast hello (or rejected it before
		// reading it); negotiate down to the multi-RTT flow over a fresh
		// connection. A genuine rejection (unknown set, capacity) repeats
		// here and surfaces as the server's own diagnostic.
		return syncOnce(false)
	}
	return res, err
}

// remoteName is the set name sent on the wire: Set, namespaced under
// Tenant when one is configured. A tenant with no set name addresses the
// tenant's own "default" set — distinct from the server-wide default.
func (c *Client) remoteName() string {
	if c.Tenant == "" {
		return c.Set
	}
	set := c.Set
	if set == "" {
		set = DefaultSetName
	}
	return c.Tenant + "/" + set
}

// dial opens one TCP connection to the server under the context and the
// configured dial timeout, with TCP_NODELAY set explicitly.
func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	dt := c.DialTimeout
	if dt == 0 {
		dt = 10 * time.Second
	}
	d := net.Dialer{Timeout: dt}
	conn, err := d.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return nil, err
	}
	setNoDelay(conn)
	return conn, nil
}
