package pbs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// dialMux dials the test server and wraps the connection for multiplexing.
func dialMux(t *testing.T, addr string, opts ...MuxOption) *MuxConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMuxConn(conn, opts...)
	t.Cleanup(func() { mc.Close() })
	return mc
}

// muxSyncClient runs client i's full fast sync on a fresh stream from mc
// and checks the exact difference, mirroring the per-connection clients of
// server_test.go.
func muxSyncClient(mc *MuxConn, base []uint64, opt *Options, i int) error {
	st, err := mc.Stream()
	if err != nil {
		return fmt.Errorf("client %d: Stream: %w", i, err)
	}
	defer st.Close()
	local, want := clientSetAndDiff(base, i)
	set, err := NewSet(local, WithOptions(*opt))
	if err != nil {
		return fmt.Errorf("client %d: %w", i, err)
	}
	res, err := set.Sync(context.Background(), st, WithFastSync(true), WithIdleTimeout(time.Minute))
	if err != nil {
		return fmt.Errorf("client %d: %w", i, err)
	}
	if !res.Complete {
		return fmt.Errorf("client %d: incomplete", i)
	}
	got, exp := sortedU64(res.Difference), sortedU64(want)
	if len(got) != len(exp) {
		return fmt.Errorf("client %d: |diff| = %d, want %d", i, len(got), len(exp))
	}
	for j := range got {
		if got[j] != exp[j] {
			return fmt.Errorf("client %d: diff mismatch at %d", i, j)
		}
	}
	return nil
}

// TestMuxManyStreamsOneConn is the multiplexing acceptance scenario: 64
// concurrent syncs interleaving over one dialed connection, every one
// learning its exact difference. Run with -race: the streams share the
// MuxConn's writer, reader, and stream table.
func TestMuxManyStreamsOneConn(t *testing.T) {
	base := testBaseSet(3000)
	opt := &Options{Seed: 7001}
	srv, addr := startTestServer(t, base, ServerOptions{Protocol: opt})
	mc := dialMux(t, addr)

	const streams = 64
	var wg sync.WaitGroup
	errCh := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := muxSyncClient(mc, base, opt, i); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if muxOn, _ := mc.Granted(); !muxOn {
		t.Fatal("server did not grant multiplexing")
	}
	st := waitForCompleted(t, srv, streams)
	if st.StreamsTotal != streams {
		t.Fatalf("StreamsTotal = %d, want %d", st.StreamsTotal, streams)
	}
	if st.StreamsOpen != 0 {
		t.Fatalf("StreamsOpen = %d after all sessions completed", st.StreamsOpen)
	}
}

// TestMuxStreamBudgetIsolation pins per-stream fault isolation: a stream
// that blows its byte budget gets a coded error and dies alone — a sibling
// syncing concurrently and a stream opened afterwards are untouched.
func TestMuxStreamBudgetIsolation(t *testing.T) {
	base := testBaseSet(2000)
	opt := &Options{Seed: 9201}
	_, addr := startTestServer(t, base, ServerOptions{
		Protocol:          opt,
		SessionByteBudget: 1 << 16,
	})
	mc := dialMux(t, addr)

	// The negotiating sync doubles as proof a clean session fits the budget.
	if err := muxSyncClient(mc, base, opt, 0); err != nil {
		t.Fatal(err)
	}

	stB, err := mc.Stream()
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	cErr := make(chan error, 1)
	go func() { cErr <- muxSyncClient(mc, base, opt, 1) }()

	// Stream B opens with a single frame twice the per-stream byte budget.
	if _, err := stB.Write(appendFrame(nil, msgRound, make([]byte, 128<<10))); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(stB)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgError {
		t.Fatalf("budget violation answered with type %d, want msgError", typ)
	}
	pe := parsePeerErrPayload(payload)
	if pe.Code != ErrCodeRejected || !strings.Contains(pe.Msg, "byte budget") {
		t.Fatalf("peer error %q with code %q, want rejected byte-budget error", pe.Msg, pe.Code)
	}

	if err := <-cErr; err != nil {
		t.Fatalf("sibling stream disturbed: %v", err)
	}
	if err := muxSyncClient(mc, base, opt, 2); err != nil {
		t.Fatalf("connection unusable after per-stream failure: %v", err)
	}
}

// TestMuxStreamIDExhaustion pins the allocator's upper bound: once the ID
// space is spent, Stream reports ErrStreamsExhausted instead of wrapping
// into IDs that could collide.
func TestMuxStreamIDExhaustion(t *testing.T) {
	base := testBaseSet(500)
	opt := &Options{Seed: 9301}
	_, addr := startTestServer(t, base, ServerOptions{Protocol: opt})
	mc := dialMux(t, addr)
	if err := muxSyncClient(mc, base, opt, 0); err != nil {
		t.Fatal(err)
	}
	mc.mu.Lock()
	mc.nextID = maxStreamID + 1
	mc.mu.Unlock()
	if _, err := mc.Stream(); !errors.Is(err, ErrStreamsExhausted) {
		t.Fatalf("Stream past the ID space: err = %v, want ErrStreamsExhausted", err)
	}
}

// muxEnvelopeFrames serializes session frames as enveloped wire frames on
// one stream: the open flag on the first frame when open is set, the close
// flag riding the session's own goodbye.
func muxEnvelopeFrames(dst []byte, id uint64, open bool, frames []Frame) []byte {
	for i, f := range frames {
		var flags uint64
		if open && i == 0 {
			flags |= muxFlagOpen
		}
		if f.Type == msgDone || f.Type == msgStreamClose {
			flags |= muxFlagClose
		}
		dst = muxAppendFrame(dst, id, flags, f.Type, f.Payload)
	}
	return dst
}

// readMuxFrame reads one enveloped frame off the raw connection and asserts
// it belongs to stream id.
func readMuxFrame(t *testing.T, conn net.Conn, id uint64) (byte, []byte) {
	t.Helper()
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	gotID, flags, body, err := parseMuxPayload(payload)
	if err != nil {
		t.Fatalf("parseMuxPayload: %v", err)
	}
	if flags&muxFlagCompressed != 0 {
		t.Fatalf("compressed frame on a connection that never offered compression")
	}
	if gotID != id {
		t.Fatalf("frame for stream %d, want %d", gotID, id)
	}
	return typ, body
}

// muxRawNegotiate drives the version-2 handshake by hand on a raw
// connection: the negotiating fast sync runs to completion on stream 1 —
// hello and reply under legacy framing, everything after the grant
// enveloped — and the granted feature bits are returned.
func muxRawNegotiate(t *testing.T, conn net.Conn, local []uint64, opt *Options, features uint64) uint64 {
	t.Helper()
	ss, err := NewSharedSet(local, opt)
	if err != nil {
		t.Fatal(err)
	}
	is, opening, err := ss.newFastInitiatorSessionFeatures(ss.opt, nil, "", 32, features, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range opening {
		if err := writeFrame(conn, f.Type, f.Payload); err != nil {
			t.Fatal(err)
		}
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgHelloReplyV1 {
		t.Fatalf("reply type %d, want msgHelloReplyV1", typ)
	}
	rep, err := parseFastHelloReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.features&featureMux == 0 {
		t.Fatalf("server declined mux: granted %#x", rep.features)
	}
	out, done, err := is.Step(typ, payload)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if b := muxEnvelopeFrames(nil, 1, false, out); len(b) > 0 {
			if _, err := conn.Write(b); err != nil {
				t.Fatal(err)
			}
		}
		if done {
			break
		}
		typ, body := readMuxFrame(t, conn, 1)
		out, done, err = is.Step(typ, body)
		if err != nil {
			t.Fatal(err)
		}
	}
	if res := is.Result(); res == nil || !res.Complete {
		t.Fatal("negotiating sync incomplete")
	}
	return rep.features
}

// muxRawSync drives one complete fast sync enveloped on stream id of an
// already-negotiated raw connection and returns its result.
func muxRawSync(t *testing.T, conn net.Conn, id uint64, local []uint64, opt *Options) *Result {
	t.Helper()
	ss, err := NewSharedSet(local, opt)
	if err != nil {
		t.Fatal(err)
	}
	is, opening, err := ss.newFastInitiatorSession(ss.opt, nil, "", 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(muxEnvelopeFrames(nil, id, true, opening)); err != nil {
		t.Fatal(err)
	}
	for {
		typ, body := readMuxFrame(t, conn, id)
		out, done, err := is.Step(typ, body)
		if err != nil {
			t.Fatal(err)
		}
		if b := muxEnvelopeFrames(nil, id, false, out); len(b) > 0 {
			if _, err := conn.Write(b); err != nil {
				t.Fatal(err)
			}
		}
		if done {
			break
		}
	}
	res := is.Result()
	if res == nil || !res.Complete {
		t.Fatalf("sync on stream %d incomplete", id)
	}
	return res
}

// TestMuxStreamIDReuse pins the server side of ID lifecycle: a stream ID
// freed by a completed session can carry a brand-new session later — IDs
// name live streams, not history.
func TestMuxStreamIDReuse(t *testing.T) {
	base := testBaseSet(1000)
	opt := &Options{Seed: 9401}
	srv, addr := startTestServer(t, base, ServerOptions{Protocol: opt})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	local0, _ := clientSetAndDiff(base, 0)
	muxRawNegotiate(t, conn, local0, opt, featureMux)
	for i := 1; i <= 2; i++ {
		local, want := clientSetAndDiff(base, i)
		res := muxRawSync(t, conn, 5, local, opt)
		got, exp := sortedU64(res.Difference), sortedU64(want)
		if len(got) != len(exp) {
			t.Fatalf("reuse round %d: |diff| = %d, want %d", i, len(got), len(exp))
		}
	}
	if st := waitForCompleted(t, srv, 3); st.StreamsTotal != 3 {
		t.Fatalf("StreamsTotal = %d, want 3", st.StreamsTotal)
	}
}

// TestMuxUnknownStreamRejected pins the demultiplexer's handling of frames
// for streams that were never opened: a coded rejection on that stream ID,
// with the connection and its other streams carrying on.
func TestMuxUnknownStreamRejected(t *testing.T) {
	base := testBaseSet(1000)
	opt := &Options{Seed: 9501}
	srv, addr := startTestServer(t, base, ServerOptions{Protocol: opt})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	local0, _ := clientSetAndDiff(base, 0)
	muxRawNegotiate(t, conn, local0, opt, featureMux)

	// A round frame for stream 99, which was never opened.
	if _, err := conn.Write(muxAppendFrame(nil, 99, 0, msgRound, []byte{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	typ, body := readMuxFrame(t, conn, 99)
	if typ != msgError {
		t.Fatalf("unknown stream answered with type %d, want msgError", typ)
	}
	pe := parsePeerErrPayload(body)
	if pe.Code != ErrCodeRejected || !strings.Contains(pe.Msg, "unknown stream") {
		t.Fatalf("peer error %q with code %q, want rejected unknown-stream error", pe.Msg, pe.Code)
	}
	if got := srv.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}

	// The rejection was per-stream: a fresh stream on the same connection
	// still completes.
	local2, _ := clientSetAndDiff(base, 2)
	muxRawSync(t, conn, 2, local2, opt)
	waitForCompleted(t, srv, 2)
}

// TestMuxCompression negotiates lz frame compression and checks large
// sketch frames actually shrink on the wire: the server's saved-bytes
// counter must move while every sync still reconciles exactly.
func TestMuxCompression(t *testing.T) {
	// A small set keeps the ToW counters tiny, so the zigzag-varint sketch
	// payload (4 KiB of it) is low-entropy and genuinely compressible —
	// lz.Compress declines high-entropy bodies rather than padding them.
	base := testBaseSet(8)
	opt := &Options{Seed: 8101, EstimatorSketches: 4096}
	srv, addr := startTestServer(t, base, ServerOptions{Protocol: opt})
	mc := dialMux(t, addr, WithMuxCompression(true))

	for i := 0; i < 2; i++ {
		if err := muxSyncClient(mc, base, opt, i); err != nil {
			t.Fatal(err)
		}
	}
	muxOn, lzOn := mc.Granted()
	if !muxOn || !lzOn {
		t.Fatalf("Granted() = (%v, %v), want both features", muxOn, lzOn)
	}
	st := waitForCompleted(t, srv, 2)
	if st.BytesSavedCompression <= 0 {
		t.Fatalf("BytesSavedCompression = %d after compressed sketch frames", st.BytesSavedCompression)
	}
}

// TestMuxDeclined pins the downgrade paths: a legacy single-stream peer and
// a server with mux disabled both answer the feature offer with a plain
// version-1 reply — the negotiating sync still completes as an ordinary
// fast sync and only later Stream calls report the decline.
func TestMuxDeclined(t *testing.T) {
	base := testBaseSet(500)
	opt := &Options{Seed: 9601}

	t.Run("LegacyPeer", func(t *testing.T) {
		serverSet, err := NewSet(base, WithOptions(*opt))
		if err != nil {
			t.Fatal(err)
		}
		ca, cb := net.Pipe()
		defer cb.Close()
		respErr := make(chan error, 1)
		go func() { respErr <- serverSet.Respond(context.Background(), cb, WithIdleTimeout(time.Second)) }()

		mc := NewMuxConn(ca)
		defer mc.Close()
		st, err := mc.Stream()
		if err != nil {
			t.Fatal(err)
		}
		local, want := clientSetAndDiff(base, 0)
		set, err := NewSet(local, WithOptions(*opt))
		if err != nil {
			t.Fatal(err)
		}
		res, err := set.Sync(context.Background(), st, WithFastSync(true), WithIdleTimeout(time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete || len(res.Difference) != len(want) {
			t.Fatalf("passthrough sync: complete=%v |diff|=%d, want %d", res.Complete, len(res.Difference), len(want))
		}
		if err := <-respErr; err != nil {
			t.Fatal(err)
		}
		if _, err := mc.Stream(); !errors.Is(err, ErrMuxDeclined) {
			t.Fatalf("second Stream: err = %v, want ErrMuxDeclined", err)
		}
		if muxOn, lzOn := mc.Granted(); muxOn || lzOn {
			t.Fatalf("Granted() = (%v, %v) from a legacy peer", muxOn, lzOn)
		}
	})

	t.Run("ServerMuxDisabled", func(t *testing.T) {
		_, addr := startTestServer(t, base, ServerOptions{Protocol: opt, MaxStreams: -1})
		mc := dialMux(t, addr)
		if err := muxSyncClient(mc, base, opt, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := mc.Stream(); !errors.Is(err, ErrMuxDeclined) {
			t.Fatalf("second Stream: err = %v, want ErrMuxDeclined", err)
		}
	})
}
