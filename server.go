package pbs

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pbs/internal/core"
	"pbs/internal/hist"
	"pbs/internal/lz"
	"pbs/internal/registry"
	"pbs/internal/setstore"
)

// Server answers reconciliation sessions concurrently over TCP (or any
// net.Listener). It is the deployment shape the non-blocking session
// engine exists for: every connection drives a ResponderSession against an
// immutable SharedSet from the server's registry, so N concurrent sessions
// share one validated snapshot of each set — one ToW sketch, one
// strong-verification digest, one group partition per plan size — instead
// of N private copies.
//
// A session manager enforces per-session limits on top of the engine's
// own hardening (Options.MaxD): a cap on concurrent sessions, an idle
// deadline per frame, a total byte budget per session, and a round
// budget. Violations are reported to the client as a final msgError frame
// before the connection closes, and counted in the server stats.
//
// Protocol: a client may open with a msgHello frame naming the registered
// set to reconcile against; without one the session uses DefaultSetName.
// Everything after that is the standard wire protocol of sync.go, so
// SyncInitiator (via Client) talks to a Server unchanged. A fast client
// instead opens with a single msgHelloV1 frame (name, sketches, and a
// speculative first round in one), which the server admits and answers
// identically — the common warm sync then completes in one round trip.
// After a completed
// session the connection stays open and accepts another hello/estimate, so
// a warm client (Set.Sync over a held connection) amortizes the dial
// across many syncs; each session gets fresh byte and round budgets.
type Server struct {
	opt ServerOptions
	// protoOpt is opt.Protocol with defaults applied, resolved once; every
	// session runs under it.
	protoOpt Options

	// sets is the sharded set registry: striped by name hash so lookups on
	// the session hot path take only one shard's read lock, with per-tenant
	// ("tenant/name") quota accounting layered on top.
	sets *registry.Registry[setSource]
	// hosted manages evictable persistent sets (see hosted.go); store is
	// the segment layer, non-nil once EnableHosting has opened DataDir.
	hosted      *hostedStore
	hostedErr   error
	store       *setstore.Store
	closeHosted sync.Once

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	// drainCh is closed (once) when the server starts closing, so accept
	// backoff sleeps and similar waits unblock immediately on Close or
	// Shutdown instead of riding out their timers.
	drainCh chan struct{}

	// connCount gauges accepted connections (including ones still before
	// their first frame) and backs the MaxSessions capacity check;
	// sessActive gauges connections with a protocol session in flight and
	// backs Stats().Active and Shutdown's drain, so an idle probe that
	// never sends a frame cannot hold up a graceful shutdown.
	connCount  atomic.Int64
	sessActive atomic.Int64

	accepted        atomic.Int64
	completed       atomic.Int64
	failed          atomic.Int64
	rejected        atomic.Int64
	shed            atomic.Int64
	bytesIn         atomic.Int64
	bytesOut        atomic.Int64
	rounds          atomic.Int64
	quotaRejections atomic.Int64

	// Mux accounting: streamsOpen gauges currently open mux streams across
	// all connections, streamsTotal counts every stream ever opened, and
	// bytesSaved sums the wire bytes the negotiated lz compression saved in
	// both directions.
	streamsOpen  atomic.Int64
	streamsTotal atomic.Int64
	bytesSaved   atomic.Int64

	// Adaptive-controller accounting across completed sessions: rounds
	// served under re-planned (m, t) parameters, and fast hellos whose
	// speculative round was answered in the opening reply (the initiator's
	// learned d̂ prior sized it right).
	adaptiveReplans atomic.Int64
	priorHits       atomic.Int64

	// Per-completed-session distributions (see ServerStats): wall-clock
	// latency in microseconds, protocol rounds, and wire bytes. Striped
	// atomics — recording is one atomic add, safe from every connection
	// goroutine at once.
	latencyHist hist.Histogram
	roundsHist  hist.Histogram
	bytesHist   hist.Histogram
}

// DefaultSetName is the registry entry a session reconciles against when
// the client does not send a msgHello frame.
const DefaultSetName = "default"

// Defaults for the per-session limits of ServerOptions.
const (
	DefaultMaxSessions       = 1024
	DefaultIdleTimeout       = 30 * time.Second
	DefaultSessionByteBudget = 16 * maxFrame             // 1 GiB of frames per session
	DefaultSessionMaxRounds  = 2 * core.DefaultMaxRounds // headroom over the engine's own cap
	// DefaultRetryAfterHint is the base retry-after hint attached to
	// busy-coded rejections when ServerOptions.RetryAfterHint is zero.
	DefaultRetryAfterHint = 250 * time.Millisecond
	// DefaultMaxStreams is the per-connection cap on concurrently open
	// mux streams when ServerOptions.MaxStreams is zero.
	DefaultMaxStreams = 128
)

// ServerOptions configures a Server. The zero value serves with the
// protocol defaults and the Default* session limits.
type ServerOptions struct {
	// Protocol is the protocol configuration every session runs under;
	// clients must use identical protocol options (Seed, SigBits, sketch
	// count, …). Its MaxD field is the d̂ cap the session engine enforces.
	Protocol *Options

	// MaxSessions caps concurrently open connections (each carries at
	// most one session; the cap also shields the server from idle
	// connection floods before a first frame arrives). Connections beyond
	// the cap are rejected with msgError. 0 selects DefaultMaxSessions;
	// negative removes the cap. Stats().Active reports only connections
	// actually reconciling.
	MaxSessions int
	// IdleTimeout is the per-frame read deadline: a session that sends
	// nothing for this long is dropped. 0 selects DefaultIdleTimeout;
	// negative disables the deadline.
	IdleTimeout time.Duration
	// SessionByteBudget caps the total wire bytes (both directions) of one
	// session. 0 selects DefaultSessionByteBudget; negative removes the cap.
	SessionByteBudget int64
	// SessionMaxRounds caps the msgRound frames answered in one session.
	// 0 selects DefaultSessionMaxRounds; negative removes the cap.
	SessionMaxRounds int
	// SoftSessionWatermark sheds new connections (busy-coded msgError with
	// a retry-after hint) before the hard MaxSessions cap is reached,
	// keeping headroom for the sequential session reuse of already-warm
	// connections while the server is saturated. 0 selects a default of
	// MaxSessions minus 1/8 headroom when MaxSessions >= 16 (disabled for
	// smaller caps); negative disables the watermark.
	SoftSessionWatermark int
	// RetryAfterHint is the base retry-after duration attached to
	// busy-coded rejections (watermark sheds and shutdown drains; the hard
	// capacity cap hints twice this). 0 selects DefaultRetryAfterHint;
	// negative omits the hint.
	RetryAfterHint time.Duration
	// MaxStreams caps the mux streams concurrently open on one connection
	// once a version-2 hello negotiates multiplexing; opens beyond the cap
	// are rejected per-stream with a busy-coded msgError. 0 selects
	// DefaultMaxStreams; negative disables mux negotiation entirely (every
	// feature offer is declined and connections stay single-stream).
	MaxStreams int

	// RegistryShards is the stripe count of the set registry (rounded up to
	// a power of two). 0 selects a default sized for tens of lookup
	// goroutines; raise it for servers pushing lookups from many cores.
	RegistryShards int
	// TenantQuota is the default per-tenant quota; a zero value means
	// unlimited. Per-tenant overrides via SetTenantQuota. Tenants are the
	// prefix of "tenant/name" set names; unprefixed names share the
	// anonymous tenant "".
	TenantQuota TenantQuota
	// DataDir is the directory the hosted-set segment store lives in;
	// EnableHosting opens it. Empty means hosted sets are memory-only and
	// never evicted.
	DataDir string
	// MaxResidentBytes is the watermark on the summed in-memory charge of
	// resident hosted sets: when exceeded, least-recently-used hosted sets
	// are flushed and evicted down to the watermark (they keep answering
	// estimates from persisted metadata; elements page back in on demand).
	// 0 means unlimited. Requires DataDir — without the persistence layer
	// eviction would discard data, so memory-only hosting ignores it.
	MaxResidentBytes int64
}

// TenantQuota bounds what one tenant may hold and do on a Server. Zero
// fields are unlimited. Bytes are logical (8 per element); sessions are
// concurrently active reconciliation sessions across the tenant's sets.
type TenantQuota struct {
	MaxSets     int64
	MaxBytes    int64
	MaxSessions int64
}

func (q TenantQuota) toRegistry() registry.Quota {
	return registry.Quota{MaxSets: q.MaxSets, MaxBytes: q.MaxBytes, MaxSessions: q.MaxSessions}
}

func (o ServerOptions) maxSessions() int64 {
	if o.MaxSessions == 0 {
		return DefaultMaxSessions
	}
	return int64(o.MaxSessions)
}

func (o ServerOptions) idleTimeout() time.Duration {
	if o.IdleTimeout == 0 {
		return DefaultIdleTimeout
	}
	return o.IdleTimeout
}

func (o ServerOptions) sessionByteBudget() int64 {
	if o.SessionByteBudget == 0 {
		return DefaultSessionByteBudget
	}
	return o.SessionByteBudget
}

func (o ServerOptions) sessionMaxRounds() int {
	if o.SessionMaxRounds == 0 {
		return DefaultSessionMaxRounds
	}
	return o.SessionMaxRounds
}

func (o ServerOptions) softWatermark() int64 {
	switch {
	case o.SoftSessionWatermark > 0:
		return int64(o.SoftSessionWatermark)
	case o.SoftSessionWatermark < 0:
		return 0
	}
	max := o.maxSessions()
	if max < 16 {
		// Tiny caps have no headroom worth reserving; shedding below
		// them would only reject traffic the hard cap still admits.
		return 0
	}
	return max - max/8
}

func (o ServerOptions) retryAfterHint() time.Duration {
	switch {
	case o.RetryAfterHint > 0:
		return o.RetryAfterHint
	case o.RetryAfterHint < 0:
		return 0
	}
	return DefaultRetryAfterHint
}

func (o ServerOptions) registryShards() int {
	if o.RegistryShards > 0 {
		return o.RegistryShards
	}
	return registry.DefaultShards
}

func (o ServerOptions) maxStreams() int {
	switch {
	case o.MaxStreams > 0:
		return o.MaxStreams
	case o.MaxStreams < 0:
		return 0
	}
	return DefaultMaxStreams
}

// allowedFeatures is the feature bitmap the connection loop may grant to a
// version-2 fast hello: mux (plus compression) whenever mux is enabled.
func (o ServerOptions) allowedFeatures() uint64 {
	if o.maxStreams() <= 0 {
		return 0
	}
	return featureMux | featureLZ
}

// ServerStats is a point-in-time snapshot of a Server's counters, fit for
// an expvar.Func or a metrics endpoint.
type ServerStats struct {
	Active    int64 // sessions currently reconciling
	Accepted  int64 // connections admitted past the capacity check (includes probes that never start a session)
	Completed int64 // sessions ended by the initiator's msgDone (a connection may complete several in sequence)
	Failed    int64 // sessions ended by an error, limit, or disconnect
	Rejected  int64 // connections turned away at the capacity check or during shutdown
	Shed      int64 // subset of Rejected turned away by the soft admission watermark
	BytesIn   int64 // wire bytes read across all sessions
	BytesOut  int64 // wire bytes written across all sessions
	Rounds    int64 // protocol rounds answered in completed sessions

	StreamsOpen           int64 // mux streams currently open across all connections
	StreamsTotal          int64 // mux streams ever opened
	BytesSavedCompression int64 // wire bytes saved by negotiated lz compression, both directions

	// Adaptive-controller counters over completed sessions. AdaptiveReplans
	// is the total number of rounds served under (m, t) parameters the
	// adaptive controller re-derived away from the static plan; PriorHits
	// counts fast hellos whose speculative round was answered in the
	// opening reply — i.e. syncs where the initiator's learned d̂ prior (or
	// an explicit KnownD) sized the speculation right and the session
	// completed its first round in a single round trip.
	AdaptiveReplans int64
	PriorHits       int64

	// Hosted-set registry counters. SetsHosted counts every registered set
	// (hosted or not); the rest cover the hosted layer: sets currently
	// resident in memory, their summed charge, elements paged in from the
	// segment store (cold loads), LRU evictions under MaxResidentBytes,
	// background segment-chain merges, and sessions or registrations
	// rejected on a tenant quota.
	SetsHosted      int64
	SetsResident    int64
	ResidentBytes   int64
	ColdLoads       int64
	Evictions       int64
	SegmentMerges   int64
	QuotaRejections int64

	// Distributions over completed sessions, recorded at the moment the
	// initiator's msgDone lands. LatencyUS is the wall-clock session
	// duration (admission to close) in microseconds; SessionRounds the
	// protocol rounds answered; SessionBytes the session's wire bytes in
	// both directions. Quantiles are histogram-interpolated (<= 12.5%
	// relative error); Max is exact.
	LatencyUS     HistogramSummary
	SessionRounds HistogramSummary
	SessionBytes  HistogramSummary
}

// HistogramSummary is the fixed quantile digest of one server histogram,
// JSON-friendly for the expvar endpoint.
type HistogramSummary struct {
	Count int64   // observations (completed sessions)
	Sum   int64   // sum of observed values
	Max   int64   // largest observation (exact)
	P50   float64 // median
	P95   float64
	P99   float64
}

func summarize(s hist.Snapshot) HistogramSummary {
	return HistogramSummary{
		Count: s.Count,
		Sum:   s.Sum,
		Max:   s.Max,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// setSource is a registry entry: something that can produce the immutable
// SharedSet view a new session reconciles against, plus the protocol
// options sessions against it run under. An immutable SharedSet is its own
// (constant) source; a mutable Set returns its current view, rebuilt
// lazily after mutations.
type setSource interface {
	sharedView() (*SharedSet, error)
	sessionOptions() Options
}

// setWithOptions overrides the session options of a registered Set — how
// Set.Serve applies per-call options to the sessions a server admits.
type setWithOptions struct {
	set *Set
	opt Options
}

func (sw setWithOptions) sharedView() (*SharedSet, error) { return sw.set.sharedView() }
func (sw setWithOptions) sessionOptions() Options         { return sw.opt }

// NewServer returns a Server with an empty set registry. Register at least
// one set (typically DefaultSetName) before calling Serve.
func NewServer(opt ServerOptions) *Server {
	s := &Server{
		opt:       opt,
		protoOpt:  opt.Protocol.withDefaults(),
		sets:      registry.New[setSource](opt.registryShards(), opt.TenantQuota.toRegistry()),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		drainCh:   make(chan struct{}),
	}
	// The hosted layer needs a valid estimator configuration; an invalid
	// one surfaces on the first Host/EnableHosting call, not here, so
	// NewServer keeps its no-error signature.
	s.hosted, s.hostedErr = newHostedStore(s.protoOpt, opt.MaxResidentBytes)
	return s
}

// SetTenantQuota overrides the default TenantQuota for one tenant. It may
// be called at any time; lowered quotas apply to new reservations only
// (existing sets and sessions are never revoked).
func (s *Server) SetTenantQuota(tenant string, q TenantQuota) {
	s.sets.SetQuota(tenant, q.toRegistry())
}

// TenantUsage reports a tenant's current registered sets, logical bytes,
// and active sessions.
func (s *Server) TenantUsage(tenant string) (sets, bytes, sessions int64) {
	return s.sets.TenantUsage(tenant)
}

// Register validates set once and publishes it under name. Re-registering
// a name swaps the snapshot atomically: sessions already in flight keep
// reconciling against the snapshot they started with, new sessions see the
// new one.
func (s *Server) Register(name string, set []uint64) error {
	ss, err := NewSharedSet(set, s.opt.Protocol)
	if err != nil {
		return err
	}
	return s.RegisterShared(name, ss)
}

// RegisterShared publishes an already prepared SharedSet under name.
// Sessions run under the shared set's own options, so those must agree
// with the server's protocol options on every field that parameterizes
// the exchange — a mismatch (e.g. a SharedSet built with a different
// seed) would produce baffling mid-protocol failures, so it is rejected
// here at registration time instead.
func (s *Server) RegisterShared(name string, ss *SharedSet) error {
	want := s.opt.Protocol.withDefaults()
	got := ss.opt
	switch {
	case got.Seed != want.Seed:
		return fmt.Errorf("pbs: shared set seed %#x does not match server seed %#x", got.Seed, want.Seed)
	case got.EstimatorSketches != want.EstimatorSketches:
		return fmt.Errorf("pbs: shared set sketch count %d does not match server %d", got.EstimatorSketches, want.EstimatorSketches)
	case got.Gamma != want.Gamma:
		return fmt.Errorf("pbs: shared set gamma %v does not match server %v", got.Gamma, want.Gamma)
	case got.Delta != want.Delta || got.TargetRounds != want.TargetRounds ||
		got.TargetSuccess != want.TargetSuccess || got.SigBits != want.SigBits:
		return fmt.Errorf("pbs: shared set plan parameters do not match the server's")
	case got.MaxD != want.MaxD:
		return fmt.Errorf("pbs: shared set MaxD %d does not match server MaxD %d", got.MaxD, want.MaxD)
	}
	return s.publish(name, ss, hostedElemBytes*int64(ss.Len()))
}

// RegisterSet publishes a live, mutable Set under name. Unlike Register
// and RegisterShared — which pin an immutable snapshot at registration
// time — sessions admitted after a mutation see the mutated set: each
// session takes the Set's current immutable view at admission (sessions
// already in flight keep the view they started with), and the view rebuild
// after a mutation is amortized across all sessions until the next one.
//
// Sessions against the set run under the Set's own options; those must
// agree with the server's protocol options on the structural fields
// (Seed, SigBits, EstimatorSketches) that bind the Set's cached snapshot
// and sketch.
func (s *Server) RegisterSet(name string, set *Set) error {
	if err := s.protoOpt.validate(); err != nil {
		return err
	}
	want := s.protoOpt
	got := set.cfg.opt
	switch {
	case got.Seed != want.Seed:
		return fmt.Errorf("pbs: set seed %#x does not match server seed %#x", got.Seed, want.Seed)
	case got.SigBits != want.SigBits:
		return fmt.Errorf("pbs: set sigBits %d does not match server sigBits %d", got.SigBits, want.SigBits)
	case got.EstimatorSketches != want.EstimatorSketches:
		return fmt.Errorf("pbs: set sketch count %d does not match server %d", got.EstimatorSketches, want.EstimatorSketches)
	}
	return s.publish(name, set, hostedElemBytes*int64(set.Len()))
}

// registerSource publishes a pre-checked source directly (Set.Serve's
// per-call option override path).
func (s *Server) registerSource(name string, src setSource, bytes int64) error {
	if err := src.sessionOptions().validate(); err != nil {
		return err
	}
	return s.publish(name, src, bytes)
}

// ErrServerClosed is returned by registration and hosting calls made after
// Close or Shutdown.
var ErrServerClosed = errors.New("pbs: server closed")

// publish inserts src into the sharded registry, charging bytes against
// the tenant's quota. The closed check rides the same lock Close takes, so
// a registration can never land after Shutdown observed a clean registry.
func (s *Server) publish(name string, src setSource, bytes int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	if err := s.sets.Register(name, src, bytes); err != nil {
		var qe *registry.QuotaError
		if errors.As(err, &qe) {
			s.quotaRejections.Add(1)
			return fmt.Errorf("%w: %v", ErrQuotaExceeded, err)
		}
		return err
	}
	return nil
}

// Unregister removes a named set from the registry, releasing its quota
// charge; it reports whether the name was registered. Sessions already
// reconciling against the set finish undisturbed. A hosted set's persisted
// segments stay on disk (recovered again by the next EnableHosting);
// removing those too is the store's Remove.
func (s *Server) Unregister(name string) bool {
	src, ok := s.sets.Unregister(name)
	if !ok {
		return false
	}
	if hs, isHosted := src.(*hostedSet); isHosted {
		s.hosted.forget(hs)
	}
	return true
}

// rejection is why startSession turned a session away: the client-facing
// diagnostic plus its structured code and retry-after hint. transient
// rejections (shutdown drain, session quota — conditions that clear on
// their own) count as rejected; the rest count as failed sessions.
type rejection struct {
	msg       string
	code      string
	retry     time.Duration
	transient bool
}

// count records the rejection in the server stats.
func (r *rejection) count(s *Server) {
	if r.transient {
		s.rejected.Add(1)
	} else {
		s.failed.Add(1)
	}
}

// startSession resolves name and admits a new responder session. The
// shutdown check and the sessActive increment happen under one lock so
// Shutdown can never sample a clean drain while a session is
// half-admitted; the registry lookup takes only the name's shard read
// lock, and the view materialization (which may be O(|S|) right after a
// mutation of a registered Set, or a cold load for a hosted one) happens
// outside both. The returned session carries a release hook returning the
// tenant's session-quota slot; every sessActive decrement must pair with
// runRelease.
func (s *Server) startSession(name string) (*ResponderSession, *rejection) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, &rejection{msg: "server shutting down", code: ErrCodeBusy, retry: s.opt.retryAfterHint(), transient: true}
	}
	s.sessActive.Add(1)
	s.mu.Unlock()
	src, ok := s.sets.Get(name)
	if !ok {
		s.sessActive.Add(-1)
		return nil, &rejection{msg: fmt.Sprintf("unknown set %q", name), code: ErrCodeRejected}
	}
	if err := s.sets.BeginSession(name); err != nil {
		s.sessActive.Add(-1)
		s.quotaRejections.Add(1)
		// Session quotas clear as the tenant's other sessions drain, so the
		// rejection is retryable with the standard hint.
		return nil, &rejection{msg: err.Error(), code: ErrCodeQuota, retry: s.opt.retryAfterHint(), transient: true}
	}
	ss, err := src.sharedView()
	if err != nil {
		s.sets.EndSession(name)
		s.sessActive.Add(-1)
		return nil, &rejection{msg: err.Error(), code: ErrCodeRejected}
	}
	sess := ss.newServerSession(src.sessionOptions())
	sess.release = func() { s.sets.EndSession(name) }
	return sess, nil
}

// admit starts a session against the named set, handling the rejection
// accounting and client diagnostic when it cannot. A nil return means the
// connection should close.
func (s *Server) admit(conn net.Conn, name string) *ResponderSession {
	sess, rej := s.startSession(name)
	if sess == nil {
		rej.count(s)
		s.sendCodedError(conn, rej.msg, rej.code, rej.retry)
		return nil
	}
	// Sessions on the sequential connection loop may negotiate the mux
	// upgrade; sessions a muxLoop admits per stream go through startSession
	// directly and never re-negotiate (no mux inside mux).
	sess.allowFeatures = s.opt.allowedFeatures()
	return sess
}

// Stats returns a snapshot of the server counters and session histograms.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		SetsHosted:            int64(s.sets.Len()),
		QuotaRejections:       s.quotaRejections.Load(),
		Active:                s.sessActive.Load(),
		Accepted:              s.accepted.Load(),
		Completed:             s.completed.Load(),
		Failed:                s.failed.Load(),
		Rejected:              s.rejected.Load(),
		Shed:                  s.shed.Load(),
		BytesIn:               s.bytesIn.Load(),
		BytesOut:              s.bytesOut.Load(),
		Rounds:                s.rounds.Load(),
		StreamsOpen:           s.streamsOpen.Load(),
		StreamsTotal:          s.streamsTotal.Load(),
		BytesSavedCompression: s.bytesSaved.Load(),
		AdaptiveReplans:       s.adaptiveReplans.Load(),
		PriorHits:             s.priorHits.Load(),
		LatencyUS:             summarize(s.latencyHist.Snapshot()),
		SessionRounds:         summarize(s.roundsHist.Snapshot()),
		SessionBytes:          summarize(s.bytesHist.Snapshot()),
	}
	if s.hosted != nil {
		st.SetsResident = s.hosted.residentSets.Load()
		st.ResidentBytes = s.hosted.residentBytes.Load()
		st.ColdLoads = s.hosted.coldLoads.Load()
		st.Evictions = s.hosted.evictions.Load()
	}
	if s.store != nil {
		st.SegmentMerges = s.store.Merges()
	}
	return st
}

// Serve accepts connections on ln until the listener fails or the server
// is closed, spawning one frame pump per connection. It returns nil after
// Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("pbs: serve on a closed server")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			// Transient accept failures (EMFILE under a connection flood,
			// ECONNABORTED) must not turn into a permanent outage: retry
			// with backoff, as net/http does. (Asserted structurally: the
			// net.Error method itself is deprecated as API guidance, but
			// remains exactly the accept-loop signal it was designed for.)
			if ne, ok := err.(interface{ Temporary() bool }); ok && ne.Temporary() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				// Wake immediately on Close/Shutdown: a plain Sleep here
				// would pin them for up to the full backoff.
				select {
				case <-time.After(backoff):
					continue
				case <-s.drainCh:
					return nil
				}
			}
			return err
		}
		backoff = 0
		setNoDelay(conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// markClosed flips the server into its closing state and signals drainCh.
// The caller must hold s.mu.
func (s *Server) markClosed() {
	if !s.closed {
		s.closed = true
		close(s.drainCh)
	}
}

// Close stops accepting and tears down every open connection immediately,
// then flushes hosted sets' dirty state and closes the segment store. For
// a drain-first stop, use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	s.markClosed()
	for ln := range s.listeners {
		ln.Close()
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	var err error
	s.closeHosted.Do(func() {
		if s.hosted != nil {
			err = s.hosted.flushAll()
		}
		if s.store != nil {
			s.store.Close()
		}
	})
	return err
}

// Shutdown stops accepting new connections, waits up to timeout for
// in-flight sessions to finish, then closes whatever remains. It reports
// whether the drain completed before the deadline.
func (s *Server) Shutdown(timeout time.Duration) bool {
	s.mu.Lock()
	s.markClosed()
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for s.sessActive.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	drained := s.sessActive.Load() == 0
	s.Close()
	return drained
}

// sendError reports a session failure to the client as a final msgError
// frame, on a short deadline so a stalled peer cannot pin the goroutine.
// The connection usually still has unread frames from the client (e.g. the
// estimate of a just-rejected session); closing with those pending would
// RST the socket and can destroy the diagnostic before the client reads
// it, so the write side is half-closed and the inbound leftovers drained
// briefly first.
func (s *Server) sendError(conn net.Conn, msg string) {
	s.sendCodedError(conn, msg, ErrCodeRejected, 0)
}

// sendCodedError is sendError with a structured code and optional
// retry-after hint appended as the backward-compatible msgError suffix:
// current clients decode it into a *PeerError, legacy clients see (and
// log) the suffix as part of the plain string.
func (s *Server) sendCodedError(conn net.Conn, msg, code string, retryAfter time.Duration) {
	payload := appendErrCode(msg, code, retryAfter)
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if err := writeFrame(conn, msgError, []byte(payload)); err != nil {
		return
	}
	s.bytesOut.Add(int64(5 + len(payload)))
	if cw, ok := conn.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	}
	conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	io.Copy(io.Discard, io.LimitReader(conn, maxFrame))
}

// handle pumps frames between one connection and its responder sessions,
// enforcing the per-session limits. A connection carries sessions in
// sequence: after a completed session (the initiator's msgDone) the
// connection stays open and a fresh msgHello or msgEstimate starts the
// next one with its budgets reset — how a warm client fleet amortizes the
// dial across many syncs. Frame payloads are read into one pooled buffer
// per connection, reused across frames and sessions.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	cur := s.connCount.Add(1)
	defer s.connCount.Add(-1)
	if max := s.opt.maxSessions(); max > 0 && cur > max {
		// Hard exhaustion: hint a longer retry-after than a watermark shed
		// so the backed-off herd does not return while still saturated.
		s.rejected.Add(1)
		s.sendCodedError(conn, "server at session capacity", ErrCodeBusy, 2*s.opt.retryAfterHint())
		return
	}
	if soft := s.opt.softWatermark(); soft > 0 && cur > soft {
		// Soft admission watermark: shed new connections before the hard
		// cap so warm connections (which reuse their slot for session
		// after session) keep the remaining headroom.
		s.rejected.Add(1)
		s.shed.Add(1)
		s.sendCodedError(conn, "server over session watermark, retry later", ErrCodeBusy, s.opt.retryAfterHint())
		return
	}
	s.accepted.Add(1)

	buf := getPayloadBuf()
	defer putPayloadBuf(buf)

	var (
		sess         *ResponderSession
		sessStart    time.Time
		sessionBytes int64
		roundFrames  int
	)
	defer func() {
		if sess != nil {
			sess.runRelease()
			s.sessActive.Add(-1)
		}
	}()
	fail := func(msg string) {
		s.failed.Add(1)
		s.sendError(conn, msg)
	}
	for {
		if t := s.opt.idleTimeout(); t > 0 {
			conn.SetReadDeadline(time.Now().Add(t))
		}
		// Refuse frames whose declared size alone would bust the session's
		// remaining byte budget — before reading (or holding) any payload.
		limit := uint32(maxFrame)
		if budget := s.opt.sessionByteBudget(); budget > 0 {
			remain := budget - sessionBytes - 5
			if remain < 0 {
				remain = 0
			}
			if remain < int64(limit) {
				limit = uint32(remain)
			}
		}
		typ, payload, err := readFrameInto(conn, limit, (*buf)[:0])
		if payload != nil {
			*buf = payload[:0]
		}
		if err != nil {
			// A frame rejected on its declared size gets the diagnostic the
			// client can act on; plain transport errors do not.
			var fle *frameLimitError
			if errors.As(err, &fle) {
				if limit < maxFrame {
					fail("session byte budget exceeded")
				} else {
					fail(err.Error())
				}
				return
			}
			// A connection that ends between sessions — clean EOF, reset,
			// or idle-deadline expiry alike — is a probe, a dial-and-abort,
			// or a warm client hanging up after its last sync, not a
			// failed session.
			if sess != nil || sessionBytes > 0 {
				s.failed.Add(1)
			}
			return
		}
		n := int64(5 + len(payload))
		sessionBytes += n
		s.bytesIn.Add(n)
		if budget := s.opt.sessionByteBudget(); budget > 0 && sessionBytes > budget {
			fail("session byte budget exceeded")
			return
		}

		if typ == msgHello {
			if sess != nil {
				fail("hello after session start")
				return
			}
			if sess = s.admit(conn, string(payload)); sess == nil {
				return
			}
			sessStart = time.Now()
			continue
		}
		if typ == msgHelloV1 && sess == nil {
			// A fast hello both names the set and opens the session, so the
			// admission happens here and the frame still reaches the engine.
			name, err := fastHelloSetName(payload)
			if err != nil {
				fail(err.Error())
				return
			}
			if name == "" {
				name = DefaultSetName
			}
			if sess = s.admit(conn, name); sess == nil {
				return
			}
			sessStart = time.Now()
		}
		if sess == nil {
			if sess = s.admit(conn, DefaultSetName); sess == nil {
				return
			}
			sessStart = time.Now()
		}
		if typ == msgRound || typ == msgHelloV1 {
			// A fast hello carries a speculative round, so it spends the
			// round budget like any msgRound.
			roundFrames++
			if max := s.opt.sessionMaxRounds(); max > 0 && roundFrames > max {
				fail("session round budget exceeded")
				return
			}
		}

		out, done, stepErr := sess.Step(typ, payload)
		if len(out) > 0 {
			// The idle deadline covers writes too: a client that stops
			// reading must not pin this goroutine (and its session slot)
			// in a blocked send forever. The step's frames go out in one
			// coalesced write.
			if t := s.opt.idleTimeout(); t > 0 {
				conn.SetWriteDeadline(time.Now().Add(t))
			}
			if werr := writeFrames(conn, out); werr != nil {
				if stepErr == nil {
					stepErr = werr
				}
			} else {
				var wn int64
				for _, f := range out {
					wn += int64(5 + len(f.Payload))
				}
				sessionBytes += wn
				s.bytesOut.Add(wn)
			}
		}
		if stepErr == nil {
			if budget := s.opt.sessionByteBudget(); budget > 0 && sessionBytes > budget {
				fail("session byte budget exceeded")
				return
			}
		}
		if stepErr != nil {
			fail(stepErr.Error())
			return
		}
		if done {
			// Only a session that actually started reconciling (answered
			// an estimate) counts as completed; a probe that sends a bare
			// msgDone must not inflate the success counter.
			if sess.started() {
				s.completed.Add(1)
				s.rounds.Add(int64(sess.Rounds()))
				s.adaptiveReplans.Add(int64(sess.adaptiveReplans()))
				if sess.specAccepted {
					s.priorHits.Add(1)
				}
				hint := uint64(cur)
				s.latencyHist.Record(hint, time.Since(sessStart).Microseconds())
				s.roundsHist.Record(hint, int64(sess.Rounds()))
				s.bytesHist.Record(hint, sessionBytes)
			}
			// Keep the connection: the next msgHello or msgEstimate opens
			// a fresh session under fresh budgets.
			sess.runRelease()
			s.sessActive.Add(-1)
			sess = nil
			sessionBytes, roundFrames = 0, 0
		}
		if sess != nil {
			if g := sess.grantedFeatures(); g&featureMux != 0 {
				// The hello reply that granted mux just went out, and the
				// fast-path initiator sends nothing until it has read it —
				// so the very next inbound frame is already enveloped.
				// Ownership of the session (and its sessActive slot) moves
				// to the demultiplexer as stream 1.
				first := &srvStream{
					sess:        sess,
					start:       sessStart,
					bytes:       sessionBytes,
					roundFrames: roundFrames,
					lastActive:  time.Now(),
				}
				sess = nil
				s.muxLoop(conn, buf, cur, first, g&featureLZ != 0)
				return
			}
		}
	}
}

// srvStream is the server-side state of one mux stream: its session engine
// plus the per-stream budget and accounting state the sequential loop
// keeps in locals.
type srvStream struct {
	sess        *ResponderSession
	start       time.Time
	bytes       int64
	roundFrames int
	lastActive  time.Time
}

// muxLoop is handle's demultiplexing sibling: after a fast hello
// negotiates mux, the connection's frames carry stream envelopes and this
// loop routes each to its stream's session engine. Per-stream budgets and
// idle deadlines mirror the sequential loop's session limits exactly, and
// every per-stream failure is enveloped back on that stream with a close
// flag — one hostile or unlucky stream can never wedge its siblings. Step
// outputs are batched into one write per inbound frame (the coalesced
// write path), which round-robins the connection fairly because streams
// are served strictly in frame-arrival order.
func (s *Server) muxLoop(conn net.Conn, buf *[]byte, cur int64, first *srvStream, lzOn bool) {
	streams := map[uint64]*srvStream{1: first}
	s.streamsOpen.Add(1)
	s.streamsTotal.Add(1)
	defer func() {
		// Connection teardown: streams that were mid-session fail; the
		// clean case (every stream completed or closed first) has an empty
		// table and counts nothing.
		for _, st := range streams {
			if st.sess.started() || st.bytes > 0 {
				s.failed.Add(1)
			}
			st.sess.runRelease()
			s.sessActive.Add(-1)
			s.streamsOpen.Add(-1)
		}
	}()

	// writeBatch sends one pre-assembled burst of enveloped frames under
	// the idle write deadline. A write error is terminal for the whole
	// connection — a partial frame poisons the framing for every stream.
	writeBatch := func(b []byte) error {
		if len(b) == 0 {
			return nil
		}
		if t := s.opt.idleTimeout(); t > 0 {
			conn.SetWriteDeadline(time.Now().Add(t))
		}
		if _, err := conn.Write(b); err != nil {
			return err
		}
		s.bytesOut.Add(int64(len(b)))
		return nil
	}
	// streamError reports a per-stream failure to the client: a coded
	// msgError enveloped on that stream with the close flag, leaving the
	// connection (and every sibling stream) running.
	streamError := func(id uint64, msg, code string, retryAfter time.Duration) error {
		payload := appendErrCode(msg, code, retryAfter)
		return writeBatch(muxAppendFrame(nil, id, muxFlagClose, msgError, []byte(payload)))
	}
	// dropStream releases a stream's slot; failed says whether it counts
	// as a failed session (vs. completed or a never-started probe).
	dropStream := func(id uint64, st *srvStream, failed bool) {
		if failed {
			s.failed.Add(1)
		}
		st.sess.runRelease()
		s.sessActive.Add(-1)
		s.streamsOpen.Add(-1)
		delete(streams, id)
	}

	idle := s.opt.idleTimeout()
	lastSweep := time.Now()
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		typ, payload, err := readFrameInto(conn, maxFrame, (*buf)[:0])
		if payload != nil {
			*buf = payload[:0]
		}
		if err != nil {
			return
		}
		n := int64(5 + len(payload))
		s.bytesIn.Add(n)

		id, flags, body, perr := parseMuxPayload(payload)
		if perr != nil || flags&^uint64(muxFlagKnown) != 0 {
			// A malformed envelope means framing trust is gone; there is no
			// stream to blame it on, so the connection dies.
			return
		}
		if flags&muxFlagCompressed != 0 {
			if !lzOn {
				return
			}
			decoded, derr := lz.Decode(nil, body, maxFrame)
			if derr != nil {
				return
			}
			s.bytesSaved.Add(int64(len(decoded) - len(body)))
			body = decoded
		}

		st := streams[id]
		if st == nil {
			if flags&muxFlagOpen == 0 {
				if typ == msgStreamClose || flags&muxFlagClose != 0 {
					// Close for a stream already gone: a benign race between
					// the client's close and our teardown.
					continue
				}
				// Unknown stream: reject it with a coded error on that ID;
				// the connection and its live streams are unaffected.
				s.rejected.Add(1)
				if werr := streamError(id, fmt.Sprintf("unknown stream %d", id), ErrCodeRejected, 0); werr != nil {
					return
				}
				continue
			}
			if max := s.opt.maxStreams(); len(streams) >= max {
				s.rejected.Add(1)
				s.shed.Add(1)
				if werr := streamError(id, "connection at stream capacity", ErrCodeBusy, s.opt.retryAfterHint()); werr != nil {
					return
				}
				continue
			}
			name := DefaultSetName
			switch typ {
			case msgHello:
				name = string(body)
			case msgHelloV1:
				if hn, herr := fastHelloSetName(body); herr != nil {
					s.failed.Add(1)
					if werr := streamError(id, herr.Error(), ErrCodeRejected, 0); werr != nil {
						return
					}
					continue
				} else if hn != "" {
					name = hn
				}
			}
			sess, rej := s.startSession(name)
			if sess == nil {
				rej.count(s)
				if werr := streamError(id, rej.msg, rej.code, rej.retry); werr != nil {
					return
				}
				continue
			}
			st = &srvStream{sess: sess, start: time.Now()}
			streams[id] = st
			s.streamsOpen.Add(1)
			s.streamsTotal.Add(1)
		} else if flags&muxFlagOpen != 0 {
			if werr := streamError(id, fmt.Sprintf("duplicate open for stream %d", id), ErrCodeRejected, 0); werr != nil {
				return
			}
			dropStream(id, st, true)
			continue
		}
		st.lastActive = time.Now()
		st.bytes += n
		if budget := s.opt.sessionByteBudget(); budget > 0 && st.bytes > budget {
			if werr := streamError(id, "session byte budget exceeded", ErrCodeRejected, 0); werr != nil {
				return
			}
			dropStream(id, st, true)
			continue
		}

		if typ == msgStreamClose {
			// Client abandoned the stream mid-session (its msgDone rides the
			// close flag on the session's own goodbye instead).
			dropStream(id, st, st.sess.started() || st.bytes > n)
			continue
		}
		if typ == msgHello {
			// The envelope's open flag already did the naming; a bare hello
			// frame only exists as a stream's opening frame.
			if st.sess.started() {
				if werr := streamError(id, "hello after session start", ErrCodeRejected, 0); werr != nil {
					return
				}
				dropStream(id, st, true)
			}
			continue
		}
		if typ == msgRound || typ == msgHelloV1 {
			st.roundFrames++
			if max := s.opt.sessionMaxRounds(); max > 0 && st.roundFrames > max {
				if werr := streamError(id, "session round budget exceeded", ErrCodeRejected, 0); werr != nil {
					return
				}
				dropStream(id, st, true)
				continue
			}
		}

		out, done, stepErr := st.sess.Step(typ, body)
		if len(out) > 0 && stepErr == nil {
			batch := getPayloadBuf()
			b := (*batch)[:0]
			for _, f := range out {
				wireBody, compressed := muxCompressBody(f.Payload, lzOn)
				var fl uint64
				if compressed {
					fl = muxFlagCompressed
					s.bytesSaved.Add(int64(len(f.Payload) - len(wireBody)))
				}
				b = muxAppendFrame(b, id, fl, f.Type, wireBody)
			}
			werr := writeBatch(b)
			*batch = b[:0]
			putPayloadBuf(batch)
			if werr != nil {
				return
			}
			st.bytes += int64(len(b))
			if budget := s.opt.sessionByteBudget(); budget > 0 && st.bytes > budget {
				if werr := streamError(id, "session byte budget exceeded", ErrCodeRejected, 0); werr != nil {
					return
				}
				dropStream(id, st, true)
				continue
			}
		}
		if stepErr != nil {
			if werr := streamError(id, stepErr.Error(), ErrCodeRejected, 0); werr != nil {
				return
			}
			dropStream(id, st, true)
			continue
		}
		if done {
			if st.sess.started() {
				s.completed.Add(1)
				s.rounds.Add(int64(st.sess.Rounds()))
				s.adaptiveReplans.Add(int64(st.sess.adaptiveReplans()))
				if st.sess.specAccepted {
					s.priorHits.Add(1)
				}
				hint := uint64(cur)
				s.latencyHist.Record(hint, time.Since(st.start).Microseconds())
				s.roundsHist.Record(hint, int64(st.sess.Rounds()))
				s.bytesHist.Record(hint, st.bytes)
			}
			dropStream(id, st, false)
		}

		if idle > 0 && time.Since(lastSweep) >= idle/2 {
			// Per-stream idleness: the connection-level read deadline only
			// fires when every stream is silent, so streams that went quiet
			// while siblings stay busy are swept here.
			lastSweep = time.Now()
			for sid, sst := range streams {
				if time.Since(sst.lastActive) > idle {
					if werr := streamError(sid, "stream idle timeout", ErrCodeRejected, 0); werr != nil {
						return
					}
					dropStream(sid, sst, sst.sess.started() || sst.bytes > 0)
				}
			}
		}
	}
}
