module pbs

go 1.24
