package pbs

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"pbs/internal/estimator"
	"pbs/internal/workload"
)

// Fault-injection coverage for the wire protocol: every malformed input —
// truncated frames, corrupted payloads, oversized frames, unexpected
// message types — must surface as an error on the affected endpoint, never
// a hang or a panic. net.Pipe gives fully synchronous delivery, so a test
// that passes here cannot be masked by kernel buffering.

// faultTimeout bounds every fault test; a blocked endpoint is a failure,
// not a slow test.
const faultTimeout = 10 * time.Second

// withDeadline runs fn and fails the test if it does not return in time.
func withDeadline(t *testing.T, name string, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(faultTimeout):
		t.Fatalf("%s: endpoint hung on malformed input", name)
		return nil
	}
}

func TestSyncResponderTruncatedHeader(t *testing.T) {
	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
	// Three bytes of a five-byte frame header, then EOF.
	if _, err := ca.Write([]byte{0x00, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	ca.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("responder accepted a truncated frame header")
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on truncated header")
	}
}

func TestSyncResponderTruncatedPayload(t *testing.T) {
	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
	// A header declaring 100 payload bytes, followed by only 4.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 100)
	hdr[4] = msgEstimate
	ca.Write(hdr[:])
	ca.Write([]byte{1, 2, 3, 4})
	ca.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("responder accepted a truncated payload")
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on truncated payload")
	}
}

func TestSyncOversizedFrameRejected(t *testing.T) {
	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
	// Header declaring a payload over maxFrame: must be rejected before any
	// allocation or read of the body.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = msgEstimate
	ca.Write(hdr[:])
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
			t.Fatalf("want frame-limit error, got %v", err)
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on oversized frame")
	}
	ca.Close()
}

func TestSyncResponderUnexpectedType(t *testing.T) {
	for _, typ := range []byte{msgEstimateReply, msgRoundReply, 0xEE} {
		ca, cb := net.Pipe()
		errCh := make(chan error, 1)
		go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
		if err := writeFrame(ca, typ, []byte{1}); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errCh:
			if err == nil {
				t.Fatalf("responder accepted unexpected message type %d", typ)
			}
		case <-time.After(faultTimeout):
			t.Fatalf("responder hung on unexpected message type %d", typ)
		}
		ca.Close()
	}
}

func TestSyncRoundBeforeEstimateRejected(t *testing.T) {
	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
	writeFrame(ca, msgRound, []byte{0x08})
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "round before estimation") {
			t.Fatalf("want round-before-estimation error, got %v", err)
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on early round message")
	}
	ca.Close()
}

func TestSyncInitiatorUnexpectedReplyType(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 500, D: 5, Seed: 21})
	ca, cb := net.Pipe()
	go func() {
		defer cb.Close()
		// Swallow the estimate, answer with the wrong message type.
		if _, _, err := readFrame(cb); err != nil {
			return
		}
		writeFrame(cb, msgRoundReply, []byte{1, 2, 3})
	}()
	err := withDeadline(t, "initiator", func() error {
		_, err := SyncInitiator(p.A, ca, &Options{Seed: 22})
		return err
	})
	ca.Close()
	if err == nil || !strings.Contains(err.Error(), "expected message type") {
		t.Fatalf("want message-type error, got %v", err)
	}
}

func TestSyncInitiatorCorruptEstimateReply(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 500, D: 5, Seed: 23})
	ca, cb := net.Pipe()
	go func() {
		defer cb.Close()
		if _, _, err := readFrame(cb); err != nil {
			return
		}
		// An unterminated varint: ten continuation bytes and no final group.
		writeFrame(cb, msgEstimateReply, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	}()
	err := withDeadline(t, "initiator", func() error {
		_, err := SyncInitiator(p.A, ca, &Options{Seed: 24})
		return err
	})
	ca.Close()
	if err == nil {
		t.Fatal("initiator accepted a corrupt estimate reply")
	}
}

// corruptingResponder runs the estimation phase honestly, then answers the
// first round with a bit-flipped copy of the real reply.
func corruptingResponder(set []uint64, conn net.Conn, seed uint64) {
	defer conn.Close()
	opt := (&Options{Seed: seed}).withDefaults()
	tow, err := estimator.NewToW(opt.EstimatorSketches, opt.Seed^towSeedTweak)
	if err != nil {
		return
	}
	typ, payload, err := readFrame(conn)
	if err != nil || typ != msgEstimate {
		return
	}
	theirs, err := decodeSketches(payload)
	if err != nil {
		return
	}
	dhatF, err := tow.Estimate(theirs, tow.Sketch(set))
	if err != nil {
		return
	}
	dhat := uint64(math.Round(dhatF))
	plan, err := syncPlan(dhat, opt)
	if err != nil {
		return
	}
	bob, err := NewResponder(set, plan)
	if err != nil {
		return
	}
	writeFrame(conn, msgEstimateReply, binary.AppendUvarint(nil, dhat))
	for {
		typ, payload, err := readFrame(conn)
		if err != nil || typ != msgRound {
			return
		}
		reply, err := bob.HandleRound(payload)
		if err != nil {
			return
		}
		// Truncate the reply mid-scope: Alice must detect it, not panic.
		writeFrame(conn, msgRoundReply, reply[:len(reply)/2])
	}
}

func TestSyncInitiatorCorruptedRoundReply(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 20, Seed: 25})
	ca, cb := net.Pipe()
	go corruptingResponder(p.B, cb, 26)
	err := withDeadline(t, "initiator", func() error {
		_, err := SyncInitiator(p.A, ca, &Options{Seed: 26})
		return err
	})
	ca.Close()
	if err == nil {
		t.Fatal("initiator accepted a corrupted round reply")
	}
}

func TestSyncResponderPeerDisconnect(t *testing.T) {
	// The peer vanishing mid-session must end SyncResponder with an error,
	// not leave it blocked forever.
	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
	ca.Close()
	select {
	case err := <-errCh:
		if err != io.EOF && err != io.ErrClosedPipe {
			if err == nil {
				t.Fatal("responder treated disconnect as success")
			}
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung after peer disconnect")
	}
}

func TestSyncInitiatorOversizedEstimateRejected(t *testing.T) {
	// A hostile responder replies with an absurd d̂: the initiator must
	// reject it before attempting the giant Plan allocation it implies.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 500, D: 5, Seed: 31})
	for _, dhat := range []uint64{DefaultMaxD + 1, 1 << 40, math.MaxUint64} {
		ca, cb := net.Pipe()
		go func() {
			defer cb.Close()
			if _, _, err := readFrame(cb); err != nil {
				return
			}
			writeFrame(cb, msgEstimateReply, binary.AppendUvarint(nil, dhat))
		}()
		err := withDeadline(t, "initiator", func() error {
			_, err := SyncInitiator(p.A, ca, &Options{Seed: 32})
			return err
		})
		ca.Close()
		if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
			t.Fatalf("d̂=%d: want estimate-limit error, got %v", dhat, err)
		}
	}
}

func TestSyncInitiatorCustomMaxD(t *testing.T) {
	// An honest exchange whose true difference estimate exceeds the
	// configured MaxD must fail cleanly on the initiator side too.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 200, Seed: 33})
	ca, cb := net.Pipe()
	respErr := make(chan error, 1)
	go func() {
		defer cb.Close()
		// The responder's cap is left at the default so only the
		// initiator's tighter limit can fire.
		respErr <- SyncResponder(p.B, cb, &Options{Seed: 34})
	}()
	_, err := SyncInitiator(p.A, ca, &Options{Seed: 34, MaxD: 10})
	ca.Close()
	<-respErr
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("want estimate-limit error, got %v", err)
	}
}

func TestSyncResponderOversizedEstimateRejected(t *testing.T) {
	// Hostile initiator sketches drive the responder's own estimate over
	// its MaxD: the responder must refuse to build the plan.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 200, Seed: 35})
	ca, cb := net.Pipe()
	respErr := make(chan error, 1)
	go func() {
		defer cb.Close()
		respErr <- SyncResponder(p.B, cb, &Options{Seed: 36, MaxD: 10})
	}()
	_, initErr := SyncInitiator(p.A, ca, &Options{Seed: 36, MaxD: 10})
	ca.Close()
	select {
	case err := <-respErr:
		if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
			t.Fatalf("want estimate-limit error, got %v", err)
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on oversized estimate")
	}
	if initErr == nil {
		t.Fatal("initiator must fail when the responder aborts")
	}
}

func TestSyncAsymmetricSmallResponder(t *testing.T) {
	// Peer-to-peer SyncResponder must keep the plain DefaultMaxD: a tiny
	// responder set reconciling against a much larger initiator set is
	// legitimate (the server-side 64·|S| tightening applies only to
	// Server-driven sessions).
	big := make([]uint64, 5000)
	for i := range big {
		big[i] = uint64(i + 1)
	}
	small := big[:10:10]
	res, initErr, respErr := runSync(t, big, small, &Options{Seed: 41})
	if initErr != nil || respErr != nil {
		t.Fatalf("asymmetric sync failed: init=%v resp=%v", initErr, respErr)
	}
	if !res.Complete || len(res.Difference) != 4990 {
		t.Fatalf("complete=%v |diff|=%d, want complete with 4990", res.Complete, len(res.Difference))
	}
}

func TestSyncResponderRejectionNotifiesInitiator(t *testing.T) {
	// When the responder's hardening rejects the session, the blocking
	// initiator must receive the msgError diagnostic, not hang forever.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 200, Seed: 43})
	ca, cb := net.Pipe()
	respErr := make(chan error, 1)
	go func() {
		defer cb.Close()
		respErr <- SyncResponder(p.B, cb, &Options{Seed: 44, MaxD: 10})
	}()
	err := withDeadline(t, "initiator", func() error {
		// The initiator keeps the default MaxD, so only the responder
		// rejects; without the msgError frame this read would hang.
		_, err := SyncInitiator(p.A, ca, &Options{Seed: 44})
		return err
	})
	ca.Close()
	<-respErr
	if err == nil || !strings.Contains(err.Error(), "peer error") {
		t.Fatalf("want peer-error diagnostic on the initiator, got %v", err)
	}
}

func TestSyncResponderDuplicateEstimateRejected(t *testing.T) {
	// A second msgEstimate mid-session must be rejected, not silently
	// rebuild the responder and discard reconciliation state.
	set := []uint64{1, 2, 3, 4, 5}
	opt := (&Options{Seed: 37}).withDefaults()
	tow, err := estimator.NewToW(opt.EstimatorSketches, opt.Seed^towSeedTweak)
	if err != nil {
		t.Fatal(err)
	}
	est := encodeSketches(tow.Sketch([]uint64{6, 7, 8}))

	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder(set, cb, &Options{Seed: 37}) }()
	if err := writeFrame(ca, msgEstimate, est); err != nil {
		t.Fatal(err)
	}
	if _, err := expectFrameT(t, ca, msgEstimateReply); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(ca, msgEstimate, est); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "duplicate estimate") {
			t.Fatalf("want duplicate-estimate error, got %v", err)
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on duplicate estimate")
	}
	ca.Close()
}

// expectFrameT reads one frame and checks its type, for hand-rolled peers
// in fault tests.
func expectFrameT(t *testing.T, r io.Reader, want byte) ([]byte, error) {
	t.Helper()
	typ, payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("expected message type %d, got %d", want, typ)
	}
	return payload, nil
}

func TestSyncResponderTrailingSketchBytes(t *testing.T) {
	// A valid sketch payload with trailing garbage must fail loudly
	// instead of half-parsing.
	opt := (&Options{Seed: 38}).withDefaults()
	tow, err := estimator.NewToW(opt.EstimatorSketches, opt.Seed^towSeedTweak)
	if err != nil {
		t.Fatal(err)
	}
	est := append(encodeSketches(tow.Sketch([]uint64{6, 7, 8})), 0xAB)

	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, &Options{Seed: 38}) }()
	if err := writeFrame(ca, msgEstimate, est); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "trailing bytes") {
			t.Fatalf("want trailing-bytes error, got %v", err)
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on trailing sketch bytes")
	}
	ca.Close()
}

func TestSyncInitiatorTrailingEstimateReplyBytes(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 500, D: 5, Seed: 39})
	ca, cb := net.Pipe()
	go func() {
		defer cb.Close()
		if _, _, err := readFrame(cb); err != nil {
			return
		}
		// A valid d̂ varint followed by garbage the parser must not ignore.
		writeFrame(cb, msgEstimateReply, append(binary.AppendUvarint(nil, 5), 0xCD, 0xEF))
	}()
	err := withDeadline(t, "initiator", func() error {
		_, err := SyncInitiator(p.A, ca, &Options{Seed: 40})
		return err
	})
	ca.Close()
	if err == nil || !strings.Contains(err.Error(), "trailing bytes") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

func TestSyncWrongSketchCountRejected(t *testing.T) {
	// An initiator configured with a different estimator width must be
	// rejected by the responder during the estimate phase.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 1000, D: 5, Seed: 27})
	ca, cb := net.Pipe()
	respErr := make(chan error, 1)
	go func() {
		defer cb.Close()
		respErr <- SyncResponder(p.B, cb, &Options{Seed: 28, EstimatorSketches: 64})
	}()
	_, initErr := SyncInitiator(p.A, ca, &Options{Seed: 28, EstimatorSketches: 128})
	ca.Close()
	select {
	case err := <-respErr:
		if err == nil || !strings.Contains(err.Error(), "sketches") {
			t.Fatalf("want sketch-count mismatch error, got %v", err)
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on sketch-count mismatch")
	}
	if initErr == nil {
		t.Fatal("initiator must fail when the responder aborts")
	}
}
