package pbs

import (
	"encoding/binary"
	"io"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"pbs/internal/estimator"
	"pbs/internal/workload"
)

// Fault-injection coverage for the wire protocol: every malformed input —
// truncated frames, corrupted payloads, oversized frames, unexpected
// message types — must surface as an error on the affected endpoint, never
// a hang or a panic. net.Pipe gives fully synchronous delivery, so a test
// that passes here cannot be masked by kernel buffering.

// faultTimeout bounds every fault test; a blocked endpoint is a failure,
// not a slow test.
const faultTimeout = 10 * time.Second

// withDeadline runs fn and fails the test if it does not return in time.
func withDeadline(t *testing.T, name string, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(faultTimeout):
		t.Fatalf("%s: endpoint hung on malformed input", name)
		return nil
	}
}

func TestSyncResponderTruncatedHeader(t *testing.T) {
	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
	// Three bytes of a five-byte frame header, then EOF.
	if _, err := ca.Write([]byte{0x00, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	ca.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("responder accepted a truncated frame header")
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on truncated header")
	}
}

func TestSyncResponderTruncatedPayload(t *testing.T) {
	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
	// A header declaring 100 payload bytes, followed by only 4.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 100)
	hdr[4] = msgEstimate
	ca.Write(hdr[:])
	ca.Write([]byte{1, 2, 3, 4})
	ca.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("responder accepted a truncated payload")
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on truncated payload")
	}
}

func TestSyncOversizedFrameRejected(t *testing.T) {
	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
	// Header declaring a payload over maxFrame: must be rejected before any
	// allocation or read of the body.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = msgEstimate
	ca.Write(hdr[:])
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
			t.Fatalf("want frame-limit error, got %v", err)
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on oversized frame")
	}
	ca.Close()
}

func TestSyncResponderUnexpectedType(t *testing.T) {
	for _, typ := range []byte{msgEstimateReply, msgRoundReply, 0xEE} {
		ca, cb := net.Pipe()
		errCh := make(chan error, 1)
		go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
		if err := writeFrame(ca, typ, []byte{1}); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errCh:
			if err == nil {
				t.Fatalf("responder accepted unexpected message type %d", typ)
			}
		case <-time.After(faultTimeout):
			t.Fatalf("responder hung on unexpected message type %d", typ)
		}
		ca.Close()
	}
}

func TestSyncRoundBeforeEstimateRejected(t *testing.T) {
	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
	writeFrame(ca, msgRound, []byte{0x08})
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "round before estimation") {
			t.Fatalf("want round-before-estimation error, got %v", err)
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on early round message")
	}
	ca.Close()
}

func TestSyncInitiatorUnexpectedReplyType(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 500, D: 5, Seed: 21})
	ca, cb := net.Pipe()
	go func() {
		defer cb.Close()
		// Swallow the estimate, answer with the wrong message type.
		if _, _, err := readFrame(cb); err != nil {
			return
		}
		writeFrame(cb, msgRoundReply, []byte{1, 2, 3})
	}()
	err := withDeadline(t, "initiator", func() error {
		_, err := SyncInitiator(p.A, ca, &Options{Seed: 22})
		return err
	})
	ca.Close()
	if err == nil || !strings.Contains(err.Error(), "expected message type") {
		t.Fatalf("want message-type error, got %v", err)
	}
}

func TestSyncInitiatorCorruptEstimateReply(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 500, D: 5, Seed: 23})
	ca, cb := net.Pipe()
	go func() {
		defer cb.Close()
		if _, _, err := readFrame(cb); err != nil {
			return
		}
		// An unterminated varint: ten continuation bytes and no final group.
		writeFrame(cb, msgEstimateReply, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	}()
	err := withDeadline(t, "initiator", func() error {
		_, err := SyncInitiator(p.A, ca, &Options{Seed: 24})
		return err
	})
	ca.Close()
	if err == nil {
		t.Fatal("initiator accepted a corrupt estimate reply")
	}
}

// corruptingResponder runs the estimation phase honestly, then answers the
// first round with a bit-flipped copy of the real reply.
func corruptingResponder(set []uint64, conn net.Conn, seed uint64) {
	defer conn.Close()
	opt := (&Options{Seed: seed}).withDefaults()
	tow, err := estimator.NewToW(opt.EstimatorSketches, opt.Seed^0x70E57)
	if err != nil {
		return
	}
	typ, payload, err := readFrame(conn)
	if err != nil || typ != msgEstimate {
		return
	}
	theirs, err := decodeSketches(payload)
	if err != nil {
		return
	}
	dhatF, err := tow.Estimate(theirs, tow.Sketch(set))
	if err != nil {
		return
	}
	dhat := uint64(math.Round(dhatF))
	plan, err := syncPlan(dhat, opt)
	if err != nil {
		return
	}
	bob, err := NewResponder(set, plan)
	if err != nil {
		return
	}
	writeFrame(conn, msgEstimateReply, binary.AppendUvarint(nil, dhat))
	for {
		typ, payload, err := readFrame(conn)
		if err != nil || typ != msgRound {
			return
		}
		reply, err := bob.HandleRound(payload)
		if err != nil {
			return
		}
		// Truncate the reply mid-scope: Alice must detect it, not panic.
		writeFrame(conn, msgRoundReply, reply[:len(reply)/2])
	}
}

func TestSyncInitiatorCorruptedRoundReply(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 20, Seed: 25})
	ca, cb := net.Pipe()
	go corruptingResponder(p.B, cb, 26)
	err := withDeadline(t, "initiator", func() error {
		_, err := SyncInitiator(p.A, ca, &Options{Seed: 26})
		return err
	})
	ca.Close()
	if err == nil {
		t.Fatal("initiator accepted a corrupted round reply")
	}
}

func TestSyncResponderPeerDisconnect(t *testing.T) {
	// The peer vanishing mid-session must end SyncResponder with an error,
	// not leave it blocked forever.
	ca, cb := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SyncResponder([]uint64{1, 2, 3}, cb, nil) }()
	ca.Close()
	select {
	case err := <-errCh:
		if err != io.EOF && err != io.ErrClosedPipe {
			if err == nil {
				t.Fatal("responder treated disconnect as success")
			}
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung after peer disconnect")
	}
}

func TestSyncWrongSketchCountRejected(t *testing.T) {
	// An initiator configured with a different estimator width must be
	// rejected by the responder during the estimate phase.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 1000, D: 5, Seed: 27})
	ca, cb := net.Pipe()
	respErr := make(chan error, 1)
	go func() {
		defer cb.Close()
		respErr <- SyncResponder(p.B, cb, &Options{Seed: 28, EstimatorSketches: 64})
	}()
	_, initErr := SyncInitiator(p.A, ca, &Options{Seed: 28, EstimatorSketches: 128})
	ca.Close()
	select {
	case err := <-respErr:
		if err == nil || !strings.Contains(err.Error(), "sketches") {
			t.Fatalf("want sketch-count mismatch error, got %v", err)
		}
	case <-time.After(faultTimeout):
		t.Fatal("responder hung on sketch-count mismatch")
	}
	if initErr == nil {
		t.Fatal("initiator must fail when the responder aborts")
	}
}
