package pbs

import (
	"bytes"
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pbs/internal/workload"
)

// waitNoExtraGoroutines waits for the goroutine count to drop back to the
// baseline, failing the test if pumps or watchers leaked.
func waitNoExtraGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), before)
}

func TestSetAddRemoveSemantics(t *testing.T) {
	s, err := NewSet([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || !s.Contains(2) || s.Contains(9) {
		t.Fatal("initial state wrong")
	}
	added, err := s.Add(3, 4, 5)
	if err != nil || added != 2 {
		t.Fatalf("Add = (%d, %v), want (2, nil)", added, err)
	}
	if removed := s.Remove(1, 99); removed != 1 {
		t.Fatalf("Remove = %d, want 1", removed)
	}
	got := s.Elements()
	assertSameSet(t, got, []uint64{2, 3, 4, 5})
	// Invalid elements fail atomically: nothing is inserted.
	if _, err := s.Add(7, 0); err == nil {
		t.Fatal("zero element accepted")
	}
	if s.Contains(7) {
		t.Fatal("partial insert after failed Add")
	}
	// Out-of-universe element under SigBits.
	s8, err := NewSet([]uint64{10}, WithSigBits(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s8.Add(256); err == nil {
		t.Fatal("element wider than SigBits accepted")
	}
	// Constructor rejects duplicates and invalid elements like the old API.
	if _, err := NewSet([]uint64{5, 5}); err == nil {
		t.Fatal("duplicate accepted by NewSet")
	}
	if _, err := NewSet([]uint64{0}); err == nil {
		t.Fatal("zero accepted by NewSet")
	}
}

// TestSetReconcileMatchesLegacy checks the wrapper contract: pbs.Reconcile
// and Set.Reconcile produce identical results, and mutations made through
// the handle are equivalent to rebuilding from scratch.
func TestSetReconcileMatchesLegacy(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 4000, D: 90, Seed: 61})
	opt := &Options{Seed: 62}
	legacy, err := Reconcile(p.A, p.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewSet(p.A, withBaseOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSet(p.B, withBaseOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sa.Reconcile(context.Background(), sb)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.EstimatedD != legacy.EstimatedD ||
		res.EstimatorBytes != legacy.EstimatorBytes {
		t.Fatalf("Set result %+v != legacy %+v", res, legacy)
	}
	assertSameSet(t, res.Difference, legacy.Difference)

	// Mutate A through the handle until it equals B: the next reconcile
	// must see an empty difference, proving the incremental sketch and the
	// invalidated snapshot both track mutations.
	for _, x := range res.Difference {
		if sa.Contains(x) {
			sa.Remove(x)
		} else {
			if _, err := sa.Add(x); err != nil {
				t.Fatal(err)
			}
		}
	}
	res2, err := sa.Reconcile(context.Background(), sb)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Complete || len(res2.Difference) != 0 {
		t.Fatalf("after converging mutations: %d differences, complete=%v", len(res2.Difference), res2.Complete)
	}
}

// TestSetSyncCancellation cancels a sync stuck against a black-hole peer
// (a pipe nobody reads) and requires a prompt context.Canceled with no
// leaked goroutines — the ctx-plumbing acceptance criterion.
func TestSetSyncCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := NewSet([]uint64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.Sync(ctx, ca)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sync returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	waitNoExtraGoroutines(t, base)
}

// TestSetRespondCancellation: the responder side of the same contract.
func TestSetRespondCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := NewSet([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if err := s.Respond(ctx, cb); !errors.Is(err, context.Canceled) {
		t.Fatalf("Respond returned %v, want context.Canceled", err)
	}
	waitNoExtraGoroutines(t, base)
}

// TestSetSyncDeadline: a context deadline behaves like cancellation but
// surfaces as DeadlineExceeded.
func TestSetSyncDeadline(t *testing.T) {
	s, err := NewSet([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	if _, err := s.Sync(ctx, ca); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sync returned %v, want context.DeadlineExceeded", err)
	}
}

// TestSetServeCancellation runs a server via Set.Serve, completes one sync
// against it, cancels the context, and requires Serve to return
// context.Canceled without leaking its accept/handler goroutines.
func TestSetServeCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 40, Seed: 63})
	server, err := NewSet(p.B, WithSeed(64))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ctx, ln) }()

	c := &Client{Addr: ln.Addr().String(), Options: &Options{Seed: 64}, Timeout: 10 * time.Second}
	res, err := c.Sync(p.A)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("sync incomplete")
	}
	assertSameSet(t, res.Difference, p.Diff)

	cancel()
	select {
	case err := <-serveErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	waitNoExtraGoroutines(t, base)
}

// TestSetMutateDuringSync hammers Add/Remove on both handles while syncs
// are in flight between them — the race-detector acceptance test for the
// mutable handle. A final quiescent sync must still learn the exact
// difference.
func TestSetMutateDuringSync(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 60, Seed: 65})
	opt := []Option{WithSeed(66)}
	sa, err := NewSet(p.A, opt...)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSet(p.B, opt...)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range []*Set{sa, sb} {
		wg.Add(1)
		go func(s *Set) {
			defer wg.Done()
			// Churn elements in a private 33-bit-tagged range so the
			// workload's ground truth stays intact... except these all fit
			// 32 bits: use a high odd range unlikely to collide with the
			// generated IDs, and remove everything added before exiting.
			var mine []uint64
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					s.Remove(mine...)
					return
				default:
				}
				x := 0xF000_0001 + i*2
				if _, err := s.Add(x); err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, x)
				if len(mine) > 64 {
					s.Remove(mine[0])
					mine = mine[1:]
				}
				s.Len()
				s.Contains(x)
			}
		}(s)
	}

	for i := 0; i < 8; i++ {
		ca, cb := net.Pipe()
		respErr := make(chan error, 1)
		go func() {
			defer cb.Close()
			respErr <- sb.Respond(context.Background(), cb)
		}()
		if _, err := sa.Sync(context.Background(), ca); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		ca.Close()
		if err := <-respErr; err != nil {
			t.Fatalf("respond %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// Quiescent: the churned elements are gone, so the exact workload
	// difference must be learned.
	ca, cb := net.Pipe()
	go sb.Respond(context.Background(), cb)
	res, err := sa.Sync(context.Background(), ca, WithStrongVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("final sync incomplete")
	}
	assertSameSet(t, res.Difference, p.Diff)
}

// TestSetOnDeltaStreamsBeforeFinalRound is the streaming acceptance
// fixture: with a deliberately tiny Gamma both endpoints underestimate d,
// groups overload and split, the session takes several rounds — and
// WithOnDelta must deliver a nonempty batch before the final round
// completes, with the batches reassembling exactly into the result.
func TestSetOnDeltaStreamsBeforeFinalRound(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 8000, D: 400, Seed: 67})
	opts := []Option{WithSeed(68), WithGamma(0.05)}
	sa, err := NewSet(p.A, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSet(p.B, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var (
		batchRounds []int
		streamed    []uint64
	)
	ca, cb := net.Pipe()
	respErr := make(chan error, 1)
	go func() {
		defer cb.Close()
		respErr <- sb.Respond(context.Background(), cb)
	}()
	res, err := sa.Sync(context.Background(), ca,
		WithOnDelta(func(elems []uint64, round int) {
			if len(elems) == 0 {
				t.Error("empty delta batch")
			}
			batchRounds = append(batchRounds, round)
			streamed = append(streamed, elems...)
		}))
	ca.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-respErr; err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("sync incomplete")
	}
	if res.Rounds < 2 {
		t.Fatalf("fixture finished in %d round(s); want a multi-round session", res.Rounds)
	}
	if len(batchRounds) == 0 || batchRounds[0] >= res.Rounds {
		t.Fatalf("no delta batch before the final round (batch rounds %v of %d total)", batchRounds, res.Rounds)
	}
	assertSameSet(t, streamed, res.Difference)
	assertSameSet(t, streamed, p.Diff)
}

// TestOptionsValidation: nonsense option values must fail fast at the API
// boundary with a pbs-prefixed diagnostic, not a deep internal error.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"negative Delta", Options{Delta: -1}},
		{"negative TargetRounds", Options{TargetRounds: -3}},
		{"TargetSuccess one", Options{TargetSuccess: 1}},
		{"TargetSuccess negative", Options{TargetSuccess: -0.5}},
		{"SigBits low", Options{SigBits: 7}},
		{"SigBits high", Options{SigBits: 65}},
		{"negative EstimatorSketches", Options{EstimatorSketches: -8}},
		{"negative Gamma", Options{Gamma: -1.38}},
		{"negative KnownD", Options{KnownD: -2}},
		{"negative Parallelism", Options{Parallelism: -4}},
	}
	small := []uint64{1, 2, 3}
	for _, tc := range cases {
		for caller, err := range map[string]error{
			"Reconcile": func() error { _, err := Reconcile(small, small[:1], &tc.opt); return err }(),
			"PlanFor":   func() error { _, err := PlanFor(4, &tc.opt); return err }(),
			"NewSet":    func() error { _, err := NewSet(small, withBaseOptions(&tc.opt)); return err }(),
			"NewSharedSet": func() error {
				_, err := NewSharedSet(small, &tc.opt)
				return err
			}(),
		} {
			if err == nil {
				t.Errorf("%s: %s accepted invalid options", tc.name, caller)
				continue
			}
			if !strings.HasPrefix(err.Error(), "pbs:") {
				t.Errorf("%s: %s error %q not pbs-prefixed", tc.name, caller, err)
			}
		}
	}
}

// TestStructuralOptionsFixedAtNewSet: per-call attempts to change the
// fields the cached state was built under must be rejected.
func TestStructuralOptionsFixedAtNewSet(t *testing.T) {
	s, err := NewSet([]uint64{1, 2, 3}, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for name, opt := range map[string]Option{
		"Seed":              WithSeed(6),
		"SigBits":           WithSigBits(16),
		"EstimatorSketches": WithEstimatorSketches(64),
	} {
		if _, err := s.Sync(context.Background(), &buf, opt); err == nil ||
			!strings.Contains(err.Error(), "structural") {
			t.Errorf("%s changed per-call: err=%v", name, err)
		}
	}
	// The same value is not a change.
	sb, err := NewSet([]uint64{1, 2, 9}, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reconcile(context.Background(), sb, WithSeed(5)); err != nil {
		t.Fatalf("same-value structural option rejected: %v", err)
	}
	// A wholesale per-call WithOptions bridge with defaults left zero is
	// also not a change: zero still means "default" after the per-call
	// merge (regression: callConfig must re-resolve defaults).
	if _, err := s.Reconcile(context.Background(), sb, WithOptions(Options{Seed: 5})); err != nil {
		t.Fatalf("WithOptions migration bridge rejected per call: %v", err)
	}
}

// TestSyncRestoresConnDeadlines: the pump must hand the connection back
// with no deadline armed, so callers can run a follow-up protocol on it.
func TestSyncRestoresConnDeadlines(t *testing.T) {
	sa, err := NewSet([]uint64{1, 2, 3, 4}, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSet([]uint64{1, 2, 5}, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	respErr := make(chan error, 1)
	go func() { respErr <- sb.Respond(context.Background(), cb, WithIdleTimeout(time.Second)) }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := sa.Sync(ctx, ca, WithIdleTimeout(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := <-respErr; err != nil {
		t.Fatal(err)
	}
	// Both ends must be reusable after the short deadlines would have
	// fired: a write on one side paired with a read on the other.
	time.Sleep(1100 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 5)
		_, err := cb.Read(buf)
		done <- err
	}()
	if _, err := ca.Write([]byte("hello")); err != nil {
		t.Fatalf("post-sync write failed: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("post-sync read failed: %v", err)
	}
}

// TestClientBlackHoleServer is the regression for the client-hang bugfix:
// against a server that accepts and then never answers, the client must
// fail by its own deadline machinery — Timeout (context deadline wired
// into conn deadlines) or IdleTimeout (per-frame bound) — instead of
// hanging forever as the deadline-less old client did.
func TestClientBlackHoleServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow everything, answer nothing.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()

	local := []uint64{1, 2, 3, 4, 5}
	for name, c := range map[string]*Client{
		"Timeout":     {Addr: ln.Addr().String(), Timeout: 250 * time.Millisecond},
		"IdleTimeout": {Addr: ln.Addr().String(), IdleTimeout: 250 * time.Millisecond},
	} {
		start := time.Now()
		_, err := c.Sync(local)
		if err == nil {
			t.Fatalf("%s: sync against a black-hole server succeeded", name)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s: client hung %v against a black-hole server", name, elapsed)
		}
	}

	// And via an explicit context deadline on SyncContext.
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	c := &Client{Addr: ln.Addr().String()}
	if _, err := c.SyncContext(ctx, local); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SyncContext returned %v, want context.DeadlineExceeded", err)
	}
}

// TestServeLiveMutation: sessions admitted after a mutation of a
// registered Set see the new contents; the amortized view rebuild is
// exercised end to end through Serve + Client.
func TestServeLiveMutation(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2500, D: 50, Seed: 69})
	server, err := NewSet(p.B, WithSeed(70))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ctx, ln) }()

	c := &Client{Addr: ln.Addr().String(), Options: &Options{Seed: 70}, Timeout: 10 * time.Second}
	res, err := c.Sync(p.A)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, res.Difference, p.Diff)

	// Converge the server to the client's set; the next sync sees zero
	// difference — through the same long-lived Serve.
	for _, x := range p.Diff {
		if server.Contains(x) {
			server.Remove(x)
		} else if _, err := server.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	res, err = c.Sync(p.A)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Difference) != 0 || !res.Complete {
		t.Fatalf("after server mutation: %d differences, complete=%v", len(res.Difference), res.Complete)
	}
	cancel()
	if err := <-serveErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
}

// TestServerRegisterSetNamed: a live Set in a multi-set Server registry,
// alongside an immutable one.
func TestServerRegisterSetNamed(t *testing.T) {
	live, err := NewSet([]uint64{10, 20, 30}, WithSeed(71))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerOptions{Protocol: &Options{Seed: 71}})
	if err := srv.RegisterSet("live", live); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(DefaultSetName, []uint64{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	// Structural mismatch is rejected at registration.
	other, err := NewSet([]uint64{1}, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterSet("bad", other); err == nil {
		t.Fatal("seed-mismatched Set registered")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c := &Client{Addr: ln.Addr().String(), Set: "live", Options: &Options{Seed: 71}, Timeout: 10 * time.Second}
	res, err := c.Sync([]uint64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, res.Difference, []uint64{30})
	if _, err := live.Add(99); err != nil {
		t.Fatal(err)
	}
	res, err = c.Sync([]uint64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, res.Difference, []uint64{30, 99})
}

// TestSetSyncAgainstServeNamed exercises WithSetName on both ends of the
// new surface, including hello-byte accounting.
func TestSetSyncAgainstServeNamed(t *testing.T) {
	server, err := NewSet([]uint64{7, 8, 9}, WithSeed(72))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ctx, ln, WithSetName("catalog")) }()

	client, err := NewSet([]uint64{7}, WithSeed(72))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := client.Sync(ctx, conn, WithSetName("catalog"))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, res.Difference, []uint64{8, 9})
	cancel()
	<-serveErr
}

// TestReconcileContextCancelled: the in-process driver honors ctx too.
func TestReconcileContextCancelled(t *testing.T) {
	sa, err := NewSet([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSet([]uint64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sa.Reconcile(ctx, sb); !errors.Is(err, context.Canceled) {
		t.Fatalf("Reconcile returned %v, want context.Canceled", err)
	}
}

// TestSetWarmReuseManySyncs re-syncs one handle many times against varying
// peers, interleaving mutations — the amortization path (snapshot and
// sketch survive across syncs, rebuilt only after mutations).
func TestSetWarmReuseManySyncs(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 30, Seed: 73})
	sa, err := NewSet(p.A, WithSeed(74))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSet(p.B, WithSeed(74))
	if err != nil {
		t.Fatal(err)
	}
	extras := []uint64{}
	for i := 0; i < 5; i++ {
		ca, cb := net.Pipe()
		respErr := make(chan error, 1)
		go func() {
			defer cb.Close()
			respErr <- sb.Respond(context.Background(), cb)
		}()
		res, err := sa.Sync(context.Background(), ca)
		ca.Close()
		if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		if err := <-respErr; err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("sync %d incomplete", i)
		}
		want := append(append([]uint64(nil), p.Diff...), extras...)
		assertSameSet(t, res.Difference, want)
		// Drift sa by one fresh element per iteration; later syncs must see
		// the growing difference through the same warm handle.
		x := 0xABC0 + uint64(i)
		if _, err := sa.Add(x); err != nil {
			t.Fatal(err)
		}
		extras = append(extras, x)
	}
}

// TestSetServeRejectsBadPerCallOptions: option validation also guards the
// Serve entry point.
func TestSetServeRejectsBadPerCallOptions(t *testing.T) {
	s, err := NewSet([]uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := s.Serve(context.Background(), ln, WithDelta(-1)); err == nil ||
		!strings.HasPrefix(err.Error(), "pbs:") {
		t.Fatalf("Serve accepted invalid options: %v", err)
	}
}
