// Command pbs-loadgen drives a running pbs-serve instance with a fleet of
// concurrent warm pbs.Set clients and reports what the server sustains:
// syncs/s, bytes/s, and p50/p95/p99 sync latency — to stdout for humans
// and to a JSON file (BENCH_load.json) for tooling.
//
// The server must serve the B side of the same synthetic workload, i.e.
// identical -size/-diff/-workload-seed (pbs-serve spells them -demo-size,
// -demo-d, -demo-seed) and the same protocol -seed:
//
//	pbs-serve   -addr :9931 -demo-size 10000 -demo-d 100 -demo-seed 1
//	pbs-loadgen -addr localhost:9931 -size 10000 -diff 100 -workload-seed 1 \
//	    -workers 500 -duration 30s -churn 10 -json BENCH_load.json
//
// Closed-loop by default (every worker keeps one sync in flight, so
// -workers is the concurrent-session count); -rate R switches to an
// open-loop arrival process targeting R syncs/s across the fleet. Workers
// hold one warm connection each and run sessions back to back over it;
// -reconnect dials a fresh connection per sync instead. -churn N toggles
// N elements through the Set's incremental Add/Remove path between syncs.
// -verify checks every learned difference against the tracked ground
// truth and counts mismatches as errors. -mux N multiplexes every N
// workers' syncs as concurrent streams over one shared connection
// (protocol version 2), so 500 workers with -mux 32 hold only 16 sockets;
// -compress additionally offers lz frame compression during negotiation.
//
// -sets N switches to many-sets mode: every sync targets one of N hosted
// catalog sets by name instead of the single default set, with -zipf s
// skewing which sets stay hot. The server must host the same catalog:
//
//	pbs-serve   -addr :9931 -data-dir /var/pbs -host-sets 10000 -host-size 400
//	pbs-loadgen -addr localhost:9931 -sets 10000 -size 400 -zipf 1.2 -verify
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pbs"
	"pbs/internal/chaos"
	"pbs/internal/load"
)

func main() {
	var (
		addr    = flag.String("addr", "", "server address host:port (required)")
		setName = flag.String("set-name", "", "named registry set to sync against (empty = server default)")

		workers  = flag.Int("workers", 50, "concurrent clients (closed-loop: also the concurrent-session count)")
		duration = flag.Duration("duration", 10*time.Second, "run length (ignored with -syncs)")
		syncs    = flag.Int("syncs", 0, "exact syncs per worker instead of a timed run")

		size  = flag.Int("size", 10000, "per-client set size |A| (server must serve -demo-size of the same value)")
		diff  = flag.Int("diff", 100, "initial per-client difference |A△B| (server -demo-d)")
		churn = flag.Int("churn", 0, "elements toggled through Add/Remove between syncs")
		wseed = flag.Int64("workload-seed", 1, "workload seed (server -demo-seed)")

		sets = flag.Int("sets", 0, "many-sets mode: sync against N hosted catalog sets (server -host-sets N, matching -host-size and seed)")
		zipf = flag.Float64("zipf", 0, "skew many-sets access with a Zipf(s) index distribution, s > 1 (0 = uniform; requires -sets)")

		rate       = flag.Float64("rate", 0, "open-loop target syncs/s across the fleet (0 = closed loop)")
		reconnect  = flag.Bool("reconnect", false, "dial a fresh connection per sync instead of holding warm connections")
		mux        = flag.Int("mux", 0, "multiplex N workers' syncs as concurrent streams over each shared connection (0/1 = one connection per worker)")
		compress   = flag.Bool("compress", false, "offer lz frame compression during mux negotiation (requires -mux)")
		timeout    = flag.Duration("sync-timeout", 30*time.Second, "per-sync deadline")
		verify     = flag.Bool("verify", false, "check every learned difference against the tracked ground truth")
		legacySync = flag.Bool("legacy-sync", false, "use the multi-RTT protocol-0 flow instead of the single-RTT fast path")

		chaosSpec = flag.String("chaos", "", "inject connection faults, e.g. 'drop=0.02,stall=0.05,stall-ms=300,seed=7' (keys: drop, reset, corrupt, stall, stall-ms, latency-ms, jitter-ms, bw, chunk, seed)")
		retry     = flag.Bool("retry", false, "sync under a retry policy (redial per attempt, exponential backoff, retry-after hints honored)")
		attempts  = flag.Int("retry-attempts", 0, "retry attempt budget per sync (0 = library default)")

		seed         = flag.Uint64("seed", 42, "shared protocol hash seed (server -seed)")
		maxD         = flag.Int("max-d", 0, "cap on the accepted difference estimate d̂ (0 = library default)")
		strongVerify = flag.Bool("strong-verify", false, "request the strong multiset-hash verification")

		jsonPath  = flag.String("json", "", "write the machine-readable report to this file (e.g. BENCH_load.json)")
		benchPath = flag.String("latency-bench", "", "additionally write the sync-latency quantiles in benchgate format (e.g. BENCH_latency.json)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "pbs-loadgen: -addr is required")
		flag.Usage()
		os.Exit(2)
	}

	chaosCfg, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbs-loadgen:", err)
		os.Exit(2)
	}

	cfg := load.Config{
		Addr:           *addr,
		SetName:        *setName,
		Workers:        *workers,
		Duration:       *duration,
		SyncsPerWorker: *syncs,
		SetSize:        *size,
		DiffSize:       *diff,
		Churn:          *churn,
		Seed:           *wseed,
		Sets:           *sets,
		ZipfS:          *zipf,
		Rate:           *rate,
		Reconnect:      *reconnect,
		MuxStreams:     *mux,
		Compress:       *compress,
		SyncTimeout:    *timeout,
		Verify:         *verify,
		LegacySync:     *legacySync,
		Chaos:          chaosCfg,
		Retry:          *retry,
		RetryAttempts:  *attempts,
		Options:        &pbs.Options{Seed: *seed, MaxD: *maxD, StrongVerify: *strongVerify},
	}

	// SIGINT/SIGTERM end the run early; whatever was measured so far is
	// still reported.
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	if cfg.Sets > 0 {
		fmt.Printf("pbs-loadgen: %d workers against %s (%d sets, size=%d, d=%d, zipf=%g)...\n",
			cfg.Workers, cfg.Addr, *sets, *size, *diff, *zipf)
	} else {
		fmt.Printf("pbs-loadgen: %d workers against %s (|A|=%d, d=%d, churn=%d)...\n",
			cfg.Workers, cfg.Addr, *size, *diff, *churn)
	}
	rep, err := load.Run(ctx, cfg)
	if rep != nil {
		fmt.Println("pbs-loadgen:", rep)
		if *jsonPath != "" {
			if werr := writeJSON(*jsonPath, rep); werr != nil {
				fmt.Fprintln(os.Stderr, "pbs-loadgen:", werr)
				os.Exit(1)
			}
			fmt.Printf("pbs-loadgen: wrote %s\n", *jsonPath)
		}
		if *benchPath != "" {
			if werr := writeLatencyBench(*benchPath, rep); werr != nil {
				fmt.Fprintln(os.Stderr, "pbs-loadgen:", werr)
				os.Exit(1)
			}
			fmt.Printf("pbs-loadgen: wrote %s\n", *benchPath)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbs-loadgen:", err)
		os.Exit(1)
	}
	if rep.Chaos || cfg.Retry {
		// Under fault injection, per-sync errors are expected casualties;
		// the pass criterion is the post-run convergence check.
		if rep.Unreconciled > 0 {
			fmt.Fprintf(os.Stderr, "pbs-loadgen: %d workers unreconciled after the run (first: %s)\n",
				rep.Unreconciled, rep.FirstError)
			os.Exit(1)
		}
		return
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "pbs-loadgen: %d syncs failed (first: %s)\n", rep.Errors, rep.FirstError)
		os.Exit(1)
	}
}

func writeJSON(path string, rep *load.Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeLatencyBench exports the client-observed sync-latency quantiles in
// the benchgate entry format, so scripts/bench_load.sh can gate loopback
// sync latency against a committed BENCH_latency baseline exactly like
// the decode and API benchmarks. Quantiles are microseconds in the
// report; ns_per_op is the benchgate unit.
func writeLatencyBench(path string, rep *load.Report) error {
	type entry struct {
		Name        string  `json:"name"`
		Iterations  int64   `json:"iterations"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	}
	lat := rep.LatencyUS
	entries := []entry{
		{Name: "SyncLatency/p50", Iterations: lat.Count, NsPerOp: lat.P50 * 1e3},
		{Name: "SyncLatency/p95", Iterations: lat.Count, NsPerOp: lat.P95 * 1e3},
		{Name: "SyncLatency/p99", Iterations: lat.Count, NsPerOp: lat.P99 * 1e3},
	}
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
