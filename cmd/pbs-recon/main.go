// Command pbs-recon reconciles two sets of 32-bit element IDs stored in
// text files (one decimal or 0x-prefixed hex ID per line) and prints the
// difference, demonstrating the library end to end.
//
// Usage:
//
//	pbs-recon -a alice.txt -b bob.txt [-seed N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"pbs"
)

func main() {
	var (
		aPath      = flag.String("a", "", "file with Alice's element IDs (one per line)")
		bPath      = flag.String("b", "", "file with Bob's element IDs (one per line)")
		seed       = flag.Uint64("seed", 42, "shared hash seed")
		workers    = flag.Int("parallelism", 0, "per-group decode workers (0 = GOMAXPROCS, 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		fmt.Fprintln(os.Stderr, "usage: pbs-recon -a alice.txt -b bob.txt")
		os.Exit(2)
	}
	a, err := readIDs(*aPath)
	if err != nil {
		fatal(err)
	}
	b, err := readIDs(*bPath)
	if err != nil {
		fatal(err)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	res, err := pbs.Reconcile(a, b, &pbs.Options{Seed: *seed, Parallelism: *workers})
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	// Report the reconciliation error before any profile-write error so a
	// bad -memprofile path cannot swallow the failure the user cares about.
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbs-recon:", err)
	}
	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fatal(merr)
		}
		runtime.GC() // materialize up-to-date allocation stats
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fatal(merr)
		}
		f.Close()
	}
	if err != nil {
		os.Exit(1)
	}
	fmt.Printf("# |A|=%d |B|=%d estimated d=%d rounds=%d payload=%dB estimator=%dB complete=%v\n",
		len(a), len(b), res.EstimatedD, res.Rounds, res.PayloadBytes, res.EstimatorBytes, res.Complete)
	for _, x := range res.Difference {
		fmt.Printf("%d\n", x)
	}
}

func readIDs(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []uint64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), base(s), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbs-recon:", err)
	os.Exit(1)
}
