// Command pbs-optimize runs the paper's analytical framework (§4–5): it
// prints the Table 1 success-probability grid and the optimal (n, t)
// parameters for a given instance, plus the piecewise-reconciliability
// profile.
//
// Usage:
//
//	pbs-optimize -d 1000 -delta 5 -r 3 -p0 0.99
package main

import (
	"flag"
	"fmt"
	"os"

	"pbs/internal/exper"
	"pbs/internal/markov"
)

func main() {
	var (
		d     = flag.Int("d", 1000, "set-difference cardinality")
		delta = flag.Int("delta", 5, "average distinct elements per group")
		r     = flag.Int("r", 3, "target number of rounds")
		p0    = flag.Float64("p0", 0.99, "target success probability")
	)
	flag.Parse()

	exper.PrintTable1(os.Stdout, *d, *delta, *r, *p0)

	p, err := markov.Optimize(*d, *delta, *r, *p0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbs-optimize:", err)
		os.Exit(1)
	}
	g := markov.NumGroups(*d, *delta)
	fmt.Printf("\nOptimal parameters: n = %d (m = %d), t = %d\n", p.N(), p.M, p.T)
	fmt.Printf("Groups g = %d, success-probability lower bound = %.4f\n", g, p.Bound)
	fmt.Printf("Per-group communication (first round): %d bits codeword+positions + %d bits sums+checksum = %d bits\n",
		p.BitsPerGroup, *delta*32+32, p.BitsPerGroup+*delta*32+32)

	c, err := markov.NewChain(p.N(), p.T)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbs-optimize:", err)
		os.Exit(1)
	}
	fmt.Println("\nExpected proportion of distinct elements reconciled per round (§5.3):")
	for i, prop := range c.RoundProportions(*d, g, *r+1) {
		fmt.Printf("  round %d: %.6g\n", i+1, prop)
	}
}
