// Command pbs-experiments regenerates the tables and figures of the PBS
// paper's evaluation (§8, Appendices H and J). Each experiment prints the
// same rows/series the paper reports.
//
// Usage:
//
//	pbs-experiments -exp fig1 [-instances N] [-sizeA N] [-dmax D]
//
// Experiments: fig1, fig2, fig3, fig4, fig5, table1, table2, sec52, sec53,
// sec23, appB, adaptive, all. Defaults are scaled down from the paper's
// (|A|=10^6, 1000 instances) so a full run finishes in minutes; raise
// -sizeA and -instances to match the paper's scale exactly.
//
// The adaptive experiment (not part of the paper) compares the online
// adaptive controller against the paper-fixed configuration over real wire
// syncs and, with -json, writes the table for scripts/bench_adaptive.sh to
// gate on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"pbs/internal/adaptbench"
	"pbs/internal/exper"
	"pbs/internal/markov"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id: fig1 fig2 fig3 fig4 fig5 table1 table2 sec52 sec53 sec23 appB adaptive all")
		jsonOut    = flag.String("json", "", "write adaptive-experiment results as JSON to this file")
		instances  = flag.Int("instances", 5, "instances per data point (paper: 1000)")
		sizeA      = flag.Int("sizeA", 100000, "cardinality of set A (paper: 1000000)")
		dmax       = flag.Int("dmax", 10000, "largest set-difference cardinality in sweeps (paper: 100000)")
		psmax      = flag.Int("pinsketch-dmax", 1000, "largest d for plain PinSketch (O(d^2) decoding)")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		parallel   = flag.Int("parallel", 1, "concurrent instances per data point (timings get noisy above 1)")
		verbose    = flag.Bool("v", true, "print per-point progress")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pbs-experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pbs-experiments:", err)
			os.Exit(1)
		}
	}
	err := run(*exp, *instances, *sizeA, *dmax, *psmax, *seed, *parallel, *verbose, *jsonOut)
	if *cpuprofile != "" {
		pprof.StopCPUProfile() // explicit: os.Exit below would skip a defer
	}
	// Report the experiment error before any profile-write error so a bad
	// -memprofile path cannot swallow the failure the user cares about.
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbs-experiments:", err)
	}
	if *memprofile != "" {
		if merr := writeHeapProfile(*memprofile); merr != nil {
			fmt.Fprintln(os.Stderr, "pbs-experiments:", merr)
			os.Exit(1)
		}
	}
	if err != nil {
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation stats
	return pprof.WriteHeapProfile(f)
}

func dGrid(dmax int) []int {
	grid := []int{10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000}
	var out []int
	for _, d := range grid {
		if d <= dmax {
			out = append(out, d)
		}
	}
	return out
}

func run(exp string, instances, sizeA, dmax, psmax int, seed int64, parallel int, verbose bool, jsonOut string) error {
	var progress *os.File
	if verbose {
		progress = os.Stderr
	}
	all := exp == "all"
	ran := false

	if all || exp == "fig1" {
		ran = true
		fmt.Println("=== Figure 1: PBS vs PinSketch vs D.Digest (p0 = 0.99, r = 3) ===")
		pts, err := exper.Sweep(exper.SweepConfig{
			Ds:            dGrid(dmax),
			Algos:         []exper.Algo{exper.AlgoPBS, exper.AlgoPinSketch, exper.AlgoDDigest},
			Instances:     instances,
			SizeA:         sizeA,
			BaseSeed:      seed,
			Run:           exper.RunConfig{MaxRounds: 3},
			PinSketchMaxD: psmax,
			Parallel:      parallel,
			Progress:      progress,
		})
		if err != nil {
			return err
		}
		exper.PrintTable(os.Stdout, pts, false)
	}

	if all || exp == "fig2" {
		ran = true
		fmt.Println("\n=== Figure 2: PBS vs Graphene (p0 = 239/240) ===")
		pts, err := exper.Sweep(exper.SweepConfig{
			Ds:        dGrid(dmax),
			Algos:     []exper.Algo{exper.AlgoPBS, exper.AlgoGraphene},
			Instances: instances,
			SizeA:     sizeA,
			BaseSeed:  seed + 1,
			Run: exper.RunConfig{
				TargetSuccess: 239.0 / 240,
				MaxRounds:     3,
				GrapheneTau:   2.4,
			},
			Parallel: parallel,
			Progress: progress,
		})
		if err != nil {
			return err
		}
		exper.PrintTable(os.Stdout, pts, false)
	}

	if all || exp == "fig3" || exp == "fig5" {
		ran = true
		fmt.Println("\n=== Figures 3 & 5: PBS vs PinSketch/WP (p0 = 0.99; Fig. 5 = 256-bit IDs) ===")
		pts, err := exper.Sweep(exper.SweepConfig{
			Ds:        dGrid(dmax),
			Algos:     []exper.Algo{exper.AlgoPBS, exper.AlgoPinSketchWP},
			Instances: instances,
			SizeA:     sizeA,
			BaseSeed:  seed + 2,
			Run:       exper.RunConfig{MaxRounds: 3},
			Parallel:  parallel,
			Progress:  progress,
		})
		if err != nil {
			return err
		}
		exper.PrintTable(os.Stdout, pts, true)
	}

	if all || exp == "fig4" {
		ran = true
		d := 10000
		if d > dmax {
			d = dmax
		}
		fmt.Printf("\n=== Figure 4: PBS vs δ at d = %d (p0 = 0.99, r = 3) ===\n", d)
		pts, err := exper.DeltaSweep(d, []int{3, 6, 9, 12, 15, 18, 21, 24, 27, 30}, sizeA, instances, seed+3)
		if err != nil {
			return err
		}
		fmt.Printf("%8s %13s %13s %13s %13s\n", "delta", "success", "comm KB", "encode s", "decode s")
		for _, p := range pts {
			fmt.Printf("%8d %13.4f %13.3f %13.5f %13.6f\n",
				p.Delta, p.Point.SuccessRate, p.Point.CommKB, p.Point.EncodeSec, p.Point.DecodeSec)
		}
	}

	if all || exp == "table1" {
		ran = true
		fmt.Println("\n=== Table 1 (App. H): success-probability lower bounds, d=1000, δ=5, r=3 ===")
		exper.PrintTable1(os.Stdout, 1000, 5, 3, 0.99)
	}

	if all || exp == "table2" {
		ran = true
		fmt.Println("\n=== Table 2 (App. J.1): empirical pmf of rounds required (unlimited rounds) ===")
		fmt.Printf("%10s %8s %8s %8s %8s %10s\n", "d", "r=1", "r=2", "r=3", "r=4+", "avg")
		for _, d := range dGrid(dmax) {
			pmf, err := exper.RoundsPMF(d, sizeA, instances, seed+4)
			if err != nil {
				return err
			}
			row := [4]float64{}
			avg := 0.0
			for r, p := range pmf {
				if r < 3 {
					row[r] = p
				} else {
					row[3] += p
				}
				avg += float64(r+1) * p
			}
			fmt.Printf("%10d %8.3f %8.3f %8.3f %8.3f %10.2f\n", d, row[0], row[1], row[2], row[3], avg)
		}
	}

	if all || exp == "sec52" {
		ran = true
		fmt.Println("\n=== §5.2: optimal per-group communication vs round budget r (paper: 591/402/318/288) ===")
		rows, err := exper.Sec52(1000, 5, 4, 0.99, 32)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("r=%d: n=%d t=%d comm=%d bits\n", r.R, (1<<r.M)-1, r.T, r.CommBits)
		}
	}

	if all || exp == "sec53" {
		ran = true
		fmt.Println("\n=== §5.3: expected proportion of d reconciled per round (paper: 0.962, 0.0380, 3.61e-4, 2.86e-6) ===")
		props, params, err := exper.Sec53(1000, 5, 3, 0.99, 4)
		if err != nil {
			return err
		}
		fmt.Printf("optimal params: n=%d t=%d\n", params.N(), params.T)
		for i, p := range props {
			fmt.Printf("round %d: %.6g\n", i+1, p)
		}
	}

	if all || exp == "appB" || exp == "appb" {
		ran = true
		fmt.Println("\n=== Appendix B: set-difference-cardinality estimators (accuracy vs bytes) ===")
		ds := []int{100, 1000}
		if dmax < 1000 {
			ds = []int{100}
		}
		pts, err := exper.EstimatorComparison(ds, sizeA, instances, seed+5)
		if err != nil {
			return err
		}
		fmt.Printf("%10s %8s %10s %10s %10s %10s\n", "estimator", "d", "bytes", "mean d̂/d", "RMS err", "coverage")
		for _, p := range pts {
			fmt.Printf("%10s %8d %10d %10.3f %10.3f %10.3f\n",
				p.Name, p.D, p.CommBytes, p.MeanRel, p.RMSRel, p.Coverage)
		}
	}

	if all || exp == "sec23" {
		ran = true
		fmt.Println("\n=== §2.3 exception probabilities (d=5 balls into n=255 bins) ===")
		oc := markovOccupancy()
		fmt.Printf("ideal case:            %.4f   (paper: ~0.96)\n", oc.Ideal)
		fmt.Printf("type (I) exception:    %.4f   (paper: ~0.04)\n", oc.TypeI)
		fmt.Printf("type (II) exception:   %.3g   (paper: 1.52e-4)\n", oc.TypeII)
		fmt.Printf("fake element passes:   %.3g   (paper: ~6e-7)\n", oc.TypeII/255)
	}

	// The adaptive comparison is deliberately excluded from "all": it runs
	// full wire syncs (slower than core-level instances) and its output is
	// a gate table, not a paper figure.
	if exp == "adaptive" {
		ran = true
		fmt.Println("=== Adaptive controller vs paper-fixed parameters (wire syncs, no KnownD) ===")
		ds := []int{}
		for _, d := range []int{10, 100, 1000, 10000} {
			if d <= dmax {
				ds = append(ds, d)
			}
		}
		pts, err := adaptbench.AdaptiveSweep(ds, sizeA, instances, seed, progress)
		if err != nil {
			return err
		}
		fmt.Printf("%8s %14s %14s %12s %12s %14s\n",
			"d", "fixed B", "adaptive B", "fixed rds", "adaptive rds", "replans/sync")
		for _, p := range pts {
			fmt.Printf("%8d %14.0f %14.0f %12.2f %12.2f %14.2f\n",
				p.D, p.FixedBytes, p.AdaptiveBytes, p.FixedRounds, p.AdaptiveRounds, p.Replans)
		}
		if jsonOut != "" {
			blob, err := json.MarshalIndent(map[string]any{
				"size_a": sizeA,
				"syncs":  instances,
				"points": pts,
			}, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonOut, append(blob, '\n'), 0o644); err != nil {
				return err
			}
		}
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func markovOccupancy() markov.OccupancyProbs {
	return markov.Occupancy(5, 255)
}
