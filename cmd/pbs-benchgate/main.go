// Command pbs-benchgate is the CI perf-regression gate: it compares a
// freshly measured BENCH_*.json against the committed baseline in
// testdata/bench_baselines/ and exits non-zero when a hot path regressed.
//
//	pbs-benchgate -baseline testdata/bench_baselines/BENCH_decode.json \
//	    -current BENCH_decode.json
//
// The gate fails when a baseline benchmark disappeared, its ns_per_op
// regressed beyond -max-ns-regress (default 0.30 = +30%), or its
// allocs_per_op grew beyond -alloc-slack (default 0.10; a baseline of 0
// allocs must stay at exactly 0). Refresh a baseline deliberately by
// re-running the matching scripts/bench_*.sh on a quiet machine and
// committing the output over testdata/bench_baselines/.
package main

import (
	"flag"
	"fmt"
	"os"

	"pbs/internal/benchgate"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline BENCH_*.json (required)")
		currentPath  = flag.String("current", "", "freshly measured BENCH_*.json (required)")
		maxNsRegress = flag.Float64("max-ns-regress", benchgate.DefaultLimits.MaxNsRegress,
			"tolerated fractional ns_per_op growth (0.30 = +30%)")
		allocSlack = flag.Float64("alloc-slack", benchgate.DefaultLimits.AllocSlack,
			"tolerated fractional allocs_per_op growth for allocating baselines (0-alloc baselines get none)")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "pbs-benchgate: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := benchgate.Load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := benchgate.Load(*currentPath)
	if err != nil {
		fatal(err)
	}
	lim := benchgate.Limits{MaxNsRegress: *maxNsRegress, AllocSlack: *allocSlack}
	violations := benchgate.Compare(baseline, current, lim)
	if len(violations) == 0 {
		fmt.Printf("pbs-benchgate: %s OK against %s (%d benchmarks, limits +%.0f%% ns, +%.0f%% allocs)\n",
			*currentPath, *baselinePath, len(baseline), 100*lim.MaxNsRegress, 100*lim.AllocSlack)
		return
	}
	fmt.Fprintf(os.Stderr, "pbs-benchgate: %s regressed against %s:\n", *currentPath, *baselinePath)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "  %s\n", v)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbs-benchgate:", err)
	os.Exit(1)
}
