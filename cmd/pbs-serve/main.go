// Command pbs-serve runs a concurrent PBS reconciliation server: many
// clients sync their sets against one immutable server-side snapshot over
// TCP, with per-session limits (d̂ cap, byte budget, round budget, idle
// deadline) guarding against hostile or broken peers, and counters
// exposed on an expvar metrics endpoint.
//
// Serve a set from a file (one decimal or 0x-prefixed hex ID per line):
//
//	pbs-serve -addr :9931 -set ids.txt
//
// Or serve side B of a synthetic workload (for demos and smoke tests):
//
//	pbs-serve -addr :9931 -demo-size 100000 -demo-d 100 -demo-seed 1
//
// The same binary doubles as a client with -sync; with the same demo
// flags it syncs side A of the workload and verifies the learned
// difference against the ground truth:
//
//	pbs-serve -sync localhost:9931 -demo-size 100000 -demo-d 100 -demo-seed 1
//
// Hosting mode serves many named sets instead of (or next to) the single
// default set: -data-dir persists hosted sets as segment files and lets
// -max-resident-bytes evict cold sets to disk (they keep answering
// estimates from their persisted sketch without loading), -tenant-quota
// caps what each tenant namespace may register, and -host-sets N
// populates a deterministic catalog for cmd/pbs-loadgen -sets runs:
//
//	pbs-serve -addr :9931 -data-dir /var/pbs -max-resident-bytes 64000000 \
//	    -host-sets 10000 -host-size 400 -tenant-quota sets=100000,sessions=64
//
// Metrics: -metrics ADDR serves expvar on http://ADDR/debug/vars with the
// server counters and the per-completed-session latency/round/byte
// histograms published under "pbs_serve". A fleet to load the server with
// lives in cmd/pbs-loadgen. SIGINT/SIGTERM drain
// in-flight sessions (up to -drain) before exiting; a final stats line is
// printed either way.
package main

import (
	"bufio"
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pbs"
	"pbs/internal/load"
	"pbs/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":9931", "listen address for the reconciliation server")
		metrics = flag.String("metrics", "", "listen address for the expvar metrics endpoint (empty = disabled)")
		syncTo  = flag.String("sync", "", "run as a client instead: sync against this server address")

		setPath  = flag.String("set", "", "file with the served element IDs (one per line)")
		setName  = flag.String("set-name", pbs.DefaultSetName, "registry name to serve the set under / sync against")
		demoSize = flag.Int("demo-size", 0, "serve a synthetic workload of this size instead of -set")
		demoD    = flag.Int("demo-d", 100, "difference cardinality of the synthetic workload")
		demoSeed = flag.Int64("demo-seed", 1, "seed of the synthetic workload")

		seed         = flag.Uint64("seed", 42, "shared protocol hash seed (must match on both sides)")
		maxD         = flag.Int("max-d", 0, "cap on the accepted difference estimate d̂ (0 = library default)")
		strongVerify = flag.Bool("strong-verify", false, "client: request the strong multiset-hash verification")
		legacySync   = flag.Bool("legacy-sync", false, "client: use the multi-RTT protocol-0 flow instead of the single-RTT fast path")

		maxSessions  = flag.Int("max-sessions", 0, "concurrent session cap (0 = default, <0 = uncapped)")
		softSessions = flag.Int("soft-sessions", 0, "soft admission watermark: shed new connections above this before the hard cap (0 = default headroom, <0 = disabled)")
		retryAfter   = flag.Duration("retry-after", 0, "base retry-after hint on busy rejections (0 = default, <0 = no hint)")
		idle         = flag.Duration("idle-timeout", 0, "per-frame idle deadline (0 = default, <0 = disabled)")
		byteBudget   = flag.Int64("byte-budget", 0, "per-session wire byte budget (0 = default, <0 = uncapped)")
		maxRounds    = flag.Int("max-rounds", 0, "per-session round budget (0 = default, <0 = uncapped)")
		maxStreams   = flag.Int("max-streams", 0, "per-connection mux stream cap (0 = default, <0 = decline mux negotiation)")
		drain        = flag.Duration("drain", 10*time.Second, "how long shutdown waits for in-flight sessions")

		dataDir     = flag.String("data-dir", "", "persist hosted sets as segment files under this directory (enables crash-safe hosting and eviction)")
		maxResident = flag.Int64("max-resident-bytes", 0, "resident-bytes watermark above which cold hosted sets are evicted to disk (0 = keep everything resident; requires -data-dir to evict)")
		tenantQuota = flag.String("tenant-quota", "", "default per-tenant quota as 'sets=N,bytes=N,sessions=N' (0 or absent key = unlimited)")
		hostSets    = flag.Int("host-sets", 0, "host a synthetic catalog of N named sets (workload.ManySet of -demo-seed, names bench/s000000...) for many-sets load runs")
		hostSize    = flag.Int("host-size", 400, "elements per hosted catalog set (loadgen -size must match)")
	)
	flag.Parse()

	opt := &pbs.Options{Seed: *seed, MaxD: *maxD, StrongVerify: *strongVerify}

	if *syncTo != "" {
		runClient(*syncTo, *setName, opt, *setPath, *demoSize, *demoD, *demoSeed, *legacySync)
		return
	}

	quota, err := parseQuota(*tenantQuota)
	if err != nil {
		fatal(err)
	}
	hosting := *dataDir != "" || *hostSets > 0

	// A hosting server needs no default set; a classic one still requires
	// -set or -demo-size. The served catalog (when present) is a live
	// pbs.Set: validated once, estimator sketch maintained incrementally,
	// and mutable while serving (a reloaded catalog would land with
	// Add/Remove; new sessions pick it up, in-flight sessions keep the
	// view they started with).
	var set *pbs.Set
	if !hosting || *setPath != "" || *demoSize > 0 {
		elems, _, err := loadSet(*setPath, *demoSize, *demoD, *demoSeed, false)
		if err != nil {
			fatal(err)
		}
		set, err = pbs.NewSet(elems, pbs.WithOptions(*opt))
		if err != nil {
			fatal(err)
		}
	}
	srv := pbs.NewServer(pbs.ServerOptions{
		Protocol:             opt,
		MaxSessions:          *maxSessions,
		SoftSessionWatermark: *softSessions,
		RetryAfterHint:       *retryAfter,
		IdleTimeout:          *idle,
		SessionByteBudget:    *byteBudget,
		SessionMaxRounds:     *maxRounds,
		MaxStreams:           *maxStreams,
		DataDir:              *dataDir,
		MaxResidentBytes:     *maxResident,
		TenantQuota:          quota,
	})
	if set != nil {
		if err := srv.RegisterSet(*setName, set); err != nil {
			fatal(err)
		}
	}
	recovered := 0
	if *dataDir != "" {
		if recovered, err = srv.EnableHosting(); err != nil {
			fatal(err)
		}
	}
	if *hostSets > 0 {
		for i := 0; i < *hostSets; i++ {
			if err := srv.Host(load.ManySetName(i), workload.ManySet(*demoSeed, i, *hostSize)); err != nil {
				fatal(fmt.Errorf("hosting catalog set %d: %w", i, err))
			}
		}
	}

	if *metrics != "" {
		expvar.Publish("pbs_serve", expvar.Func(func() any { return srv.Stats() }))
		// Listen before serving so a bound port (or ":0") is reported, and
		// a taken port fails loudly instead of logging and carrying on.
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pbs-serve: metrics on http://%s/debug/vars\n", mln.Addr())
		go func() {
			if err := http.Serve(mln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pbs-serve: metrics endpoint: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Exactly one startup line carries the "serving ... on ADDR" suffix —
	// scripts parse the bound address off its end.
	if set != nil {
		fmt.Printf("pbs-serve: serving %d elements as %q on %s\n", set.Len(), *setName, ln.Addr())
	} else {
		fmt.Printf("pbs-serve: serving %d hosted sets on %s\n", srv.Stats().SetsHosted, ln.Addr())
	}
	if hosting {
		st := srv.Stats()
		fmt.Printf("pbs-serve: hosting %d sets (%d recovered, %d resident, %d B resident, cap %d B, dir %q)\n",
			st.SetsHosted, recovered, st.SetsResident, st.ResidentBytes, *maxResident, *dataDir)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigCh:
		fmt.Printf("pbs-serve: %v, draining sessions\n", sig)
		if !srv.Shutdown(*drain) {
			fmt.Fprintln(os.Stderr, "pbs-serve: drain timed out, sessions aborted")
		}
		<-serveErr
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	}
	st := srv.Stats()
	fmt.Printf("pbs-serve: done: %d completed, %d failed, %d rejected, %d rounds, %d B in, %d B out; session latency p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		st.Completed, st.Failed, st.Rejected, st.Rounds, st.BytesIn, st.BytesOut,
		st.LatencyUS.P50/1e3, st.LatencyUS.P95/1e3, st.LatencyUS.P99/1e3,
		float64(st.LatencyUS.Max)/1e3)
	if hosting {
		fmt.Printf("pbs-serve: hosted: %d sets, %d resident, %d cold loads, %d evictions, %d merges, %d quota rejections\n",
			st.SetsHosted, st.SetsResident, st.ColdLoads, st.Evictions, st.SegmentMerges, st.QuotaRejections)
	}
}

// parseQuota parses the -tenant-quota spec 'sets=N,bytes=N,sessions=N'
// (any subset of keys; 0 or absent = unlimited on that axis).
func parseQuota(spec string) (pbs.TenantQuota, error) {
	var q pbs.TenantQuota
	if spec == "" {
		return q, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return q, fmt.Errorf("-tenant-quota: %q is not key=value", kv)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return q, fmt.Errorf("-tenant-quota: bad value in %q", kv)
		}
		switch k {
		case "sets":
			q.MaxSets = n
		case "bytes":
			q.MaxBytes = n
		case "sessions":
			q.MaxSessions = n
		default:
			return q, fmt.Errorf("-tenant-quota: unknown key %q (want sets, bytes, sessions)", k)
		}
	}
	return q, nil
}

// runClient syncs the local set (from -set or workload side A) against a
// running server and, when the workload ground truth is available,
// verifies the learned difference exactly.
func runClient(addr, setName string, opt *pbs.Options, setPath string, demoSize, demoD int, demoSeed int64, legacySync bool) {
	local, want, err := loadSet(setPath, demoSize, demoD, demoSeed, true)
	if err != nil {
		fatal(err)
	}
	// The server resolves an absent hello to its default set; only name
	// non-default sets explicitly.
	c := &pbs.Client{Addr: addr, Options: opt, Timeout: 2 * time.Minute, LegacySync: legacySync}
	if setName != pbs.DefaultSetName {
		c.Set = setName
	}
	// SIGINT aborts an in-flight sync promptly: the context cancellation
	// is wired into the connection deadlines.
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	start := time.Now()
	res, err := c.SyncContext(ctx, local)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pbs-serve: synced |local|=%d in %v: |A△B|=%d, rounds=%d, complete=%v, wire=%d B\n",
		len(local), time.Since(start).Round(time.Millisecond),
		len(res.Difference), res.Rounds, res.Complete, res.WireBytes)
	if want != nil {
		if !res.Complete || !sameSet(res.Difference, want) {
			fatal(fmt.Errorf("difference mismatch: got %d elements, want %d (ground truth)",
				len(res.Difference), len(want)))
		}
		fmt.Println("pbs-serve: difference matches workload ground truth")
	}
}

// loadSet resolves the set selection flags: an explicit -set file, or one
// side of a synthetic workload (side A for the client, side B for the
// server) together with the ground-truth difference.
func loadSet(path string, demoSize, demoD int, demoSeed int64, clientSide bool) (set, truth []uint64, err error) {
	switch {
	case path != "" && demoSize > 0:
		return nil, nil, fmt.Errorf("-set and -demo-size are mutually exclusive")
	case path != "":
		set, err = readIDs(path)
		return set, nil, err
	case demoSize > 0:
		p, err := workload.Generate(workload.Config{
			UniverseBits: 32, SizeA: demoSize, D: demoD, Seed: demoSeed,
		})
		if err != nil {
			return nil, nil, err
		}
		if clientSide {
			return p.A, p.Diff, nil
		}
		return p.B, p.Diff, nil
	default:
		return nil, nil, fmt.Errorf("need -set FILE or -demo-size N")
	}
}

func sameSet(got, want []uint64) bool {
	g := slices.Clone(got)
	w := slices.Clone(want)
	slices.Sort(g)
	slices.Sort(w)
	return slices.Equal(g, w)
}

func readIDs(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ids []uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(line, "0x"), base(line), 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		ids = append(ids, v)
	}
	return ids, sc.Err()
}

func base(line string) int {
	if strings.HasPrefix(line, "0x") {
		return 16
	}
	return 10
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbs-serve:", err)
	os.Exit(1)
}
