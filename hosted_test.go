package pbs

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// hostedBase returns a deterministic element set for hosted set k.
func hostedBase(k, n int) []uint64 {
	set := make([]uint64, n)
	for i := range set {
		set[i] = uint64(k)<<20 | uint64(i+1)
	}
	return set
}

// hostedClientSet derives a client-local view of base with a known exact
// difference: 3 elements removed, 3 private ones added.
func hostedClientSet(base []uint64, k int) (local, diff []uint64) {
	removed := map[uint64]struct{}{}
	for j := 0; j < 3; j++ {
		removed[base[(k*13+j*7)%len(base)]] = struct{}{}
	}
	for _, x := range base {
		if _, gone := removed[x]; !gone {
			local = append(local, x)
		}
	}
	for j := 0; j < 3; j++ {
		added := uint64(0x40000000 + k*8 + j)
		local = append(local, added)
		diff = append(diff, added)
	}
	for x := range removed {
		diff = append(diff, x)
	}
	return local, diff
}

func serveHosted(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

func mustSyncExact(t *testing.T, addr string, opt *Options, tenant, set string, local, want []uint64) {
	t.Helper()
	c := &Client{Addr: addr, Tenant: tenant, Set: set, Options: opt, Timeout: time.Minute}
	res, err := c.Sync(local)
	if err != nil {
		t.Fatalf("sync %s/%s: %v", tenant, set, err)
	}
	got, exp := sortedU64(res.Difference), sortedU64(want)
	if len(got) != len(exp) {
		t.Fatalf("sync %s/%s: |diff| = %d, want %d", tenant, set, len(got), len(exp))
	}
	for i := range got {
		if got[i] != exp[i] {
			t.Fatalf("sync %s/%s: diff mismatch at %d", tenant, set, i)
		}
	}
}

// TestHostedColdEstimateWithoutLoad is the key ISSUE invariant: an evicted
// (cold) hosted set answers a legacy hello + estimate probe entirely from
// its persisted sketch, without paging a single element in. Only a real
// reconciliation round forces the cold load.
func TestHostedColdEstimateWithoutLoad(t *testing.T) {
	dir := t.TempDir()
	opt := &Options{Seed: 4242}
	base := hostedBase(1, 800)

	// Server A hosts the set and persists it.
	srvA := NewServer(ServerOptions{Protocol: opt, DataDir: dir})
	if _, err := srvA.EnableHosting(); err != nil {
		t.Fatal(err)
	}
	if err := srvA.Host("t1/cold", base); err != nil {
		t.Fatal(err)
	}
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	// Server B recovers it cold: footer-only reads, no elements.
	srvB := NewServer(ServerOptions{Protocol: opt, DataDir: dir})
	n, err := srvB.EnableHosting()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d sets, want 1", n)
	}
	addr := serveHosted(t, srvB)

	// Raw legacy probe: hello, estimate, read the reply, done. The set
	// must answer without loading.
	local, _ := hostedClientSet(base, 1)
	init, opening, err := NewInitiatorSession(local, opt)
	if err != nil {
		t.Fatal(err)
	}
	_ = init
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := writeFrame(conn, msgHello, []byte("t1/cold")); err != nil {
		t.Fatal(err)
	}
	if err := writeFrames(conn, opening); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgEstimateReply {
		t.Fatalf("probe got frame type %d, want msgEstimateReply", typ)
	}
	if err := writeFrame(conn, msgDone, nil); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	waitFor(t, func() bool { return srvB.Stats().Completed == 1 })
	st := srvB.Stats()
	if st.ColdLoads != 0 {
		t.Fatalf("estimate probe cold-loaded the set: ColdLoads = %d", st.ColdLoads)
	}
	if st.SetsResident != 0 {
		t.Fatalf("estimate probe made the set resident: SetsResident = %d", st.SetsResident)
	}

	// A real sync must page the elements in and converge exactly.
	local2, want := hostedClientSet(base, 1)
	mustSyncExact(t, addr, opt, "t1", "cold", local2, want)
	if st := srvB.Stats(); st.ColdLoads != 1 {
		t.Fatalf("full sync: ColdLoads = %d, want 1", st.ColdLoads)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

// TestHostedEvictionConvergence serves far more hosted sets than the
// resident watermark admits: every sync must still converge exactly, with
// evictions and cold loads actually happening along the way.
func TestHostedEvictionConvergence(t *testing.T) {
	dir := t.TempDir()
	opt := &Options{Seed: 99, StrongVerify: true}
	const sets = 24
	const size = 300
	// Each resident set charges ~256 + 8*300 = ~2656 bytes; cap at ~3 sets.
	srv := NewServer(ServerOptions{Protocol: opt, DataDir: dir, MaxResidentBytes: 8000})
	if _, err := srv.EnableHosting(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < sets; k++ {
		if err := srv.Host(fmt.Sprintf("acme/s%02d", k), hostedBase(k, size)); err != nil {
			t.Fatal(err)
		}
	}
	addr := serveHosted(t, srv)

	// Two passes so sets evicted during pass one must cold-load in pass two.
	for pass := 0; pass < 2; pass++ {
		for k := 0; k < sets; k++ {
			local, want := hostedClientSet(hostedBase(k, size), k)
			mustSyncExact(t, addr, opt, "acme", fmt.Sprintf("s%02d", k), local, want)
		}
	}

	st := srv.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under MaxResidentBytes=%d with %d sets", srv.opt.MaxResidentBytes, sets)
	}
	if st.ColdLoads == 0 {
		t.Fatal("no cold loads despite evictions")
	}
	if st.Failed != 0 {
		t.Fatalf("%d failed sessions", st.Failed)
	}
	if st.ResidentBytes > srv.opt.MaxResidentBytes+int64(hostedSetOverhead+8*size) {
		t.Fatalf("resident bytes %d far above watermark %d", st.ResidentBytes, srv.opt.MaxResidentBytes)
	}
	if st.SetsHosted != sets {
		t.Fatalf("SetsHosted = %d, want %d", st.SetsHosted, sets)
	}
}

// TestHostedRestartRecovery mutates hosted sets, shuts down (flushing
// delta segments), restarts over the same directory, and verifies the
// recovered sets converge exactly — including an update applied to a cold
// set after restart.
func TestHostedRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	opt := &Options{Seed: 777}
	const sets = 5
	const size = 200

	srvA := NewServer(ServerOptions{Protocol: opt, DataDir: dir})
	if _, err := srvA.EnableHosting(); err != nil {
		t.Fatal(err)
	}
	finals := make([][]uint64, sets)
	for k := 0; k < sets; k++ {
		base := hostedBase(k, size)
		name := fmt.Sprintf("t/x%d", k)
		if err := srvA.Host(name, base); err != nil {
			t.Fatal(err)
		}
		// Mutate every other set: drop two, add two.
		if k%2 == 0 {
			add := []uint64{uint64(k)<<20 | 1<<18, uint64(k)<<20 | 1<<18 | 1}
			remove := base[:2]
			if err := srvA.HostedUpdate(name, add, remove); err != nil {
				t.Fatal(err)
			}
			finals[k] = append(append([]uint64{}, base[2:]...), add...)
		} else {
			finals[k] = base
		}
	}
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	srvB := NewServer(ServerOptions{Protocol: opt, DataDir: dir})
	n, err := srvB.EnableHosting()
	if err != nil {
		t.Fatal(err)
	}
	if n != sets {
		t.Fatalf("recovered %d sets, want %d", n, sets)
	}

	// Update a cold set before any session touches it: the update path
	// must page it in and keep the metadata exact.
	extra := []uint64{0x50000001, 0x50000002}
	if err := srvB.HostedUpdate("t/x1", extra, nil); err != nil {
		t.Fatal(err)
	}
	finals[1] = append(finals[1], extra...)
	if srvB.Stats().ColdLoads == 0 {
		t.Fatal("HostedUpdate on a cold set did not cold-load")
	}

	addr := serveHosted(t, srvB)
	for k := 0; k < sets; k++ {
		local, want := hostedClientSet(finals[k], k)
		mustSyncExact(t, addr, opt, "t", fmt.Sprintf("x%d", k), local, want)
	}
}

// TestRegisterAfterServerClose pins the post-shutdown registration
// semantics: every publication path reports ErrServerClosed.
func TestRegisterAfterServerClose(t *testing.T) {
	opt := &Options{Seed: 5}
	srv := NewServer(ServerOptions{Protocol: opt, DataDir: t.TempDir()})
	if _, err := srv.EnableHosting(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("before", testBaseSet(8)); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	if err := srv.Register("after", testBaseSet(8)); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Register after close: %v, want ErrServerClosed", err)
	}
	ss, err := NewSharedSet(testBaseSet(8), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterShared("after", ss); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("RegisterShared after close: %v, want ErrServerClosed", err)
	}
	set, err := NewSet(testBaseSet(8), withBaseOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterSet("after", set); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("RegisterSet after close: %v, want ErrServerClosed", err)
	}
	if err := srv.Host("after", testBaseSet(8)); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Host after close: %v, want ErrServerClosed", err)
	}
}

// TestTenantQuotas exercises set-count and byte quotas at registration
// and the session quota over the wire, including the retryability split:
// session-quota rejections carry a retry-after hint and are retryable,
// set/byte quota failures are not.
func TestTenantQuotas(t *testing.T) {
	opt := &Options{Seed: 31}
	srv := NewServer(ServerOptions{
		Protocol:    opt,
		TenantQuota: TenantQuota{MaxSets: 2, MaxBytes: 64 * 1024},
	})
	srv.SetTenantQuota("busy", TenantQuota{MaxSessions: 1})

	// Set-count quota.
	if err := srv.Host("t1/a", testBaseSet(16)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Host("t1/b", testBaseSet(16)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Host("t1/c", testBaseSet(16)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third set for t1: %v, want ErrQuotaExceeded", err)
	}
	// Independent tenants are unaffected.
	if err := srv.Host("t2/a", testBaseSet(16)); err != nil {
		t.Fatal(err)
	}
	// Byte quota: 64 KiB / 8 = 8192 elements max.
	if err := srv.Host("t3/big", testBaseSet(10000)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("oversized set for t3: %v, want ErrQuotaExceeded", err)
	}
	// Unregister releases the charge.
	if !srv.Unregister("t1/b") {
		t.Fatal("Unregister t1/b = false")
	}
	if err := srv.Host("t1/c", testBaseSet(16)); err != nil {
		t.Fatalf("re-host after unregister: %v", err)
	}
	if n := srv.Stats().QuotaRejections; n != 2 {
		t.Fatalf("QuotaRejections = %d, want 2", n)
	}

	// Session quota over the wire: hold one session open for tenant
	// "busy", then a second must be rejected quota-coded and retryable.
	base := testBaseSet(500)
	if err := srv.Host("busy/s", base); err != nil {
		t.Fatal(err)
	}
	addr := serveHosted(t, srv)

	local, want := hostedClientSet(base, 0)
	hold, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	hold.SetDeadline(time.Now().Add(30 * time.Second))
	_, opening, err := NewInitiatorSession(local, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(hold, msgHello, []byte("busy/s")); err != nil {
		t.Fatal(err)
	}
	if err := writeFrames(hold, opening); err != nil {
		t.Fatal(err)
	}
	// Reading the reply guarantees the server admitted the session (and
	// charged the quota slot) before the second client arrives.
	if typ, _, err := readFrame(hold); err != nil || typ != msgEstimateReply {
		t.Fatalf("hold session: typ=%d err=%v", typ, err)
	}

	c := &Client{Addr: addr, Tenant: "busy", Set: "s", Options: opt, Timeout: 30 * time.Second}
	_, err = c.Sync(local)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second session: %v, want ErrQuotaExceeded", err)
	}
	if !Retryable(err) {
		t.Fatalf("session-quota rejection not retryable: %v", err)
	}

	// Releasing the held session frees the slot.
	writeFrame(hold, msgDone, nil)
	hold.Close()
	waitFor(t, func() bool {
		_, _, sessions := srv.TenantUsage("busy")
		return sessions == 0
	})
	mustSyncExact(t, addr, opt, "busy", "s", local, want)
}

// TestRegistryChurnWithLiveSessions hammers Register/Host/Unregister/
// lookup across the sharded registry from many goroutines while live
// sessions reconcile against a stable set — run under -race in CI.
func TestRegistryChurnWithLiveSessions(t *testing.T) {
	opt := &Options{Seed: 1123}
	srv := NewServer(ServerOptions{Protocol: opt})
	base := testBaseSet(600)
	if err := srv.Register(DefaultSetName, base); err != nil {
		t.Fatal(err)
	}
	addr := serveHosted(t, srv)

	const churners = 32
	const iters = 60
	var wg sync.WaitGroup
	errCh := make(chan error, churners+8)
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			small := testBaseSet(16)
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("t%d/churn%d", g%8, g)
				var err error
				if g%2 == 0 {
					err = srv.Register(name, small)
				} else {
					err = srv.Host(name, small)
				}
				if err != nil {
					errCh <- fmt.Errorf("churner %d: %w", g, err)
					return
				}
				srv.TenantUsage(fmt.Sprintf("t%d", g%8))
				srv.Unregister(name)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local, want := hostedClientSet(base, g)
			for i := 0; i < 5; i++ {
				c := &Client{Addr: addr, Options: opt, Timeout: time.Minute}
				res, err := c.Sync(local)
				if err != nil {
					errCh <- fmt.Errorf("syncer %d: %w", g, err)
					return
				}
				if len(res.Difference) != len(want) {
					errCh <- fmt.Errorf("syncer %d: |diff| = %d, want %d", g, len(res.Difference), len(want))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// All churned names released: only the default set remains.
	if n := srv.Stats().SetsHosted; n != 1 {
		t.Fatalf("SetsHosted after churn = %d, want 1", n)
	}
	for g := 0; g < 8; g++ {
		if sets, bytes, sessions := srv.TenantUsage(fmt.Sprintf("t%d", g)); sets != 0 || bytes != 0 || sessions != 0 {
			t.Fatalf("tenant t%d gauges leaked: sets=%d bytes=%d sessions=%d", g, sets, bytes, sessions)
		}
	}
}
