package pbs

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameCodec exercises the length-prefixed frame codec of sync.go the
// same way internal/wire/fuzz_test.go exercises the bit codec: round-trips
// must be exact, and arbitrary garbage must produce errors, never panics
// or frames that disagree with what was written.
func FuzzFrameCodec(f *testing.F) {
	f.Add(byte(msgEstimate), []byte{})
	f.Add(byte(msgRound), []byte{1, 2, 3})
	f.Add(byte(msgDone), bytes.Repeat([]byte{0xAB}, 1024))
	f.Add(byte(0xFF), []byte{0x00})
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		// Round-trip: what writeFrame emits, readFrame must return intact.
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		if buf.Len() != 5+len(payload) {
			t.Fatalf("frame of %d bytes for %d-byte payload", buf.Len(), len(payload))
		}
		gotTyp, gotPayload, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame after writeFrame: %v", err)
		}
		if gotTyp != typ || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("roundtrip mismatch: typ %d/%d, payload %d/%d bytes",
				gotTyp, typ, len(gotPayload), len(payload))
		}
		if buf.Len() != 0 {
			t.Fatalf("%d trailing bytes after frame", buf.Len())
		}
	})
}

// FuzzFrameDecoderGarbage feeds raw garbage to readFrame: every outcome
// must be a clean error or a frame wholly contained in the input, and the
// maxFrame cap must hold no matter what length prefix the input claims.
func FuzzFrameDecoderGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, msgDone})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // claims ~4 GiB
	big := make([]byte, 5+64)
	binary.BigEndian.PutUint32(big[:4], 64)
	big[4] = msgRound
	f.Add(big)
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > maxFrame {
			t.Fatalf("accepted %d-byte frame beyond maxFrame", len(payload))
		}
		if len(data) < 5+len(payload) {
			t.Fatal("frame larger than its input")
		}
		if typ != data[4] {
			t.Fatalf("type %d does not match header byte %d", typ, data[4])
		}
		if !bytes.Equal(payload, data[5:5+len(payload)]) {
			t.Fatal("payload does not match input bytes")
		}
		if uint32(len(payload)) != binary.BigEndian.Uint32(data[:4]) {
			t.Fatal("payload length disagrees with length prefix")
		}
	})
}

// FuzzMuxFrame exercises the version-2 mux envelope codec: whatever
// parseMuxPayload accepts must survive a semantic round trip (garbage may
// use non-canonical varints, so compare decoded fields, not bytes), its
// canonical re-encoding must be a fixed point, and the one-shot frame
// writer muxAppendFrame must agree byte-for-byte with framing an
// appendMuxPayload envelope.
func FuzzMuxFrame(f *testing.F) {
	f.Add(appendMuxPayload(nil, 1, muxFlagOpen, []byte("hello")))
	f.Add(appendMuxPayload(nil, 7, muxFlagClose, nil))
	f.Add(appendMuxPayload(nil, 99, muxFlagOpen|muxFlagCompressed, bytes.Repeat([]byte{3}, 32)))
	f.Add(muxAppendFrame(nil, 5, muxFlagClose, msgStreamClose, nil)[5:])
	f.Add([]byte{0xFF}) // truncated stream-ID varint
	f.Fuzz(func(t *testing.T, data []byte) {
		id, flags, body, err := parseMuxPayload(data)
		if err != nil {
			return
		}
		enc := appendMuxPayload(nil, id, flags, body)
		id2, flags2, body2, err := parseMuxPayload(enc)
		if err != nil {
			t.Fatalf("re-parsing own encoding failed: %v", err)
		}
		if id2 != id || flags2 != flags || !bytes.Equal(body2, body) {
			t.Fatalf("envelope changed across round trip: (%d,%#x,%d bytes) -> (%d,%#x,%d bytes)",
				id, flags, len(body), id2, flags2, len(body2))
		}
		if enc2 := appendMuxPayload(nil, id2, flags2, body2); !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		frame := muxAppendFrame(nil, id, flags, msgRound, body)
		if want := appendFrame(nil, msgRound, enc); !bytes.Equal(frame, want) {
			t.Fatal("muxAppendFrame disagrees with appendFrame over the envelope")
		}
	})
}

// FuzzSketchCodec round-trips the ToW estimate encoding used in the first
// protocol phase and checks the decoder tolerates garbage.
func FuzzSketchCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02})
	f.Add(encodeSketches([]int64{0, -1, 1 << 40, -(1 << 40)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ys, err := decodeSketches(data)
		if err != nil {
			return
		}
		// Garbage may use non-canonical varints, so compare semantically:
		// encode what was decoded and decode it again.
		ys2, err := decodeSketches(encodeSketches(ys))
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if len(ys) != len(ys2) {
			t.Fatalf("sketch count changed: %d -> %d", len(ys), len(ys2))
		}
		for i := range ys {
			if ys[i] != ys2[i] {
				t.Fatalf("sketch %d changed: %d -> %d", i, ys[i], ys2[i])
			}
		}
	})
}
