package pbs

import (
	"container/list"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"pbs/internal/core"
	"pbs/internal/estimator"
	"pbs/internal/msethash"
	"pbs/internal/setstore"
)

// Logical accounting for hosted sets: each element is charged 8 bytes
// (its wire size) against tenant byte quotas, and a resident set carries a
// fixed overhead on top toward the resident-bytes watermark.
const (
	hostedElemBytes   = 8
	hostedSetOverhead = 256
)

// DefaultMergeThreshold is the segment-chain length at which the store's
// background merger folds a hosted set's chain into one full segment.
const DefaultMergeThreshold = 4

// hostedStore manages the Server's hosted sets: resident-bytes accounting
// with LRU eviction, cold loads from the segment store, and flush of
// dirty state on eviction. It is the in-memory head over setstore's
// immutable segments.
type hostedStore struct {
	opt Options // server protocol options, defaults applied
	tow *estimator.ToW

	// store is the persistent segment layer; nil means memory-only
	// hosting, under which eviction is disabled (dropping a set would
	// lose it). Set once by EnableHosting before the server serves.
	store       *setstore.Store
	maxResident int64

	// mu guards the LRU list and each member's lruPos/charge fields.
	mu  sync.Mutex
	lru *list.List // of *hostedSet; front = most recently used

	residentBytes atomic.Int64
	residentSets  atomic.Int64
	coldLoads     atomic.Int64
	evictions     atomic.Int64
}

func newHostedStore(opt Options, maxResident int64) (*hostedStore, error) {
	tow, err := estimator.NewToW(opt.EstimatorSketches, opt.Seed^towSeedTweak)
	if err != nil {
		return nil, err
	}
	return &hostedStore{opt: opt, tow: tow, maxResident: maxResident, lru: list.New()}, nil
}

// sketchSeed is the seed stamped into persisted segment footers, checked
// on recovery so a data dir written under different protocol options is
// rejected instead of silently mis-estimating.
func (h *hostedStore) sketchSeed() uint64 { return h.opt.Seed ^ towSeedTweak }

// metaFor computes the full cumulative metadata of an element list.
func (h *hostedStore) metaFor(elems []uint64) setstore.Meta {
	mh := msethash.New(h.opt.Seed ^ verifySeedTweak)
	mh.AddSet(elems)
	d := mh.Sum()
	return setstore.Meta{
		Count:      uint64(len(elems)),
		SketchSeed: h.sketchSeed(),
		Sketch:     h.tow.Sketch(elems),
		Digest:     d.Bytes(),
	}
}

// hostedSet is one named set under hostedStore management. It implements
// setSource, so the Server's registry serves sessions from it directly:
// resident, sessions get a materialized SharedSet; cold, they get a lazy
// view that answers estimates from the persisted sketch/digest and pages
// elements in only for a real delta round.
type hostedSet struct {
	h    *hostedStore
	name string

	mu         sync.Mutex
	meta       setstore.Meta // cumulative; kept current on every update
	elems      []uint64      // sorted; nil when cold
	view       *SharedSet    // cached until mutation or demotion invalidates it
	resident   bool
	persisted  bool                // at least one full segment on disk
	priorDirty bool                // d̂ prior advanced since the last persisted footer
	dirtyAdds  map[uint64]struct{} // changes since the last persisted segment
	dirtyDels  map[uint64]struct{}

	// lruPos and charge are guarded by h.mu (LRU bookkeeping), not mu.
	lruPos *list.Element
	charge int64
}

// logicalBytes is the tenant-quota charge of this set.
func (hs *hostedSet) logicalBytes() int64 {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hostedElemBytes * int64(hs.meta.Count)
}

func (hs *hostedSet) residentCharge() int64 {
	return hostedSetOverhead + hostedElemBytes*int64(hs.meta.Count)
}

// host builds a new resident hosted set from elems, persisting its first
// full segment when the disk layer is enabled. The caller registers it
// (quota checks) before calling persist.
func (h *hostedStore) host(name string, elems []uint64) *hostedSet {
	sorted := slices.Clone(elems)
	slices.Sort(sorted)
	sorted = slices.Compact(sorted)
	return &hostedSet{h: h, name: name, elems: sorted, resident: true, meta: h.metaFor(sorted)}
}

// recover builds a cold hosted set from the newest persisted segment
// footer — a tail-only read, no elements touched.
func (h *hostedStore) recover(name string) (*hostedSet, error) {
	meta, err := h.store.Meta(name)
	if err != nil {
		return nil, err
	}
	if meta.SketchSeed != h.sketchSeed() {
		return nil, fmt.Errorf("pbs: set %q persisted under sketch seed %#x, server uses %#x", name, meta.SketchSeed, h.sketchSeed())
	}
	if len(meta.Sketch) != h.tow.L() {
		return nil, fmt.Errorf("pbs: set %q persisted with %d-lane sketch, server uses %d", name, len(meta.Sketch), h.tow.L())
	}
	if _, ok := msethash.DigestFromBytes(meta.Digest); !ok {
		return nil, fmt.Errorf("pbs: set %q has a malformed persisted digest", name)
	}
	return &hostedSet{h: h, name: name, meta: meta, persisted: true}, nil
}

// persist writes the initial full segment of a freshly hosted set and
// inserts it into the resident accounting (which may evict others).
func (hs *hostedSet) persist() error {
	hs.mu.Lock()
	if hs.h.store != nil && !hs.persisted {
		if err := hs.h.store.AppendFull(hs.name, hs.elems, hs.meta); err != nil {
			hs.mu.Unlock()
			return err
		}
		hs.persisted = true
	}
	hs.mu.Unlock()
	hs.h.noteResident(hs)
	return nil
}

// sharedView implements setSource.
func (hs *hostedSet) sharedView() (*SharedSet, error) {
	hs.mu.Lock()
	if hs.view == nil {
		if hs.resident {
			v, err := hs.residentViewLocked()
			if err != nil {
				hs.mu.Unlock()
				return nil, err
			}
			hs.view = v
		} else {
			v, err := newLazySharedSet(hs.h.opt, int(hs.meta.Count), slices.Clone(hs.meta.Sketch), hs.digestLocked(), hs.loadSnapshot)
			if err != nil {
				hs.mu.Unlock()
				return nil, err
			}
			v.observeDhat = hs.observeDhat
			hs.view = v
		}
	}
	v, resident := hs.view, hs.resident
	hs.mu.Unlock()
	if resident {
		hs.h.touch(hs)
	}
	return v, nil
}

// sessionOptions implements setSource: hosted sessions run under the
// server's protocol options.
func (hs *hostedSet) sessionOptions() Options { return hs.h.opt }

// observeDhat folds one answered difference estimate into the set's
// persisted d̂ prior (EWMA mean and variance in the segment footer). It is
// installed as SharedSet.observeDhat on every view this set hands out, so
// each estimate a session answers — resident or lazy — advances the prior;
// the next footer write carries it across restarts.
func (hs *hostedSet) observeDhat(dhat uint64) {
	hs.mu.Lock()
	hs.meta.PriorMean, hs.meta.PriorVar, hs.meta.PriorCount =
		ewmaObserve(hs.meta.PriorMean, hs.meta.PriorVar, hs.meta.PriorCount, float64(dhat))
	hs.priorDirty = true
	hs.mu.Unlock()
}

func (hs *hostedSet) digestLocked() msethash.Digest {
	d, _ := msethash.DigestFromBytes(hs.meta.Digest)
	return d
}

// residentViewLocked builds the materialized SharedSet for a resident
// set, preseeding the sketch and digest from the incrementally maintained
// metadata so neither is recomputed O(|S|) per rebuild.
func (hs *hostedSet) residentViewLocked() (*SharedSet, error) {
	snap, err := core.NewSnapshot(hs.elems, hs.h.opt.coreConfig())
	if err != nil {
		return nil, err
	}
	ss := &SharedSet{opt: hs.h.opt, snap: snap, tow: hs.h.tow, observeDhat: hs.observeDhat}
	sketch := slices.Clone(hs.meta.Sketch)
	digest := hs.digestLocked()
	ss.sketchOnce.Do(func() { ss.sketch = sketch })
	ss.digestOnce.Do(func() { ss.digest = digest })
	return ss, nil
}

// loadSnapshot is the lazy view's cold-load path: page the elements in
// from the segment store, promote the set to resident, and build the
// session snapshot. Runs at most once per lazy view (SharedSet.snapOnce).
func (hs *hostedSet) loadSnapshot() (*core.Snapshot, error) {
	hs.mu.Lock()
	if hs.elems == nil {
		if hs.h.store == nil {
			hs.mu.Unlock()
			return nil, fmt.Errorf("pbs: hosted set %q has no elements and no store", hs.name)
		}
		elems, meta, err := hs.h.store.Load(hs.name)
		if err != nil {
			hs.mu.Unlock()
			return nil, err
		}
		hs.elems, hs.meta = elems, meta
		hs.h.coldLoads.Add(1)
	}
	elems := hs.elems
	wasResident := hs.resident
	hs.resident = true
	hs.mu.Unlock()
	if !wasResident {
		hs.h.noteResident(hs)
	}
	return core.NewSnapshot(elems, hs.h.opt.coreConfig())
}

// update applies adds and removes to the set, maintaining the cumulative
// sketch/digest/count incrementally on the write path (the property that
// lets the set keep answering estimates after eviction). Returns how many
// elements were actually inserted and deleted.
func (hs *hostedSet) update(add, remove []uint64) (added, removed int, err error) {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hs.elems == nil {
		if hs.h.store == nil {
			return 0, 0, fmt.Errorf("pbs: hosted set %q has no elements and no store", hs.name)
		}
		elems, meta, lerr := hs.h.store.Load(hs.name)
		if lerr != nil {
			return 0, 0, lerr
		}
		hs.elems, hs.meta = elems, meta
		hs.h.coldLoads.Add(1)
		// The set is now materialized but deliberately NOT promoted to
		// resident here: update is a write-path operation and the caller
		// settles residency afterwards via settleResidency.
		hs.resident = true
	}
	set := make(map[uint64]struct{}, len(hs.elems)+len(add))
	for _, e := range hs.elems {
		set[e] = struct{}{}
	}
	if hs.dirtyAdds == nil {
		hs.dirtyAdds = make(map[uint64]struct{})
		hs.dirtyDels = make(map[uint64]struct{})
	}
	mh := msethash.FromDigest(hs.h.opt.Seed^verifySeedTweak, hs.digestLocked())
	for _, x := range add {
		if _, ok := set[x]; ok {
			continue
		}
		set[x] = struct{}{}
		hs.h.tow.Add(hs.meta.Sketch, x)
		mh.Add(x)
		added++
		if _, wasDel := hs.dirtyDels[x]; wasDel {
			delete(hs.dirtyDels, x)
		} else {
			hs.dirtyAdds[x] = struct{}{}
		}
	}
	for _, x := range remove {
		if _, ok := set[x]; !ok {
			continue
		}
		delete(set, x)
		hs.h.tow.Remove(hs.meta.Sketch, x)
		mh.Remove(x)
		removed++
		if _, wasAdd := hs.dirtyAdds[x]; wasAdd {
			delete(hs.dirtyAdds, x)
		} else {
			hs.dirtyDels[x] = struct{}{}
		}
	}
	if added == 0 && removed == 0 {
		return 0, 0, nil
	}
	d := mh.Sum()
	hs.meta.Digest = d.Bytes()
	hs.meta.Count = uint64(len(set))
	elems := make([]uint64, 0, len(set))
	for e := range set {
		elems = append(elems, e)
	}
	slices.Sort(elems)
	hs.elems = elems
	hs.view = nil // next session sees the mutated set
	return added, removed, nil
}

// flushLocked persists the dirty state: the first flush is a full
// segment, later ones are deltas carrying the cumulative metadata.
// Requires hs.mu and a non-nil store.
func (hs *hostedSet) flushLocked() error {
	if !hs.persisted {
		if err := hs.h.store.AppendFull(hs.name, hs.elems, hs.meta); err != nil {
			return err
		}
		hs.persisted = true
		hs.priorDirty = false
		hs.dirtyAdds, hs.dirtyDels = nil, nil
		return nil
	}
	if len(hs.dirtyAdds) == 0 && len(hs.dirtyDels) == 0 && !hs.priorDirty {
		return nil
	}
	adds := make([]uint64, 0, len(hs.dirtyAdds))
	for e := range hs.dirtyAdds {
		adds = append(adds, e)
	}
	dels := make([]uint64, 0, len(hs.dirtyDels))
	for e := range hs.dirtyDels {
		dels = append(dels, e)
	}
	if err := hs.h.store.AppendDelta(hs.name, adds, dels, hs.meta); err != nil {
		return err
	}
	hs.priorDirty = false
	hs.dirtyAdds, hs.dirtyDels = nil, nil
	return nil
}

// flush persists dirty state without demoting (shutdown path). A cold set
// can still carry a dirty prior (its lazy view answers estimates), which
// persists as an element-free delta; element writes require materialized
// elems.
func (hs *hostedSet) flush() error {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hs.h.store == nil {
		return nil
	}
	if hs.elems == nil {
		if hs.priorDirty && hs.persisted {
			if err := hs.h.store.AppendDelta(hs.name, nil, nil, hs.meta); err != nil {
				return err
			}
			hs.priorDirty = false
		}
		return nil
	}
	return hs.flushLocked()
}

// demote evicts a resident set: flush dirty state, then drop the elements
// and the cached view. Sessions holding the old view keep their snapshot;
// new sessions get a lazy (estimate-only) view. If the flush fails the
// set stays resident — dropping unflushed data would lose writes — and is
// re-inserted into the accounting.
func (hs *hostedSet) demote() {
	hs.mu.Lock()
	if !hs.resident || hs.h.store == nil {
		hs.mu.Unlock()
		return
	}
	if err := hs.flushLocked(); err != nil {
		hs.mu.Unlock()
		hs.h.noteResident(hs)
		return
	}
	hs.elems = nil
	hs.view = nil
	hs.resident = false
	hs.mu.Unlock()
	// A promote or update racing this demotion may have re-inserted the set
	// into the LRU between our removal and here; undo that so the resident
	// accounting never carries a cold set.
	hs.h.forget(hs)
	hs.h.evictions.Add(1)
}

// noteResident inserts a set into the resident accounting (idempotent)
// and evicts least-recently-used sets while over the watermark. Eviction
// requires the disk layer; memory-only hosting never evicts.
func (h *hostedStore) noteResident(hs *hostedSet) {
	charge := hs.residentCharge()
	var victims []*hostedSet
	h.mu.Lock()
	if hs.lruPos == nil {
		hs.charge = charge
		hs.lruPos = h.lru.PushFront(hs)
		h.residentBytes.Add(charge)
		h.residentSets.Add(1)
	}
	if h.maxResident > 0 && h.store != nil {
		for h.residentBytes.Load() > h.maxResident && h.lru.Len() > 1 {
			back := h.lru.Back()
			v := back.Value.(*hostedSet)
			if v == hs {
				// Never evict the set just touched — it is about to serve.
				break
			}
			h.lru.Remove(back)
			v.lruPos = nil
			h.residentBytes.Add(-v.charge)
			h.residentSets.Add(-1)
			victims = append(victims, v)
		}
	}
	h.mu.Unlock()
	for _, v := range victims {
		v.demote()
	}
}

// recharge settles a mutated set's resident charge to its current size.
func (h *hostedStore) recharge(hs *hostedSet) {
	charge := hs.residentCharge()
	h.mu.Lock()
	if hs.lruPos != nil {
		h.residentBytes.Add(charge - hs.charge)
		hs.charge = charge
	}
	h.mu.Unlock()
}

// touch marks a resident set most-recently-used. A set mid-eviction
// (removed from the LRU but not yet demoted) is left alone — if it is
// still wanted it will cold-load and re-enter.
func (h *hostedStore) touch(hs *hostedSet) {
	h.mu.Lock()
	if hs.lruPos != nil {
		h.lru.MoveToFront(hs.lruPos)
	}
	h.mu.Unlock()
}

// forget removes a set from the resident accounting (Unregister path).
func (h *hostedStore) forget(hs *hostedSet) {
	h.mu.Lock()
	if hs.lruPos != nil {
		h.lru.Remove(hs.lruPos)
		hs.lruPos = nil
		h.residentBytes.Add(-hs.charge)
		h.residentSets.Add(-1)
	}
	h.mu.Unlock()
}

// flushAll persists every resident set's dirty state (shutdown).
func (h *hostedStore) flushAll() error {
	if h.store == nil {
		return nil
	}
	h.mu.Lock()
	sets := make([]*hostedSet, 0, h.lru.Len())
	for e := h.lru.Front(); e != nil; e = e.Next() {
		sets = append(sets, e.Value.(*hostedSet))
	}
	h.mu.Unlock()
	var firstErr error
	for _, hs := range sets {
		if err := hs.flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// EnableHosting opens the persistent segment store under
// ServerOptions.DataDir, registers every set already persisted there as a
// cold entry — a footer-only read per set, no elements touched — and
// starts the background segment merger. Call it once, before Serve and
// before the first Host. It returns how many sets were recovered.
func (s *Server) EnableHosting() (int, error) {
	if s.hosted == nil {
		return 0, s.hostedErr
	}
	if s.opt.DataDir == "" {
		return 0, errors.New("pbs: EnableHosting requires ServerOptions.DataDir")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrServerClosed
	}
	if s.store != nil {
		s.mu.Unlock()
		return 0, errors.New("pbs: hosting already enabled")
	}
	store, err := setstore.Open(s.opt.DataDir, DefaultMergeThreshold)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.store = store
	s.hosted.store = store
	s.mu.Unlock()
	n := 0
	for _, name := range store.Names() {
		hs, err := s.hosted.recover(name)
		if err != nil {
			return n, err
		}
		if err := s.publish(name, hs, hs.logicalBytes()); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Host registers a hosted set built from elems: persisted as a full
// segment when hosting is enabled, and evictable under MaxResidentBytes —
// the deployment shape for servers carrying far more named sets than fit
// in memory. Re-hosting a name replaces its contents. Tenant quotas are
// checked before anything is written.
func (s *Server) Host(name string, elems []uint64) error {
	if s.hosted == nil {
		return s.hostedErr
	}
	if name == "" {
		return errors.New("pbs: Host with an empty set name")
	}
	old, hadOld := s.sets.Get(name)
	hs := s.hosted.host(name, elems)
	if err := s.publish(name, hs, hs.logicalBytes()); err != nil {
		return err
	}
	if hadOld {
		if ohs, ok := old.(*hostedSet); ok {
			s.hosted.forget(ohs)
		}
	}
	if err := hs.persist(); err != nil {
		s.Unregister(name)
		return err
	}
	return nil
}

// HostedUpdate applies adds and removes to a hosted set. The cumulative
// sketch, digest, and count are maintained incrementally on this write
// path, which is what lets the set answer difference estimates even after
// eviction; changes are persisted as a delta segment when the set is next
// evicted or the server shuts down. Growth is reserved against the
// tenant's byte quota before the set is touched.
func (s *Server) HostedUpdate(name string, add, remove []uint64) error {
	src, ok := s.sets.Get(name)
	if !ok {
		return fmt.Errorf("pbs: unknown set %q", name)
	}
	hs, isHosted := src.(*hostedSet)
	if !isHosted {
		return fmt.Errorf("pbs: set %q is not hosted", name)
	}
	if len(add) > 0 {
		// Worst-case reservation: every add is new. Settled to the actual
		// size below.
		if err := s.publish(name, src, hs.logicalBytes()+hostedElemBytes*int64(len(add))); err != nil {
			return err
		}
	}
	_, _, err := hs.update(add, remove)
	s.publish(name, src, hs.logicalBytes())
	if err != nil {
		return err
	}
	s.hosted.recharge(hs)
	// The update may have paged a cold set in; settle residency (and run
	// the eviction loop) — a no-op when it was already tracked.
	s.hosted.noteResident(hs)
	return nil
}
