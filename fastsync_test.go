package pbs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"pbs/internal/workload"
)

// parseStream splits a recorded wire stream back into frames.
func parseStream(t *testing.T, b []byte) []Frame {
	t.Helper()
	var frames []Frame
	r := bytes.NewReader(b)
	for r.Len() > 0 {
		typ, payload, err := readFrame(r)
		if err != nil {
			t.Fatalf("corrupt recorded stream: %v", err)
		}
		frames = append(frames, Frame{typ, append([]byte(nil), payload...)})
	}
	return frames
}

func frameTypes(frames []Frame) []byte {
	types := make([]byte, len(frames))
	for i, f := range frames {
		types[i] = f.Type
	}
	return types
}

// driveFast runs a fast-path engine exchange to completion and returns the
// initiator session plus both recorded frame streams.
func driveFast(t *testing.T, is *InitiatorSession, opening []Frame, rs *ResponderSession) (iStream, rStream []byte) {
	t.Helper()
	toResponder := opening
	done := false
	for !done {
		iStream = append(iStream, frameBytes(toResponder)...)
		var toInitiator []Frame
		for _, f := range toResponder {
			out, _, err := rs.Step(f.Type, f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			toInitiator = append(toInitiator, out...)
		}
		rStream = append(rStream, frameBytes(toInitiator)...)
		toResponder = nil
		for _, f := range toInitiator {
			out, d, err := is.Step(f.Type, f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			toResponder = append(toResponder, out...)
			done = d
		}
		if done {
			iStream = append(iStream, frameBytes(toResponder)...)
			for _, f := range toResponder {
				if _, _, err := rs.Step(f.Type, f.Payload); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return iStream, rStream
}

// TestFastSyncSingleRoundTrip is the tentpole assertion: a warm sync whose
// speculation holds completes in one round trip — the initiator puts
// exactly msgHelloV1 and msgDone on the wire and the responder exactly one
// msgHelloReplyV1 — including under StrongVerify, whose digest rides the
// reply instead of costing a msgVerify exchange.
func TestFastSyncSingleRoundTrip(t *testing.T) {
	for _, strong := range []bool{false, true} {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 20, Seed: 61})
		// The speculation carries headroom over the true difference — the
		// shape Set.speculativeD produces from a prior — so round 1
		// decodes everything and the exchange is one round trip.
		opt := Options{Seed: 62, StrongVerify: strong, KnownD: 40}
		setA, err := NewSet(p.A, WithOptions(opt))
		if err != nil {
			t.Fatal(err)
		}
		setB, err := NewSet(p.B, WithOptions(opt))
		if err != nil {
			t.Fatal(err)
		}
		ca, cb := net.Pipe()
		iSide := &teeRW{ReadWriter: ca}
		rSide := &teeRW{ReadWriter: cb}
		respErr := make(chan error, 1)
		go func() {
			defer cb.Close()
			respErr <- setB.Respond(context.Background(), rSide)
		}()
		res, err := setA.Sync(context.Background(), iSide, WithFastSync(true))
		ca.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := <-respErr; err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("strong=%v: incomplete after %d rounds", strong, res.Rounds)
		}
		assertSameSet(t, res.Difference, p.Diff)

		iFrames := parseStream(t, iSide.bytes())
		rFrames := parseStream(t, rSide.bytes())
		if it := frameTypes(iFrames); len(it) != 2 || it[0] != msgHelloV1 || it[1] != msgDone {
			t.Fatalf("strong=%v: initiator sent frame types %v, want [%d %d] (1 RTT)",
				strong, it, msgHelloV1, msgDone)
		}
		if rt := frameTypes(rFrames); len(rt) != 1 || rt[0] != msgHelloReplyV1 {
			t.Fatalf("strong=%v: responder sent frame types %v, want [%d] (1 RTT)",
				strong, rt, msgHelloReplyV1)
		}
		rep, err := parseFastHelloReply(rFrames[0].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.answered {
			t.Fatalf("strong=%v: responder declined a correctly sized speculation", strong)
		}
		if strong && rep.digest == nil {
			t.Fatalf("requested verification digest missing from hello reply")
		}
		if res.Rounds != 1 {
			t.Fatalf("strong=%v: %d rounds, want 1", strong, res.Rounds)
		}
	}
}

// TestFastSyncWireEquivalence is the fast-path tee: Set.Sync with
// WithFastSync against Set.Respond must put byte-identical streams on the
// wire as the stepped engine sessions, with identical results — the same
// contract TestSessionEngineWireEquivalence pins for the legacy flow.
func TestFastSyncWireEquivalence(t *testing.T) {
	for _, strong := range []bool{false, true} {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 80, Seed: 63})
		opt := &Options{Seed: 64, StrongVerify: strong, KnownD: 80}

		ssA, err := NewSharedSet(p.A, opt)
		if err != nil {
			t.Fatal(err)
		}
		is, opening, err := ssA.newFastInitiatorSession(ssA.opt, nil, "", 80)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewResponderSession(p.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		iStream, rStream := driveFast(t, is, opening, rs)
		engRes := is.Result()
		if engRes == nil {
			t.Fatal("engine produced no result")
		}

		setA, err := NewSet(p.A, WithOptions(*opt))
		if err != nil {
			t.Fatal(err)
		}
		setB, err := NewSet(p.B, WithOptions(*opt))
		if err != nil {
			t.Fatal(err)
		}
		ca, cb := net.Pipe()
		iSide := &teeRW{ReadWriter: ca}
		rSide := &teeRW{ReadWriter: cb}
		respErr := make(chan error, 1)
		go func() {
			defer cb.Close()
			respErr <- setB.Respond(context.Background(), rSide)
		}()
		res, err := setA.Sync(context.Background(), iSide, WithFastSync(true))
		ca.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := <-respErr; err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(iSide.bytes(), iStream) {
			t.Fatalf("strong=%v: fast Set.Sync wire stream diverges from engine frames (%d vs %d bytes)",
				strong, len(iSide.bytes()), len(iStream))
		}
		if !bytes.Equal(rSide.bytes(), rStream) {
			t.Fatalf("strong=%v: fast Set.Respond wire stream diverges from engine frames (%d vs %d bytes)",
				strong, len(rSide.bytes()), len(rStream))
		}
		if len(res.Difference) != len(engRes.Difference) ||
			res.Complete != engRes.Complete ||
			res.Rounds != engRes.Rounds ||
			res.WireBytes != engRes.WireBytes ||
			res.PayloadBytes != engRes.PayloadBytes ||
			res.EstimatorBytes != engRes.EstimatorBytes ||
			res.EstimatedD != engRes.EstimatedD {
			t.Fatalf("strong=%v: Set result %+v != engine result %+v", strong, res, engRes)
		}
		assertSameSet(t, res.Difference, p.Diff)
	}
}

// TestFastSyncUndersizedSpeculation pins the degrade path: a speculative
// round sized well under the true difference is still answered (it falls
// inside the acceptance window), round 1 leaves some groups undecoded, and
// the normal split machinery finishes the job in later rounds with the
// exact difference — piecewise decodability making the mis-sized gamble
// safe.
func TestFastSyncUndersizedSpeculation(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 80, Seed: 65})
	opt := &Options{Seed: 66}
	const specD = 45 // true d̂ ≈ 80: inside the 2·45+16 acceptance window

	ssA, err := NewSharedSet(p.A, opt)
	if err != nil {
		t.Fatal(err)
	}
	is, opening, err := ssA.newFastInitiatorSession(ssA.opt, nil, "", specD)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewResponderSession(p.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, rStream := driveFast(t, is, opening, rs)

	rFrames := parseStream(t, rStream)
	if rFrames[0].Type != msgHelloReplyV1 {
		t.Fatalf("first responder frame type %d, want %d", rFrames[0].Type, msgHelloReplyV1)
	}
	rep, err := parseFastHelloReply(rFrames[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.answered {
		t.Fatalf("speculation d_spec=%d declined at d̂=%d; want it inside the acceptance window", specD, rep.dhat)
	}
	if !fastSpecAccepted(specD, rep.dhat) {
		t.Fatalf("responder answered outside its own acceptance rule (d_spec=%d, d̂=%d)", specD, rep.dhat)
	}
	res := is.Result()
	if res == nil || !res.Complete {
		t.Fatalf("undersized speculation did not complete: %+v", res)
	}
	if res.Rounds < 2 {
		t.Fatalf("undersized speculation finished in %d round(s); expected the degrade into round 2+", res.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
}

// TestSpeculativeDAvoidsFailedPlan pins the speculation sizing: an
// explicit WithKnownD wins outright, a cold handle opens at
// DefaultSpeculativeD, a warm handle sizes from the last difference plus
// slim headroom — and a bound whose plan just cost an extra round is not
// replayed. Whether a plan decodes a difference in one round is a fixed
// draw for fixed sets, so without the hop a quiet set would repeat the
// same failing speculation on every sync.
func TestSpeculativeDAvoidsFailedPlan(t *testing.T) {
	s, err := NewSet([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.speculativeD(Options{}); got != DefaultSpeculativeD {
		t.Fatalf("cold handle speculated %d, want DefaultSpeculativeD=%d", got, DefaultSpeculativeD)
	}
	if got := s.speculativeD(Options{KnownD: 7}); got != 7 {
		t.Fatalf("KnownD=7 speculated %d, want 7", got)
	}
	s.specPrior.Store(21) // last sync learned a difference of 20
	base := s.speculativeD(Options{})
	if base <= 20 {
		t.Fatalf("warm speculation %d carries no headroom over the prior difference 20", base)
	}
	s.specAvoid.Store(base)
	hopped := s.speculativeD(Options{})
	if hopped == base {
		t.Fatalf("speculation replayed the bound %d that just failed to decode in one round", base)
	}
	if hopped < base {
		t.Fatalf("hopped speculation %d shrank below the failed bound %d", hopped, base)
	}
	// The avoided bound is specific: a different prior is unaffected.
	s.specPrior.Store(2 * 21)
	if got, unaffected := s.speculativeD(Options{}), s.specAvoid.Load(); got == unaffected {
		t.Fatalf("unrelated speculation collided with the avoided bound %d", unaffected)
	}
}

// TestFastSyncDeclinedSpeculation pins the decline path: a speculation the
// estimate dwarfs is not answered; both sides re-plan deterministically
// from the true d̂ and the session still converges on the exact difference
// — costing what the legacy negotiation would have, never more.
func TestFastSyncDeclinedSpeculation(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 500, Seed: 67})
	opt := &Options{Seed: 68}

	ssA, err := NewSharedSet(p.A, opt)
	if err != nil {
		t.Fatal(err)
	}
	is, opening, err := ssA.newFastInitiatorSession(ssA.opt, nil, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewResponderSession(p.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, rStream := driveFast(t, is, opening, rs)

	rFrames := parseStream(t, rStream)
	rep, err := parseFastHelloReply(rFrames[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.answered {
		t.Fatalf("responder answered a d_spec=1 speculation at d̂=%d", rep.dhat)
	}
	if fastSpecAccepted(1, rep.dhat) {
		t.Fatalf("acceptance rule admits d̂=%d against d_spec=1", rep.dhat)
	}
	res := is.Result()
	if res == nil || !res.Complete {
		t.Fatalf("declined speculation did not complete: %+v", res)
	}
	assertSameSet(t, res.Difference, p.Diff)
}

// TestClientLegacyFallback stands up a legacy-only responder — it answers
// anything but the protocol-0 flow with msgError, exactly like a
// pre-fast-path build — and checks both negotiation outcomes: the default
// client transparently redials and completes over the legacy flow, and an
// explicit LegacySync client never trips over the fast hello at all.
func TestClientLegacyFallback(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 1000, D: 15, Seed: 69})
	opt := &Options{Seed: 70}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fastHellos := make(chan struct{}, 16)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				rs, err := NewResponderSession(p.B, opt)
				if err != nil {
					return
				}
				for {
					typ, payload, err := readFrame(conn)
					if err != nil {
						return
					}
					if typ > msgError {
						// A legacy engine has no case for post-v0 frame
						// types; it fails the session and reports the
						// unexpected type to the peer.
						fastHellos <- struct{}{}
						writeFrame(conn, msgError, fmt.Appendf(nil, "pbs: unexpected message type %d", typ))
						return
					}
					out, done, err := rs.Step(typ, payload)
					if err != nil {
						writeFrame(conn, msgError, []byte(err.Error()))
						return
					}
					if err := writeFrames(conn, out); err != nil {
						return
					}
					if done {
						return
					}
				}
			}(conn)
		}
	}()

	c := &Client{Addr: ln.Addr().String(), Options: opt, Timeout: time.Minute}
	res, err := c.Sync(p.A)
	if err != nil {
		t.Fatalf("fast client against legacy responder: %v", err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after fallback: %+v", res)
	}
	assertSameSet(t, res.Difference, p.Diff)
	select {
	case <-fastHellos:
	default:
		t.Fatal("legacy responder never saw the fast hello; fallback path untested")
	}

	lc := &Client{Addr: ln.Addr().String(), Options: opt, Timeout: time.Minute, LegacySync: true}
	res, err = lc.Sync(p.A)
	if err != nil {
		t.Fatalf("legacy client: %v", err)
	}
	assertSameSet(t, res.Difference, p.Diff)
	select {
	case <-fastHellos:
		t.Fatal("LegacySync client sent a fast hello")
	default:
	}
}

// TestFastSyncServerNamedSet covers the server-side admission path: a fast
// hello names the registry set inline (no separate msgHello frame), the
// server admits against it, and a warm connection runs fast sessions back
// to back. An unknown name is rejected with the server's own diagnostic,
// surfaced through the ErrFastSyncRejected wrapper.
func TestFastSyncServerNamedSet(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 20, Seed: 71})
	opt := Options{Seed: 72}
	srv := NewServer(ServerOptions{Protocol: &opt})
	if err := srv.Register("catalog", p.B); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	set, err := NewSet(p.A, WithOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ { // warm connection: sessions in sequence
		res, err := set.Sync(context.Background(), conn, WithFastSync(true), WithSetName("catalog"))
		if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		if !res.Complete {
			t.Fatalf("sync %d incomplete", i)
		}
		assertSameSet(t, res.Difference, p.Diff)
	}
	// The closing msgDone is fire-and-forget; give the server a moment to
	// process the last one before sampling the counter.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Completed != 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Stats(); st.Completed != 3 {
		t.Fatalf("server completed %d sessions, want 3", st.Completed)
	}

	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	_, err = set.Sync(context.Background(), conn2, WithFastSync(true), WithSetName("no-such-set"))
	if !errors.Is(err, ErrFastSyncRejected) {
		t.Fatalf("unknown set error = %v, want ErrFastSyncRejected wrapper", err)
	}
}

// TestFastHelloVersionNegotiation pins the two engine-level negotiation
// signals: a responder rejects a hello version it does not speak (the
// resulting msgError is what an old initiator of the future sees), and an
// initiator maps a msgError answer to its fast hello onto the
// ErrFastSyncRejected sentinel.
func TestFastHelloVersionNegotiation(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 500, D: 5, Seed: 73})
	opt := &Options{Seed: 74}
	rs, err := NewResponderSession(p.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	hello := appendFastHello(nil, fastHello{version: 99})
	if _, _, err := rs.Step(msgHelloV1, hello); err == nil {
		t.Fatal("responder accepted an unknown hello version")
	}

	ssA, err := NewSharedSet(p.A, opt)
	if err != nil {
		t.Fatal(err)
	}
	is, _, err := ssA.newFastInitiatorSession(ssA.opt, nil, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = is.Step(msgError, []byte("pbs: unexpected message type 10"))
	if !errors.Is(err, ErrFastSyncRejected) {
		t.Fatalf("msgError answer = %v, want ErrFastSyncRejected wrapper", err)
	}
}

// TestPayloadPoolCap is the regression guard for the pool-pinning fix: a
// buffer grown past maxPooledBuf by one huge frame must not be eligible
// for the pool, while every normally sized buffer still recycles.
func TestPayloadPoolCap(t *testing.T) {
	if !poolableBuf(maxPooledBuf) {
		t.Fatalf("buffer at the %d-byte cap should pool", maxPooledBuf)
	}
	if poolableBuf(maxPooledBuf + 1) {
		t.Fatal("buffer past the cap must not pool")
	}
	big := make([]byte, 0, maxPooledBuf+1)
	putPayloadBuf(&big) // must drop it, not pin it
}

// TestNotifyPeerErrorStalledPeer checks that the best-effort msgError
// notification cannot hang teardown: against a peer that never reads (a
// net.Pipe end), the bounded write returns within its short deadline.
func TestNotifyPeerErrorStalledPeer(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	start := time.Now()
	notifyPeerError(ca, errors.New("boom"))
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("notifyPeerError blocked %v against a stalled peer", elapsed)
	}
}
