package pbs

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTestServer builds a Server around one shared base set, serves it on
// a loopback listener, and tears everything down with the test.
func startTestServer(t *testing.T, base []uint64, opt ServerOptions) (*Server, string) {
	t.Helper()
	srv := NewServer(opt)
	if err := srv.Register(DefaultSetName, base); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// testBaseSet returns a deterministic server-side set of n elements.
func testBaseSet(n int) []uint64 {
	set := make([]uint64, n)
	for i := range set {
		set[i] = uint64(i + 1)
	}
	return set
}

// clientSetAndDiff derives client i's local set from the base — a few
// elements removed, a few private ones added — plus the exact expected
// difference.
func clientSetAndDiff(base []uint64, i int) (local, diff []uint64) {
	removed := map[uint64]struct{}{}
	for j := 0; j < 3; j++ {
		removed[base[(i*17+j*5)%len(base)]] = struct{}{}
	}
	for _, x := range base {
		if _, gone := removed[x]; !gone {
			local = append(local, x)
		}
	}
	for j := 0; j < 3; j++ {
		added := uint64(0x40000000 + i*8 + j)
		local = append(local, added)
		diff = append(diff, added)
	}
	for x := range removed {
		diff = append(diff, x)
	}
	return local, diff
}

func sortedU64(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestServerManyConcurrentSessions is the acceptance scenario: well over
// 100 concurrent reconciliations against one shared responder snapshot
// through the TCP server, every one learning its exact difference. Run
// with -race: the sessions share the snapshot's partitions, ToW sketch,
// and verification digest.
func TestServerManyConcurrentSessions(t *testing.T) {
	base := testBaseSet(3000)
	opt := &Options{Seed: 1009, StrongVerify: true}
	srv, addr := startTestServer(t, base, ServerOptions{Protocol: opt})

	const sessions = 120
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local, want := clientSetAndDiff(base, i)
			c := &Client{Addr: addr, Options: opt, Timeout: time.Minute}
			res, err := c.Sync(local)
			if err != nil {
				errCh <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			if !res.Complete {
				errCh <- fmt.Errorf("client %d: incomplete", i)
				return
			}
			got, exp := sortedU64(res.Difference), sortedU64(want)
			if len(got) != len(exp) {
				errCh <- fmt.Errorf("client %d: |diff| = %d, want %d", i, len(got), len(exp))
				return
			}
			for j := range got {
				if got[j] != exp[j] {
					errCh <- fmt.Errorf("client %d: diff mismatch at %d", i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Clients return as soon as they have read their last frame; the
	// server-side handlers account the session a beat later. Poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	var st ServerStats
	for {
		st = srv.Stats()
		if (st.Completed == sessions && st.Active == 0) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Completed != sessions {
		t.Fatalf("completed = %d, want %d (failed=%d rejected=%d)",
			st.Completed, sessions, st.Failed, st.Rejected)
	}
	if st.Active != 0 {
		t.Fatalf("active = %d after all sessions ended", st.Active)
	}
}

func TestServerNamedSets(t *testing.T) {
	opt := &Options{Seed: 11}
	srv, addr := startTestServer(t, testBaseSet(100), ServerOptions{Protocol: opt})
	if err := srv.Register("alt", []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	c := &Client{Addr: addr, Set: "alt", Options: opt, Timeout: time.Minute}
	res, err := c.Sync([]uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Difference) != 1 || res.Difference[0] != 4 {
		t.Fatalf("alt-set sync got %v", res.Difference)
	}

	c = &Client{Addr: addr, Set: "missing", Options: opt, Timeout: time.Minute}
	if _, err := c.Sync([]uint64{1}); err == nil || !strings.Contains(err.Error(), "unknown set") {
		t.Fatalf("want unknown-set error, got %v", err)
	}
}

func TestServerRegisterSharedOptionMismatch(t *testing.T) {
	srv := NewServer(ServerOptions{Protocol: &Options{Seed: 31}})
	ss, err := NewSharedSet([]uint64{1, 2, 3}, &Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterShared("x", ss); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("want seed-mismatch rejection, got %v", err)
	}
	ok, err := NewSharedSet([]uint64{1, 2, 3}, &Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterShared("x", ok); err != nil {
		t.Fatalf("matching options rejected: %v", err)
	}
}

func TestServerSessionCapacity(t *testing.T) {
	opt := &Options{Seed: 13}
	_, addr := startTestServer(t, testBaseSet(100), ServerOptions{
		Protocol:    opt,
		MaxSessions: 1,
	})

	// Occupy the only slot with an idle raw connection...
	hold, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	time.Sleep(100 * time.Millisecond) // let the server's handler start

	// ...so the next connection must be turned away with the server's
	// reason. Read it raw: the server sends msgError without waiting for
	// input, and a racing protocol write could see a broken pipe instead.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgError || !strings.Contains(string(payload), "capacity") {
		t.Fatalf("want capacity msgError, got type %d %q", typ, payload)
	}
}

func TestServerByteBudget(t *testing.T) {
	opt := &Options{Seed: 17}
	srv, addr := startTestServer(t, testBaseSet(100), ServerOptions{
		Protocol:          opt,
		SessionByteBudget: 64, // smaller than one estimate frame
	})
	c := &Client{Addr: addr, Options: opt, Timeout: 10 * time.Second}
	if _, err := c.Sync([]uint64{1, 2, 3}); err == nil || !strings.Contains(err.Error(), "byte budget") {
		t.Fatalf("want byte-budget rejection, got %v", err)
	}
	if st := srv.Stats(); st.Failed == 0 {
		t.Fatal("byte-budget violation not counted as failed")
	}
}

func TestServerRoundBudget(t *testing.T) {
	opt := &Options{Seed: 19}
	_, addr := startTestServer(t, testBaseSet(500), ServerOptions{
		Protocol:         opt,
		SessionMaxRounds: 1,
	})

	// Drive the protocol by hand so the one permitted round frame can be
	// replayed: the second msgRound must trip the budget.
	local, _ := clientSetAndDiff(testBaseSet(500), 1)
	sess, opening, err := NewInitiatorSession(local, opt)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeFrames(conn, opening); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := sess.Step(typ, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Type != msgRound {
		t.Fatalf("expected a round frame, got %+v", out)
	}
	// Round 1: allowed.
	if err := writeFrames(conn, out); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(conn); err != nil {
		t.Fatal(err)
	}
	// Round 2 (a replay): over budget, must come back as msgError.
	if err := writeFrames(conn, out); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgError || !strings.Contains(string(payload), "round budget") {
		t.Fatalf("want round-budget msgError, got type %d %q", typ, payload)
	}
}

func TestServerIdleTimeout(t *testing.T) {
	opt := &Options{Seed: 23}
	_, addr := startTestServer(t, testBaseSet(100), ServerOptions{
		Protocol:    opt,
		IdleTimeout: 50 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Send nothing: the server must drop the connection, not wait forever.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept an idle connection past its deadline")
	}
}

func TestServerShutdownDrains(t *testing.T) {
	base := testBaseSet(2000)
	opt := &Options{Seed: 29}
	srv, addr := startTestServer(t, base, ServerOptions{Protocol: opt})

	const sessions = 8
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local, _ := clientSetAndDiff(base, i)
			c := &Client{Addr: addr, Options: opt, Timeout: time.Minute}
			_, err := c.Sync(local)
			errCh <- err
		}(i)
	}
	wg.Wait() // all sessions done before shutdown: drain must be instant

	// An idle probe connection (dialed, never sent a frame) is not a
	// session and must not hold the drain hostage.
	probe, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	time.Sleep(50 * time.Millisecond)

	if !srv.Shutdown(5 * time.Second) {
		t.Fatal("shutdown failed to drain an idle server")
	}
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Error(err)
		}
	}
	// A post-shutdown dial must not be served.
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if n, rerr := conn.Read(buf); rerr == nil && n > 0 {
			t.Fatal("closed server still answering")
		}
		conn.Close()
	}
}

// TestServerSessionReusePerConnection exercises the warm-client shape: one
// TCP connection carrying several sequential sessions, each opened by a
// fresh hello/estimate after the previous msgDone, with per-session
// budgets reset and every session recorded in the stats histograms.
func TestServerSessionReusePerConnection(t *testing.T) {
	base := testBaseSet(800)
	opt := &Options{Seed: 77}
	srv, addr := startTestServer(t, base, ServerOptions{Protocol: opt})

	local, want := clientSetAndDiff(base, 3)
	set, err := NewSet(local, WithOptions(*opt))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const syncs = 3
	for i := 0; i < syncs; i++ {
		res, err := set.Sync(context.Background(), conn)
		if err != nil {
			t.Fatalf("sync %d over the shared connection: %v", i, err)
		}
		if !res.Complete {
			t.Fatalf("sync %d incomplete", i)
		}
		got, exp := sortedU64(res.Difference), sortedU64(want)
		if len(got) != len(exp) {
			t.Fatalf("sync %d: |diff| = %d, want %d", i, len(got), len(exp))
		}
	}

	st := waitForCompleted(t, srv, syncs)
	if st.Accepted != 1 {
		t.Fatalf("accepted = %d connections, want 1 (reused)", st.Accepted)
	}
	if st.Failed != 0 || st.Rejected != 0 {
		t.Fatalf("failed=%d rejected=%d, want 0/0", st.Failed, st.Rejected)
	}
	for name, h := range map[string]HistogramSummary{
		"LatencyUS":     st.LatencyUS,
		"SessionRounds": st.SessionRounds,
		"SessionBytes":  st.SessionBytes,
	} {
		if h.Count != syncs {
			t.Errorf("%s.Count = %d, want %d", name, h.Count, syncs)
		}
		if h.P50 > h.P95 || h.P95 > h.P99 || h.P99 > float64(h.Max) {
			t.Errorf("%s quantiles not monotone: %+v", name, h)
		}
	}
	if st.SessionRounds.Max < 1 {
		t.Errorf("SessionRounds.Max = %d, want >= 1", st.SessionRounds.Max)
	}
	if st.SessionBytes.Sum != st.BytesIn+st.BytesOut {
		t.Errorf("SessionBytes.Sum = %d, want BytesIn+BytesOut = %d",
			st.SessionBytes.Sum, st.BytesIn+st.BytesOut)
	}
	if st.LatencyUS.Max <= 0 {
		t.Errorf("LatencyUS.Max = %d, want > 0", st.LatencyUS.Max)
	}
}

// waitForCompleted polls the server stats until the expected number of
// completed sessions is accounted (clients return before the server-side
// handler books the session).
func waitForCompleted(t *testing.T, srv *Server, want int64) ServerStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if (st.Completed == want && st.Active == 0) || time.Now().After(deadline) {
			if st.Completed != want {
				t.Fatalf("completed = %d, want %d (failed=%d rejected=%d)",
					st.Completed, want, st.Failed, st.Rejected)
			}
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
}
