package pbs

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"

	"pbs/internal/workload"
)

// teeRW records everything one endpoint writes, so the wire stream of the
// blocking wrappers can be compared against the session engine's frames.
type teeRW struct {
	io.ReadWriter
	mu  sync.Mutex
	buf bytes.Buffer
}

func (t *teeRW) Write(p []byte) (int, error) {
	t.mu.Lock()
	t.buf.Write(p)
	t.mu.Unlock()
	return t.ReadWriter.Write(p)
}

func (t *teeRW) bytes() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]byte(nil), t.buf.Bytes()...)
}

// frameBytes serializes frames the way the wire does.
func frameBytes(frames []Frame) []byte {
	var buf bytes.Buffer
	for _, f := range frames {
		writeFrame(&buf, f.Type, f.Payload)
	}
	return buf.Bytes()
}

// TestSessionEngineWireEquivalence drives the same reconciliation three
// ways — through the blocking SyncInitiator/SyncResponder wrappers over a
// pipe, by stepping InitiatorSession/ResponderSession directly, and
// through the Set API (Set.Sync against Set.Respond, with a WithOnDelta
// observer installed) — and requires byte-identical streams in both
// directions plus identical results. This is the redesign's contract: the
// engine IS the protocol, every surface only moves frames, and the
// streaming-delta observer never perturbs the wire.
func TestSessionEngineWireEquivalence(t *testing.T) {
	for _, strong := range []bool{false, true} {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 80, Seed: 51})
		opt := &Options{Seed: 52, StrongVerify: strong}

		// Blocking wrappers over net.Pipe, with both write sides recorded.
		ca, cb := net.Pipe()
		iSide := &teeRW{ReadWriter: ca}
		rSide := &teeRW{ReadWriter: cb}
		respErr := make(chan error, 1)
		go func() {
			defer cb.Close()
			respErr <- SyncResponder(p.B, rSide, opt)
		}()
		wrapRes, err := SyncInitiator(p.A, iSide, opt)
		ca.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := <-respErr; err != nil {
			t.Fatal(err)
		}

		// The same exchange, engine only.
		is, opening, err := NewInitiatorSession(p.A, opt)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewResponderSession(p.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		var iStream, rStream []byte
		toResponder := opening
		done := false
		for !done {
			iStream = append(iStream, frameBytes(toResponder)...)
			var toInitiator []Frame
			for _, f := range toResponder {
				out, _, err := rs.Step(f.Type, f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				toInitiator = append(toInitiator, out...)
			}
			rStream = append(rStream, frameBytes(toInitiator)...)
			toResponder = nil
			for _, f := range toInitiator {
				out, d, err := is.Step(f.Type, f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				toResponder = append(toResponder, out...)
				done = d
			}
			if done {
				// Deliver the closing frames (msgDone) to the responder so
				// both machines finish.
				iStream = append(iStream, frameBytes(toResponder)...)
				for _, f := range toResponder {
					if _, _, err := rs.Step(f.Type, f.Payload); err != nil {
						t.Fatal(err)
					}
				}
			}
		}

		if !bytes.Equal(iSide.bytes(), iStream) {
			t.Fatalf("strong=%v: initiator wire stream diverges from engine frames (%d vs %d bytes)",
				strong, len(iSide.bytes()), len(iStream))
		}
		if !bytes.Equal(rSide.bytes(), rStream) {
			t.Fatalf("strong=%v: responder wire stream diverges from engine frames (%d vs %d bytes)",
				strong, len(rSide.bytes()), len(rStream))
		}

		engRes := is.Result()
		if engRes == nil {
			t.Fatal("engine produced no result")
		}
		if len(engRes.Difference) != len(wrapRes.Difference) ||
			engRes.Complete != wrapRes.Complete ||
			engRes.Rounds != wrapRes.Rounds ||
			engRes.WireBytes != wrapRes.WireBytes ||
			engRes.PayloadBytes != wrapRes.PayloadBytes ||
			engRes.EstimatorBytes != wrapRes.EstimatorBytes ||
			engRes.EstimatedD != wrapRes.EstimatedD {
			t.Fatalf("strong=%v: engine result %+v != wrapper result %+v", strong, engRes, wrapRes)
		}

		// The same exchange again through the redesigned surface: Set.Sync
		// against Set.Respond, with the streaming-delta observer on. Old
		// API and new API must put exactly the same bytes on the wire.
		setA, err := NewSet(p.A, WithOptions(*opt))
		if err != nil {
			t.Fatal(err)
		}
		setB, err := NewSet(p.B, WithOptions(*opt))
		if err != nil {
			t.Fatal(err)
		}
		na, nb := net.Pipe()
		nSide := &teeRW{ReadWriter: na}
		nrSide := &teeRW{ReadWriter: nb}
		respErr = make(chan error, 1)
		go func() {
			defer nb.Close()
			respErr <- setB.Respond(context.Background(), nrSide)
		}()
		var streamed []uint64
		newRes, err := setA.Sync(context.Background(), nSide,
			WithOnDelta(func(elems []uint64, round int) {
				streamed = append(streamed, elems...)
			}))
		na.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := <-respErr; err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(nSide.bytes(), iStream) {
			t.Fatalf("strong=%v: Set.Sync wire stream diverges from old API (%d vs %d bytes)",
				strong, len(nSide.bytes()), len(iStream))
		}
		if !bytes.Equal(nrSide.bytes(), rStream) {
			t.Fatalf("strong=%v: Set.Respond wire stream diverges from old API (%d vs %d bytes)",
				strong, len(nrSide.bytes()), len(rStream))
		}
		if len(newRes.Difference) != len(wrapRes.Difference) ||
			newRes.Complete != wrapRes.Complete ||
			newRes.Rounds != wrapRes.Rounds ||
			newRes.WireBytes != wrapRes.WireBytes ||
			newRes.PayloadBytes != wrapRes.PayloadBytes ||
			newRes.EstimatorBytes != wrapRes.EstimatorBytes ||
			newRes.EstimatedD != wrapRes.EstimatedD {
			t.Fatalf("strong=%v: Set result %+v != wrapper result %+v", strong, newRes, wrapRes)
		}
		// The streamed deltas must reconstruct the final difference exactly.
		assertSameSet(t, streamed, newRes.Difference)
	}
}

func TestInitiatorSessionClosedStep(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 200, D: 3, Seed: 53})
	opt := &Options{Seed: 54}
	is, opening, err := NewInitiatorSession(p.A, opt)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewResponderSession(p.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	toResponder := opening
	done := false
	for !done {
		var toInitiator []Frame
		for _, f := range toResponder {
			out, _, err := rs.Step(f.Type, f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			toInitiator = append(toInitiator, out...)
		}
		toResponder = nil
		for _, f := range toInitiator {
			out, d, err := is.Step(f.Type, f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			toResponder = append(toResponder, out...)
			done = d
		}
	}
	if _, _, err := is.Step(msgRoundReply, nil); err == nil {
		t.Fatal("closed initiator session accepted a frame")
	}
	for _, f := range toResponder {
		if _, _, err := rs.Step(f.Type, f.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := rs.Step(msgRound, nil); err == nil {
		t.Fatal("closed responder session accepted a frame")
	}
}
