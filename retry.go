package pbs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// RetryPolicy controls how Set.Sync (and Client.Sync via Client.Retry)
// retries retryable failures. Zero-valued fields take the defaults noted
// on each field. Classification of failures is done by Retryable; see its
// doc for the taxonomy.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first try.
	// Default 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: the delay ceiling before
	// attempt n (1-based retries) is BaseDelay << (n-1), capped at
	// MaxDelay, with full jitter applied. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling. Default 2s.
	MaxDelay time.Duration
	// AttemptTimeout, when positive, bounds each individual attempt with
	// its own deadline (layered under the caller's ctx). An attempt that
	// times out is treated as a stall and retried while the parent ctx
	// is still live.
	AttemptTimeout time.Duration
	// Dial produces a fresh connection for an attempt. Required for any
	// retry to happen when syncing over a raw conn: the failed conn is
	// closed and cannot be reused. Client.Sync supplies its own dialer
	// automatically.
	Dial func(ctx context.Context) (net.Conn, error)
	// OnRetry, when set, observes each scheduled retry: attempt is the
	// 1-based number of the attempt that just failed, err its failure,
	// and delay the backoff chosen before the next try.
	OnRetry func(attempt int, err error, delay time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// delay picks the backoff before the next try after 1-based attempt n
// failed with err: exponential ceiling with full jitter, floored at any
// retry-after hint the server sent.
func (p RetryPolicy) delay(attempt int, err error) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d <<= 1
	}
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	d = time.Duration(rand.Int63n(int64(d) + 1))
	var pe *PeerError
	if errors.As(err, &pe) && pe.RetryAfter > d {
		d = pe.RetryAfter
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// syncRetry wraps syncAttempt in the retry loop configured by cfg.retry.
// The first attempt uses conn when non-nil; every subsequent attempt needs
// pol.Dial. A failed attempt's connection is always closed — including a
// caller-provided conn — because a sync error leaves the stream in an
// unknown state. A successful attempt's connection is closed only when it
// was dialed here; a caller-provided conn that succeeds stays open and
// remains the caller's to manage.
func (s *Set) syncRetry(ctx context.Context, conn net.Conn, cfg *setConfig) (*Result, error) {
	pol := cfg.retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		c := conn
		conn = nil // only the first attempt may use the caller's conn
		dialed := c == nil
		if c == nil {
			if pol.Dial == nil {
				if lastErr != nil {
					return nil, fmt.Errorf("pbs: cannot retry without a RetryPolicy.Dial hook: %w", lastErr)
				}
				return nil, errors.New("pbs: Sync needs a connection or a RetryPolicy.Dial hook")
			}
			var err error
			c, err = pol.Dial(ctx)
			if err != nil {
				lastErr = err
				if ctx.Err() != nil || !Retryable(err) || attempt == pol.MaxAttempts-1 {
					break
				}
				d := pol.delay(attempt+1, err)
				if pol.OnRetry != nil {
					pol.OnRetry(attempt+1, err, d)
				}
				if serr := sleepCtx(ctx, d); serr != nil {
					return nil, serr
				}
				continue
			}
		}
		attemptCtx, cancel := ctx, context.CancelFunc(nil)
		if pol.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, pol.AttemptTimeout)
		}
		res, err := s.syncAttempt(attemptCtx, c, cfg)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			if dialed {
				c.Close()
			}
			return res, nil
		}
		c.Close()
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
		// An attempt-deadline expiry is a stall, retryable as long as
		// the parent ctx is still live.
		retryable := Retryable(err) ||
			(pol.AttemptTimeout > 0 && errors.Is(err, context.DeadlineExceeded))
		if !retryable {
			return nil, err
		}
		if attempt == pol.MaxAttempts-1 {
			break
		}
		d := pol.delay(attempt+1, err)
		if pol.OnRetry != nil {
			pol.OnRetry(attempt+1, err, d)
		}
		if serr := sleepCtx(ctx, d); serr != nil {
			return nil, serr
		}
	}
	return nil, fmt.Errorf("pbs: sync failed after %d attempts: %w", pol.MaxAttempts, lastErr)
}
