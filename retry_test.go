package pbs

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pbs/internal/chaos"
	"pbs/internal/workload"
)

// recordConn records everything written through it (the initiator's frame
// stream), for frame-type assertions over a live net.Conn.
type recordConn struct {
	net.Conn
	mu sync.Mutex
	wr bytes.Buffer
}

func (c *recordConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.wr.Write(p[:n])
	c.mu.Unlock()
	return n, err
}

func (c *recordConn) writes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.wr.Bytes()...)
}

// pipeResponder spawns one Respond call for set over a fresh pipe and
// returns the initiator's end. Responder failures are expected when the
// test kills the connection mid-round; they drain into the background.
func pipeResponder(t *testing.T, set *Set) net.Conn {
	t.Helper()
	ca, cb := net.Pipe()
	go func() {
		defer cb.Close()
		set.Respond(context.Background(), cb)
	}()
	return ca
}

// TestRetryResumesFastPath is the resumption satellite: attempt 1 dies on
// an injected mid-frame disconnect (the initiator's closing frame is cut
// off mid-write, after the responder's d̂ already arrived), and attempt 2
// — reusing that learned d̂ as its speculation prior instead of the cold
// DefaultSpeculativeD — completes over the single-round-trip fast path:
// exactly [msgHelloV1, msgDone] from the initiator, one round.
func TestRetryResumesFastPath(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 20, Seed: 4})
	opt := Options{Seed: 42}
	setA, err := NewSet(p.A, WithOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	setB, err := NewSet(p.B, WithOptions(opt))
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu       sync.Mutex
		dials    int
		rec      *recordConn
		injected []chaos.Event
	)
	pol := RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Dial: func(ctx context.Context) (net.Conn, error) {
			mu.Lock()
			defer mu.Unlock()
			dials++
			conn := pipeResponder(t, setB)
			if dials == 1 {
				return chaos.Wrap(conn, chaos.Config{
					Seed:     1,
					Schedule: []chaos.Fault{{Frame: 1, Dir: chaos.Send, Kind: chaos.Drop}},
					OnFault: func(ev chaos.Event) {
						injected = append(injected, ev)
					},
				}, 1), nil
			}
			rec = &recordConn{Conn: conn}
			return rec, nil
		},
	}
	var retried []error
	var prior uint64
	pol.OnRetry = func(attempt int, err error, _ time.Duration) {
		retried = append(retried, err)
		prior = setA.specPrior.Load()
	}

	res, err := setA.Sync(context.Background(), nil, WithFastSync(true), WithRetry(pol))
	if err != nil {
		t.Fatalf("retried sync failed: %v", err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)

	if dials != 2 || len(retried) != 1 {
		t.Fatalf("want exactly one retry (2 dials), got %d dials, %d retries", dials, len(retried))
	}
	if len(injected) != 1 || injected[0].Kind != chaos.Drop {
		t.Fatalf("fault schedule fired %+v, want one Drop", injected)
	}
	if !Retryable(retried[0]) {
		t.Fatalf("mid-round disconnect classified non-retryable: %v", retried[0])
	}
	if prior == 0 {
		t.Fatal("failed attempt did not seed the speculation prior with the learned d̂")
	}

	// The resumption assertion: attempt 2 rode the 1-RTT fast path on the
	// d̂ learned before attempt 1 died.
	if res.Rounds != 1 {
		t.Fatalf("attempt 2 took %d rounds, want 1 (learned d̂ prior not reused)", res.Rounds)
	}
	frames := parseStream(t, rec.writes())
	it := frameTypes(frames)
	if len(it) != 2 || it[0] != msgHelloV1 || it[1] != msgDone {
		t.Fatalf("attempt 2 initiator sent frame types %v, want [%d %d] (1 RTT)", it, msgHelloV1, msgDone)
	}
	// And its hello was sized by the learned prior, not the cold default.
	h, err := parseFastHello(frames[0].Payload)
	if err != nil {
		t.Fatalf("attempt 2 hello did not parse: %v", err)
	}
	d := prior - 1
	if want := d + d/8 + 8; h.specD != want {
		t.Fatalf("attempt 2 speculated d = %d, want %d from the learned prior %d", h.specD, want, prior)
	}
	if h.specD == DefaultSpeculativeD {
		t.Fatalf("attempt 2 fell back to the cold DefaultSpeculativeD")
	}
}

// TestVerifyFailureNotRetried: a tampered verification digest must surface
// as ErrVerificationFailed after exactly one attempt — retrying a
// determinism failure would just burn the budget.
func TestVerifyFailureNotRetried(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 20, Seed: 81})
	opt := Options{Seed: 82, StrongVerify: true, KnownD: 40}
	setA, err := NewSet(p.A, WithOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	setB, err := NewSet(p.B, WithOptions(opt))
	if err != nil {
		t.Fatal(err)
	}

	dials := 0
	pol := RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		Dial: func(ctx context.Context) (net.Conn, error) {
			dials++
			honest := pipeResponder(t, setB)
			// A tampering proxy: every msgHelloReplyV1 has its digest
			// bytes flipped before reaching the initiator.
			ca, cb := net.Pipe()
			go func() { // initiator -> responder passthrough
				defer honest.Close()
				buf := make([]byte, 4096)
				for {
					n, err := cb.Read(buf)
					if n > 0 {
						if _, werr := honest.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
			go func() { // responder -> initiator, digest tampered
				defer cb.Close()
				for {
					typ, payload, err := readFrame(honest)
					if err != nil {
						return
					}
					if typ == msgHelloReplyV1 {
						if rep, perr := parseFastHelloReply(payload); perr == nil && rep.digest != nil {
							rep.digest[0] ^= 0xFF
							payload = appendFastHelloReply(nil, rep)
						}
					}
					if err := writeFrame(cb, typ, payload); err != nil {
						return
					}
				}
			}()
			return ca, nil
		},
	}

	_, err = setA.Sync(context.Background(), nil, WithFastSync(true), WithRetry(pol))
	if !errors.Is(err, ErrVerificationFailed) {
		t.Fatalf("want ErrVerificationFailed, got %v", err)
	}
	if dials != 1 {
		t.Fatalf("verification failure was retried: %d dials", dials)
	}
	if strings.Contains(err.Error(), "attempts") {
		t.Fatalf("non-retryable error wrapped in attempt exhaustion: %v", err)
	}
}

// TestMaxDViolationNotRetried: a d̂ over the configured MaxD is a
// validation rejection, not a transient fault.
func TestMaxDViolationNotRetried(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 4000, D: 1000, Seed: 91})
	opt := Options{Seed: 92}
	setA, err := NewSet(p.A, WithOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	setB, err := NewSet(p.B, WithOptions(opt))
	if err != nil {
		t.Fatal(err)
	}

	dials := 0
	pol := RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		Dial: func(ctx context.Context) (net.Conn, error) {
			dials++
			return pipeResponder(t, setB), nil
		},
	}
	_, err = setA.Sync(context.Background(), nil,
		WithFastSync(true), WithMaxD(50), WithRetry(pol))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("want d̂-over-MaxD rejection, got %v", err)
	}
	if Retryable(err) {
		t.Fatalf("MaxD violation classified retryable: %v", err)
	}
	if dials != 1 {
		t.Fatalf("MaxD violation was retried: %d dials", dials)
	}
}

// TestServerBusyRetry: a hard-capacity rejection surfaces as ErrServerBusy
// (not a fast-path downgrade), and a retrying client succeeds once the
// capacity frees up.
func TestServerBusyRetry(t *testing.T) {
	opt := &Options{Seed: 23}
	srv, addr := startTestServer(t, testBaseSet(100), ServerOptions{
		Protocol:       opt,
		MaxSessions:    1,
		RetryAfterHint: 5 * time.Millisecond,
	})

	hold, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	time.Sleep(100 * time.Millisecond) // let the hog's handler start

	// Without a retry policy the rejection is immediate and errors.Is-able.
	c := &Client{Addr: addr, Options: opt, Timeout: 10 * time.Second}
	_, err = c.SyncContext(context.Background(), []uint64{1, 2, 3})
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("want ErrServerBusy, got %v", err)
	}
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Code != ErrCodeBusy {
		t.Fatalf("want busy-coded PeerError, got %v", err)
	}
	if pe.RetryAfter != 10*time.Millisecond { // hard cap hints 2x the base
		t.Fatalf("retry-after hint = %v, want 10ms", pe.RetryAfter)
	}

	// With a policy, the client keeps trying; releasing the hog on the
	// first retry lets a later attempt in.
	var once sync.Once
	c.Retry = &RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   5 * time.Millisecond,
		OnRetry: func(int, error, time.Duration) {
			once.Do(func() { hold.Close() })
		},
	}
	res, err := c.SyncContext(context.Background(), []uint64{1, 2, 3})
	if err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if !res.Complete {
		t.Fatal("retrying client got an incomplete result")
	}
	if st := srv.Stats(); st.Rejected == 0 {
		t.Fatal("busy rejections not counted")
	}
}

// TestServerSoftWatermark: connections above SoftSessionWatermark are shed
// with a busy-coded retry-after hint while the hard cap still has room.
func TestServerSoftWatermark(t *testing.T) {
	opt := &Options{Seed: 29}
	srv, addr := startTestServer(t, testBaseSet(100), ServerOptions{
		Protocol:             opt,
		MaxSessions:          64,
		SoftSessionWatermark: 1,
		RetryAfterHint:       5 * time.Millisecond,
	})

	hold, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	time.Sleep(100 * time.Millisecond)

	c := &Client{Addr: addr, Options: opt, Timeout: 10 * time.Second}
	_, err = c.SyncContext(context.Background(), []uint64{1, 2, 3})
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("want ErrServerBusy from watermark shed, got %v", err)
	}
	var pe *PeerError
	if !errors.As(err, &pe) || pe.RetryAfter != 5*time.Millisecond {
		t.Fatalf("watermark shed should hint the base retry-after, got %v", err)
	}
	st := srv.Stats()
	if st.Shed == 0 || st.Rejected == 0 {
		t.Fatalf("shed not counted: %+v", st)
	}
}

// TestPeerErrorSanitized: a hostile responder's oversized, control-byte
// msgError must reach the caller bounded and printable.
func TestPeerErrorSanitized(t *testing.T) {
	set, err := NewSet([]uint64{1, 2, 3}, WithOptions(Options{Seed: 31}))
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := net.Pipe()
	defer ca.Close()
	go func() {
		defer cb.Close()
		if _, _, err := readFrame(cb); err != nil { // swallow the estimate
			return
		}
		hostile := append(bytes.Repeat([]byte{0x07}, 2048), "tail"...)
		writeFrame(cb, msgError, hostile)
	}()

	errCh := make(chan error, 1)
	go func() {
		_, err := set.Sync(context.Background(), ca, WithIdleTimeout(5*time.Second))
		errCh <- err
	}()
	select {
	case err = <-errCh:
	case <-time.After(faultTimeout):
		t.Fatal("sync hung on hostile msgError")
	}
	if err == nil {
		t.Fatal("hostile msgError produced no error")
	}
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PeerError, got %T: %v", err, err)
	}
	msg := err.Error()
	if len(msg) > maxPeerErrLen+64 {
		t.Fatalf("peer error not bounded: %d bytes", len(msg))
	}
	for _, r := range msg {
		if r < 0x20 && r != ' ' {
			t.Fatalf("control byte %#x survived sanitization: %q", r, msg)
		}
	}
	if Retryable(err) {
		t.Fatalf("uncoded peer error classified retryable: %v", err)
	}
}

// tempErrListener always fails Accept with a temporary error until closed
// — the EMFILE-flood shape that drives the accept loop's backoff.
type tempErrListener struct {
	closed chan struct{}
	once   sync.Once
}

type tempErr struct{}

func (tempErr) Error() string   { return "simulated transient accept failure" }
func (tempErr) Temporary() bool { return true }
func (tempErr) Timeout() bool   { return false }

func (l *tempErrListener) Accept() (net.Conn, error) {
	select {
	case <-l.closed:
		return nil, net.ErrClosed
	case <-time.After(time.Millisecond):
		return nil, tempErr{}
	}
}
func (l *tempErrListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}
func (l *tempErrListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// TestCloseInterruptsAcceptBackoff: Close during the accept loop's backoff
// sleep must return promptly, not after the full (up to 1s) backoff.
func TestCloseInterruptsAcceptBackoff(t *testing.T) {
	srv := NewServer(ServerOptions{})
	if err := srv.Register(DefaultSetName, testBaseSet(10)); err != nil {
		t.Fatal(err)
	}
	ln := &tempErrListener{closed: make(chan struct{})}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Let the repeated temporary failures escalate the backoff well past
	// the responsiveness bound asserted below.
	time.Sleep(300 * time.Millisecond)
	start := time.Now()
	srv.Close()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(faultTimeout):
		t.Fatal("Serve did not return after Close")
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("Close took %v to interrupt the accept backoff", el)
	}
}
