package pbs

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"syscall"
	"time"
	"unicode"
	"unicode/utf8"
)

// Structured error codes carried in msgError payloads. The code travels as
// a backward-compatible suffix on the human-readable message (see
// appendErrCode), so legacy peers still see a plain string.
const (
	// ErrCodeBusy marks a shed-load rejection: the server is over its
	// session capacity or admission watermark. Busy errors are retryable
	// and may carry a retry-after hint.
	ErrCodeBusy = "busy"
	// ErrCodeRejected marks a protocol-level rejection (validation
	// failure, budget exhaustion, malformed frames). Not retryable.
	ErrCodeRejected = "rejected"
	// ErrCodeQuota marks a per-tenant quota rejection. Session-quota
	// rejections carry a retry-after hint (slots free as sessions drain)
	// and are retryable; quota rejections without a hint (set or byte
	// quotas, which only clear when the tenant removes data) are not.
	ErrCodeQuota = "quota"
)

// ErrServerBusy is reported (via errors.Is) when the peer shed the
// connection for load reasons and a later retry may succeed.
var ErrServerBusy = errors.New("pbs: server busy")

// ErrQuotaExceeded is reported (via errors.Is) when the peer rejected the
// session because the tenant is over one of its quotas.
var ErrQuotaExceeded = errors.New("pbs: tenant quota exceeded")

const (
	// maxPeerErrLen bounds how much of a peer-supplied error message is
	// embedded in client-side errors. Anything longer is truncated.
	maxPeerErrLen = 256
	// maxRetryAfter clamps peer-supplied retry-after hints.
	maxRetryAfter = 5 * time.Minute
	// maxErrCodeLen bounds the code token in a structured suffix.
	maxErrCodeLen = 16
)

// PeerError is an error reported by the remote peer over msgError. Msg is
// sanitized (length-capped, non-printables stripped); Code and RetryAfter
// are parsed from the structured suffix when present and zero otherwise.
type PeerError struct {
	Code       string
	RetryAfter time.Duration
	Msg        string
}

func (e *PeerError) Error() string { return "pbs: peer error: " + e.Msg }

// Is makes errors.Is(err, ErrServerBusy) match busy-coded peer errors and
// errors.Is(err, ErrQuotaExceeded) match quota-coded ones.
func (e *PeerError) Is(target error) bool {
	switch target {
	case ErrServerBusy:
		return e.Code == ErrCodeBusy
	case ErrQuotaExceeded:
		return e.Code == ErrCodeQuota
	}
	return false
}

// appendErrCode encodes a structured code (and optional retry-after hint)
// as a suffix on a msgError string: "msg [pbs:e=busy,ra=250ms]". Legacy
// peers embed the whole string verbatim; current peers strip and parse it.
func appendErrCode(msg, code string, retryAfter time.Duration) string {
	if code == "" {
		return msg
	}
	var sb strings.Builder
	sb.WriteString(msg)
	sb.WriteString(" [pbs:e=")
	sb.WriteString(code)
	if retryAfter > 0 {
		sb.WriteString(",ra=")
		sb.WriteString(retryAfter.String())
	}
	sb.WriteString("]")
	return sb.String()
}

func validErrCode(code string) bool {
	if code == "" || len(code) > maxErrCodeLen {
		return false
	}
	for i := 0; i < len(code); i++ {
		c := code[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// splitErrCode parses the structured suffix off a msgError string. It
// returns the bare message plus the code and retry-after hint; a missing
// or malformed suffix yields the input unchanged with an empty code.
func splitErrCode(s string) (msg, code string, retryAfter time.Duration) {
	i := strings.LastIndex(s, " [pbs:e=")
	if i < 0 || !strings.HasSuffix(s, "]") {
		return s, "", 0
	}
	body := s[i+len(" [pbs:e=") : len(s)-1]
	c, rest, hasRA := strings.Cut(body, ",")
	if !validErrCode(c) {
		return s, "", 0
	}
	var ra time.Duration
	if hasRA {
		v, ok := strings.CutPrefix(rest, "ra=")
		if !ok {
			return s, "", 0
		}
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return s, "", 0
		}
		ra = min(d, maxRetryAfter)
	}
	return s[:i], c, ra
}

// sanitizeErrMsg bounds a peer-supplied error string and replaces
// non-printable or invalid-UTF-8 bytes so hostile responders cannot bloat
// or mangle client logs.
func sanitizeErrMsg(s string) string {
	const truncMark = "... (truncated)"
	truncated := false
	if len(s) > maxPeerErrLen {
		s = s[:maxPeerErrLen]
		truncated = true
	}
	var sb strings.Builder
	sb.Grow(len(s) + len(truncMark))
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if (r == utf8.RuneError && size == 1) || !unicode.IsPrint(r) {
			sb.WriteByte('?')
		} else {
			sb.WriteRune(r)
		}
		i += size
	}
	if truncated {
		sb.WriteString(truncMark)
	}
	return sb.String()
}

// parsePeerErrPayload turns a raw msgError payload into a *PeerError with
// a sanitized message and any structured code/retry-after hint decoded.
func parsePeerErrPayload(payload []byte) *PeerError {
	msg, code, ra := splitErrCode(string(payload))
	return &PeerError{Code: code, RetryAfter: ra, Msg: sanitizeErrMsg(msg)}
}

// Retryable classifies an error from Set.Sync or Client.Sync: it reports
// whether a fresh attempt over a new connection could plausibly succeed.
// Transport-level failures (dial errors, resets, mid-round disconnects,
// stall timeouts) and busy-coded peer rejections are retryable; protocol
// rejections, verification failures, budget exhaustion, and context
// cancellation are not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrServerBusy) {
		return true
	}
	if errors.Is(err, ErrVerificationFailed) || errors.Is(err, ErrFastSyncRejected) {
		return false
	}
	var pe *PeerError
	if errors.As(err, &pe) {
		// Quota rejections are retryable only when the server attached a
		// retry-after hint — it does so for session quotas (slots free as
		// the tenant's sessions drain) but not for set/byte quotas, which
		// stay exhausted until the tenant removes data.
		return pe.Code == ErrCodeBusy || (pe.Code == ErrCodeQuota && pe.RetryAfter > 0)
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	return false
}
