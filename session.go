package pbs

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"pbs/internal/core"
	"pbs/internal/estimator"
	"pbs/internal/msethash"
)

// This file holds the non-blocking session engine behind the wire protocol:
// InitiatorSession and ResponderSession advance one received frame at a
// time via Step, returning the frames to send back. SyncInitiator and
// SyncResponder (sync.go) are thin blocking wrappers over these machines,
// and the concurrent Server (server.go) drives many ResponderSessions
// without dedicating a full protocol loop (or a private copy of the set)
// to each connection.
//
// The engine also hardens the protocol against hostile peers: the
// exchanged difference estimate d̂ is validated against Options.MaxD on
// both sides before it can size a Plan, a mid-session re-estimate is
// rejected instead of silently discarding reconciliation state, and every
// parse rejects trailing bytes.

// Frame is one protocol message: a type byte plus its payload. The wire
// representation adds the 4-byte length prefix (see writeFrame).
type Frame struct {
	Type    byte
	Payload []byte
}

// Seed tweaks deriving the protocol's independent hash domains from the
// shared Options.Seed. Both parties must apply identical tweaks, so every
// call site uses these constants — changing one without the other side
// silently breaks estimation or verification.
const (
	towSeedTweak    = 0x70E57 // Tug-of-War estimator hash bank
	verifySeedTweak = 0x5EC   // §2.2.3 strong-verification multiset hash
)

// unexpectedType reports a frame of the wrong type, surfacing a peer's
// msgError diagnostic (sanitized, with any structured code decoded) when
// that is what arrived instead.
func unexpectedType(want, got byte, payload []byte) error {
	if got == msgError {
		return parsePeerErrPayload(payload)
	}
	return fmt.Errorf("pbs: expected message type %d, got %d", want, got)
}

// maxD resolves the effective cap on the exchanged difference estimate:
// MaxD if positive, DefaultMaxD if zero, and an effectively unlimited 2^62
// when negative (explicitly opting out of the guard).
func (o Options) maxD() uint64 {
	switch {
	case o.MaxD > 0:
		return uint64(o.MaxD)
	case o.MaxD < 0:
		return 1 << 62
	default:
		return DefaultMaxD
	}
}

// boundEstimate converts a raw ToW estimate into the rounded d̂ the
// protocol exchanges, rejecting the non-finite, negative, or over-limit
// values a hostile peer's sketches can induce before they reach plan
// derivation.
func (o Options) boundEstimate(dhatF float64) (uint64, error) {
	if math.IsNaN(dhatF) || dhatF < 0 {
		return 0, fmt.Errorf("pbs: estimator produced unusable d̂ = %v", dhatF)
	}
	max := o.maxD()
	if dhatF >= float64(max) {
		return 0, fmt.Errorf("pbs: estimate d̂ = %.0f exceeds limit %d", dhatF, max)
	}
	return uint64(math.Round(dhatF)), nil
}

// InitiatorSession is the non-blocking initiator (Alice) state machine.
// Construct it with NewInitiatorSession (or take it from a Set via
// Set.Sync), send the returned opening frames, then feed every frame
// received from the responder to Step and send whatever it returns, until
// done. The session reconciles against an immutable SharedSet view, so the
// validated snapshot, the ToW sketch, and the group partitions are all
// reusable across sessions — initiators get the same amortization servers
// do.
type InitiatorSession struct {
	opt     Options
	shared  *SharedSet
	onDelta func(elems []uint64, round int)

	state int
	alice *core.Alice
	plan  core.Plan

	dhat          uint64
	estBytes      int
	rounds        int
	aliceWireBits int
	bobWireBits   int

	// Fast-path state: payload bits of a speculative round the responder
	// declined (still spent on the wire, so still accounted), and the
	// verification digest piggybacked on the hello reply, which lets a
	// StrongVerify session skip the msgVerify round trip.
	specBits   int
	haveDigest bool
	peerDigest msethash.Digest

	// features is the feature bitmap requested in a version-2 fast hello;
	// zero keeps the hello at version 1 and the wire bytes legacy-identical.
	features uint64

	// wantAdaptive records that the fast hello offered adaptive round
	// re-planning; adaptive records the responder's grant, under which both
	// endpoints re-derive (m, t) per round from the Markov occupancy model.
	wantAdaptive bool
	adaptive     bool

	res *Result
}

const (
	initWantEstimateReply = iota
	initWantRoundReply
	initWantVerifyReply
	initWantHelloReply // fast path: msgHelloV1 sent, awaiting msgHelloReplyV1
	initClosed
)

// fastSpecAccepted reports whether a responder should answer a speculative
// round sized for specD when the piggybacked sketches put the true
// estimate at dhat. Piecewise decodability makes an undersized round safe
// — decoded groups land now, failed groups split 3-way in round 2 — but a
// speculation the estimate dwarfs would converge slower than just
// re-planning from d̂, which costs no extra round trip on the decline
// path. The 2·d_spec+16 window is the region where round-2 splitting
// still beats a restart. Both sides must apply this rule identically;
// the initiator uses it only to predict (and test) responder behavior.
func fastSpecAccepted(specD, dhat uint64) bool {
	return dhat <= 2*specD+16
}

// NewInitiatorSession starts an initiator session for set and returns the
// opening frames (the ToW estimate) to send to the responder. For repeated
// syncs of the same (possibly mutating) set, build a Set once instead — it
// keeps the validated snapshot and the ToW sketch warm across sessions.
func NewInitiatorSession(set []uint64, o *Options) (*InitiatorSession, []Frame, error) {
	ss, err := NewSharedSet(set, o)
	if err != nil {
		return nil, nil, err
	}
	s, opening := ss.newInitiatorSession(ss.opt, nil)
	return s, opening, nil
}

// newInitiatorSession starts an initiator session over the shared view.
// opt must agree with ss.opt on Seed, SigBits, and EstimatorSketches (the
// fields the cached snapshot and sketch were built under); the remaining
// fields may vary per call.
func (ss *SharedSet) newInitiatorSession(opt Options, onDelta func(elems []uint64, round int)) (*InitiatorSession, []Frame) {
	est := encodeSketches(ss.towSketch())
	s := &InitiatorSession{
		opt:      opt,
		shared:   ss,
		onDelta:  onDelta,
		state:    initWantEstimateReply,
		estBytes: len(est),
	}
	return s, []Frame{{msgEstimate, est}}
}

// newFastInitiatorSession starts a single-RTT fast-path session: the
// opening frame is one msgHelloV1 carrying the protocol version, the set
// name (empty outside pbs-serve), the ToW sketches, and round 1 already
// built under the plan for the speculative bound specD. A responder that
// accepts the speculation answers estimate and round 1 (and, under
// StrongVerify, the verification digest) in one reply frame; one that
// declines re-plans from the true d̂, exactly like the legacy flow but
// one round trip earlier. opt's constraints match newInitiatorSession.
func (ss *SharedSet) newFastInitiatorSession(opt Options, onDelta func(elems []uint64, round int), name string, specD uint64) (*InitiatorSession, []Frame, error) {
	return ss.newFastInitiatorSessionFeatures(opt, onDelta, name, specD, 0, true)
}

// newFastInitiatorSessionFeatures is newFastInitiatorSession with a
// protocol-feature request folded into the hello. A non-zero features
// bitmap upgrades the hello to version 2 (want-flags in the existing flags
// field — zero extra round trips); features == 0 produces a version-1
// hello byte-identical to the pre-mux wire format. adaptive offers the
// peer adaptive round re-planning (on by default through every fast-path
// entry point; WithAdaptive(false) is the opt-out) — the offer itself is
// one flag bit and changes nothing until the peer grants it.
func (ss *SharedSet) newFastInitiatorSessionFeatures(opt Options, onDelta func(elems []uint64, round int), name string, specD uint64, features uint64, adaptive bool) (*InitiatorSession, []Frame, error) {
	if specD < 1 {
		specD = 1
	}
	if max := opt.maxD(); specD > max {
		specD = max
	}
	plan, err := syncPlan(specD, opt)
	if err != nil {
		return nil, nil, err
	}
	alice, err := core.NewAliceFromSnapshot(ss.snap, plan)
	if err != nil {
		return nil, nil, err
	}
	if onDelta != nil {
		alice.OnVerifiedDelta(onDelta)
	}
	round1, err := alice.BuildRound()
	if err != nil {
		return nil, nil, err
	}
	if round1 == nil {
		return nil, nil, fmt.Errorf("pbs: speculative plan produced no round")
	}
	est := encodeSketches(ss.towSketch())
	version := uint64(fastProtoVersion)
	if features != 0 {
		version = fastProtoVersionMux
	}
	hello := appendFastHello(nil, fastHello{
		version:      version,
		wantDigest:   opt.StrongVerify,
		wantAdaptive: adaptive,
		features:     features,
		name:         name,
		specD:        specD,
		sketches:     est,
		round1:       round1,
	})
	s := &InitiatorSession{
		opt:          opt,
		shared:       ss,
		onDelta:      onDelta,
		state:        initWantHelloReply,
		alice:        alice,
		plan:         plan,
		features:     features,
		wantAdaptive: adaptive,
		// The hello envelope (version, flags, name, d_spec, sketch) is
		// estimator overhead; the round-1 bytes are round traffic.
		estBytes:      len(hello) - len(round1),
		aliceWireBits: len(round1) * 8,
	}
	return s, []Frame{{msgHelloV1, hello}}, nil
}

// Step advances the session with one frame received from the responder.
// The returned frames must be sent to the peer even when err is non-nil
// (a failed strong verification still closes the session with msgDone) —
// so err must be checked even when done is true. When done is true and
// err is nil the exchange succeeded and Result is valid; on error Result
// returns nil.
func (s *InitiatorSession) Step(typ byte, payload []byte) (out []Frame, done bool, err error) {
	switch s.state {
	case initWantEstimateReply:
		if typ != msgEstimateReply {
			return nil, false, unexpectedType(msgEstimateReply, typ, payload)
		}
		dhat, k := binary.Uvarint(payload)
		if k <= 0 {
			return nil, false, fmt.Errorf("pbs: bad estimate reply")
		}
		if k != len(payload) {
			return nil, false, fmt.Errorf("pbs: %d trailing bytes after estimate reply", len(payload)-k)
		}
		if max := s.opt.maxD(); dhat > max {
			return nil, false, fmt.Errorf("pbs: peer estimate d̂ = %d exceeds limit %d", dhat, max)
		}
		s.dhat = dhat
		s.estBytes += len(payload)
		plan, err := syncPlan(dhat, s.opt)
		if err != nil {
			return nil, false, err
		}
		alice, err := core.NewAliceFromSnapshot(s.shared.snap, plan)
		if err != nil {
			return nil, false, err
		}
		if s.onDelta != nil {
			alice.OnVerifiedDelta(s.onDelta)
		}
		s.plan, s.alice = plan, alice
		return s.advance()

	case initWantRoundReply:
		if typ != msgRoundReply {
			return nil, false, unexpectedType(msgRoundReply, typ, payload)
		}
		if err := s.alice.AbsorbReply(payload); err != nil {
			return nil, false, err
		}
		s.rounds++
		s.bobWireBits += len(payload) * 8
		return s.advance()

	case initWantHelloReply:
		if typ != msgHelloReplyV1 {
			if typ == msgError {
				pe := parsePeerErrPayload(payload)
				if pe.Code == ErrCodeBusy {
					// Shed load, not a protocol mismatch: surface the busy
					// error directly so callers retry instead of pointlessly
					// downgrading to the legacy flow.
					return nil, false, pe
				}
				// A legacy peer (or a rejecting server) answers the fast
				// hello with msgError; surface the sentinel so callers can
				// negotiate down to the multi-RTT flow.
				return nil, false, fmt.Errorf("%w: %s", ErrFastSyncRejected, pe.Msg)
			}
			return nil, false, unexpectedType(msgHelloReplyV1, typ, payload)
		}
		rep, err := parseFastHelloReply(payload)
		if err != nil {
			return nil, false, err
		}
		switch rep.version {
		case fastProtoVersion:
			// A v1 reply to a v2 hello is the decline path: the peer speaks
			// the fast flow but grants no features; the session proceeds
			// exactly as v1.
			if rep.features != 0 {
				return nil, false, fmt.Errorf("pbs: version-1 reply carries feature grants %#x", rep.features)
			}
		case fastProtoVersionMux:
			if s.features == 0 {
				return nil, false, fmt.Errorf("pbs: peer selected protocol version %d without an offer", rep.version)
			}
			if rep.features&^s.features != 0 {
				return nil, false, fmt.Errorf("pbs: peer granted unrequested features %#x", rep.features&^s.features)
			}
		default:
			return nil, false, fmt.Errorf("pbs: peer selected unsupported protocol version %d", rep.version)
		}
		if max := s.opt.maxD(); rep.dhat > max {
			return nil, false, fmt.Errorf("pbs: peer estimate d̂ = %d exceeds limit %d", rep.dhat, max)
		}
		if rep.adaptive && !s.wantAdaptive {
			return nil, false, fmt.Errorf("pbs: peer granted adaptive re-planning without an offer")
		}
		s.adaptive = rep.adaptive
		if rep.digest != nil {
			theirs, ok := msethash.DigestFromBytes(rep.digest)
			if !ok {
				return nil, false, fmt.Errorf("pbs: malformed verification digest")
			}
			s.peerDigest, s.haveDigest = theirs, true
		}
		s.dhat = rep.dhat
		s.estBytes += len(payload) - len(rep.roundReply)
		if rep.answered {
			if s.adaptive {
				// Round 1 went out before the grant existed (always static);
				// enabling here makes every round from 2 on carry re-planned
				// (m, t) parameters, mirroring the responder exactly.
				s.alice.EnableAdaptive()
			}
			if err := s.alice.AbsorbReply(rep.roundReply); err != nil {
				return nil, false, err
			}
			s.rounds++
			s.bobWireBits += len(rep.roundReply) * 8
			return s.advance()
		}
		// Speculation declined: its payload stays on the books, then both
		// sides re-plan deterministically from the true d̂ and continue
		// with the classic round flow.
		s.specBits = s.alice.PayloadBits()
		plan, err := syncPlan(rep.dhat, s.opt)
		if err != nil {
			return nil, false, err
		}
		alice, err := core.NewAliceFromSnapshot(s.shared.snap, plan)
		if err != nil {
			return nil, false, err
		}
		if s.adaptive {
			// The fresh endpoint restarts its round numbering at 1, so its
			// first message is static and re-planning engages from round 2 —
			// the same rule the responder's fresh Bob applies.
			alice.EnableAdaptive()
		}
		if s.onDelta != nil {
			alice.OnVerifiedDelta(s.onDelta)
		}
		s.plan, s.alice = plan, alice
		return s.advance()

	case initWantVerifyReply:
		if typ != msgVerifyReply {
			return nil, false, unexpectedType(msgVerifyReply, typ, payload)
		}
		theirs, ok := msethash.DigestFromBytes(payload)
		if !ok {
			return nil, false, fmt.Errorf("pbs: malformed verification digest")
		}
		s.state = initClosed
		if s.expectedDigest() != theirs {
			// The difference just failed verification: do not leave a
			// Result claiming Complete=true reachable.
			s.res = nil
			return []Frame{{msgDone, nil}}, true, ErrVerificationFailed
		}
		return []Frame{{msgDone, nil}}, true, nil

	default:
		return nil, false, fmt.Errorf("pbs: step on a closed initiator session")
	}
}

// advance builds the next round message, or wraps the session up when the
// round budget is exhausted, reconciliation converged, or nothing is left
// to ask.
func (s *InitiatorSession) advance() ([]Frame, bool, error) {
	if s.rounds < s.plan.MaxRounds && !s.alice.Done() {
		msg, err := s.alice.BuildRound()
		if err != nil {
			return nil, false, err
		}
		if msg != nil {
			s.aliceWireBits += len(msg) * 8
			s.state = initWantRoundReply
			return []Frame{{msgRound, msg}}, false, nil
		}
	}
	return s.finish()
}

func (s *InitiatorSession) finish() ([]Frame, bool, error) {
	s.res = &Result{
		Difference: s.alice.Difference(),
		Complete:   s.alice.Done(),
		Rounds:     s.rounds,
		EstimatedD: estimator.ConservativeD(float64(s.dhat), s.opt.Gamma),
		// The initiator only knows its own payload bits exactly; the
		// peer's contribution is included in WireBytes.
		PayloadBytes:   (s.alice.PayloadBits() + s.specBits + 7) / 8,
		WireBytes:      (s.aliceWireBits+s.bobWireBits)/8 + s.estBytes,
		EstimatorBytes: s.estBytes,
		Replans:        s.alice.Replans(),
	}
	if s.opt.StrongVerify && s.res.Complete {
		if s.haveDigest {
			// Fast path: the digest rode in on the hello reply, so the
			// comparison is local and the msgVerify round trip vanishes.
			s.state = initClosed
			if s.expectedDigest() != s.peerDigest {
				s.res = nil
				return []Frame{{msgDone, nil}}, true, ErrVerificationFailed
			}
			return []Frame{{msgDone, nil}}, true, nil
		}
		s.state = initWantVerifyReply
		return []Frame{{msgVerify, nil}}, false, nil
	}
	s.state = initClosed
	return []Frame{{msgDone, nil}}, true, nil
}

// expectedDigest is the multiset-hash digest of what the responder's set
// must be if the learned difference is right: the local set with the
// difference toggled in (§2.2.3). It resumes from the shared view's cached
// whole-set digest, so only the |D̂| toggles are hashed here.
func (s *InitiatorSession) expectedDigest() msethash.Digest {
	h := msethash.FromDigest(s.opt.Seed^verifySeedTweak, s.shared.verifyDigest())
	for _, x := range s.res.Difference {
		if s.shared.snap.Contains(x) {
			h.Remove(x)
		} else {
			h.Add(x)
		}
	}
	return h.Sum()
}

// Result returns the reconciliation outcome once Step has reported done
// without an error; it is nil after a failed strong verification.
func (s *InitiatorSession) Result() *Result { return s.res }

// Rounds returns the number of completed round exchanges so far.
func (s *InitiatorSession) Rounds() int { return s.rounds }

// SharedSet is an immutable responder set prepared once and shared by any
// number of concurrent ResponderSessions. Element validation, the
// per-plan group partitions, the ToW sketch of the set, and the
// strong-verification digest are each computed a single time instead of
// per session — the difference between a server carrying N sessions and a
// server carrying N copies of its set. All methods are safe for
// concurrent use.
type SharedSet struct {
	opt  Options // defaults applied; every session inherits these
	snap *core.Snapshot
	tow  *estimator.ToW

	// Cold (evicted) hosted sets defer the snapshot: loadSnap pages the
	// elements in the first time a session actually needs them — decoding
	// a delta round — while estimates and digest verification are answered
	// from the preset sketch/digest below. count carries the element count
	// so sizing (Len, the server MaxD tightening) works without elements.
	loadSnap func() (*core.Snapshot, error)
	snapOnce sync.Once
	snapErr  error
	count    int

	sketchOnce sync.Once
	sketch     []int64

	digestOnce sync.Once
	digest     msethash.Digest

	// observeDhat, when set, is invoked with every difference estimate d̂
	// this set answers (msgEstimate and fast hellos alike). The hosted
	// layer uses it to feed the per-set learned d̂ prior that is persisted
	// in the segment footer. It must be safe for concurrent use and must
	// not block — it runs on session goroutines.
	observeDhat func(dhat uint64)
}

// newLazySharedSet builds a SharedSet whose ToW sketch and verification
// digest are preset from persisted metadata and whose snapshot is
// materialized by load only when a session must decode rounds. opt must
// already have defaults applied.
func newLazySharedSet(opt Options, count int, sketch []int64, digest msethash.Digest, load func() (*core.Snapshot, error)) (*SharedSet, error) {
	tow, err := estimator.NewToW(opt.EstimatorSketches, opt.Seed^towSeedTweak)
	if err != nil {
		return nil, err
	}
	if len(sketch) != tow.L() {
		return nil, fmt.Errorf("pbs: persisted sketch length %d, want %d", len(sketch), tow.L())
	}
	ss := &SharedSet{opt: opt, tow: tow, loadSnap: load, count: count}
	// Fire the Onces before the set is shared, so towSketch/verifyDigest
	// answer from the persisted values without touching the snapshot.
	ss.sketchOnce.Do(func() { ss.sketch = sketch })
	ss.digestOnce.Do(func() { ss.digest = digest })
	return ss, nil
}

// snapshot returns the materialized element snapshot, invoking loadSnap at
// most once for lazily built shared sets.
func (ss *SharedSet) snapshot() (*core.Snapshot, error) {
	ss.snapOnce.Do(func() {
		if ss.snap != nil || ss.loadSnap == nil {
			return
		}
		ss.snap, ss.snapErr = ss.loadSnap()
		if ss.snapErr == nil && ss.snap != nil {
			ss.count = ss.snap.Len()
		}
	})
	if ss.snapErr != nil {
		return nil, ss.snapErr
	}
	if ss.snap == nil {
		return nil, fmt.Errorf("pbs: shared set has no snapshot")
	}
	return ss.snap, nil
}

// NewSharedSet validates set once under o and prepares it for concurrent
// responder sessions.
func NewSharedSet(set []uint64, o *Options) (*SharedSet, error) {
	opt, err := o.withDefaultsValidated()
	if err != nil {
		return nil, err
	}
	tow, err := estimator.NewToW(opt.EstimatorSketches, opt.Seed^towSeedTweak)
	if err != nil {
		return nil, err
	}
	snap, err := core.NewSnapshot(set, opt.coreConfig())
	if err != nil {
		return nil, err
	}
	return &SharedSet{opt: opt, snap: snap, tow: tow}, nil
}

// Len returns the number of elements in the set.
func (ss *SharedSet) Len() int {
	if ss.snap == nil {
		return ss.count
	}
	return ss.snap.Len()
}

// towSketch returns the set's ToW sketch vector, computed on first use and
// then shared read-only by every session.
func (ss *SharedSet) towSketch() []int64 {
	ss.sketchOnce.Do(func() { ss.sketch = ss.tow.Sketch(ss.snap.Elements()) })
	return ss.sketch
}

// verifyDigest returns the §2.2.3 strong-verification digest of the set,
// computed on first use.
func (ss *SharedSet) verifyDigest() msethash.Digest {
	ss.digestOnce.Do(func() {
		h := msethash.New(ss.opt.Seed ^ verifySeedTweak)
		h.AddSet(ss.snap.Elements())
		ss.digest = h.Sum()
	})
	return ss.digest
}

// NewSession returns a responder session reconciling against the shared
// set under the options the set was prepared with.
func (ss *SharedSet) NewSession() *ResponderSession {
	return ss.newResponderSession(ss.opt)
}

// newResponderSession returns a responder session under opt, which must
// agree with ss.opt on Seed, SigBits, and EstimatorSketches.
func (ss *SharedSet) newResponderSession(opt Options) *ResponderSession {
	return &ResponderSession{opt: opt, shared: ss}
}

// newServerSession is NewSession with the Server's untrusted-peer posture:
// when MaxD was left at its default it is additionally tightened relative
// to the set size, because the plan's group count (and hence the
// responder's per-session allocation) scales with d̂ rather than |S| — a
// forged estimate just under DefaultMaxD would otherwise cost a small-set
// server tens of megabytes per session. Standalone SyncResponder peers
// keep the plain default so asymmetric peer-to-peer reconciliation (tiny
// local set, huge remote difference) still works; servers that need that
// shape must set MaxD explicitly. opt is the server's protocol
// configuration (for sets registered as immutable SharedSets it is
// identical to ss.opt, which registration enforces).
func (ss *SharedSet) newServerSession(opt Options) *ResponderSession {
	if opt.MaxD == 0 {
		if cap := 64*ss.Len() + 1024; cap < DefaultMaxD {
			opt.MaxD = cap
		}
	}
	return &ResponderSession{opt: opt, shared: ss}
}

// sharedView and sessionOptions let an immutable SharedSet serve as a
// Server registry source alongside the mutable Set.
func (ss *SharedSet) sharedView() (*SharedSet, error) { return ss, nil }
func (ss *SharedSet) sessionOptions() Options         { return ss.opt }

// ResponderSession is the non-blocking responder (Bob) state machine: feed
// every received frame to Step and send back whatever it returns. A
// session serves exactly one initiator; a server shares one SharedSet
// across many sessions.
type ResponderSession struct {
	opt    Options
	shared *SharedSet
	bob    *core.Bob
	rounds int
	closed bool

	// estimated records that an estimate was answered; plan holds the
	// agreed decoding plan until the first msgRound forces Bob (and, for a
	// cold hosted set, the element snapshot) to materialize. Estimate-only
	// probes against an evicted set therefore never page elements in.
	estimated bool
	plan      core.Plan

	// release, when set, runs exactly once when the session ends (done or
	// dropped); the Server uses it to return per-tenant session slots and
	// resident-set pins.
	release func()

	// allowFeatures is the feature bitmap this session may grant to a
	// version-2 fast hello. Only the Server's connection loop sets it (it
	// owns the demultiplexer a grant commits to); everywhere else the zero
	// value declines every offer, which downgrades the reply to version 1.
	allowFeatures uint64
	granted       uint64

	// adaptive records a granted adaptive-re-planning offer. Unlike the
	// feature bits above, the grant is unconditional and identical across
	// every responder entry point (standalone, Set.Respond, Server) — it
	// commits this side to nothing beyond parsing (m, t) round headers,
	// and uniformity is what keeps the wire streams of all responder
	// flavors byte-identical for a given initiator.
	adaptive bool
	// specAccepted records that the fast hello's speculative round was
	// answered in the opening reply — the initiator's d̂ prior (or KnownD)
	// sized it right. The Server counts these as ServerStats.PriorHits.
	specAccepted bool
}

// grantedFeatures reports the feature bitmap granted to the initiator's
// version-2 hello, or zero before the hello (or when nothing was granted).
func (s *ResponderSession) grantedFeatures() uint64 { return s.granted }

// NewResponderSession starts a standalone responder session for set. For
// many concurrent sessions over one set, build a SharedSet once and use
// its NewSession instead.
func NewResponderSession(set []uint64, o *Options) (*ResponderSession, error) {
	ss, err := NewSharedSet(set, o)
	if err != nil {
		return nil, err
	}
	return ss.NewSession(), nil
}

// Step advances the session with one frame received from the initiator.
// When done is true the initiator has closed the session.
func (s *ResponderSession) Step(typ byte, payload []byte) (out []Frame, done bool, err error) {
	if s.closed {
		return nil, true, fmt.Errorf("pbs: step on a closed responder session")
	}
	switch typ {
	case msgEstimate:
		if s.estimated {
			// A mid-session re-estimate would silently discard all
			// reconciliation state; treat it as the protocol violation it is.
			return nil, false, fmt.Errorf("pbs: duplicate estimate in one session")
		}
		theirs, err := decodeSketches(payload)
		if err != nil {
			return nil, false, err
		}
		if len(theirs) != s.opt.EstimatorSketches {
			return nil, false, fmt.Errorf("pbs: peer sent %d sketches, want %d", len(theirs), s.opt.EstimatorSketches)
		}
		dhatF, err := s.shared.tow.Estimate(theirs, s.shared.towSketch())
		if err != nil {
			return nil, false, err
		}
		dhat, err := s.opt.boundEstimate(dhatF)
		if err != nil {
			return nil, false, err
		}
		if fn := s.shared.observeDhat; fn != nil {
			fn(dhat)
		}
		plan, err := syncPlan(dhat, s.opt)
		if err != nil {
			return nil, false, err
		}
		// Bob is deferred to the first msgRound: the estimate itself is
		// answered purely from the (possibly persisted) ToW sketch, so an
		// estimate-only probe against a cold hosted set stays element-free.
		s.plan = plan
		s.estimated = true
		return []Frame{{msgEstimateReply, binary.AppendUvarint(nil, dhat)}}, false, nil

	case msgHelloV1:
		if s.estimated {
			return nil, false, fmt.Errorf("pbs: duplicate estimate in one session")
		}
		h, err := parseFastHello(payload)
		if err != nil {
			return nil, false, err
		}
		if h.version != fastProtoVersion && h.version != fastProtoVersionMux {
			// The resulting msgError is the negotiation signal: the
			// initiator maps it to ErrFastSyncRejected and can retry with
			// a protocol this responder speaks.
			return nil, false, fmt.Errorf("pbs: unsupported fast protocol version %d", h.version)
		}
		theirs, err := decodeSketches(h.sketches)
		if err != nil {
			return nil, false, err
		}
		if len(theirs) != s.opt.EstimatorSketches {
			return nil, false, fmt.Errorf("pbs: peer sent %d sketches, want %d", len(theirs), s.opt.EstimatorSketches)
		}
		dhatF, err := s.shared.tow.Estimate(theirs, s.shared.towSketch())
		if err != nil {
			return nil, false, err
		}
		dhat, err := s.opt.boundEstimate(dhatF)
		if err != nil {
			return nil, false, err
		}
		// An over-limit d_spec never sizes a plan — decline instead, which
		// also keeps a forged d_spec from buying the DoS allocation MaxD
		// exists to prevent.
		accepted := h.specD <= s.opt.maxD() && fastSpecAccepted(h.specD, dhat)
		s.adaptive = h.wantAdaptive
		if fn := s.shared.observeDhat; fn != nil {
			fn(dhat)
		}
		planD := dhat
		if accepted {
			planD = h.specD
		}
		plan, err := syncPlan(planD, s.opt)
		if err != nil {
			return nil, false, err
		}
		s.plan = plan
		s.estimated = true
		rep := fastHelloReply{version: fastProtoVersion, dhat: dhat, adaptive: s.adaptive}
		if h.version == fastProtoVersionMux {
			// Feature grant: the intersection of what the peer offered and
			// what our driver allows (the Server sets allowFeatures on the
			// connection loop's sessions; a bare Set.Respond leaves it zero,
			// which declines every offer). Compression is only meaningful
			// inside the mux envelope, so it is never granted alone.
			granted := h.features & s.allowFeatures
			if granted&featureMux == 0 {
				granted = 0
			}
			if granted != 0 {
				rep.version = fastProtoVersionMux
				rep.features = granted
				s.granted = granted
			}
		}
		if accepted {
			// Answering the speculative round needs the bin sums, so this
			// is the point where a cold hosted set pages its elements in.
			if err := s.materialize(); err != nil {
				return nil, false, err
			}
			reply, err := s.bob.HandleRound(h.round1)
			if err != nil {
				return nil, false, err
			}
			s.rounds++
			rep.answered = true
			rep.roundReply = reply
			s.specAccepted = true
		}
		if h.wantDigest {
			rep.digest = s.shared.verifyDigest().Bytes()
		}
		return []Frame{{msgHelloReplyV1, appendFastHelloReply(nil, rep)}}, false, nil

	case msgRound:
		if !s.estimated {
			return nil, false, fmt.Errorf("pbs: round before estimation")
		}
		if err := s.materialize(); err != nil {
			return nil, false, err
		}
		reply, err := s.bob.HandleRound(payload)
		if err != nil {
			return nil, false, err
		}
		s.rounds++
		return []Frame{{msgRoundReply, reply}}, false, nil

	case msgVerify:
		return []Frame{{msgVerifyReply, s.shared.verifyDigest().Bytes()}}, false, nil

	case msgDone:
		s.closed = true
		return nil, true, nil

	case msgError:
		return nil, false, parsePeerErrPayload(payload)

	default:
		return nil, false, fmt.Errorf("pbs: unexpected message type %d", typ)
	}
}

// materialize builds Bob from the agreed plan on first need, paging the
// shared set's snapshot in if it is cold.
func (s *ResponderSession) materialize() error {
	if s.bob != nil {
		return nil
	}
	snap, err := s.shared.snapshot()
	if err != nil {
		return err
	}
	bob, err := core.NewBobFromSnapshot(snap, s.plan)
	if err != nil {
		return err
	}
	if s.adaptive {
		bob.EnableAdaptive()
	}
	s.bob = bob
	return nil
}

// adaptiveReplans reports how many served rounds ran under parameters
// re-planned away from the static plan — 0 for sessions that never
// negotiated adaptive mode (or never decoded a round). The Server
// aggregates it into ServerStats.AdaptiveReplans.
func (s *ResponderSession) adaptiveReplans() int {
	if s.bob == nil {
		return 0
	}
	return s.bob.Replans()
}

// Rounds returns the number of rounds answered so far.
func (s *ResponderSession) Rounds() int { return s.rounds }

// started reports whether the session has answered an estimate — i.e.
// reconciliation actually began, as opposed to a probe that only opened
// and closed the session.
func (s *ResponderSession) started() bool { return s.estimated }

// runRelease fires the session's release hook at most once. The Server
// attaches per-tenant session slots and resident-set pins here and calls
// this from every path that retires a session.
func (s *ResponderSession) runRelease() {
	if s.release != nil {
		r := s.release
		s.release = nil
		r()
	}
}
