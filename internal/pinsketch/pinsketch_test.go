package pinsketch

import (
	"sort"
	"testing"

	"pbs/internal/workload"
)

func assertSameSet(t *testing.T, got, want []uint64) {
	t.Helper()
	g := append([]uint64(nil), got...)
	w := append([]uint64(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	if len(g) != len(w) {
		t.Fatalf("size mismatch: %d vs %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestPlainExactRecovery(t *testing.T) {
	for _, d := range []int{0, 1, 7, 25} {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: d, Seed: int64(d)})
		res, err := Plain(p.A, p.B, 30, 32)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("d=%d: decode failed with t=30", d)
		}
		assertSameSet(t, res.Difference, p.Diff)
		if res.CommBits != 30*32+32 {
			t.Errorf("comm = %d bits", res.CommBits)
		}
	}
}

func TestPlainOverCapacityReportsFailure(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 40, Seed: 2})
	res, err := Plain(p.A, p.B, 10, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("decode with t=10 for d=40 should fail")
	}
}

func TestPlainValidation(t *testing.T) {
	if _, err := Plain(nil, nil, 0, 32); err == nil {
		t.Error("t=0 should error")
	}
	if _, err := Plain(nil, nil, 5, 64); err == nil {
		t.Error("non-32-bit universe should error")
	}
}

func TestWPExactRecovery(t *testing.T) {
	for _, d := range []int{5, 50, 200} {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: d, Seed: int64(d) * 3})
		cfg := WPConfig{Groups: maxInt(1, d/5), T: 13, Seed: 11}
		res, err := WP(p.A, p.B, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("d=%d incomplete after %d rounds", d, res.Rounds)
		}
		assertSameSet(t, res.Difference, p.Diff)
	}
}

func TestWPSplitsRecoverFromOverload(t *testing.T) {
	// One group, tiny t, large d: must split its way to success.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 5000, D: 60, Seed: 4})
	res, err := WP(p.A, p.B, WPConfig{Groups: 1, T: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Rounds)
	}
	if res.Rounds < 2 {
		t.Errorf("expected splits (rounds >= 2), got %d", res.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestWPCommHigherThanPBSFormula(t *testing.T) {
	// §8.3: per group pair, PinSketch/WP pays (t+1)·log|U| while PBS pays
	// t·log n + δ·(log n + log|U|) + log|U|; with t=13, δ=5, m=7:
	// WP = 448 bits > PBS = 318 bits.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: 200, Seed: 6})
	res, err := WP(p.A, p.B, WPConfig{Groups: 40, T: 13, Seed: 7})
	if err != nil || !res.Complete {
		t.Fatal("WP failed")
	}
	perGroup := float64(res.CommBits) / 40
	if perGroup < 448 {
		t.Errorf("per-group comm %.0f bits, expected >= 448 (first round alone)", perGroup)
	}
}

func TestWPMaxRoundsHonored(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 50, Seed: 8})
	res, err := WP(p.A, p.B, WPConfig{Groups: 1, T: 5, MaxRounds: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("t=5 for d=50 in one round should not complete")
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestWPValidation(t *testing.T) {
	if _, err := WP(nil, nil, WPConfig{Groups: 0, T: 5}); err == nil {
		t.Error("groups=0 should error")
	}
	if _, err := WP(nil, nil, WPConfig{Groups: 1, T: 0}); err == nil {
		t.Error("t=0 should error")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
