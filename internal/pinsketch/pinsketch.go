// Package pinsketch implements the PinSketch baseline (Dodis et al.,
// described in §7 of the PBS paper) and its partitioned variant
// PinSketch/WP (§8.3).
//
// PinSketch views a set S over a 32-bit universe as a 2^32-bit indicator
// bitmap and transmits a BCH syndrome sketch over GF(2^32) with
// error-correction capacity t. XORing the two parties' sketches yields the
// sketch of A△B, whose decode returns the difference elements directly.
// Communication is near-optimal (t·log|U| bits) but decoding costs O(t²)
// finite-field operations — the tradeoff PBS is designed to break.
//
// PinSketch/WP applies PBS's grouping trick to PinSketch: hash-partition
// both sets into g = d/δ groups and sketch each group pair with the same
// per-group t as PBS. Decoding becomes O(d) but each codeword symbol is
// log|U| bits instead of PBS's log n, which is why it loses to PBS on
// communication (§8.3).
package pinsketch

import (
	"fmt"
	"time"

	"pbs/internal/bch"
	"pbs/internal/hashutil"
)

// Result reports a reconciliation outcome.
type Result struct {
	// Difference is the recovered A△B (nil on failure).
	Difference []uint64
	// Complete reports whether decoding succeeded (and, for /WP, whether
	// every group verified within the round budget).
	Complete bool
	// CommBits is the one-way communication cost in bits.
	CommBits int
	// Rounds is the number of exchanges (always 1 for plain PinSketch).
	Rounds int
	// SketchesSent counts capacity-T sketches transmitted (for re-pricing
	// the payload at other signature widths, App. J.3).
	SketchesSent int
	// EncodeTime is the time spent building sketches (both parties).
	EncodeTime time.Duration
	// DecodeTime is the time spent in BCH decoding and verification.
	DecodeTime time.Duration
}

// Plain reconciles sets a and b (32-bit universes only) with a single
// sketch of capacity t. It simulates both endpoints: Bob sends sketch(B)
// plus a set checksum; Alice XORs her own sketch and decodes.
func Plain(a, b []uint64, t int, sigBits uint) (*Result, error) {
	if sigBits != 32 {
		return nil, fmt.Errorf("pinsketch: only 32-bit universes supported (got %d)", sigBits)
	}
	if t < 1 {
		return nil, fmt.Errorf("pinsketch: capacity t=%d must be >= 1", t)
	}
	sa, err := bch.New(32, t)
	if err != nil {
		return nil, err
	}
	sb := sa.Clone()
	encStart := time.Now()
	for _, x := range a {
		sa.Add(x)
	}
	for _, x := range b {
		sb.Add(x)
	}
	if err := sa.Xor(sb); err != nil {
		return nil, err
	}
	res := &Result{CommBits: t*32 + 32, Rounds: 1, EncodeTime: time.Since(encStart)}
	decStart := time.Now()
	diff, derr := sa.DecodeInto(bch.NewDecoder(), nil)
	res.DecodeTime = time.Since(decStart)
	if derr != nil {
		return res, nil // decode failure: incomplete, reported truthfully
	}
	res.Difference = diff
	res.Complete = true
	return res, nil
}

// WPConfig parameterizes PinSketch/WP.
type WPConfig struct {
	// Groups is g = d/δ.
	Groups int
	// T is the per-group error-correction capacity (same value PBS uses).
	T int
	// MaxRounds caps rounds (0 = run to completion, safety-capped).
	MaxRounds int
	// SigBits is the signature length; accounting scales with it, the
	// sketch field is always GF(2^32).
	SigBits uint
	// Seed drives the group and split hashing.
	Seed uint64
}

const splitWays = 3
const safetyRoundCap = 64

// WP reconciles a and b with hash-partitioned PinSketch: one capacity-T
// sketch per group pair, 3-way splits on decode failure, repeated until
// every group pair verifies (per-group checksum, like PBS).
func WP(a, b []uint64, cfg WPConfig) (*Result, error) {
	if cfg.Groups < 1 || cfg.T < 1 {
		return nil, fmt.Errorf("pinsketch: invalid WP config %+v", cfg)
	}
	if cfg.SigBits == 0 {
		cfg.SigBits = 32
	}
	s := cfg.Seed
	groupSeed := hashutil.SplitMix64(&s)
	splitSeed := hashutil.SplitMix64(&s)

	type scope struct {
		path []int // split path
		av   []uint64
		bv   []uint64
	}
	groupsA := make([][]uint64, cfg.Groups)
	groupsB := make([][]uint64, cfg.Groups)
	for _, x := range a {
		g := hashutil.Bucket(x, groupSeed, uint64(cfg.Groups))
		groupsA[g] = append(groupsA[g], x)
	}
	for _, x := range b {
		g := hashutil.Bucket(x, groupSeed, uint64(cfg.Groups))
		groupsB[g] = append(groupsB[g], x)
	}
	active := make([]scope, cfg.Groups)
	for g := range active {
		active[g] = scope{av: groupsA[g], bv: groupsB[g]}
	}

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 || maxRounds > safetyRoundCap {
		maxRounds = safetyRoundCap
	}
	res := &Result{}
	var diff []uint64
	// One pair of sketches and one decode workspace serve every scope of
	// every round — the same steady-state reuse as the PBS engine.
	sa := bch.MustNew(32, cfg.T)
	sb := bch.MustNew(32, cfg.T)
	ws := bch.NewDecoder()
	for round := 1; round <= maxRounds && len(active) > 0; round++ {
		res.Rounds = round
		var next []scope
		for _, sc := range active {
			encStart := time.Now()
			sa.Reset()
			for _, x := range sc.av {
				sa.Add(x)
			}
			sb.Reset()
			for _, x := range sc.bv {
				sb.Add(x)
			}
			// Bob -> Alice: sketch + checksum.
			res.CommBits += cfg.T*32 + int(cfg.SigBits)
			res.SketchesSent++
			if err := sa.Xor(sb); err != nil {
				return nil, err
			}
			res.EncodeTime += time.Since(encStart)
			decStart := time.Now()
			// Decode appends this scope's recovered elements directly onto
			// the accumulated difference; roll back on failure.
			start := len(diff)
			grownDiff, derr := sa.DecodeInto(ws, diff)
			var d []uint64
			if derr == nil {
				diff = grownDiff
				d = diff[start:]
				if !checksumOK(sc.av, sc.bv, d, cfg.SigBits) {
					derr = bch.ErrDecodeFailure // miscorrection caught by checksum
					diff = diff[:start]
				}
			}
			res.DecodeTime += time.Since(decStart)
			if derr != nil {
				// Split three ways, like PBS §3.2.
				seed := hashutil.XXH64Uint64(pathHash(sc.path), splitSeed)
				childrenA := partition(sc.av, seed)
				childrenB := partition(sc.bv, seed)
				for i := 0; i < splitWays; i++ {
					next = append(next, scope{
						path: append(append([]int{}, sc.path...), i),
						av:   childrenA[i],
						bv:   childrenB[i],
					})
				}
				continue
			}
		}
		active = next
	}
	if len(active) > 0 {
		res.Complete = false
		res.Difference = diff
		return res, nil
	}
	res.Complete = true
	res.Difference = diff
	return res, nil
}

// checksumOK verifies the decoded group difference against the plain-sum
// checksum the same way Alice does in PBS: c(A △ diff) must equal c(B).
func checksumOK(av, bv, diff []uint64, sigBits uint) bool {
	mask := ^uint64(0)
	if sigBits < 64 {
		mask = (uint64(1) << sigBits) - 1
	}
	inA := make(map[uint64]struct{}, len(av))
	var ca, cb uint64
	for _, x := range av {
		inA[x] = struct{}{}
		ca = (ca + x) & mask
	}
	for _, x := range bv {
		cb = (cb + x) & mask
	}
	for _, x := range diff {
		if _, ok := inA[x]; ok {
			ca = (ca - x) & mask
		} else {
			ca = (ca + x) & mask
		}
	}
	return ca == cb
}

func pathHash(path []int) uint64 {
	h := uint64(0x9E37)
	for _, p := range path {
		h = hashutil.XXH64Uint64(h, uint64(p)+1)
	}
	return h
}

func partition(set []uint64, seed uint64) [splitWays][]uint64 {
	var out [splitWays][]uint64
	for _, x := range set {
		c := hashutil.Bucket(x, seed, splitWays)
		out[c] = append(out[c], x)
	}
	return out
}
