// Package chaos wraps net.Conn / net.Listener with deterministic, seeded
// fault injection: per-direction latency and jitter, bandwidth caps,
// partial writes, mid-frame disconnects, byte corruption, stalls, and
// abrupt connection resets. Faults are decided per protocol frame — the
// wrapper parses the pbs wire format (4-byte big-endian length + 1 type
// byte + payload) as bytes stream through, regardless of how reads and
// writes segment them — so a fault schedule can land a failure at an exact
// protocol phase, and a whole fleet run replays byte-identically from its
// seed.
//
// The package is the fault layer behind the chaos soak: tests wrap
// net.Pipe ends, internal/load wraps each worker connection, and
// pbs-loadgen exposes it as -chaos. It deliberately knows nothing about
// pbs beyond the frame header layout.
package chaos

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is an injected fault class.
type Kind int

const (
	// Drop closes the connection mid-frame: the header and a seeded
	// prefix of the payload go out, then the transport dies.
	Drop Kind = iota
	// Reset aborts the connection at a frame boundary — with SO_LINGER(0)
	// on TCP, so the peer sees an RST instead of a clean FIN.
	Reset
	// Corrupt flips one seeded payload byte of the frame.
	Corrupt
	// Stall pauses the stream for Config.Stall before the frame proceeds.
	Stall
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Reset:
		return "reset"
	case Corrupt:
		return "corrupt"
	case Stall:
		return "stall"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Direction distinguishes faults on bytes this side sends from faults on
// bytes it receives.
type Direction int

const (
	Send Direction = iota
	Recv
)

func (d Direction) String() string {
	if d == Send {
		return "send"
	}
	return "recv"
}

// Fault pins one fault to an exact frame index in one direction — how a
// test lands a disconnect at a chosen protocol phase. Frames are counted
// per direction from 0 as they start crossing the wrapper.
type Fault struct {
	Frame int
	Dir   Direction
	Kind  Kind
}

// Event reports one injected fault to Config.OnFault.
type Event struct {
	ConnID uint64
	Dir    Direction
	Kind   Kind
	Frame  int
}

// Config parameterizes the injection. The zero value injects nothing
// (Enabled reports false) and Wrap of it is a transparent pass-through.
//
// The per-frame probabilities are evaluated once at each frame start,
// independently per direction, from the connection's seeded stream; their
// sum must not exceed 1.
type Config struct {
	// Seed derives every random decision. Two connections wrapped with the
	// same Seed and id replay identical faults for identical byte streams.
	Seed int64

	// Shaping. Latency (+ a uniform [0,Jitter) draw) is added per
	// Write/Read call in the respective direction; BandwidthBPS caps
	// outbound throughput; MaxWriteChunk splits writes into partial writes
	// of at most this many bytes (0 = unsplit).
	SendLatency   time.Duration
	SendJitter    time.Duration
	RecvLatency   time.Duration
	RecvJitter    time.Duration
	BandwidthBPS  int64
	MaxWriteChunk int

	// Per-frame fault probabilities.
	DropProb    float64
	ResetProb   float64
	CorruptProb float64
	StallProb   float64
	// Stall is the pause a Stall fault injects (default 200ms).
	Stall time.Duration

	// Schedule forces faults at exact frame indices, on top of (and
	// checked before) the probabilistic draws.
	Schedule []Fault

	// OnFault, when set, observes every injected fault. It may be called
	// from the connection's read and write paths concurrently.
	OnFault func(Event)
}

// Enabled reports whether the configuration injects or shapes anything.
func (c Config) Enabled() bool {
	return c.DropProb > 0 || c.ResetProb > 0 || c.CorruptProb > 0 || c.StallProb > 0 ||
		c.SendLatency > 0 || c.SendJitter > 0 || c.RecvLatency > 0 || c.RecvJitter > 0 ||
		c.BandwidthBPS > 0 || c.MaxWriteChunk > 0 || len(c.Schedule) > 0
}

// Validate checks the fault probabilities for range errors; Wrap assumes
// a valid configuration, so callers assembling a Config by hand (rather
// than through ParseSpec or NewListener, which validate) should call it.
func (c Config) Validate() error { return c.validate() }

func (c Config) validate() error {
	for _, p := range []float64{c.DropProb, c.ResetProb, c.CorruptProb, c.StallProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("chaos: probability %v outside [0,1]", p)
		}
	}
	if sum := c.DropProb + c.ResetProb + c.CorruptProb + c.StallProb; sum > 1 {
		return fmt.Errorf("chaos: fault probabilities sum to %v > 1", sum)
	}
	return nil
}

func (c Config) stall() time.Duration {
	if c.Stall <= 0 {
		return 200 * time.Millisecond
	}
	return c.Stall
}

// InjectedError is the error a Conn returns after it injected a Drop or
// Reset (and for every operation thereafter). It implements net.Error with
// Temporary() true, so retry classifiers treat it like the transport
// failure it simulates.
type InjectedError struct{ Kind Kind }

func (e *InjectedError) Error() string   { return "chaos: injected connection " + e.Kind.String() }
func (e *InjectedError) Timeout() bool   { return false }
func (e *InjectedError) Temporary() bool { return true }

const corruptMask = 0xA5

// dirState tracks one direction's position in the frame stream and the
// fault chosen for the frame currently crossing. It is only touched from
// that direction's Read or Write path (net.Conn's usual one-reader
// one-writer discipline), so it needs no lock.
type dirState struct {
	rng *rand.Rand

	hdr      [5]byte
	hdrN     int
	total    int // payload length of the current frame
	consumed int // payload bytes already passed through
	inFrame  bool
	idx      int // index of the current frame; -1 before the first

	hasFault  bool
	kind      Kind
	corruptAt int // payload offset to flip
	dropAfter int // payload bytes to pass before dying
}

// Conn is a fault-injecting net.Conn wrapper. Wrap builds one.
type Conn struct {
	net.Conn
	cfg Config
	id  uint64

	closedCh  chan struct{}
	closeOnce sync.Once
	abortErr  atomic.Pointer[InjectedError]

	send, recv dirState
	scratch    []byte // write-path copy, so corruption never mutates caller buffers
}

// Wrap returns conn with cfg's faults injected. id distinguishes
// connections sharing one Config: each (Seed, id) pair draws an
// independent, reproducible fault stream.
func Wrap(conn net.Conn, cfg Config, id uint64) *Conn {
	base := cfg.Seed ^ int64(id*0x9E3779B97F4A7C15)
	return &Conn{
		Conn:     conn,
		cfg:      cfg,
		id:       id,
		closedCh: make(chan struct{}),
		send:     dirState{rng: rand.New(rand.NewSource(base)), idx: -1},
		recv:     dirState{rng: rand.New(rand.NewSource(base ^ 0x6A09E667F3BCC909)), idx: -1},
	}
}

func (c *Conn) emit(dir Direction, kind Kind, frame int) {
	if c.cfg.OnFault != nil {
		c.cfg.OnFault(Event{ConnID: c.id, Dir: dir, Kind: kind, Frame: frame})
	}
}

// abort records the injected death, closes the transport (with an RST for
// resets where the transport supports lingering), and returns the error
// every subsequent operation will see.
func (c *Conn) abort(kind Kind) error {
	e := &InjectedError{Kind: kind}
	if c.abortErr.CompareAndSwap(nil, e) {
		if kind == Reset {
			if tc, ok := c.Conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
		}
		c.closeOnce.Do(func() { close(c.closedCh) })
		c.Conn.Close()
	}
	return c.abortErr.Load()
}

// sleep pauses for d, interruptibly: closing the connection wakes it.
func (c *Conn) sleep(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closedCh:
		if e := c.abortErr.Load(); e != nil {
			return e
		}
		return net.ErrClosed
	}
}

func latency(rng *rand.Rand, base, jitter time.Duration) time.Duration {
	d := base
	if jitter > 0 {
		d += time.Duration(rng.Int63n(int64(jitter)))
	}
	return d
}

// decide draws the fault for a newly started frame: the schedule first,
// then one uniform draw against the cumulative probabilities.
func (d *dirState) decide(cfg *Config, dir Direction) {
	d.idx++
	d.hasFault = false
	for _, f := range cfg.Schedule {
		if f.Frame == d.idx && f.Dir == dir {
			d.hasFault, d.kind = true, f.Kind
			return
		}
	}
	p := d.rng.Float64()
	cum := cfg.DropProb
	switch {
	case p < cum:
		d.hasFault, d.kind = true, Drop
	case p < cum+cfg.ResetProb:
		d.hasFault, d.kind = true, Reset
	case p < cum+cfg.ResetProb+cfg.CorruptProb:
		d.hasFault, d.kind = true, Corrupt
	case p < cum+cfg.ResetProb+cfg.CorruptProb+cfg.StallProb:
		d.hasFault, d.kind = true, Stall
	}
}

// resolve pins the fault's byte position once the frame length is known.
func (d *dirState) resolve() {
	if !d.hasFault {
		return
	}
	switch d.kind {
	case Corrupt:
		if d.total == 0 {
			d.hasFault = false
			return
		}
		d.corruptAt = d.rng.Intn(d.total)
	case Drop:
		d.dropAfter = d.rng.Intn(d.total + 1)
	}
}

func (d *dirState) finishFrame() {
	d.hdrN, d.inFrame, d.hasFault = 0, false, false
}

// inject walks b — the next run of stream bytes in direction dir —
// through the frame tracker, mutating it for corruption and sleeping for
// stalls. It returns how many bytes of b remain usable and, when the
// frame's fault kills the connection, the Kind to abort with after those
// bytes have been flushed (die=true). err is non-nil only when an
// interrupted stall ends the operation.
func (c *Conn) inject(d *dirState, dir Direction, b []byte) (keep int, die bool, kind Kind, err error) {
	i := 0
	for i < len(b) {
		if !d.inFrame {
			if d.hdrN == 0 {
				d.decide(&c.cfg, dir)
				if d.hasFault {
					switch d.kind {
					case Reset:
						c.emit(dir, Reset, d.idx)
						return i, true, Reset, nil
					case Stall:
						c.emit(dir, Stall, d.idx)
						if err := c.sleep(c.cfg.stall()); err != nil {
							return i, false, 0, err
						}
						d.hasFault = false
					}
				}
			}
			n := min(5-d.hdrN, len(b)-i)
			copy(d.hdr[d.hdrN:], b[i:i+n])
			d.hdrN += n
			i += n
			if d.hdrN < 5 {
				return i, false, 0, nil // header split across calls; wait for the rest
			}
			d.total = int(binary.BigEndian.Uint32(d.hdr[:4]))
			d.consumed = 0
			d.inFrame = true
			d.resolve()
			if d.hasFault && d.kind == Drop && d.dropAfter == 0 {
				c.emit(dir, Drop, d.idx)
				return i, true, Drop, nil
			}
			if d.total == 0 {
				d.finishFrame()
			}
			continue
		}
		n := min(d.total-d.consumed, len(b)-i)
		if d.hasFault && d.kind == Corrupt &&
			d.corruptAt >= d.consumed && d.corruptAt < d.consumed+n {
			b[i+(d.corruptAt-d.consumed)] ^= corruptMask
			c.emit(dir, Corrupt, d.idx)
			d.hasFault = false
		}
		if d.hasFault && d.kind == Drop && d.dropAfter < d.consumed+n {
			c.emit(dir, Drop, d.idx)
			return i + (d.dropAfter - d.consumed), true, Drop, nil
		}
		d.consumed += n
		i += n
		if d.consumed == d.total {
			d.finishFrame()
		}
	}
	return i, false, 0, nil
}

func (c *Conn) Write(p []byte) (int, error) {
	if e := c.abortErr.Load(); e != nil {
		return 0, e
	}
	if d := latency(c.send.rng, c.cfg.SendLatency, c.cfg.SendJitter); d > 0 {
		if err := c.sleep(d); err != nil {
			return 0, err
		}
	}
	b := p
	if c.cfg.CorruptProb > 0 || len(c.cfg.Schedule) > 0 {
		// Corruption must never scribble on the caller's buffer.
		c.scratch = append(c.scratch[:0], p...)
		b = c.scratch
	}
	keep, die, kind, err := c.inject(&c.send, Send, b)
	if err != nil {
		return 0, err
	}
	wrote := 0
	for wrote < keep {
		n := keep - wrote
		if c.cfg.MaxWriteChunk > 0 && n > c.cfg.MaxWriteChunk {
			n = c.cfg.MaxWriteChunk
		}
		m, werr := c.Conn.Write(b[wrote : wrote+n])
		wrote += m
		if werr != nil {
			return wrote, werr
		}
		if bps := c.cfg.BandwidthBPS; bps > 0 && m > 0 {
			if serr := c.sleep(time.Duration(float64(m) / float64(bps) * float64(time.Second))); serr != nil {
				return wrote, serr
			}
		}
	}
	if die {
		return wrote, c.abort(kind)
	}
	return len(p), nil
}

func (c *Conn) Read(p []byte) (int, error) {
	if e := c.abortErr.Load(); e != nil {
		return 0, e
	}
	if d := latency(c.recv.rng, c.cfg.RecvLatency, c.cfg.RecvJitter); d > 0 {
		if err := c.sleep(d); err != nil {
			return 0, err
		}
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		keep, die, kind, ierr := c.inject(&c.recv, Recv, p[:n])
		if ierr != nil {
			return keep, ierr
		}
		if die {
			return keep, c.abort(kind)
		}
	}
	return n, err
}

// Close closes the wrapper and the underlying connection, waking any
// injected sleep in flight.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closedCh) })
	return c.Conn.Close()
}

// CloseWrite half-closes the underlying connection when it supports it
// (the pbs server's msgError path uses this), and is a no-op otherwise.
func (c *Conn) CloseWrite() error {
	if cw, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

// Listener wraps every accepted connection with cfg, assigning sequential
// connection ids so each accept draws an independent, reproducible fault
// stream.
type Listener struct {
	net.Listener
	cfg    Config
	nextID atomic.Uint64
}

// NewListener wraps ln. The Config is validated here so a bad spec fails
// at setup, not mid-run.
func NewListener(ln net.Listener, cfg Config) (*Listener, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Listener{Listener: ln, cfg: cfg}, nil
}

func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(conn, l.cfg, l.nextID.Add(1)), nil
}

// ParseSpec parses the compact command-line fault spec pbs-loadgen's
// -chaos flag takes: comma-separated key=value pairs, e.g.
//
//	drop=0.02,reset=0.01,corrupt=0.005,stall=0.05,stall-ms=200,latency-ms=1,jitter-ms=2,bw=1000000,chunk=512,seed=7
//
// drop/reset/corrupt/stall are per-frame probabilities in [0,1];
// stall-ms the stall length; latency-ms and jitter-ms apply to both
// directions; bw caps outbound bytes/s; chunk forces partial writes; seed
// overrides the fault seed.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: bad spec entry %q (want key=value)", kv)
		}
		switch k {
		case "drop", "reset", "corrupt", "stall":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad %s=%q: %v", k, v, err)
			}
			switch k {
			case "drop":
				cfg.DropProb = p
			case "reset":
				cfg.ResetProb = p
			case "corrupt":
				cfg.CorruptProb = p
			case "stall":
				cfg.StallProb = p
			}
		case "stall-ms", "latency-ms", "jitter-ms":
			ms, err := strconv.ParseInt(v, 10, 64)
			if err != nil || ms < 0 {
				return Config{}, fmt.Errorf("chaos: bad %s=%q", k, v)
			}
			d := time.Duration(ms) * time.Millisecond
			switch k {
			case "stall-ms":
				cfg.Stall = d
			case "latency-ms":
				cfg.SendLatency, cfg.RecvLatency = d, d
			case "jitter-ms":
				cfg.SendJitter, cfg.RecvJitter = d, d
			}
		case "bw":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return Config{}, fmt.Errorf("chaos: bad bw=%q", v)
			}
			cfg.BandwidthBPS = n
		case "chunk":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Config{}, fmt.Errorf("chaos: bad chunk=%q", v)
			}
			cfg.MaxWriteChunk = n
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad seed=%q", v)
			}
			cfg.Seed = n
		default:
			return Config{}, fmt.Errorf("chaos: unknown spec key %q", k)
		}
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
