package chaos

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// frame serializes one pbs wire frame (4-byte BE length + type + payload).
func frame(typ byte, payload []byte) []byte {
	b := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(b[:4], uint32(len(payload)))
	b[4] = typ
	copy(b[5:], payload)
	return b
}

// sendAll writes b through conn in chunks of chunk bytes (0 = one write),
// exercising arbitrary segmentation against the frame tracker.
func sendAll(t *testing.T, conn net.Conn, b []byte, chunk int) error {
	t.Helper()
	if chunk <= 0 {
		chunk = len(b)
	}
	for i := 0; i < len(b); i += chunk {
		end := min(i+chunk, len(b))
		if _, err := conn.Write(b[i:end]); err != nil {
			return err
		}
	}
	return nil
}

// collect drains one pipe end until EOF/error and returns what arrived.
func collect(conn net.Conn) <-chan []byte {
	ch := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, conn)
		conn.Close()
		ch <- buf.Bytes()
	}()
	return ch
}

func TestPassThroughWhenDisabled(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	w := Wrap(a, Config{}, 1)
	got := collect(b)
	msg := append(frame(1, []byte("hello")), frame(2, nil)...)
	if err := sendAll(t, w, msg, 3); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Close()
	if out := <-got; !bytes.Equal(out, msg) {
		t.Fatalf("stream altered with zero config: got %x want %x", out, msg)
	}
}

func TestScheduledDropIsMidFrame(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	var events []Event
	cfg := Config{
		Seed:     7,
		Schedule: []Fault{{Frame: 1, Dir: Send, Kind: Drop}},
		OnFault:  func(ev Event) { events = append(events, ev) },
	}
	w := Wrap(a, cfg, 1)
	got := collect(b)
	f0 := frame(1, []byte("first frame"))
	f1 := frame(2, bytes.Repeat([]byte{0xEE}, 64))
	err := sendAll(t, w, append(append([]byte{}, f0...), f1...), 7)
	if err == nil {
		t.Fatalf("scheduled drop did not error")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Kind != Drop {
		t.Fatalf("want InjectedError{Drop}, got %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) {
		t.Fatalf("InjectedError must implement net.Error")
	}
	out := <-got
	if !bytes.HasPrefix(out, f0) {
		t.Fatalf("frame 0 did not arrive intact before the drop")
	}
	if cut := len(out) - len(f0); cut >= len(f1) {
		t.Fatalf("frame 1 arrived whole (%d bytes) despite the drop", cut)
	}
	if len(events) != 1 || events[0].Frame != 1 || events[0].Kind != Drop || events[0].Dir != Send {
		t.Fatalf("unexpected events %+v", events)
	}
	// The connection stays dead.
	if _, err := w.Write([]byte{0}); err == nil {
		t.Fatalf("write after injected drop succeeded")
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	cfg := Config{Seed: 3, Schedule: []Fault{{Frame: 0, Dir: Send, Kind: Corrupt}}}
	w := Wrap(a, cfg, 1)
	got := collect(b)
	payload := bytes.Repeat([]byte{0x11}, 100)
	orig := frame(9, payload)
	sent := append([]byte{}, orig...)
	if err := sendAll(t, w, sent, 13); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Close()
	if !bytes.Equal(sent, orig) {
		t.Fatalf("corruption mutated the caller's buffer")
	}
	out := <-got
	if len(out) != len(orig) {
		t.Fatalf("length changed: got %d want %d", len(out), len(orig))
	}
	flipped := 0
	for i := range out {
		if out[i] != orig[i] {
			flipped++
			if i < 5 {
				t.Fatalf("header byte %d corrupted; only payload bytes may flip", i)
			}
		}
	}
	if flipped != 1 {
		t.Fatalf("flipped %d bytes, want exactly 1", flipped)
	}
}

func TestStallDelaysFrame(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	stall := 80 * time.Millisecond
	cfg := Config{Seed: 5, Stall: stall, Schedule: []Fault{{Frame: 0, Dir: Send, Kind: Stall}}}
	w := Wrap(a, cfg, 1)
	got := collect(b)
	start := time.Now()
	if err := sendAll(t, w, frame(1, []byte("x")), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if el := time.Since(start); el < stall {
		t.Fatalf("stalled write returned after %v, want >= %v", el, stall)
	}
	w.Close()
	<-got
}

func TestRecvFaults(t *testing.T) {
	a, b := net.Pipe()
	cfg := Config{Seed: 11, Schedule: []Fault{{Frame: 1, Dir: Recv, Kind: Drop}}}
	w := Wrap(a, cfg, 1)
	go func() {
		b.Write(frame(1, []byte("ok")))
		b.Write(frame(2, []byte("doomed")))
	}()
	buf := make([]byte, 256)
	n, err := io.ReadFull(w, buf[:7]) // frame 0: 5 hdr + 2 payload
	if err != nil || n != 7 {
		t.Fatalf("frame 0 read: %d, %v", n, err)
	}
	if _, err := io.ReadAtLeast(w, buf, len(frame(2, []byte("doomed")))); err == nil {
		t.Fatalf("recv drop did not surface")
	}
	var ie *InjectedError
	if err := w.Close(); err != nil && !errors.As(err, &ie) {
		t.Fatalf("close: %v", err)
	}
	b.Close()
}

// TestDeterministicFaultStream replays the same byte stream through two
// wrappers with the same seed and asserts the injected faults are
// identical, and that a different connection id draws a different stream.
func TestDeterministicFaultStream(t *testing.T) {
	run := func(id uint64) []Event {
		a, b := net.Pipe()
		defer b.Close()
		var events []Event
		cfg := Config{
			Seed:        42,
			DropProb:    0.1,
			CorruptProb: 0.2,
			StallProb:   0.2,
			Stall:       time.Millisecond,
			OnFault:     func(ev Event) { events = append(events, ev) },
		}
		w := Wrap(a, cfg, id)
		got := collect(b)
		var stream []byte
		for i := 0; i < 40; i++ {
			stream = append(stream, frame(byte(i%7+1), bytes.Repeat([]byte{byte(i)}, i*3%50))...)
		}
		sendAll(t, w, stream, 11) // error (an injected drop) is fine
		w.Close()
		<-got
		return events
	}
	e1, e2 := run(1), run(1)
	if len(e1) == 0 {
		t.Fatalf("probabilistic config injected nothing over 40 frames")
	}
	if len(e1) != len(e2) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	e3 := run(2)
	same := len(e1) == len(e3)
	if same {
		for i := range e1 {
			if e1[i].Frame != e3[i].Frame || e1[i].Kind != e3[i].Kind {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different conn ids drew identical fault streams")
	}
}

func TestMaxWriteChunkSplitsWrites(t *testing.T) {
	a, b := net.Pipe()
	w := Wrap(a, Config{MaxWriteChunk: 4}, 1)
	sizes := make(chan int, 64)
	go func() {
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			if n > 0 {
				sizes <- n
			}
			if err != nil {
				close(sizes)
				return
			}
		}
	}()
	if err := sendAll(t, w, frame(1, bytes.Repeat([]byte{1}, 20)), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Close()
	b.Close()
	for n := range sizes {
		if n > 4 {
			t.Fatalf("read observed a %d-byte write, chunk cap is 4", n)
		}
	}
}

func TestListenerAssignsIDs(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	cl, err := NewListener(ln, Config{Seed: 1, DropProb: 0.5})
	if err != nil {
		t.Fatalf("NewListener: %v", err)
	}
	defer cl.Close()
	done := make(chan uint64, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := cl.Accept()
			if err != nil {
				return
			}
			done <- c.(*Conn).id
			c.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		c.Close()
	}
	ids := map[uint64]bool{<-done: true, <-done: true}
	if !ids[1] || !ids[2] {
		t.Fatalf("want conn ids {1,2}, got %v", ids)
	}
	if _, err := NewListener(ln, Config{DropProb: 2}); err == nil {
		t.Fatalf("invalid probability accepted")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("drop=0.02,reset=0.01,corrupt=0.005,stall=0.05,stall-ms=250,latency-ms=1,jitter-ms=2,bw=1000000,chunk=512,seed=7")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if cfg.DropProb != 0.02 || cfg.ResetProb != 0.01 || cfg.CorruptProb != 0.005 || cfg.StallProb != 0.05 {
		t.Fatalf("probabilities misparsed: %+v", cfg)
	}
	if cfg.Stall != 250*time.Millisecond || cfg.SendLatency != time.Millisecond ||
		cfg.RecvJitter != 2*time.Millisecond || cfg.BandwidthBPS != 1000000 ||
		cfg.MaxWriteChunk != 512 || cfg.Seed != 7 {
		t.Fatalf("shaping misparsed: %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Fatalf("parsed spec not Enabled")
	}
	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"drop", "drop=x", "drop=1.5", "nope=1", "drop=0.6,reset=0.6"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
