package wire

import "testing"

// FuzzReader exercises the bit reader against arbitrary byte streams: it
// must never panic and must respect its declared lengths.
func FuzzReader(f *testing.F) {
	f.Add([]byte{0x00}, uint8(1))
	f.Add([]byte{0xFF, 0x12, 0x34}, uint8(13))
	f.Add([]byte{}, uint8(64))
	f.Fuzz(func(t *testing.T, data []byte, widthSeed uint8) {
		r := NewReader(data)
		width := uint(widthSeed%64) + 1
		total := 0
		for {
			v, err := r.ReadBits(width)
			if err != nil {
				break
			}
			if width < 64 && v >= 1<<width {
				t.Fatalf("ReadBits(%d) returned %d bits of value %x", width, width, v)
			}
			total += int(width)
			if total > 8*len(data) {
				t.Fatal("read more bits than the buffer holds")
			}
		}
		// Varint reads must also terminate cleanly.
		r2 := NewReader(data)
		for {
			if _, err := r2.ReadUvarint(); err != nil {
				break
			}
		}
	})
}

// FuzzRoundtrip writes the fuzzed values and checks exact recovery.
func FuzzRoundtrip(f *testing.F) {
	f.Add(uint64(0), uint8(1), uint64(300))
	f.Add(^uint64(0), uint8(64), uint64(0))
	f.Fuzz(func(t *testing.T, v uint64, widthSeed uint8, uv uint64) {
		width := uint(widthSeed%64) + 1
		if width < 64 {
			v &= (1 << width) - 1
		}
		w := NewWriter()
		w.WriteBits(v, width)
		w.WriteUvarint(uv)
		w.WriteBool(v&1 == 1)
		r := NewReader(w.Bytes())
		got, err := r.ReadBits(width)
		if err != nil || got != v {
			t.Fatalf("bits roundtrip: %x/%v want %x", got, err, v)
		}
		gu, err := r.ReadUvarint()
		if err != nil || gu != uv {
			t.Fatalf("uvarint roundtrip: %d/%v want %d", gu, err, uv)
		}
		gb, err := r.ReadBool()
		if err != nil || gb != (v&1 == 1) {
			t.Fatalf("bool roundtrip")
		}
	})
}
