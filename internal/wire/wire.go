// Package wire provides bit-granular serialization used by the
// reconciliation protocols for faithful communication accounting.
//
// The paper reports communication overhead in bits (e.g. Formula (1):
// t·log n + δ·log n + δ·log|U| + log|U| per group pair), so the protocol
// messages here are bit-packed rather than byte-aligned: a BCH syndrome over
// GF(2^11) costs exactly 11 bits on the wire.
package wire

import (
	"errors"
	"fmt"
)

// Writer accumulates a bit stream, most-significant-bit first within each
// appended value.
type Writer struct {
	buf  []byte
	nbit int
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBits appends the low n bits of v (1 <= n <= 64).
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 || n > 64 {
		panic(fmt.Sprintf("wire: WriteBits width %d out of range", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<uint(i)) != 0 {
			w.buf[w.nbit/8] |= 0x80 >> uint(w.nbit%8)
		}
		w.nbit++
	}
}

// WriteBool appends a single bit.
func (w *Writer) WriteBool(b bool) {
	v := uint64(0)
	if b {
		v = 1
	}
	w.WriteBits(v, 1)
}

// WriteUvarint appends v using a 4-bit-group variable-length encoding:
// each group of 4 value bits is preceded by a continuation bit. Small
// counts (the common case for protocol headers) cost 5 bits.
func (w *Writer) WriteUvarint(v uint64) {
	for {
		group := v & 0xF
		v >>= 4
		if v != 0 {
			w.WriteBits(1, 1)
			w.WriteBits(group, 4)
		} else {
			w.WriteBits(0, 1)
			w.WriteBits(group, 4)
			return
		}
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the accumulated bit stream padded to a whole number of
// bytes. The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// ErrShortBuffer is returned when a read runs past the end of the stream.
var ErrShortBuffer = errors.New("wire: read past end of buffer")

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	buf []byte
	pos int // bit position
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits reads n bits (1 <= n <= 64) and returns them as the low bits of
// the result.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n == 0 || n > 64 {
		return 0, fmt.Errorf("wire: ReadBits width %d out of range", n)
	}
	if r.pos+int(n) > 8*len(r.buf) {
		return 0, ErrShortBuffer
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		v <<= 1
		if r.buf[r.pos/8]&(0x80>>uint(r.pos%8)) != 0 {
			v |= 1
		}
		r.pos++
	}
	return v, nil
}

// ReadBool reads a single bit.
func (r *Reader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// ReadUvarint reads a value written by WriteUvarint.
func (r *Reader) ReadUvarint() (uint64, error) {
	var v uint64
	for shift := uint(0); ; shift += 4 {
		if shift > 64 {
			return 0, errors.New("wire: uvarint overflows uint64")
		}
		cont, err := r.ReadBits(1)
		if err != nil {
			return 0, err
		}
		group, err := r.ReadBits(4)
		if err != nil {
			return 0, err
		}
		v |= group << shift
		if cont == 0 {
			return v, nil
		}
	}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return 8*len(r.buf) - r.pos }
