package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundtrip(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0x5, 3)
	w.WriteBits(0xABCD, 16)
	w.WriteBool(true)
	w.WriteBits(1, 1)
	w.WriteUvarint(300)
	w.WriteBits(0xFFFFFFFFFFFFFFFF, 64)
	if w.Len() != 3+16+1+1+(3*5)+64 { // 300 needs 9 value bits -> 3 varint groups
		t.Fatalf("bit length = %d", w.Len())
	}

	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0x5 {
		t.Fatalf("got %x", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Fatalf("got %x", v)
	}
	if b, _ := r.ReadBool(); !b {
		t.Fatal("bool mismatch")
	}
	if v, _ := r.ReadBits(1); v != 1 {
		t.Fatal("bit mismatch")
	}
	if v, _ := r.ReadUvarint(); v != 300 {
		t.Fatalf("uvarint = %d", v)
	}
	if v, _ := r.ReadBits(64); v != 0xFFFFFFFFFFFFFFFF {
		t.Fatalf("got %x", v)
	}
}

func TestRandomizedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type item struct {
		v uint64
		n uint
	}
	var items []item
	w := NewWriter()
	for i := 0; i < 5000; i++ {
		n := uint(rng.Intn(64) + 1)
		v := rng.Uint64()
		if n < 64 {
			v &= (1 << n) - 1
		}
		items = append(items, item{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes())
	for i, it := range items {
		got, err := r.ReadBits(it.n)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got != it.v {
			t.Fatalf("item %d: got %x want %x (width %d)", i, got, it.v, it.n)
		}
	}
}

func TestUvarintQuick(t *testing.T) {
	prop := func(v uint64) bool {
		w := NewWriter()
		w.WriteUvarint(v)
		r := NewReader(w.Bytes())
		got, err := r.ReadUvarint()
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestShortBuffer(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("8 bits should be available: %v", err)
	}
	if _, err := r.ReadBits(1); err != ErrShortBuffer {
		t.Fatal("stream should be exhausted")
	}
}

func TestRemaining(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0, 13)
	r := NewReader(w.Bytes())
	if r.Remaining() != 16 { // padded to 2 bytes
		t.Fatalf("remaining = %d", r.Remaining())
	}
	r.ReadBits(10)
	if r.Remaining() != 6 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WriteBits(., 0) should panic")
		}
	}()
	NewWriter().WriteBits(1, 0)
}
