package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func entry(name string, ns, allocs float64) Entry {
	return Entry{Name: name, Iterations: 10, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestComparePasses(t *testing.T) {
	base := []Entry{
		entry("Bench/kernel", 1000, 0),
		entry("Bench/api", 50000, 954),
	}
	cur := []Entry{
		entry("Bench/kernel", 1200, 0),  // +20%: within the 30% limit
		entry("Bench/api", 45000, 1000), // faster, allocs within 10% jitter
		entry("Bench/new", 77, 3),       // not in baseline: ignored
	}
	if v := Compare(base, cur, DefaultLimits); len(v) != 0 {
		t.Fatalf("clean comparison flagged: %v", v)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	base := []Entry{entry("Bench/kernel", 1000, 0)}
	cur := []Entry{entry("Bench/kernel", 1301, 0)} // +30.1%
	v := Compare(base, cur, DefaultLimits)
	if len(v) != 1 || !strings.Contains(v[0].Reason, "ns_per_op regressed") {
		t.Fatalf("want one ns regression, got %v", v)
	}
	// Exactly at the limit passes (the gate is >30%, not >=).
	cur = []Entry{entry("Bench/kernel", 1300, 0)}
	if v := Compare(base, cur, DefaultLimits); len(v) != 0 {
		t.Fatalf("at-limit value flagged: %v", v)
	}
}

func TestCompareFlagsAllocGrowth(t *testing.T) {
	base := []Entry{entry("Bench/api", 1000, 100)}
	cur := []Entry{entry("Bench/api", 1000, 111)} // +11% > 10% slack
	v := Compare(base, cur, DefaultLimits)
	if len(v) != 1 || !strings.Contains(v[0].Reason, "allocs_per_op grew") {
		t.Fatalf("want one alloc violation, got %v", v)
	}
	cur = []Entry{entry("Bench/api", 1000, 110)} // within slack
	if v := Compare(base, cur, DefaultLimits); len(v) != 0 {
		t.Fatalf("within-slack allocs flagged: %v", v)
	}
}

func TestCompareZeroAllocBaselineIsStrict(t *testing.T) {
	// The zero-alloc kernel contract: a 0-alloc baseline gets no slack.
	base := []Entry{entry("Bench/kernel", 1000, 0)}
	cur := []Entry{entry("Bench/kernel", 1000, 1)}
	v := Compare(base, cur, DefaultLimits)
	if len(v) != 1 || !strings.Contains(v[0].Reason, "allocation-free") {
		t.Fatalf("want strict zero-alloc violation, got %v", v)
	}
}

func TestCompareFlagsMissingEntry(t *testing.T) {
	base := []Entry{entry("Bench/kernel", 1000, 0), entry("Bench/gone", 10, 0)}
	cur := []Entry{entry("Bench/kernel", 1000, 0)}
	v := Compare(base, cur, DefaultLimits)
	if len(v) != 1 || !strings.Contains(v[0].Reason, "missing") {
		t.Fatalf("want one missing-entry violation, got %v", v)
	}
}

func TestCompareMultipleViolationsReported(t *testing.T) {
	base := []Entry{
		entry("Bench/a", 1000, 0),
		entry("Bench/b", 1000, 50),
	}
	cur := []Entry{
		entry("Bench/a", 5000, 2), // ns regression AND alloc growth
		entry("Bench/b", 4000, 50),
	}
	v := Compare(base, cur, DefaultLimits)
	if len(v) != 3 {
		t.Fatalf("want 3 violations (2 on a, 1 on b), got %v", v)
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`[
  {"name": "Bench/x", "iterations": 1, "ns_per_op": 42, "bytes_per_op": 0, "allocs_per_op": 0}
]`), 0o644)
	entries, err := Load(good)
	if err != nil || len(entries) != 1 || entries[0].NsPerOp != 42 {
		t.Fatalf("Load(good) = %v, %v", entries, err)
	}

	for name, body := range map[string]string{
		"empty.json":   `[]`,
		"noname.json":  `[{"iterations": 1, "ns_per_op": 1}]`,
		"garbage.json": `{not json`,
	} {
		p := filepath.Join(dir, name)
		os.WriteFile(p, []byte(body), 0o644)
		if _, err := Load(p); err == nil {
			t.Errorf("Load(%s) accepted", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("Load(absent) accepted")
	}
}

// TestLoadRealBaselines pins the committed baselines to the parseable
// format: a baseline the gate cannot read is a gate that never fires.
func TestLoadRealBaselines(t *testing.T) {
	for _, p := range []string{
		"../../testdata/bench_baselines/BENCH_decode.json",
		"../../testdata/bench_baselines/BENCH_api.json",
	} {
		entries, err := Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if len(entries) == 0 {
			t.Errorf("%s: empty", p)
		}
	}
}
