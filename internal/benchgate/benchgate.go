// Package benchgate compares a freshly measured BENCH_*.json benchmark
// file against a committed baseline and reports regressions, so CI can
// fail a build that slows a hot path or reintroduces allocations instead
// of merging it green. The JSON format is the one scripts/bench_decode.sh
// and scripts/bench_api.sh emit: an array of
//
//	{"name", "iterations", "ns_per_op", "bytes_per_op", "allocs_per_op"}
//
// Policy (see Compare): every baseline entry must still exist; ns_per_op
// may not regress beyond a configured fraction; allocs_per_op may not
// grow beyond a small jitter allowance — and an allocation-free baseline
// (allocs 0) must stay exactly allocation-free, the contract the
// zero-alloc decode kernel is built on. New benchmarks absent from the
// baseline pass freely; refresh the baseline to start gating them.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Load reads one BENCH_*.json file.
func Load(path string) ([]Entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries", path)
	}
	for _, e := range entries {
		if e.Name == "" {
			return nil, fmt.Errorf("%s: entry with empty name", path)
		}
	}
	return entries, nil
}

// Limits tunes the gate.
type Limits struct {
	// MaxNsRegress is the tolerated fractional ns_per_op growth over the
	// baseline (0.30 = fail beyond +30%).
	MaxNsRegress float64
	// AllocSlack is the tolerated fractional allocs_per_op growth for
	// baselines that do allocate — amortized one-time allocations shift a
	// little with the iteration count, and that jitter is not a
	// regression. A baseline of exactly 0 allocs gets no slack at all.
	AllocSlack float64
}

// DefaultLimits matches the CI policy: fail on >30% ns_per_op regression
// or allocs_per_op growth (10% jitter allowed when the baseline already
// allocates, none when it is allocation-free).
var DefaultLimits = Limits{MaxNsRegress: 0.30, AllocSlack: 0.10}

// Violation is one gate failure, with the numbers that triggered it.
type Violation struct {
	Name   string
	Reason string
}

func (v Violation) String() string { return v.Name + ": " + v.Reason }

// Compare checks current against baseline under lim and returns every
// violation (nil means the gate passes). Matching is by entry name;
// baseline entries missing from current are violations (a deleted or
// renamed benchmark must come with a refreshed baseline, not dodge the
// gate), current entries missing from baseline are ignored.
func Compare(baseline, current []Entry, lim Limits) []Violation {
	cur := make(map[string]Entry, len(current))
	for _, e := range current {
		cur[e.Name] = e
	}
	var out []Violation
	for _, base := range baseline {
		got, ok := cur[base.Name]
		if !ok {
			out = append(out, Violation{base.Name, "missing from current results (refresh the baseline if intentionally removed)"})
			continue
		}
		if limit := base.NsPerOp * (1 + lim.MaxNsRegress); base.NsPerOp > 0 && got.NsPerOp > limit {
			out = append(out, Violation{base.Name, fmt.Sprintf(
				"ns_per_op regressed %.0f -> %.0f (+%.1f%%, limit +%.0f%%)",
				base.NsPerOp, got.NsPerOp,
				100*(got.NsPerOp/base.NsPerOp-1), 100*lim.MaxNsRegress)})
		}
		allocLimit := base.AllocsPerOp * (1 + lim.AllocSlack)
		if got.AllocsPerOp > allocLimit {
			reason := fmt.Sprintf("allocs_per_op grew %.0f -> %.0f (limit %.1f)",
				base.AllocsPerOp, got.AllocsPerOp, allocLimit)
			if base.AllocsPerOp == 0 {
				reason = fmt.Sprintf("allocation-free benchmark now allocates (%.0f allocs/op)", got.AllocsPerOp)
			}
			out = append(out, Violation{base.Name, reason})
		}
	}
	return out
}
