// Package adaptbench measures the online adaptive controller against the
// paper-fixed configuration over real wire syncs (net.Pipe pairs driving
// Set.Sync against Set.Respond). It lives apart from the exper harness
// because it exercises the public pbs API — exper is imported by the pbs
// package's own benchmarks, so importing pbs from there would cycle.
package adaptbench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"

	"pbs"
)

// AdaptivePoint compares the adaptive controller against the paper-fixed
// configuration at one difference size, over real wire syncs. Byte and
// round figures are means per sync; the fixed arm uses a fresh Set per
// sync with WithAdaptive(false) — every parameter exactly as planned from
// the static d̂ path with the stock speculation — while the adaptive arm
// reuses one warm Set whose learned prior sizes each speculation, with no
// hand-set KnownD anywhere.
type AdaptivePoint struct {
	D              int     `json:"d"`
	Syncs          int     `json:"syncs"`
	FixedBytes     float64 `json:"fixed_bytes"`
	AdaptiveBytes  float64 `json:"adaptive_bytes"`
	FixedRounds    float64 `json:"fixed_rounds"`
	AdaptiveRounds float64 `json:"adaptive_rounds"`
	Replans        float64 `json:"replans_per_sync"`
}

// adaptiveRemote derives a peer set at symmetric difference exactly d from
// a: remove d/2 random members, add d-d/2 fresh non-members. Returns the
// peer and the ground-truth difference.
func adaptiveRemote(a []uint64, d int, rng *rand.Rand) (b, diff []uint64) {
	drop := d / 2
	add := d - drop
	in := make(map[uint64]struct{}, len(a))
	for _, x := range a {
		in[x] = struct{}{}
	}
	perm := rng.Perm(len(a))[:drop]
	dropped := make(map[int]struct{}, drop)
	for _, i := range perm {
		dropped[i] = struct{}{}
		diff = append(diff, a[i])
	}
	b = make([]uint64, 0, len(a)-drop+add)
	for i, x := range a {
		if _, ok := dropped[i]; !ok {
			b = append(b, x)
		}
	}
	for len(b) < len(a)-drop+add {
		x := uint64(rng.Uint32())
		if _, ok := in[x]; ok {
			continue
		}
		in[x] = struct{}{}
		b = append(b, x)
		diff = append(diff, x)
	}
	return b, diff
}

// adaptiveSync runs one full wire sync (net.Pipe) between initiator and a
// fresh responder built from b, verifying exact convergence.
func adaptiveSync(initiator *pbs.Set, b, want []uint64, opt pbs.Options, adaptive bool) (*pbs.Result, error) {
	responder, err := pbs.NewSet(b, pbs.WithOptions(opt))
	if err != nil {
		return nil, err
	}
	ca, cb := net.Pipe()
	respErr := make(chan error, 1)
	go func() {
		defer cb.Close()
		respErr <- responder.Respond(context.Background(), cb, pbs.WithAdaptive(adaptive))
	}()
	res, err := initiator.Sync(context.Background(), ca,
		pbs.WithFastSync(true), pbs.WithAdaptive(adaptive))
	ca.Close()
	if err != nil {
		return nil, err
	}
	if err := <-respErr; err != nil {
		return nil, err
	}
	if !res.Complete {
		return nil, fmt.Errorf("incomplete after %d rounds", res.Rounds)
	}
	got := append([]uint64(nil), res.Difference...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	exp := append([]uint64(nil), want...)
	sort.Slice(exp, func(i, j int) bool { return exp[i] < exp[j] })
	if len(got) != len(exp) {
		return nil, fmt.Errorf("difference has %d elements, want %d", len(got), len(exp))
	}
	for i := range got {
		if got[i] != exp[i] {
			return nil, fmt.Errorf("difference mismatch at %d", i)
		}
	}
	return res, nil
}

// AdaptiveSweep measures adaptive vs paper-fixed syncing at each d. Both
// arms sync the same (initiator, peer_j) sequence — the peer drifts by
// exactly d elements between syncs — and are measured identically from
// the initiator's Result. The fixed arm rebuilds the initiator each sync
// (no memory, stock DefaultSpeculativeD); the adaptive arm keeps it warm
// so the learned prior sizes speculation from the second sync on.
func AdaptiveSweep(ds []int, sizeA, syncs int, seed int64, progress io.Writer) ([]AdaptivePoint, error) {
	if syncs < 2 {
		syncs = 2
	}
	var out []AdaptivePoint
	for _, d := range ds {
		opt := pbs.Options{Seed: uint64(seed) + uint64(d)}
		rng := rand.New(rand.NewSource(seed + int64(d)*7919))
		base := make([]uint64, 0, sizeA)
		seen := make(map[uint64]struct{}, sizeA)
		for len(base) < sizeA {
			x := uint64(rng.Uint32())
			if _, ok := seen[x]; ok {
				continue
			}
			seen[x] = struct{}{}
			base = append(base, x)
		}
		// Per-sync drift varies ±25% around the nominal d: real churn is not
		// constant, and the spread exercises the prior's variance term.
		peers := make([][]uint64, syncs)
		diffs := make([][]uint64, syncs)
		for j := range peers {
			dj := d - d/4 + rng.Intn(d/2+1)
			if dj < 1 {
				dj = 1
			}
			peers[j], diffs[j] = adaptiveRemote(base, dj, rng)
		}

		warm, err := pbs.NewSet(base, pbs.WithOptions(opt))
		if err != nil {
			return nil, err
		}
		pt := AdaptivePoint{D: d, Syncs: syncs}
		for j := 0; j < syncs; j++ {
			res, err := adaptiveSync(warm, peers[j], diffs[j], opt, true)
			if err != nil {
				return nil, fmt.Errorf("exper: adaptive arm d=%d sync %d: %w", d, j, err)
			}
			pt.AdaptiveBytes += float64(res.WireBytes)
			pt.AdaptiveRounds += float64(res.Rounds)
			pt.Replans += float64(res.Replans)

			fixed, err := pbs.NewSet(base, pbs.WithOptions(opt))
			if err != nil {
				return nil, err
			}
			fres, err := adaptiveSync(fixed, peers[j], diffs[j], opt, false)
			if err != nil {
				return nil, fmt.Errorf("exper: fixed arm d=%d sync %d: %w", d, j, err)
			}
			pt.FixedBytes += float64(fres.WireBytes)
			pt.FixedRounds += float64(fres.Rounds)
		}
		n := float64(syncs)
		pt.FixedBytes /= n
		pt.AdaptiveBytes /= n
		pt.FixedRounds /= n
		pt.AdaptiveRounds /= n
		pt.Replans /= n
		out = append(out, pt)
		if progress != nil {
			fmt.Fprintf(progress, "d=%-7d fixed %8.0fB %.2f rounds | adaptive %8.0fB %.2f rounds (%.2f replans/sync)\n",
				d, pt.FixedBytes, pt.FixedRounds, pt.AdaptiveBytes, pt.AdaptiveRounds, pt.Replans)
		}
	}
	return out, nil
}
