package bloom

import (
	"math/rand"
	"testing"
)

func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewOptimal(1000, 0.01, 7)
	var inserted []uint64
	for i := 0; i < 1000; i++ {
		x := rng.Uint64()
		f.Insert(x)
		inserted = append(inserted, x)
	}
	for _, x := range inserted {
		if !f.Contains(x) {
			t.Fatalf("false negative for %#x", x)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 5000
	target := 0.02
	f := NewOptimal(n, target, 3)
	member := map[uint64]bool{}
	for i := 0; i < n; i++ {
		x := rng.Uint64()
		f.Insert(x)
		member[x] = true
	}
	fp, probes := 0, 0
	for i := 0; i < 200000; i++ {
		x := rng.Uint64()
		if member[x] {
			continue
		}
		probes++
		if f.Contains(x) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	if rate > 2.5*target {
		t.Errorf("fpr = %.4f, target %.4f", rate, target)
	}
}

func TestParams(t *testing.T) {
	m, k := Params(1000, 0.01)
	// Theory: m/n = 9.58 bits, k = 7.
	if m < 9000 || m > 10100 {
		t.Errorf("m = %d, want ~9586", m)
	}
	if k != 7 {
		t.Errorf("k = %d, want 7", k)
	}
	// Degenerate inputs must not panic or return nonsense.
	if m, k := Params(10, 1.5); m < 8 || k < 1 {
		t.Errorf("degenerate fpr: m=%d k=%d", m, k)
	}
	if m, k := Params(10, 0); m == 0 || k < 1 {
		t.Errorf("zero fpr: m=%d k=%d", m, k)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := NewOptimal(100, 0.01, 0)
	hits := 0
	for i := uint64(1); i <= 1000; i++ {
		if f.Contains(i * 2654435761) {
			hits++
		}
	}
	if hits != 0 {
		t.Errorf("empty filter reported %d members", hits)
	}
}

func TestKValidation(t *testing.T) {
	if _, err := New(100, 0, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := New(100, 17, 0); err == nil {
		t.Error("k=17 should fail")
	}
}
