// Package bloom implements a plain Bloom filter, used by the Graphene
// baseline (§7 of the PBS paper) to cheaply rule elements out of the peer's
// set before falling back to an IBF for the residue.
package bloom

import (
	"fmt"
	"math"

	"pbs/internal/hashutil"
)

// Filter is a standard Bloom filter over uint64 element IDs.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int
	seed uint64
}

// New returns an empty filter with m bits and k hash functions.
func New(m uint64, k int, seed uint64) (*Filter, error) {
	if m < 8 {
		m = 8
	}
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("bloom: k=%d out of range [1,16]", k)
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k, seed: seed}, nil
}

// Params returns the optimal bit count and hash count for storing n elements
// at false-positive rate fpr: m = −n·ln(fpr)/ln²2, k = (m/n)·ln 2.
func Params(n uint64, fpr float64) (m uint64, k int) {
	if fpr <= 0 {
		fpr = 1e-9
	}
	if fpr >= 1 {
		return 8, 1
	}
	mf := -float64(n) * math.Log(fpr) / (math.Ln2 * math.Ln2)
	m = uint64(math.Ceil(mf))
	if m < 8 {
		m = 8
	}
	kf := math.Round(mf / float64(n) * math.Ln2)
	k = int(kf)
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return m, k
}

// NewOptimal returns an empty filter sized for n elements at the given
// false-positive rate.
func NewOptimal(n uint64, fpr float64, seed uint64) *Filter {
	m, k := Params(n, fpr)
	f, err := New(m, k, seed)
	if err != nil {
		panic(err) // Params always yields valid k
	}
	return f
}

// MBits returns the filter's size in bits.
func (f *Filter) MBits() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Insert adds x.
func (f *Filter) Insert(x uint64) {
	for i := 0; i < f.k; i++ {
		p := hashutil.XXH64Uint64(x, f.seed+uint64(i)+1) % f.m
		f.bits[p/64] |= 1 << (p % 64)
	}
}

// InsertSet adds every element of set.
func (f *Filter) InsertSet(set []uint64) {
	for _, x := range set {
		f.Insert(x)
	}
}

// Contains reports whether x may be in the set (false positives possible,
// false negatives impossible).
func (f *Filter) Contains(x uint64) bool {
	for i := 0; i < f.k; i++ {
		p := hashutil.XXH64Uint64(x, f.seed+uint64(i)+1) % f.m
		if f.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}
