package exper

import (
	"fmt"
	"io"

	"pbs/internal/core"
	"pbs/internal/markov"
)

// RoundsPMF reproduces Table 2 (Appendix J.1): the empirical probability
// mass function of the number of rounds PBS needs to reconcile all distinct
// elements, with unlimited rounds allowed. It returns pmf[r] for r = 1..len.
func RoundsPMF(d, sizeA, instances int, baseSeed int64) ([]float64, error) {
	counts := map[int]int{}
	maxR := 0
	for i := 0; i < instances; i++ {
		inst, err := NewInstance(sizeA, d, baseSeed+int64(i))
		if err != nil {
			return nil, err
		}
		m, err := Run(AlgoPBS, inst, RunConfig{MaxRounds: 0})
		if err != nil {
			return nil, err
		}
		if !m.Success {
			return nil, fmt.Errorf("exper: unlimited-round PBS failed at d=%d (instance %d)", d, i)
		}
		counts[m.Rounds]++
		if m.Rounds > maxR {
			maxR = m.Rounds
		}
	}
	pmf := make([]float64, maxR)
	for r, c := range counts {
		pmf[r-1] = float64(c) / float64(instances)
	}
	return pmf, nil
}

// PrintTable1 renders the Appendix H success-probability lower-bound grid.
func PrintTable1(w io.Writer, d, delta, r int, p0 float64) {
	ts := []int{8, 9, 10, 11, 12, 13, 14, 15, 16, 17}
	ms := []uint{6, 7, 8, 9, 10, 11}
	tab := markov.BoundTable(d, delta, r, ts, ms)
	fmt.Fprintf(w, "Success-probability lower bound, d=%d δ=%d g=%d r=%d (cells ≥ %.0f%% marked *)\n",
		d, delta, markov.NumGroups(d, delta), r, p0*100)
	fmt.Fprintf(w, "%6s", "t\\n")
	for _, m := range ms {
		fmt.Fprintf(w, "%10d", (uint64(1)<<m)-1)
	}
	fmt.Fprintln(w)
	for i, t := range ts {
		fmt.Fprintf(w, "%6d", t)
		for j := range ms {
			mark := " "
			if tab[i][j] >= p0 {
				mark = "*"
			}
			fmt.Fprintf(w, "%9.1f%s", tab[i][j]*100, mark)
		}
		fmt.Fprintln(w)
	}
}

// Sec52Row holds one row of the §5.2 study: the optimal parameters and
// per-group communication for a round budget r.
type Sec52Row struct {
	R        int
	M        uint
	T        int
	CommBits int // (t+δ)·m + δ·log|U| + log|U|
}

// Sec52 computes the §5.2 optimal communication per group pair for
// r = 1..maxR (paper: 591, 402, 318, 288 bits for r = 1..4).
func Sec52(d, delta, maxR int, p0 float64, sigBits int) ([]Sec52Row, error) {
	var rows []Sec52Row
	for r := 1; r <= maxR; r++ {
		p, err := markov.Optimize(d, delta, r, p0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Sec52Row{
			R: r, M: p.M, T: p.T,
			CommBits: p.BitsPerGroup + delta*sigBits + sigBits,
		})
	}
	return rows, nil
}

// Sec53 returns the §5.3 expected proportions of distinct elements
// reconciled in rounds 1..rounds under the optimal parameters for the
// given instance (paper: 0.962, 0.0380, 3.61e−4, 2.86e−6 at d=1000,
// n=127, t=13).
func Sec53(d, delta, r int, p0 float64, rounds int) ([]float64, markov.Params, error) {
	p, err := markov.Optimize(d, delta, r, p0)
	if err != nil {
		return nil, markov.Params{}, err
	}
	c, err := markov.NewChain(p.N(), p.T)
	if err != nil {
		return nil, markov.Params{}, err
	}
	g := markov.NumGroups(d, delta)
	return c.RoundProportions(d, g, rounds), p, nil
}

// DeltaSweepPoint is one δ value's outcome in the Fig. 4 ablation.
type DeltaSweepPoint struct {
	Delta int
	Point Point
}

// DeltaSweep reproduces Figure 4: PBS at fixed d with δ varying, all other
// parameters re-optimized per δ.
func DeltaSweep(d int, deltas []int, sizeA, instances int, baseSeed int64) ([]DeltaSweepPoint, error) {
	var out []DeltaSweepPoint
	for _, delta := range deltas {
		insts := make([]*Instance, instances)
		for i := range insts {
			inst, err := NewInstance(sizeA, d, baseSeed+int64(delta)*100+int64(i))
			if err != nil {
				return nil, err
			}
			insts[i] = inst
		}
		pt := Point{D: d, Algo: AlgoPBS, Instances: instances}
		for _, inst := range insts {
			m, err := Run(AlgoPBS, inst, RunConfig{Delta: delta, MaxRounds: 3})
			if err != nil {
				return nil, err
			}
			if m.Success {
				pt.SuccessRate++
			}
			pt.CommKB += m.CommBytes / 1024
			pt.EncodeSec += m.EncodeSec
			pt.DecodeSec += m.DecodeSec
			pt.MeanRounds += float64(m.Rounds)
		}
		n := float64(instances)
		pt.SuccessRate /= n
		pt.CommKB /= n
		pt.EncodeSec /= n
		pt.DecodeSec /= n
		pt.MeanRounds /= n
		out = append(out, DeltaSweepPoint{Delta: delta, Point: pt})
	}
	return out, nil
}

// PlanFor exposes parameter planning to the harness CLI.
func PlanFor(d, delta, r int, p0 float64) (core.Plan, error) {
	return core.NewPlan(d, core.Config{Delta: delta, TargetRounds: r, TargetSuccess: p0})
}
