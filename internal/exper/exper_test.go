package exper

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRunAllAlgorithmsSucceedModerateD(t *testing.T) {
	inst, err := NewInstance(20000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algo{AlgoPBS, AlgoPinSketch, AlgoDDigest, AlgoGraphene, AlgoPinSketchWP} {
		m, err := Run(algo, inst, RunConfig{})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !m.Success {
			t.Errorf("%s failed on an easy instance (d=100, d̂=%d)", algo, inst.DHat)
		}
		if m.CommBytes <= 0 {
			t.Errorf("%s: no communication recorded", algo)
		}
		if m.EncodeSec < 0 || m.DecodeSec < 0 {
			t.Errorf("%s: negative timing", algo)
		}
	}
}

// TestFig1Shape checks the headline qualitative claims of Figure 1 on a
// reduced-scale instance set: D.Digest transmits the most; PinSketch the
// least; PBS in between at roughly 2–3× the theoretical minimum.
func TestFig1Shape(t *testing.T) {
	const d = 500
	inst, err := NewInstance(50000, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	pbsM, err := Run(AlgoPBS, inst, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	psM, err := Run(AlgoPinSketch, inst, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ddM, err := Run(AlgoDDigest, inst, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !pbsM.Success || !psM.Success || !ddM.Success {
		t.Fatalf("success: pbs=%v ps=%v dd=%v", pbsM.Success, psM.Success, ddM.Success)
	}
	min := float64(d*32) / 8 // theoretical minimum bytes
	if r := pbsM.CommBytes / min; r < 1.5 || r > 3.5 {
		t.Errorf("PBS comm = %.2fx minimum, paper reports 2.13–2.87x", r)
	}
	if r := ddM.CommBytes / min; r < 4.5 || r > 8 {
		t.Errorf("D.Digest comm = %.2fx minimum, paper reports ~6x", r)
	}
	if r := psM.CommBytes / min; r < 1.0 || r > 1.8 {
		t.Errorf("PinSketch comm = %.2fx minimum, paper reports ~1.38x", r)
	}
	if !(psM.CommBytes < pbsM.CommBytes && pbsM.CommBytes < ddM.CommBytes) {
		t.Errorf("ordering violated: ps=%.0f pbs=%.0f dd=%.0f",
			psM.CommBytes, pbsM.CommBytes, ddM.CommBytes)
	}
	// Decode time: PinSketch (O(d²)) must dwarf PBS (O(d)) at d=500.
	if psM.DecodeSec < 5*pbsM.DecodeSec {
		t.Errorf("PinSketch decode %.5fs should dwarf PBS decode %.5fs",
			psM.DecodeSec, pbsM.DecodeSec)
	}
}

// TestFig3Shape: PBS beats PinSketch/WP on communication (§8.3).
func TestFig3Shape(t *testing.T) {
	inst, err := NewInstance(30000, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	pbsM, err := Run(AlgoPBS, inst, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wpM, err := Run(AlgoPinSketchWP, inst, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !pbsM.Success || !wpM.Success {
		t.Fatal("runs failed")
	}
	if wpM.CommBytes <= pbsM.CommBytes {
		t.Errorf("PinSketch/WP comm %.0fB should exceed PBS %.0fB", wpM.CommBytes, pbsM.CommBytes)
	}
	// Fig. 5: at 256-bit signatures the margin must widen.
	gap32 := wpM.CommBytes / pbsM.CommBytes
	gap256 := wpM.CommBytes256 / pbsM.CommBytes256
	if gap256 <= gap32 {
		t.Errorf("256-bit margin (%.2fx) should exceed 32-bit margin (%.2fx)", gap256, gap32)
	}
}

func TestSweepAndPrint(t *testing.T) {
	pts, err := Sweep(SweepConfig{
		Ds:        []int{10, 50},
		Algos:     []Algo{AlgoPBS, AlgoDDigest},
		Instances: 2,
		SizeA:     5000,
		BaseSeed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	var buf bytes.Buffer
	PrintTable(&buf, pts, false)
	out := buf.String()
	for _, want := range []string{"Success rate", "Data transmitted", "Encoding time", "Decoding time", "PBS", "D.Digest"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestSweepSkipsPinSketchAboveCap(t *testing.T) {
	pts, err := Sweep(SweepConfig{
		Ds:            []int{10, 100},
		Algos:         []Algo{AlgoPinSketch},
		Instances:     1,
		SizeA:         3000,
		BaseSeed:      9,
		PinSketchMaxD: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].D != 10 {
		t.Fatalf("PinSketch should be skipped above the cap: %+v", pts)
	}
}

func TestRoundsPMF(t *testing.T) {
	pmf, err := RoundsPMF(50, 5000, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pmf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %f", sum)
	}
	if len(pmf) > 4 {
		t.Errorf("d=50 should finish within ~3 rounds, pmf spans %d", len(pmf))
	}
}

func TestSec52RowsMatchTrend(t *testing.T) {
	rows, err := Sec52(1000, 5, 4, 0.99, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatal("want 4 rows")
	}
	for i := 1; i < 4; i++ {
		if rows[i].CommBits > rows[i-1].CommBits {
			t.Errorf("comm should not grow with r: %+v", rows)
		}
	}
	if rows[3].CommBits != 288 {
		t.Errorf("r=4 comm = %d, paper says 288", rows[3].CommBits)
	}
}

func TestSec53Proportions(t *testing.T) {
	props, params, err := Sec53(1000, 5, 3, 0.99, 4)
	if err != nil {
		t.Fatal(err)
	}
	if params.M != 7 {
		t.Errorf("params m=%d, want 7", params.M)
	}
	if props[0] < 0.9 {
		t.Errorf("round-1 proportion %.3f; the paper's piecewise claim needs > 0.9", props[0])
	}
	if props[1] > 0.1 || props[2] > props[1] {
		t.Errorf("later-round proportions look wrong: %v", props)
	}
}

func TestPrintTable1Output(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf, 1000, 5, 3, 0.99)
	out := buf.String()
	if !strings.Contains(out, "2047") || !strings.Contains(out, "*") {
		t.Errorf("Table 1 output malformed:\n%s", out)
	}
}

func TestDeltaSweep(t *testing.T) {
	pts, err := DeltaSweep(200, []int{3, 10}, 10000, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("want 2 points")
	}
	for _, p := range pts {
		if p.Point.SuccessRate < 0.5 {
			t.Errorf("δ=%d: success %.2f", p.Delta, p.Point.SuccessRate)
		}
	}
	// Fig. 4b: communication decreases as δ grows.
	if pts[1].Point.CommKB >= pts[0].Point.CommKB {
		t.Errorf("comm should shrink with δ: δ=3 %.2fKB, δ=10 %.2fKB",
			pts[0].Point.CommKB, pts[1].Point.CommKB)
	}
}

func TestUnknownAlgo(t *testing.T) {
	inst, err := NewInstance(1000, 5, 17)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Algo("nope"), inst, RunConfig{}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

// TestEstimatorComparison reproduces the Appendix B claim: the ToW
// estimator is far more space-efficient than Strata at comparable (or
// better) accuracy, and min-wise is unusable at small d.
func TestEstimatorComparison(t *testing.T) {
	pts, err := EstimatorComparison([]int{200}, 20000, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EstimatorPoint{}
	for _, p := range pts {
		byName[p.Name] = p
	}
	tow, strata := byName["ToW"], byName["Strata"]
	if tow.CommBytes*10 > strata.CommBytes {
		t.Errorf("ToW (%dB) should be >=10x smaller than Strata (%dB)",
			tow.CommBytes, strata.CommBytes)
	}
	if tow.RMSRel > 0.5 {
		t.Errorf("ToW RMS relative error %.2f too large", tow.RMSRel)
	}
	if tow.MeanRel < 0.6 || tow.MeanRel > 1.5 {
		t.Errorf("ToW mean relative estimate %.2f biased", tow.MeanRel)
	}
	mw := byName["MinWise"]
	if mw.RMSRel < tow.RMSRel {
		t.Errorf("min-wise (RMS %.2f) should not beat ToW (RMS %.2f) at small d/|A|",
			mw.RMSRel, tow.RMSRel)
	}
}

// TestSweepParallelMatchesSequential: the parallel path must produce the
// same success/communication aggregates as the sequential one (timings may
// differ under contention).
func TestSweepParallelMatchesSequential(t *testing.T) {
	cfg := SweepConfig{
		Ds:        []int{40},
		Algos:     []Algo{AlgoPBS},
		Instances: 4,
		SizeA:     4000,
		BaseSeed:  21,
	}
	seq, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	par, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq[0].SuccessRate != par[0].SuccessRate || seq[0].CommKB != par[0].CommKB ||
		seq[0].MeanRounds != par[0].MeanRounds {
		t.Errorf("parallel sweep diverged: seq=%+v par=%+v", seq[0], par[0])
	}
}
