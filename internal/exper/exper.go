// Package exper is the evaluation harness: it regenerates every table and
// figure of the PBS paper's evaluation (§8, Appendices H and J) by running
// PBS and the baselines — PinSketch, Difference Digest, Graphene, and
// PinSketch/WP — over the paper's workload and reporting success rate,
// communication overhead, encoding time, and decoding time.
//
// Instances follow the paper's setup: |A| elements drawn uniformly from a
// 32-bit universe, B a uniform subsample with |A△B| = d exactly, the
// difference cardinality estimated by a 128-sketch Tug-of-War estimator
// scaled by γ = 1.38 (the estimator's 336-byte cost excluded from the
// reported communication, as in §6.2).
package exper

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"pbs/internal/core"
	"pbs/internal/ddigest"
	"pbs/internal/estimator"
	"pbs/internal/graphene"
	"pbs/internal/pinsketch"
	"pbs/internal/workload"
)

// Algo identifies a reconciliation scheme under test.
type Algo string

// The evaluated algorithms.
const (
	AlgoPBS         Algo = "PBS"
	AlgoPinSketch   Algo = "PinSketch"
	AlgoDDigest     Algo = "D.Digest"
	AlgoGraphene    Algo = "Graphene"
	AlgoPinSketchWP Algo = "PinSketch/WP"
)

// Measurement is one algorithm's outcome on one instance.
type Measurement struct {
	Success   bool
	CommBytes float64 // payload bytes, estimator excluded
	EncodeSec float64
	DecodeSec float64
	Rounds    int
	// CommBytes256 re-prices the payload at 256-bit signatures where the
	// scheme supports it (PBS and PinSketch/WP; Fig. 5), else 0.
	CommBytes256 float64
}

// RunConfig fixes the protocol-level knobs shared by a sweep.
type RunConfig struct {
	TargetSuccess float64 // p0 (0 -> 0.99)
	TargetRounds  int     // r (0 -> 3)
	MaxRounds     int     // protocol round cap (0 -> unlimited)
	Delta         int     // δ (0 -> 5)
	SigBits       uint    // accounting signature width (0 -> 32)
	GrapheneTau   float64 // IBF headroom for Graphene (0 -> default)
}

func (c RunConfig) withDefaults() RunConfig {
	if c.TargetSuccess == 0 {
		c.TargetSuccess = 0.99
	}
	if c.TargetRounds == 0 {
		c.TargetRounds = 3
	}
	if c.Delta == 0 {
		c.Delta = 5
	}
	if c.SigBits == 0 {
		c.SigBits = 32
	}
	return c
}

// Instance bundles a workload pair with its shared difference estimates.
type Instance struct {
	Pair *workload.Pair
	// DHat is the conservative γ-scaled ToW estimate (1.38·d̂), used by PBS
	// and for PinSketch's error-correction capacity t = 1.38·d̂ (§8.1.1).
	DHat int
	// DHatRaw is the unscaled ToW estimate, used by D.Digest (2·d̂ cells)
	// and Graphene, which carry their own slack.
	DHatRaw int
	Seed    uint64
}

// NewInstance generates a pair and estimates its difference cardinality.
func NewInstance(sizeA, d int, seed int64) (*Instance, error) {
	pair, err := workload.Generate(workload.Config{
		UniverseBits: 32, SizeA: sizeA, D: d, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	tow, err := estimator.NewToW(estimator.DefaultSketches, uint64(seed)^0xE57)
	if err != nil {
		return nil, err
	}
	dhat, _, err := tow.EstimateD(pair.A, pair.B, estimator.DefaultGamma)
	if err != nil {
		return nil, err
	}
	raw := estimator.ConservativeD(float64(dhat)/estimator.DefaultGamma, 1)
	return &Instance{Pair: pair, DHat: dhat, DHatRaw: raw, Seed: uint64(seed)}, nil
}

// correct reports whether got equals the ground-truth difference.
func correct(got, want []uint64) bool {
	if len(got) != len(want) {
		return false
	}
	g := append([]uint64(nil), got...)
	w := append([]uint64(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	for i := range g {
		if g[i] != w[i] {
			return false
		}
	}
	return true
}

// Run executes one algorithm on one instance.
func Run(algo Algo, inst *Instance, cfg RunConfig) (Measurement, error) {
	cfg = cfg.withDefaults()
	switch algo {
	case AlgoPBS:
		return runPBS(inst, cfg)
	case AlgoPinSketch:
		return runPinSketch(inst, cfg)
	case AlgoDDigest:
		return runDDigest(inst, cfg)
	case AlgoGraphene:
		return runGraphene(inst, cfg)
	case AlgoPinSketchWP:
		return runPinSketchWP(inst, cfg)
	}
	return Measurement{}, fmt.Errorf("exper: unknown algorithm %q", algo)
}

func runPBS(inst *Instance, cfg RunConfig) (Measurement, error) {
	plan, err := core.NewPlan(inst.DHat, core.Config{
		Delta:         cfg.Delta,
		TargetRounds:  cfg.TargetRounds,
		TargetSuccess: cfg.TargetSuccess,
		SigBits:       cfg.SigBits,
		Seed:          inst.Seed*2654435761 + 1,
		MaxRounds:     cfg.MaxRounds,
		// The paper's computation measurements are sequential CPU costs
		// compared against sequential baselines, so the experiments pin
		// the reference path rather than inherit the GOMAXPROCS default.
		Parallelism: 1,
	})
	if err != nil {
		return Measurement{}, err
	}
	alice, err := core.NewAlice(inst.Pair.A, plan)
	if err != nil {
		return Measurement{}, err
	}
	bob, err := core.NewBob(inst.Pair.B, plan)
	if err != nil {
		return Measurement{}, err
	}
	res, err := core.Drive(alice, bob, plan.MaxRounds)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Success:      res.Complete && correct(res.Difference, inst.Pair.Diff),
		CommBytes:    float64(res.Stats.TotalPayloadBytes()),
		EncodeSec:    (alice.EncodeTime() + bob.EncodeTime()).Seconds(),
		DecodeSec:    (alice.DecodeTime() + bob.DecodeTime()).Seconds(),
		Rounds:       res.Stats.Rounds,
		CommBytes256: float64(res.Stats.PayloadBitsAt(256)) / 8,
	}, nil
}

func runPinSketch(inst *Instance, cfg RunConfig) (Measurement, error) {
	// §8.1.1: t = 1.38·d̂ so that Pr[d <= t] >= 0.99. DHat already carries
	// the γ factor.
	res, err := pinsketch.Plain(inst.Pair.A, inst.Pair.B, maxInt(inst.DHat, 1), 32)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Success:   res.Complete && correct(res.Difference, inst.Pair.Diff),
		CommBytes: float64(res.CommBits) / 8,
		EncodeSec: res.EncodeTime.Seconds(),
		DecodeSec: res.DecodeTime.Seconds(),
		Rounds:    1,
	}, nil
}

func runDDigest(inst *Instance, cfg RunConfig) (Measurement, error) {
	res, err := ddigest.Reconcile(inst.Pair.A, inst.Pair.B, inst.DHatRaw, cfg.SigBits, inst.Seed^0xDD)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Success:   res.Complete && correct(res.Difference, inst.Pair.Diff),
		CommBytes: float64(res.CommBits) / 8,
		EncodeSec: res.EncodeTime.Seconds(),
		DecodeSec: res.DecodeTime.Seconds(),
		Rounds:    1,
	}, nil
}

func runGraphene(inst *Instance, cfg RunConfig) (Measurement, error) {
	res, err := graphene.Reconcile(inst.Pair.A, inst.Pair.B, graphene.Config{
		DHat:    inst.DHatRaw,
		SigBits: cfg.SigBits,
		Seed:    inst.Seed ^ 0x6EA,
		Tau:     cfg.GrapheneTau,
	})
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Success:   res.Complete && correct(res.Difference, inst.Pair.Diff),
		CommBytes: float64(res.CommBits) / 8,
		EncodeSec: res.EncodeTime.Seconds(),
		DecodeSec: res.DecodeTime.Seconds(),
		Rounds:    1,
	}, nil
}

func runPinSketchWP(inst *Instance, cfg RunConfig) (Measurement, error) {
	// §8.3: same δ and t values as PBS.
	plan, err := core.NewPlan(inst.DHat, core.Config{
		Delta:         cfg.Delta,
		TargetRounds:  cfg.TargetRounds,
		TargetSuccess: cfg.TargetSuccess,
		SigBits:       cfg.SigBits,
	})
	if err != nil {
		return Measurement{}, err
	}
	res, err := pinsketch.WP(inst.Pair.A, inst.Pair.B, pinsketch.WPConfig{
		Groups:    plan.Groups,
		T:         plan.T,
		MaxRounds: cfg.MaxRounds,
		SigBits:   cfg.SigBits,
		Seed:      inst.Seed ^ 0x3F,
	})
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Success:      res.Complete && correct(res.Difference, inst.Pair.Diff),
		CommBytes:    float64(res.CommBits) / 8,
		EncodeSec:    res.EncodeTime.Seconds(),
		DecodeSec:    res.DecodeTime.Seconds(),
		Rounds:       res.Rounds,
		CommBytes256: float64(res.SketchesSent*(plan.T*256+256)) / 8, // GF(2^256) symbols
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Point is an aggregated sweep result for one (d, algorithm) pair.
type Point struct {
	D           int
	Algo        Algo
	Instances   int
	SuccessRate float64
	CommKB      float64 // mean payload KB
	CommKB256   float64 // mean payload KB at 256-bit signatures (0 if n/a)
	EncodeSec   float64 // mean
	DecodeSec   float64 // mean
	MeanRounds  float64
}

// SweepConfig drives a figure-style sweep.
type SweepConfig struct {
	Ds        []int
	Algos     []Algo
	Instances int
	SizeA     int
	BaseSeed  int64
	Run       RunConfig
	// PinSketchMaxD skips plain PinSketch above this d (its decoding is
	// O(d²); the paper itself could not run it past 30,000).
	PinSketchMaxD int
	// Parallel runs up to this many instances concurrently per data point
	// (0 or 1 = sequential). Under parallelism the encode/decode timings
	// include scheduler contention, so use it for success-rate and
	// communication sweeps rather than timing-sensitive figures.
	Parallel int
	// Progress, if non-nil, receives one line per (d, algo) as it finishes.
	Progress io.Writer
}

// Sweep runs the configured grid and returns one aggregated Point per
// (d, algo). Instances are shared across algorithms at each d, mirroring
// the paper's methodology.
func Sweep(cfg SweepConfig) ([]Point, error) {
	if cfg.Instances < 1 {
		cfg.Instances = 1
	}
	if cfg.SizeA == 0 {
		cfg.SizeA = 100000
	}
	if cfg.PinSketchMaxD == 0 {
		cfg.PinSketchMaxD = 2000
	}
	var out []Point
	for _, d := range cfg.Ds {
		insts := make([]*Instance, cfg.Instances)
		for i := range insts {
			inst, err := NewInstance(cfg.SizeA, d, cfg.BaseSeed+int64(d)*1000+int64(i))
			if err != nil {
				return nil, err
			}
			insts[i] = inst
		}
		for _, algo := range cfg.Algos {
			if algo == AlgoPinSketch && d > cfg.PinSketchMaxD {
				continue
			}
			pt := Point{D: d, Algo: algo, Instances: cfg.Instances}
			start := time.Now()
			ms, err := runInstances(algo, insts, cfg.Run, cfg.Parallel)
			if err != nil {
				return nil, fmt.Errorf("exper: %s at d=%d: %w", algo, d, err)
			}
			for _, m := range ms {
				if m.Success {
					pt.SuccessRate++
				}
				pt.CommKB += m.CommBytes / 1024
				pt.CommKB256 += m.CommBytes256 / 1024
				pt.EncodeSec += m.EncodeSec
				pt.DecodeSec += m.DecodeSec
				pt.MeanRounds += float64(m.Rounds)
			}
			n := float64(cfg.Instances)
			pt.SuccessRate /= n
			pt.CommKB /= n
			pt.CommKB256 /= n
			pt.EncodeSec /= n
			pt.DecodeSec /= n
			pt.MeanRounds /= n
			out = append(out, pt)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "d=%-7d %-13s success=%.3f comm=%.2fKB enc=%.4fs dec=%.6fs rounds=%.2f (%.1fs)\n",
					d, algo, pt.SuccessRate, pt.CommKB, pt.EncodeSec, pt.DecodeSec, pt.MeanRounds,
					time.Since(start).Seconds())
			}
		}
	}
	return out, nil
}

// PrintTable renders sweep points as an aligned table, one block per
// metric, matching the four panels (a–d) of the paper's figures.
func PrintTable(w io.Writer, points []Point, with256 bool) {
	metrics := []struct {
		name string
		get  func(Point) float64
		fmtS string
	}{
		{"Success rate", func(p Point) float64 { return p.SuccessRate }, "%12.4f"},
		{"Data transmitted (KB)", func(p Point) float64 { return p.CommKB }, "%12.3f"},
		{"Encoding time (s)", func(p Point) float64 { return p.EncodeSec }, "%12.5f"},
		{"Decoding time (s)", func(p Point) float64 { return p.DecodeSec }, "%12.6f"},
	}
	if with256 {
		metrics = append(metrics, struct {
			name string
			get  func(Point) float64
			fmtS string
		}{"Data transmitted @256-bit IDs (KB)", func(p Point) float64 { return p.CommKB256 }, "%12.3f"})
	}
	ds, algos := axes(points)
	idx := map[[2]string]Point{}
	for _, p := range points {
		idx[[2]string{fmt.Sprint(p.D), string(p.Algo)}] = p
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "\n== %s ==\n%-10s", m.name, "d")
		for _, a := range algos {
			fmt.Fprintf(w, "%13s", a)
		}
		fmt.Fprintln(w)
		for _, d := range ds {
			fmt.Fprintf(w, "%-10d", d)
			for _, a := range algos {
				if p, ok := idx[[2]string{fmt.Sprint(d), string(a)}]; ok {
					fmt.Fprintf(w, " "+m.fmtS, m.get(p))
				} else {
					fmt.Fprintf(w, "%13s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// runInstances executes one algorithm over all instances, optionally with
// a bounded worker pool.
func runInstances(algo Algo, insts []*Instance, run RunConfig, parallel int) ([]Measurement, error) {
	out := make([]Measurement, len(insts))
	if parallel <= 1 {
		for i, inst := range insts {
			m, err := Run(algo, inst, run)
			if err != nil {
				return nil, err
			}
			out[i] = m
		}
		return out, nil
	}
	jobs := make(chan int)
	errs := make(chan error, len(insts))
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				m, err := Run(algo, insts[i], run)
				if err != nil {
					errs <- err
					continue
				}
				out[i] = m
			}
		}()
	}
	for i := range insts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func axes(points []Point) ([]int, []Algo) {
	dset := map[int]bool{}
	aset := map[Algo]bool{}
	var ds []int
	var algos []Algo
	for _, p := range points {
		if !dset[p.D] {
			dset[p.D] = true
			ds = append(ds, p.D)
		}
		if !aset[p.Algo] {
			aset[p.Algo] = true
			algos = append(algos, p.Algo)
		}
	}
	sort.Ints(ds)
	return ds, algos
}
