package exper

import (
	"math"

	"pbs/internal/estimator"
	"pbs/internal/workload"
)

// EstimatorPoint is one estimator's aggregated accuracy/cost at one d —
// the Appendix B comparison ("the ToW estimator is much more
// space-efficient according to our experiments"; the paper omits the
// table, so this reproduces the claim it summarizes).
type EstimatorPoint struct {
	Name      string
	D         int
	CommBytes int     // one-way sketch size
	MeanRel   float64 // mean of d̂/d
	RMSRel    float64 // RMS relative error of d̂
	Coverage  float64 // Pr[d <= 1.38·d̂] (safety-factor coverage)
}

// EstimatorComparison runs ToW (ℓ=128), Strata (32×80 cells), and min-wise
// (k=1024, sized to roughly Strata's cost) on the same instances.
func EstimatorComparison(ds []int, sizeA, instances int, baseSeed int64) ([]EstimatorPoint, error) {
	var out []EstimatorPoint
	for _, d := range ds {
		accs := map[string]*estAcc{"ToW": {}, "Strata": {}, "MinWise": {}}
		for i := 0; i < instances; i++ {
			pair, err := workload.Generate(workload.Config{
				UniverseBits: 32, SizeA: sizeA, D: d, Seed: baseSeed + int64(d)*37 + int64(i),
			})
			if err != nil {
				return nil, err
			}
			seed := uint64(baseSeed) + uint64(i)*1000 + uint64(d)

			tow, err := estimator.NewToW(estimator.DefaultSketches, seed)
			if err != nil {
				return nil, err
			}
			dhat, err := tow.Estimate(tow.Sketch(pair.A), tow.Sketch(pair.B))
			if err != nil {
				return nil, err
			}
			record(accs["ToW"], dhat, d)
			accs["ToW"].bytes = (tow.Bits(sizeA) + 7) / 8

			st := estimator.NewStrata(seed)
			dhat, err = st.Estimate(st.Sketch(pair.A), st.Sketch(pair.B))
			if err != nil {
				return nil, err
			}
			record(accs["Strata"], dhat, d)
			accs["Strata"].bytes = st.Bits(32) / 8

			mw, err := estimator.NewMinWise(1024, seed)
			if err != nil {
				return nil, err
			}
			dhat, err = mw.Estimate(mw.Sketch(pair.A), mw.Sketch(pair.B), len(pair.A), len(pair.B))
			if err != nil {
				return nil, err
			}
			record(accs["MinWise"], dhat, d)
			accs["MinWise"].bytes = mw.Bits() / 8
		}
		for _, name := range []string{"ToW", "Strata", "MinWise"} {
			a := accs[name]
			n := float64(instances)
			out = append(out, EstimatorPoint{
				Name:      name,
				D:         d,
				CommBytes: a.bytes,
				MeanRel:   a.sumRel / n,
				RMSRel:    math.Sqrt(a.sumSq / n),
				Coverage:  a.covered / n,
			})
		}
	}
	return out, nil
}

// estAcc accumulates one estimator's per-instance statistics.
type estAcc struct {
	sumRel, sumSq, covered float64
	bytes                  int
}

func record(a *estAcc, dhat float64, d int) {
	rel := dhat / float64(d)
	a.sumRel += rel
	a.sumSq += (rel - 1) * (rel - 1)
	if float64(d) <= estimator.DefaultGamma*dhat {
		a.covered++
	}
}
