package bch

import (
	"math/rand"
	"testing"
)

// FuzzBCHRoundTrip encodes two random sets, XORs their sketches, decodes
// the symmetric difference, and cross-checks three properties:
//
//  1. within capacity, the decode must recover exactly A△B;
//  2. DecodeInto through a reused (dirty) workspace must agree with a
//     fresh Decode call on both the result and the error;
//  3. over capacity, a decode must either fail or — in the
//     astronomically unlikely miscorrection case — still agree between
//     the two code paths.
func FuzzBCHRoundTrip(f *testing.F) {
	f.Add(uint64(42), uint64(11), uint64(13), uint64(5), uint64(7))
	f.Add(uint64(1), uint64(6), uint64(3), uint64(0), uint64(0))
	f.Add(uint64(99), uint64(8), uint64(4), uint64(9), uint64(9))
	f.Add(uint64(7), uint64(13), uint64(2), uint64(40), uint64(1))
	f.Add(uint64(123456), uint64(16), uint64(8), uint64(20), uint64(15))

	ws := NewDecoder() // deliberately shared across fuzz cases: must stay clean
	f.Fuzz(func(t *testing.T, seed, mRaw, tRaw, naRaw, nbRaw uint64) {
		m := uint(2 + mRaw%15) // 2..16: the table-field hot path
		tcap := int(1 + tRaw%20)
		if uint64(tcap) > (uint64(1)<<m-1)/2 {
			tcap = int((uint64(1)<<m - 1) / 2)
		}
		universe := uint64(1)<<m - 1
		na := naRaw % 64
		nb := nbRaw % 64
		if na > universe {
			na = universe
		}
		if nb > universe {
			nb = universe
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		// Draw both sets from a shared pool so they overlap often.
		pool := distinctElems(rng, m, int(min(universe, na+nb)))
		setA := map[uint64]struct{}{}
		setB := map[uint64]struct{}{}
		for i := uint64(0); len(pool) > 0 && i < na; i++ {
			setA[pool[rng.Intn(len(pool))]] = struct{}{}
		}
		for i := uint64(0); len(pool) > 0 && i < nb; i++ {
			setB[pool[rng.Intn(len(pool))]] = struct{}{}
		}

		sa := MustNew(m, tcap)
		sb := MustNew(m, tcap)
		var trueDiff []uint64
		for x := range setA {
			sa.Add(x)
			if _, in := setB[x]; !in {
				trueDiff = append(trueDiff, x)
			}
		}
		for x := range setB {
			sb.Add(x)
			if _, in := setA[x]; !in {
				trueDiff = append(trueDiff, x)
			}
		}
		if err := sa.Xor(sb); err != nil {
			t.Fatal(err)
		}

		fresh, freshErr := sa.Decode()
		reused, reusedErr := sa.DecodeInto(ws, nil)
		if (freshErr == nil) != (reusedErr == nil) {
			t.Fatalf("Decode err=%v but DecodeInto err=%v", freshErr, reusedErr)
		}
		if freshErr == nil {
			equalSets(t, reused, fresh)
		}
		if len(trueDiff) <= tcap {
			if freshErr != nil {
				t.Fatalf("within-capacity decode failed: |diff|=%d t=%d m=%d: %v",
					len(trueDiff), tcap, m, freshErr)
			}
			equalSets(t, fresh, trueDiff)
		}
	})
}
