package bch

import (
	"slices"

	"pbs/internal/gf2"
)

// Decoder is a reusable decode workspace: syndrome expansion, the
// Berlekamp–Massey connection-polynomial buffers, the Chien-search state,
// and the recovered-element and verification buffers. Repeated
// DecodeInto calls through the same warmed-up Decoder perform zero heap
// allocations for table-backed fields (m ≤ 16, the PBS hot path).
//
// A Decoder is not safe for concurrent use; give each worker its own.
// One Decoder may serve sketches of different shapes — the buffers grow
// to the largest shape seen.
type Decoder struct {
	syn   []uint64 // full syndrome sequence σ_1..σ_2t (index 0 unused)
	c     []uint64 // BM connection polynomial Λ
	b     []uint64 // BM previous connection polynomial
	tmp   []uint64 // BM update scratch
	chien gf2.Chien
	roots []uint64 // locator-root exponents from the Chien scan
	elems []uint64 // recovered elements awaiting verification
	check []uint64 // recomputed odd syndromes
}

// NewDecoder returns an empty decode workspace. Buffers are sized on
// first use.
func NewDecoder() *Decoder { return &Decoder{} }

// grown returns s with length n and every element zeroed, reusing the
// backing array when large enough.
func grown(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// withCap returns s emptied, with capacity at least n.
func withCap(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, 0, n)
	}
	return s[:0]
}

// DecodeInto recovers the sketched set using ws as scratch space and
// appends the recovered elements to dst in ascending order, returning the
// extended slice. On failure it returns dst unchanged alongside
// ErrDecodeFailure. A nil ws allocates a throwaway workspace; passing a
// reused one makes steady-state decoding allocation-free (for m ≤ 16 —
// larger fields fall back to the allocating trace root-finder).
func (s *Sketch) DecodeInto(ws *Decoder, dst []uint64) ([]uint64, error) {
	if ws == nil {
		ws = NewDecoder()
	}
	if s.Empty() {
		return dst, nil
	}
	f, t := s.f, s.t
	// Build the full syndrome sequence syn[1..2t] using σ_{2k} = σ_k².
	ws.syn = grown(ws.syn, 2*t+1)
	syn := ws.syn
	for i := 1; i <= 2*t; i++ {
		if i%2 == 1 {
			syn[i] = s.odd[(i-1)/2]
		} else {
			syn[i] = f.Sqr(syn[i/2])
		}
	}
	locator := ws.berlekampMassey(f, syn[1:])
	deg := len(locator) - 1
	if deg < 1 || deg > t {
		return dst, ErrDecodeFailure
	}
	ws.elems = withCap(ws.elems, deg)
	switch {
	case deg == 1:
		// Λ = c0 + c1·x has the single root c0/c1, whose inverse — the
		// recovered element — is c1/c0. No search needed.
		ws.elems = append(ws.elems, f.Div(locator[1], locator[0]))
	case deg == 2 && f.M()%2 == 1:
		// Quadratics over odd-degree fields solve in closed form via the
		// half-trace. (Most PBS rounds beyond the first leave 1–2 differing
		// bins per group, so these two shortcuts carry the late rounds.)
		e1, e2, ok := solveQuadratic(f, locator[0], locator[1], locator[2])
		if !ok {
			return dst, ErrDecodeFailure
		}
		ws.elems = append(ws.elems, e1, e2)
	case ws.chien.Init(f, locator):
		// True Chien search: the locator Λ(x) = Π (1 − X_i·x) is evaluated
		// at α^0, α^1, ... by per-term constant multiplies; a root α^i
		// reveals the element X = (α^i)^{-1} = α^(ord−i).
		ws.roots = ws.chien.Zeros(withCap(ws.roots, deg), deg)
		if len(ws.roots) != deg {
			return dst, ErrDecodeFailure
		}
		ord := f.Order()
		for _, i := range ws.roots {
			ws.elems = append(ws.elems, f.Exp(ord-i))
		}
	default:
		// No log tables (m > 16): Berlekamp trace root finding.
		roots, err := traceRootFind(f, gf2.Poly(locator))
		if err != nil {
			return dst, err
		}
		if len(roots) != deg {
			return dst, ErrDecodeFailure
		}
		for _, r := range roots {
			ws.elems = append(ws.elems, f.Inv(r))
		}
	}
	// Robust failure detection (§3.2): recompute the odd syndromes from the
	// recovered elements and require an exact match. When the true
	// difference exceeds t, Berlekamp–Massey may still emit a fully-rooted
	// locator; this recheck catches essentially all such miscorrections.
	ws.check = grown(ws.check, t)
	check := ws.check
	for _, x := range ws.elems {
		w := f.Window(f.Sqr(x))
		p := x
		for k := 0; k < t; k++ {
			check[k] ^= p
			if k+1 < t {
				p = w.Mul(p)
			}
		}
	}
	for k := range check {
		if check[k] != s.odd[k] {
			return dst, ErrDecodeFailure
		}
	}
	slices.Sort(ws.elems)
	return append(dst, ws.elems...), nil
}

// solveQuadratic returns the two recovered elements (inverse roots) of the
// locator c0 + c1·x + c2·x² over an odd-degree field, or ok = false when
// the quadratic has no pair of distinct roots in the field (which signals
// a miscorrection). All three coefficients are nonzero for a trimmed
// locator from Berlekamp–Massey (c0 = 1 by construction).
func solveQuadratic(f *gf2.Field, c0, c1, c2 uint64) (e1, e2 uint64, ok bool) {
	if c1 == 0 {
		return 0, 0, false // double root: locator not squarefree
	}
	// Substituting x = (c1/c2)·y turns the quadratic into the Artin–
	// Schreier form y² + y = u with u = c0·c2/c1², solvable iff Tr(u) = 0.
	u := f.Div(f.Mul(c0, c2), f.Sqr(c1))
	if u == 0 || f.Trace(u) != 0 {
		return 0, 0, false
	}
	y1 := f.HalfTrace(u)
	y2 := y1 ^ 1
	// u ≠ 0 rules y1, y2 out of {0, 1}, so both inversions are safe.
	// Undoing the substitution, the elements are x^{-1} = c2/(c1·y).
	s := f.Div(c2, c1)
	return f.Mul(s, f.Inv(y1)), f.Mul(s, f.Inv(y2)), true
}

// berlekampMassey computes the minimal LFSR (the error locator polynomial)
// for the syndrome sequence syn[0..2t-1] entirely inside the workspace
// buffers. The returned slice (trailing zeros trimmed) aliases workspace
// memory and is valid until the next call.
func (ws *Decoder) berlekampMassey(f *gf2.Field, syn []uint64) []uint64 {
	n2 := len(syn)
	ws.c = withCap(ws.c, n2+2)
	ws.b = withCap(ws.b, n2+2)
	ws.tmp = withCap(ws.tmp, n2+2)
	c := append(ws.c, 1) // connection polynomial Λ
	b := append(ws.b, 1)
	tmp := ws.tmp
	var l int
	shift := 1
	bInv := uint64(1) // inverse of the last nonzero discrepancy
	for n := 0; n < n2; n++ {
		// Discrepancy d = syn[n] + Σ_{i=1}^{l} c[i]·syn[n−i].
		d := syn[n]
		for i := 1; i <= l && i < len(c); i++ {
			d ^= f.Mul(c[i], syn[n-i])
		}
		if d == 0 {
			shift++
			continue
		}
		coef := f.Mul(d, bInv)
		// tmp = c − coef·x^shift·b, built in scratch so c survives intact
		// in case it must become the next b.
		need := len(b) + shift
		if need < len(c) {
			need = len(c)
		}
		tmp = append(tmp[:0], c...)
		for len(tmp) < need {
			tmp = append(tmp, 0)
		}
		w := f.Window(coef)
		for i, bi := range b {
			if bi != 0 {
				tmp[i+shift] ^= w.Mul(bi)
			}
		}
		if 2*l <= n {
			c, b, tmp = tmp, c, b
			bInv = f.Inv(d)
			l = n + 1 - l
			shift = 1
		} else {
			c, tmp = tmp, c
			shift++
		}
	}
	// Trim trailing zeros without disturbing l-consistency checks upstream.
	for len(c) > 0 && c[len(c)-1] == 0 {
		c = c[:len(c)-1]
	}
	// Store the rotated buffers back so their capacity is reused next call.
	ws.c, ws.b, ws.tmp = c, b, tmp
	return c
}
