package bch

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pbs/internal/wire"
)

func sorted(xs []uint64) []uint64 {
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func equalSets(t *testing.T, got, want []uint64) {
	t.Helper()
	g, w := sorted(got), sorted(want)
	if len(g) != len(w) {
		t.Fatalf("set size mismatch: got %d want %d (%v vs %v)", len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("set mismatch at %d: got %v want %v", i, g, w)
		}
	}
}

// distinctElems draws k distinct nonzero elements of GF(2^m).
func distinctElems(rng *rand.Rand, m uint, k int) []uint64 {
	seen := map[uint64]bool{}
	out := make([]uint64, 0, k)
	mask := (uint64(1) << m) - 1
	for len(out) < k {
		x := rng.Uint64() & mask
		if x == 0 || seen[x] {
			continue
		}
		seen[x] = true
		out = append(out, x)
	}
	return out
}

func TestDecodeSmallFields(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []uint{6, 7, 8, 11} {
		for _, k := range []int{0, 1, 2, 5, 13} {
			t.Run("", func(t *testing.T) {
				s := MustNew(m, 13)
				elems := distinctElems(rng, m, k)
				s.AddSet(elems)
				got, err := s.Decode()
				if err != nil {
					t.Fatalf("m=%d k=%d: %v", m, k, err)
				}
				equalSets(t, got, elems)
			})
		}
	}
}

func TestDecodeGF32(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, k := range []int{0, 1, 3, 10, 20} {
		s := MustNew(32, 20)
		elems := distinctElems(rng, 32, k)
		s.AddSet(elems)
		got, err := s.Decode()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		equalSets(t, got, elems)
	}
}

func TestXorGivesSymmetricDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := uint(11)
	common := distinctElems(rng, m, 40)
	onlyA := []uint64{5, 9, 1000}
	onlyB := []uint64{6, 77}
	// Ensure disjointness of the hand-picked extras from common.
	inCommon := map[uint64]bool{}
	for _, c := range common {
		inCommon[c] = true
	}
	for _, x := range append(append([]uint64{}, onlyA...), onlyB...) {
		if inCommon[x] {
			t.Skip("unlucky seed produced overlap; adjust seed")
		}
	}
	sa := MustNew(m, 8)
	sb := MustNew(m, 8)
	sa.AddSet(common)
	sa.AddSet(onlyA)
	sb.AddSet(common)
	sb.AddSet(onlyB)
	if err := sa.Xor(sb); err != nil {
		t.Fatal(err)
	}
	got, err := sa.Decode()
	if err != nil {
		t.Fatal(err)
	}
	equalSets(t, got, append(append([]uint64{}, onlyA...), onlyB...))
}

func TestOverCapacityFails(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	failures := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		s := MustNew(11, 5)
		s.AddSet(distinctElems(rng, 11, 9)) // 9 > t = 5
		if _, err := s.Decode(); err != nil {
			failures++
		}
	}
	// Detection should be overwhelming; allow at most one fluke.
	if failures < trials-1 {
		t.Fatalf("over-capacity decode reported success too often: %d/%d failures", failures, trials)
	}
}

func TestOverCapacityFailsGF32(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		s := MustNew(32, 4)
		s.AddSet(distinctElems(rng, 32, 7))
		if _, err := s.Decode(); err == nil {
			// A false success must at least not corrupt anything; but with
			// the syndrome recheck it should essentially never happen.
			t.Fatal("expected decode failure for 7 elements with t=4")
		}
	}
}

func TestAddTwiceCancels(t *testing.T) {
	s := MustNew(8, 4)
	s.Add(42)
	s.Add(42)
	if !s.Empty() {
		t.Fatal("adding an element twice should cancel")
	}
	got, err := s.Decode()
	if err != nil || len(got) != 0 {
		t.Fatalf("decode of empty sketch: %v, %v", got, err)
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := MustNew(11, 7)
	elems := distinctElems(rng, 11, 6)
	s.AddSet(elems)

	w := wire.NewWriter()
	s.AppendTo(w)
	if w.Len() != s.Bits() || s.Bits() != 7*11 {
		t.Fatalf("serialized bits = %d, want %d", w.Len(), s.Bits())
	}
	r := wire.NewReader(w.Bytes())
	s2, err := ReadFrom(r, 11, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Decode()
	if err != nil {
		t.Fatal(err)
	}
	equalSets(t, got, elems)
}

func TestInvalidParams(t *testing.T) {
	if _, err := New(1, 3); err == nil {
		t.Error("m=1 should fail")
	}
	if _, err := New(8, 0); err == nil {
		t.Error("t=0 should fail")
	}
	if _, err := New(3, 100); err == nil {
		t.Error("t too large for field should fail")
	}
}

func TestAddValidation(t *testing.T) {
	s := MustNew(8, 3)
	for _, bad := range []uint64{0, 256, 1 << 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%#x) should panic", bad)
				}
			}()
			s.Add(bad)
		}()
	}
}

func TestXorShapeMismatch(t *testing.T) {
	a := MustNew(8, 3)
	b := MustNew(8, 4)
	if err := a.Xor(b); err == nil {
		t.Error("t mismatch should error")
	}
	c := MustNew(9, 3)
	if err := a.Xor(c); err == nil {
		t.Error("m mismatch should error")
	}
}

// Property-based: for random small sets within capacity, decode inverts
// encode (GF(2^11), the PBS workhorse field).
func TestQuickDecodeInvertsEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := r.Intn(14)
		elems := distinctElems(r, 11, k)
		s := MustNew(11, 13)
		s.AddSet(elems)
		got, err := s.Decode()
		if err != nil {
			return false
		}
		g, w := sorted(got), sorted(elems)
		if len(g) != len(w) {
			return false
		}
		for i := range g {
			if g[i] != w[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCapacityBoundaryExact(t *testing.T) {
	// Exactly t elements must decode, for several t.
	rng := rand.New(rand.NewSource(14))
	for _, tc := range []int{1, 2, 8, 17} {
		s := MustNew(11, tc)
		elems := distinctElems(rng, 11, tc)
		s.AddSet(elems)
		got, err := s.Decode()
		if err != nil {
			t.Fatalf("t=%d full capacity: %v", tc, err)
		}
		equalSets(t, got, elems)
	}
}

func BenchmarkAddGF11T13(b *testing.B) {
	s := MustNew(11, 13)
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i%2046) + 1)
	}
}

func BenchmarkDecodeGF11T13D5(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	elems := distinctElems(rng, 11, 5)
	s := MustNew(11, 13)
	s.AddSet(elems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Clone().Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeGF32T20(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	elems := distinctElems(rng, 32, 14)
	s := MustNew(32, 20)
	s.AddSet(elems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Clone().Decode(); err != nil {
			b.Fatal(err)
		}
	}
}
