package bch

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestDecodeIntoMatchesDecode runs randomized sketches — within capacity,
// at capacity, and over capacity — through a single reused (and therefore
// dirty) workspace and requires exact agreement with fresh Decode calls.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ws := NewDecoder()
	var dst []uint64
	for trial := 0; trial < 300; trial++ {
		m := []uint{6, 8, 11, 13}[rng.Intn(4)]
		tcap := 1 + rng.Intn(16)
		k := rng.Intn(tcap + 6) // sometimes over capacity
		s := MustNew(m, tcap)
		elems := distinctElems(rng, m, min(k, 1<<m-1))
		s.AddSet(elems)

		want, wantErr := s.Decode()
		dst = dst[:0]
		got, gotErr := s.DecodeInto(ws, dst)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d (m=%d t=%d k=%d): Decode err=%v, DecodeInto err=%v",
				trial, m, tcap, k, wantErr, gotErr)
		}
		if gotErr != nil {
			if !errors.Is(gotErr, ErrDecodeFailure) {
				t.Fatalf("trial %d: unexpected error %v", trial, gotErr)
			}
			if len(got) != 0 {
				t.Fatalf("trial %d: dst modified on failure: %v", trial, got)
			}
			continue
		}
		equalSets(t, got, want)
	}
}

// TestDecodeIntoDirtyWorkspace interleaves shapes and failures: a workspace
// that just decoded a large sketch (or just failed) must decode a small
// one correctly, and vice versa.
func TestDecodeIntoDirtyWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	ws := NewDecoder()

	big := MustNew(13, 30)
	bigElems := distinctElems(rng, 13, 30)
	big.AddSet(bigElems)

	small := MustNew(8, 3)
	smallElems := distinctElems(rng, 8, 2)
	small.AddSet(smallElems)

	over := MustNew(11, 4)
	over.AddSet(distinctElems(rng, 11, 9))

	for round := 0; round < 10; round++ {
		got, err := big.DecodeInto(ws, nil)
		if err != nil {
			t.Fatalf("round %d big: %v", round, err)
		}
		equalSets(t, got, bigElems)

		if _, err := over.DecodeInto(ws, nil); err == nil {
			t.Fatalf("round %d: over-capacity decode succeeded", round)
		}

		got, err = small.DecodeInto(ws, nil)
		if err != nil {
			t.Fatalf("round %d small after failure: %v", round, err)
		}
		equalSets(t, got, smallElems)
	}
}

// TestDecodeIntoAppends verifies the dst contract: recovered elements are
// appended in ascending order and dst is untouched on failure.
func TestDecodeIntoAppends(t *testing.T) {
	s := MustNew(8, 4)
	s.Add(7)
	s.Add(9)
	ws := NewDecoder()
	dst := []uint64{99}
	dst, err := s.DecodeInto(ws, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != 3 || dst[0] != 99 || dst[1] != 7 || dst[2] != 9 {
		t.Fatalf("append contract violated: %v", dst)
	}

	rng := rand.New(rand.NewSource(33))
	over := MustNew(8, 2)
	over.AddSet(distinctElems(rng, 8, 6))
	before := append([]uint64(nil), dst...)
	got, err := over.DecodeInto(ws, dst)
	if err == nil {
		t.Skip("unlucky seed: over-capacity sketch decoded") // recheck makes this ~impossible
	}
	equalSets(t, got, before)
}

// TestDecodeIntoZeroAllocs is the steady-state allocation contract of the
// tentpole: repeated decodes of same-shaped sketches through a warmed-up
// workspace must not touch the heap (table fields).
func TestDecodeIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	const tcap = 13
	sketches := make([]*Sketch, 8)
	for i := range sketches {
		sketches[i] = MustNew(11, tcap)
		sketches[i].AddSet(distinctElems(rng, 11, 1+rng.Intn(tcap)))
	}
	ws := NewDecoder()
	dst := make([]uint64, 0, tcap)
	// Warm up buffers.
	for _, s := range sketches {
		var err error
		if dst, err = s.DecodeInto(ws, dst[:0]); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, s := range sketches {
			var err error
			if dst, err = s.DecodeInto(ws, dst[:0]); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeInto allocated %v times per run, want 0", allocs)
	}
}

// TestDecodeIntoConcurrent exercises per-goroutine workspaces decoding
// shared sketches under the race detector.
func TestDecodeIntoConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	sketches := make([]*Sketch, 16)
	wants := make([][]uint64, len(sketches))
	for i := range sketches {
		sketches[i] = MustNew(11, 13)
		wants[i] = distinctElems(rng, 11, 1+rng.Intn(13))
		sketches[i].AddSet(wants[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := NewDecoder()
			var dst []uint64
			for rep := 0; rep < 20; rep++ {
				for i, s := range sketches {
					var err error
					dst, err = s.DecodeInto(ws, dst[:0])
					if err != nil {
						t.Errorf("sketch %d: %v", i, err)
						return
					}
					if len(dst) != len(wants[i]) {
						t.Errorf("sketch %d: got %d elems, want %d", i, len(dst), len(wants[i]))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestDecodeIntoMatchesReference differentially tests the new kernel
// against the preserved pre-workspace kernel, including GF(2^32).
func TestDecodeIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	ws := NewDecoder()
	for trial := 0; trial < 200; trial++ {
		m := []uint{8, 11, 32}[rng.Intn(3)]
		tcap := 1 + rng.Intn(12)
		k := rng.Intn(tcap + 4)
		s := MustNew(m, tcap)
		s.AddSet(distinctElems(rng, m, k))

		want, wantErr := referenceDecode(s)
		got, gotErr := s.DecodeInto(ws, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d (m=%d t=%d k=%d): reference err=%v, DecodeInto err=%v",
				trial, m, tcap, k, wantErr, gotErr)
		}
		if gotErr == nil {
			equalSets(t, got, want)
		}
	}
}

// kernelCase builds the PBS steady-state decode workload for difference
// cardinality d: g = d/δ sketches over GF(2^11) with capacity t = 13 and
// ~δ = 5 set elements each — the per-round kernel the paper's headline
// decode-cost claim is about.
func kernelCase(tb testing.TB, d int) []*Sketch {
	tb.Helper()
	const m, tcap, delta = uint(11), 13, 5
	rng := rand.New(rand.NewSource(int64(d)))
	groups := d / delta
	if groups < 1 {
		groups = 1
	}
	sketches := make([]*Sketch, groups)
	for i := range sketches {
		sketches[i] = MustNew(m, tcap)
		k := 1 + rng.Intn(2*delta-1) // 1..9 differing positions, mean ~5
		sketches[i].AddSet(distinctElems(rng, m, k))
	}
	return sketches
}

// BenchmarkDecodeKernel measures the steady-state PBS decode hot path with
// a reused workspace at d ∈ {100, 1k, 10k}. Compare against
// BenchmarkDecodeKernelReference (the pre-workspace kernel) for the
// speedup, and -benchmem for the zero-allocation claim.
func BenchmarkDecodeKernel(b *testing.B) {
	for _, d := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			sketches := kernelCase(b, d)
			ws := NewDecoder()
			dst := make([]uint64, 0, 16)
			var err error
			// Warm up the workspace so the loop measures steady state.
			for _, s := range sketches {
				if dst, err = s.DecodeInto(ws, dst[:0]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, s := range sketches {
					if dst, err = s.DecodeInto(ws, dst[:0]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDecodeKernelReference is the identical workload through the
// pre-PR kernel preserved in reference_test.go.
func BenchmarkDecodeKernelReference(b *testing.B) {
	for _, d := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			sketches := kernelCase(b, d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, s := range sketches {
					if _, err := referenceDecode(s); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
