package bch

import (
	"pbs/internal/gf2"
)

// This file preserves the pre-workspace decode kernel verbatim. It serves
// two purposes: differential testing (DecodeInto must agree with it on
// success sets and failures) and the baseline for BenchmarkDecodeKernel's
// speedup claim.

// referenceDecode is the old Sketch.Decode: allocating Berlekamp–Massey,
// Horner-evaluation root search, allocating verification pass.
func referenceDecode(s *Sketch) ([]uint64, error) {
	if s.Empty() {
		return nil, nil
	}
	syn := make([]uint64, 2*s.t+1)
	for i := 1; i <= 2*s.t; i++ {
		if i%2 == 1 {
			syn[i] = s.odd[(i-1)/2]
		} else {
			syn[i] = s.f.Sqr(syn[i/2])
		}
	}
	locator := refBerlekampMassey(s.f, syn[1:])
	deg := locator.Degree()
	if deg < 1 || deg > s.t {
		return nil, ErrDecodeFailure
	}
	roots, err := refFindRoots(s.f, locator)
	if err != nil {
		return nil, err
	}
	if len(roots) != deg {
		return nil, ErrDecodeFailure
	}
	elems := make([]uint64, len(roots))
	for i, r := range roots {
		elems[i] = s.f.Inv(r)
	}
	check := make([]uint64, s.t)
	for _, x := range elems {
		w := s.f.Window(s.f.Sqr(x))
		p := x
		for k := 0; k < s.t; k++ {
			check[k] ^= p
			if k+1 < s.t {
				p = w.Mul(p)
			}
		}
	}
	for k := range check {
		if check[k] != s.odd[k] {
			return nil, ErrDecodeFailure
		}
	}
	return elems, nil
}

func refBerlekampMassey(f *gf2.Field, syn []uint64) gf2.Poly {
	c := gf2.NewPoly(1)
	b := gf2.NewPoly(1)
	var l int
	shift := 1
	bInv := uint64(1)
	for n := 0; n < len(syn); n++ {
		d := syn[n]
		for i := 1; i <= l && i < len(c); i++ {
			d ^= f.Mul(c[i], syn[n-i])
		}
		if d == 0 {
			shift++
			continue
		}
		coef := f.Mul(d, bInv)
		nc := c.Clone()
		for len(nc) < len(b)+shift {
			nc = append(nc, 0)
		}
		w := f.Window(coef)
		for i, bi := range b {
			if bi != 0 {
				nc[i+shift] ^= w.Mul(bi)
			}
		}
		if 2*l <= n {
			b = c
			bInv = f.Inv(d)
			l = n + 1 - l
			shift = 1
		} else {
			shift++
		}
		c = gf2.Poly(nc)
	}
	for len(c) > 0 && c[len(c)-1] == 0 {
		c = c[:len(c)-1]
	}
	return c
}

const refChienThreshold = 16

func refFindRoots(f *gf2.Field, p gf2.Poly) ([]uint64, error) {
	if p.Degree() < 1 {
		return nil, nil
	}
	if f.M() <= refChienThreshold {
		return refChienSearch(f, p)
	}
	return traceRootFind(f, p)
}

// refChienSearch exhaustively evaluates p at every nonzero field element
// with a full Horner evaluation per candidate.
func refChienSearch(f *gf2.Field, p gf2.Poly) ([]uint64, error) {
	var roots []uint64
	deg := p.Degree()
	for x := uint64(1); x <= f.Order(); x++ {
		if p.Eval(f, x) == 0 {
			roots = append(roots, x)
			if len(roots) == deg {
				break
			}
		}
	}
	if len(roots) != deg {
		return nil, ErrDecodeFailure
	}
	return roots, nil
}
