// Package bch implements BCH "syndrome sketches" of sets, the
// error-correction substrate of both PBS (§2.5 of the paper) and the
// PinSketch baseline (§7). It is a from-scratch work-alike of the
// Minisketch library the paper uses.
//
// A sketch of capacity t over GF(2^m) stores the t odd power sums
// σ_k = Σ_{x∈S} x^k for k = 1, 3, ..., 2t−1 of a set S ⊆ {1, ..., 2^m−1}.
// Because the field has characteristic 2, adding an element twice cancels
// it, and XORing two sketches yields the sketch of the symmetric
// difference. If |S| ≤ t, S can be recovered from its sketch: the even
// power sums follow from σ_{2k} = σ_k², Berlekamp–Massey finds the error
// locator polynomial, and its roots (inverted) are the elements of S.
//
// In PBS the "set" is the set of bit positions where Alice's and Bob's
// parity bitmaps differ; in PinSketch it is the set difference A△B itself
// over the 32-bit universe.
package bch

import (
	"errors"
	"fmt"

	"pbs/internal/gf2"
	"pbs/internal/wire"
)

// ErrDecodeFailure is returned by Decode when the sketched set has more
// elements than the sketch's capacity t (or the syndromes are otherwise
// inconsistent). This corresponds to the BCH-decoding exception of §3.2.
var ErrDecodeFailure = errors.New("bch: decoding failure (difference exceeds capacity)")

// Sketch is a BCH syndrome sketch with capacity t over GF(2^m).
type Sketch struct {
	f   *gf2.Field
	t   int
	odd []uint64 // odd syndromes σ1, σ3, ..., σ_{2t−1}
}

// New returns an empty sketch over GF(2^m) that can decode up to t set
// elements. Valid elements are 1..2^m−1 (zero is excluded from the universe,
// as in §2.1 of the paper).
func New(m uint, t int) (*Sketch, error) {
	f, err := gf2.NewField(m)
	if err != nil {
		return nil, err
	}
	if t < 1 {
		return nil, fmt.Errorf("bch: capacity t=%d must be >= 1", t)
	}
	if uint64(t) > f.Order()/2 {
		return nil, fmt.Errorf("bch: capacity t=%d too large for field order %d", t, f.Order())
	}
	return &Sketch{f: f, t: t, odd: make([]uint64, t)}, nil
}

// MustNew is like New but panics on invalid parameters.
func MustNew(m uint, t int) *Sketch {
	s, err := New(m, t)
	if err != nil {
		panic(err)
	}
	return s
}

// M returns the field degree.
func (s *Sketch) M() uint { return s.f.M() }

// T returns the sketch capacity.
func (s *Sketch) T() int { return s.t }

// Bits returns the serialized size in bits: t·m, matching the "t·log n"
// codeword-length term of the paper.
func (s *Sketch) Bits() int { return s.t * int(s.f.M()) }

// Clone returns an independent copy of s.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{f: s.f, t: s.t, odd: make([]uint64, len(s.odd))}
	copy(c.odd, s.odd)
	return c
}

// Add toggles element x in the sketched set. It panics if x is zero or out
// of field range: the caller owns input validation in this hot path.
func (s *Sketch) Add(x uint64) {
	if x == 0 || !s.f.Valid(x) {
		panic(fmt.Sprintf("bch: element %#x out of range for GF(2^%d)", x, s.f.M()))
	}
	xsq := s.f.Sqr(x)
	w := s.f.Window(xsq)
	p := x
	for k := 0; k < s.t; k++ {
		s.odd[k] ^= p
		if k+1 < s.t {
			p = w.Mul(p)
		}
	}
}

// AddSet toggles every element of set.
func (s *Sketch) AddSet(set []uint64) {
	for _, x := range set {
		s.Add(x)
	}
}

// Xor merges other into s, so s becomes the sketch of the symmetric
// difference of the two underlying sets.
func (s *Sketch) Xor(other *Sketch) error {
	if s.f != other.f || s.t != other.t {
		return fmt.Errorf("bch: sketch shape mismatch (m=%d,t=%d vs m=%d,t=%d)",
			s.f.M(), s.t, other.f.M(), other.t)
	}
	for i := range s.odd {
		s.odd[i] ^= other.odd[i]
	}
	return nil
}

// Empty reports whether all syndromes are zero, which for difference
// sketches means "no differences detected" (up to the vanishing-XOR
// corner case handled by the checksum layer above).
func (s *Sketch) Empty() bool {
	for _, v := range s.odd {
		if v != 0 {
			return false
		}
	}
	return true
}

// AppendTo bit-packs the sketch onto w (t syndromes of m bits each).
func (s *Sketch) AppendTo(w *wire.Writer) {
	for _, v := range s.odd {
		w.WriteBits(v, s.f.M())
	}
}

// ReadFrom parses a sketch with shape (m, t) from r.
func ReadFrom(r *wire.Reader, m uint, t int) (*Sketch, error) {
	s, err := New(m, t)
	if err != nil {
		return nil, err
	}
	if err := s.ReadInto(r); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadInto overwrites s's syndromes with a serialized sketch of the same
// shape read from r, letting callers reuse one Sketch across many parses.
func (s *Sketch) ReadInto(r *wire.Reader) error {
	for i := range s.odd {
		v, err := r.ReadBits(s.f.M())
		if err != nil {
			return err
		}
		s.odd[i] = v
	}
	return nil
}

// Reset clears the sketch back to the empty set, keeping its shape and
// storage so it can be refilled without allocation.
func (s *Sketch) Reset() { clear(s.odd) }

// Decode recovers the sketched set. On success it returns the elements in
// ascending order. It returns ErrDecodeFailure when the set cannot be
// recovered (more than t elements, or inconsistent syndromes).
//
// Decode allocates a fresh workspace per call; hot paths should hold a
// Decoder and call DecodeInto instead.
func (s *Sketch) Decode() ([]uint64, error) {
	var ws Decoder
	return s.DecodeInto(&ws, nil)
}

// traceRootFind finds the roots of p using the Berlekamp trace algorithm:
// first verify that p splits completely over f via gcd(p, x^(2^m) − x),
// then recursively split with random trace polynomials.
func traceRootFind(f *gf2.Field, p gf2.Poly) ([]uint64, error) {
	p = p.Monic(f)
	// Roots must be distinct: a locator polynomial from a true difference
	// set is always squarefree; enforce it with gcd(p, p').
	if !squarefree(f, p) {
		return nil, ErrDecodeFailure
	}
	xq := gf2.PolyFrobeniusPower(f, f.M(), p) // x^(2^m) mod p
	g := gf2.PolyGCD(f, p, gf2.PolyAdd(xq, gf2.NewPoly(0, 1)))
	if g.Degree() != p.Degree() {
		return nil, ErrDecodeFailure // some roots lie outside GF(2^m)
	}
	roots := make([]uint64, 0, g.Degree())
	var betaCtr uint64 = 1
	var split func(g gf2.Poly) error
	split = func(g gf2.Poly) error {
		switch g.Degree() {
		case 0:
			return nil
		case 1:
			// monic x + c has root c
			roots = append(roots, g[0])
			return nil
		}
		for attempts := 0; attempts < 64; attempts++ {
			beta := f.Exp(betaCtr)
			betaCtr += 0x9E3779B97F4A7C15 % f.Order()
			tr := tracePolyMod(f, beta, g)
			w := gf2.PolyGCD(f, g, tr)
			if w.Degree() > 0 && w.Degree() < g.Degree() {
				q, _ := gf2.PolyDivMod(f, g, w)
				if err := split(w); err != nil {
					return err
				}
				return split(q.Monic(f))
			}
			// Also try the complementary cofactor via Tr + 1.
			trc := gf2.PolyAdd(tr, gf2.NewPoly(1))
			w = gf2.PolyGCD(f, g, trc)
			if w.Degree() > 0 && w.Degree() < g.Degree() {
				q, _ := gf2.PolyDivMod(f, g, w)
				if err := split(w); err != nil {
					return err
				}
				return split(q.Monic(f))
			}
		}
		return ErrDecodeFailure
	}
	if err := split(g); err != nil {
		return nil, err
	}
	return roots, nil
}

// squarefree reports whether p has no repeated roots, via gcd(p, p') == 1.
func squarefree(f *gf2.Field, p gf2.Poly) bool {
	// Formal derivative in characteristic 2: odd-degree terms survive.
	d := make(gf2.Poly, 0, len(p))
	for i := 1; i < len(p); i += 2 {
		for len(d) < i-1 {
			d = append(d, 0)
		}
		d = append(d, p[i])
	}
	d = gf2.NewPoly(d...)
	if d.IsZero() {
		return false // p is a square of another polynomial
	}
	return gf2.PolyGCD(f, p, d).Degree() == 0
}

// tracePolyMod computes Tr(β·x) mod g = Σ_{i=0}^{m−1} (β·x)^(2^i) mod g.
// The accumulator double-buffers through PolyAddInto so the m−1 additions
// reuse two backing arrays instead of allocating one each.
func tracePolyMod(f *gf2.Field, beta uint64, g gf2.Poly) gf2.Poly {
	cur := gf2.PolyMod(f, gf2.NewPoly(0, beta), g) // β·x mod g
	acc := cur.Clone()
	var buf gf2.Poly
	for i := uint(1); i < f.M(); i++ {
		cur = gf2.PolySqrMod(f, cur, g)
		buf = gf2.PolyAddInto(acc, cur, buf)
		acc, buf = buf, acc
	}
	return acc
}
