// Package bch implements BCH "syndrome sketches" of sets, the
// error-correction substrate of both PBS (§2.5 of the paper) and the
// PinSketch baseline (§7). It is a from-scratch work-alike of the
// Minisketch library the paper uses.
//
// A sketch of capacity t over GF(2^m) stores the t odd power sums
// σ_k = Σ_{x∈S} x^k for k = 1, 3, ..., 2t−1 of a set S ⊆ {1, ..., 2^m−1}.
// Because the field has characteristic 2, adding an element twice cancels
// it, and XORing two sketches yields the sketch of the symmetric
// difference. If |S| ≤ t, S can be recovered from its sketch: the even
// power sums follow from σ_{2k} = σ_k², Berlekamp–Massey finds the error
// locator polynomial, and its roots (inverted) are the elements of S.
//
// In PBS the "set" is the set of bit positions where Alice's and Bob's
// parity bitmaps differ; in PinSketch it is the set difference A△B itself
// over the 32-bit universe.
package bch

import (
	"errors"
	"fmt"

	"pbs/internal/gf2"
	"pbs/internal/wire"
)

// ErrDecodeFailure is returned by Decode when the sketched set has more
// elements than the sketch's capacity t (or the syndromes are otherwise
// inconsistent). This corresponds to the BCH-decoding exception of §3.2.
var ErrDecodeFailure = errors.New("bch: decoding failure (difference exceeds capacity)")

// Sketch is a BCH syndrome sketch with capacity t over GF(2^m).
type Sketch struct {
	f   *gf2.Field
	t   int
	odd []uint64 // odd syndromes σ1, σ3, ..., σ_{2t−1}
}

// New returns an empty sketch over GF(2^m) that can decode up to t set
// elements. Valid elements are 1..2^m−1 (zero is excluded from the universe,
// as in §2.1 of the paper).
func New(m uint, t int) (*Sketch, error) {
	f, err := gf2.NewField(m)
	if err != nil {
		return nil, err
	}
	if t < 1 {
		return nil, fmt.Errorf("bch: capacity t=%d must be >= 1", t)
	}
	if uint64(t) > f.Order()/2 {
		return nil, fmt.Errorf("bch: capacity t=%d too large for field order %d", t, f.Order())
	}
	return &Sketch{f: f, t: t, odd: make([]uint64, t)}, nil
}

// MustNew is like New but panics on invalid parameters.
func MustNew(m uint, t int) *Sketch {
	s, err := New(m, t)
	if err != nil {
		panic(err)
	}
	return s
}

// M returns the field degree.
func (s *Sketch) M() uint { return s.f.M() }

// T returns the sketch capacity.
func (s *Sketch) T() int { return s.t }

// Bits returns the serialized size in bits: t·m, matching the "t·log n"
// codeword-length term of the paper.
func (s *Sketch) Bits() int { return s.t * int(s.f.M()) }

// Clone returns an independent copy of s.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{f: s.f, t: s.t, odd: make([]uint64, len(s.odd))}
	copy(c.odd, s.odd)
	return c
}

// Add toggles element x in the sketched set. It panics if x is zero or out
// of field range: the caller owns input validation in this hot path.
func (s *Sketch) Add(x uint64) {
	if x == 0 || !s.f.Valid(x) {
		panic(fmt.Sprintf("bch: element %#x out of range for GF(2^%d)", x, s.f.M()))
	}
	xsq := s.f.Sqr(x)
	w := s.f.Window(xsq)
	p := x
	for k := 0; k < s.t; k++ {
		s.odd[k] ^= p
		if k+1 < s.t {
			p = w.Mul(p)
		}
	}
}

// AddSet toggles every element of set.
func (s *Sketch) AddSet(set []uint64) {
	for _, x := range set {
		s.Add(x)
	}
}

// Xor merges other into s, so s becomes the sketch of the symmetric
// difference of the two underlying sets.
func (s *Sketch) Xor(other *Sketch) error {
	if s.f != other.f || s.t != other.t {
		return fmt.Errorf("bch: sketch shape mismatch (m=%d,t=%d vs m=%d,t=%d)",
			s.f.M(), s.t, other.f.M(), other.t)
	}
	for i := range s.odd {
		s.odd[i] ^= other.odd[i]
	}
	return nil
}

// Empty reports whether all syndromes are zero, which for difference
// sketches means "no differences detected" (up to the vanishing-XOR
// corner case handled by the checksum layer above).
func (s *Sketch) Empty() bool {
	for _, v := range s.odd {
		if v != 0 {
			return false
		}
	}
	return true
}

// AppendTo bit-packs the sketch onto w (t syndromes of m bits each).
func (s *Sketch) AppendTo(w *wire.Writer) {
	for _, v := range s.odd {
		w.WriteBits(v, s.f.M())
	}
}

// ReadFrom parses a sketch with shape (m, t) from r.
func ReadFrom(r *wire.Reader, m uint, t int) (*Sketch, error) {
	s, err := New(m, t)
	if err != nil {
		return nil, err
	}
	for i := 0; i < t; i++ {
		v, err := r.ReadBits(m)
		if err != nil {
			return nil, err
		}
		s.odd[i] = v
	}
	return s, nil
}

// Decode recovers the sketched set. On success it returns the elements in
// unspecified order. It returns ErrDecodeFailure when the set cannot be
// recovered (more than t elements, or inconsistent syndromes).
func (s *Sketch) Decode() ([]uint64, error) {
	if s.Empty() {
		return nil, nil
	}
	// Build the full syndrome sequence syn[1..2t] using σ_{2k} = σ_k².
	syn := make([]uint64, 2*s.t+1)
	for i := 1; i <= 2*s.t; i++ {
		if i%2 == 1 {
			syn[i] = s.odd[(i-1)/2]
		} else {
			syn[i] = s.f.Sqr(syn[i/2])
		}
	}
	locator := berlekampMassey(s.f, syn[1:])
	deg := locator.Degree()
	if deg < 1 || deg > s.t {
		return nil, ErrDecodeFailure
	}
	roots, err := findRoots(s.f, locator)
	if err != nil {
		return nil, err
	}
	if len(roots) != deg {
		return nil, ErrDecodeFailure
	}
	// The locator Λ(x) = Π (1 − X_i·x) has roots at X_i^{-1}.
	elems := make([]uint64, len(roots))
	for i, r := range roots {
		elems[i] = s.f.Inv(r)
	}
	// Robust failure detection (§3.2): recompute the odd syndromes from the
	// recovered elements and require an exact match. When the true
	// difference exceeds t, Berlekamp–Massey may still emit a fully-rooted
	// locator; this recheck catches essentially all such miscorrections.
	check := make([]uint64, s.t)
	for _, x := range elems {
		w := s.f.Window(s.f.Sqr(x))
		p := x
		for k := 0; k < s.t; k++ {
			check[k] ^= p
			if k+1 < s.t {
				p = w.Mul(p)
			}
		}
	}
	for k := range check {
		if check[k] != s.odd[k] {
			return nil, ErrDecodeFailure
		}
	}
	return elems, nil
}

// berlekampMassey computes the minimal LFSR (the error locator polynomial)
// for the syndrome sequence syn[0..2t-1] over the field f.
func berlekampMassey(f *gf2.Field, syn []uint64) gf2.Poly {
	c := gf2.NewPoly(1) // connection polynomial Λ
	b := gf2.NewPoly(1)
	var l int
	shift := 1
	bInv := uint64(1) // inverse of the last nonzero discrepancy
	for n := 0; n < len(syn); n++ {
		// Discrepancy d = syn[n] + Σ_{i=1}^{l} c[i]·syn[n−i].
		d := syn[n]
		for i := 1; i <= l && i < len(c); i++ {
			d ^= f.Mul(c[i], syn[n-i])
		}
		if d == 0 {
			shift++
			continue
		}
		coef := f.Mul(d, bInv)
		// c' = c − coef·x^shift·b
		nc := c.Clone()
		for len(nc) < len(b)+shift {
			nc = append(nc, 0)
		}
		w := f.Window(coef)
		for i, bi := range b {
			if bi != 0 {
				nc[i+shift] ^= w.Mul(bi)
			}
		}
		if 2*l <= n {
			b = c
			bInv = f.Inv(d)
			l = n + 1 - l
			shift = 1
		} else {
			shift++
		}
		c = gf2.Poly(nc)
	}
	// Trim trailing zeros without disturbing l-consistency checks upstream.
	for len(c) > 0 && c[len(c)-1] == 0 {
		c = c[:len(c)-1]
	}
	return c
}

// chienThreshold is the largest field degree for which exhaustive root
// search is used; beyond it the gcd/trace method is used instead.
const chienThreshold = 16

// findRoots returns the distinct roots of p that lie in f. It returns
// ErrDecodeFailure if p does not split into distinct linear factors over f
// (which signals a miscorrection).
func findRoots(f *gf2.Field, p gf2.Poly) ([]uint64, error) {
	if p.Degree() < 1 {
		return nil, nil
	}
	if f.M() <= chienThreshold {
		return chienSearch(f, p)
	}
	return traceRootFind(f, p)
}

// chienSearch exhaustively evaluates p at every nonzero field element.
func chienSearch(f *gf2.Field, p gf2.Poly) ([]uint64, error) {
	var roots []uint64
	deg := p.Degree()
	for x := uint64(1); x <= f.Order(); x++ {
		if p.Eval(f, x) == 0 {
			roots = append(roots, x)
			if len(roots) == deg {
				break
			}
		}
	}
	if len(roots) != deg {
		return nil, ErrDecodeFailure
	}
	return roots, nil
}

// traceRootFind finds the roots of p using the Berlekamp trace algorithm:
// first verify that p splits completely over f via gcd(p, x^(2^m) − x),
// then recursively split with random trace polynomials.
func traceRootFind(f *gf2.Field, p gf2.Poly) ([]uint64, error) {
	p = p.Monic(f)
	// Roots must be distinct: a locator polynomial from a true difference
	// set is always squarefree; enforce it with gcd(p, p').
	if !squarefree(f, p) {
		return nil, ErrDecodeFailure
	}
	xq := gf2.PolyFrobeniusPower(f, f.M(), p) // x^(2^m) mod p
	g := gf2.PolyGCD(f, p, gf2.PolyAdd(xq, gf2.NewPoly(0, 1)))
	if g.Degree() != p.Degree() {
		return nil, ErrDecodeFailure // some roots lie outside GF(2^m)
	}
	roots := make([]uint64, 0, g.Degree())
	var betaCtr uint64 = 1
	var split func(g gf2.Poly) error
	split = func(g gf2.Poly) error {
		switch g.Degree() {
		case 0:
			return nil
		case 1:
			// monic x + c has root c
			roots = append(roots, g[0])
			return nil
		}
		for attempts := 0; attempts < 64; attempts++ {
			beta := f.Exp(betaCtr)
			betaCtr += 0x9E3779B97F4A7C15 % f.Order()
			tr := tracePolyMod(f, beta, g)
			w := gf2.PolyGCD(f, g, tr)
			if w.Degree() > 0 && w.Degree() < g.Degree() {
				q, _ := gf2.PolyDivMod(f, g, w)
				if err := split(w); err != nil {
					return err
				}
				return split(q.Monic(f))
			}
			// Also try the complementary cofactor via Tr + 1.
			trc := gf2.PolyAdd(tr, gf2.NewPoly(1))
			w = gf2.PolyGCD(f, g, trc)
			if w.Degree() > 0 && w.Degree() < g.Degree() {
				q, _ := gf2.PolyDivMod(f, g, w)
				if err := split(w); err != nil {
					return err
				}
				return split(q.Monic(f))
			}
		}
		return ErrDecodeFailure
	}
	if err := split(g); err != nil {
		return nil, err
	}
	return roots, nil
}

// squarefree reports whether p has no repeated roots, via gcd(p, p') == 1.
func squarefree(f *gf2.Field, p gf2.Poly) bool {
	// Formal derivative in characteristic 2: odd-degree terms survive.
	d := make(gf2.Poly, 0, len(p))
	for i := 1; i < len(p); i += 2 {
		for len(d) < i-1 {
			d = append(d, 0)
		}
		d = append(d, p[i])
	}
	d = gf2.NewPoly(d...)
	if d.IsZero() {
		return false // p is a square of another polynomial
	}
	return gf2.PolyGCD(f, p, d).Degree() == 0
}

// tracePolyMod computes Tr(β·x) mod g = Σ_{i=0}^{m−1} (β·x)^(2^i) mod g.
func tracePolyMod(f *gf2.Field, beta uint64, g gf2.Poly) gf2.Poly {
	cur := gf2.PolyMod(f, gf2.NewPoly(0, beta), g) // β·x mod g
	acc := cur.Clone()
	for i := uint(1); i < f.M(); i++ {
		cur = gf2.PolySqrMod(f, cur, g)
		acc = gf2.PolyAdd(acc, cur)
	}
	return acc
}
