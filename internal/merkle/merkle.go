// Package merkle implements the Merkle-tree verification mechanism that
// §2.2.3 of the PBS paper points to for applications (Bitcoin, Ethereum)
// that must drive the false-verification probability to practically zero:
// a binary hash tree whose root certifies the integrity and consistency of
// an ordered set of transactions, with logarithmic-size membership proofs.
//
// The blockchain relay example uses it to certify that a mempool obtained
// via PBS reconciliation matches the peer's, independent of the protocol's
// own checksums.
package merkle

import (
	"fmt"
	"sort"

	"pbs/internal/hashutil"
)

// Root is a 128-bit tree root (two 64-bit lanes; the package is about
// reproducing the verification structure, not about cryptographic strength
// — swap hashLeaf/hashNode for a cryptographic hash in production).
type Root [2]uint64

// Tree is a Merkle tree over a sorted set of uint64 element IDs.
type Tree struct {
	seed   uint64
	leaves []uint64 // sorted element IDs
	levels [][]Root // levels[0] = leaf hashes, last level has length 1
}

func hashLeaf(x, seed uint64) Root {
	return Root{
		hashutil.XXH64Uint64(x, seed^0x1EAF),
		hashutil.XXH64Uint64(x, seed^0x1EAF2),
	}
}

func hashNode(l, r Root, seed uint64) Root {
	h1 := hashutil.XXH64Uint64(l[0]^r[1], seed+1)
	h2 := hashutil.XXH64Uint64(l[1]^r[0], seed+2)
	return Root{
		hashutil.XXH64Uint64(h1, h2),
		hashutil.XXH64Uint64(h2, h1^seed),
	}
}

// New builds a tree over set (copied and sorted internally). An empty set
// yields a zero root.
func New(set []uint64, seed uint64) *Tree {
	leaves := append([]uint64(nil), set...)
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	t := &Tree{seed: seed, leaves: leaves}
	if len(leaves) == 0 {
		return t
	}
	level := make([]Root, len(leaves))
	for i, x := range leaves {
		level[i] = hashLeaf(x, seed)
	}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]Root, (len(level)+1)/2)
		for i := range next {
			l := level[2*i]
			r := l // odd node pairs with itself, Bitcoin-style
			if 2*i+1 < len(level) {
				r = level[2*i+1]
			}
			next[i] = hashNode(l, r, t.seed)
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Root returns the tree root (zero for an empty tree).
func (t *Tree) Root() Root {
	if len(t.levels) == 0 {
		return Root{}
	}
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Size returns the number of leaves.
func (t *Tree) Size() int { return len(t.leaves) }

// ProofStep is one sibling hash along a membership proof, with its side.
type ProofStep struct {
	Sibling Root
	Left    bool // sibling is the left child
}

// Prove returns a membership proof for x, or an error if x is not in the
// set.
func (t *Tree) Prove(x uint64) ([]ProofStep, error) {
	i := sort.Search(len(t.leaves), func(j int) bool { return t.leaves[j] >= x })
	if i >= len(t.leaves) || t.leaves[i] != x {
		return nil, fmt.Errorf("merkle: element %#x not in tree", x)
	}
	var proof []ProofStep
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		sib := i ^ 1
		if sib >= len(level) {
			sib = i // odd node pairs with itself
		}
		proof = append(proof, ProofStep{Sibling: level[sib], Left: sib < i})
		i /= 2
	}
	return proof, nil
}

// Verify checks a membership proof for x against root.
func Verify(x uint64, proof []ProofStep, root Root, seed uint64) bool {
	h := hashLeaf(x, seed)
	for _, step := range proof {
		if step.Left {
			h = hashNode(step.Sibling, h, seed)
		} else {
			h = hashNode(h, step.Sibling, seed)
		}
	}
	return h == root
}

// SameSet reports whether two parties' trees certify identical sets — the
// final consistency check a blockchain node runs after reconciliation.
func SameSet(a, b *Tree) bool {
	return a.Size() == b.Size() && a.Root() == b.Root()
}
