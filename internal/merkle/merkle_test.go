package merkle

import (
	"math/rand"
	"testing"
)

func randomSet(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		x := rng.Uint64() | 1
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func TestRootDeterministicAndOrderIndependent(t *testing.T) {
	set := randomSet(100, 1)
	a := New(set, 7)
	shuffled := append([]uint64(nil), set...)
	rand.New(rand.NewSource(2)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := New(shuffled, 7)
	if a.Root() != b.Root() {
		t.Fatal("root must not depend on insertion order")
	}
	if !SameSet(a, b) {
		t.Fatal("SameSet must hold for identical sets")
	}
}

func TestRootSensitivity(t *testing.T) {
	set := randomSet(50, 3)
	a := New(set, 1)
	// Any single-element change must change the root.
	changed := append([]uint64(nil), set...)
	changed[10] ^= 2
	b := New(changed, 1)
	if a.Root() == b.Root() {
		t.Fatal("root unchanged after element mutation")
	}
	// Adding an element must change the root.
	c := New(append(append([]uint64(nil), set...), 0xDEAD), 1)
	if a.Root() == c.Root() || SameSet(a, c) {
		t.Fatal("root unchanged after insertion")
	}
	// Different seeds must give different roots.
	d := New(set, 2)
	if a.Root() == d.Root() {
		t.Fatal("seed ignored")
	}
}

func TestMembershipProofs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 100} {
		set := randomSet(n, int64(n))
		tree := New(set, 5)
		for _, x := range set {
			proof, err := tree.Prove(x)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if !Verify(x, proof, tree.Root(), 5) {
				t.Fatalf("n=%d: valid proof rejected for %#x", n, x)
			}
			// The same proof must not validate a different element.
			if Verify(x^1, proof, tree.Root(), 5) {
				t.Fatalf("n=%d: proof accepted for wrong element", n)
			}
		}
	}
}

func TestProveMissing(t *testing.T) {
	tree := New([]uint64{1, 2, 3}, 0)
	if _, err := tree.Prove(4); err == nil {
		t.Fatal("proof for a missing element must fail")
	}
}

func TestEmptyTree(t *testing.T) {
	tree := New(nil, 0)
	if tree.Root() != (Root{}) || tree.Size() != 0 {
		t.Fatal("empty tree must have zero root")
	}
}

func TestTamperedProofFails(t *testing.T) {
	set := randomSet(64, 9)
	tree := New(set, 3)
	proof, err := tree.Prove(set[5])
	if err != nil {
		t.Fatal(err)
	}
	proof[1].Sibling[0] ^= 1
	if Verify(set[5], proof, tree.Root(), 3) {
		t.Fatal("tampered proof accepted")
	}
}

func TestProofLengthLogarithmic(t *testing.T) {
	tree := New(randomSet(1000, 11), 1)
	proof, err := tree.Prove(tree.leaves[500])
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) != 10 { // ceil(log2(1000))
		t.Fatalf("proof length = %d, want 10", len(proof))
	}
}
