package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestTenantParsing(t *testing.T) {
	cases := []struct{ name, tenant string }{
		{"default", ""},
		{"acme/users", "acme"},
		{"acme/a/b", "acme"},
		{"/leading", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := Tenant(c.name); got != c.tenant {
			t.Errorf("Tenant(%q) = %q, want %q", c.name, got, c.tenant)
		}
	}
}

func TestRegisterLookupUnregister(t *testing.T) {
	r := New[int](8, Quota{})
	if err := r.Register("acme/a", 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("acme/b", 2, 200); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Get("acme/a"); !ok || v != 1 {
		t.Fatalf("Get(acme/a) = %d, %v", v, ok)
	}
	if _, ok := r.Get("acme/missing"); ok {
		t.Fatal("Get of missing name succeeded")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	sets, bytes, _ := r.TenantUsage("acme")
	if sets != 2 || bytes != 300 {
		t.Fatalf("usage = %d sets / %d bytes, want 2/300", sets, bytes)
	}

	// Re-register charges only the delta.
	if err := r.Register("acme/a", 3, 150); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get("acme/a"); v != 3 {
		t.Fatal("re-register did not swap value")
	}
	if _, bytes, _ := r.TenantUsage("acme"); bytes != 350 {
		t.Fatalf("bytes after re-register = %d, want 350", bytes)
	}

	if v, ok := r.Unregister("acme/a"); !ok || v != 3 {
		t.Fatalf("Unregister = %d, %v", v, ok)
	}
	if _, ok := r.Unregister("acme/a"); ok {
		t.Fatal("double Unregister succeeded")
	}
	sets, bytes, _ = r.TenantUsage("acme")
	if sets != 1 || bytes != 200 || r.Len() != 1 {
		t.Fatalf("after unregister: %d sets / %d bytes / Len %d", sets, bytes, r.Len())
	}
}

func TestQuotaSets(t *testing.T) {
	r := New[int](4, Quota{MaxSets: 2})
	if err := r.Register("t/a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("t/b", 1, 0); err != nil {
		t.Fatal(err)
	}
	err := r.Register("t/c", 1, 0)
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "sets" || qe.Tenant != "t" {
		t.Fatalf("want sets QuotaError, got %v", err)
	}
	if qe.Transient() {
		t.Fatal("sets quota must not be transient")
	}
	// Re-registering an existing name is not a new set.
	if err := r.Register("t/a", 2, 0); err != nil {
		t.Fatalf("re-register under full set quota: %v", err)
	}
	// Another tenant is unaffected.
	if err := r.Register("u/a", 1, 0); err != nil {
		t.Fatal(err)
	}
	// Freeing a slot re-admits.
	r.Unregister("t/b")
	if err := r.Register("t/c", 1, 0); err != nil {
		t.Fatalf("register after free: %v", err)
	}
}

func TestQuotaBytes(t *testing.T) {
	r := New[int](4, Quota{MaxBytes: 1000})
	if err := r.Register("t/a", 1, 800); err != nil {
		t.Fatal(err)
	}
	err := r.Register("t/b", 1, 300)
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "bytes" {
		t.Fatalf("want bytes QuotaError, got %v", err)
	}
	// The failed registration must not leak its set reservation.
	if sets, _, _ := r.TenantUsage("t"); sets != 1 {
		t.Fatalf("sets leaked to %d after failed byte reservation", sets)
	}
	// Shrinking an existing set frees budget.
	if err := r.Register("t/a", 1, 500); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("t/b", 1, 300); err != nil {
		t.Fatalf("register after shrink: %v", err)
	}
}

func TestQuotaSessions(t *testing.T) {
	r := New[int](4, Quota{MaxSessions: 2})
	if err := r.BeginSession("t/a"); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginSession("t/b"); err != nil {
		t.Fatal(err)
	}
	err := r.BeginSession("t/a")
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "sessions" {
		t.Fatalf("want sessions QuotaError, got %v", err)
	}
	if !qe.Transient() {
		t.Fatal("sessions quota must be transient")
	}
	r.EndSession("t/b")
	if err := r.BeginSession("t/a"); err != nil {
		t.Fatalf("BeginSession after drain: %v", err)
	}
}

func TestSetQuotaOverride(t *testing.T) {
	r := New[int](4, Quota{MaxSets: 1})
	r.SetQuota("big", Quota{MaxSets: 100})
	for i := 0; i < 10; i++ {
		if err := r.Register(fmt.Sprintf("big/s%d", i), i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Register("small/a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("small/b", 1, 0); err == nil {
		t.Fatal("default quota not applied to other tenant")
	}
}

func TestRangeSeesAll(t *testing.T) {
	r := New[int](16, Quota{})
	want := map[string]int{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("t%d/s%d", i%7, i)
		want[name] = i
		if err := r.Register(name, i, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]int{}
	r.Range(func(name string, v int) bool {
		got[name] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range saw %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%q] = %d, want %d", k, got[k], v)
		}
	}
}

// TestConcurrentHammer drives Register/Unregister/Get/Begin/EndSession
// from 64 goroutines across many shards and tenants under -race, then
// checks the accounting gauges settle to exactly zero.
func TestConcurrentHammer(t *testing.T) {
	r := New[int](16, Quota{MaxSets: 1 << 30, MaxBytes: 1 << 40, MaxSessions: 1 << 20})
	const goroutines = 64
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("t%d/s%d", g%8, i%32)
				switch i % 4 {
				case 0:
					if err := r.Register(name, i, int64(i%128)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					r.Get(name)
				case 2:
					if err := r.BeginSession(name); err != nil {
						t.Error(err)
						return
					}
					r.EndSession(name)
				case 3:
					r.Unregister(name)
				}
			}
		}(g)
	}
	wg.Wait()

	// Drain everything and verify no reservation leaked. Collect first:
	// Range holds the shard read lock, so mutating from inside it deadlocks.
	var names []string
	r.Range(func(name string, _ int) bool {
		names = append(names, name)
		return true
	})
	for _, name := range names {
		r.Unregister(name)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after drain", r.Len())
	}
	for tnt := 0; tnt < 8; tnt++ {
		sets, bytes, sessions := r.TenantUsage(fmt.Sprintf("t%d", tnt))
		if sets != 0 || bytes != 0 || sessions != 0 {
			t.Fatalf("tenant t%d leaked: %d sets / %d bytes / %d sessions", tnt, sets, bytes, sessions)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	r := New[int](0, Quota{})
	names := make([]string, 1024)
	for i := range names {
		names[i] = fmt.Sprintf("t%d/set-%d", i%32, i)
		if err := r.Register(names[i], i, 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r.Get(names[i&1023])
			i++
		}
	})
}
