// Package registry implements the sharded, multi-tenant set registry
// behind the pbs Server: a striped name → value map built for millions of
// entries under heavy concurrent lookup, plus per-tenant admission
// accounting (sets, logical bytes, concurrent sessions) with quotas.
//
// The registry is striped into a power-of-two number of shards keyed by a
// hash of the set name; every shard carries its own RWMutex, so the
// lookup fast path (session admission) takes one shared lock on 1/Nth of
// the key space and registration on one shard never blocks lookups on the
// others. Tenant accounting is kept out of the lookup path entirely: a
// lookup touches only its shard, while Register/Begin-session go through
// the tenant table (a sync.Map of atomic counters) where quota
// check-and-increment runs as a CAS loop — no global lock anywhere.
//
// Names are namespaced "tenant/setname": everything before the first '/'
// is the tenant; a name without a slash belongs to the default tenant "".
package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count New uses when given n <= 0. 64 shards
// keep the per-shard maps small enough to resize cheaply and make
// registration contention negligible at typical core counts.
const DefaultShards = 64

// Tenant returns the tenant namespace of a set name: the prefix before
// the first '/', or "" (the default tenant) for an unqualified name.
func Tenant(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return ""
}

// Quota bounds one tenant's footprint. Zero fields are unlimited.
type Quota struct {
	// MaxSets caps the number of registered sets.
	MaxSets int64
	// MaxBytes caps the summed logical size (as charged at registration,
	// typically 8 bytes per element) of the tenant's sets — resident or
	// not; the resident-memory watermark is a separate, global concern of
	// the store layer.
	MaxBytes int64
	// MaxSessions caps concurrently admitted sessions across all of the
	// tenant's sets.
	MaxSessions int64
}

// QuotaError reports a quota violation. Resource is "sets", "bytes", or
// "sessions"; Transient reports whether waiting can clear it (sessions
// drain on their own; sets and bytes only move when the tenant
// unregisters data).
type QuotaError struct {
	Tenant   string
	Resource string
	Used     int64
	Limit    int64
}

func (e *QuotaError) Error() string {
	t := e.Tenant
	if t == "" {
		t = "(default)"
	}
	return fmt.Sprintf("registry: tenant %s over %s quota (%d of %d)", t, e.Resource, e.Used, e.Limit)
}

// Transient reports whether the violated resource frees itself over time:
// concurrent sessions drain, while set-count and byte quotas stay
// exhausted until the tenant removes data.
func (e *QuotaError) Transient() bool { return e.Resource == "sessions" }

// tenantState is one tenant's accounting: live atomic gauges plus the
// quota they are checked against. Quota fields are stored atomically so
// SetQuota can retarget a live tenant without a lock on the hot path.
type tenantState struct {
	sets     atomic.Int64
	bytes    atomic.Int64
	sessions atomic.Int64

	maxSets     atomic.Int64
	maxBytes    atomic.Int64
	maxSessions atomic.Int64
}

func (t *tenantState) setQuota(q Quota) {
	t.maxSets.Store(q.MaxSets)
	t.maxBytes.Store(q.MaxBytes)
	t.maxSessions.Store(q.MaxSessions)
}

// reserve atomically adds delta to gauge if the result stays within limit
// (0 = unlimited); it reports the gauge value that made it fail.
func reserve(gauge *atomic.Int64, delta, limit int64) (int64, bool) {
	for {
		cur := gauge.Load()
		next := cur + delta
		if limit > 0 && delta > 0 && next > limit {
			return cur, false
		}
		if gauge.CompareAndSwap(cur, next) {
			return next, true
		}
	}
}

// entry wraps a stored value with the bytes it was charged for, so
// Unregister can release exactly what Register reserved.
type entry[V any] struct {
	v     V
	bytes int64
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]entry[V]
	// Pad shards apart so one shard's lock traffic does not false-share
	// cache lines with its neighbors.
	_ [40]byte
}

// Registry is the sharded, tenant-accounted name → value map. The zero
// value is not usable; construct with New.
type Registry[V any] struct {
	shards []shard[V]
	mask   uint64
	count  atomic.Int64

	defQuota Quota
	tenants  sync.Map // tenant string → *tenantState
}

// New returns a registry striped over the given shard count (rounded up
// to a power of two; <= 0 selects DefaultShards). defQuota applies to
// every tenant without an explicit SetQuota override.
func New[V any](shards int, defQuota Quota) *Registry[V] {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &Registry[V]{shards: make([]shard[V], n), mask: uint64(n - 1), defQuota: defQuota}
	for i := range r.shards {
		r.shards[i].m = make(map[string]entry[V])
	}
	return r
}

// hash is FNV-1a 64: cheap, allocation-free, and well-spread over short
// "tenant/name" strings.
func hash(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

func (r *Registry[V]) shard(name string) *shard[V] {
	return &r.shards[hash(name)&r.mask]
}

// tenant returns the accounting state for a tenant, creating it under the
// default quota on first touch.
func (r *Registry[V]) tenant(name string) *tenantState {
	t := Tenant(name)
	if ts, ok := r.tenants.Load(t); ok {
		return ts.(*tenantState)
	}
	ts := &tenantState{}
	ts.setQuota(r.defQuota)
	if prev, loaded := r.tenants.LoadOrStore(t, ts); loaded {
		return prev.(*tenantState)
	}
	return ts
}

// SetQuota overrides the quota of one tenant (by tenant name, not set
// name). It applies to future reservations; gauges already over the new
// limit drain naturally.
func (r *Registry[V]) SetQuota(tenant string, q Quota) {
	ts, _ := r.tenants.LoadOrStore(tenant, &tenantState{})
	ts.(*tenantState).setQuota(q)
}

// Get returns the value registered under name. This is the admission fast
// path: one shared lock on one shard, no tenant-table traffic.
func (r *Registry[V]) Get(name string) (V, bool) {
	sh := r.shard(name)
	sh.mu.RLock()
	e, ok := sh.m[name]
	sh.mu.RUnlock()
	return e.v, ok
}

// Len returns the total number of registered sets.
func (r *Registry[V]) Len() int { return int(r.count.Load()) }

// Range calls fn for every registered (name, value) pair, one shard at a
// time, until fn returns false. Entries registered or removed concurrently
// may or may not be seen; each shard is consistent in itself. fn runs
// under the shard's read lock and must not call Register or Unregister.
func (r *Registry[V]) Range(fn func(name string, v V) bool) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for name, e := range sh.m {
			if !fn(name, e.v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Register publishes v under name, charging bytes against the tenant's
// byte quota and one set against its set quota. Re-registering an existing
// name swaps the value in place, re-charging only the byte delta. It
// returns a *QuotaError when the tenant is over quota, with nothing
// changed.
func (r *Registry[V]) Register(name string, v V, bytes int64) error {
	ts := r.tenant(name)
	sh := r.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, existed := sh.m[name]
	if !existed {
		if used, ok := reserve(&ts.sets, 1, ts.maxSets.Load()); !ok {
			return &QuotaError{Tenant: Tenant(name), Resource: "sets", Used: used, Limit: ts.maxSets.Load()}
		}
	}
	delta := bytes
	if existed {
		delta -= old.bytes
	}
	if used, ok := reserve(&ts.bytes, delta, ts.maxBytes.Load()); !ok {
		if !existed {
			ts.sets.Add(-1)
		}
		return &QuotaError{Tenant: Tenant(name), Resource: "bytes", Used: used, Limit: ts.maxBytes.Load()}
	}
	sh.m[name] = entry[V]{v: v, bytes: bytes}
	if !existed {
		r.count.Add(1)
	}
	return nil
}

// Unregister removes name, releasing its set and byte reservations, and
// returns the removed value.
func (r *Registry[V]) Unregister(name string) (V, bool) {
	sh := r.shard(name)
	sh.mu.Lock()
	e, ok := sh.m[name]
	if ok {
		delete(sh.m, name)
	}
	sh.mu.Unlock()
	if ok {
		ts := r.tenant(name)
		ts.sets.Add(-1)
		ts.bytes.Add(-e.bytes)
		r.count.Add(-1)
	}
	return e.v, ok
}

// BeginSession reserves one concurrent-session slot against the tenant of
// name, returning a *QuotaError (Transient) when the tenant is at its
// session quota. Every successful call must be paired with EndSession.
func (r *Registry[V]) BeginSession(name string) error {
	ts := r.tenant(name)
	if used, ok := reserve(&ts.sessions, 1, ts.maxSessions.Load()); !ok {
		return &QuotaError{Tenant: Tenant(name), Resource: "sessions", Used: used, Limit: ts.maxSessions.Load()}
	}
	return nil
}

// EndSession releases a BeginSession reservation.
func (r *Registry[V]) EndSession(name string) {
	r.tenant(name).sessions.Add(-1)
}

// TenantUsage reports a tenant's current accounting gauges (sets, bytes,
// sessions), for metrics and tests.
func (r *Registry[V]) TenantUsage(tenant string) (sets, bytes, sessions int64) {
	ts, ok := r.tenants.Load(tenant)
	if !ok {
		return 0, 0, 0
	}
	t := ts.(*tenantState)
	return t.sets.Load(), t.bytes.Load(), t.sessions.Load()
}
