// Package lz implements the byte-oriented LZ77 codec behind the wire
// protocol's negotiated frame compression. It is deliberately small: a
// greedy snappy-style matcher over a 4-byte hash table, a varint-framed
// literal/copy stream, and a strictly bounds-checked decoder — no external
// dependencies, deterministic output, and a decoder that can never read or
// write outside the buffers it is given.
//
// Encoded layout:
//
//	uvarint(decodedLen) op*
//
// where each op starts with a control uvarint v:
//
//	v even: a literal run of v>>1 bytes (>= 1) follows verbatim
//	v odd:  a copy of length v>>1 (>= MinMatch) from uvarint(offset)
//	        bytes back in the decoded output (1 <= offset <= decoded so far)
//
// Copies may overlap their own output (offset < length), which encodes
// runs; the decoder resolves them byte by byte.
package lz

import (
	"encoding/binary"
	"fmt"
)

// MinMatch is the shortest copy the encoder emits (and the decoder
// accepts). Below it a copy costs more than the literal bytes it replaces.
const MinMatch = 4

const (
	hashBits = 14
	hashLen  = 1 << hashBits
	// hashMul is the Knuth multiplicative constant; only the top hashBits
	// of the product are kept.
	hashMul = 0x9E3779B1
)

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

func hash4(v uint32) uint32 {
	return (v * hashMul) >> (32 - hashBits)
}

// Compress appends the encoded form of src to dst and returns the result,
// or nil when the encoding would not be strictly smaller than src (the
// caller then sends src uncompressed). An empty or near-incompressible
// input therefore costs one cheap encoding pass and no wire overhead.
func Compress(dst, src []byte) []byte {
	if len(src) < 16 {
		return nil
	}
	base := len(dst)
	limit := base + len(src) // exceed this and the encoding already lost
	out := binary.AppendUvarint(dst, uint64(len(src)))

	// table maps hash4 of a 4-byte sequence to position+1 (0 = empty), so
	// the zero value needs no initialization sentinel pass.
	var table [hashLen]int32

	litStart := 0
	i := 0
	for i+MinMatch <= len(src) && len(out) < limit {
		h := hash4(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || load32(src, cand) != load32(src, i) {
			i++
			continue
		}
		length := MinMatch
		for i+length < len(src) && src[cand+length] == src[i+length] {
			length++
		}
		if lit := src[litStart:i]; len(lit) > 0 {
			out = binary.AppendUvarint(out, uint64(len(lit))<<1)
			out = append(out, lit...)
		}
		out = binary.AppendUvarint(out, uint64(length)<<1|1)
		out = binary.AppendUvarint(out, uint64(i-cand))
		// Seed the table across the matched region sparsely (every other
		// position) — enough to catch the next occurrence without paying a
		// full hashing pass over bytes already encoded.
		for j := i + 2; j+MinMatch <= len(src) && j < i+length; j += 2 {
			table[hash4(load32(src, j))] = int32(j + 1)
		}
		i += length
		litStart = i
	}
	if lit := src[litStart:]; len(lit) > 0 {
		out = binary.AppendUvarint(out, uint64(len(lit))<<1)
		out = append(out, lit...)
	}
	if len(out) >= limit {
		return nil
	}
	return out
}

// Decode appends the decoded form of src to dst and returns the result.
// limit bounds the declared decoded length — the allocation guard against
// a hostile peer claiming a huge expansion. Every offset and length is
// validated; a malformed input returns an error, never a panic or an
// out-of-bounds access.
func Decode(dst, src []byte, limit int) ([]byte, error) {
	rawLen, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, fmt.Errorf("lz: truncated length header")
	}
	if limit >= 0 && rawLen > uint64(limit) {
		return nil, fmt.Errorf("lz: declared length %d exceeds limit %d", rawLen, limit)
	}
	src = src[k:]
	base := len(dst)
	want := base + int(rawLen)
	if cap(dst) < want {
		grown := make([]byte, base, want)
		copy(grown, dst)
		dst = grown
	}
	out := dst
	for len(src) > 0 {
		v, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("lz: truncated op")
		}
		src = src[k:]
		if v&1 == 0 {
			n := v >> 1
			if n == 0 {
				return nil, fmt.Errorf("lz: empty literal run")
			}
			if n > uint64(len(src)) || uint64(len(out)-base)+n > rawLen {
				return nil, fmt.Errorf("lz: literal run overflows")
			}
			out = append(out, src[:n]...)
			src = src[n:]
			continue
		}
		length := v >> 1
		if length < MinMatch {
			return nil, fmt.Errorf("lz: copy shorter than %d", MinMatch)
		}
		off, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("lz: truncated copy offset")
		}
		src = src[k:]
		if off == 0 || off > uint64(len(out)-base) {
			return nil, fmt.Errorf("lz: copy offset %d outside decoded output", off)
		}
		if uint64(len(out)-base)+length > rawLen {
			return nil, fmt.Errorf("lz: copy overflows declared length")
		}
		// Byte-at-a-time on purpose: a copy may overlap its own output
		// (offset < length encodes a run), which a block copy would corrupt.
		p := len(out) - int(off)
		for j := 0; uint64(j) < length; j++ {
			out = append(out, out[p+j])
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("lz: decoded %d bytes, declared %d", len(out)-base, rawLen)
	}
	return out, nil
}
