package lz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	enc := Compress(nil, src)
	if enc == nil {
		return // incompressible is a legal outcome, nothing to verify
	}
	if len(enc) >= len(src) {
		t.Fatalf("Compress returned %d bytes for %d-byte input without declining", len(enc), len(src))
	}
	dec, err := Decode(nil, enc, len(src))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(dec), len(src))
	}
}

func TestRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("hello world hello world hello world hello world"),
		bytes.Repeat([]byte{0}, 4096),
		bytes.Repeat([]byte("abcd"), 1000),
		[]byte(strings.Repeat("the quick brown fox ", 64) + "jumps"),
	}
	rng := rand.New(rand.NewSource(1))
	// Mixed compressible/random segments exercise literal runs around copies.
	mixed := make([]byte, 0, 8192)
	for i := 0; i < 16; i++ {
		seg := make([]byte, 256)
		rng.Read(seg)
		mixed = append(mixed, seg...)
		mixed = append(mixed, bytes.Repeat([]byte{byte(i)}, 256)...)
	}
	cases = append(cases, mixed)
	// Small-alphabet data, the shape of zigzag-varint sketch payloads.
	sketchish := make([]byte, 4096)
	for i := range sketchish {
		sketchish[i] = byte(rng.Intn(4))
	}
	cases = append(cases, sketchish)
	for i, src := range cases {
		src := src
		t.Run("", func(t *testing.T) {
			_ = i
			roundTrip(t, src)
		})
	}
}

func TestIncompressibleDeclines(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 4096)
	rng.Read(src)
	if enc := Compress(nil, src); enc != nil && len(enc) >= len(src) {
		t.Fatalf("Compress returned a non-shrinking encoding (%d >= %d)", len(enc), len(src))
	}
}

func TestDecodeLimit(t *testing.T) {
	src := bytes.Repeat([]byte("abcd"), 1000)
	enc := Compress(nil, src)
	if enc == nil {
		t.Fatal("expected compressible input")
	}
	if _, err := Decode(nil, enc, len(src)-1); err == nil {
		t.Fatal("Decode accepted a declared length over the limit")
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := [][]byte{
		{},                       // no length header
		{0x80},                   // truncated uvarint
		{10},                     // declared 10 bytes, no ops
		{4, 0x09, 0x01},          // copy before any output
		{4, 0x02, 'a', 0x09},     // truncated copy op
		{2, 0x06, 'a', 'b', 'c'}, // literal overflows declared length
		{4, 0x00},                // empty literal run
	}
	for _, src := range cases {
		if _, err := Decode(nil, src, 1<<20); err == nil {
			t.Fatalf("Decode accepted malformed input % x", src)
		}
	}
}

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("hello world hello world hello world"))
	f.Add(bytes.Repeat([]byte{1, 2}, 64))
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := Compress(nil, src)
		if enc == nil {
			return
		}
		dec, err := Decode(nil, enc, len(src))
		if err != nil {
			t.Fatalf("Decode of own encoding: %v", err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzDecode(f *testing.F) {
	f.Add(Compress(nil, bytes.Repeat([]byte("abcd"), 16)))
	f.Add([]byte{4, 0x02, 'a', 0x09, 0x01})
	f.Fuzz(func(t *testing.T, src []byte) {
		// Must never panic or over-allocate past the limit, valid or not.
		out, err := Decode(nil, src, 1<<16)
		if err == nil && len(out) > 1<<16 {
			t.Fatalf("Decode produced %d bytes past its limit", len(out))
		}
	})
}
