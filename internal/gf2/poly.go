package gf2

// Poly is a polynomial over GF(2^m), stored as coefficients in ascending
// degree order: Poly{c0, c1, c2} = c0 + c1*x + c2*x^2. A nil or empty slice
// is the zero polynomial. Polynomials are kept normalized (no trailing zero
// coefficients) by the operations in this file.
type Poly []uint64

// NewPoly returns a normalized copy of coeffs.
func NewPoly(coeffs ...uint64) Poly {
	p := make(Poly, len(coeffs))
	copy(p, coeffs)
	return p.normalize()
}

func (p Poly) normalize() Poly {
	i := len(p)
	for i > 0 && p[i-1] == 0 {
		i--
	}
	return p[:i]
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p) == 0 }

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Eval evaluates p at the point x using Horner's rule.
func (p Poly) Eval(f *Field, x uint64) uint64 {
	var acc uint64
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Mul(acc, x) ^ p[i]
	}
	return acc
}

// PolyAdd returns a + b (coefficient-wise XOR).
func PolyAdd(a, b Poly) Poly {
	return PolyAddInto(a, b, nil)
}

// PolyAddInto computes a + b into dst's backing array, growing it only
// when too small, and returns the normalized result. dst must not alias
// a or b.
func PolyAddInto(a, b, dst Poly) Poly {
	if len(a) < len(b) {
		a, b = b, a
	}
	dst = growPoly(dst, len(a))
	copy(dst, a)
	for i := range b {
		dst[i] ^= b[i]
	}
	return dst.normalize()
}

// PolyMul returns a * b over the field f.
func PolyMul(f *Field, a, b Poly) Poly {
	return PolyMulInto(f, a, b, nil)
}

// PolyMulInto computes a * b into dst's backing array, growing it only
// when too small, and returns the normalized result. dst must not alias
// a or b.
func PolyMulInto(f *Field, a, b, dst Poly) Poly {
	if a.IsZero() || b.IsZero() {
		return dst[:0]
	}
	dst = growPoly(dst, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		w := f.Window(ai)
		for j, bj := range b {
			if bj != 0 {
				dst[i+j] ^= w.Mul(bj)
			}
		}
	}
	return dst.normalize()
}

// growPoly resizes dst to n coefficients, all zero, reusing its backing
// array when large enough.
func growPoly(dst Poly, n int) Poly {
	if cap(dst) < n {
		return make(Poly, n)
	}
	dst = dst[:n]
	clear(dst)
	return dst
}

// PolyMod returns a mod b over the field f. It panics if b is zero.
func PolyMod(f *Field, a, b Poly) Poly {
	if b.IsZero() {
		panic("gf2: polynomial modulo by zero")
	}
	if a.Degree() < b.Degree() {
		return a.Clone()
	}
	r := a.Clone()
	invLead := f.Inv(b[len(b)-1])
	for r.Degree() >= b.Degree() {
		d := r.Degree() - b.Degree()
		c := f.Mul(r[len(r)-1], invLead)
		w := f.Window(c)
		for i, bi := range b {
			if bi != 0 {
				r[d+i] ^= w.Mul(bi)
			}
		}
		r = r.normalize()
	}
	return r
}

// PolyDivMod returns the quotient and remainder of a / b.
func PolyDivMod(f *Field, a, b Poly) (q, r Poly) {
	if b.IsZero() {
		panic("gf2: polynomial division by zero")
	}
	if a.Degree() < b.Degree() {
		return nil, a.Clone()
	}
	r = a.Clone()
	q = make(Poly, a.Degree()-b.Degree()+1)
	invLead := f.Inv(b[len(b)-1])
	for r.Degree() >= b.Degree() {
		d := r.Degree() - b.Degree()
		c := f.Mul(r[len(r)-1], invLead)
		q[d] = c
		w := f.Window(c)
		for i, bi := range b {
			if bi != 0 {
				r[d+i] ^= w.Mul(bi)
			}
		}
		r = r.normalize()
	}
	return q.normalize(), r
}

// PolyGCD returns the monic greatest common divisor of a and b.
func PolyGCD(f *Field, a, b Poly) Poly {
	a, b = a.Clone(), b.Clone()
	for !b.IsZero() {
		a, b = b, PolyMod(f, a, b)
	}
	return a.Monic(f)
}

// Monic scales p so its leading coefficient is 1. The zero polynomial is
// returned unchanged.
func (p Poly) Monic(f *Field) Poly {
	if p.IsZero() {
		return p
	}
	lead := p[len(p)-1]
	if lead == 1 {
		return p
	}
	inv := f.Inv(lead)
	w := f.Window(inv)
	q := make(Poly, len(p))
	for i, c := range p {
		q[i] = w.Mul(c)
	}
	return q
}

// PolyMulMod returns a * b mod m over the field f.
func PolyMulMod(f *Field, a, b, m Poly) Poly {
	return PolyMod(f, PolyMul(f, a, b), m)
}

// PolySqrMod returns p^2 mod m. In characteristic 2, squaring a polynomial
// squares each coefficient and doubles each exponent.
func PolySqrMod(f *Field, p, m Poly) Poly {
	if p.IsZero() {
		return nil
	}
	sq := make(Poly, 2*len(p)-1)
	for i, c := range p {
		if c != 0 {
			sq[2*i] = f.Sqr(c)
		}
	}
	return PolyMod(f, Poly(sq).normalize(), m)
}

// PolyFrobeniusPower returns x^(2^k) mod m, computed by k modular squarings.
func PolyFrobeniusPower(f *Field, k uint, m Poly) Poly {
	p := NewPoly(0, 1) // x
	p = PolyMod(f, p, m)
	for i := uint(0); i < k; i++ {
		p = PolySqrMod(f, p, m)
	}
	return p
}
