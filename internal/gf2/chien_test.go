package gf2

import (
	"math/rand"
	"testing"
)

// sparsePoly draws a random polynomial of degree <= maxDeg over f with a
// bias toward zero interior coefficients, which Chien must skip correctly.
func sparsePoly(rng *rand.Rand, f *Field, maxDeg int) Poly {
	p := make(Poly, maxDeg+1)
	for i := range p {
		if rng.Intn(4) == 0 {
			continue // keep some coefficients zero
		}
		p[i] = rng.Uint64() & f.Order()
	}
	return p.normalize()
}

func TestChienMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, m := range []uint{2, 5, 8, 11, 16} {
		f := MustField(m)
		for trial := 0; trial < 10; trial++ {
			p := sparsePoly(rng, f, 1+rng.Intn(12))
			var ws Chien
			if !ws.Init(f, p) {
				t.Fatalf("m=%d: Init refused a table field", m)
			}
			for i := uint64(0); i < f.Order(); i++ {
				x := f.Exp(i)
				want := p.Eval(f, x)
				if got := ws.Next(); got != want {
					t.Fatalf("m=%d deg=%d: p(α^%d) = %#x, want %#x", m, p.Degree(), i, got, want)
				}
			}
		}
	}
}

func TestChienRejectsTablelessField(t *testing.T) {
	f := MustField(32)
	var ws Chien
	if ws.Init(f, NewPoly(1, 2, 3)) {
		t.Fatal("Init should report false for m=32 (no log tables)")
	}
}

func TestChienWorkspaceReuse(t *testing.T) {
	f := MustField(8)
	rng := rand.New(rand.NewSource(22))
	var ws Chien
	for trial := 0; trial < 20; trial++ {
		p := sparsePoly(rng, f, 1+rng.Intn(8))
		ws.Init(f, p)
		for i := uint64(0); i < 40; i++ {
			if got, want := ws.Next(), p.Eval(f, f.Exp(i)); got != want {
				t.Fatalf("trial %d: reused workspace diverged at i=%d", trial, i)
			}
		}
	}
}

func TestChienSteadyStateAllocs(t *testing.T) {
	f := MustField(11)
	p := NewPoly(1, 7, 0, 1030, 99)
	var ws Chien
	ws.Init(f, p) // warm up the workspace
	allocs := testing.AllocsPerRun(100, func() {
		ws.Init(f, p)
		for i := 0; i < 64; i++ {
			ws.Next()
		}
	})
	if allocs != 0 {
		t.Fatalf("Chien Init+Next allocated %v times per run, want 0", allocs)
	}
}

func TestHalfTraceSolvesArtinSchreier(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, m := range []uint{3, 5, 11, 13} {
		f := MustField(m)
		solved := 0
		for trial := 0; trial < 200; trial++ {
			a := rng.Uint64() & f.Order()
			if f.Trace(a) != 0 {
				continue
			}
			y := f.HalfTrace(a)
			if f.Sqr(y)^y != a {
				t.Fatalf("m=%d: HalfTrace(%#x) = %#x does not solve y²+y=a", m, a, y)
			}
			solved++
		}
		if solved == 0 {
			t.Fatalf("m=%d: no trace-zero samples drawn", m)
		}
	}
}

func TestChienZerosMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, m := range []uint{5, 8, 11} {
		f := MustField(m)
		for trial := 0; trial < 20; trial++ {
			p := sparsePoly(rng, f, 1+rng.Intn(10))
			var a, b Chien
			a.Init(f, p)
			b.Init(f, p)
			var want []uint64
			for i := uint64(0); i < f.Order(); i++ {
				if a.Next() == 0 {
					want = append(want, i)
				}
			}
			got := b.Zeros(nil, len(want)+1)
			if len(got) != len(want) {
				t.Fatalf("m=%d: Zeros found %d zeros, Next found %d", m, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("m=%d: zero %d: got exponent %d want %d", m, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPolyAddIntoMatchesPolyAdd(t *testing.T) {
	f := MustField(11)
	rng := rand.New(rand.NewSource(23))
	var dst Poly
	for trial := 0; trial < 50; trial++ {
		a := sparsePoly(rng, f, rng.Intn(10))
		b := sparsePoly(rng, f, rng.Intn(10))
		want := PolyAdd(a, b)
		dst = PolyAddInto(a, b, dst)
		if len(dst) != len(want) {
			t.Fatalf("length mismatch: got %v want %v", dst, want)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("coefficient %d: got %v want %v", i, dst, want)
			}
		}
	}
}

func TestPolyMulIntoMatchesPolyMul(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, m := range []uint{8, 11, 32} {
		f := MustField(m)
		var dst Poly
		for trial := 0; trial < 30; trial++ {
			a := sparsePoly(rng, f, rng.Intn(8))
			b := sparsePoly(rng, f, rng.Intn(8))
			want := PolyMul(f, a, b)
			dst = PolyMulInto(f, a, b, dst)
			if len(dst) != len(want) {
				t.Fatalf("m=%d: length mismatch: got %v want %v", m, dst, want)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("m=%d coefficient %d: got %v want %v", m, i, dst, want)
				}
			}
		}
	}
}

func TestPolyIntoSteadyStateAllocs(t *testing.T) {
	f := MustField(11)
	a := NewPoly(3, 0, 9, 1)
	b := NewPoly(5, 2, 1)
	dst := make(Poly, 0, 16)
	sum := make(Poly, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		dst = PolyMulInto(f, a, b, dst)
		sum = PolyAddInto(a, b, sum)
	})
	if allocs != 0 {
		t.Fatalf("in-place poly ops allocated %v times per run, want 0", allocs)
	}
}
