package gf2

// Chien is a reusable workspace for incremental polynomial evaluation at
// the successive points α^0, α^1, α^2, ... — the access pattern of a Chien
// root search. For table-backed fields (m ≤ tableThreshold) each term
// c_j·x^j is tracked in the log domain: advancing from α^i to α^(i+1)
// multiplies term j by the fixed constant α^j, which is one modular
// addition of j to the term's discrete log plus one antilog lookup. That
// replaces the general-multiplication chain of a Horner evaluation with
// per-term constant multiplies, and allocates nothing after the workspace
// warms up.
//
// A Chien value is not safe for concurrent use; give each goroutine its
// own workspace.
type Chien struct {
	f     *Field
	c0    uint64   // constant coefficient, contributed verbatim to every point
	logs  []uint64 // discrete log of term j's current value c_j·α^(i·j)
	steps []uint64 // per-term log increment j (mod 2^m − 1)
	acc   []uint64 // per-point accumulator for the transposed bulk scan
}

// Init prepares ws to evaluate the polynomial with coefficients p
// (ascending degree order) at α^0, α^1, .... It reports false when the
// field has no log tables (m > tableThreshold); callers must then fall
// back to a different evaluation strategy. Zero coefficients cost nothing
// per step.
func (ws *Chien) Init(f *Field, p []uint64) bool {
	if f.logT == nil {
		return false
	}
	ws.f = f
	ws.logs = ws.logs[:0]
	ws.steps = ws.steps[:0]
	ws.c0 = 0
	if len(p) == 0 {
		return true
	}
	ws.c0 = p[0]
	for j := 1; j < len(p); j++ {
		if p[j] == 0 {
			continue
		}
		step := uint64(j) % f.ord
		if step == 0 {
			// x^j is identically 1 on the multiplicative group: the term
			// is a constant and folds into c0.
			ws.c0 ^= p[j]
			continue
		}
		ws.logs = append(ws.logs, uint64(f.logT[p[j]]))
		ws.steps = append(ws.steps, step)
	}
	return true
}

// Next returns p(α^i) for the i-th call since Init (starting at i = 0)
// and advances the workspace to the next point.
func (ws *Chien) Next() uint64 {
	acc := ws.c0
	f := ws.f
	steps := ws.steps
	for k, l := range ws.logs {
		acc ^= f.expT[l]
		l += steps[k]
		if l >= f.ord {
			l -= f.ord
		}
		ws.logs[k] = l
	}
	return acc
}

// chienAccLimit caps the group order for which the transposed bulk scan
// keeps a per-point accumulator (128 KiB of workspace at the limit);
// larger table fields fall back to the point-at-a-time loop.
const chienAccLimit = 1 << 14

// Zeros scans one full multiplicative-group cycle of points α^i starting
// from the workspace's current position (α^0 right after Init), appending
// to dst the step offsets i at which the polynomial evaluates to zero. It
// returns once max zeros have been collected, and may leave the
// incremental cursor in an unspecified position — call Init again before
// reusing the workspace.
//
// For moderate group orders the scan runs transposed — term-major over a
// per-point accumulator — so each term walks the antilog table with a
// fixed stride and no cross-term dependency; the wraparound of each
// stride is hoisted out of the inner loop, and the final term's pass is
// fused with the zero test. This is markedly faster than evaluating
// point by point.
func (ws *Chien) Zeros(dst []uint64, max int) []uint64 {
	if max <= 0 {
		return dst
	}
	f := ws.f
	expT := f.expT
	ord := f.ord
	if len(ws.logs) == 0 {
		// Constant polynomial: zero everywhere or nowhere.
		for i := uint64(0); ws.c0 == 0 && i < ord && len(dst) < max; i++ {
			dst = append(dst, i)
		}
		return dst
	}
	if ord > chienAccLimit {
		return ws.zerosByPoint(dst, max)
	}
	if uint64(cap(ws.acc)) < ord {
		ws.acc = make([]uint64, ord)
	}
	n := int(ord)
	acc := ws.acc[:n]
	clear(acc)
	last := len(ws.logs) - 1
	for k := 0; k < last; k++ {
		l := ws.logs[k]
		j := ws.steps[k]
		// Walk the antilog table in stride-j segments, reducing l only at
		// each wraparound so the inner loop is branch-free.
		for i := 0; i < n; {
			end := i + int((ord-l+j-1)/j)
			if end > n {
				end = n
			}
			for ; i < end; i++ {
				acc[i] ^= expT[l]
				l += j
			}
			if l >= ord {
				l -= ord
			}
		}
	}
	// Final term fused with the zero test: p(α^i) = 0 ⟺ Σ terms = c0.
	c0 := ws.c0
	l := ws.logs[last]
	j := ws.steps[last]
	for i := 0; i < n; {
		end := i + int((ord-l+j-1)/j)
		if end > n {
			end = n
		}
		for ; i < end; i++ {
			if acc[i]^expT[l] == c0 {
				dst = append(dst, uint64(i))
				if len(dst) >= max {
					return dst
				}
			}
			l += j
		}
		if l >= ord {
			l -= ord
		}
	}
	return dst
}

// zerosByPoint is the point-at-a-time variant of Zeros used when the
// group order would make the transposed accumulator too large. It
// advances the workspace past the points it consumes.
func (ws *Chien) zerosByPoint(dst []uint64, max int) []uint64 {
	ord := ws.f.ord
	for i := uint64(0); i < ord; i++ {
		if ws.Next() == 0 {
			dst = append(dst, i)
			if len(dst) >= max {
				break
			}
		}
	}
	return dst
}
