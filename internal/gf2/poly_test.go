package gf2

import (
	"math/rand"
	"testing"
)

func randPoly(rng *rand.Rand, f *Field, maxDeg int) Poly {
	n := rng.Intn(maxDeg + 2)
	p := make(Poly, n)
	for i := range p {
		p[i] = rng.Uint64() & ((1 << f.M()) - 1)
	}
	return p.normalize()
}

func TestPolyNormalize(t *testing.T) {
	p := NewPoly(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", p.Degree())
	}
	z := NewPoly(0, 0)
	if !z.IsZero() || z.Degree() != -1 {
		t.Fatal("zero polynomial not normalized")
	}
}

func TestPolyEvalHorner(t *testing.T) {
	f := MustField(8)
	// p(x) = 3 + 5x + x^2; check p(2) by hand: 3 ^ Mul(5,2) ^ Sqr(2).
	p := NewPoly(3, 5, 1)
	want := uint64(3) ^ f.Mul(5, 2) ^ f.Sqr(2)
	if got := p.Eval(f, 2); got != want {
		t.Fatalf("Eval = %x, want %x", got, want)
	}
	if got := Poly(nil).Eval(f, 7); got != 0 {
		t.Fatalf("zero poly eval = %x", got)
	}
}

func TestPolyMulAddConsistency(t *testing.T) {
	f := MustField(10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := randPoly(rng, f, 8), randPoly(rng, f, 8)
		x := rng.Uint64() & ((1 << 10) - 1)
		// (a*b)(x) == a(x)*b(x); (a+b)(x) == a(x)+b(x)
		if got, want := PolyMul(f, a, b).Eval(f, x), f.Mul(a.Eval(f, x), b.Eval(f, x)); got != want {
			t.Fatalf("mul-eval mismatch: %x want %x", got, want)
		}
		if got, want := PolyAdd(a, b).Eval(f, x), a.Eval(f, x)^b.Eval(f, x); got != want {
			t.Fatalf("add-eval mismatch")
		}
	}
}

func TestPolyDivMod(t *testing.T) {
	f := MustField(11)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := randPoly(rng, f, 12)
		b := randPoly(rng, f, 6)
		if b.IsZero() {
			continue
		}
		q, r := PolyDivMod(f, a, b)
		if !r.IsZero() && r.Degree() >= b.Degree() {
			t.Fatalf("remainder degree %d >= divisor degree %d", r.Degree(), b.Degree())
		}
		// a == q*b + r
		recon := PolyAdd(PolyMul(f, q, b), r)
		if len(recon) != len(a) {
			t.Fatalf("reconstruction length mismatch: %v vs %v", recon, a)
		}
		for j := range a {
			if recon[j] != a[j] {
				t.Fatalf("reconstruction mismatch at %d", j)
			}
		}
		// PolyMod must agree with the remainder.
		r2 := PolyMod(f, a, b)
		if len(r2) != len(r) {
			t.Fatalf("PolyMod disagrees with PolyDivMod")
		}
		for j := range r {
			if r[j] != r2[j] {
				t.Fatalf("PolyMod coefficient mismatch")
			}
		}
	}
}

func TestPolyGCDKnownFactors(t *testing.T) {
	f := MustField(8)
	// g = (x + 3)(x + 5); a = g*(x+7); b = g*(x+9). gcd(a,b) == g (monic).
	g := PolyMul(f, NewPoly(3, 1), NewPoly(5, 1))
	a := PolyMul(f, g, NewPoly(7, 1))
	b := PolyMul(f, g, NewPoly(9, 1))
	got := PolyGCD(f, a, b)
	gm := g.Monic(f)
	if got.Degree() != gm.Degree() {
		t.Fatalf("gcd degree %d want %d", got.Degree(), gm.Degree())
	}
	for i := range gm {
		if got[i] != gm[i] {
			t.Fatalf("gcd mismatch: %v want %v", got, gm)
		}
	}
}

func TestPolySqrMod(t *testing.T) {
	f := MustField(9)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p := randPoly(rng, f, 6)
		m := randPoly(rng, f, 4)
		if m.Degree() < 1 {
			continue
		}
		want := PolyMod(f, PolyMul(f, p, p), m)
		got := PolySqrMod(f, p, m)
		if len(got) != len(want) {
			t.Fatalf("SqrMod length mismatch")
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("SqrMod mismatch")
			}
		}
	}
}

func TestPolyFrobeniusPowerFixesField(t *testing.T) {
	// x^(2^m) mod (x + c) == c for any field element c, because evaluation
	// at the root c gives c^(2^m) = c.
	f := MustField(8)
	for _, c := range []uint64{1, 5, 77, 200} {
		m := NewPoly(c, 1) // x + c, root c
		p := PolyFrobeniusPower(f, f.M(), m)
		if p.Degree() != 0 || p.Eval(f, 0) != c {
			t.Fatalf("x^(2^m) mod (x+%d) = %v, want constant %d", c, p, c)
		}
	}
}

func TestMonic(t *testing.T) {
	f := MustField(8)
	p := NewPoly(6, 10, 4)
	m := p.Monic(f)
	if m[len(m)-1] != 1 {
		t.Fatal("Monic leading coefficient != 1")
	}
	// Same roots: scale preserves evaluation-to-zero.
	inv := f.Inv(4)
	for i := range p {
		if m[i] != f.Mul(p[i], inv) {
			t.Fatal("Monic scaled incorrectly")
		}
	}
	z := Poly(nil).Monic(f)
	if !z.IsZero() {
		t.Fatal("Monic of zero should be zero")
	}
}
