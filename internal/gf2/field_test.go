package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// gf2PolyMulMod multiplies two polynomials over GF(2) (not GF(2^m)) modulo
// the binary polynomial mod. Used only to verify irreducibility of the
// field-defining polynomials.
func gf2MulMod(a, b, mod uint64, deg uint) uint64 {
	var r uint64
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		b >>= 1
		a <<= 1
		if a&(1<<deg) != 0 {
			a ^= mod
		}
	}
	return r
}

// TestPrimitivePolysIrreducible checks that every table entry is irreducible
// over GF(2): x^(2^m) == x (mod p) and gcd-style distinctness at proper
// subfield levels, i.e. x^(2^k) != x (mod p) for all 1 <= k < m.
func TestPrimitivePolysIrreducible(t *testing.T) {
	for m := uint(2); m <= MaxM; m++ {
		p := primitivePolys[m]
		if p>>m != 1 {
			t.Fatalf("m=%d: polynomial 0x%x does not have degree %d", m, p, m)
		}
		x := uint64(2) // the polynomial "x"
		cur := x
		for k := uint(1); k <= m; k++ {
			cur = gf2MulMod(cur, cur, p, m) // cur = x^(2^k) mod p
			if k < m && cur == x {
				t.Errorf("m=%d: poly 0x%x reducible (x^(2^%d) == x)", m, p, k)
			}
			if k == m && cur != x {
				t.Errorf("m=%d: poly 0x%x fails x^(2^m) == x", m, p)
			}
		}
	}
}

func testFieldAxioms(t *testing.T, m uint, trials int) {
	f := MustField(m)
	rng := rand.New(rand.NewSource(int64(m) * 7919))
	rnd := func() uint64 { return rng.Uint64() & ((1 << m) - 1) }
	for i := 0; i < trials; i++ {
		a, b, c := rnd(), rnd(), rnd()
		if got := f.Mul(a, b); got != f.Mul(b, a) {
			t.Fatalf("m=%d: Mul not commutative: %x*%x", m, a, b)
		}
		if got := f.Mul(f.Mul(a, b), c); got != f.Mul(a, f.Mul(b, c)) {
			t.Fatalf("m=%d: Mul not associative", m)
		}
		if got := f.Mul(a, b^c); got != f.Mul(a, b)^f.Mul(a, c) {
			t.Fatalf("m=%d: Mul not distributive over Add", m)
		}
		if got := f.Mul(a, 1); got != a {
			t.Fatalf("m=%d: 1 not multiplicative identity: %x -> %x", m, a, got)
		}
		if got := f.Sqr(a); got != f.Mul(a, a) {
			t.Fatalf("m=%d: Sqr(%x)=%x != Mul=%x", m, a, got, f.Mul(a, a))
		}
		if a != 0 {
			if got := f.Mul(a, f.Inv(a)); got != 1 {
				t.Fatalf("m=%d: a*Inv(a) != 1 for a=%x (got %x)", m, a, got)
			}
			if got := f.Mul(f.Div(b, a), a); got != b {
				t.Fatalf("m=%d: Div roundtrip failed", m)
			}
		}
	}
}

func TestFieldAxiomsSmall(t *testing.T) {
	for m := uint(2); m <= 12; m++ {
		testFieldAxioms(t, m, 500)
	}
}

func TestFieldAxiomsLarge(t *testing.T) {
	for _, m := range []uint{17, 20, 24, 29, 32} {
		testFieldAxioms(t, m, 500)
	}
}

// TestTableVsGeneric cross-checks the log/exp-table multiply against the
// carry-less-multiply path on the same field degree.
func TestTableVsGeneric(t *testing.T) {
	for _, m := range []uint{8, 11, 13, 16} {
		f := MustField(m)
		// Build a "generic" twin without tables by reducing clmul directly.
		rng := rand.New(rand.NewSource(int64(m)))
		for i := 0; i < 2000; i++ {
			a := rng.Uint64() & f.mask
			b := rng.Uint64() & f.mask
			want := f.reduce(clmul(a, b))
			if a == 0 || b == 0 {
				want = 0
			}
			if got := f.Mul(a, b); got != want {
				t.Fatalf("m=%d: table Mul(%x,%x)=%x, generic=%x", m, a, b, got, want)
			}
		}
	}
}

func TestWindowMulMatchesMul(t *testing.T) {
	for _, m := range []uint{8, 16, 24, 32} {
		f := MustField(m)
		rng := rand.New(rand.NewSource(int64(m) * 31))
		for i := 0; i < 500; i++ {
			a := rng.Uint64() & f.mask
			w := f.Window(a)
			for j := 0; j < 10; j++ {
				b := rng.Uint64() & f.mask
				if got, want := w.Mul(b), f.Mul(a, b); got != want {
					t.Fatalf("m=%d: Window(%x).Mul(%x)=%x want %x", m, a, b, got, want)
				}
			}
		}
	}
}

func TestPowAndExp(t *testing.T) {
	f := MustField(10)
	for a := uint64(1); a < 50; a++ {
		p := uint64(1)
		for e := uint64(0); e < 20; e++ {
			if got := f.Pow(a, e); got != p {
				t.Fatalf("Pow(%d,%d)=%x want %x", a, e, got, p)
			}
			p = f.Mul(p, a)
		}
	}
	// Exp must be consistent with Pow of the generator.
	for e := uint64(0); e < 100; e++ {
		if got, want := f.Exp(e), f.Pow(2, e); got != want {
			t.Fatalf("Exp(%d)=%x want %x", e, got, want)
		}
	}
}

func TestPowZeroConventions(t *testing.T) {
	f := MustField(8)
	if f.Pow(0, 0) != 1 {
		t.Error("Pow(0,0) should be 1")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("Pow(0,5) should be 0")
	}
}

func TestFermatLittleTheorem(t *testing.T) {
	// a^(2^m - 1) == 1 for all nonzero a; exhaustive on a small field,
	// sampled on a large one.
	f := MustField(8)
	for a := uint64(1); a <= f.Order(); a++ {
		if got := f.Pow(a, f.Order()); got != 1 {
			t.Fatalf("m=8: a^(2^m-1) != 1 for a=%x (got %x)", a, got)
		}
	}
	f32 := MustField(32)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		a := rng.Uint64() & ((1 << 32) - 1)
		if a == 0 {
			continue
		}
		if got := f32.Pow(a, f32.Order()); got != 1 {
			t.Fatalf("m=32: a^(2^32-1) != 1 for a=%x (got %x)", a, got)
		}
	}
}

func TestTraceLinearAndBalanced(t *testing.T) {
	f := MustField(11)
	rng := rand.New(rand.NewSource(4))
	ones := 0
	for i := 0; i < 4000; i++ {
		a := rng.Uint64() & f.mask
		b := rng.Uint64() & f.mask
		ta, tb := f.Trace(a), f.Trace(b)
		if ta > 1 || tb > 1 {
			t.Fatalf("trace out of range: %d %d", ta, tb)
		}
		if f.Trace(a^b) != ta^tb {
			t.Fatalf("trace not additive at %x, %x", a, b)
		}
		ones += int(ta)
	}
	// Trace is balanced: about half the field has trace 1.
	if ones < 1500 || ones > 2500 {
		t.Errorf("trace looks unbalanced: %d/4000 ones", ones)
	}
}

func TestNewFieldErrors(t *testing.T) {
	for _, m := range []uint{0, 1, 33, 64} {
		if _, err := NewField(m); err == nil {
			t.Errorf("NewField(%d) should fail", m)
		}
	}
	if f, err := NewField(8); err != nil || f == nil {
		t.Fatalf("NewField(8) failed: %v", err)
	}
	// Cached: same pointer.
	a := MustField(10)
	b := MustField(10)
	if a != b {
		t.Error("fields of equal degree should be cached and shared")
	}
}

func TestInvZeroPanics(t *testing.T) {
	f := MustField(8)
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) should panic")
		}
	}()
	f.Inv(0)
}

func TestDivZeroPanics(t *testing.T) {
	f := MustField(8)
	defer func() {
		if recover() == nil {
			t.Error("Div(x,0) should panic")
		}
	}()
	f.Div(3, 0)
}

// Property-based: (a*b)*Inv(b) == a for random a, b != 0 in GF(2^32).
func TestQuickMulInvRoundtrip(t *testing.T) {
	f := MustField(32)
	prop := func(a, b uint32) bool {
		if b == 0 {
			return true
		}
		x := f.Mul(uint64(a), uint64(b))
		return f.Mul(x, f.Inv(uint64(b))) == uint64(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property-based: Frobenius is additive: (a+b)^2 == a^2 + b^2.
func TestQuickFrobeniusAdditive(t *testing.T) {
	f := MustField(32)
	prop := func(a, b uint32) bool {
		return f.Sqr(uint64(a)^uint64(b)) == f.Sqr(uint64(a))^f.Sqr(uint64(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulTable(b *testing.B) {
	f := MustField(11)
	x, y := uint64(1234), uint64(987)
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y) | 1
	}
	sink = x
}

func BenchmarkMulGeneric32(b *testing.B) {
	f := MustField(32)
	x, y := uint64(0x12345678), uint64(0x9abcdef0)
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y) | 1
	}
	sink = x
}

func BenchmarkWindowMul32(b *testing.B) {
	f := MustField(32)
	w := f.Window(0x9abcdef0)
	x := uint64(0x12345678)
	for i := 0; i < b.N; i++ {
		x = w.Mul(x) | 1
	}
	sink = x
}

var sink uint64
