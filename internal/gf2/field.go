// Package gf2 implements arithmetic in binary extension fields GF(2^m) and
// polynomial algebra over them.
//
// PBS uses BCH codes whose symbols live in GF(2^m) with m = log2(n+1), where
// n is the parity-bitmap length (§2.5 of the paper). The PinSketch baseline
// needs GF(2^32) because its "bitmap" spans the whole 32-bit universe. Two
// multiplication strategies are used:
//
//   - m ≤ 16: discrete log/antilog tables (one multiply = two lookups).
//   - m > 16: carry-less shift-and-add multiply with 4-bit windowing,
//     followed by byte-at-a-time modular reduction using a precomputed
//     256-entry table.
//
// Field elements are represented as uint64 values whose low m bits are the
// coefficients of the polynomial-basis representation.
package gf2

import (
	"fmt"
	"math/bits"
)

// primitivePolys[m] is an irreducible (indeed primitive) polynomial of
// degree m over GF(2), including the leading x^m term. Index 0 and 1 are
// unused. These are standard minimal-weight primitive polynomials; their
// irreducibility is verified in the test suite.
var primitivePolys = [33]uint64{
	2:  0x7,         // x^2 + x + 1
	3:  0xB,         // x^3 + x + 1
	4:  0x13,        // x^4 + x + 1
	5:  0x25,        // x^5 + x^2 + 1
	6:  0x43,        // x^6 + x + 1
	7:  0x89,        // x^7 + x^3 + 1
	8:  0x11D,       // x^8 + x^4 + x^3 + x^2 + 1
	9:  0x211,       // x^9 + x^4 + 1
	10: 0x409,       // x^10 + x^3 + 1
	11: 0x805,       // x^11 + x^2 + 1
	12: 0x1053,      // x^12 + x^6 + x^4 + x + 1
	13: 0x201B,      // x^13 + x^4 + x^3 + x + 1
	14: 0x4443,      // x^14 + x^10 + x^6 + x + 1
	15: 0x8003,      // x^15 + x + 1
	16: 0x1100B,     // x^16 + x^12 + x^3 + x + 1
	17: 0x20009,     // x^17 + x^3 + 1
	18: 0x40081,     // x^18 + x^7 + 1
	19: 0x80027,     // x^19 + x^5 + x^2 + x + 1
	20: 0x100009,    // x^20 + x^3 + 1
	21: 0x200005,    // x^21 + x^2 + 1
	22: 0x400003,    // x^22 + x + 1
	23: 0x800021,    // x^23 + x^5 + 1
	24: 0x100001B,   // x^24 + x^4 + x^3 + x + 1
	25: 0x2000009,   // x^25 + x^3 + 1
	26: 0x4000047,   // x^26 + x^6 + x^2 + x + 1
	27: 0x8000027,   // x^27 + x^5 + x^2 + x + 1
	28: 0x10000009,  // x^28 + x^3 + 1
	29: 0x20000005,  // x^29 + x^2 + 1
	30: 0x40000053,  // x^30 + x^6 + x^4 + x + 1
	31: 0x80000009,  // x^31 + x^3 + 1
	32: 0x104C11DB7, // x^32 + x^26 + ... + 1 (the CRC-32 polynomial, primitive)
}

// MaxM is the largest supported field degree.
const MaxM = 32

// tableThreshold is the largest m for which log/antilog tables are built.
const tableThreshold = 16

// Field represents the finite field GF(2^m).
//
// A Field is immutable after construction and safe for concurrent use.
type Field struct {
	m    uint
	poly uint64 // irreducible polynomial, including the x^m term
	mask uint64 // 2^m - 1
	ord  uint64 // multiplicative group order, 2^m - 1

	// log/exp tables for m <= tableThreshold. exp has length 2*ord so that
	// exp[logA+logB] never needs an explicit modular reduction.
	logT []uint32
	expT []uint64

	// red[b] = (b << m) mod poly, used for byte-at-a-time reduction of
	// carry-less products when no tables are present.
	red [256]uint64
}

var fieldCache [MaxM + 1]*Field

func init() {
	for m := uint(2); m <= MaxM; m++ {
		fieldCache[m] = newField(m)
	}
}

// NewField returns the field GF(2^m) for 2 <= m <= 32. Fields are cached and
// shared; calling NewField repeatedly with the same m is cheap.
func NewField(m uint) (*Field, error) {
	if m < 2 || m > MaxM {
		return nil, fmt.Errorf("gf2: unsupported field degree m=%d (want 2..%d)", m, MaxM)
	}
	return fieldCache[m], nil
}

// MustField is like NewField but panics on an invalid degree. Intended for
// package initialization with compile-time-known degrees.
func MustField(m uint) *Field {
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

func newField(m uint) *Field {
	f := &Field{
		m:    m,
		poly: primitivePolys[m],
		mask: (uint64(1) << m) - 1,
		ord:  (uint64(1) << m) - 1,
	}
	// Byte-reduction table: for each byte b, red[b] = b(x)*x^m mod poly.
	for b := 0; b < 256; b++ {
		v := uint64(b) << m
		for i := m + 7; ; i-- {
			if v&(uint64(1)<<i) != 0 {
				v ^= f.poly << (i - m)
			}
			if i == m {
				break
			}
		}
		f.red[b] = v & f.mask
	}
	if m <= tableThreshold {
		n := int(f.ord)
		f.logT = make([]uint32, n+1)
		f.expT = make([]uint64, 2*n)
		x := uint64(1)
		for i := 0; i < n; i++ {
			f.expT[i] = x
			f.expT[i+n] = x
			f.logT[x] = uint32(i)
			x <<= 1
			if x > f.mask {
				x ^= f.poly
			}
		}
	}
	return f
}

// M returns the field degree m.
func (f *Field) M() uint { return f.m }

// Order returns 2^m - 1, the order of the multiplicative group. This is also
// the largest valid element value and the PBS bitmap length n.
func (f *Field) Order() uint64 { return f.ord }

// Poly returns the field's irreducible polynomial (including the x^m term).
func (f *Field) Poly() uint64 { return f.poly }

// Valid reports whether x is a canonical element of the field.
func (f *Field) Valid(x uint64) bool { return x <= f.mask }

// Add returns a + b (= a - b) in GF(2^m).
func (f *Field) Add(a, b uint64) uint64 { return a ^ b }

// Mul returns a * b in GF(2^m).
func (f *Field) Mul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if f.logT != nil {
		return f.expT[uint64(f.logT[a])+uint64(f.logT[b])]
	}
	return f.reduce(clmul(a, b))
}

// Sqr returns a^2 in GF(2^m). Squaring is a linear map in characteristic 2
// and is cheaper than a general multiply on the table-less path.
func (f *Field) Sqr(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	if f.logT != nil {
		l := 2 * uint64(f.logT[a])
		if l >= f.ord {
			l -= f.ord
		}
		return f.expT[l]
	}
	return f.reduce(spreadBits(a))
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func (f *Field) Inv(a uint64) uint64 {
	if a == 0 {
		panic("gf2: inverse of zero")
	}
	if f.logT != nil {
		l := f.ord - uint64(f.logT[a])
		if l == f.ord {
			l = 0
		}
		return f.expT[l]
	}
	// a^(2^m - 2) via square-and-multiply. 2^m-2 = 0b111...10 (m-1 ones).
	result := uint64(1)
	sq := a
	for i := uint(1); i < f.m; i++ {
		sq = f.Sqr(sq)
		result = f.Mul(result, sq)
	}
	return result
}

// Div returns a / b. It panics if b == 0.
func (f *Field) Div(a, b uint64) uint64 {
	if b == 0 {
		panic("gf2: division by zero")
	}
	if a == 0 {
		return 0
	}
	if f.logT != nil {
		la, lb := uint64(f.logT[a]), uint64(f.logT[b])
		return f.expT[la+f.ord-lb]
	}
	return f.Mul(a, f.Inv(b))
}

// Pow returns a^e in GF(2^m), with the convention Pow(0, 0) == 1.
func (f *Field) Pow(a uint64, e uint64) uint64 {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	if f.logT != nil {
		l := (uint64(f.logT[a]) % f.ord) * (e % f.ord) % f.ord
		return f.expT[l]
	}
	result := uint64(1)
	base := a
	for e > 0 {
		if e&1 != 0 {
			result = f.Mul(result, base)
		}
		base = f.Sqr(base)
		e >>= 1
	}
	return result
}

// Exp returns the primitive element α raised to the power e (mod 2^m - 1).
func (f *Field) Exp(e uint64) uint64 {
	if f.logT != nil {
		return f.expT[e%f.ord]
	}
	return f.Pow(2, e%f.ord) // α = x = 2 in polynomial basis
}

// Trace returns the absolute trace Tr(a) = a + a^2 + a^4 + ... + a^(2^(m-1)),
// which is always 0 or 1.
func (f *Field) Trace(a uint64) uint64 {
	t := a
	s := a
	for i := uint(1); i < f.m; i++ {
		s = f.Sqr(s)
		t ^= s
	}
	return t
}

// HalfTrace returns the half-trace H(a) = Σ_{i=0}^{(m−1)/2} a^(2^(2i)) of
// odd-degree fields. Whenever Tr(a) = 0 it is a solution y of the Artin–
// Schreier equation y² + y = a (the other solution is y + 1), which gives
// closed-form roots for quadratics in characteristic 2. It must only be
// called on fields of odd degree m.
func (f *Field) HalfTrace(a uint64) uint64 {
	h := a
	for i := uint(0); i < (f.m-1)/2; i++ {
		h = f.Sqr(f.Sqr(h)) ^ a
	}
	return h
}

// MulWindow precomputes a 16-entry carry-less multiplication window for the
// fixed multiplicand a, enabling repeated multiplications by a at roughly
// half the cost of Mul on the table-less path. On the table path it simply
// falls back to table multiplies.
type MulWindow struct {
	f   *Field
	a   uint64
	tab [16]uint64
}

// Window returns a MulWindow for repeated multiplication by a. It is
// returned by value so hot paths can keep the window on the stack instead
// of allocating per multiplicand.
func (f *Field) Window(a uint64) MulWindow {
	w := MulWindow{f: f, a: a}
	if f.logT == nil {
		for i := 1; i < 16; i++ {
			w.tab[i] = clmul(a, uint64(i))
		}
	}
	return w
}

// Mul returns w.a * b.
//
// Operands have degree <= 31, so tab entries have degree <= 34 and the
// shifted accumulator degree stays <= 62: everything fits in one uint64 and
// a single final reduction suffices.
func (w *MulWindow) Mul(b uint64) uint64 {
	if w.f.logT != nil || w.a == 0 || b == 0 {
		return w.f.Mul(w.a, b)
	}
	var acc uint64
	for shift := 28; shift >= 0; shift -= 4 {
		acc = (acc << 4) ^ w.tab[(b>>uint(shift))&0xF]
	}
	return w.f.reduce(acc)
}

// reduce reduces a carry-less product (degree <= 62) modulo the field
// polynomial using the byte table.
func (f *Field) reduce(v uint64) uint64 {
	for v > f.mask {
		// Find the highest byte-aligned chunk above bit m.
		shift := uint(0)
		t := v >> f.m
		for t>>8 != 0 {
			t >>= 8
			shift += 8
		}
		chunk := (v >> (f.m + shift)) & 0xFF
		v ^= (chunk << (f.m + shift)) // clear those bits
		v ^= f.red[chunk] << shift
	}
	return v
}

// clmul computes the carry-less (XOR) product of a and b. Both operands must
// have degree <= 31 so the product fits in 64 bits.
func clmul(a, b uint64) uint64 {
	var r uint64
	for b != 0 {
		r ^= a << uint(bits.TrailingZeros64(b))
		b &= b - 1
	}
	return r
}

// spreadBits computes the carry-less square of a: bit i of a moves to bit 2i.
func spreadBits(a uint64) uint64 {
	var r uint64
	for i := uint(0); i < 32; i++ {
		if a&(1<<i) != 0 {
			r |= 1 << (2 * i)
		}
	}
	return r
}
