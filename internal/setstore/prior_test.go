package setstore

import (
	"math"
	"testing"
)

func TestSegmentPriorRoundTrip(t *testing.T) {
	seg := &Segment{
		Adds: []uint64{3, 7, 9},
		Meta: Meta{
			Full:       true,
			Count:      3,
			SketchSeed: 11,
			Sketch:     []int64{1, -2, 3},
			Digest:     []byte{0xaa, 0xbb},
			PriorMean:  412.5,
			PriorVar:   1000.25,
			PriorCount: 17,
		},
	}
	raw := AppendSegment(nil, seg)

	meta, err := DecodeMeta(raw)
	if err != nil {
		t.Fatalf("DecodeMeta: %v", err)
	}
	if meta.PriorMean != 412.5 || meta.PriorVar != 1000.25 || meta.PriorCount != 17 {
		t.Fatalf("prior did not round-trip: %+v", meta)
	}

	dec, err := DecodeSegment(raw)
	if err != nil {
		t.Fatalf("DecodeSegment: %v", err)
	}
	if dec.Meta.PriorMean != 412.5 || dec.Meta.PriorVar != 1000.25 || dec.Meta.PriorCount != 17 {
		t.Fatalf("prior did not round-trip through full decode: %+v", dec.Meta)
	}
}

// A segment written without a prior must be byte-for-byte the pre-prior
// format (flagPrior clear, no trailing fields) and decode to zero prior.
func TestSegmentNoPriorBackwardCompat(t *testing.T) {
	seg := &Segment{
		Adds: []uint64{1, 2},
		Meta: Meta{Full: true, Count: 2, SketchSeed: 5, Sketch: []int64{0}, Digest: []byte{1}},
	}
	raw := AppendSegment(nil, seg)

	_, footer, err := splitSegment(raw, true)
	if err != nil {
		t.Fatalf("splitSegment: %v", err)
	}
	if footer[0]&flagPrior != 0 {
		t.Fatalf("flagPrior set on a segment with no prior (flags=%#x)", footer[0])
	}

	meta, err := DecodeMeta(raw)
	if err != nil {
		t.Fatalf("DecodeMeta: %v", err)
	}
	if meta.PriorCount != 0 || meta.PriorMean != 0 || meta.PriorVar != 0 {
		t.Fatalf("phantom prior decoded: %+v", meta)
	}
}

func TestSegmentPriorRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		meta Meta
	}{
		{"nan mean", Meta{Count: 1, PriorMean: math.NaN(), PriorVar: 1, PriorCount: 1}},
		{"inf var", Meta{Count: 1, PriorMean: 1, PriorVar: math.Inf(1), PriorCount: 1}},
		{"negative mean", Meta{Count: 1, PriorMean: -3, PriorVar: 1, PriorCount: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := AppendSegment(nil, &Segment{Adds: []uint64{1}, Meta: tc.meta})
			if _, err := DecodeMeta(raw); err == nil {
				t.Fatalf("DecodeMeta accepted %s", tc.name)
			}
		})
	}
}
