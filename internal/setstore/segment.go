// Package setstore is the persistent layer behind the Server's hosted
// sets: an LSM-flavoured store of sorted immutable segment files, one
// chain per set, in the spirit of VictoriaMetrics lib/mergeset (immutable
// parts, background merges, an in-memory head owned by the caller).
//
// Each segment carries the set's delta since the previous segment (or the
// full element list, for full segments) in the body, and — crucially — a
// footer with the *cumulative* reconciliation metadata as of that segment:
// element count, ToW sketch vector, and msethash digest. The footer is
// readable without touching the body, so an evicted set can answer a
// difference estimate from a single small tail read, paging the elements
// in only when a real delta must be decoded.
//
// On-disk layout (all integers varint unless noted):
//
//	body:   uvarint(#adds)  adds as delta varints (sorted, strictly increasing)
//	        uvarint(#dels)  dels as delta varints
//	footer: uvarint(flags)  bit0 = full rewrite (body adds are the whole set)
//	                        bit1 = footer carries a learned d̂ prior
//	        uvarint(count)  cumulative set size after applying this segment
//	        uvarint(sketch seed)
//	        uvarint(sketch len l), l zigzag varints (cumulative ToW sketch)
//	        uvarint(digest len), digest bytes (cumulative msethash digest)
//	        [bit1 only] uvarint(Float64bits prior mean) uvarint(Float64bits
//	        prior variance) uvarint(prior sync count)
//	tail:   u32le footerLen | u32le bodyCRC | u32le footerCRC | "PBSSEG01"
//
// The fixed 20-byte tail at the end of the file is what makes footer-only
// reads possible; CRC32-C over body and footer separately means a
// footer-only read still validates everything it consumed.
package setstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// segMagic terminates every segment file. Bump the trailing digits on any
// incompatible format change.
const segMagic = "PBSSEG01"

// tailLen is the fixed byte length of the segment tail.
const tailLen = 4 + 4 + 4 + len(segMagic)

// flagFull marks a full-rewrite segment: its adds are the complete set and
// replay ignores everything older.
const flagFull = 1

// flagPrior marks a footer that carries a learned d̂ prior after the
// digest. Older readers reject unknown footer bytes, but older segments
// (no flag, no bytes) still decode under this reader, so the magic does
// not need to change.
const flagPrior = 2

// maxSegmentElems bounds the element counts a decoder will allocate for,
// guarding header-claims-huge-count attacks from corrupt or fuzzed input.
// 1<<27 × 8 bytes = 1 GiB of uint64s, far above any real segment.
const maxSegmentElems = 1 << 27

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta is the cumulative reconciliation metadata persisted in a segment
// footer: everything a responder needs to answer an estimate (and a strong
// verification) for the set without its elements.
type Meta struct {
	Full       bool
	Count      uint64
	SketchSeed uint64
	Sketch     []int64
	Digest     []byte

	// PriorMean/PriorVar/PriorCount persist the set's learned d̂ prior
	// (EWMA mean and variance of realized difference sizes, and how many
	// syncs fed it) so a recovered set keeps its adaptive speculation
	// across restarts. PriorCount == 0 means no prior: the fields are
	// omitted from the footer entirely (flagPrior clear), keeping old
	// segments and old readers compatible.
	PriorMean  float64
	PriorVar   float64
	PriorCount uint64
}

// Segment is one decoded segment file.
type Segment struct {
	Adds []uint64 // sorted; the full set when Meta.Full
	Dels []uint64 // sorted; always empty when Meta.Full
	Meta Meta
}

// appendElems delta-encodes a sorted, duplicate-free element slice.
func appendElems(dst []byte, elems []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(elems)))
	prev := uint64(0)
	for i, e := range elems {
		if i == 0 {
			dst = binary.AppendUvarint(dst, e)
		} else {
			dst = binary.AppendUvarint(dst, e-prev)
		}
		prev = e
	}
	return dst
}

// AppendSegment encodes seg to dst and returns the extended slice. Adds
// and Dels must be sorted ascending without duplicates (EncodeSegment's
// callers sort copies; this is the raw layer).
func AppendSegment(dst []byte, seg *Segment) []byte {
	bodyStart := len(dst)
	dst = appendElems(dst, seg.Adds)
	dst = appendElems(dst, seg.Dels)
	bodyCRC := crc32.Checksum(dst[bodyStart:], castagnoli)

	footerStart := len(dst)
	flags := uint64(0)
	if seg.Meta.Full {
		flags |= flagFull
	}
	if seg.Meta.PriorCount > 0 {
		flags |= flagPrior
	}
	dst = binary.AppendUvarint(dst, flags)
	dst = binary.AppendUvarint(dst, seg.Meta.Count)
	dst = binary.AppendUvarint(dst, seg.Meta.SketchSeed)
	dst = binary.AppendUvarint(dst, uint64(len(seg.Meta.Sketch)))
	for _, v := range seg.Meta.Sketch {
		dst = binary.AppendVarint(dst, v)
	}
	dst = binary.AppendUvarint(dst, uint64(len(seg.Meta.Digest)))
	dst = append(dst, seg.Meta.Digest...)
	if seg.Meta.PriorCount > 0 {
		dst = binary.AppendUvarint(dst, math.Float64bits(seg.Meta.PriorMean))
		dst = binary.AppendUvarint(dst, math.Float64bits(seg.Meta.PriorVar))
		dst = binary.AppendUvarint(dst, seg.Meta.PriorCount)
	}
	footerCRC := crc32.Checksum(dst[footerStart:], castagnoli)

	var tail [tailLen]byte
	binary.LittleEndian.PutUint32(tail[0:], uint32(len(dst)-footerStart))
	binary.LittleEndian.PutUint32(tail[4:], bodyCRC)
	binary.LittleEndian.PutUint32(tail[8:], footerCRC)
	copy(tail[12:], segMagic)
	return append(dst, tail[:]...)
}

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("setstore: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("setstore: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) elems(what string) ([]uint64, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSegmentElems {
		return nil, fmt.Errorf("setstore: segment claims %d %s", n, what)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, n)
	prev := uint64(0)
	for i := range out {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			out[i] = v
		} else {
			if v == 0 {
				return nil, fmt.Errorf("setstore: non-increasing %s at index %d", what, i)
			}
			next := prev + v
			if next < prev {
				return nil, fmt.Errorf("setstore: %s overflow at index %d", what, i)
			}
			out[i] = next
		}
		prev = out[i]
	}
	return out, nil
}

// splitSegment validates the tail and CRCs of a raw segment file and
// returns its body and footer slices.
func splitSegment(data []byte, wantBody bool) (body, footer []byte, err error) {
	if len(data) < tailLen {
		return nil, nil, fmt.Errorf("setstore: segment too short (%d bytes)", len(data))
	}
	tail := data[len(data)-tailLen:]
	if string(tail[12:]) != segMagic {
		return nil, nil, fmt.Errorf("setstore: bad segment magic")
	}
	footerLen := int(binary.LittleEndian.Uint32(tail[0:]))
	if footerLen < 0 || footerLen > len(data)-tailLen {
		return nil, nil, fmt.Errorf("setstore: footer length %d out of range", footerLen)
	}
	footer = data[len(data)-tailLen-footerLen : len(data)-tailLen]
	if crc32.Checksum(footer, castagnoli) != binary.LittleEndian.Uint32(tail[8:]) {
		return nil, nil, fmt.Errorf("setstore: footer checksum mismatch")
	}
	body = data[:len(data)-tailLen-footerLen]
	if wantBody {
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail[4:]) {
			return nil, nil, fmt.Errorf("setstore: body checksum mismatch")
		}
	}
	return body, footer, nil
}

func decodeFooter(footer []byte) (Meta, error) {
	d := &decoder{b: footer}
	var m Meta
	flags, err := d.uvarint()
	if err != nil {
		return m, err
	}
	m.Full = flags&flagFull != 0
	if m.Count, err = d.uvarint(); err != nil {
		return m, err
	}
	if m.SketchSeed, err = d.uvarint(); err != nil {
		return m, err
	}
	l, err := d.uvarint()
	if err != nil {
		return m, err
	}
	if l > 1<<16 {
		return m, fmt.Errorf("setstore: sketch length %d out of range", l)
	}
	m.Sketch = make([]int64, l)
	for i := range m.Sketch {
		if m.Sketch[i], err = d.varint(); err != nil {
			return m, err
		}
	}
	dl, err := d.uvarint()
	if err != nil {
		return m, err
	}
	if dl > 1<<12 || int(dl) > len(footer)-d.off {
		return m, fmt.Errorf("setstore: digest length %d out of range", dl)
	}
	m.Digest = append([]byte(nil), footer[d.off:d.off+int(dl)]...)
	d.off += int(dl)
	if flags&flagPrior != 0 {
		mb, err := d.uvarint()
		if err != nil {
			return m, err
		}
		vb, err := d.uvarint()
		if err != nil {
			return m, err
		}
		if m.PriorCount, err = d.uvarint(); err != nil {
			return m, err
		}
		m.PriorMean = math.Float64frombits(mb)
		m.PriorVar = math.Float64frombits(vb)
		// Corrupt or fuzzed footers can smuggle NaN/Inf/negative floats or
		// a zero count past the CRC-less DecodeMeta callers; a prior must
		// be a plausible moment pair.
		if m.PriorCount == 0 ||
			math.IsNaN(m.PriorMean) || math.IsInf(m.PriorMean, 0) || m.PriorMean < 0 ||
			math.IsNaN(m.PriorVar) || math.IsInf(m.PriorVar, 0) || m.PriorVar < 0 {
			return m, fmt.Errorf("setstore: invalid prior (mean=%v var=%v count=%d)",
				m.PriorMean, m.PriorVar, m.PriorCount)
		}
	}
	if d.off != len(footer) {
		return m, fmt.Errorf("setstore: %d trailing footer bytes", len(footer)-d.off)
	}
	return m, nil
}

// DecodeMeta parses only the footer of a raw segment file, skipping the
// body entirely (and skipping its checksum: the body bytes are never
// consumed). This is the cheap path behind estimate-without-elements.
func DecodeMeta(data []byte) (Meta, error) {
	_, footer, err := splitSegment(data, false)
	if err != nil {
		return Meta{}, err
	}
	return decodeFooter(footer)
}

// DecodeSegment fully parses and validates a raw segment file.
func DecodeSegment(data []byte) (*Segment, error) {
	body, footer, err := splitSegment(data, true)
	if err != nil {
		return nil, err
	}
	meta, err := decodeFooter(footer)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: body}
	adds, err := d.elems("adds")
	if err != nil {
		return nil, err
	}
	dels, err := d.elems("dels")
	if err != nil {
		return nil, err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("setstore: %d trailing body bytes", len(body)-d.off)
	}
	if meta.Full && len(dels) > 0 {
		return nil, fmt.Errorf("setstore: full segment carries %d deletes", len(dels))
	}
	if meta.Full && uint64(len(adds)) != meta.Count {
		return nil, fmt.Errorf("setstore: full segment has %d elements, footer says %d", len(adds), meta.Count)
	}
	return &Segment{Adds: adds, Dels: dels, Meta: meta}, nil
}
