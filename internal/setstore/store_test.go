package setstore

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"
)

func testMeta(elems []uint64) Meta {
	// A stand-in for the real ToW/msethash metadata: tests only need the
	// footer to round-trip byte-exactly, not to be a real sketch.
	sketch := make([]int64, 8)
	var dig [16]byte
	for _, e := range elems {
		sketch[e%8] += int64(e%3) - 1
		dig[e%16] ^= byte(e)
	}
	return Meta{Count: uint64(len(elems)), SketchSeed: 0xabc, Sketch: sketch, Digest: dig[:]}
}

func seqElems(n int, stride uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)*stride + 7
	}
	return out
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 1000} {
		elems := seqElems(n, 1<<33)
		seg := &Segment{Adds: elems, Meta: testMeta(elems)}
		seg.Meta.Full = true
		data := AppendSegment(nil, seg)

		got, err := DecodeSegment(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !slices.Equal(got.Adds, elems) || len(got.Dels) != 0 {
			t.Fatalf("n=%d: element mismatch", n)
		}
		if !slices.Equal(got.Meta.Sketch, seg.Meta.Sketch) || !bytes.Equal(got.Meta.Digest, seg.Meta.Digest) {
			t.Fatalf("n=%d: meta mismatch", n)
		}
		if got.Meta.Count != uint64(n) || !got.Meta.Full || got.Meta.SketchSeed != 0xabc {
			t.Fatalf("n=%d: footer fields mismatch: %+v", n, got.Meta)
		}

		meta, err := DecodeMeta(data)
		if err != nil {
			t.Fatalf("DecodeMeta n=%d: %v", n, err)
		}
		if !slices.Equal(meta.Sketch, seg.Meta.Sketch) || !bytes.Equal(meta.Digest, seg.Meta.Digest) {
			t.Fatalf("n=%d: DecodeMeta mismatch", n)
		}
	}
}

func TestSegmentCorruptionRejected(t *testing.T) {
	elems := seqElems(100, 3)
	seg := &Segment{Adds: elems, Meta: testMeta(elems)}
	seg.Meta.Full = true
	data := AppendSegment(nil, seg)

	// Every truncation must fail, never panic or succeed.
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeSegment(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	// Any single bit flip must fail (CRCs cover body and footer; the tail
	// fields are cross-checked against both).
	for i := 0; i < len(data); i++ {
		corrupt := slices.Clone(data)
		corrupt[i] ^= 0x10
		if _, err := DecodeSegment(corrupt); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestStoreFlushLoad(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	elems := seqElems(500, 977)
	meta := testMeta(elems)
	if err := s.AppendFull("acme/users", elems, meta); err != nil {
		t.Fatal(err)
	}

	got, gotMeta, err := s.Load("acme/users")
	if err != nil {
		t.Fatal(err)
	}
	want := slices.Clone(elems)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatal("loaded elements differ")
	}
	if !slices.Equal(gotMeta.Sketch, meta.Sketch) || !bytes.Equal(gotMeta.Digest, meta.Digest) {
		t.Fatal("loaded meta differs")
	}

	// Footer-only read agrees.
	m2, err := s.Meta("acme/users")
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(m2.Sketch, meta.Sketch) || m2.Count != meta.Count {
		t.Fatal("Meta() differs from flushed meta")
	}
}

func TestStoreDeltaReplayAndMerge(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := seqElems(100, 5)
	if err := s.AppendFull("s", base, testMeta(base)); err != nil {
		t.Fatal(err)
	}
	cur := append([]uint64(nil), base...)
	// Three delta segments: add a few, remove a few.
	for round := 0; round < 3; round++ {
		adds := []uint64{uint64(10000 + round), uint64(20000 + round)}
		dels := []uint64{cur[round*3], cur[round*3+1]}
		next := make([]uint64, 0, len(cur))
		for _, e := range cur {
			if !slices.Contains(dels, e) {
				next = append(next, e)
			}
		}
		cur = append(next, adds...)
		slices.Sort(cur)
		if err := s.AppendDelta("s", adds, dels, testMeta(cur)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Segments("s"); n != 4 {
		t.Fatalf("chain length %d, want 4", n)
	}
	got, _, err := s.Load("s")
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, cur) {
		t.Fatal("delta replay mismatch")
	}

	merged, err := s.Merge("s")
	if err != nil || !merged {
		t.Fatalf("Merge = %v, %v", merged, err)
	}
	if n := s.Segments("s"); n != 1 {
		t.Fatalf("chain length after merge %d, want 1", n)
	}
	if s.Merges() != 1 {
		t.Fatalf("Merges = %d", s.Merges())
	}
	got, meta, err := s.Load("s")
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, cur) || !meta.Full {
		t.Fatal("post-merge replay mismatch")
	}
}

func TestStoreReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "t1/x", "t1/y", "weird @%/name"}
	for i, name := range names {
		elems := seqElems(50+i, 11)
		if err := s.AppendFull(name, elems, testMeta(elems)); err != nil {
			t.Fatal(err)
		}
	}
	extra := []uint64{999999}
	after := append(seqElems(50, 11), extra...)
	slices.Sort(after)
	if err := s.AppendDelta("a", extra, nil, testMeta(after)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate an interrupted flush: a stale temp file must be swept, not
	// mistaken for a segment.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-seg-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Names()
	want := slices.Clone(names)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatalf("Names after reopen = %v, want %v", got, want)
	}
	if n := s2.Segments("a"); n != 2 {
		t.Fatalf("chain length of a after reopen = %d, want 2", n)
	}
	elems, _, err := s2.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(elems, after) {
		t.Fatal("replay after reopen mismatch")
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-seg-123")); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived reopen")
	}
}

func TestStoreCorruptSegmentFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	elems := seqElems(200, 13)
	if err := s.AppendFull("s", elems, testMeta(elems)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a byte in the middle of the one segment file on disk.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v (%d entries)", err, len(ents))
	}
	path := filepath.Join(dir, ents[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, _, err := s2.Load("s"); err == nil {
		t.Fatal("Load of corrupt segment succeeded")
	}
}

func TestBackgroundMerge(t *testing.T) {
	s, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	elems := seqElems(20, 3)
	if err := s.AppendFull("s", elems, testMeta(elems)); err != nil {
		t.Fatal(err)
	}
	cur := slices.Clone(elems)
	for i := 0; i < 4; i++ {
		add := []uint64{uint64(50000 + i)}
		cur = append(cur, add...)
		slices.Sort(cur)
		if err := s.AppendDelta("s", add, nil, testMeta(cur)); err != nil {
			t.Fatal(err)
		}
	}
	// The merger runs asynchronously; wait for it to fold the chain.
	for i := 0; i < 500 && s.Segments("s") > 1; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.Segments("s"); n != 1 {
		t.Fatalf("background merge did not run: chain length %d", n)
	}
	got, _, err := s.Load("s")
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, cur) {
		t.Fatal("merged replay mismatch")
	}
	if s.Merges() == 0 {
		t.Fatal("no merge recorded")
	}
}

func TestDeltaToUnpersistedSetFails(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendDelta("nope", []uint64{1}, nil, testMeta([]uint64{1})); err == nil {
		t.Fatal("delta append to unpersisted set succeeded")
	}
}

func TestRemove(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	elems := seqElems(10, 2)
	if err := s.AppendFull("s", elems, testMeta(elems)); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("s"); err != nil {
		t.Fatal(err)
	}
	if s.Segments("s") != 0 {
		t.Fatal("segments survived Remove")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("%d files survived Remove", len(ents))
	}
}
