package setstore

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Store manages one directory of segment chains, one chain per named set.
// Files are named "<escaped name>@<seq>.seg"; the chain is the ascending
// seq order. All methods are safe for concurrent use; operations on
// different sets proceed in parallel (per-name lock stripes), operations
// on one set serialize.
type Store struct {
	dir    string
	thresh int

	mu    sync.Mutex
	index map[string][]uint64 // name → ascending segment seqs

	stripes [64]sync.Mutex

	merges atomic.Int64

	mergeCh chan string
	done    chan struct{}
	wg      sync.WaitGroup
}

// Open scans dir (creating it if needed) and starts the background merger
// when mergeThreshold > 0: a chain reaching that many segments is folded
// into one full segment off the caller's path. mergeThreshold <= 0
// disables background merging; Merge can still be called directly.
func Open(dir string, mergeThreshold int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		thresh: mergeThreshold,
		index:  make(map[string][]uint64),
		done:   make(chan struct{}),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name, seq, ok := parseSegName(e.Name())
		if !ok {
			// Stale temp files from an interrupted flush are garbage by
			// construction (rename is the commit point); sweep them.
			if strings.HasPrefix(e.Name(), ".tmp-") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
			continue
		}
		s.index[name] = append(s.index[name], seq)
	}
	for name := range s.index {
		slices.Sort(s.index[name])
	}
	if s.thresh > 0 {
		s.mergeCh = make(chan string, 1024)
		s.wg.Add(1)
		go s.mergeLoop()
	}
	return s, nil
}

// Close stops the background merger and waits for an in-flight merge.
func (s *Store) Close() error {
	select {
	case <-s.done:
		return nil
	default:
	}
	close(s.done)
	s.wg.Wait()
	return nil
}

// Merges returns the number of segment merges completed since Open.
func (s *Store) Merges() int64 { return s.merges.Load() }

func segFileName(name string, seq uint64) string {
	return url.PathEscape(name) + "@" + fmt.Sprintf("%016x", seq) + ".seg"
}

func parseSegName(file string) (name string, seq uint64, ok bool) {
	base, found := strings.CutSuffix(file, ".seg")
	if !found {
		return "", 0, false
	}
	at := strings.LastIndexByte(base, '@')
	if at < 0 {
		return "", 0, false
	}
	seq, err := strconv.ParseUint(base[at+1:], 16, 64)
	if err != nil {
		return "", 0, false
	}
	name, err = url.PathUnescape(base[:at])
	if err != nil {
		return "", 0, false
	}
	return name, seq, true
}

func (s *Store) stripe(name string) *sync.Mutex {
	return &s.stripes[hashName(name)&63]
}

// hashName is FNV-1a 64 over the set name, used only for lock striping.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

func (s *Store) chain(name string) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return slices.Clone(s.index[name])
}

// Names returns every set with at least one persisted segment.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.index))
	for name := range s.index {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Segments returns the chain length of one set (0 when not persisted).
func (s *Store) Segments(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index[name])
}

// writeSegment encodes seg and commits it atomically: temp file in the
// same directory, fsync, rename. The rename is the durability point; the
// directory itself is not fsynced (a crash in that window can lose the
// newest segment but never corrupts the chain).
func (s *Store) writeSegment(name string, seq uint64, seg *Segment) error {
	data := AppendSegment(nil, seg)
	f, err := os.CreateTemp(s.dir, ".tmp-seg-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, segFileName(name, seq))); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (s *Store) nextSeq(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seqs := s.index[name]; len(seqs) > 0 {
		return seqs[len(seqs)-1] + 1
	}
	return 1
}

func (s *Store) addSeq(name string, seq uint64) {
	s.mu.Lock()
	s.index[name] = append(s.index[name], seq)
	n := len(s.index[name])
	s.mu.Unlock()
	if s.thresh > 0 && n >= s.thresh {
		select {
		case s.mergeCh <- name:
		default:
			// Queue full: drop; the next append re-nominates the chain.
		}
	}
}

func sortedCopy(elems []uint64) []uint64 {
	out := slices.Clone(elems)
	slices.Sort(out)
	return slices.Compact(out)
}

// AppendFull persists the complete element list of a set as a new full
// segment. meta's sketch/digest/count must describe exactly elems.
func (s *Store) AppendFull(name string, elems []uint64, meta Meta) error {
	st := s.stripe(name)
	st.Lock()
	defer st.Unlock()
	meta.Full = true
	seg := &Segment{Adds: sortedCopy(elems), Meta: meta}
	seg.Meta.Count = uint64(len(seg.Adds))
	seq := s.nextSeq(name)
	if err := s.writeSegment(name, seq, seg); err != nil {
		return err
	}
	s.addSeq(name, seq)
	return nil
}

// AppendDelta persists the changes since the previous segment. meta must
// carry the *cumulative* count/sketch/digest after applying the delta —
// that is what keeps a cold chain able to answer estimates from its
// newest footer alone.
func (s *Store) AppendDelta(name string, adds, dels []uint64, meta Meta) error {
	st := s.stripe(name)
	st.Lock()
	defer st.Unlock()
	if s.Segments(name) == 0 {
		return fmt.Errorf("setstore: delta append to unpersisted set %q", name)
	}
	meta.Full = false
	seg := &Segment{Adds: sortedCopy(adds), Dels: sortedCopy(dels), Meta: meta}
	seq := s.nextSeq(name)
	if err := s.writeSegment(name, seq, seg); err != nil {
		return err
	}
	s.addSeq(name, seq)
	return nil
}

// Meta returns the newest segment's footer metadata with a tail-only read
// — no element bytes touched.
func (s *Store) Meta(name string) (Meta, error) {
	st := s.stripe(name)
	st.Lock()
	defer st.Unlock()
	seqs := s.chain(name)
	if len(seqs) == 0 {
		return Meta{}, fmt.Errorf("setstore: set %q not persisted", name)
	}
	return readMetaFile(filepath.Join(s.dir, segFileName(name, seqs[len(seqs)-1])))
}

func readMetaFile(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return Meta{}, err
	}
	size := fi.Size()
	if size < int64(tailLen) {
		return Meta{}, fmt.Errorf("setstore: segment %s too short", path)
	}
	tail := make([]byte, tailLen)
	if _, err := f.ReadAt(tail, size-int64(tailLen)); err != nil {
		return Meta{}, err
	}
	if string(tail[12:]) != segMagic {
		return Meta{}, fmt.Errorf("setstore: bad segment magic in %s", path)
	}
	footerLen := int64(uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24)
	if footerLen > size-int64(tailLen) {
		return Meta{}, fmt.Errorf("setstore: footer length out of range in %s", path)
	}
	buf := make([]byte, footerLen+int64(tailLen))
	if _, err := f.ReadAt(buf, size-int64(len(buf))); err != nil {
		return Meta{}, err
	}
	// Reuse the in-memory validator on the footer+tail suffix: it checks
	// magic, bounds, and the footer CRC (body CRC is not consulted).
	return DecodeMeta(buf)
}

// Load replays a chain into the full element list: starting from the
// newest full segment, adds and deletes apply in seq order. The returned
// Meta is the newest footer's.
func (s *Store) Load(name string) ([]uint64, Meta, error) {
	st := s.stripe(name)
	st.Lock()
	defer st.Unlock()
	return s.loadLocked(name)
}

func (s *Store) loadLocked(name string) ([]uint64, Meta, error) {
	seqs := s.chain(name)
	if len(seqs) == 0 {
		return nil, Meta{}, fmt.Errorf("setstore: set %q not persisted", name)
	}
	segs := make([]*Segment, len(seqs))
	start := 0
	for i := len(seqs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(s.dir, segFileName(name, seqs[i])))
		if err != nil {
			return nil, Meta{}, err
		}
		seg, err := DecodeSegment(data)
		if err != nil {
			return nil, Meta{}, fmt.Errorf("setstore: segment %s@%d: %w", name, seqs[i], err)
		}
		segs[i] = seg
		if seg.Meta.Full {
			start = i
			break
		}
	}
	set := make(map[uint64]struct{}, segs[len(segs)-1].Meta.Count)
	for i := start; i < len(segs); i++ {
		for _, e := range segs[i].Adds {
			set[e] = struct{}{}
		}
		for _, e := range segs[i].Dels {
			delete(set, e)
		}
	}
	elems := make([]uint64, 0, len(set))
	for e := range set {
		elems = append(elems, e)
	}
	slices.Sort(elems)
	meta := segs[len(segs)-1].Meta
	if uint64(len(elems)) != meta.Count {
		return nil, Meta{}, fmt.Errorf("setstore: set %q replays to %d elements, footer says %d", name, len(elems), meta.Count)
	}
	return elems, meta, nil
}

// Merge folds a chain of 2+ segments into a single full segment. It
// reports whether a merge happened. Crash-safe: the merged segment is
// committed (with a higher seq) before the old files are removed, and
// replay always starts from the newest full segment, so a crash anywhere
// in between leaves a correct — merely unpruned — chain.
func (s *Store) Merge(name string) (bool, error) {
	st := s.stripe(name)
	st.Lock()
	defer st.Unlock()
	seqs := s.chain(name)
	if len(seqs) < 2 {
		return false, nil
	}
	elems, meta, err := s.loadLocked(name)
	if err != nil {
		return false, err
	}
	meta.Full = true
	newSeq := seqs[len(seqs)-1] + 1
	if err := s.writeSegment(name, newSeq, &Segment{Adds: elems, Meta: meta}); err != nil {
		return false, err
	}
	s.mu.Lock()
	s.index[name] = []uint64{newSeq}
	s.mu.Unlock()
	for _, seq := range seqs {
		os.Remove(filepath.Join(s.dir, segFileName(name, seq)))
	}
	s.merges.Add(1)
	return true, nil
}

func (s *Store) mergeLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case name := <-s.mergeCh:
			// Re-check under the current index: the chain may already have
			// been merged (duplicate nominations) or removed.
			if s.Segments(name) >= s.thresh {
				s.Merge(name) //nolint:errcheck // best effort; next append retries
			}
		}
	}
}

// Remove deletes every segment of a set.
func (s *Store) Remove(name string) error {
	st := s.stripe(name)
	st.Lock()
	defer st.Unlock()
	seqs := s.chain(name)
	s.mu.Lock()
	delete(s.index, name)
	s.mu.Unlock()
	var firstErr error
	for _, seq := range seqs {
		if err := os.Remove(filepath.Join(s.dir, segFileName(name, seq))); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
