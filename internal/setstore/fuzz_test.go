package setstore

import (
	"bytes"
	"slices"
	"testing"
)

// FuzzSegmentDecode throws arbitrary bytes at the on-disk segment parser.
// The invariants: never panic or over-allocate on hostile input, and any
// input that decodes successfully must survive an encode/decode round
// trip value-identically, with the footer-only path agreeing throughout.
func FuzzSegmentDecode(f *testing.F) {
	// Seed with well-formed segments of each shape plus interesting
	// mutations so coverage starts past the magic/CRC gate.
	full := &Segment{
		Adds: []uint64{1, 5, 9, 1 << 40},
		Meta: Meta{Full: true, Count: 4, SketchSeed: 7, Sketch: []int64{-3, 0, 12}, Digest: []byte{0xaa, 0xbb}},
	}
	delta := &Segment{
		Adds: []uint64{42},
		Dels: []uint64{7, 8},
		Meta: Meta{Count: 11, Sketch: []int64{1}, Digest: bytes.Repeat([]byte{0x5c}, 16)},
	}
	empty := &Segment{Meta: Meta{Full: true}}
	for _, seg := range []*Segment{full, delta, empty} {
		f.Add(AppendSegment(nil, seg))
	}
	truncated := AppendSegment(nil, full)
	f.Add(truncated[:len(truncated)-3])
	f.Add([]byte(segMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := DecodeSegment(data)
		if err != nil {
			return
		}
		// Round-trip: decode(encode(decode(x))) must equal decode(x) and
		// the re-encoding must be canonical.
		re := AppendSegment(nil, seg)
		seg2, err := DecodeSegment(re)
		if err != nil {
			t.Fatalf("re-encoded segment does not decode: %v", err)
		}
		if !slices.Equal(seg.Adds, seg2.Adds) || !slices.Equal(seg.Dels, seg2.Dels) {
			t.Fatal("element round-trip mismatch")
		}
		if !slices.Equal(seg.Meta.Sketch, seg2.Meta.Sketch) || !bytes.Equal(seg.Meta.Digest, seg2.Meta.Digest) {
			t.Fatal("meta round-trip mismatch")
		}
		if seg.Meta.Full != seg2.Meta.Full || seg.Meta.Count != seg2.Meta.Count || seg.Meta.SketchSeed != seg2.Meta.SketchSeed {
			t.Fatal("footer scalar round-trip mismatch")
		}
		// DecodeMeta (the footer-only path) must agree with the full parse.
		meta, err := DecodeMeta(data)
		if err != nil {
			t.Fatalf("DecodeMeta rejects what DecodeSegment accepted: %v", err)
		}
		if meta.Count != seg.Meta.Count || !slices.Equal(meta.Sketch, seg.Meta.Sketch) {
			t.Fatal("DecodeMeta disagrees with DecodeSegment")
		}
	})
}
