package graphene

import (
	"sort"
	"testing"

	"pbs/internal/workload"
)

func assertSameSet(t *testing.T, got, want []uint64) {
	t.Helper()
	g := append([]uint64(nil), got...)
	w := append([]uint64(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	if len(g) != len(w) {
		t.Fatalf("size mismatch: %d vs %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestReconcileSmallD(t *testing.T) {
	// Small d relative to |B|: the optimizer should skip the BF.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: 20, Seed: 1})
	res, err := Reconcile(p.A, p.B, Config{DHat: 28, SigBits: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	if res.UsedBF {
		t.Error("BF should not pay off at d=20, |B|=20k")
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestReconcileLargeDUsesBF(t *testing.T) {
	// d comparable to |B|: the BF pays for itself.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 30000, D: 8000, Seed: 3})
	res, err := Reconcile(p.A, p.B, Config{DHat: 9000, SigBits: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	if !res.UsedBF {
		t.Error("BF should pay off at d=8000, |B|=22k")
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestBreakevenMonotonicity(t *testing.T) {
	// Predicted bits per difference element should drop after the
	// breakeven point, reproducing the slope change of Fig. 2b.
	sizeB := 100000
	prevPerElem := 0.0
	usedBFever := false
	for _, d := range []int{100, 1000, 10000, 50000} {
		fpr, bits := optimize(sizeB, d, 2.2, 32)
		perElem := float64(bits) / float64(d)
		if fpr < 1 {
			usedBFever = true
		}
		if prevPerElem > 0 && perElem > prevPerElem*1.05 {
			t.Errorf("per-element cost should not grow with d: %f -> %f at d=%d",
				prevPerElem, perElem, d)
		}
		prevPerElem = perElem
	}
	if !usedBFever {
		t.Error("optimizer never chose a BF even at d = |B|/2")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Reconcile(nil, nil, Config{DHat: 0}); err == nil {
		t.Error("dhat=0 should error")
	}
}

func TestUndersizedReportsIncomplete(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: 2000, Seed: 5})
	res, err := Reconcile(p.A, p.B, Config{DHat: 50, SigBits: 32, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("severely under-provisioned Graphene should report incomplete")
	}
}

func TestHighSuccessRate(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	ok := 0
	const trials = 80
	for i := 0; i < trials; i++ {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 5000, D: 50, Seed: int64(i)})
		res, err := Reconcile(p.A, p.B, Config{DHat: 69, SigBits: 32, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Complete {
			ok++
		}
	}
	if ok < trials-2 {
		t.Errorf("success %d/%d below the 239/240-style target", ok, trials)
	}
}
