// Package graphene implements the Graphene baseline (Ozisik et al.),
// Protocol I, as described in §7 of the PBS paper: it reconciles the
// special case B ⊂ A (the paper's experiment setup, and Graphene's
// best-case scenario) by combining a Bloom filter of B with an invertible
// Bloom filter that recovers the Bloom filter's false positives.
//
// Alice filters her set through BF(B): elements rejected by the filter are
// certainly in A\B; the survivors C = B ∪ FP contain about ε·d false
// positives, which are recovered exactly by subtracting IBF(B) from
// IBF(C) and peeling. The sizes of the BF (via its false-positive rate ε)
// and the IBF are jointly optimized to minimize total bytes; when the BF
// is not worth its O(|B|) cost — i.e. when d is small relative to |B| —
// the optimizer degenerates to an IBF-only scheme (ε = 1), reproducing the
// breakeven behaviour discussed in §8.2.
package graphene

import (
	"fmt"
	"math"
	"time"

	"pbs/internal/bloom"
	"pbs/internal/ibf"
)

// Result reports a reconciliation outcome.
type Result struct {
	// Difference is the recovered A\B.
	Difference []uint64
	// Complete reports whether the IBF peeled fully.
	Complete bool
	// CommBits is the one-way (Bob to Alice) communication cost in bits.
	CommBits int
	// UsedBF reports whether the optimizer chose to send a Bloom filter
	// (false = degenerate IBF-only mode).
	UsedBF bool
	// FPR is the chosen Bloom-filter false-positive rate (1 if no BF).
	FPR float64
	// EncodeTime is the time spent building the BF and IBFs (both parties).
	EncodeTime time.Duration
	// DecodeTime is the time spent filtering candidates and peeling.
	DecodeTime time.Duration
}

// Config tunes the size optimizer.
type Config struct {
	// DHat is the (already conservatively scaled) difference estimate.
	DHat int
	// SigBits is the signature length log|U| used for accounting and IBF
	// cell width.
	SigBits uint
	// Seed drives all hashing.
	Seed uint64
	// Tau is the IBF cells-per-difference headroom (default 2, like
	// Difference Digest, which targets ~0.99; the 239/240 target of §8.2
	// uses a slightly larger default slack).
	Tau float64
}

// ibfSlackCells is added to every IBF sizing to absorb the variance of the
// false-positive count at small expectations.
const ibfSlackCells = 12

// ibfCells returns the cell budget for an expected difference load.
func ibfCells(expected float64, tau float64) int {
	c := int(math.Ceil(tau*expected+3*math.Sqrt(expected))) + ibfSlackCells
	if c < 16 {
		c = 16
	}
	return c
}

// planBits returns the predicted total communication in bits for a
// candidate false-positive rate.
func planBits(sizeB, dhat int, fpr float64, tau float64, sigBits uint) int {
	ibfBits := ibfCells(float64(dhat)*fpr, tau) * 3 * int(sigBits)
	if fpr >= 1 {
		return ibfCells(float64(dhat), tau) * 3 * int(sigBits)
	}
	mBits, _ := bloom.Params(uint64(sizeB), fpr)
	return int(mBits) + ibfBits
}

// optimize picks the fpr minimizing predicted bits over a log-spaced grid,
// including the no-BF degenerate point.
func optimize(sizeB, dhat int, tau float64, sigBits uint) (fpr float64, bits int) {
	bestFPR, bestBits := 1.0, planBits(sizeB, dhat, 1, tau, sigBits)
	for _, f := range []float64{0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0005, 0.0001} {
		if b := planBits(sizeB, dhat, f, tau, sigBits); b < bestBits {
			bestBits, bestFPR = b, f
		}
	}
	return bestFPR, bestBits
}

// Reconcile runs Graphene Protocol I: Alice holds a, Bob holds b, with
// b ⊂ a assumed (the paper's setup). It returns Alice's recovered A\B.
func Reconcile(a, b []uint64, cfg Config) (*Result, error) {
	if cfg.DHat < 1 {
		return nil, fmt.Errorf("graphene: estimated difference %d must be >= 1", cfg.DHat)
	}
	if cfg.SigBits == 0 {
		cfg.SigBits = 32
	}
	if cfg.Tau == 0 {
		cfg.Tau = 2.2
	}
	fpr, _ := optimize(len(b), cfg.DHat, cfg.Tau, cfg.SigBits)
	res := &Result{FPR: fpr, UsedBF: fpr < 1}

	if !res.UsedBF {
		// Degenerate mode: a plain IBF over the whole difference.
		cells := ibfCells(float64(cfg.DHat), cfg.Tau)
		encStart := time.Now()
		fa := ibf.MustNew(cells, 4, cfg.Seed)
		fb := ibf.MustNew(cells, 4, cfg.Seed)
		fa.InsertSet(a)
		fb.InsertSet(b)
		res.EncodeTime = time.Since(encStart)
		decStart := time.Now()
		if err := fa.Subtract(fb); err != nil {
			return nil, err
		}
		res.CommBits = fb.Bits(int(cfg.SigBits))
		pos, neg, ok := fa.Decode()
		res.DecodeTime = time.Since(decStart)
		if !ok {
			return res, nil
		}
		res.Complete = true
		res.Difference = append(pos, neg...)
		return res, nil
	}

	// Bob's transmission: BF(B) + IBF(B).
	encStart := time.Now()
	bf := bloom.NewOptimal(uint64(len(b)), fpr, cfg.Seed^0xBF)
	bf.InsertSet(b)
	cells := ibfCells(float64(cfg.DHat)*fpr, cfg.Tau)
	fb := ibf.MustNew(cells, 4, cfg.Seed)
	fb.InsertSet(b)
	res.CommBits = int(bf.MBits()) + fb.Bits(int(cfg.SigBits))
	res.EncodeTime = time.Since(encStart)

	// Alice: split A by the BF; survivors form the candidate set C.
	decStart := time.Now()
	var definite []uint64 // rejected by BF: certainly in A\B
	fc := ibf.MustNew(cells, 4, cfg.Seed)
	for _, x := range a {
		if bf.Contains(x) {
			fc.Insert(x)
		} else {
			definite = append(definite, x)
		}
	}
	if err := fc.Subtract(fb); err != nil {
		return nil, err
	}
	fps, neg, ok := fc.Decode()
	res.DecodeTime = time.Since(decStart)
	if !ok || len(neg) != 0 {
		// neg would mean B ⊄ A (or a peel error); either way, incomplete.
		return res, nil
	}
	res.Complete = true
	res.Difference = append(definite, fps...)
	return res, nil
}
