package hashutil

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFourWiseBankMatchesScalar pins the batched evaluation to the scalar
// FourWise path bit for bit: identical seeds must yield identical signs
// for arbitrary inputs, including the x ≥ 2^61−1 wrap cases.
func TestFourWiseBankMatchesScalar(t *testing.T) {
	seeds := Seeds(0xFEED, 64)
	bank := NewFourWiseBank(seeds)
	scalar := make([]FourWise, len(seeds))
	for i, s := range seeds {
		scalar[i] = NewFourWise(s)
	}
	rng := rand.New(rand.NewSource(55))
	inputs := []uint64{0, 1, 2, mersenne61 - 1, mersenne61, mersenne61 + 1, ^uint64(0)}
	for i := 0; i < 200; i++ {
		inputs = append(inputs, rng.Uint64())
	}
	for _, x := range inputs {
		got := make([]int64, bank.Len())
		bank.AddSigns(x, got)
		for i := range scalar {
			if want := scalar[i].Sign(x); got[i] != want {
				t.Fatalf("x=%#x hash %d: bank sign %d, scalar sign %d", x, i, got[i], want)
			}
		}
	}
}

// TestFourWiseBankAccumulates checks that AddSigns adds rather than
// overwrites, the contract the sketch loop relies on.
func TestFourWiseBankAccumulates(t *testing.T) {
	bank := NewFourWiseBank(Seeds(9, 8))
	once := make([]int64, bank.Len())
	bank.AddSigns(12345, once)
	twice := make([]int64, bank.Len())
	bank.AddSigns(12345, twice)
	bank.AddSigns(12345, twice)
	for i := range once {
		if twice[i] != 2*once[i] {
			t.Fatalf("slot %d: %d after two adds, want %d", i, twice[i], 2*once[i])
		}
	}
}

func BenchmarkFourWiseScalar128(b *testing.B) {
	seeds := Seeds(1, 128)
	hs := make([]FourWise, len(seeds))
	for i, s := range seeds {
		hs[i] = NewFourWise(s)
	}
	ys := make([]int64, len(hs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := uint64(i)*0x9E3779B97F4A7C15 + 1
		for j := range hs {
			ys[j] += hs[j].Sign(x)
		}
	}
}

func BenchmarkFourWiseBank128(b *testing.B) {
	bank := NewFourWiseBank(Seeds(1, 128))
	ys := make([]int64, bank.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.AddSigns(uint64(i)*0x9E3779B97F4A7C15+1, ys)
	}
}

// Known-answer tests from the xxHash64 reference implementation.
func TestXXH64KnownAnswers(t *testing.T) {
	cases := []struct {
		data []byte
		seed uint64
		want uint64
	}{
		{nil, 0, 0xEF46DB3751D8E999},
		{nil, 1, 0xD5AFBA1336A3BE4B},
		{[]byte("a"), 0, 0xD24EC4F1A98C6E5B},
		{[]byte("abc"), 0, 0x44BC2CF5AD770999},
		{[]byte("message digest"), 0, 0x066ED728FCEEB3BE},
		{[]byte("abcdefghijklmnopqrstuvwxyz"), 0, 0xCFE1F278FA89835C},
		{[]byte("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"), 0, 0xAAA46907D3047814},
	}
	for _, c := range cases {
		if got := XXH64(c.data, c.seed); got != c.want {
			t.Errorf("XXH64(%q, %d) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

// The uint64 fast path must agree with the general path on 8-byte inputs.
func TestXXH64Uint64MatchesGeneral(t *testing.T) {
	prop := func(v, seed uint64) bool {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return XXH64Uint64(v, seed) == XXH64(b[:], seed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBinRangeAndUniformity(t *testing.T) {
	const n = 127
	counts := make([]int, n+1)
	const trials = 127 * 400
	for i := 0; i < trials; i++ {
		b := Bin(uint64(i)*2654435761, 42, n)
		if b < 1 || b > n {
			t.Fatalf("Bin out of range: %d", b)
		}
		counts[b]++
	}
	// Chi-squared sanity: each bin expects ~400; flag gross non-uniformity.
	var chi2 float64
	for i := 1; i <= n; i++ {
		d := float64(counts[i] - 400)
		chi2 += d * d / 400
	}
	// 126 degrees of freedom; mean 126, sd ~15.9. Allow a wide margin.
	if chi2 > 250 {
		t.Errorf("bin distribution looks non-uniform: chi2 = %.1f", chi2)
	}
}

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	a := Seeds(123, 10)
	b := Seeds(123, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not deterministic")
		}
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
	c := Seeds(124, 10)
	if a[0] == c[0] {
		t.Fatal("different masters should give different seeds")
	}
}

func TestMulmod61(t *testing.T) {
	// Cross-check against big-number arithmetic via float-safe small cases
	// and structured large cases.
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {mersenne61 - 1, 2}, {mersenne61 - 1, mersenne61 - 1},
		{1 << 60, 1 << 60}, {123456789012345678 % mersenne61, 987654321098765432 % mersenne61},
	}
	for _, c := range cases {
		got := mulmod61(c[0], c[1])
		want := bigMulMod(c[0], c[1])
		if got != want {
			t.Errorf("mulmod61(%d, %d) = %d, want %d", c[0], c[1], got, want)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		a := rng.Uint64() % mersenne61
		b := rng.Uint64() % mersenne61
		if got, want := mulmod61(a, b), bigMulMod(a, b); got != want {
			t.Fatalf("mulmod61(%d, %d) = %d, want %d", a, b, got, want)
		}
	}
}

// bigMulMod computes a*b mod 2^61-1 via schoolbook 32-bit limbs (slow but
// obviously correct reference).
func bigMulMod(a, b uint64) uint64 {
	var r uint64
	for b > 0 {
		if b&1 == 1 {
			r = addmod61(r, a)
		}
		a = addmod61(a, a)
		b >>= 1
	}
	return r
}

func addmod61(a, b uint64) uint64 {
	s := a + b
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

func TestFourWiseSignBalance(t *testing.T) {
	h := NewFourWise(77)
	var sum int64
	const n = 100000
	for i := 0; i < n; i++ {
		s := h.Sign(uint64(i))
		if s != 1 && s != -1 {
			t.Fatalf("Sign returned %d", s)
		}
		sum += s
	}
	// Standard deviation of the sum is sqrt(n) ~ 316; allow 5 sigma.
	if math.Abs(float64(sum)) > 5*math.Sqrt(n) {
		t.Errorf("sign hash unbalanced: sum = %d over %d draws", sum, n)
	}
}

func TestFourWisePairwiseIndependenceEmpirical(t *testing.T) {
	// E[f(x)·f(y)] should be ~0 for x != y across family members.
	var corr int64
	const members = 20000
	for s := uint64(0); s < members; s++ {
		h := NewFourWise(s)
		corr += h.Sign(12345) * h.Sign(67890)
	}
	if math.Abs(float64(corr)) > 5*math.Sqrt(members) {
		t.Errorf("sign hashes of distinct points look correlated: %d", corr)
	}
}

func TestFourWiseDeterministic(t *testing.T) {
	a := NewFourWise(9)
	b := NewFourWise(9)
	for i := uint64(0); i < 100; i++ {
		if a.Hash(i) != b.Hash(i) {
			t.Fatal("FourWise not deterministic")
		}
	}
}

func TestHashInRange(t *testing.T) {
	h := NewFourWise(3)
	for i := uint64(0); i < 10000; i++ {
		if v := h.Hash(i * 2654435761); v >= mersenne61 {
			t.Fatalf("Hash out of field range: %d", v)
		}
	}
}

func BenchmarkXXH64Uint64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= XXH64Uint64(uint64(i), 42)
	}
	benchSink = acc
}

func BenchmarkFourWiseSign(b *testing.B) {
	h := NewFourWise(1)
	var acc int64
	for i := 0; i < b.N; i++ {
		acc += h.Sign(uint64(i))
	}
	benchSink = uint64(acc)
}

var benchSink uint64
