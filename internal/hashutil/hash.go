// Package hashutil provides the hash-function substrate for all
// reconciliation schemes in this repository.
//
// The paper uses the xxHash library for "all hash functions in PBS,
// including those in the ToW estimator" (§8). We re-implement xxHash64 from
// scratch (same published algorithm) for the partitioning hashes, plus a
// 4-wise-independent polynomial hash family over GF(2^61−1) for the
// Tug-of-War estimator, which requires 4-wise independence for its variance
// bound (§6.1, Fact 1).
package hashutil

import "math/bits"

// xxHash64 prime constants from the reference specification.
const (
	prime64x1 = 0x9E3779B185EBCA87
	prime64x2 = 0xC2B2AE3D27D4EB4F
	prime64x3 = 0x165667B19E3779F9
	prime64x4 = 0x85EBCA77C2B2AE63
	prime64x5 = 0x27D4EB2F165667C5
)

// XXH64Uint64 computes the xxHash64 of the 8-byte little-endian encoding of
// v with the given seed. This is the 8-byte specialization of the reference
// algorithm, which is the only input width the reconciliation code needs.
func XXH64Uint64(v, seed uint64) uint64 {
	h := seed + prime64x5 + 8
	k := v * prime64x2
	k = bits.RotateLeft64(k, 31)
	k *= prime64x1
	h ^= k
	h = bits.RotateLeft64(h, 27)*prime64x1 + prime64x4
	// Avalanche.
	h ^= h >> 33
	h *= prime64x2
	h ^= h >> 29
	h *= prime64x3
	h ^= h >> 32
	return h
}

// XXH64 computes xxHash64 of an arbitrary byte slice with the given seed,
// per the reference specification.
func XXH64(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64
	i := 0
	if n >= 32 {
		v1 := seed + prime64x1 + prime64x2
		v2 := seed + prime64x2
		v3 := seed
		v4 := seed - prime64x1
		for ; i+32 <= n; i += 32 {
			v1 = round64(v1, le64(data[i:]))
			v2 = round64(v2, le64(data[i+8:]))
			v3 = round64(v3, le64(data[i+16:]))
			v4 = round64(v4, le64(data[i+24:]))
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound64(h, v1)
		h = mergeRound64(h, v2)
		h = mergeRound64(h, v3)
		h = mergeRound64(h, v4)
	} else {
		h = seed + prime64x5
	}
	h += uint64(n)
	for ; i+8 <= n; i += 8 {
		h ^= round64(0, le64(data[i:]))
		h = bits.RotateLeft64(h, 27)*prime64x1 + prime64x4
	}
	if i+4 <= n {
		h ^= uint64(le32(data[i:])) * prime64x1
		h = bits.RotateLeft64(h, 23)*prime64x2 + prime64x3
		i += 4
	}
	for ; i < n; i++ {
		h ^= uint64(data[i]) * prime64x5
		h = bits.RotateLeft64(h, 11) * prime64x1
	}
	h ^= h >> 33
	h *= prime64x2
	h ^= h >> 29
	h *= prime64x3
	h ^= h >> 32
	return h
}

func round64(acc, input uint64) uint64 {
	acc += input * prime64x2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime64x1
}

func mergeRound64(acc, val uint64) uint64 {
	acc ^= round64(0, val)
	return acc*prime64x1 + prime64x4
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// SplitMix64 advances the SplitMix64 PRNG state and returns the next output.
// It is used to derive independent hash seeds deterministically from a
// master seed (each round of PBS needs a fresh, mutually independent hash
// function, §2.4).
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Seeds derives n independent seeds from master.
func Seeds(master uint64, n int) []uint64 {
	s := master
	out := make([]uint64, n)
	for i := range out {
		out[i] = SplitMix64(&s)
	}
	return out
}

// Bin hashes x into a bin index in [1, n] using the seeded xxHash64. This is
// the hash-partitioning primitive h of §2.2.1 (bins are 1-based because bin
// indices double as nonzero GF(2^m) elements).
func Bin(x, seed uint64, n uint64) uint64 {
	return XXH64Uint64(x, seed)%n + 1
}

// Bucket hashes x into a 0-based bucket in [0, n).
func Bucket(x, seed uint64, n uint64) uint64 {
	return XXH64Uint64(x, seed) % n
}

// mersenne61 is the prime 2^61 − 1 used as the modulus of the 4-wise
// independent polynomial hash family.
const mersenne61 = (1 << 61) - 1

// mulmod61 returns a*b mod 2^61−1 using 128-bit intermediate arithmetic.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// Split the 128-bit product into chunks of 61 bits and fold.
	r := lo & mersenne61
	r += (lo >> 61) | (hi << 3 & mersenne61)
	r = (r & mersenne61) + (r >> 61)
	r += hi >> 58
	r = (r & mersenne61) + (r >> 61)
	if r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// FourWise is a member of a 4-wise independent hash family: a random cubic
// polynomial over GF(2^61−1). It provides the ±1 hash values required by
// the Tug-of-War estimator (§6.1).
type FourWise struct {
	a, b, c, d uint64
}

// NewFourWise draws a family member deterministically from seed.
func NewFourWise(seed uint64) FourWise {
	s := seed
	draw := func() uint64 {
		for {
			v := SplitMix64(&s) & ((1 << 62) - 1)
			if v < mersenne61 {
				return v
			}
		}
	}
	return FourWise{a: draw(), b: draw(), c: draw(), d: draw()}
}

// Hash evaluates the polynomial at x and returns the result in [0, 2^61−1).
func (h FourWise) Hash(x uint64) uint64 {
	x %= mersenne61
	r := h.a
	r = mulmod61(r, x) + h.b
	r = (r & mersenne61) + (r >> 61)
	r = mulmod61(r, x) + h.c
	r = (r & mersenne61) + (r >> 61)
	r = mulmod61(r, x) + h.d
	r = (r & mersenne61) + (r >> 61)
	if r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// Sign maps x to +1 or −1, each with probability 1/2, 4-wise independently
// across distinct inputs.
func (h FourWise) Sign(x uint64) int64 {
	if h.Hash(x)&1 == 0 {
		return 1
	}
	return -1
}

// FourWiseBank is a structure-of-arrays bank of 4-wise independent hash
// functions for batched evaluation: instead of running ℓ independent
// Horner chains of dependent mulmod61 calls per element, the element's
// powers x, x², x³ (mod 2^61−1) are computed once and a single pass over
// the flat coefficient arrays evaluates every polynomial with three
// mutually independent multiplies each — the form out-of-order hardware
// actually pipelines. Results are bit-identical to FourWise.Hash.
type FourWiseBank struct {
	a, b, c, d []uint64
}

// NewFourWiseBank builds a bank whose i-th member is exactly
// NewFourWise(seeds[i]).
func NewFourWiseBank(seeds []uint64) *FourWiseBank {
	bk := &FourWiseBank{
		a: make([]uint64, len(seeds)),
		b: make([]uint64, len(seeds)),
		c: make([]uint64, len(seeds)),
		d: make([]uint64, len(seeds)),
	}
	for i, s := range seeds {
		h := NewFourWise(s)
		bk.a[i], bk.b[i], bk.c[i], bk.d[i] = h.a, h.b, h.c, h.d
	}
	return bk
}

// Len returns the number of hash functions in the bank.
func (bk *FourWiseBank) Len() int { return len(bk.a) }

// AddSigns adds every member's ±1 sign of x into the matching slot of ys,
// which must have length Len(). One call replaces Len() independent
// FourWise.Sign evaluations.
func (bk *FourWiseBank) AddSigns(x uint64, ys []int64) {
	x %= mersenne61
	x2 := mulmod61(x, x)
	x3 := mulmod61(x2, x)
	cs, ds := bk.c, bk.d
	for i, ai := range bk.a {
		// r = a·x³ + b·x² + c·x + d, folded from < 4·(2^61−1) into [0, p).
		r := mulmod61(ai, x3) + mulmod61(bk.b[i], x2) + mulmod61(cs[i], x) + ds[i]
		r = (r & mersenne61) + (r >> 61)
		if r >= mersenne61 {
			r -= mersenne61
		}
		ys[i] += 1 - 2*int64(r&1)
	}
}

// SubSigns subtracts every member's ±1 sign of x from the matching slot of
// ys. Because the signs are ±1 and the accumulation is plain addition,
// SubSigns(x) exactly cancels a prior AddSigns(x) — the property that makes
// a sign-sum sketch incrementally maintainable under element removal.
func (bk *FourWiseBank) SubSigns(x uint64, ys []int64) {
	x %= mersenne61
	x2 := mulmod61(x, x)
	x3 := mulmod61(x2, x)
	cs, ds := bk.c, bk.d
	for i, ai := range bk.a {
		r := mulmod61(ai, x3) + mulmod61(bk.b[i], x2) + mulmod61(cs[i], x) + ds[i]
		r = (r & mersenne61) + (r >> 61)
		if r >= mersenne61 {
			r -= mersenne61
		}
		ys[i] -= 1 - 2*int64(r&1)
	}
}
