package core

import (
	"pbs/internal/hashutil"
)

// A scope identifies one independently reconciled set pair: initially one
// of the g group pairs, and after BCH decoding failures one of the 3-way
// sub-group pairs of §3.2. Scopes are identified by the group index plus
// the path of split-child choices, so both endpoints derive identical
// element membership from hashes alone.
type scopeID struct {
	group int
	path  string // one byte per split level, values 0..splitWays-1
	h     uint64 // cached identity hash; maintained by the constructors
}

// splitWays is the fan-out used when a group pair's BCH decoding fails.
// The paper argues for 3 (a 2-way split leaves too high a residual
// probability of another failure, §3.2).
const splitWays = 3

// newScopeID returns the root scope of a group with its identity hash
// precomputed. All scopeID values must come from newScopeID, child, or
// makeScopeID so the cached hash stays consistent (it participates in
// scopeID equality and map keys).
func newScopeID(group int) scopeID {
	return scopeID{group: group, h: hashutil.XXH64Uint64(uint64(group), 0x5C09E)}
}

func (s scopeID) child(i int) scopeID {
	return scopeID{
		group: s.group,
		path:  s.path + string(rune('0'+i)),
		h:     hashutil.XXH64Uint64(s.h, uint64('0'+i)+0x711D),
	}
}

// makeScopeID rebuilds a scopeID (and its cached hash) from raw parts,
// e.g. when parsed off the wire. The hash folds directly over the path
// bytes — the same chain child() maintains incrementally — so no
// intermediate scopeIDs or strings are built.
func makeScopeID(group int, path string) scopeID {
	h := hashutil.XXH64Uint64(uint64(group), 0x5C09E)
	for i := 0; i < len(path); i++ {
		h = hashutil.XXH64Uint64(h, uint64(path[i])+0x711D)
	}
	return scopeID{group: group, path: path, h: h}
}

// hash returns the scope's identity hash, used to derive scope-specific
// hash seeds. It is precomputed at construction so per-round seed
// derivation does not re-hash the split path.
func (s scopeID) hash() uint64 { return s.h }

// seeds bundles the derived hash seeds shared by both endpoints.
type seeds struct {
	group uint64 // assigns elements to groups (h′ of §1.3.2)
	round uint64 // master for per-round bin hashes (fresh h every round, §2.4)
	split uint64 // master for split-child assignment
}

func deriveSeeds(master uint64) seeds {
	s := master
	return seeds{
		group: hashutil.SplitMix64(&s),
		round: hashutil.SplitMix64(&s),
		split: hashutil.SplitMix64(&s),
	}
}

// binSeed returns the seed of the bin-partitioning hash for a scope in a
// given round. Different rounds use independent hash functions (§2.4);
// different scopes also get independent hashes so sibling sub-groups do
// not correlate.
func (sd seeds) binSeed(sc scopeID, round int) uint64 {
	return hashutil.XXH64Uint64(sc.hash()^uint64(round)*0x9E3779B97F4A7C15, sd.round)
}

// splitSeed returns the seed assigning a scope's elements to its children.
// It depends only on the scope identity, so a scope splits the same way on
// both sides regardless of the round in which the failure occurred.
func (sd seeds) splitSeed(sc scopeID) uint64 {
	return hashutil.XXH64Uint64(sc.hash(), sd.split)
}

// groupOf assigns element x to a group.
func (sd seeds) groupOf(x uint64, groups int) int {
	return int(hashutil.Bucket(x, sd.group, uint64(groups)))
}

// childOf assigns element x to a split child of scope sc.
func (sd seeds) childOf(x uint64, sc scopeID) int {
	return int(hashutil.Bucket(x, sd.splitSeed(sc), splitWays))
}
