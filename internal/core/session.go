package core

import (
	"context"
	"fmt"
)

// Stats reports the cost of a reconciliation session.
type Stats struct {
	// Rounds is the number of message exchanges executed.
	Rounds int
	// AliceWireBits / BobWireBits count full serialized messages
	// (payload + framing) in each direction.
	AliceWireBits int
	BobWireBits   int
	// AlicePayloadBits / BobPayloadBits count only the protocol payload —
	// the quantities of Formula (1): BCH codewords one way; positions,
	// XOR sums, and checksums the other way.
	AlicePayloadBits int
	BobPayloadBits   int

	// Item counts, for re-pricing the payload at a different signature
	// width (App. J.3 simulates 256-bit transaction IDs this way).
	SketchesSent  int // per-scope BCH codewords (t·m bits each)
	PositionsSent int // (position, XOR sum) pairs
	ChecksumsSent int // per-scope checksums

	// Plan echoes the parameters used, for re-pricing.
	Plan Plan
}

// PayloadBitsAt re-prices the session's payload at a different signature
// width: codewords and positions keep their log n width, while XOR sums
// and checksums scale to sigBits. This is the substitution Appendix J.3
// makes to evaluate 256-bit transaction IDs over a 32-bit testbed.
func (s Stats) PayloadBitsAt(sigBits int) int {
	m := int(s.Plan.M)
	return s.SketchesSent*s.Plan.T*m + s.PositionsSent*(m+sigBits) + s.ChecksumsSent*sigBits
}

// TotalWireBytes returns the total bytes of serialized messages exchanged.
func (s Stats) TotalWireBytes() int {
	return (s.AliceWireBits + s.BobWireBits + 7) / 8
}

// TotalPayloadBytes returns the paper-comparable communication overhead.
func (s Stats) TotalPayloadBytes() int {
	return (s.AlicePayloadBits + s.BobPayloadBits + 7) / 8
}

// Result is the outcome of a driven reconciliation session.
type Result struct {
	// Difference is Alice's learned A△B.
	Difference []uint64
	// Complete reports whether every group pair passed checksum
	// verification within the round budget.
	Complete bool
	Stats    Stats
}

// Reconcile runs the full multi-round PBS session between in-process
// endpoints for sets a and b under plan, and returns Alice's learned
// difference plus communication statistics. MaxRounds from the plan caps
// the exchange; zero means "run to completion".
func Reconcile(a, b []uint64, plan Plan) (*Result, error) {
	alice, err := NewAlice(a, plan)
	if err != nil {
		return nil, err
	}
	bob, err := NewBob(b, plan)
	if err != nil {
		return nil, err
	}
	return Drive(alice, bob, plan.MaxRounds)
}

// Drive runs rounds between existing endpoints until Alice is done or the
// round budget is exhausted. maxRounds <= 0 means unlimited, which (like
// every plan NewPlan derives) is capped at DefaultMaxRounds; hand-built
// budgets beyond that cap are clamped to it as well.
func Drive(alice *Alice, bob *Bob, maxRounds int) (*Result, error) {
	return DriveContext(context.Background(), alice, bob, maxRounds)
}

// DriveContext is Drive with cancellation: the context is checked before
// every round, and a cancelled or expired context aborts the session with
// ctx.Err().
func DriveContext(ctx context.Context, alice *Alice, bob *Bob, maxRounds int) (*Result, error) {
	cap := maxRounds
	if cap <= 0 || cap > DefaultMaxRounds {
		cap = DefaultMaxRounds
	}
	var st Stats
	for round := 0; round < cap && !alice.Done(); round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		msg, err := alice.BuildRound()
		if err != nil {
			return nil, fmt.Errorf("core: round %d build: %w", round+1, err)
		}
		if msg == nil {
			break
		}
		reply, err := bob.HandleRound(msg)
		if err != nil {
			return nil, fmt.Errorf("core: round %d handle: %w", round+1, err)
		}
		if err := alice.AbsorbReply(reply); err != nil {
			return nil, fmt.Errorf("core: round %d absorb: %w", round+1, err)
		}
		st.Rounds++
		st.AliceWireBits += len(msg) * 8
		st.BobWireBits += len(reply) * 8
	}
	st.AlicePayloadBits = alice.PayloadBits()
	st.BobPayloadBits = bob.PayloadBits()
	st.SketchesSent = alice.SketchesSent()
	st.PositionsSent = bob.PositionsSent()
	st.ChecksumsSent = bob.ChecksumsSent()
	st.Plan = alice.plan
	return &Result{
		Difference: alice.Difference(),
		Complete:   alice.Done(),
		Stats:      st,
	}, nil
}
