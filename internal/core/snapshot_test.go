package core

import (
	"bytes"
	"sync"
	"testing"

	"pbs/internal/workload"
)

// TestSnapshotBobEquivalence: a Bob built from a shared snapshot must emit
// byte-identical replies to one built privately with NewBob, across a full
// multi-round session.
func TestSnapshotBobEquivalence(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 4000, D: 120, Seed: 7})
	plan, err := NewPlan(150, Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(p.B, Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}

	alice1, err := NewAlice(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	alice2, err := NewAlice(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	bobPriv, err := NewBob(p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	bobShared, err := NewBobFromSnapshot(snap, plan)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < DefaultMaxRounds && !alice1.Done(); round++ {
		m1, err := alice1.BuildRound()
		if err != nil {
			t.Fatal(err)
		}
		m2, err := alice2.BuildRound()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("round %d: alice messages diverge", round)
		}
		if m1 == nil {
			break
		}
		r1, err := bobPriv.HandleRound(m1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := bobShared.HandleRound(m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r1, r2) {
			t.Fatalf("round %d: snapshot Bob reply diverges from private Bob", round)
		}
		if err := alice1.AbsorbReply(r1); err != nil {
			t.Fatal(err)
		}
		if err := alice2.AbsorbReply(r2); err != nil {
			t.Fatal(err)
		}
	}
	if !alice1.Done() {
		t.Fatal("session did not complete")
	}
}

// TestSnapshotConcurrentBobs: many Bobs sharing one snapshot (and hence one
// partition per group count) must reconcile concurrently without races and
// still produce correct differences. Run with -race.
func TestSnapshotConcurrentBobs(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 60, Seed: 11})
	snap, err := NewSnapshot(p.B, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 16
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		// Vary d so sessions exercise distinct and shared partition sizes.
		d := 50 + 25*(i%3)
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			plan, err := NewPlan(d, Config{Seed: 42})
			if err != nil {
				errs <- err
				return
			}
			alice, err := NewAlice(p.A, plan)
			if err != nil {
				errs <- err
				return
			}
			bob, err := NewBobFromSnapshot(snap, plan)
			if err != nil {
				errs <- err
				return
			}
			res, err := Drive(alice, bob, 0)
			if err != nil {
				errs <- err
				return
			}
			if !res.Complete || len(res.Difference) != len(p.Diff) {
				errs <- errTest{"incomplete or wrong-size difference"}
			}
		}(d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errTest struct{ s string }

func (e errTest) Error() string { return e.s }

func TestSnapshotRejectsBadElements(t *testing.T) {
	if _, err := NewSnapshot([]uint64{1, 0, 2}, Config{}); err == nil {
		t.Fatal("snapshot accepted a zero element")
	}
	if _, err := NewSnapshot([]uint64{1, 2, 1}, Config{}); err == nil {
		t.Fatal("snapshot accepted a duplicate element")
	}
	if _, err := NewSnapshot([]uint64{1 << 40}, Config{SigBits: 32}); err == nil {
		t.Fatal("snapshot accepted an out-of-universe element")
	}
}

func TestSnapshotPlanMismatchRejected(t *testing.T) {
	snap, err := NewSnapshot([]uint64{1, 2, 3}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	planWrongSeed, err := NewPlan(10, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBobFromSnapshot(snap, planWrongSeed); err == nil {
		t.Fatal("snapshot Bob accepted a plan with a different seed")
	}
	planWrongSig, err := NewPlan(10, Config{Seed: 1, SigBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBobFromSnapshot(snap, planWrongSig); err == nil {
		t.Fatal("snapshot Bob accepted a plan with a different signature width")
	}
}

// TestNewPlanResolvesMaxRounds: the <= 0 → DefaultMaxRounds fallback now
// lives in NewPlan, so every derived plan carries an explicit cap.
func TestNewPlanResolvesMaxRounds(t *testing.T) {
	p, err := NewPlan(100, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxRounds != DefaultMaxRounds {
		t.Fatalf("MaxRounds = %d, want DefaultMaxRounds (%d)", p.MaxRounds, DefaultMaxRounds)
	}
	p, err = NewPlan(100, Config{MaxRounds: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxRounds != 7 {
		t.Fatalf("MaxRounds = %d, want 7", p.MaxRounds)
	}
}
