package core

import (
	"fmt"
	"slices"
	"time"

	"pbs/internal/bch"
	"pbs/internal/hashutil"
	"pbs/internal/markov"
	"pbs/internal/wire"
)

// Alice is the endpoint that learns the set difference. She initiates every
// round by sending BCH codewords of her parity bitmaps (Line 1 of
// Procedure 2) and finishes it by recovering distinct elements from Bob's
// reply and verifying checksums (Lines 4–5).
type Alice struct {
	plan    Plan
	sd      seeds
	sigMask uint64

	active []*aliceScope
	round  int

	// diff accumulates D̂1 △ D̂2 △ ... — the learned difference.
	diff map[uint64]struct{}

	// onDelta, when set, is invoked at the end of each AbsorbReply with the
	// elements of every scope that passed checksum verification in that
	// round — the piecewise-reconciliability property (§3) surfaced as an
	// event stream: group pairs deliver their differences as they verify,
	// not when the whole session completes.
	onDelta func(elems []uint64, round int)

	payloadBits  int
	sketchesSent int
	awaiting     bool // a round message was built and its reply is pending

	// Adaptive per-round re-planning (negotiated; see EnableAdaptive).
	// curM/curT are the parameters of the round currently in flight; they
	// start at the plan's values and, from round 2 on, are re-chosen per
	// round from the Markov occupancy model. skM/skT track the shape the
	// sketch scratch was built for.
	adaptive bool
	curM     uint
	curT     int
	skM      uint
	skT      int
	replans  int

	encodeTime time.Duration // time spent building bitmaps and codewords
	decodeTime time.Duration // time spent recovering and verifying elements

	// Reusable hot-path scratch: steady-state rounds reuse these instead
	// of allocating. sketches holds one codeword sketch per active-scope
	// index, reset each round; parity is per-worker bitmap scratch;
	// sumsPool is a free list for the per-scope bin XOR-sum buffers that
	// live on scopes between BuildRound and AbsorbReply; durs is the
	// per-worker timing scratch.
	sketches []*bch.Sketch
	parity   [][]bool
	sumsPool [][]uint64
	durs     []time.Duration
	parsed   []aliceParsedScope
	outcomes []aliceScopeOutcome
}

// getSums pops a zeroed bin-sum buffer (1-based, n+1 slots) off the free
// list, or allocates one. Wrong-sized buffers (left over from a round with
// a different adaptive bitmap size) are discarded.
func (a *Alice) getSums(n uint64) []uint64 {
	for len(a.sumsPool) > 0 {
		s := a.sumsPool[len(a.sumsPool)-1]
		a.sumsPool = a.sumsPool[:len(a.sumsPool)-1]
		if uint64(len(s)) == n+1 {
			clear(s)
			return s
		}
	}
	return make([]uint64, n+1)
}

// putSums returns a buffer to the free list.
func (a *Alice) putSums(s []uint64) {
	if s != nil {
		a.sumsPool = append(a.sumsPool, s)
	}
}

// EncodeTime returns the cumulative time Alice spent encoding (hash
// partitioning, parity bitmaps, BCH codewords). Parallel-phase work is
// summed across workers, so under Parallelism > 1 this tracks CPU time,
// not wall time — the same convention as Bob.
func (a *Alice) EncodeTime() time.Duration { return a.encodeTime }

// DecodeTime returns the cumulative time Alice spent recovering distinct
// elements and verifying checksums, summed across workers like EncodeTime.
func (a *Alice) DecodeTime() time.Duration { return a.decodeTime }

// aliceScope is Alice's per-scope state: the working set W (initially her
// group subset, thereafter W △ D̂ after every round, §2.4) plus incremental
// checksums.
type aliceScope struct {
	id       scopeID
	w        map[uint64]struct{}
	checksum uint64 // c(W), maintained incrementally

	bobChecksum     uint64
	haveBobChecksum bool

	// Round-scoped scratch, saved between BuildRound and AbsorbReply.
	binSums []uint64
	binSeed uint64

	// loadHint is the adaptive re-planner's upper estimate of how many
	// unreconciled distinct elements this scope still holds, set when the
	// scope survives a round with its checksum unverified; splitFresh
	// marks a just-created split child, whose load is unknown — it forces
	// the next round back onto the static plan (see replanRound).
	loadHint   int
	splitFresh bool

	// pending tracks the scope's contribution to the learned difference —
	// elements toggled an odd number of times so far. Maintained only when
	// onDelta is set; when the scope verifies, pending is exactly the
	// scope's share of A△B and is emitted as that round's delta batch.
	// Split children inherit the parent's pending partitioned by child hash
	// (pending elements always lie in the scope's sub-universe, because
	// acceptRecovered enforces the group and split path).
	pending map[uint64]struct{}
}

// NewAlice creates the Alice endpoint for the given set under plan.
// Elements must be nonzero and fit in plan.SigBits bits.
func NewAlice(set []uint64, plan Plan) (*Alice, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	a := &Alice{
		plan:    plan,
		sd:      deriveSeeds(plan.Seed),
		sigMask: sigMask(plan.SigBits),
		diff:    make(map[uint64]struct{}),
		curM:    plan.M,
		curT:    plan.T,
		skM:     plan.M,
		skT:     plan.T,
	}
	scopes := make([]*aliceScope, plan.Groups)
	for g := range scopes {
		scopes[g] = &aliceScope{
			id: newScopeID(g),
			w:  make(map[uint64]struct{}),
		}
	}
	for _, x := range set {
		if x == 0 || x&^a.sigMask != 0 {
			return nil, fmt.Errorf("core: element %#x outside %d-bit universe (0 excluded)", x, plan.SigBits)
		}
		sc := scopes[a.sd.groupOf(x, plan.Groups)]
		if _, dup := sc.w[x]; dup {
			return nil, fmt.Errorf("core: duplicate element %#x", x)
		}
		sc.w[x] = struct{}{}
		sc.checksum = (sc.checksum + x) & a.sigMask
	}
	a.active = scopes
	return a, nil
}

// NewAliceFromSnapshot creates an Alice endpoint over a pre-validated
// shared Snapshot, skipping the per-session O(|S|) validation pass and
// reusing the snapshot's cached group partition for plan.Groups — the same
// amortization NewBobFromSnapshot gives the responder, now available to the
// side that learns the difference. The plan's Seed and SigBits must match
// the snapshot's.
func NewAliceFromSnapshot(snap *Snapshot, plan Plan) (*Alice, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	if plan.Seed != snap.seed {
		return nil, fmt.Errorf("core: plan seed %#x does not match snapshot seed %#x", plan.Seed, snap.seed)
	}
	if plan.SigBits != snap.sigBits {
		return nil, fmt.Errorf("core: plan sigBits %d does not match snapshot sigBits %d", plan.SigBits, snap.sigBits)
	}
	a := &Alice{
		plan:    plan,
		sd:      deriveSeeds(plan.Seed),
		sigMask: sigMask(plan.SigBits),
		diff:    make(map[uint64]struct{}),
		curM:    plan.M,
		curT:    plan.T,
		skM:     plan.M,
		skT:     plan.T,
	}
	groups := snap.partition(plan.Groups)
	scopes := make([]*aliceScope, plan.Groups)
	for g := range scopes {
		sc := &aliceScope{
			id: newScopeID(g),
			w:  make(map[uint64]struct{}, len(groups[g])),
		}
		for _, x := range groups[g] {
			sc.w[x] = struct{}{}
			sc.checksum = (sc.checksum + x) & a.sigMask
		}
		scopes[g] = sc
	}
	a.active = scopes
	return a, nil
}

// OnVerifiedDelta registers fn to receive each round's newly verified
// difference elements (see the onDelta field). It must be called before the
// first BuildRound; elements toggled before the handler is installed would
// not be tracked. fn is invoked from AbsorbReply's sequential merge phase —
// never concurrently — with a batch it may retain; batches are sorted, and
// rounds that verify no new elements produce no call.
func (a *Alice) OnVerifiedDelta(fn func(elems []uint64, round int)) {
	if a.round > 0 {
		panic("core: OnVerifiedDelta installed mid-session")
	}
	a.onDelta = fn
}

func sigMask(bits uint) uint64 {
	if bits == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

// EnableAdaptive switches the session to adaptive per-round re-planning:
// from round 2 on, BuildRound re-chooses the bitmap degree and BCH
// capacity for each round from the Markov occupancy model (markov.Replan)
// using the surviving scopes' load estimates, and prefixes the round
// message with the chosen (m, t). Both endpoints must agree — the peer Bob
// must have EnableAdaptive called too — and it must be enabled before the
// second round is built. Round 1 always uses the static plan, so the
// fast-sync speculative round (built before the peer's capabilities are
// known) is unaffected.
func (a *Alice) EnableAdaptive() { a.adaptive = true }

// Replans returns how many rounds were adaptively re-planned away from
// the static plan's parameters.
func (a *Alice) Replans() int { return a.replans }

// survivorLoad is the load estimate for a scope whose BCH decoding
// succeeded but whose checksum did not verify: the stragglers are the
// elements that shared bins (type (I) exceptions, §2.3), overwhelmingly a
// collision pair or two plus margin for a rare fake-element pass.
const survivorLoad = 4

// replanRound re-chooses (curM, curT) for the round about to be built.
//
// Rounds containing fresh split children replay the static plan: a split
// means the plan's capacity was just overrun, so the load estimates are
// unreliable in exactly the way that matters, and the plan's generous t is
// the safe, known-runnable choice. Survivor-only rounds (checksum-failed
// scopes whose decoding succeeded — the steady-state exception path) are
// re-planned, with two guards that keep the deviation a strict
// improvement over replaying the plan:
//
//   - The success target is the static plan's own one-round success at
//     this load, not an absolute bound. With capacity t ≥ load, success
//     depends only on the bitmap size, so demanding an absolute 0.99
//     would inflate the bitmap well past the plan's when the plan itself
//     tolerates a retry — paying more bits for fewer expected rounds the
//     replay never promised.
//   - The deviation must be strictly cheaper than the replay's
//     (t + load)·m bits; otherwise the round replays the plan. Survivor
//     capacity t ≈ load + 2, not the plan's t sized for 2.5δ errors, is
//     where the savings come from — dramatic when the plan was built for
//     a large d.
func (a *Alice) replanRound() {
	load := 0
	for _, sc := range a.active {
		if sc.splitFresh {
			a.curM, a.curT = a.plan.M, a.plan.T
			return
		}
		load = max(load, sc.loadHint)
	}
	if load < 1 {
		load = 1
	}
	target := DefaultTargetSuccess
	if c, err := markov.NewChain((uint64(1)<<a.plan.M)-1, a.plan.T); err == nil {
		if p := c.SuccessProb(load, 1); p < target {
			target = p
		}
	}
	p, err := markov.Replan(load, 1, target)
	if err != nil || p.BitsPerGroup >= (a.plan.T+load)*int(a.plan.M) {
		a.curM, a.curT = a.plan.M, a.plan.T
		return
	}
	if p.M != a.plan.M || p.T != a.plan.T {
		a.replans++
	}
	a.curM, a.curT = p.M, p.T
}

// Done reports whether every scope has passed checksum verification.
func (a *Alice) Done() bool { return len(a.active) == 0 && !a.awaiting }

// Rounds returns the number of rounds started so far.
func (a *Alice) Rounds() int { return a.round }

// PayloadBits returns the cumulative protocol-payload bits Alice has sent
// (BCH codewords), excluding message framing.
func (a *Alice) PayloadBits() int { return a.payloadBits }

// SketchesSent returns how many per-scope BCH codewords Alice has sent.
func (a *Alice) SketchesSent() int { return a.sketchesSent }

// Difference returns the learned estimate of A△B accumulated so far. After
// Done() it is exactly A△B (barring the O(2^−sigBits) false-verification
// event analysed in §2.2.3).
func (a *Alice) Difference() []uint64 {
	out := make([]uint64, 0, len(a.diff))
	for x := range a.diff {
		out = append(out, x)
	}
	return out
}

// BuildRound builds the next round message for Bob: one scope descriptor
// plus BCH codeword per active scope. It returns nil when reconciliation
// has completed. Per-scope encoding (bin folding and sketch construction)
// fans out across the plan's worker pool; serialization stays in scope
// order, so the message bytes do not depend on Parallelism.
func (a *Alice) BuildRound() ([]byte, error) {
	if a.awaiting {
		return nil, fmt.Errorf("core: BuildRound called with a reply outstanding")
	}
	if len(a.active) == 0 {
		return nil, nil
	}
	a.round++
	if a.adaptive && a.round >= 2 {
		a.replanRound()
	}
	n := (uint64(1) << a.curM) - 1
	nw := a.plan.workers()
	// Grow the long-lived scratch to this round's shape; in steady state
	// every buffer below is a reuse. An adaptive (m, t) change invalidates
	// the sketch scratch wholesale.
	if a.skM != a.curM || a.skT != a.curT {
		a.sketches = a.sketches[:0]
		a.skM, a.skT = a.curM, a.curT
	}
	for len(a.parity) < nw {
		a.parity = append(a.parity, nil)
	}
	for len(a.sketches) < len(a.active) {
		a.sketches = append(a.sketches, bch.MustNew(a.curM, a.curT))
	}
	for _, sc := range a.active {
		if sc.binSums != nil && uint64(len(sc.binSums)) != n+1 {
			sc.binSums = nil // wrong adaptive size; drop, don't pool
		}
		if sc.binSums == nil {
			sc.binSums = a.getSums(n)
		} else {
			clear(sc.binSums)
		}
	}
	durs := a.roundDurs(nw)
	forEachScope(nw, len(a.active), func(worker, i int) {
		t0 := time.Now()
		sc := a.active[i]
		sc.binSeed = a.sd.binSeed(sc.id, a.round)
		parity := a.parity[worker]
		if uint64(len(parity)) != n+1 {
			parity = make([]bool, n+1)
			a.parity[worker] = parity
		} else {
			clear(parity)
		}
		binFold(sc.w, sc.binSeed, n, sc.binSums, parity)
		sketch := a.sketches[i]
		sketch.Reset()
		for j := uint64(1); j <= n; j++ {
			if parity[j] {
				sketch.Add(j)
			}
		}
		durs[worker] += time.Since(t0)
	})
	for _, d := range durs {
		a.encodeTime += d
	}
	serStart := time.Now()
	w := wire.NewWriter()
	w.WriteUvarint(uint64(a.round))
	if a.adaptive && a.round >= 2 {
		// Adaptive rounds carry their own parameters: the static plan no
		// longer predicts them. Round 1 never does — it is built before the
		// adaptive grant can be known — so both endpoints key on the round
		// number alone.
		w.WriteUvarint(uint64(a.curM))
		w.WriteUvarint(uint64(a.curT))
	}
	w.WriteUvarint(uint64(len(a.active)))
	for i, sc := range a.active {
		writeScopeID(w, sc.id)
		a.sketches[i].AppendTo(w)
		a.payloadBits += a.sketches[i].Bits()
		a.sketchesSent++
	}
	a.awaiting = true
	a.encodeTime += time.Since(serStart)
	return w.Bytes(), nil
}

// roundDurs returns the per-worker timing scratch, zeroed.
func (a *Alice) roundDurs(nw int) []time.Duration {
	if cap(a.durs) < nw {
		a.durs = make([]time.Duration, nw)
	}
	a.durs = a.durs[:nw]
	clear(a.durs)
	return a.durs
}

// aliceParsedScope is one scope's slice of Bob's reply, parsed off the
// sequential bit stream before the parallel processing phase.
type aliceParsedScope struct {
	ok        bool // BCH decoding succeeded on Bob's side
	positions []uint64
	sums      []uint64
	bobCk     uint64
}

// aliceScopeOutcome is the result of processing one scope's reply slice:
// the accepted recovered elements (not yet applied — the sequential merge
// phase toggles them into the working set and the global difference
// together), the checksum verdict, and — for BCH decoding failures — the
// 3-way split children.
type aliceScopeOutcome struct {
	accepted []uint64
	verified bool
	splits   []*aliceScope
}

// AbsorbReply processes Bob's reply to the message built by the last
// BuildRound call: it recovers distinct elements per scope (Procedure 1),
// discards fake distinct elements (Procedure 3), toggles the recovered
// elements into the working sets and the global difference, verifies
// checksums, and queues 3-way splits for scopes whose BCH decoding failed.
//
// The reply is parsed sequentially (the bit stream has no random access),
// the per-scope recovery and verification fan out read-only across the
// worker pool, and all state mutation — working sets, checksums, the
// global difference, the next-round scope list — happens in a sequential
// merge in scope order, keeping the session deterministic for any
// Parallelism and untouched when a malformed reply aborts the round.
func (a *Alice) AbsorbReply(reply []byte) error {
	if !a.awaiting {
		return fmt.Errorf("core: AbsorbReply without an outstanding round")
	}
	a.awaiting = false
	n := (uint64(1) << a.curM) - 1 // the in-flight round's bitmap size
	parseStart := time.Now()
	r := wire.NewReader(reply)
	if cap(a.parsed) < len(a.active) {
		a.parsed = make([]aliceParsedScope, len(a.active))
	}
	parsed := a.parsed[:len(a.active)]
	for i := range a.active {
		p := &parsed[i]
		p.positions = p.positions[:0]
		p.sums = p.sums[:0]
		p.bobCk = 0
		ok, err := r.ReadBool()
		if err != nil {
			return fmt.Errorf("core: truncated reply: %w", err)
		}
		p.ok = ok
		if !ok {
			continue
		}
		count, err := r.ReadUvarint()
		if err != nil {
			return fmt.Errorf("core: truncated reply: %w", err)
		}
		if count > n {
			return fmt.Errorf("core: reply position count %d exceeds bitmap size", count)
		}
		for j := uint64(0); j < count; j++ {
			v, err := r.ReadBits(a.curM)
			if err != nil {
				return fmt.Errorf("core: truncated reply: %w", err)
			}
			p.positions = append(p.positions, v)
		}
		for j := uint64(0); j < count; j++ {
			v, err := r.ReadBits(a.plan.SigBits)
			if err != nil {
				return fmt.Errorf("core: truncated reply: %w", err)
			}
			p.sums = append(p.sums, v)
		}
		if p.bobCk, err = r.ReadBits(a.plan.SigBits); err != nil {
			return fmt.Errorf("core: truncated reply: %w", err)
		}
	}

	a.decodeTime += time.Since(parseStart)

	// The parallel phase is strictly read-only on session state: workers
	// compute accepted elements, the would-be checksum, and split children
	// without mutating anything, so an error below leaves the session
	// exactly as it was (no half-applied round).
	if cap(a.outcomes) < len(a.active) {
		a.outcomes = make([]aliceScopeOutcome, len(a.active))
	}
	outcomes := a.outcomes[:len(a.active)]
	errs := newScopeErrors(len(a.active))
	nw := a.plan.workers()
	durs := a.roundDurs(nw)
	forEachScope(nw, len(a.active), func(worker, i int) {
		t0 := time.Now()
		defer func() { durs[worker] += time.Since(t0) }()
		sc := a.active[i]
		p := &parsed[i]
		out := &outcomes[i]
		out.accepted = out.accepted[:0]
		out.verified = false
		out.splits = nil
		if !p.ok {
			// BCH decoding failure (§3.2): split three ways for next round.
			out.splits = a.splitScope(sc)
			return
		}
		ck := sc.checksum
		for j, pos := range p.positions {
			if pos == 0 || pos > n {
				errs.set(i, fmt.Errorf("core: reply position %d out of range", pos))
				return
			}
			s := sc.binSums[pos] ^ p.sums[j]
			if !a.acceptRecovered(sc, s, pos) {
				continue
			}
			_, in := sc.w[s]
			ck = a.checksumToggle(ck, s, in)
			out.accepted = append(out.accepted, s)
		}
		// Verified scopes are reconciled subset pairs (§2.2.3).
		out.verified = ck == p.bobCk
	})
	for _, d := range durs {
		a.decodeTime += d
	}
	if err := errs.first(); err != nil {
		return err
	}

	mergeStart := time.Now()
	var next []*aliceScope
	var delta []uint64
	for i, sc := range a.active {
		out := &outcomes[i]
		if out.splits != nil {
			a.putSums(sc.binSums)
			sc.binSums = nil
			for _, child := range out.splits {
				child.splitFresh = true
			}
			next = append(next, out.splits...)
			continue
		}
		sc.bobChecksum = parsed[i].bobCk
		sc.haveBobChecksum = true
		for _, s := range out.accepted {
			a.toggle(sc, s)
		}
		if out.verified {
			// The scope is done: recycle its bin-sum buffer for future
			// rounds (surviving scopes keep theirs attached).
			a.putSums(sc.binSums)
			sc.binSums = nil
			// The scope's pending toggles just passed verification: they
			// are confirmed difference elements, deliverable now.
			if a.onDelta != nil {
				for x := range sc.pending {
					delta = append(delta, x)
				}
				sc.pending = nil
			}
		} else {
			sc.loadHint = survivorLoad
			sc.splitFresh = false
			next = append(next, sc)
		}
	}
	a.active = next
	if len(delta) > 0 {
		// Map iteration randomizes within-scope order; sort so the stream a
		// caller observes is deterministic for a given exchange.
		slices.Sort(delta)
		a.onDelta(delta, a.round)
	}
	a.decodeTime += time.Since(mergeStart)
	return nil
}

// acceptRecovered applies the fake-distinct-element checks: the recovered
// s must be a valid universe element, must hash into the bin it was
// recovered from (Procedure 3), and must belong to this scope's group and
// split path (the sub-universe membership condition).
func (a *Alice) acceptRecovered(sc *aliceScope, s uint64, pos uint64) bool {
	if s == 0 || s&^a.sigMask != 0 {
		return false
	}
	if hashutil.Bin(s, sc.binSeed, (uint64(1)<<a.curM)-1) != pos {
		return false
	}
	if a.sd.groupOf(s, a.plan.Groups) != sc.id.group {
		return false
	}
	cur := newScopeID(sc.id.group)
	for i := 0; i < len(sc.id.path); i++ {
		if a.sd.childOf(s, cur) != int(sc.id.path[i]-'0') {
			return false
		}
		cur = cur.child(int(sc.id.path[i] - '0'))
	}
	return true
}

// checksumToggle returns the plain-sum checksum after toggling element s,
// where present reports whether s is currently in the set. The parallel
// phase uses it to predict the post-merge checksum; toggle applies it.
func (a *Alice) checksumToggle(ck, s uint64, present bool) uint64 {
	if present {
		return (ck - s) & a.sigMask
	}
	return (ck + s) & a.sigMask
}

// toggle applies s to the scope's working set (W ← W △ {s}), its checksum,
// and the global learned difference. It runs only in the sequential merge
// phase so the working sets and the difference can never diverge, even
// when a malformed reply aborts a round.
func (a *Alice) toggle(sc *aliceScope, s uint64) {
	_, in := sc.w[s]
	sc.checksum = a.checksumToggle(sc.checksum, s, in)
	if in {
		delete(sc.w, s)
	} else {
		sc.w[s] = struct{}{}
	}
	if _, in := a.diff[s]; in {
		delete(a.diff, s)
	} else {
		a.diff[s] = struct{}{}
	}
	if a.onDelta != nil {
		if _, in := sc.pending[s]; in {
			delete(sc.pending, s)
		} else {
			if sc.pending == nil {
				sc.pending = make(map[uint64]struct{})
			}
			sc.pending[s] = struct{}{}
		}
	}
}

// splitScope partitions sc's working set into splitWays children.
func (a *Alice) splitScope(sc *aliceScope) []*aliceScope {
	children := make([]*aliceScope, splitWays)
	for i := range children {
		children[i] = &aliceScope{
			id: sc.id.child(i),
			w:  make(map[uint64]struct{}),
		}
	}
	for x := range sc.w {
		c := children[a.sd.childOf(x, sc.id)]
		c.w[x] = struct{}{}
		c.checksum = (c.checksum + x) & a.sigMask
	}
	// Unconfirmed toggles follow their elements into the children: each
	// pending element verifies (and is emitted) with whichever child scope
	// its sub-universe hash lands it in.
	for x := range sc.pending {
		c := children[a.sd.childOf(x, sc.id)]
		if c.pending == nil {
			c.pending = make(map[uint64]struct{})
		}
		c.pending[x] = struct{}{}
	}
	return children
}

// binFold hashes every element of set into a bin in [1, n], accumulating
// per-bin XOR sums and cardinality parities into the caller's buffers
// (both 1-based with n+1 slots, pre-zeroed).
func binFold(set map[uint64]struct{}, seed uint64, n uint64, sums []uint64, parity []bool) {
	for x := range set {
		b := hashutil.Bin(x, seed, n)
		sums[b] ^= x
		parity[b] = !parity[b]
	}
}

func writeScopeID(w *wire.Writer, id scopeID) {
	w.WriteUvarint(uint64(id.group))
	w.WriteUvarint(uint64(len(id.path)))
	for i := 0; i < len(id.path); i++ {
		w.WriteBits(uint64(id.path[i]-'0'), 2)
	}
}

func readScopeID(r *wire.Reader) (scopeID, error) {
	g, err := r.ReadUvarint()
	if err != nil {
		return scopeID{}, err
	}
	plen, err := r.ReadUvarint()
	if err != nil {
		return scopeID{}, err
	}
	if plen > 64 {
		return scopeID{}, fmt.Errorf("core: absurd split depth %d", plen)
	}
	path := make([]byte, plen)
	for i := range path {
		c, err := r.ReadBits(2)
		if err != nil {
			return scopeID{}, err
		}
		if c >= splitWays {
			return scopeID{}, fmt.Errorf("core: split child %d out of range", c)
		}
		path[i] = byte('0' + c)
	}
	return makeScopeID(int(g), string(path)), nil
}
