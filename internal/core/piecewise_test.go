package core

import (
	"math/rand"
	"testing"

	"pbs/internal/workload"
)

// TestPiecewiseReconciliationEmpirical verifies the §5.3 claim on the live
// protocol: the vast majority (> 95% expected; we assert > 90% to absorb
// sampling noise) of the d distinct elements are reconciled in the first
// round, so the objects they index can start synchronizing while the
// stragglers finish.
func TestPiecewiseReconciliationEmpirical(t *testing.T) {
	const d = 1000
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 50000, D: d, Seed: 3})
	plan := planFor(t, d, 17)
	alice, err := NewAlice(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewBob(p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]bool{}
	for _, x := range p.Diff {
		truth[x] = true
	}
	var reconciledAfterRound []int
	for round := 0; round < 8 && !alice.Done(); round++ {
		msg, err := alice.BuildRound()
		if err != nil || msg == nil {
			break
		}
		reply, err := bob.HandleRound(msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.AbsorbReply(reply); err != nil {
			t.Fatal(err)
		}
		// Count how many *true* difference elements are known so far.
		known := 0
		for _, x := range alice.Difference() {
			if truth[x] {
				known++
			}
		}
		reconciledAfterRound = append(reconciledAfterRound, known)
	}
	if !alice.Done() {
		t.Fatalf("did not finish: %v", reconciledAfterRound)
	}
	t.Logf("true elements known after each round: %v (of %d)", reconciledAfterRound, d)
	if frac := float64(reconciledAfterRound[0]) / d; frac < 0.90 {
		t.Errorf("round 1 reconciled only %.3f of d; §5.3 predicts ~0.95+", frac)
	}
	last := reconciledAfterRound[len(reconciledAfterRound)-1]
	if last != d {
		t.Errorf("final round knows %d of %d", last, d)
	}
}

// TestDeepSplitPaths forces nested 3-way splits (severely underestimated
// capacity) and checks both correctness and that split descriptors survive
// multiple levels on the wire.
func TestDeepSplitPaths(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 5000, D: 300, Seed: 4})
	// One group, t=6: the group needs at least two split levels
	// (300 -> ~100 -> ~33 per scope, still > 6 -> another level).
	plan := Plan{M: 9, T: 6, Groups: 1, Delta: 5, SigBits: 32, Seed: 9}
	res, err := Reconcile(p.A, p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Stats.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
	if res.Stats.Rounds < 3 {
		t.Errorf("expected >= 3 rounds of splitting, got %d", res.Stats.Rounds)
	}
}

// TestAbsorbReplyFuzz: random replies must produce errors, never panics or
// silent acceptance of garbage as "done".
func TestAbsorbReplyFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 500, D: 10, Seed: 6})
	for i := 0; i < 300; i++ {
		plan := planFor(t, 10, uint64(i))
		alice, err := NewAlice(p.A, plan)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := alice.BuildRound(); err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, rng.Intn(200))
		rng.Read(junk)
		// Must not panic; error or (rarely) parseable-garbage are both
		// acceptable — correctness is guarded by checksums in later rounds.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("AbsorbReply panicked on %x: %v", junk, r)
				}
			}()
			_ = alice.AbsorbReply(junk)
		}()
	}
}

// TestHandleRoundFuzz: random round messages must produce errors, never
// panics.
func TestHandleRoundFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 500, D: 10, Seed: 8})
	plan := planFor(t, 10, 3)
	bob, err := NewBob(p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		junk := make([]byte, rng.Intn(300))
		rng.Read(junk)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("HandleRound panicked on %x: %v", junk, r)
				}
			}()
			_, _ = bob.HandleRound(junk)
		}()
	}
}

// TestCrossTalkRejected: a reply built for a different round message (other
// seed) must never be silently accepted as completing the protocol with a
// wrong difference.
func TestCrossTalkRejected(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 20, Seed: 9})
	planA := planFor(t, 20, 100)
	planB := planA
	planB.Seed = 101 // different hash functions

	alice, err := NewAlice(p.A, planA)
	if err != nil {
		t.Fatal(err)
	}
	bobWrong, err := NewBob(p.B, planB)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := alice.BuildRound()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := bobWrong.HandleRound(msg)
	if err != nil {
		// Fine: shape mismatch detected outright.
		return
	}
	if err := alice.AbsorbReply(reply); err != nil {
		return // also fine
	}
	if alice.Done() {
		// Completing against the wrong hash universe must not claim the
		// correct difference.
		got := alice.Difference()
		if len(got) == len(p.Diff) {
			m := map[uint64]bool{}
			for _, x := range p.Diff {
				m[x] = true
			}
			all := true
			for _, x := range got {
				if !m[x] {
					all = false
				}
			}
			if all {
				t.Fatal("cross-talk produced a 'verified' correct result, which should be impossible")
			}
		}
	}
}
