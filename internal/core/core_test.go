package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pbs/internal/workload"
)

func sortedU64(xs []uint64) []uint64 {
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func assertSameSet(t *testing.T, got, want []uint64) {
	t.Helper()
	g, w := sortedU64(got), sortedU64(want)
	if len(g) != len(w) {
		t.Fatalf("set size mismatch: got %d want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("set mismatch at index %d", i)
		}
	}
}

// planFor builds a plan for a known d the way the harness does.
func planFor(t testing.TB, d int, seed uint64) Plan {
	t.Helper()
	plan, err := NewPlan(d, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestReconcileSmallKnownD(t *testing.T) {
	for _, d := range []int{0, 1, 2, 5, 10} {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: d, Seed: int64(d) + 1})
		plan := planFor(t, d, uint64(d)*7+1)
		res, err := Reconcile(p.A, p.B, plan)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !res.Complete {
			t.Fatalf("d=%d: reconciliation incomplete after %d rounds", d, res.Stats.Rounds)
		}
		assertSameSet(t, res.Difference, p.Diff)
	}
}

func TestReconcileMediumD(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 30000, D: 500, Seed: 99})
	plan := planFor(t, 500, 5)
	res, err := Reconcile(p.A, p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Stats.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
	if res.Stats.Rounds > 4 {
		t.Errorf("took %d rounds; expected <= 4 almost surely", res.Stats.Rounds)
	}
}

func TestReconcileBidirectionalDifference(t *testing.T) {
	// Differences on both sides (not the paper's B ⊂ A setup).
	p := workload.MustGenerate(workload.Config{
		UniverseBits: 32, SizeA: 5000, D: 60, BOnlyFrac: 0.5, Seed: 123,
	})
	plan := planFor(t, 60, 9)
	res, err := Reconcile(p.A, p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestReconcileIdenticalSets(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 0, Seed: 5})
	plan := planFor(t, 1, 2)
	res, err := Reconcile(p.A, p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Difference) != 0 {
		t.Fatalf("identical sets: complete=%v diff=%d", res.Complete, len(res.Difference))
	}
	if res.Stats.Rounds != 1 {
		t.Errorf("identical sets should verify in 1 round, took %d", res.Stats.Rounds)
	}
}

func TestReconcileEmptySides(t *testing.T) {
	plan := planFor(t, 3, 3)
	// Alice empty: difference is all of B.
	b := []uint64{10, 20, 30}
	res, err := Reconcile(nil, b, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	assertSameSet(t, res.Difference, b)
	// Bob empty: difference is all of A.
	res, err = Reconcile(b, nil, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	assertSameSet(t, res.Difference, b)
}

func TestReconcileUnderestimatedD(t *testing.T) {
	// Plan sized for d=20 but the true difference is 200: BCH decode
	// failures and splits must still converge (MaxRounds unlimited).
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 10000, D: 200, Seed: 7})
	plan := planFor(t, 20, 11)
	res, err := Reconcile(p.A, p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Stats.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
}

func TestElementValidation(t *testing.T) {
	plan := planFor(t, 1, 0)
	if _, err := NewAlice([]uint64{0}, plan); err == nil {
		t.Error("element 0 must be rejected")
	}
	if _, err := NewAlice([]uint64{1 << 40}, plan); err == nil {
		t.Error("element above the universe must be rejected")
	}
	if _, err := NewAlice([]uint64{7, 7}, plan); err == nil {
		t.Error("duplicates must be rejected")
	}
	if _, err := NewBob([]uint64{0}, plan); err == nil {
		t.Error("Bob must validate too")
	}
	if _, err := NewBob([]uint64{9, 9}, plan); err == nil {
		t.Error("Bob must reject duplicates")
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{M: 1, T: 1, Groups: 1, SigBits: 32},
		{M: 8, T: 0, Groups: 1, SigBits: 32},
		{M: 8, T: 200, Groups: 1, SigBits: 32},
		{M: 8, T: 5, Groups: 0, SigBits: 32},
		{M: 8, T: 5, Groups: 1, SigBits: 4},
	}
	for i, p := range bad {
		if _, err := NewAlice(nil, p); err == nil {
			t.Errorf("plan %d should be invalid", i)
		}
	}
}

func TestProtocolStateMachine(t *testing.T) {
	plan := planFor(t, 2, 1)
	alice, err := NewAlice([]uint64{1, 2, 3}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if alice.Done() {
		t.Fatal("fresh Alice with elements should not be done")
	}
	if err := alice.AbsorbReply(nil); err == nil {
		t.Error("AbsorbReply before BuildRound must fail")
	}
	msg, err := alice.BuildRound()
	if err != nil || msg == nil {
		t.Fatalf("BuildRound: %v", err)
	}
	if _, err := alice.BuildRound(); err == nil {
		t.Error("second BuildRound without a reply must fail")
	}
	// Malformed replies must error, not panic.
	if err := alice.AbsorbReply([]byte{}); err == nil {
		t.Error("empty reply should error")
	}
}

func TestBobRejectsGarbage(t *testing.T) {
	plan := planFor(t, 2, 1)
	bob, err := NewBob([]uint64{5, 6}, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range [][]byte{nil, {}, {0xFF}, {0xFF, 0xFF, 0xFF, 0xFF, 0xFF}} {
		if _, err := bob.HandleRound(msg); err == nil {
			t.Errorf("garbage message %v should error", msg)
		}
	}
}

func TestCommunicationAccounting(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 5000, D: 50, Seed: 21})
	plan := planFor(t, 50, 13)
	res, err := Reconcile(p.A, p.B, plan)
	if err != nil || !res.Complete {
		t.Fatalf("reconcile: %v complete=%v", err, res != nil && res.Complete)
	}
	st := res.Stats
	if st.AlicePayloadBits <= 0 || st.BobPayloadBits <= 0 {
		t.Fatal("payload accounting missing")
	}
	if st.AliceWireBits < st.AlicePayloadBits || st.BobWireBits < st.BobPayloadBits {
		t.Fatal("wire bits must be at least payload bits")
	}
	// Round 1 Alice payload is exactly g sketches of t·m bits.
	g := plan.Groups
	round1 := g * plan.T * int(plan.M)
	if st.AlicePayloadBits < round1 {
		t.Fatalf("Alice payload %d below round-1 flat cost %d", st.AlicePayloadBits, round1)
	}
	// Sanity: overhead of framing should be modest (< 40% of payload).
	tot := st.AliceWireBits + st.BobWireBits
	pay := st.AlicePayloadBits + st.BobPayloadBits
	if float64(tot) > 1.4*float64(pay)+512 {
		t.Errorf("framing overhead looks too high: wire=%d payload=%d", tot, pay)
	}
}

// TestCommNearFormulaOne: for well-estimated d, the measured payload should
// be close to the Formula (1) prediction:
// g·(t·m + δ·m + δ·log|U| + log|U|) for round 1, plus small later rounds.
func TestCommNearFormulaOne(t *testing.T) {
	const d = 200
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: d, Seed: 3})
	plan := planFor(t, d, 77)
	res, err := Reconcile(p.A, p.B, plan)
	if err != nil || !res.Complete {
		t.Fatal("reconcile failed")
	}
	g := float64(plan.Groups)
	m := float64(plan.M)
	formula := g * (float64(plan.T)*m + 5*m + 5*32 + 32)
	got := float64(res.Stats.AlicePayloadBits + res.Stats.BobPayloadBits)
	if got < 0.8*formula || got > 1.6*formula {
		t.Errorf("payload %v bits vs formula-1 %v bits", got, formula)
	}
}

// TestMultiRoundProgress: with a tiny bitmap, collisions force extra
// rounds; the protocol must converge and stay correct.
func TestMultiRoundProgress(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 40, Seed: 31})
	plan := Plan{M: 5, T: 10, Groups: 4, Delta: 10, SigBits: 32, Seed: 17}
	res, err := Reconcile(p.A, p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Stats.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
	if res.Stats.Rounds < 2 {
		t.Logf("note: expected multiple rounds with n=31 and 10 elems/group, got %d", res.Stats.Rounds)
	}
}

// TestMaxRoundsHonored: with MaxRounds=1 and adversarially tight bitmaps,
// sessions often end incomplete — but must report that truthfully and the
// partial difference must only contain true difference elements... (fake
// elements are possible in principle but filtered with probability 1−1/n;
// we assert the overwhelmingly common case across many seeds in
// TestQuickNeverWrongWhenComplete instead).
func TestMaxRoundsHonored(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 50, Seed: 41})
	plan := Plan{M: 5, T: 12, Groups: 2, Delta: 25, SigBits: 32, Seed: 3, MaxRounds: 1}
	res, err := Reconcile(p.A, p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds > 1 {
		t.Fatalf("MaxRounds=1 but ran %d rounds", res.Stats.Rounds)
	}
}

// TestQuickNeverWrongWhenComplete is the key safety property (§2.2.3,
// Theorem 1): whenever the protocol reports completion, the learned
// difference is exactly A△B.
func TestQuickNeverWrongWhenComplete(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Intn(60)
		p, err := workload.Generate(workload.Config{
			UniverseBits: 32, SizeA: 1500 + rng.Intn(1000), D: d,
			BOnlyFrac: rng.Float64(), Seed: seed,
		})
		if err != nil {
			return false
		}
		// Deliberately fuzz the plan: wrong d estimates, small bitmaps.
		plan := Plan{
			M:       uint(5 + rng.Intn(4)),
			T:       3 + rng.Intn(12),
			Groups:  1 + rng.Intn(10),
			Delta:   5,
			SigBits: 32,
			Seed:    uint64(seed) * 31,
		}
		res, err := Reconcile(p.A, p.B, plan)
		if err != nil {
			return false
		}
		if !res.Complete {
			return true // incompleteness is allowed; wrongness is not
		}
		g, w := sortedU64(res.Difference), sortedU64(p.Diff)
		if len(g) != len(w) {
			return false
		}
		for i := range g {
			if g[i] != w[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSuccessRateMatchesTarget: with optimizer-chosen parameters for the
// true d, at least ~p0 of sessions must complete within r rounds.
func TestSuccessRateMatchesTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const d = 100
	const trials = 60
	ok := 0
	for i := 0; i < trials; i++ {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 5000, D: d, Seed: int64(i)})
		plan, err := NewPlan(d, Config{Seed: uint64(i), MaxRounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Reconcile(p.A, p.B, plan)
		if err != nil {
			t.Fatal(err)
		}
		if res.Complete {
			ok++
		}
	}
	if ok < trials-3 { // target 0.99; allow generous slack at 60 trials
		t.Errorf("only %d/%d sessions completed in 3 rounds", ok, trials)
	}
}

func TestPlanDefaults(t *testing.T) {
	plan, err := NewPlan(1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Groups != 200 {
		t.Errorf("groups = %d, want 200", plan.Groups)
	}
	if plan.M != 7 {
		t.Errorf("m = %d, want 7 (n=127)", plan.M)
	}
	if plan.SigBits != 32 || plan.Delta != 5 {
		t.Errorf("defaults not applied: %+v", plan)
	}
}

func TestScopeIDChildAndHash(t *testing.T) {
	root := newScopeID(3)
	c0 := root.child(0)
	c1 := root.child(1)
	if c0 == c1 || c0.hash() == c1.hash() {
		t.Error("children must be distinct with distinct hashes")
	}
	gc := c0.child(2)
	if len(gc.path) != 2 {
		t.Errorf("grandchild path = %q", gc.path)
	}
}

func TestScopeRoundtripWire(t *testing.T) {
	ids := []scopeID{
		makeScopeID(0, ""),
		makeScopeID(199, ""),
		makeScopeID(3, "012"),
		makeScopeID(7, "222120"),
	}
	for _, id := range ids {
		w := newTestWriter()
		writeScopeID(w, id)
		got, err := readScopeID(newTestReader(w.Bytes()))
		if err != nil {
			t.Fatalf("%+v: %v", id, err)
		}
		if got != id {
			t.Fatalf("roundtrip: got %+v want %+v", got, id)
		}
	}
}

func BenchmarkReconcileD100(b *testing.B) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 10000, D: 100, Seed: 8})
	plan, _ := NewPlan(100, Config{Seed: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Reconcile(p.A, p.B, plan)
		if err != nil || !res.Complete {
			b.Fatal("reconcile failed")
		}
	}
}
