package core

import (
	"fmt"
	"time"

	"pbs/internal/bch"
	"pbs/internal/hashutil"
	"pbs/internal/wire"
)

// Bob is the responding endpoint. Each round he decodes Alice's BCH
// codewords against his local parity bitmaps to locate the differing bit
// positions (Line 2 of Procedure 2) and replies with those positions, the
// XOR sums of his corresponding subsets, and his per-scope checksums
// (Line 3).
type Bob struct {
	plan    Plan
	sd      seeds
	sigMask uint64

	// groups holds Bob's elements partitioned by group; stable across
	// rounds because the group hash never changes.
	groups [][]uint64
	// scopeSets caches the element lists of split scopes.
	scopeSets map[scopeID][]uint64
	// checksums caches c(B_s) per scope.
	checksums map[scopeID]uint64

	payloadBits   int
	positionsSent int
	checksumsSent int

	encodeTime time.Duration // building bitmaps, XOR sums, and sketches
	decodeTime time.Duration // BCH decoding

	// Reusable hot-path scratch: in steady state HandleRound performs no
	// per-scope allocations. scratch is per-worker (bin-fold buffers, the
	// parity sketch, and the BCH decode workspace); jobSketches are the
	// reused parse targets for Alice's codewords; posBufs/xorBufs hold
	// each scope index's reply until serialization.
	scratch     []bobScratch
	jobSketches []*bch.Sketch
	posBufs     [][]uint64
	xorBufs     [][]uint64
	jobs        []bobScopeJob
	replies     []bobScopeReply

	// Adaptive per-round re-planning (negotiated; see EnableAdaptive):
	// rounds >= 2 carry their own (m, t) in the round header. curM/curT are
	// the parameters the scratch buffers are currently shaped for.
	adaptive bool
	curM     uint
	curT     int
	replans  int
}

// EnableAdaptive tells Bob to expect adaptive round headers: every round
// message with round number >= 2 carries its own (m, t) ahead of the scope
// count. Must match the peer Alice's EnableAdaptive.
func (b *Bob) EnableAdaptive() { b.adaptive = true }

// Replans returns how many rounds Bob served whose adaptive header chose
// parameters different from the static plan.
func (b *Bob) Replans() int { return b.replans }

// EncodeTime returns the cumulative time Bob spent encoding (hash
// partitioning, parity bitmaps, XOR sums, BCH sketches).
func (b *Bob) EncodeTime() time.Duration { return b.encodeTime }

// DecodeTime returns the cumulative time Bob spent in BCH decoding.
func (b *Bob) DecodeTime() time.Duration { return b.decodeTime }

// NewBob creates the Bob endpoint for the given set under plan. It is the
// single-session path over the same machinery a server shares: a private
// Snapshot validated and partitioned for this one plan.
func NewBob(set []uint64, plan Plan) (*Bob, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	snap, err := NewSnapshot(set, Config{SigBits: plan.SigBits, Seed: plan.Seed})
	if err != nil {
		return nil, err
	}
	return NewBobFromSnapshot(snap, plan)
}

// newBobWithGroups builds a Bob around an already validated and
// partitioned element set. The group slices are only ever read, so they
// may be shared (see Snapshot).
func newBobWithGroups(groups [][]uint64, plan Plan) *Bob {
	return &Bob{
		plan:      plan,
		sd:        deriveSeeds(plan.Seed),
		sigMask:   sigMask(plan.SigBits),
		groups:    groups,
		scopeSets: make(map[scopeID][]uint64),
		checksums: make(map[scopeID]uint64),
		curM:      plan.M,
		curT:      plan.T,
	}
}

// PayloadBits returns the cumulative protocol-payload bits Bob has sent
// (positions, XOR sums, checksums), excluding message framing.
func (b *Bob) PayloadBits() int { return b.payloadBits }

// PositionsSent returns how many (position, XOR sum) pairs Bob has sent.
func (b *Bob) PositionsSent() int { return b.positionsSent }

// ChecksumsSent returns how many per-scope checksums Bob has sent.
func (b *Bob) ChecksumsSent() int { return b.checksumsSent }

// scopeSet returns Bob's elements belonging to the given scope, computing
// and caching split-scope subsets on demand.
func (b *Bob) scopeSet(id scopeID) []uint64 {
	if id.path == "" {
		return b.groups[id.group]
	}
	if s, ok := b.scopeSets[id]; ok {
		return s
	}
	parent := makeScopeID(id.group, id.path[:len(id.path)-1])
	parentSet := b.scopeSet(parent)
	// Partition the parent into all children at once so sibling lookups hit
	// the cache.
	children := make([][]uint64, splitWays)
	for _, x := range parentSet {
		c := b.sd.childOf(x, parent)
		children[c] = append(children[c], x)
	}
	for i, set := range children {
		b.scopeSets[parent.child(i)] = set
	}
	return b.scopeSets[id]
}

// checksum returns c(B_s) for the scope, cached.
func (b *Bob) checksum(id scopeID, set []uint64) uint64 {
	if c, ok := b.checksums[id]; ok {
		return c
	}
	var c uint64
	for _, x := range set {
		c = (c + x) & b.sigMask
	}
	b.checksums[id] = c
	return c
}

// bobScopeJob is one scope's decoded request: everything the parallel
// phase needs, resolved off the sequential bit stream (and the lazily
// partitioned scope-set cache) up front.
type bobScopeJob struct {
	id    scopeID
	alice *bch.Sketch
	set   []uint64
	seed  uint64
}

// bobScopeReply is one scope's computed answer, held until the sequential
// serialization phase writes it in scope order.
type bobScopeReply struct {
	ok        bool     // BCH decoding succeeded
	positions []uint64 // differing bitmap positions
	xors      []uint64 // Bob's per-bin XOR sums at those positions
}

// bobScratch is per-worker state, long-lived across rounds: the bin-fold
// buffers (cleared per scope instead of reallocated, which matters at
// large g), the reusable parity sketch, the BCH decode workspace, and the
// worker's accumulated encode/decode time, folded into the Bob totals
// (and zeroed) after each parallel phase joins.
type bobScratch struct {
	sums   []uint64
	parity []bool
	sketch *bch.Sketch
	dec    *bch.Decoder
	encDur time.Duration
	decDur time.Duration
}

// HandleRound processes one round message from Alice and returns the reply.
// Scope requests are parsed sequentially, the per-scope bin folding, BCH
// sketching, and decoding fan out across the plan's worker pool, and the
// reply is serialized in scope order — so the reply bytes are identical
// for every Parallelism setting.
func (b *Bob) HandleRound(msg []byte) ([]byte, error) {
	r := wire.NewReader(msg)
	round, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("core: bad round header: %w", err)
	}
	m, t := b.plan.M, b.plan.T
	if b.adaptive && round >= 2 {
		mv, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("core: bad adaptive round header: %w", err)
		}
		tv, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("core: bad adaptive round header: %w", err)
		}
		// Bound what a peer can make this side allocate: the per-worker
		// bin-sum and parity buffers are (n+1)-sized and BCH decoding is
		// superlinear in t.
		if mv < 2 || mv > maxAdaptiveM {
			return nil, fmt.Errorf("core: adaptive bitmap degree m=%d out of range", mv)
		}
		an := (uint64(1) << mv) - 1
		if tv < 1 || tv > an/2 || tv > maxAdaptiveT {
			return nil, fmt.Errorf("core: adaptive capacity t=%d invalid for n=%d", tv, an)
		}
		m, t = uint(mv), int(tv)
		if m != b.plan.M || t != b.plan.T {
			b.replans++
		}
	}
	if m != b.curM || t != b.curT {
		// New round shape: the sketch scratch (sized per codeword) is stale.
		b.jobSketches = b.jobSketches[:0]
		for i := range b.scratch {
			b.scratch[i].sketch = nil
		}
		b.curM, b.curT = m, t
	}
	nScopes, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("core: bad round header: %w", err)
	}
	// Plausibility cap: splits can multiply scopes well beyond the group
	// count when capacity was badly underestimated, so allow generous
	// headroom while still rejecting absurd messages.
	if nScopes > uint64(b.plan.Groups)*64+(1<<16) {
		return nil, fmt.Errorf("core: implausible scope count %d", nScopes)
	}
	n := (uint64(1) << b.curM) - 1
	// Grow jobs as scopes parse successfully rather than pre-allocating by
	// the peer-claimed count: a tiny frame claiming the plausibility cap
	// must not force a multi-megabyte allocation before validation.
	jobs := b.jobs[:0]
	for s := uint64(0); s < nScopes; s++ {
		id, err := readScopeID(r)
		if err != nil {
			return nil, fmt.Errorf("core: bad scope descriptor: %w", err)
		}
		if id.group < 0 || id.group >= b.plan.Groups {
			return nil, fmt.Errorf("core: scope group %d out of range", id.group)
		}
		// Parse Alice's codeword into a long-lived per-index sketch instead
		// of allocating one per scope per round.
		if int(s) >= len(b.jobSketches) {
			b.jobSketches = append(b.jobSketches, bch.MustNew(b.curM, b.curT))
		}
		aliceSketch := b.jobSketches[s]
		if err := aliceSketch.ReadInto(r); err != nil {
			return nil, fmt.Errorf("core: bad sketch: %w", err)
		}
		// scopeSet mutates the split cache, so it must stay in this
		// sequential pass; the parallel phase then only reads the slices.
		jobs = append(jobs, bobScopeJob{
			id:    id,
			alice: aliceSketch,
			set:   b.scopeSet(id),
			seed:  b.sd.binSeed(id, int(round)),
		})
	}
	b.jobs = jobs

	workers := b.plan.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	for len(b.scratch) < workers {
		b.scratch = append(b.scratch, bobScratch{})
	}
	for len(b.posBufs) < len(jobs) {
		b.posBufs = append(b.posBufs, nil)
		b.xorBufs = append(b.xorBufs, nil)
	}
	if cap(b.replies) < len(jobs) {
		b.replies = make([]bobScopeReply, len(jobs))
	}
	replies := b.replies[:len(jobs)]
	forEachScope(workers, len(jobs), func(worker, i int) {
		replies[i] = bobScopeReply{}
		sc := &b.scratch[worker]
		if uint64(len(sc.sums)) != n+1 {
			sc.sums = make([]uint64, n+1)
			sc.parity = make([]bool, n+1)
		} else {
			clear(sc.sums)
			clear(sc.parity)
		}
		if sc.sketch == nil {
			sc.sketch = bch.MustNew(b.curM, b.curT)
			if sc.dec == nil {
				sc.dec = bch.NewDecoder()
			}
		}
		job := &jobs[i]
		encStart := time.Now()
		sketch := sc.sketch
		sketch.Reset()
		for _, x := range job.set {
			bin := hashutil.Bin(x, job.seed, n)
			sc.sums[bin] ^= x
			sc.parity[bin] = !sc.parity[bin]
		}
		for j := uint64(1); j <= n; j++ {
			if sc.parity[j] {
				sketch.Add(j)
			}
		}
		// The shapes match by construction (same plan), so Xor cannot fail.
		sketch.Xor(job.alice)
		sc.encDur += time.Since(encStart)
		decStart := time.Now()
		positions, derr := sketch.DecodeInto(sc.dec, b.posBufs[i][:0])
		b.posBufs[i] = positions
		sc.decDur += time.Since(decStart)
		if derr != nil {
			// BCH decoding failure (§3.2): report it; Alice will split.
			return
		}
		xors := b.xorBufs[i][:0]
		for _, p := range positions {
			xors = append(xors, sc.sums[p])
		}
		b.xorBufs[i] = xors
		replies[i] = bobScopeReply{ok: true, positions: positions, xors: xors}
	})
	for i := range b.scratch {
		b.encodeTime += b.scratch[i].encDur
		b.decodeTime += b.scratch[i].decDur
		b.scratch[i].encDur = 0
		b.scratch[i].decDur = 0
	}

	out := wire.NewWriter()
	for i := range jobs {
		rep := &replies[i]
		if !rep.ok {
			out.WriteBool(false)
			continue
		}
		out.WriteBool(true)
		out.WriteUvarint(uint64(len(rep.positions)))
		for _, p := range rep.positions {
			out.WriteBits(p, b.curM)
		}
		for _, x := range rep.xors {
			out.WriteBits(x, b.plan.SigBits)
		}
		out.WriteBits(b.checksum(jobs[i].id, jobs[i].set), b.plan.SigBits)
		b.payloadBits += len(rep.positions)*int(b.curM) +
			len(rep.positions)*int(b.plan.SigBits) + int(b.plan.SigBits)
		b.positionsSent += len(rep.positions)
		b.checksumsSent++
	}
	return out.Bytes(), nil
}
