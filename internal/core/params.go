// Package core implements the Parity Bitmap Sketch (PBS) set-reconciliation
// protocol — the primary contribution of the paper (§2 and §3).
//
// PBS-for-small-d (§2): both parties hash-partition their sets into n bins,
// encode the per-bin cardinality parities as an n-bit parity bitmap, and
// Alice sends a BCH codeword that lets Bob locate the bit positions where
// the two bitmaps differ. Each differing bin pair that contains exactly one
// distinct element is reconciled from the pair's XOR sums (Procedure 1).
// A plain-sum checksum verifies the result; exceptions trigger further
// rounds with fresh, independent hash functions.
//
// PBS-for-large-d (§3): the sets are first hash-partitioned into
// g = d/δ groups and PBS-for-small-d runs on every group pair
// independently, all with the same optimized (n, t). Group pairs whose BCH
// decoding fails are split three ways for the next round (§3.2).
//
// The package exposes the two protocol endpoints (Alice and Bob) exchanging
// opaque bit-packed messages, plus a Reconcile driver that runs the
// exchange in process and reports communication statistics.
package core

import (
	"fmt"

	"pbs/internal/markov"
)

// Defaults used throughout the paper.
const (
	DefaultDelta         = 5    // average distinct elements per group (§3)
	DefaultTargetRounds  = 3    // the paper's sweet spot r (§5.2)
	DefaultTargetSuccess = 0.99 // p0 in most experiments (§8.1)
	DefaultSigBits       = 32   // signature length log|U| (§8)
)

// maxAdaptiveM and maxAdaptiveT bound the per-round (m, t) an adaptive
// round header may demand, independently of Plan.validate's static range:
// a hostile peer must not be able to force huge (n+1)-sized bin buffers or
// superlinear BCH decoding by claiming absurd parameters mid-session.
// markov.Replan never exceeds m=12, t=258; these caps leave headroom.
const (
	maxAdaptiveM = 16
	maxAdaptiveT = 1 << 11
)

// DefaultMaxRounds is the round cap applied when Config.MaxRounds asks for
// an "unlimited" session (<= 0). PBS converges in a handful of rounds with
// overwhelming probability — the paper's round budget r is 3 — so reaching
// 64 indicates a bug or an adversarial peer rather than bad luck.
// NewPlan resolves the cap here once, so the in-process driver, the wire
// protocol, and the server all share the same bound instead of each
// hard-coding its own fallback.
const DefaultMaxRounds = 64

// Config describes the tunables a caller may set; zero values select the
// paper defaults.
type Config struct {
	// Delta is the target average number of distinct elements per group.
	Delta int
	// TargetRounds is r: the round budget the parameter optimizer plans
	// for. The protocol itself may be allowed to run longer (MaxRounds).
	TargetRounds int
	// TargetSuccess is p0, the success-probability target for completing
	// within TargetRounds.
	TargetSuccess float64
	// SigBits is the signature length log|U| (elements must fit).
	SigBits uint
	// Seed derives every hash function used in the protocol. Both parties
	// must use the same seed.
	Seed uint64
	// MaxRounds caps protocol rounds; <= 0 selects DefaultMaxRounds,
	// which in practice means "run until reconciled" — PBS converges in
	// a few rounds with overwhelming probability.
	MaxRounds int
	// Parallelism is the worker count for per-group encoding and decoding.
	// 0 selects GOMAXPROCS; 1 forces the sequential reference path. It is a
	// local execution knob: both endpoints may use different values and the
	// wire bytes are unaffected.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Delta == 0 {
		c.Delta = DefaultDelta
	}
	if c.TargetRounds == 0 {
		c.TargetRounds = DefaultTargetRounds
	}
	if c.TargetSuccess == 0 {
		c.TargetSuccess = DefaultTargetSuccess
	}
	if c.SigBits == 0 {
		c.SigBits = DefaultSigBits
	}
	return c
}

// Plan is the concrete parameterization both endpoints must agree on before
// the first round. It is derived from the (estimated) difference
// cardinality d via the Markov-chain optimizer of §5.1.
type Plan struct {
	M         uint   // parity bitmaps are n = 2^M − 1 bits long
	T         int    // BCH error-correction capacity per group pair
	Groups    int    // g, number of group pairs
	Delta     int    // δ used to derive Groups
	MaxRounds int    // round cap; NewPlan resolves <= 0 to DefaultMaxRounds
	SigBits   uint   // log|U|
	Seed      uint64 // master hash seed

	// Parallelism is the per-group worker count (0 = GOMAXPROCS, 1 =
	// sequential). Unlike every other field it is not part of the wire
	// contract: endpoints may disagree on it freely.
	Parallelism int
}

// N returns the parity bitmap length 2^M − 1.
func (p Plan) N() uint64 { return (uint64(1) << p.M) - 1 }

func (p Plan) validate() error {
	if p.M < 2 || p.M > 30 {
		return fmt.Errorf("core: bitmap degree m=%d out of range", p.M)
	}
	if p.T < 1 || uint64(p.T) > p.N()/2 {
		return fmt.Errorf("core: capacity t=%d invalid for n=%d", p.T, p.N())
	}
	if p.Groups < 1 {
		return fmt.Errorf("core: groups=%d must be >= 1", p.Groups)
	}
	if p.SigBits < 8 || p.SigBits > 64 {
		return fmt.Errorf("core: sigBits=%d out of range [8,64]", p.SigBits)
	}
	return nil
}

// NewPlan derives a Plan for reconciling an (estimated, already
// conservatively scaled) difference cardinality d under cfg, running the
// §5.1 optimizer for (n, t).
func NewPlan(d int, cfg Config) (Plan, error) {
	cfg = cfg.withDefaults()
	if d < 1 {
		d = 1
	}
	params, err := markov.Optimize(d, cfg.Delta, cfg.TargetRounds, cfg.TargetSuccess)
	if err != nil {
		return Plan{}, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	plan := Plan{
		M:           params.M,
		T:           params.T,
		Groups:      markov.NumGroups(d, cfg.Delta),
		Delta:       cfg.Delta,
		MaxRounds:   maxRounds,
		SigBits:     cfg.SigBits,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
	}
	// Reject invalid configurations (e.g. out-of-range SigBits) at plan
	// derivation time rather than at endpoint construction.
	if err := plan.validate(); err != nil {
		return Plan{}, err
	}
	return plan, nil
}
