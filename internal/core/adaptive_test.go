package core

import (
	"testing"

	"pbs/internal/wire"
	"pbs/internal/workload"
)

// driveAdaptive runs a session with adaptive re-planning on both ends.
func driveAdaptive(t *testing.T, a, b []uint64, plan Plan) *Result {
	t.Helper()
	alice, err := NewAlice(a, plan)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewBob(b, plan)
	if err != nil {
		t.Fatal(err)
	}
	alice.EnableAdaptive()
	bob.EnableAdaptive()
	res, err := Drive(alice, bob, plan.MaxRounds)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAdaptiveRoundsReconcileExactly(t *testing.T) {
	// Underestimate d four-fold so round 1 overflows capacity and the
	// session runs through splits and multiple adaptively re-planned
	// rounds.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: 400, Seed: 7})
	plan := planFor(t, 100, 3)
	res := driveAdaptive(t, p.A, p.B, plan)
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Stats.Rounds)
	}
	if res.Stats.Rounds < 2 {
		t.Fatalf("scenario did not exercise adaptive rounds (rounds=%d)", res.Stats.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
}

// Adaptive re-planning must never fall behind the static plan: no extra
// rounds, and wire bytes within the per-round adaptive-header overhead
// plus noise (the big adaptive savings — right-sizing round 1 from a
// learned prior — are measured at the pbs layer and in bench_adaptive.sh;
// this pins the re-planned rounds themselves).
func TestAdaptiveNoWorseThanStaticReplay(t *testing.T) {
	for _, tc := range []struct {
		d, planD int
	}{
		{100, 100},   // right-sized small plan (m=6): re-planning can only tie
		{1000, 1000}, // right-sized large plan: survivors re-plan cheaper
		{1000, 250},  // underestimated: splits fall back to the static plan
	} {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 50000, D: tc.d, Seed: int64(tc.d)})
		plan := planFor(t, tc.planD, uint64(tc.d)*3+1)

		static, err := Reconcile(p.A, p.B, plan)
		if err != nil {
			t.Fatal(err)
		}
		adaptive := driveAdaptive(t, p.A, p.B, plan)

		if !static.Complete || !adaptive.Complete {
			t.Fatalf("d=%d planD=%d: incomplete session (static=%v adaptive=%v)",
				tc.d, tc.planD, static.Complete, adaptive.Complete)
		}
		assertSameSet(t, adaptive.Difference, p.Diff)
		if adaptive.Stats.Rounds > static.Stats.Rounds {
			t.Errorf("d=%d planD=%d: adaptive took %d rounds, static %d",
				tc.d, tc.planD, adaptive.Stats.Rounds, static.Stats.Rounds)
		}
		aw, sw := adaptive.Stats.TotalWireBytes(), static.Stats.TotalWireBytes()
		if slack := sw/100 + 16; aw > sw+slack {
			t.Errorf("d=%d planD=%d: adaptive wire bytes %d > static %d + %d slack",
				tc.d, tc.planD, aw, sw, slack)
		}
	}
}

// Round 1 must be bit-identical with and without adaptive mode: it is
// built before the peer's capabilities are known (fast-sync speculation),
// so the adaptive header only ever applies from round 2.
func TestAdaptiveRoundOneUnchanged(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 5000, D: 50, Seed: 11})
	plan := planFor(t, 50, 21)

	plain, err := NewAlice(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := NewAlice(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	adaptive.EnableAdaptive()

	m1, err := plain.BuildRound()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := adaptive.BuildRound()
	if err != nil {
		t.Fatal(err)
	}
	if string(m1) != string(m2) {
		t.Fatal("adaptive mode changed round-1 bytes")
	}
}

// A hostile peer must not be able to demand absurd per-round parameters.
func TestAdaptiveRejectsHostileHeaders(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 1000, D: 10, Seed: 3})
	plan := planFor(t, 10, 5)

	cases := []struct {
		name string
		m, t uint64
	}{
		{"huge bitmap", 25, 100},
		{"tiny bitmap", 1, 1},
		{"capacity above n/2", 8, 200},
		{"zero capacity", 8, 0},
		{"capacity above cap", 16, 1 << 14},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bob, err := NewBob(p.B, plan)
			if err != nil {
				t.Fatal(err)
			}
			bob.EnableAdaptive()
			w := wire.NewWriter()
			w.WriteUvarint(2) // round 2: adaptive header expected
			w.WriteUvarint(tc.m)
			w.WriteUvarint(tc.t)
			w.WriteUvarint(0) // no scopes; the header must already reject
			if _, err := bob.HandleRound(w.Bytes()); err == nil {
				t.Fatalf("Bob accepted %s", tc.name)
			}
		})
	}
}

func TestAdaptiveReplanCounters(t *testing.T) {
	// Right-sized plan at d=1000: round 2 is survivor-only and re-plans
	// away from the static parameters on both ends.
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 50000, D: 1000, Seed: 1000})
	plan := planFor(t, 1000, 3001)
	alice, err := NewAlice(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewBob(p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	alice.EnableAdaptive()
	bob.EnableAdaptive()
	res, err := Drive(alice, bob, plan.MaxRounds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete after %d rounds", res.Stats.Rounds)
	}
	if res.Stats.Rounds < 2 {
		t.Fatalf("scenario finished in %d round(s); no replans to count", res.Stats.Rounds)
	}
	if alice.Replans() == 0 {
		t.Error("alice counted no replans across a multi-round adaptive session")
	}
	if alice.Replans() != bob.Replans() {
		t.Errorf("replan counters disagree: alice %d, bob %d", alice.Replans(), bob.Replans())
	}
}
