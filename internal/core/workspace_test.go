package core

import (
	"bytes"
	"testing"

	"pbs/internal/hashutil"
	"pbs/internal/workload"
)

// TestScopeHashMatchesReference pins the cached scope hash to the
// original path-walk definition, for every construction route.
func TestScopeHashMatchesReference(t *testing.T) {
	walk := func(group int, path string) uint64 {
		h := hashutil.XXH64Uint64(uint64(group), 0x5C09E)
		for i := 0; i < len(path); i++ {
			h = hashutil.XXH64Uint64(h, uint64(path[i])+0x711D)
		}
		return h
	}
	for _, tc := range []struct {
		group int
		path  string
	}{
		{0, ""}, {7, ""}, {3, "0"}, {3, "2"}, {12, "012"}, {199, "221100"},
	} {
		if got := makeScopeID(tc.group, tc.path).hash(); got != walk(tc.group, tc.path) {
			t.Errorf("makeScopeID(%d,%q).hash() = %#x, want %#x", tc.group, tc.path, got, walk(tc.group, tc.path))
		}
	}
	// The incremental child() route must agree with the rebuild route.
	id := newScopeID(5)
	for _, c := range []int{2, 0, 1, 2, 2} {
		id = id.child(c)
		if rebuilt := makeScopeID(id.group, id.path); rebuilt != id {
			t.Fatalf("child chain diverged from makeScopeID at path %q: %+v vs %+v", id.path, id, rebuilt)
		}
	}
}

// TestBobWorkspaceReuseDeterministic feeds Bob the same round message
// repeatedly: the reply bytes must not depend on what his reused
// per-worker workspaces (sketches, decoders, bin folds) processed before.
func TestBobWorkspaceReuseDeterministic(t *testing.T) {
	const d = 120
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 6000, D: d, Seed: 909})
	for _, workers := range []int{1, 4} {
		plan := planFor(t, d, 31)
		plan.Parallelism = workers
		alice, err := NewAlice(p.A, plan)
		if err != nil {
			t.Fatal(err)
		}
		bob, err := NewBob(p.B, plan)
		if err != nil {
			t.Fatal(err)
		}
		msg, err := alice.BuildRound()
		if err != nil {
			t.Fatal(err)
		}
		first, err := bob.HandleRound(msg)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			again, err := bob.HandleRound(msg)
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
			}
			if !bytes.Equal(first, again) {
				t.Fatalf("workers=%d rep=%d: reply bytes changed across workspace reuse", workers, rep)
			}
		}
	}
}

// TestWorkspaceReuseLongSession drives a deliberately under-provisioned
// parallel session (many rounds, many splits) so every layer of reused
// scratch — Alice's sketch/bin-sum pools, Bob's per-worker decoders and
// parse sketches — is exercised across shrinking and splitting scope
// sets, then verifies the learned difference exactly. Run with -race this
// doubles as the workspace race test under Parallelism > 1.
func TestWorkspaceReuseLongSession(t *testing.T) {
	const d = 400
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 9000, D: d, Seed: 404})
	plan := planFor(t, d/20, 77) // severe underestimate forces splits
	plan.Parallelism = 6
	res, err := Reconcile(p.A, p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("session did not complete")
	}
	if res.Stats.Rounds < 3 {
		t.Fatalf("expected a multi-round session, got %d rounds", res.Stats.Rounds)
	}
	assertSameSet(t, res.Difference, p.Diff)
}
