package core

import "pbs/internal/wire"

func newTestWriter() *wire.Writer         { return wire.NewWriter() }
func newTestReader(b []byte) *wire.Reader { return wire.NewReader(b) }
