package core

import (
	"fmt"
	"sync"
)

// Snapshot is an immutable, pre-validated view of one party's set, built
// once and shared by any number of concurrent endpoints. A server holding
// a large set and answering thousands of reconciliation sessions pays the
// O(|S|) validation (zero/range/duplicate checks) a single time, and the
// per-plan group partition is computed once per distinct group count and
// then shared read-only — instead of every session re-validating and
// re-partitioning a private copy as NewBob does.
//
// All methods are safe for concurrent use. The element slices handed out
// are shared: callers (including Bob endpoints built from the snapshot)
// must treat them as read-only, which they do — the protocol only ever
// reads group subsets and re-partitions them into freshly allocated child
// slices.
type Snapshot struct {
	elems   []uint64
	sigBits uint
	seed    uint64
	sd      seeds

	mu    sync.Mutex
	parts map[int][][]uint64 // group count -> partition, lazily cached

	// membership index, built lazily on first Contains — only the strong
	// verification path needs it, so sessions that never verify never pay
	// the O(|S|) map.
	inOnce sync.Once
	in     map[uint64]struct{}
}

// NewSnapshot validates set once under cfg (only SigBits and Seed are
// consulted; zero values select the defaults, as in NewPlan) and returns a
// shareable snapshot. Elements must be nonzero, distinct, and fit in
// SigBits bits — the same contract NewAlice and NewBob enforce.
func NewSnapshot(set []uint64, cfg Config) (*Snapshot, error) {
	cfg = cfg.withDefaults()
	if cfg.SigBits < 8 || cfg.SigBits > 64 {
		return nil, fmt.Errorf("core: sigBits=%d out of range [8,64]", cfg.SigBits)
	}
	mask := sigMask(cfg.SigBits)
	seen := make(map[uint64]struct{}, len(set))
	elems := make([]uint64, 0, len(set))
	for _, x := range set {
		if x == 0 || x&^mask != 0 {
			return nil, fmt.Errorf("core: element %#x outside %d-bit universe (0 excluded)", x, cfg.SigBits)
		}
		if _, dup := seen[x]; dup {
			return nil, fmt.Errorf("core: duplicate element %#x", x)
		}
		seen[x] = struct{}{}
		elems = append(elems, x)
	}
	// The validation map ("seen") is deliberately discarded rather than
	// kept for Contains: most snapshots (every responder session) never
	// verify membership, and pinning an O(|S|) map to each would be a
	// serious memory regression; the rare strong-verify path rebuilds it
	// lazily.
	return &Snapshot{
		elems:   elems,
		sigBits: cfg.SigBits,
		seed:    cfg.Seed,
		sd:      deriveSeeds(cfg.Seed),
		parts:   make(map[int][][]uint64),
	}, nil
}

// NewValidatedSnapshot wraps an element slice the caller has already
// validated (nonzero, distinct, within SigBits bits — e.g. elements drawn
// from a set handle that enforced the contract at insertion time) without
// re-running the O(|S|) validation pass. The slice is retained, not copied:
// the caller must not modify it afterwards.
func NewValidatedSnapshot(elems []uint64, cfg Config) (*Snapshot, error) {
	cfg = cfg.withDefaults()
	if cfg.SigBits < 8 || cfg.SigBits > 64 {
		return nil, fmt.Errorf("core: sigBits=%d out of range [8,64]", cfg.SigBits)
	}
	return &Snapshot{
		elems:   elems,
		sigBits: cfg.SigBits,
		seed:    cfg.Seed,
		sd:      deriveSeeds(cfg.Seed),
		parts:   make(map[int][][]uint64),
	}, nil
}

// Len returns the number of elements in the snapshot.
func (s *Snapshot) Len() int { return len(s.elems) }

// Contains reports whether x is in the snapshot. The membership index is
// built on first use and shared by every subsequent call.
func (s *Snapshot) Contains(x uint64) bool {
	s.inOnce.Do(func() {
		in := make(map[uint64]struct{}, len(s.elems))
		for _, e := range s.elems {
			in[e] = struct{}{}
		}
		s.in = in
	})
	_, ok := s.in[x]
	return ok
}

// SigBits returns the signature width the snapshot was validated against.
func (s *Snapshot) SigBits() uint { return s.sigBits }

// Seed returns the master hash seed the snapshot partitions under.
func (s *Snapshot) Seed() uint64 { return s.seed }

// Elements returns the validated element slice. It is shared, not copied:
// the caller must not modify it.
func (s *Snapshot) Elements() []uint64 { return s.elems }

// maxCachedPartitions bounds Snapshot.parts. The group count is derived
// from the peer-influenced d̂, so an unbounded cache would let a hostile
// client grow server memory by forging a different estimate per session;
// honest traffic clusters around a handful of group counts, which all fit.
// At the cap an arbitrary entry is evicted, so forged estimates can at
// worst force recomputation — per-session O(|S|), exactly like NewBob —
// never unbounded growth or a poisoned cache.
const maxCachedPartitions = 8

// cacheableGroups bounds the size of an individual cached partition: a
// partition costs O(groups) slice headers regardless of |S|, so caching a
// forged-estimate partition with groups ≫ |S| would pin megabytes of
// mostly-empty headers per cache slot. Such partitions are still computed
// and returned — the allocation is transient and GC-reclaimed with the
// session — just never retained.
func (s *Snapshot) cacheableGroups(groups int) bool {
	return groups <= 4*len(s.elems)+64
}

// partition returns the elements hash-partitioned into groups buckets,
// caching up to maxCachedPartitions distinct group counts. The partition
// is computed outside the lock so concurrent sessions are never serialized
// behind an O(|S|) pass (two sessions may race to compute the same
// partition; either result is valid and one wins the cache slot). The
// returned slices are shared across callers and must be treated as
// read-only.
func (s *Snapshot) partition(groups int) [][]uint64 {
	s.mu.Lock()
	if p, ok := s.parts[groups]; ok {
		s.mu.Unlock()
		return p
	}
	s.mu.Unlock()

	p := make([][]uint64, groups)
	for _, x := range s.elems {
		g := s.sd.groupOf(x, groups)
		p[g] = append(p[g], x)
	}

	if !s.cacheableGroups(groups) {
		return p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.parts[groups]; ok {
		return cached
	}
	if len(s.parts) >= maxCachedPartitions {
		for k := range s.parts {
			delete(s.parts, k)
			break
		}
	}
	s.parts[groups] = p
	return p
}

// NewBobFromSnapshot creates a Bob endpoint that reconciles against the
// shared snapshot without copying or re-validating it. The plan's Seed and
// SigBits must match the snapshot's — the partition is derived from them —
// while the rest of the plan (bitmap size, capacity, groups) may vary per
// session, as it does when each session's plan is derived from its own d̂.
func NewBobFromSnapshot(snap *Snapshot, plan Plan) (*Bob, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	if plan.Seed != snap.seed {
		return nil, fmt.Errorf("core: plan seed %#x does not match snapshot seed %#x", plan.Seed, snap.seed)
	}
	if plan.SigBits != snap.sigBits {
		return nil, fmt.Errorf("core: plan sigBits %d does not match snapshot sigBits %d", plan.SigBits, snap.sigBits)
	}
	return newBobWithGroups(snap.partition(plan.Groups), plan), nil
}
