package core

import (
	"bytes"
	"runtime"
	"testing"

	"pbs/internal/workload"
)

// traceSession runs a full reconciliation under plan and records every
// message in both directions.
func traceSession(t *testing.T, a, b []uint64, plan Plan) (msgs, replies [][]byte, diff []uint64) {
	t.Helper()
	alice, err := NewAlice(a, plan)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewBob(b, plan)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < DefaultMaxRounds && !alice.Done(); round++ {
		msg, err := alice.BuildRound()
		if err != nil {
			t.Fatal(err)
		}
		if msg == nil {
			break
		}
		reply, err := bob.HandleRound(msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.AbsorbReply(reply); err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, msg)
		replies = append(replies, reply)
	}
	if !alice.Done() {
		t.Fatal("session did not complete")
	}
	return msgs, replies, alice.Difference()
}

// TestParallelWireDeterminism pins the engine's core guarantee: for the
// same sets and seed, every wire message is byte-identical whether the
// per-scope work runs sequentially or across a worker pool.
func TestParallelWireDeterminism(t *testing.T) {
	for _, d := range []int{5, 60, 400} {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 8000, D: d, Seed: int64(d)*3 + 1})
		seqPlan := planFor(t, d, uint64(d)+11)
		seqPlan.Parallelism = 1
		seqMsgs, seqReplies, seqDiff := traceSession(t, p.A, p.B, seqPlan)

		for _, workers := range []int{0, 2, 8} {
			parPlan := seqPlan
			parPlan.Parallelism = workers
			parMsgs, parReplies, parDiff := traceSession(t, p.A, p.B, parPlan)
			if len(parMsgs) != len(seqMsgs) {
				t.Fatalf("d=%d workers=%d: %d rounds vs %d sequential", d, workers, len(parMsgs), len(seqMsgs))
			}
			for r := range seqMsgs {
				if !bytes.Equal(seqMsgs[r], parMsgs[r]) {
					t.Errorf("d=%d workers=%d round %d: Alice message differs from sequential", d, workers, r+1)
				}
				if !bytes.Equal(seqReplies[r], parReplies[r]) {
					t.Errorf("d=%d workers=%d round %d: Bob reply differs from sequential", d, workers, r+1)
				}
			}
			assertSameSet(t, parDiff, seqDiff)
			assertSameSet(t, parDiff, p.Diff)
		}
	}
}

// TestParallelUnderestimatedCapacity drives the split machinery (BCH
// decoding failures → 3-way splits) under parallel decoding: a plan sized
// for a fraction of the true difference must still converge identically.
func TestParallelUnderestimatedCapacity(t *testing.T) {
	const d = 300
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 10000, D: d, Seed: 71})
	plan := planFor(t, d/10, 23) // capacity planned for a tenth of the truth
	plan.Parallelism = 1
	_, _, seqDiff := traceSession(t, p.A, p.B, plan)
	plan.Parallelism = runtime.GOMAXPROCS(0) + 3
	_, _, parDiff := traceSession(t, p.A, p.B, plan)
	assertSameSet(t, seqDiff, p.Diff)
	assertSameSet(t, parDiff, p.Diff)
}

// TestParallelStatsMatchSequential checks that the communication
// accounting (the paper's reported quantity) is independent of the worker
// count.
func TestParallelStatsMatchSequential(t *testing.T) {
	const d = 200
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: d, Seed: 5})
	plan := planFor(t, d, 13)
	plan.Parallelism = 1
	seq, err := Reconcile(p.A, p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	plan.Parallelism = 4
	par, err := Reconcile(p.A, p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Complete || !par.Complete {
		t.Fatal("incomplete")
	}
	if seq.Stats.TotalWireBytes() != par.Stats.TotalWireBytes() ||
		seq.Stats.TotalPayloadBytes() != par.Stats.TotalPayloadBytes() ||
		seq.Stats.Rounds != par.Stats.Rounds {
		t.Errorf("stats diverge: seq=%+v par=%+v", seq.Stats, par.Stats)
	}
}

// TestForEachScope exercises the pool helper directly: full coverage of
// the index space, dense worker ids, and the inline path.
func TestForEachScope(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16} {
		for _, n := range []int{0, 1, 7, 100} {
			hits := make([]int32, n)
			forEachScope(workers, n, func(worker, i int) {
				if worker < 0 || worker >= workers {
					t.Errorf("worker id %d out of range [0,%d)", worker, workers)
				}
				hits[i]++
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}
