package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// PBS is "piecewise reconciliable": the n group pairs carry independent BCH
// sketches and decode with no cross-group dependency (§3 of the paper).
// This file exploits that property: per-scope encoding and decoding fan out
// over a bounded worker pool, while all wire serialization stays sequential
// in scope order so parallel and sequential runs produce byte-identical
// messages.

// forEachScope runs fn(worker, i) for every i in [0, n), fanning the
// indices out across at most workers goroutines. The worker argument is a
// dense goroutine index in [0, workers), letting callers keep per-worker
// scratch buffers without synchronization. workers <= 1 (or n <= 1) runs
// everything inline on the calling goroutine — the reference sequential
// path that parallel runs must match byte for byte.
//
// fn must not touch shared state: each scope index must own its inputs and
// outputs (typically slots of a pre-sized slice).
func forEachScope(workers, n int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// scopeErrors collects at most one error per scope index so the lowest
// indexed failure can be reported deterministically regardless of goroutine
// scheduling.
type scopeErrors struct {
	errs []error
}

func newScopeErrors(n int) *scopeErrors { return &scopeErrors{errs: make([]error, n)} }

// set records err for scope i. Each index is owned by exactly one worker,
// so no locking is needed.
func (e *scopeErrors) set(i int, err error) { e.errs[i] = err }

// first returns the error of the lowest failed scope, or nil.
func (e *scopeErrors) first() error {
	for _, err := range e.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// workers resolves the plan's Parallelism knob: values > 0 are taken
// literally (1 = the sequential reference path), 0 or negative selects
// GOMAXPROCS.
func (p Plan) workers() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}
