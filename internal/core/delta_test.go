package core

import (
	"bytes"
	"testing"

	"pbs/internal/workload"
)

// TestAliceFromSnapshotEquivalence drives the same exchange with a slice-built
// Alice and a snapshot-built Alice and requires byte-identical messages and
// identical results — the initiator-side counterpart of the Bob snapshot
// equivalence contract.
func TestAliceFromSnapshotEquivalence(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 5000, D: 120, Seed: 71})
	plan := planFor(t, 120, 72)

	ref, err := NewAlice(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(p.A, Config{Seed: plan.Seed, SigBits: plan.SigBits})
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewAliceFromSnapshot(snap, plan)
	if err != nil {
		t.Fatal(err)
	}
	bobRef, err := NewBob(p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	bobGot, err := NewBob(p.B, plan)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; !ref.Done() && round < DefaultMaxRounds; round++ {
		m1, err := ref.BuildRound()
		if err != nil {
			t.Fatal(err)
		}
		m2, err := got.BuildRound()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("round %d: snapshot Alice message diverges (%d vs %d bytes)", round+1, len(m1), len(m2))
		}
		if m1 == nil {
			break
		}
		r1, err := bobRef.HandleRound(m1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := bobGot.HandleRound(m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r1, r2) {
			t.Fatalf("round %d: replies diverge", round+1)
		}
		if err := ref.AbsorbReply(r1); err != nil {
			t.Fatal(err)
		}
		if err := got.AbsorbReply(r2); err != nil {
			t.Fatal(err)
		}
	}
	if !ref.Done() || !got.Done() {
		t.Fatalf("done mismatch: ref=%v got=%v", ref.Done(), got.Done())
	}
	assertSameSet(t, got.Difference(), ref.Difference())
	assertSameSet(t, got.Difference(), p.Diff)
}

// TestAliceFromSnapshotValidation checks the plan/snapshot agreement guards.
func TestAliceFromSnapshotValidation(t *testing.T) {
	snap, err := NewSnapshot([]uint64{1, 2, 3}, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	plan := planFor(t, 3, 9)
	plan.Seed = 10
	if _, err := NewAliceFromSnapshot(snap, plan); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	plan = planFor(t, 3, 9)
	plan.SigBits = 16
	if _, err := NewAliceFromSnapshot(snap, plan); err == nil {
		t.Fatal("sigBits mismatch accepted")
	}
}

func TestSnapshotContains(t *testing.T) {
	elems := []uint64{5, 9, 1 << 20}
	for _, mk := range []func() (*Snapshot, error){
		func() (*Snapshot, error) { return NewSnapshot(elems, Config{}) },
		func() (*Snapshot, error) {
			return NewValidatedSnapshot(append([]uint64(nil), elems...), Config{})
		},
	} {
		snap, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range elems {
			if !snap.Contains(x) {
				t.Fatalf("Contains(%d) = false", x)
			}
		}
		if snap.Contains(6) || snap.Contains(0) {
			t.Fatal("Contains accepted absent elements")
		}
	}
}

// TestOnVerifiedDeltaStreams forces a multi-round session (KnownD badly
// underestimated, so overloaded groups split) and checks the streaming
// contract: batches arrive with ascending round numbers, a nonempty batch
// lands before the final round, batches are sorted and disjoint, and their
// union is exactly the final difference.
func TestOnVerifiedDeltaStreams(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 8000, D: 200, Seed: 33})
	plan := planFor(t, 20, 34) // 10x underestimate → splits → several rounds

	alice, err := NewAlice(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	var (
		batches [][]uint64
		rounds  []int
		all     []uint64
	)
	alice.OnVerifiedDelta(func(elems []uint64, round int) {
		if len(elems) == 0 {
			t.Error("empty delta batch delivered")
		}
		for i := 1; i < len(elems); i++ {
			if elems[i-1] >= elems[i] {
				t.Errorf("round %d: batch not sorted/deduped at %d", round, i)
			}
		}
		batches = append(batches, append([]uint64(nil), elems...))
		rounds = append(rounds, round)
		all = append(all, elems...)
	})
	bob, err := NewBob(p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drive(alice, bob, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("session did not complete")
	}
	if res.Stats.Rounds < 2 {
		t.Fatalf("fixture converged in %d round(s); splits not exercised", res.Stats.Rounds)
	}
	if len(batches) == 0 {
		t.Fatal("no delta batches delivered")
	}
	if rounds[0] >= res.Stats.Rounds {
		t.Fatalf("first batch arrived in round %d of %d — nothing was streamed early", rounds[0], res.Stats.Rounds)
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] <= rounds[i-1] {
			t.Fatalf("rounds not ascending: %v", rounds)
		}
	}
	seen := make(map[uint64]struct{}, len(all))
	for _, x := range all {
		if _, dup := seen[x]; dup {
			t.Fatalf("element %#x delivered twice", x)
		}
		seen[x] = struct{}{}
	}
	assertSameSet(t, all, res.Difference)
	assertSameSet(t, all, p.Diff)
}

// TestOnVerifiedDeltaSingleRound: in the common case everything verifies in
// round 1 and the whole difference arrives in one batch.
func TestOnVerifiedDeltaSingleRound(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 40, Seed: 35})
	plan := planFor(t, 40, 36)
	alice, err := NewAlice(p.A, plan)
	if err != nil {
		t.Fatal(err)
	}
	var all []uint64
	calls := 0
	alice.OnVerifiedDelta(func(elems []uint64, round int) {
		calls++
		all = append(all, elems...)
	})
	bob, err := NewBob(p.B, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drive(alice, bob, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	assertSameSet(t, all, p.Diff)
	if calls > res.Stats.Rounds {
		t.Fatalf("%d delta calls for %d rounds", calls, res.Stats.Rounds)
	}
}
