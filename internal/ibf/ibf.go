// Package ibf implements Invertible Bloom Filters, the substrate of the
// Difference Digest and Graphene baselines (§7 of the PBS paper) and of the
// Strata set-difference estimator.
//
// Each cell has three fields — a signed count, an XOR of inserted element
// IDs, and an XOR of element hash checks — each conceptually one word of
// log|U| bits, so a filter of c cells costs 3·c·log|U| bits on the wire
// (the paper's "6d·log|U| with 2d cells" accounting for D.Digest).
//
// Subtracting two filters built over sets A and B yields a filter of the
// symmetric difference A△B, which is recovered by iteratively "peeling"
// pure cells.
package ibf

import (
	"fmt"

	"pbs/internal/hashutil"
)

// Cell is a single IBF cell.
type Cell struct {
	Count   int32
	IDSum   uint64
	HashSum uint64
}

func (c *Cell) empty() bool { return c.Count == 0 && c.IDSum == 0 && c.HashSum == 0 }

// Filter is an invertible Bloom filter with k index hash functions.
type Filter struct {
	k     int
	seed  uint64
	cells []Cell
}

// checkSeed offsets the element-check hash away from the index hashes.
const checkSeed = 0xC0FFEE

// New returns an empty filter with the given number of cells, k index
// hashes, and hash seed. Both parties of a protocol must use identical
// parameters and seed.
func New(cells, k int, seed uint64) (*Filter, error) {
	if cells < 1 {
		return nil, fmt.Errorf("ibf: cells=%d must be >= 1", cells)
	}
	if k < 2 || k > 8 {
		return nil, fmt.Errorf("ibf: k=%d out of sensible range [2,8]", k)
	}
	return &Filter{k: k, seed: seed, cells: make([]Cell, cells)}, nil
}

// MustNew is like New but panics on invalid parameters.
func MustNew(cells, k int, seed uint64) *Filter {
	f, err := New(cells, k, seed)
	if err != nil {
		panic(err)
	}
	return f
}

// Cells returns the number of cells.
func (f *Filter) Cells() int { return len(f.cells) }

// K returns the number of index hash functions.
func (f *Filter) K() int { return f.k }

// Bits returns the wire size in bits, counting each of the three cell
// fields as sigBits wide (the paper counts each as one log|U|-bit word).
func (f *Filter) Bits(sigBits int) int { return len(f.cells) * 3 * sigBits }

// indexes computes the k distinct-ish cell indexes of x.
func (f *Filter) indexes(x uint64, out []int) []int {
	out = out[:0]
	n := uint64(len(f.cells))
	for i := 0; i < f.k; i++ {
		out = append(out, int(hashutil.XXH64Uint64(x, f.seed+uint64(i)+1)%n))
	}
	return out
}

func (f *Filter) check(x uint64) uint64 {
	return hashutil.XXH64Uint64(x, f.seed^checkSeed)
}

// Insert adds x to the filter.
func (f *Filter) Insert(x uint64) { f.update(x, 1) }

// Remove deletes x from the filter (x need not have been inserted; IBFs
// tolerate negative membership, which is what makes subtraction work).
func (f *Filter) Remove(x uint64) { f.update(x, -1) }

func (f *Filter) update(x uint64, delta int32) {
	var idx [8]int
	h := f.check(x)
	for _, i := range f.indexes(x, idx[:0]) {
		f.cells[i].Count += delta
		f.cells[i].IDSum ^= x
		f.cells[i].HashSum ^= h
	}
}

// InsertSet adds every element of set.
func (f *Filter) InsertSet(set []uint64) {
	for _, x := range set {
		f.Insert(x)
	}
}

// Subtract computes f − other cell-wise, in place. The result encodes the
// symmetric difference of the two underlying sets, with elements unique to
// f's set carrying positive counts and elements unique to other's carrying
// negative counts.
func (f *Filter) Subtract(other *Filter) error {
	if len(f.cells) != len(other.cells) || f.k != other.k || f.seed != other.seed {
		return fmt.Errorf("ibf: filter shape mismatch")
	}
	for i := range f.cells {
		f.cells[i].Count -= other.cells[i].Count
		f.cells[i].IDSum ^= other.cells[i].IDSum
		f.cells[i].HashSum ^= other.cells[i].HashSum
	}
	return nil
}

// Clone returns an independent copy of f.
func (f *Filter) Clone() *Filter {
	c := &Filter{k: f.k, seed: f.seed, cells: make([]Cell, len(f.cells))}
	copy(c.cells, f.cells)
	return c
}

// Decode peels the filter (assumed to be a difference of two filters) and
// returns the elements unique to the first operand (positive) and to the
// second (negative). ok is false if peeling stalls before the filter
// empties, i.e. the decode failed.
//
// Decode consumes f: on return f's cells are in a partially peeled state.
func (f *Filter) Decode() (positive, negative []uint64, ok bool) {
	queue := make([]int, 0, len(f.cells))
	for i := range f.cells {
		if f.pure(i) {
			queue = append(queue, i)
		}
	}
	var idx [8]int
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !f.pure(i) {
			continue // may have been disturbed since enqueued
		}
		c := f.cells[i]
		x := c.IDSum
		if c.Count == 1 {
			positive = append(positive, x)
		} else {
			negative = append(negative, x)
		}
		delta := -c.Count
		h := f.check(x)
		for _, j := range f.indexes(x, idx[:0]) {
			f.cells[j].Count += delta
			f.cells[j].IDSum ^= x
			f.cells[j].HashSum ^= h
			if f.pure(j) {
				queue = append(queue, j)
			}
		}
	}
	for i := range f.cells {
		if !f.cells[i].empty() {
			return positive, negative, false
		}
	}
	return positive, negative, true
}

// pure reports whether cell i holds exactly one element.
func (f *Filter) pure(i int) bool {
	c := f.cells[i]
	return (c.Count == 1 || c.Count == -1) && c.HashSum == f.check(c.IDSum)
}
