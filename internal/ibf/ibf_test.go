package ibf

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedU64(xs []uint64) []uint64 {
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func assertSetEqual(t *testing.T, got, want []uint64) {
	t.Helper()
	g, w := sortedU64(got), sortedU64(want)
	if len(g) != len(w) {
		t.Fatalf("size %d want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, g, w)
		}
	}
}

func distinct(rng *rand.Rand, k int, excl map[uint64]bool) []uint64 {
	out := make([]uint64, 0, k)
	seen := map[uint64]bool{}
	for len(out) < k {
		x := rng.Uint64()
		if x == 0 || seen[x] || excl[x] {
			continue
		}
		seen[x] = true
		out = append(out, x)
	}
	return out
}

func TestSubtractDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	common := distinct(rng, 500, nil)
	cm := map[uint64]bool{}
	for _, c := range common {
		cm[c] = true
	}
	onlyA := distinct(rng, 12, cm)
	for _, x := range onlyA {
		cm[x] = true
	}
	onlyB := distinct(rng, 8, cm)

	fa := MustNew(60, 3, 99) // 3 cells per difference: comfortable
	fb := MustNew(60, 3, 99)
	fa.InsertSet(common)
	fa.InsertSet(onlyA)
	fb.InsertSet(common)
	fb.InsertSet(onlyB)
	if err := fa.Subtract(fb); err != nil {
		t.Fatal(err)
	}
	pos, neg, ok := fa.Decode()
	if !ok {
		t.Fatal("decode failed")
	}
	assertSetEqual(t, pos, onlyA)
	assertSetEqual(t, neg, onlyB)
}

func TestDecodeEmptyDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	set := distinct(rng, 100, nil)
	fa := MustNew(20, 4, 5)
	fb := MustNew(20, 4, 5)
	fa.InsertSet(set)
	fb.InsertSet(set)
	fa.Subtract(fb)
	pos, neg, ok := fa.Decode()
	if !ok || len(pos) != 0 || len(neg) != 0 {
		t.Fatalf("empty difference should decode cleanly: %v %v %v", pos, neg, ok)
	}
}

func TestUndersizedFilterFailsGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	onlyA := distinct(rng, 100, nil)
	fa := MustNew(30, 3, 7) // 30 cells for 100 differences: must fail
	fb := MustNew(30, 3, 7)
	fa.InsertSet(onlyA)
	fa.Subtract(fb)
	_, _, ok := fa.Decode()
	if ok {
		t.Fatal("decode should fail when cells << differences")
	}
}

func TestInsertRemoveCancels(t *testing.T) {
	f := MustNew(16, 3, 1)
	f.Insert(42)
	f.Remove(42)
	pos, neg, ok := f.Decode()
	if !ok || len(pos)+len(neg) != 0 {
		t.Fatal("insert+remove should leave an empty filter")
	}
}

func TestShapeMismatch(t *testing.T) {
	a := MustNew(16, 3, 1)
	for _, b := range []*Filter{MustNew(17, 3, 1), MustNew(16, 4, 1), MustNew(16, 3, 2)} {
		if err := a.Subtract(b); err == nil {
			t.Error("shape mismatch should error")
		}
	}
}

func TestBitsAccounting(t *testing.T) {
	f := MustNew(100, 3, 0)
	if f.Bits(32) != 100*3*32 {
		t.Fatalf("Bits(32) = %d", f.Bits(32))
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := New(0, 3, 0); err == nil {
		t.Error("cells=0 should fail")
	}
	if _, err := New(10, 1, 0); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := New(10, 9, 0); err == nil {
		t.Error("k=9 should fail")
	}
}

// Property: for random differences up to 10 with 2x cell headroom and k=4,
// decode almost always succeeds and returns exactly the difference. We
// tolerate rare peel failures (they are the documented IBF failure mode)
// but never a wrong answer.
func TestQuickDecodeNeverWrong(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		da := rng.Intn(10)
		db := rng.Intn(10)
		onlyA := distinct(rng, da, nil)
		excl := map[uint64]bool{}
		for _, x := range onlyA {
			excl[x] = true
		}
		onlyB := distinct(rng, db, excl)
		fa := MustNew(3*(da+db)+8, 4, uint64(seed))
		fb := MustNew(3*(da+db)+8, 4, uint64(seed))
		fa.InsertSet(onlyA)
		fb.InsertSet(onlyB)
		fa.Subtract(fb)
		pos, neg, ok := fa.Decode()
		if !ok {
			return true // failure is allowed, wrongness is not
		}
		pg, wg := sortedU64(pos), sortedU64(onlyA)
		ng, nw := sortedU64(neg), sortedU64(onlyB)
		if len(pg) != len(wg) || len(ng) != len(nw) {
			return false
		}
		for i := range pg {
			if pg[i] != wg[i] {
				return false
			}
		}
		for i := range ng {
			if ng[i] != nw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	f := MustNew(1024, 3, 0)
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i)*2654435761 + 1)
	}
}

func BenchmarkDecodeD100(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	only := distinct(rng, 100, nil)
	base := MustNew(300, 3, 0)
	base.InsertSet(only)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := base.Clone()
		if _, _, ok := f.Decode(); !ok {
			b.Fatal("decode failed")
		}
	}
}
