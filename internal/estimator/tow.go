// Package estimator implements set-difference-cardinality estimators: the
// Tug-of-War (ToW) estimator that PBS proposes and uses (§6), plus the
// Strata and min-wise estimators it is compared against in Appendix B.
//
// The wire protocol always exchanges ToW sketches (they are linear, so the
// Set handle maintains them incrementally under Add/Remove). Strata and
// MinWise additionally back the adaptive controller's in-process estimator
// selection: when a learned prior predicts a large difference, pbs
// cross-checks the ToW estimate against both and takes the median.
package estimator

import (
	"fmt"
	"math"

	"pbs/internal/hashutil"
)

// DefaultSketches is the ToW sketch count used throughout the paper (ℓ=128).
const DefaultSketches = 128

// DefaultGamma is the conservative scale factor applied to the ToW estimate:
// the paper finds γ = 1.38 is the smallest value with Pr[d ≤ γ·d̂] ≥ 99%
// at ℓ = 128 (§6.2).
const DefaultGamma = 1.38

// ToW is a Tug-of-War set-difference-cardinality estimator with ℓ sketches.
// Each sketch Y_f(S) = Σ_{s∈S} f(s) for a 4-wise independent ±1 hash f;
// (Y_f(A) − Y_f(B))² is an unbiased estimator of |A△B| (§6.1, App. A).
//
// The ℓ hash functions are held in a structure-of-arrays bank so the
// sketch update makes one pass over precomputed element powers instead of
// ℓ independent Horner chains per element.
type ToW struct {
	bank *hashutil.FourWiseBank
}

// NewToW returns a ToW estimator with l sketches derived from seed. Both
// parties must construct it with identical (l, seed).
func NewToW(l int, seed uint64) (*ToW, error) {
	if l < 1 {
		return nil, fmt.Errorf("estimator: sketch count l=%d must be >= 1", l)
	}
	return &ToW{bank: hashutil.NewFourWiseBank(hashutil.Seeds(seed, l))}, nil
}

// MustNewToW is like NewToW but panics on invalid parameters.
func MustNewToW(l int, seed uint64) *ToW {
	t, err := NewToW(l, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// L returns the sketch count.
func (t *ToW) L() int { return t.bank.Len() }

// Sketch computes the ℓ ToW sketches of set.
func (t *ToW) Sketch(set []uint64) []int64 {
	ys := make([]int64, t.L())
	t.SketchInto(ys, set)
	return ys
}

// SketchInto accumulates the ℓ ToW sketches of set into ys (length ℓ,
// caller-zeroed), allocating nothing. Each element's hash powers are
// computed once and shared by a single batched pass over all ℓ hash
// functions.
func (t *ToW) SketchInto(ys []int64, set []uint64) {
	for _, x := range set {
		t.bank.AddSigns(x, ys)
	}
}

// Add updates the sketch vector ys (length ℓ) with one new element:
// ys ← ys + f(x). The ToW sketch is a linear function of the set's
// indicator vector, so a long-lived set handle can maintain its sketch
// under mutation in O(ℓ) per element instead of re-sketching O(|S|·ℓ).
func (t *ToW) Add(ys []int64, x uint64) { t.bank.AddSigns(x, ys) }

// Remove cancels one element's contribution from the sketch vector ys:
// ys ← ys − f(x). It is the exact inverse of Add.
func (t *ToW) Remove(ys []int64, x uint64) { t.bank.SubSigns(x, ys) }

// Estimate combines the two parties' sketch vectors into the unbiased
// estimate d̂ = (1/ℓ)·Σ (Y_i(A) − Y_i(B))².
func (t *ToW) Estimate(ya, yb []int64) (float64, error) {
	if len(ya) != t.L() || len(yb) != t.L() {
		return 0, fmt.Errorf("estimator: sketch length mismatch (%d, %d; want %d)",
			len(ya), len(yb), t.L())
	}
	var sum float64
	for i := range ya {
		d := float64(ya[i] - yb[i])
		sum += d * d
	}
	return sum / float64(len(ya)), nil
}

// Bits returns the communication cost of one party's sketch vector in bits:
// ℓ·⌈log2(2·setSize+1)⌉, each sketch being an integer in [−|S|, |S|]
// (§6.1). With ℓ = 128 and |S| = 10^6 this is the paper's 336 bytes.
func (t *ToW) Bits(setSize int) int {
	perSketch := int(math.Ceil(math.Log2(float64(2*setSize + 1))))
	return t.L() * perSketch
}

// ConservativeD scales the raw estimate by gamma and rounds up, yielding the
// d value both parties plug into parameter selection. A floor of 1 keeps
// degenerate estimates usable.
func ConservativeD(dhat, gamma float64) int {
	d := int(math.Ceil(dhat * gamma))
	if d < 1 {
		d = 1
	}
	return d
}

// EstimateD is a one-shot convenience: sketch both sets locally and return
// the conservative d. Real deployments exchange the sketches instead; the
// experiment harness uses this because it simulates both parties in one
// process. bits reports the one-way communication cost that a real exchange
// would incur (and that the harness accounts separately, like the paper).
func (t *ToW) EstimateD(a, b []uint64, gamma float64) (d int, bits int, err error) {
	ya := t.Sketch(a)
	yb := t.Sketch(b)
	dhat, err := t.Estimate(ya, yb)
	if err != nil {
		return 0, 0, err
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	return ConservativeD(dhat, gamma), t.Bits(n), nil
}
