package estimator

import (
	"fmt"
	"math/bits"

	"pbs/internal/hashutil"
	"pbs/internal/ibf"
)

// Strata is the Strata estimator of Eppstein et al. (Difference Digest,
// surveyed in App. B of the PBS paper): a ladder of small IBFs where
// stratum i samples elements with probability 2^-(i+1); the difference
// cardinality is extrapolated from the deepest strata that decode.
type Strata struct {
	numStrata int
	cells     int
	k         int
	seed      uint64
}

// NewStrata returns a Strata estimator with the standard configuration of
// the Difference Digest paper: 32 strata of 80 cells each.
func NewStrata(seed uint64) *Strata {
	return &Strata{numStrata: 32, cells: 80, k: 4, seed: seed}
}

// StrataSketch is one party's ladder of IBFs.
type StrataSketch struct {
	filters []*ibf.Filter
}

// stratum assigns x to a stratum by the number of trailing zeros of a hash.
func (s *Strata) stratum(x uint64) int {
	h := hashutil.XXH64Uint64(x, s.seed^0x57A7A)
	tz := bits.TrailingZeros64(h)
	if tz >= s.numStrata {
		tz = s.numStrata - 1
	}
	return tz
}

// Sketch builds the ladder for set.
func (s *Strata) Sketch(set []uint64) *StrataSketch {
	sk := &StrataSketch{filters: make([]*ibf.Filter, s.numStrata)}
	for i := range sk.filters {
		sk.filters[i] = ibf.MustNew(s.cells, s.k, s.seed+uint64(i)*1315423911)
	}
	for _, x := range set {
		sk.filters[s.stratum(x)].Insert(x)
	}
	return sk
}

// Bits returns the wire size of one ladder at the given signature width.
func (s *Strata) Bits(sigBits int) int {
	return s.numStrata * s.cells * 3 * sigBits
}

// Estimate decodes strata from the deepest down; when stratum i is the
// shallowest that fails to decode, the estimate is 2^(i+1) times the count
// recovered from the strata below it... following the standard Strata
// estimator: scan from deepest stratum toward stratum 0, accumulating
// decoded difference counts; upon the first failure at stratum i, return
// 2^(i+1) · (count accumulated so far).
func (s *Strata) Estimate(a, b *StrataSketch) (float64, error) {
	if len(a.filters) != len(b.filters) {
		return 0, fmt.Errorf("estimator: strata ladder mismatch")
	}
	count := 0
	for i := s.numStrata - 1; i >= 0; i-- {
		f := a.filters[i].Clone()
		if err := f.Subtract(b.filters[i]); err != nil {
			return 0, err
		}
		pos, neg, ok := f.Decode()
		if !ok {
			return float64(uint64(count)) * float64(uint64(1)<<uint(i+1)), nil
		}
		count += len(pos) + len(neg)
	}
	return float64(count), nil // everything decoded: exact count
}
