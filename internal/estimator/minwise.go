package estimator

import (
	"fmt"

	"pbs/internal/hashutil"
)

// MinWise estimates the set-difference cardinality through the Jaccard
// similarity J = |A∩B| / |A∪B| obtained from k min-wise hash signatures
// (Broder et al., surveyed in App. B of the PBS paper). With |A| and |B|
// known, d = |A△B| = (1−J)/(1+J) · (|A| + |B|).
type MinWise struct {
	k     int
	seeds []uint64
}

// NewMinWise returns a min-wise estimator with k permutations.
func NewMinWise(k int, seed uint64) (*MinWise, error) {
	if k < 1 {
		return nil, fmt.Errorf("estimator: minwise k=%d must be >= 1", k)
	}
	return &MinWise{k: k, seeds: hashutil.Seeds(seed, k)}, nil
}

// Sketch computes the k min-hash values of set. An empty set yields all
// MaxUint64 sentinels.
func (m *MinWise) Sketch(set []uint64) []uint64 {
	mins := make([]uint64, m.k)
	for i := range mins {
		mins[i] = ^uint64(0)
	}
	for _, x := range set {
		for i, s := range m.seeds {
			if h := hashutil.XXH64Uint64(x, s); h < mins[i] {
				mins[i] = h
			}
		}
	}
	return mins
}

// Bits returns the wire size of one sketch vector (64 bits per min-hash).
func (m *MinWise) Bits() int { return m.k * 64 }

// Estimate returns d̂ given the two parties' sketches and set sizes.
func (m *MinWise) Estimate(sa, sb []uint64, sizeA, sizeB int) (float64, error) {
	if len(sa) != m.k || len(sb) != m.k {
		return 0, fmt.Errorf("estimator: sketch length mismatch")
	}
	match := 0
	for i := range sa {
		if sa[i] == sb[i] {
			match++
		}
	}
	j := float64(match) / float64(m.k)
	if j >= 1 {
		return 0, nil
	}
	return (1 - j) / (1 + j) * float64(sizeA+sizeB), nil
}
