package estimator

import (
	"math"
	"math/rand"
	"testing"

	"pbs/internal/workload"
)

func makePair(t testing.TB, d int, seed int64) *workload.Pair {
	t.Helper()
	p, err := workload.Generate(workload.Config{
		UniverseBits: 32, SizeA: 3000, D: d, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestToWUnbiasedEmpirically(t *testing.T) {
	// Average many independent single-sketch estimates; the mean must
	// approach d (unbiasedness, App. A). Var of a single sketch is
	// 2d²−2d, so with trials T the sample-mean sd is d·sqrt(2/T).
	const d = 50
	p := makePair(t, d, 1)
	const trials = 1200
	var sum float64
	for i := 0; i < trials; i++ {
		tw := MustNewToW(1, uint64(i)+1000)
		ya := tw.Sketch(p.A)
		yb := tw.Sketch(p.B)
		e, err := tw.Estimate(ya, yb)
		if err != nil {
			t.Fatal(err)
		}
		sum += e
	}
	mean := sum / trials
	sd := float64(d) * math.Sqrt(2.0/trials)
	if math.Abs(mean-d) > 6*sd {
		t.Errorf("ToW mean = %.2f, want ~%d (+/- %.2f)", mean, d, 6*sd)
	}
}

func TestToWVarianceMatchesTheory(t *testing.T) {
	// Var[d̂] with one sketch is 2d²−2d (App. A). Check within broad bounds.
	const d = 30
	p := makePair(t, d, 2)
	const trials = 1500
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		tw := MustNewToW(1, uint64(i)+5000)
		e, _ := tw.Estimate(tw.Sketch(p.A), tw.Sketch(p.B))
		sum += e
		sumsq += e * e
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	want := float64(2*d*d - 2*d)
	if variance < want/2 || variance > want*2 {
		t.Errorf("ToW variance = %.0f, theory %.0f", variance, want)
	}
}

func TestToWAccuracyWith128Sketches(t *testing.T) {
	// With ℓ=128 the relative sd is sqrt(2/128) ≈ 12.5%; the estimate
	// should be well within 60% of truth on any single run.
	for _, d := range []int{10, 100, 1000} {
		p := makePair(t, d, int64(d))
		tw := MustNewToW(DefaultSketches, 42)
		e, _ := tw.Estimate(tw.Sketch(p.A), tw.Sketch(p.B))
		if e < float64(d)*0.4 || e > float64(d)*1.6 {
			t.Errorf("d=%d: estimate %.1f too far off", d, e)
		}
	}
}

func TestConservativeCoverage(t *testing.T) {
	// Pr[d <= 1.38·d̂] should be >= ~99% at ℓ=128 (§6.2).
	const d = 200
	p := makePair(t, d, 3)
	covered, trials := 0, 150
	for i := 0; i < trials; i++ {
		tw := MustNewToW(DefaultSketches, uint64(i))
		e, _ := tw.Estimate(tw.Sketch(p.A), tw.Sketch(p.B))
		if float64(d) <= DefaultGamma*e {
			covered++
		}
	}
	if float64(covered)/float64(trials) < 0.96 {
		t.Errorf("coverage %d/%d below expectation", covered, trials)
	}
}

func TestToWIdenticalSetsEstimateZero(t *testing.T) {
	p := makePair(t, 0, 4)
	tw := MustNewToW(32, 9)
	e, _ := tw.Estimate(tw.Sketch(p.A), tw.Sketch(p.B))
	if e != 0 {
		t.Errorf("identical sets: estimate %.2f, want 0", e)
	}
}

func TestToWBitsAccounting(t *testing.T) {
	tw := MustNewToW(128, 0)
	// |S| = 10^6: each sketch needs ceil(log2(2e6+1)) = 21 bits; 128·21 =
	// 2688 bits = 336 bytes — the paper's number.
	if got := tw.Bits(1_000_000); got != 2688 {
		t.Errorf("Bits(1e6) = %d, want 2688 (336 bytes)", got)
	}
}

func TestToWErrors(t *testing.T) {
	if _, err := NewToW(0, 1); err == nil {
		t.Error("l=0 should fail")
	}
	tw := MustNewToW(4, 1)
	if _, err := tw.Estimate(make([]int64, 3), make([]int64, 4)); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestConservativeD(t *testing.T) {
	if ConservativeD(10, 1.38) != 14 {
		t.Errorf("ConservativeD(10,1.38) = %d", ConservativeD(10, 1.38))
	}
	if ConservativeD(0, 1.38) != 1 {
		t.Error("floor of 1 expected")
	}
}

func TestStrataOrderOfMagnitude(t *testing.T) {
	for _, d := range []int{64, 512, 2048} {
		p := makePair(t, d, int64(d)*7)
		s := NewStrata(11)
		e, err := s.Estimate(s.Sketch(p.A), s.Sketch(p.B))
		if err != nil {
			t.Fatal(err)
		}
		if e < float64(d)/4 || e > float64(d)*4 {
			t.Errorf("strata d=%d: estimate %.0f out of 4x band", d, e)
		}
	}
}

func TestStrataExactWhenSmall(t *testing.T) {
	// With d small, every stratum decodes and the estimate is exact.
	p := makePair(t, 5, 8)
	s := NewStrata(12)
	e, err := s.Estimate(s.Sketch(p.A), s.Sketch(p.B))
	if err != nil {
		t.Fatal(err)
	}
	if e != 5 {
		t.Errorf("small-d strata estimate = %.0f, want exactly 5", e)
	}
}

func TestStrataBitsLargerThanToW(t *testing.T) {
	// The paper's point (App. B): ToW is far more space-efficient.
	s := NewStrata(0)
	tw := MustNewToW(DefaultSketches, 0)
	if s.Bits(32) <= tw.Bits(1_000_000) {
		t.Errorf("strata bits %d should exceed ToW bits %d", s.Bits(32), tw.Bits(1_000_000))
	}
}

func TestMinWiseRoughAccuracy(t *testing.T) {
	const d = 2000 // min-wise is poor at tiny J differences; use larger d
	p := makePair(t, d, 10)
	mw, err := NewMinWise(512, 13)
	if err != nil {
		t.Fatal(err)
	}
	e, err := mw.Estimate(mw.Sketch(p.A), mw.Sketch(p.B), len(p.A), len(p.B))
	if err != nil {
		t.Fatal(err)
	}
	if e < float64(d)/5 || e > float64(d)*5 {
		t.Errorf("minwise estimate %.0f for d=%d", e, d)
	}
}

func TestMinWiseIdenticalSets(t *testing.T) {
	p := makePair(t, 0, 11)
	mw, _ := NewMinWise(64, 1)
	e, _ := mw.Estimate(mw.Sketch(p.A), mw.Sketch(p.B), len(p.A), len(p.B))
	if e != 0 {
		t.Errorf("identical sets: %f", e)
	}
}

func TestMinWiseErrors(t *testing.T) {
	if _, err := NewMinWise(0, 0); err == nil {
		t.Error("k=0 should fail")
	}
	mw, _ := NewMinWise(4, 0)
	if _, err := mw.Estimate(make([]uint64, 3), make([]uint64, 4), 1, 1); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestEstimateDOneShot(t *testing.T) {
	p := makePair(t, 100, 12)
	tw := MustNewToW(DefaultSketches, 5)
	d, bits, err := tw.EstimateD(p.A, p.B, DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	if d < 40 || d > 400 {
		t.Errorf("EstimateD = %d for true d=100", d)
	}
	if bits != tw.Bits(len(p.A)) {
		t.Errorf("bits = %d", bits)
	}
}

func BenchmarkToWSketch10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	set := make([]uint64, 10000)
	for i := range set {
		set[i] = rng.Uint64() | 1
	}
	tw := MustNewToW(DefaultSketches, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw.Sketch(set)
	}
}

func TestToWIncrementalAddRemove(t *testing.T) {
	// A sketch maintained element-by-element with Add/Remove must be
	// bit-identical to re-sketching the final set from scratch — the
	// linearity property a long-lived set handle relies on.
	tw := MustNewToW(32, 99)
	rng := rand.New(rand.NewSource(5))
	live := make(map[uint64]struct{})
	ys := make([]int64, tw.L())
	for i := 0; i < 2000; i++ {
		x := uint64(rng.Uint32() | 1)
		if _, ok := live[x]; ok {
			delete(live, x)
			tw.Remove(ys, x)
		} else {
			live[x] = struct{}{}
			tw.Add(ys, x)
		}
	}
	final := make([]uint64, 0, len(live))
	for x := range live {
		final = append(final, x)
	}
	want := tw.Sketch(final)
	for i := range want {
		if ys[i] != want[i] {
			t.Fatalf("sketch slot %d: incremental %d != fresh %d", i, ys[i], want[i])
		}
	}
	// Removing everything must return the sketch to all-zero exactly.
	for x := range live {
		tw.Remove(ys, x)
	}
	for i, y := range ys {
		if y != 0 {
			t.Fatalf("sketch slot %d = %d after removing every element; want 0", i, y)
		}
	}
}
