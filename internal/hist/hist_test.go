package hist

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBucketIndexBoundsRoundTrip(t *testing.T) {
	// Every representable value must land in a bucket whose bounds
	// contain it, and bucket indices must be monotone in the value.
	vals := []int64{-5, 0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 1 << 20,
		(1 << 20) + 12345, 1 << 40, maxValue, maxValue + 10}
	prev := -1
	for _, v := range vals {
		cl := v
		if cl < 0 {
			cl = 0
		}
		if cl > maxValue {
			cl = maxValue
		}
		i := bucketIndex(cl)
		if i < 0 || i >= nBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		if cl < lo || cl >= hi {
			t.Fatalf("value %d in bucket %d with bounds [%d,%d)", cl, i, lo, hi)
		}
		if i < prev {
			t.Fatalf("bucket index not monotone at value %d", v)
		}
		prev = i
	}
}

func TestBucketBoundsContiguous(t *testing.T) {
	// Buckets must tile the range with no gaps or overlaps.
	var next int64
	for i := 0; i < nBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != next {
			t.Fatalf("bucket %d starts at %d, want %d", i, lo, next)
		}
		if hi <= lo {
			t.Fatalf("bucket %d empty: [%d,%d)", i, lo, hi)
		}
		next = hi
	}
	if next < maxValue {
		t.Fatalf("buckets end at %d, do not cover maxValue %d", next, maxValue)
	}
}

func TestQuantileExactSmallValues(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 10; v++ {
		h.Record(uint64(v), v)
	}
	s := h.Snapshot()
	if s.Count != 10 || s.Max != 9 {
		t.Fatalf("Count=%d Max=%d, want 10/9", s.Count, s.Max)
	}
	// Values 0..15 are exact buckets, so quantiles are exact order
	// statistics here.
	if got := s.Quantile(0.5); got != 4 {
		t.Fatalf("p50 = %v, want 4", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Fatalf("p100 = %v, want 9", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want 0", got)
	}
}

func TestQuantileMonotoneAndBounded(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	var max int64
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 50000) // latency-shaped distribution
		if v > max {
			max = v
		}
		h.Record(uint64(i), v)
	}
	s := h.Snapshot()
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, v, prev)
		}
		if v > float64(s.Max) {
			t.Fatalf("Quantile(%v) = %v exceeds Max %d", q, v, s.Max)
		}
		prev = v
	}
	if s.Max != max {
		t.Fatalf("Max = %d, want exact %d", s.Max, max)
	}
}

func TestQuantileRelativeError(t *testing.T) {
	// The log-linear layout promises <= 1/8 relative error above the
	// exact range; check against true order statistics.
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = 16 + rng.Int63n(1<<30)
		h.Record(uint64(i), vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := float64(vals[int(math.Ceil(q*float64(n)))-1])
		got := s.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 1.0/subPerOctave {
			t.Fatalf("Quantile(%v) = %v, want %v (rel err %.3f > %.3f)",
				q, got, want, rel, 1.0/subPerOctave)
		}
	}
}

func TestEmptySnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("Quantile on empty = %v, want 0", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Hammer one histogram from many goroutines (the server's completion
	// path shape); under -race this also proves the recording is
	// race-clean. Every recorded observation must be visible in the final
	// snapshot exactly once.
	var h Histogram
	const workers = 64
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				h.Record(uint64(w), rng.Int63n(1<<40))
			}
		}(w)
	}
	// Concurrent snapshots must be safe (and monotone in total count).
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last int64
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			if s.Count < last {
				t.Errorf("snapshot count went backwards: %d after %d", s.Count, last)
				return
			}
			last = s.Count
			s.Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("Count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, c := range s.counts {
		bucketSum += c
	}
	if bucketSum != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, workers*perWorker)
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		hint := uint64(rand.Int63())
		v := int64(0)
		for pb.Next() {
			v += 997
			h.Record(hint, v&(1<<30-1))
		}
	})
}
