// Package hist provides a cheap, fixed-memory, concurrency-safe histogram
// for hot-path latency/size recording. A Record is one atomic add into a
// log-linear bucket array, striped across several cache-line-padded copies
// so thousands of concurrent recorders do not serialize on one counter
// line; a Snapshot folds the stripes together and answers quantile
// queries by interpolating inside the matched bucket.
//
// The bucket layout is exact for values 0..15 and log-linear above: each
// power-of-two octave is split into 8 sub-buckets, bounding the relative
// quantile error at 1/8 = 12.5% while keeping the whole histogram under
// 4 KiB per stripe. Values are clamped to [0, 2^62); negative values count
// into bucket 0.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
)

const (
	// exactBuckets values (0..exactBuckets-1) get one bucket each.
	exactBuckets = 16
	// subBits sub-buckets per octave above the exact range.
	subBits      = 3
	subPerOctave = 1 << subBits
	// Octaves cover floor(log2 v) = 4 .. 61 (values up to 2^62-1).
	minExp   = 4
	maxExp   = 61
	nBuckets = exactBuckets + (maxExp-minExp+1)*subPerOctave

	// stripes is fixed: power of two so the hint folds with a mask. Eight
	// stripes keep a 500-session completion storm off a single cache line
	// without making snapshots scan much.
	stripes = 8

	maxValue = 1<<62 - 1
)

// bucketIndex maps a clamped value to its bucket.
func bucketIndex(v int64) int {
	if v < exactBuckets {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	u := uint64(v)
	e := bits.Len64(u) - 1 // floor(log2 v), >= 4
	sub := (u >> (uint(e) - subBits)) & (subPerOctave - 1)
	return exactBuckets + (e-minExp)*subPerOctave + int(sub)
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < exactBuckets {
		return int64(i), int64(i) + 1
	}
	i -= exactBuckets
	e := minExp + i/subPerOctave
	sub := int64(i % subPerOctave)
	width := int64(1) << (uint(e) - subBits)
	lo = (subPerOctave + sub) * width
	return lo, lo + width
}

// stripe is one private copy of the bucket array. The trailing pad keeps
// adjacent stripes on separate cache lines so recorders hashed to
// different stripes never share one.
type stripe struct {
	counts [nBuckets]atomic.Uint64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	_      [64]byte
}

// Histogram is a striped log-linear histogram. The zero value is ready to
// use. All methods are safe for concurrent use.
type Histogram struct {
	s [stripes]stripe
}

// Record counts one observation. hint spreads concurrent recorders across
// stripes — pass any value that differs between them (a connection or
// worker index works well); correctness does not depend on its
// distribution, only contention does.
func (h *Histogram) Record(hint uint64, v int64) {
	if v > maxValue {
		v = maxValue
	}
	st := &h.s[hint&(stripes-1)]
	st.counts[bucketIndex(v)].Add(1)
	st.count.Add(1)
	if v > 0 {
		st.sum.Add(v)
	}
	// Lock-free running max; racing writers settle on the true maximum.
	for {
		cur := st.max.Load()
		if v <= cur || st.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Snapshot is an immutable point-in-time copy of a Histogram, safe to
// query from any goroutine while recording continues.
type Snapshot struct {
	counts [nBuckets]uint64
	Count  int64 // observations recorded
	Sum    int64 // sum of positive observations
	Max    int64 // largest observation (exact, not bucket-rounded)
}

// Snapshot folds the stripes into one immutable copy. Recording that races
// the fold may land in either side — each Record still lands exactly once
// in the sequence of snapshots.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.s {
		st := &h.s[i]
		for b := range st.counts {
			s.counts[b] += st.counts[b].Load()
		}
		s.Count += st.count.Load()
		s.Sum += st.sum.Load()
		if m := st.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// Quantile returns the q-quantile (q in [0,1]) of the recorded values,
// interpolated inside the matched bucket; exact values below 16 are exact.
// It returns 0 for an empty snapshot. Quantile is monotone in q, and never
// exceeds Max.
func (s *Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the wanted observation.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for b, c := range s.counts {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo, hi := bucketBounds(b)
			if hi > s.Max+1 {
				hi = s.Max + 1 // never report past the observed maximum
			}
			if hi <= lo {
				return float64(lo)
			}
			frac := float64(rank-seen) / float64(c)
			return float64(lo) + frac*float64(hi-1-lo)
		}
		seen += c
	}
	return float64(s.Max)
}
