// Package markov implements the paper's analytical framework (§4, §5,
// Appendices D–H): a Markov chain that models how the number of
// yet-unreconciled distinct elements in a group pair shrinks round after
// round.
//
// State i of the chain means i "bad balls" (unreconciled distinct elements)
// are thrown into n bins at the start of a round; the transition probability
// M(i, j) is the probability that j balls land in multiply-occupied bins and
// remain bad. M is computed exactly with the dynamic program of Appendix E
// over sub-states (j, k) — j bad balls occupying k bad bins — via the
// recurrence
//
//	M̃(i,j,k) = (i−j+1)/n · M̃(i−1,j−2,k−1)
//	         + k/n       · M̃(i−1,j−1,k)
//	         + (1 − (i−1−j+k)/n) · M̃(i−1,j,k)
//
// From M the framework derives the single-group success probability
// Pr[x →r 0] = (M^r)(x, 0), the per-group success probability α(n, t), the
// rigorous overall lower bound 1 − 2(1 − α^g) (Appendix F), the optimal
// (n, t) parameters (§5.1), and the piecewise-reconciliability profile
// (§5.3, Appendix G).
//
// The model serves two callers: the offline plan optimizer (Optimize,
// reproducing the paper's tables) and the online adaptive controller —
// Replan re-derives memoized (m, t) parameters per round from the live
// survivor count, which internal/core's endpoints apply on rounds ≥ 2 of
// sessions that negotiated adaptive mode.
package markov

import (
	"fmt"
	"math"
	"sync"
)

// Chain is the exact Markov-chain model for one group pair with an n-bin
// parity bitmap and BCH error-correction capacity t. States 0..t are
// modeled; per Appendix D, Pr[x →r 0] is taken as 0 for x > t (a slight
// underestimate, "always to our disadvantage").
type Chain struct {
	N uint64
	T int
	m [][]float64 // (t+1)×(t+1) transition matrix

	mu     sync.Mutex
	powers [][][]float64 // powers[r] = M^r, lazily extended
}

var (
	chainCacheMu sync.Mutex
	chainCache   = map[[2]uint64]*Chain{}
)

// NewChain returns the chain for parameters (n, t). Chains are cached; the
// DP costs O(t³) and the cache makes repeated optimizer sweeps cheap.
func NewChain(n uint64, t int) (*Chain, error) {
	if n < 2 {
		return nil, fmt.Errorf("markov: n=%d must be >= 2", n)
	}
	if t < 1 {
		return nil, fmt.Errorf("markov: t=%d must be >= 1", t)
	}
	if uint64(t) > n {
		return nil, fmt.Errorf("markov: t=%d exceeds bin count n=%d", t, n)
	}
	key := [2]uint64{n, uint64(t)}
	chainCacheMu.Lock()
	if c, ok := chainCache[key]; ok {
		chainCacheMu.Unlock()
		return c, nil
	}
	chainCacheMu.Unlock()

	c := &Chain{N: n, T: t}
	c.m = transitionMatrix(n, t)
	c.powers = [][][]float64{identity(t + 1), c.m}

	chainCacheMu.Lock()
	chainCache[key] = c
	chainCacheMu.Unlock()
	return c, nil
}

// MustChain is like NewChain but panics on invalid parameters.
func MustChain(n uint64, t int) *Chain {
	c, err := NewChain(n, t)
	if err != nil {
		panic(err)
	}
	return c
}

// transitionMatrix runs the Appendix E dynamic program.
func transitionMatrix(n uint64, t int) [][]float64 {
	fn := float64(n)
	// mt[i][j][k]: probability that throwing i balls yields j bad balls in
	// k bad bins.
	mt := make([][][]float64, t+1)
	for i := range mt {
		mt[i] = make([][]float64, t+1)
		for j := range mt[i] {
			mt[i][j] = make([]float64, t+1)
		}
	}
	mt[0][0][0] = 1
	for i := 1; i <= t; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				var p float64
				if j >= 2 && k >= 1 {
					// A good singleton bin gains the new ball; both become bad.
					p += float64(i-j+1) / fn * mt[i-1][j-2][k-1]
				}
				if j >= 1 && k >= 1 {
					// The new ball joins one of the k existing bad bins.
					p += float64(k) / fn * mt[i-1][j-1][k]
				}
				// The new ball lands in an empty bin and stays good.
				empties := fn - float64(i-1-j) - float64(k)
				if empties > 0 {
					p += empties / fn * mt[i-1][j][k]
				}
				mt[i][j][k] = p
			}
		}
	}
	m := make([][]float64, t+1)
	for i := 0; i <= t; i++ {
		m[i] = make([]float64, t+1)
		for j := 0; j <= t; j++ {
			var sum float64
			for k := 0; k <= j; k++ {
				sum += mt[i][j][k]
			}
			m[i][j] = sum
		}
	}
	return m
}

func identity(n int) [][]float64 {
	id := make([][]float64, n)
	for i := range id {
		id[i] = make([]float64, n)
		id[i][i] = 1
	}
	return id
}

func matMul(a, b [][]float64) [][]float64 {
	n := len(a)
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			if a[i][k] == 0 {
				continue
			}
			aik := a[i][k]
			for j := 0; j < n; j++ {
				c[i][j] += aik * b[k][j]
			}
		}
	}
	return c
}

// power returns M^r (cached).
func (c *Chain) power(r int) [][]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.powers) <= r {
		c.powers = append(c.powers, matMul(c.powers[len(c.powers)-1], c.m))
	}
	return c.powers[r]
}

// TransitionProb returns M(i, j), the probability that a round started with
// i unreconciled elements ends with j.
func (c *Chain) TransitionProb(i, j int) float64 {
	if i < 0 || j < 0 || i > c.T || j > c.T {
		return 0
	}
	return c.m[i][j]
}

// SuccessProb returns Pr[x →r 0]: the probability that x distinct elements
// are all reconciled within r rounds (Formula (2) of the paper). For x > t
// it returns 0, per the Appendix D convention.
func (c *Chain) SuccessProb(x, r int) float64 {
	if x == 0 {
		return 1
	}
	if x < 0 || x > c.T || r < 0 {
		return 0
	}
	if r == 0 {
		return 0
	}
	return c.power(r)[x][0]
}

// BinomialPMF returns Pr[X = k] for X ~ Binomial(n, p), computed in log
// space so it is stable for n up to millions.
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
	logC := lg(float64(n)+1) - lg(float64(k)+1) - lg(float64(n-k)+1)
	return math.Exp(logC + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// Alpha returns the per-group success probability
//
//	α = Σ_{x=0}^{t} Pr[X=x]·Pr[x →r 0]  +  (Pr[X>t] − Pr[X>1.5t])
//
// with X ~ Binomial(d, 1/g) (Appendix F, §3.2).
//
// The head term is the exact Markov-chain success probability for group
// pairs whose difference fits the BCH capacity. The tail term models the
// x > t case: BCH decoding fails and the group pair is split three ways
// (§3.2), which rescues moderately overloaded groups within the remaining
// round budget but not grossly overloaded ones. The paper's Table 1 values
// (d=1000, δ=5, g=200, r=3) are numerically consistent with treating the
// split as succeeding for x ≤ 1.5t and failing beyond: e.g. the large-n
// plateau of the t = 8 row implies a per-group failure of 1.96×10⁻³,
// exactly Pr[X > 12] = Pr[X > 1.5t], and rows t = 9..11 match the same
// rule (with geometric interpolation at half-integer thresholds). We adopt
// that calibration; EXPERIMENTS.md discusses where our reproduction of
// Table 1 still deviates a few percent from the paper's.
//
// With r = 1 there is no round left after a decoding failure, so the whole
// tail counts as failure.
func (c *Chain) Alpha(d, g, r int) float64 {
	var alpha, head float64
	p := 1.0 / float64(g)
	for x := 0; x <= c.T && x <= d; x++ {
		pmf := BinomialPMF(d, p, x)
		head += pmf
		alpha += pmf * c.SuccessProb(x, r)
	}
	if r >= 2 {
		tailMass := 1 - head
		alpha += tailMass - splitFailure(d, g, c.T)
	}
	return alpha
}

// SplitOverloadProbability computes the §3.2 design-choice numbers: the
// conditional probability, given that a group pair holds more than t
// distinct elements (a BCH decoding failure), that after a `ways`-way split
// some sub-group pair still holds more than t. The paper reports
// 9.5×10⁻¹⁰ for the 3-way split and 0.0012 for a 2-way split at d=1000,
// δ=5, t=13 — the justification for splitting three ways.
func SplitOverloadProbability(d, g, t, ways int) float64 {
	p := 1.0 / float64(g)
	var tailMass, overload float64
	// The parent count X ~ Binomial(d, 1/g) conditioned on X > t; children
	// are a uniform `ways`-way split of X. Union bound over children (the
	// paper's own numbers are consistent with it at these magnitudes).
	for x := t + 1; x <= d && x <= t+200; x++ {
		pmf := BinomialPMF(d, p, x)
		if pmf == 0 && x > 3*t {
			break
		}
		tailMass += pmf
		var childTail float64
		for y := t + 1; y <= x; y++ {
			childTail += BinomialPMF(x, 1.0/float64(ways), y)
		}
		ov := float64(ways) * childTail
		if ov > 1 {
			ov = 1
		}
		overload += pmf * ov
	}
	if tailMass == 0 {
		return 0
	}
	return overload / tailMass
}

// splitFailure returns Pr[X > 1.5t] for X ~ Binomial(d, 1/g): the
// probability that a group pair is too overloaded for the 3-way split of
// §3.2 to rescue it within the round budget. Half-integer thresholds
// (odd t) are handled by geometric interpolation between the neighbouring
// integer tails.
func splitFailure(d, g, t int) float64 {
	tailGE := func(k int) float64 {
		var cdf float64
		for x := 0; x < k && x <= d; x++ {
			cdf += BinomialPMF(d, 1.0/float64(g), x)
		}
		tail := 1 - cdf
		if tail < 0 {
			tail = 0
		}
		return tail
	}
	thr2 := 3 * t // twice the threshold 1.5t
	if thr2%2 == 0 {
		return tailGE(thr2/2 + 1)
	}
	k := (thr2 + 1) / 2
	return math.Sqrt(tailGE(k) * tailGE(k+1))
}

// LowerBound returns the rigorous overall success-probability lower bound
// 1 − 2(1 − α^g) for g group pairs (Appendix F). The value may be negative
// when the parameters are hopeless; callers compare it against p0.
func (c *Chain) LowerBound(d, g, r int) float64 {
	alpha := c.Alpha(d, g, r)
	return 1 - 2*(1-math.Pow(alpha, float64(g)))
}

// CumulativeReconciled returns E[Z1+...+Zk | δ1 = x] / x for the chain:
// the expected fraction of x initial distinct elements reconciled within k
// rounds (Appendix G, Equation (6)).
func (c *Chain) CumulativeReconciled(x, k int) float64 {
	if x == 0 {
		return 1
	}
	if x > c.T {
		return 0
	}
	mk := c.power(k)
	var e float64
	for y := 0; y <= c.T; y++ {
		e += float64(x-y) * mk[x][y]
	}
	return e / float64(x)
}

// RoundProportions returns the expected proportion of all d distinct
// elements reconciled in each of rounds 1..rounds, under hash-partitioning
// into g groups with chain parameters (n, t) (§5.3). Proportions are of d,
// so they sum to at most 1.
func (c *Chain) RoundProportions(d, g, rounds int) []float64 {
	p := 1.0 / float64(g)
	delta := float64(d) / float64(g)
	cum := make([]float64, rounds+1)
	for k := 1; k <= rounds; k++ {
		mk := c.power(k)
		var e float64
		for x := 1; x <= c.T && x <= d; x++ {
			pmf := BinomialPMF(d, p, x)
			for y := 0; y <= c.T; y++ {
				e += pmf * float64(x-y) * mk[x][y]
			}
		}
		cum[k] = e / delta // fraction of the group's expected δ elements
	}
	out := make([]float64, rounds)
	for k := 1; k <= rounds; k++ {
		out[k-1] = cum[k] - cum[k-1]
	}
	return out
}
