package markov

import "testing"

func TestReplanMeetsTarget(t *testing.T) {
	for _, load := range []int{1, 2, 3, 5, 8, 13, 21, 40} {
		p, err := Replan(load, 2, 0.99)
		if err != nil {
			t.Fatalf("Replan(%d): %v", load, err)
		}
		if p.Bound < 0.99 {
			t.Fatalf("Replan(%d) bound %.4f < 0.99 (m=%d t=%d)", load, p.Bound, p.M, p.T)
		}
		if p.T < load {
			t.Fatalf("Replan(%d) capacity t=%d below load", load, p.T)
		}
		c := MustChain(p.N(), p.T)
		if got := c.SuccessProb(load, 2); got != p.Bound {
			t.Fatalf("Replan(%d) bound %.6f != chain success %.6f", load, p.Bound, got)
		}
	}
}

// Replan's objective (t+load)·m shrinks when fewer elements survive: a
// lighter load must never be planned onto a costlier round than a heavier
// one at the same target.
func TestReplanMonotoneCost(t *testing.T) {
	prev := 0
	for _, load := range []int{1, 3, 6, 12, 25, 50} {
		p, err := Replan(load, 2, 0.99)
		if err != nil {
			t.Fatalf("Replan(%d): %v", load, err)
		}
		if p.BitsPerGroup < prev {
			t.Fatalf("cost not monotone: load=%d costs %d bits < previous %d", load, p.BitsPerGroup, prev)
		}
		prev = p.BitsPerGroup
	}
}

// Small loads should land on bitmaps below the offline grid's 63-bin
// floor — that headroom is where the adaptive rounds save their bytes.
func TestReplanUsesSmallBitmaps(t *testing.T) {
	p, err := Replan(1, 2, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p.M >= 6 {
		t.Fatalf("Replan(1) chose m=%d; expected below the offline m=6 floor", p.M)
	}
}

// A tighter round budget can only demand a bigger (costlier) bitmap.
func TestReplanTighterBudgetCostsMore(t *testing.T) {
	one, err := Replan(4, 1, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Replan(4, 2, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if one.M < two.M {
		t.Fatalf("1-round plan m=%d smaller than 2-round plan m=%d", one.M, two.M)
	}
}

func TestReplanOverload(t *testing.T) {
	// Far beyond any grid bitmap's 2-round guarantee: still returns
	// runnable parameters with an honest (sub-p0) bound.
	p, err := Replan(100000, 2, 0.99)
	if err != nil {
		t.Fatalf("Replan overload: %v", err)
	}
	if p.M != ReplanMGrid[len(ReplanMGrid)-1] {
		t.Fatalf("overload should pick the largest bitmap, got m=%d", p.M)
	}
}

func TestReplanRejectsBadInputs(t *testing.T) {
	if _, err := Replan(0, 2, 0.99); err == nil {
		t.Fatal("Replan accepted load=0")
	}
	if _, err := Replan(5, 0, 0.99); err == nil {
		t.Fatal("Replan accepted rounds=0")
	}
	if _, err := Replan(5, 2, 1.0); err == nil {
		t.Fatal("Replan accepted p0=1")
	}
}
