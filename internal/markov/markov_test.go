package markov

import (
	"math"
	"math/rand"
	"testing"
)

func TestTransitionRowsSumToOne(t *testing.T) {
	c := MustChain(127, 13)
	for i := 0; i <= c.T; i++ {
		var sum float64
		for j := 0; j <= c.T; j++ {
			sum += c.TransitionProb(i, j)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %.12f", i, sum)
		}
	}
}

func TestTransitionAgainstMonteCarlo(t *testing.T) {
	// Empirically throw i balls into n bins and count bad balls; the
	// empirical distribution must match M(i, ·).
	const n = 63
	const tcap = 10
	c := MustChain(n, tcap)
	rng := rand.New(rand.NewSource(1))
	for _, i := range []int{1, 2, 5, 9} {
		const trials = 200000
		counts := make([]int, i+1)
		for tr := 0; tr < trials; tr++ {
			var bins [n + 1]int
			for b := 0; b < i; b++ {
				bins[rng.Intn(n)+1]++
			}
			bad := 0
			for _, occ := range bins {
				if occ > 1 {
					bad += occ
				}
			}
			counts[bad]++
		}
		for j := 0; j <= i; j++ {
			got := float64(counts[j]) / trials
			want := c.TransitionProb(i, j)
			se := math.Sqrt(want*(1-want)/trials) + 1e-9
			if math.Abs(got-want) > 6*se+0.002 {
				t.Errorf("i=%d j=%d: MC %.5f vs model %.5f", i, j, got, want)
			}
		}
	}
}

func TestSingleBallAlwaysGood(t *testing.T) {
	c := MustChain(255, 5)
	if got := c.TransitionProb(1, 0); got != 1 {
		t.Errorf("one ball must always reconcile: %.6f", got)
	}
	if got := c.SuccessProb(1, 1); got != 1 {
		t.Errorf("SuccessProb(1,1) = %.6f", got)
	}
}

func TestTwoBallCollisionProbability(t *testing.T) {
	// Two balls collide with probability exactly 1/n.
	const n = 127
	c := MustChain(n, 5)
	if got, want := c.TransitionProb(2, 2), 1.0/n; math.Abs(got-want) > 1e-12 {
		t.Errorf("P(2->2) = %.9f, want %.9f", got, want)
	}
	if got, want := c.TransitionProb(2, 0), 1-1.0/n; math.Abs(got-want) > 1e-12 {
		t.Errorf("P(2->0) = %.9f, want %.9f", got, want)
	}
	// Odd counts of bad balls are impossible from a fresh throw... actually
	// j=1 is impossible: a bad bin holds >= 2 balls.
	if got := c.TransitionProb(2, 1); got != 0 {
		t.Errorf("P(2->1) = %.9f, want 0", got)
	}
}

func TestIdealCaseMatchesBirthdayFormula(t *testing.T) {
	// M(x, 0) = prod_{k=1}^{x-1} (1 - k/n), §2.2.1.
	const n = 255
	c := MustChain(n, 8)
	for _, x := range []int{1, 2, 5, 8} {
		want := 1.0
		for k := 1; k < x; k++ {
			want *= 1 - float64(k)/n
		}
		if got := c.TransitionProb(x, 0); math.Abs(got-want) > 1e-9 {
			t.Errorf("x=%d: ideal-case prob %.6f, want %.6f", x, got, want)
		}
	}
}

func TestPaperExampleD5N255(t *testing.T) {
	// §1.3.1: d=5, n=255: ideal case probability ~0.96.
	c := MustChain(255, 5)
	if got := c.TransitionProb(5, 0); math.Abs(got-0.9610) > 0.002 {
		t.Errorf("ideal-case probability = %.4f, want ~0.961", got)
	}
}

func TestSuccessProbMonotoneInRounds(t *testing.T) {
	c := MustChain(127, 13)
	for x := 1; x <= 13; x++ {
		prev := 0.0
		for r := 1; r <= 6; r++ {
			p := c.SuccessProb(x, r)
			if p < prev-1e-12 {
				t.Errorf("SuccessProb(%d, %d) decreased: %.6f -> %.6f", x, r, prev, p)
			}
			prev = p
		}
		if prev < 0.999 {
			t.Errorf("x=%d: success prob after 6 rounds only %.6f", x, prev)
		}
	}
}

func TestSuccessProbBoundaries(t *testing.T) {
	c := MustChain(127, 13)
	if c.SuccessProb(0, 1) != 1 {
		t.Error("zero differences should be success probability 1")
	}
	if c.SuccessProb(14, 3) != 0 {
		t.Error("x > t must return 0 (Appendix D convention)")
	}
	if c.SuccessProb(5, 0) != 0 {
		t.Error("zero rounds with nonzero x must be 0")
	}
}

func TestBinomialPMF(t *testing.T) {
	// Exact small cases.
	if got := BinomialPMF(4, 0.5, 2); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("B(4,0.5,2) = %.12f", got)
	}
	// Sums to 1.
	var sum float64
	for k := 0; k <= 50; k++ {
		sum += BinomialPMF(50, 0.13, k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %.12f", sum)
	}
	// Large n stability: Binomial(1e6, 1/2e5) near its mean 5.
	p := BinomialPMF(1_000_000, 1.0/200_000, 5)
	// Poisson(5) approximation: 5^5 e^-5/5! = 0.17547
	if math.Abs(p-0.17547) > 0.002 {
		t.Errorf("large-n pmf = %.5f, want ~0.1755", p)
	}
	// Degenerate p.
	if BinomialPMF(10, 0, 0) != 1 || BinomialPMF(10, 0, 1) != 0 {
		t.Error("p=0 degenerate case")
	}
	if BinomialPMF(10, 1, 10) != 1 || BinomialPMF(10, 1, 9) != 0 {
		t.Error("p=1 degenerate case")
	}
}

// TestTable1Cells reproduces Table 1 (Appendix H): d=1000, δ=5, g=200,
// r=3. In the region the optimizer cares about (n ≥ 127) our framework
// matches the paper within ~0.01; the large-n plateaus of each t row —
// where the split-failure tail dominates — match within a few thousandths.
// The n = 63 column is a documented deviation (the paper is more
// pessimistic there; see EXPERIMENTS.md), so it is asserted loosely and
// only on feasibility agreement.
func TestTable1Cells(t *testing.T) {
	cases := []struct {
		m    uint
		tt   int
		want float64
		tol  float64
	}{
		{7, 13, 0.991, 0.008}, // the darkened optimal cell
		{8, 11, 0.991, 0.008},
		{7, 10, 0.927, 0.05},
		{9, 12, 0.999, 0.002},
		{11, 10, 0.977, 0.005}, // t=10 plateau
		{11, 8, 0.350, 0.005},  // t=8 plateau
		{10, 9, 0.861, 0.01},   // t=9 plateau
		{11, 11, 0.996, 0.002}, // t=11 plateau
		{7, 8, 0.255, 0.12},
	}
	for _, c := range cases {
		n := (uint64(1) << c.m) - 1
		ch := MustChain(n, c.tt)
		got := ch.LowerBound(1000, 200, 3)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("bound(n=%d, t=%d) = %.4f, want %.3f±%.3f", n, c.tt, got, c.want, c.tol)
		}
	}
}

// TestTable1FeasibilityAgreement: the cells the paper highlights as meeting
// p0 = 99% must be feasible in our model too, and the clearly infeasible
// cells must stay infeasible.
func TestTable1FeasibilityAgreement(t *testing.T) {
	feasible := [][2]uint64{{127, 13}, {255, 11}, {511, 11}, {2047, 11}, {255, 12}, {511, 12}}
	for _, c := range feasible {
		if b := MustChain(c[0], int(c[1])).LowerBound(1000, 200, 3); b < 0.99 {
			t.Errorf("bound(%d, %d) = %.4f, paper marks it feasible", c[0], c[1], b)
		}
	}
	infeasible := [][2]uint64{{63, 8}, {127, 8}, {2047, 8}, {63, 9}, {2047, 10}}
	for _, c := range infeasible {
		if b := MustChain(c[0], int(c[1])).LowerBound(1000, 200, 3); b >= 0.99 {
			t.Errorf("bound(%d, %d) = %.4f, paper marks it infeasible", c[0], c[1], b)
		}
	}
}

// TestOptimizerPaperInstance: the §5.1/App. H instance (d=1000, δ=5, r=3,
// p0=0.99). The paper selects (n=127, t=13); our slightly different tail
// calibration selects the same bitmap size with t within [11, 13]
// (112–126 objective bits — within 11% of the paper's 126).
func TestOptimizerPaperInstance(t *testing.T) {
	p, err := Optimize(1000, 5, 3, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("optimal params: m=%d t=%d obj=%d bound=%.4f (paper: m=7, t=13, obj=126)",
		p.M, p.T, p.BitsPerGroup, p.Bound)
	if p.M != 7 {
		t.Errorf("optimal bitmap degree m = %d, want 7 (n=127)", p.M)
	}
	if p.T < 11 || p.T > 13 {
		t.Errorf("optimal t = %d, want within [11, 13]", p.T)
	}
	if p.Bound < 0.99 {
		t.Errorf("bound = %.4f < p0", p.Bound)
	}
}

// TestSec52CommunicationTrend reproduces the §5.2 claim: the optimal
// per-group communication overhead decreases in r, sharply until r=3 and
// only slightly after. Full overhead = objective + δ·log|U| + log|U|.
func TestSec52CommunicationTrend(t *testing.T) {
	const sigBits = 32
	const delta = 5
	var comm [5]int
	for r := 1; r <= 4; r++ {
		p, err := Optimize(1000, delta, r, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		comm[r] = p.BitsPerGroup + delta*sigBits + sigBits
	}
	t.Logf("per-group comm bits for r=1..4: %v (paper: 591, 402, 318, 288)", comm[1:])
	if !(comm[1] > comm[2] && comm[2] > comm[3] && comm[3] >= comm[4]) {
		t.Errorf("communication should decrease with r: %v", comm[1:])
	}
	// r=4 matches the paper exactly (n=63, t=11 → 96+192 = 288 bits); r=3
	// lands within ~5% of the paper's 318 (our tail calibration admits
	// t=11 at n=127 where the paper required t=13).
	if comm[3] < 300 || comm[3] > 330 {
		t.Errorf("r=3 comm = %d, want ~318 (within [300, 330])", comm[3])
	}
	if comm[4] != 288 {
		t.Errorf("r=4 comm = %d, want 288", comm[4])
	}
	// The r1->r3 drop must dwarf the r3->r4 drop (sweet-spot claim).
	if (comm[1] - comm[3]) < 4*(comm[3]-comm[4]) {
		t.Errorf("r=3 does not look like a sweet spot: %v", comm[1:])
	}
}

// TestSec53RoundProportions reproduces §5.3: with d=1000, n=127, t=13 the
// expected proportions reconciled in rounds 1..4 are 0.962, 0.0380,
// 3.61e-4, 2.86e-6.
func TestSec53RoundProportions(t *testing.T) {
	c := MustChain(127, 13)
	props := c.RoundProportions(1000, 200, 4)
	want := []float64{0.962, 0.0380, 3.61e-4, 2.86e-6}
	reltol := []float64{0.01, 0.08, 0.25, 0.5}
	for i := range want {
		if math.Abs(props[i]-want[i]) > want[i]*reltol[i] {
			t.Errorf("round %d proportion = %.6g, want %.6g", i+1, props[i], want[i])
		}
	}
}

func TestCumulativeReconciledMonotone(t *testing.T) {
	c := MustChain(127, 13)
	for x := 1; x <= 13; x++ {
		prev := 0.0
		for k := 1; k <= 5; k++ {
			f := c.CumulativeReconciled(x, k)
			if f < prev-1e-12 || f > 1+1e-12 {
				t.Errorf("x=%d k=%d: cumulative fraction %.6f invalid", x, k, f)
			}
			prev = f
		}
	}
}

func TestBoundTableShape(t *testing.T) {
	ts := []int{8, 9, 10}
	ms := []uint{6, 7, 8}
	tab := BoundTable(1000, 5, 3, ts, ms)
	if len(tab) != 3 || len(tab[0]) != 3 {
		t.Fatal("table shape wrong")
	}
	// Bound should be monotone nondecreasing in both t and n.
	for i := 0; i < 3; i++ {
		for j := 1; j < 3; j++ {
			if tab[i][j] < tab[i][j-1]-1e-9 {
				t.Errorf("bound not monotone in n at t=%d", ts[i])
			}
		}
	}
	for j := 0; j < 3; j++ {
		for i := 1; i < 3; i++ {
			if tab[i][j] < tab[i-1][j]-1e-9 {
				t.Errorf("bound not monotone in t at m=%d", ms[j])
			}
		}
	}
}

func TestNewChainErrors(t *testing.T) {
	if _, err := NewChain(1, 1); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := NewChain(63, 0); err == nil {
		t.Error("t=0 should fail")
	}
	if _, err := NewChain(10, 11); err == nil {
		t.Error("t>n should fail")
	}
}

func TestOptimizeErrors(t *testing.T) {
	if _, err := Optimize(0, 5, 3, 0.99); err == nil {
		t.Error("d=0 should fail")
	}
	if _, err := Optimize(100, 5, 3, 1.5); err == nil {
		t.Error("p0>1 should fail")
	}
}

func TestNumGroups(t *testing.T) {
	if NumGroups(1000, 5) != 200 {
		t.Error("g should be 200")
	}
	if NumGroups(2, 5) != 1 {
		t.Error("g floor of 1")
	}
	if NumGroups(13, 5) != 3 {
		t.Error("g should round")
	}
}

func TestChainCaching(t *testing.T) {
	a := MustChain(127, 13)
	b := MustChain(127, 13)
	if a != b {
		t.Error("chains should be cached")
	}
}

// TestSplitOverloadProbability reproduces the §3.2 design-choice analysis:
// conditional on a BCH decoding failure (group holds > t = 13 elements),
// how likely is a split to leave some child still over capacity? Our
// union-bound computation reproduces the paper's 2-way number exactly
// (0.0012); for the 3-way split we get 1.3e-5 where the paper quotes
// 9.5e-10 (see EXPERIMENTS.md) — both support the same design decision:
// 3-way splitting is roughly two orders of magnitude safer than 2-way.
func TestSplitOverloadProbability(t *testing.T) {
	p3 := SplitOverloadProbability(1000, 200, 13, 3)
	p2 := SplitOverloadProbability(1000, 200, 13, 2)
	t.Logf("2-way overload %.3g (paper 0.0012), 3-way %.3g (paper 9.5e-10)", p2, p3)
	if p2 < 8e-4 || p2 > 1.6e-3 {
		t.Errorf("2-way overload = %.3g, paper says ~0.0012", p2)
	}
	if p3 > 1e-4 {
		t.Errorf("3-way overload = %.3g, should be tiny", p3)
	}
	if p2 < p3*50 {
		t.Errorf("2-way split must be far riskier: %g vs %g", p2, p3)
	}
}
