package markov

import (
	"math"
	"math/rand"
	"testing"
)

// TestOccupancyPaperNumbers reproduces the §1.3.1 and §2.3 worked example:
// d = 5 balls into n = 255 bins.
func TestOccupancyPaperNumbers(t *testing.T) {
	oc := Occupancy(5, 255)
	// §1.3.1: ideal case probability 0.96.
	if math.Abs(oc.Ideal-0.961) > 0.002 {
		t.Errorf("ideal = %.4f, paper says ~0.96", oc.Ideal)
	}
	// §2.3: type (I) "roughly 0.04".
	if math.Abs(oc.TypeI-0.039) > 0.003 {
		t.Errorf("type I = %.4f, paper says ~0.04", oc.TypeI)
	}
	// §2.3: type (II) 1.52×10⁻⁴.
	if oc.TypeII < 1.3e-4 || oc.TypeII > 1.75e-4 {
		t.Errorf("type II = %.3g, paper says 1.52e-4", oc.TypeII)
	}
	// §2.3: fake element passes the filter with probability ≈ 6×10⁻⁷
	// (1.52e-4 × 1/255).
	if fp := FakePassProbability(5, 255); fp < 4e-7 || fp > 8e-7 {
		t.Errorf("fake-pass probability = %.3g, paper says ~6e-7", fp)
	}
}

func TestOccupancyProbabilitiesSumAndBounds(t *testing.T) {
	for _, d := range []int{0, 1, 2, 5, 10, 20} {
		oc := Occupancy(d, 127)
		for name, p := range map[string]float64{"ideal": oc.Ideal, "typeI": oc.TypeI, "typeII": oc.TypeII} {
			if p < 0 || p > 1 {
				t.Errorf("d=%d: %s = %f out of [0,1]", d, name, p)
			}
		}
		// Ideal matches the closed form Π (1 − k/n).
		want := 1.0
		for k := 1; k < d; k++ {
			want *= 1 - float64(k)/127
		}
		if math.Abs(oc.Ideal-want) > 1e-9 {
			t.Errorf("d=%d: ideal %.9f, closed form %.9f", d, oc.Ideal, want)
		}
	}
	if oc := Occupancy(1, 10); oc.TypeI != 0 || oc.TypeII != 0 || oc.Ideal != 1 {
		t.Error("single ball can produce no exceptions")
	}
}

// TestOccupancyAgainstMonteCarlo validates the partition enumeration with
// brute-force throws.
func TestOccupancyAgainstMonteCarlo(t *testing.T) {
	const d, n = 7, 63
	oc := Occupancy(d, n)
	rng := rand.New(rand.NewSource(2))
	const trials = 300000
	var ideal, t1, t2 int
	for i := 0; i < trials; i++ {
		var bins [n + 1]int
		for b := 0; b < d; b++ {
			bins[rng.Intn(n)+1]++
		}
		hasEven, hasBigOdd := false, false
		for _, c := range bins {
			if c > 0 && c%2 == 0 {
				hasEven = true
			}
			if c >= 3 && c%2 == 1 {
				hasBigOdd = true
			}
		}
		if !hasEven && !hasBigOdd {
			ideal++
		}
		if hasEven {
			t1++
		}
		if hasBigOdd {
			t2++
		}
	}
	check := func(name string, count int, want float64) {
		got := float64(count) / trials
		se := math.Sqrt(want*(1-want)/trials) + 1e-9
		if math.Abs(got-want) > 6*se+1e-4 {
			t.Errorf("%s: MC %.5f vs exact %.5f", name, got, want)
		}
	}
	check("ideal", ideal, oc.Ideal)
	check("typeI", t1, oc.TypeI)
	check("typeII", t2, oc.TypeII)
}

func TestOccupancyPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("d=26 should panic")
		}
	}()
	Occupancy(26, 100)
}
