package markov

import "math"

// OccupancyProbs holds the exact probabilities of the §2.3 exception events
// when d balls (distinct elements) are thrown uniformly into n bins
// (subset pairs).
type OccupancyProbs struct {
	// Ideal is the probability every ball lands alone (§2.2.1's
	// Π (1 − k/n)).
	Ideal float64
	// TypeI is the probability some bin holds a nonzero even number of
	// balls (parity hides the difference; the codeword cannot see it).
	TypeI float64
	// TypeII is the probability some bin holds an odd number ≥ 3 of balls
	// (a fake distinct element is produced).
	TypeII float64
}

// Occupancy computes the exact event probabilities by enumerating integer
// partitions of d (feasible for the small per-group d PBS works with;
// d ≤ 25 enumerates fewer than 2000 partitions). Each partition λ of d
// into k parts corresponds to an occupancy profile, with probability
//
//	d! / (Π λi! · Π m_j!) · n·(n−1)···(n−k+1) / n^d
//
// where m_j are the multiplicities of equal parts.
func Occupancy(d int, n uint64) OccupancyProbs {
	if d < 0 || d > 25 {
		panic("markov: Occupancy supports 0 <= d <= 25")
	}
	var out OccupancyProbs
	if d == 0 {
		out.Ideal = 1
		return out
	}
	lg := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
	logNFact := lg(float64(d) + 1)
	logN := math.Log(float64(n))

	parts := make([]int, 0, d)
	var walk func(remaining, maxPart int)
	walk = func(remaining, maxPart int) {
		if remaining == 0 {
			k := len(parts)
			if uint64(k) > n {
				return
			}
			// log multinomial coefficient over the parts.
			logP := logNFact
			for _, p := range parts {
				logP -= lg(float64(p) + 1)
			}
			// Multiplicities of equal part sizes.
			mult := map[int]int{}
			for _, p := range parts {
				mult[p]++
			}
			for _, m := range mult {
				logP -= lg(float64(m) + 1)
			}
			// Falling factorial n·(n−1)···(n−k+1) / n^d.
			for i := 0; i < k; i++ {
				logP += math.Log(float64(n) - float64(i))
			}
			logP -= float64(d) * logN
			p := math.Exp(logP)

			hasEven, hasBigOdd := false, false
			for _, part := range parts {
				if part%2 == 0 {
					hasEven = true
				}
				if part%2 == 1 && part >= 3 {
					hasBigOdd = true
				}
			}
			if !hasEven && !hasBigOdd {
				out.Ideal += p
			}
			if hasEven {
				out.TypeI += p
			}
			if hasBigOdd {
				out.TypeII += p
			}
			return
		}
		limit := maxPart
		if remaining < limit {
			limit = remaining
		}
		for p := limit; p >= 1; p-- {
			parts = append(parts, p)
			walk(remaining-p, p)
			parts = parts[:len(parts)-1]
		}
	}
	walk(d, d)
	return out
}

// FakePassProbability returns the §2.3 probability that a type (II)
// exception occurs AND its fake distinct element survives the Procedure 3
// sub-universe check: TypeII · 1/n (the fake element is a uniform XOR sum,
// so it lands in the observed bin's sub-universe with probability 1/n).
func FakePassProbability(d int, n uint64) float64 {
	return Occupancy(d, n).TypeII / float64(n)
}
