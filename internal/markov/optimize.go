package markov

import (
	"fmt"
	"math"
)

// DefaultMGrid is the bitmap-size grid of §5.1: n = 2^m − 1 for
// m ∈ {6..11}, i.e. n ∈ {63, 127, 255, 511, 1023, 2047}.
var DefaultMGrid = []uint{6, 7, 8, 9, 10, 11}

// Params is an optimizer result: use an n = 2^M − 1 bit parity bitmap with
// BCH error-correction capacity T per group pair.
type Params struct {
	M uint // bitmap length is n = 2^M − 1
	T int  // BCH error-correction capacity

	// BitsPerGroup is the optimizer's objective value (t + δ)·m — the
	// non-constant part of Formula (1).
	BitsPerGroup int
	// Bound is the success-probability lower bound 1 − 2(1 − α^g) achieved.
	Bound float64
}

// N returns the bitmap length 2^M − 1.
func (p Params) N() uint64 { return (uint64(1) << p.M) - 1 }

// Optimize solves the §5.1 problem: among (n, t) combinations that
// guarantee Pr[R ≤ r] ≥ p0 for reconciling d distinct elements split into
// g = max(1, round(d/δ)) groups, return the one minimizing
// t·log n + δ·log n.
//
// The t range is the paper's 1.5δ..3.5δ. If no grid point is feasible the
// search widens (larger t, then larger m) rather than failing, so callers
// always get runnable parameters; the returned Bound tells them what was
// actually achieved.
func Optimize(d, delta, r int, p0 float64) (Params, error) {
	if d < 1 || delta < 1 || r < 1 {
		return Params{}, fmt.Errorf("markov: invalid optimizer inputs d=%d δ=%d r=%d", d, delta, r)
	}
	if p0 <= 0 || p0 >= 1 {
		return Params{}, fmt.Errorf("markov: target probability p0=%v out of (0,1)", p0)
	}
	g := NumGroups(d, delta)
	tLo := int(math.Ceil(1.5 * float64(delta)))
	tHi := int(math.Ceil(3.5 * float64(delta)))
	if best, ok := searchGrid(d, g, delta, r, p0, DefaultMGrid, tLo, tHi); ok {
		return best, nil
	}
	// Widen: bigger bitmaps first, then more correction capacity. This
	// matters only for aggressive targets (e.g. r = 1) outside the paper's
	// sweet spot.
	wideM := []uint{6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	for scale := 1; scale <= 4; scale *= 2 {
		if best, ok := searchGrid(d, g, delta, r, p0, wideM, tLo, tHi*scale); ok {
			return best, nil
		}
	}
	// Nothing met p0: return the best-bound configuration so the protocol
	// still runs; callers can inspect Bound.
	best, _ := searchBestBound(d, g, delta, r, wideM, tHi*4)
	return best, nil
}

// ReplanMGrid is the bitmap-size grid Replan searches. It reaches below
// DefaultMGrid because late-round scopes hold a handful of stragglers —
// a 15- or 31-bin bitmap is often plenty — and slightly above it for
// grossly mis-estimated scopes.
var ReplanMGrid = []uint{4, 5, 6, 7, 8, 9, 10, 11, 12}

// maxReplanLoad caps the per-scope load Replan models exactly. A scope
// holding more distinct elements than this should be (and is) rescued by
// the 3-way split, not by a bigger BCH code; the cap also bounds the
// O(t³) chain DP.
const maxReplanLoad = 256

// replanHeadroom is the extra BCH capacity Replan grants beyond the load
// estimate, so an off-by-a-couple estimate still decodes.
const replanHeadroom = 2

// Replan picks fresh per-round (m, t) parameters for the *next* round of
// an in-flight reconciliation, given an upper estimate of the heaviest
// surviving scope's unreconciled-element count ("load") and the number of
// further rounds the caller wants the survivors gone within. It is the
// online counterpart of Optimize: where Optimize plans r rounds ahead from
// a binomial split of d̂, Replan is called between rounds, when the decode
// outcomes have revealed the actual survivors.
//
// With capacity t ≥ load the chain models the scope exactly — every
// reachable state fits below the cap, so Pr[load →rounds 0] = (M^rounds)
// (load, 0) depends only on the bitmap size n. The objective (t + load)·m
// (Formula (1)'s non-constant part, with the realized load in place of δ)
// is therefore minimized by the smallest feasible bitmap with
// t = load + headroom. If even the largest grid bitmap cannot reach p0,
// Replan returns the best it found (largest n) with its achieved Bound;
// overload beyond that is the 3-way split path's job.
func Replan(load, rounds int, p0 float64) (Params, error) {
	if load < 1 {
		return Params{}, fmt.Errorf("markov: replan load=%d must be >= 1", load)
	}
	if rounds < 1 {
		return Params{}, fmt.Errorf("markov: replan rounds=%d must be >= 1", rounds)
	}
	if p0 <= 0 || p0 >= 1 {
		return Params{}, fmt.Errorf("markov: target probability p0=%v out of (0,1)", p0)
	}
	if load > maxReplanLoad {
		load = maxReplanLoad
	}
	t := load + replanHeadroom
	var best Params
	for _, m := range ReplanMGrid {
		n := (uint64(1) << m) - 1
		if uint64(t) > n/2 {
			continue
		}
		c, err := NewChain(n, t)
		if err != nil {
			continue
		}
		p := c.SuccessProb(load, rounds)
		best = Params{M: m, T: t, BitsPerGroup: (t + load) * int(m), Bound: p}
		if p >= p0 {
			return best, nil
		}
	}
	if best.M == 0 {
		return Params{}, fmt.Errorf("markov: replan load=%d exceeds every grid bitmap", load)
	}
	return best, nil
}

// NumGroups returns g = max(1, round(d/δ)) (§3).
func NumGroups(d, delta int) int {
	g := int(math.Round(float64(d) / float64(delta)))
	if g < 1 {
		g = 1
	}
	return g
}

func searchGrid(d, g, delta, r int, p0 float64, mGrid []uint, tLo, tHi int) (Params, bool) {
	var best Params
	found := false
	for _, m := range mGrid {
		n := (uint64(1) << m) - 1
		// The bound is (essentially) monotone in t, so probe the largest t
		// first: if even that is infeasible, skip this m entirely. The
		// first feasible t scanning upward then minimizes the objective
		// (t + δ)·m for this m.
		probe := tHi
		if uint64(probe) > n/2 {
			probe = int(n / 2)
		}
		if probe < tLo {
			continue
		}
		if c, err := NewChain(n, probe); err != nil || c.LowerBound(d, g, r) < p0 {
			continue
		}
		for t := tLo; t <= probe; t++ {
			c, err := NewChain(n, t)
			if err != nil {
				continue
			}
			bound := c.LowerBound(d, g, r)
			if bound < p0 {
				continue
			}
			obj := (t + delta) * int(m)
			if !found || obj < best.BitsPerGroup {
				best = Params{M: m, T: t, BitsPerGroup: obj, Bound: bound}
			}
			found = true
			break
		}
	}
	return best, found
}

func searchBestBound(d, g, delta, r int, mGrid []uint, tHi int) (Params, bool) {
	var best Params
	found := false
	for _, m := range mGrid {
		n := (uint64(1) << m) - 1
		for t := delta; t <= tHi; t++ {
			if uint64(t) > n/2 {
				continue
			}
			c, err := NewChain(n, t)
			if err != nil {
				continue
			}
			bound := c.LowerBound(d, g, r)
			if !found || bound > best.Bound {
				best = Params{M: m, T: t, BitsPerGroup: (t + delta) * int(m), Bound: bound}
				found = true
			}
		}
	}
	return best, found
}

// BoundTable computes the Table 1 (Appendix H) grid: the success-probability
// lower bound for every (n = 2^m − 1, t) combination. Rows are indexed by t
// and columns by m.
func BoundTable(d, delta, r int, ts []int, ms []uint) [][]float64 {
	g := NumGroups(d, delta)
	out := make([][]float64, len(ts))
	for i, t := range ts {
		out[i] = make([]float64, len(ms))
		for j, m := range ms {
			n := (uint64(1) << m) - 1
			c, err := NewChain(n, t)
			if err != nil {
				out[i][j] = math.NaN()
				continue
			}
			out[i][j] = c.LowerBound(d, g, r)
		}
	}
	return out
}
