package load

import (
	"testing"
	"time"

	"pbs"
	"pbs/internal/chaos"
)

// TestChaosSoakConverges is the in-process chaos soak: a fleet syncing
// through fault-injected connections (mid-frame drops, corruption,
// resets, stalls) under a retry policy must leave every worker fully
// reconciled — per-sync failures are expected casualties, unreconciled
// state is not. A second identical run must inject the identical fault
// stream (the determinism contract that makes chaos failures replayable).
func TestChaosSoakConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	opt := &pbs.Options{Seed: 7}
	cfg := Config{
		Workers:        8,
		SyncsPerWorker: 6,
		SetSize:        1200,
		DiffSize:       25,
		Churn:          5,
		Seed:           11,
		Verify:         true,
		Retry:          true,
		RetryAttempts:  6,
		SyncTimeout:    20 * time.Second,
		Options:        opt,
		Chaos: chaos.Config{
			Seed:        3,
			DropProb:    0.03,
			CorruptProb: 0.02,
			ResetProb:   0.02,
			StallProb:   0.03,
			Stall:       50 * time.Millisecond,
		},
	}
	_, addr := startServer(t, cfg, pbs.ServerOptions{Protocol: opt})
	cfg.Addr = addr

	run := func() *Report {
		t.Helper()
		rep, err := Run(t.Context(), cfg)
		if rep == nil {
			t.Fatalf("Run: %v", err)
		}
		if !rep.Chaos {
			t.Fatal("report does not flag the chaos run")
		}
		if rep.Unreconciled != 0 {
			t.Fatalf("%d workers unreconciled after the soak: %v (%d faults, %d retries)",
				rep.Unreconciled, rep.FirstError, rep.Faults, rep.Retries)
		}
		return rep
	}
	first := run()
	if first.Faults == 0 {
		t.Fatal("soak injected no faults — fault rates too low to exercise anything")
	}
	second := run()
	if second.Faults != first.Faults {
		t.Fatalf("fault stream not reproducible: %d then %d faults from the same seeds",
			first.Faults, second.Faults)
	}
}

// TestBusySheddingSoakConverges drives more reconnecting workers than the
// server admits: the watermark and hard cap shed the excess with busy
// hints, the retry policy honors them, and everyone still converges.
func TestBusySheddingSoakConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	opt := &pbs.Options{Seed: 13}
	cfg := Config{
		Workers:        8,
		SyncsPerWorker: 4,
		SetSize:        1200,
		DiffSize:       25,
		Seed:           17,
		Verify:         true,
		Reconnect:      true,
		Retry:          true,
		RetryAttempts:  8,
		SyncTimeout:    20 * time.Second,
		Options:        opt,
	}
	srv, addr := startServer(t, cfg, pbs.ServerOptions{
		Protocol:             opt,
		MaxSessions:          4,
		SoftSessionWatermark: 3,
		RetryAfterHint:       20 * time.Millisecond,
	})
	cfg.Addr = addr

	rep, err := Run(t.Context(), cfg)
	if rep == nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Unreconciled != 0 {
		t.Fatalf("%d workers unreconciled under shedding: %v", rep.Unreconciled, rep.FirstError)
	}
	if st := srv.Stats(); st.Rejected == 0 {
		t.Fatalf("overloaded server shed nothing: %+v", st)
	}
}
