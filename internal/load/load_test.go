package load

import (
	"context"
	"net"
	"testing"
	"time"

	"pbs"
	"pbs/internal/workload"
)

// startServer serves the B side of cfg's workload on a loopback listener
// and returns the server for stats inspection.
func startServer(t *testing.T, cfg Config, srvOpt pbs.ServerOptions) (*pbs.Server, string) {
	t.Helper()
	elems, err := ServerSet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var popt pbs.Options
	if srvOpt.Protocol != nil {
		popt = *srvOpt.Protocol
	}
	set, err := pbs.NewSet(elems, pbs.WithOptions(popt))
	if err != nil {
		t.Fatal(err)
	}
	srv := pbs.NewServer(srvOpt)
	if err := srv.RegisterSet(pbs.DefaultSetName, set); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// waitStats polls until the server has accounted every completed session
// (the client returns a beat before the server books the msgDone).
func waitStats(t *testing.T, srv *pbs.Server, completed int64) pbs.ServerStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if (st.Completed == completed && st.Active == 0) || time.Now().After(deadline) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunReconcilesWithServerStats is the loadgen-vs-server accounting
// test: a deterministic run whose client-observed counts — sessions,
// rounds, and wire bytes in both directions — must match the server's own
// counters and histograms exactly. Run under -race this also exercises
// many concurrent warm sessions against one live Set.
func TestRunReconcilesWithServerStats(t *testing.T) {
	opt := &pbs.Options{Seed: 99}
	cfg := Config{
		Workers:        20,
		SyncsPerWorker: 4,
		SetSize:        1500,
		DiffSize:       30,
		Churn:          7,
		Seed:           5,
		Verify:         true,
		Options:        opt,
	}
	srv, addr := startServer(t, cfg, pbs.ServerOptions{Protocol: opt})
	cfg.Addr = addr

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v (first error: %s)", err, rep.FirstError)
	}
	wantSyncs := int64(cfg.Workers * cfg.SyncsPerWorker)
	if rep.Syncs != wantSyncs || rep.Errors != 0 {
		t.Fatalf("syncs=%d errors=%d (first: %s), want %d/0", rep.Syncs, rep.Errors, rep.FirstError, wantSyncs)
	}
	if rep.LatencyUS.Count != wantSyncs {
		t.Fatalf("latency count %d, want %d", rep.LatencyUS.Count, wantSyncs)
	}
	if rep.LatencyUS.P50 > rep.LatencyUS.P95 || rep.LatencyUS.P95 > rep.LatencyUS.P99 ||
		rep.LatencyUS.P99 > float64(rep.LatencyUS.Max) {
		t.Fatalf("latency quantiles not monotone: %+v", rep.LatencyUS)
	}

	st := waitStats(t, srv, wantSyncs)

	// Client-observed counts must reconcile exactly with the server's.
	if st.Completed != wantSyncs {
		t.Fatalf("server completed %d, want %d (failed=%d rejected=%d)",
			st.Completed, wantSyncs, st.Failed, st.Rejected)
	}
	if st.Failed != 0 || st.Rejected != 0 {
		t.Fatalf("server failed=%d rejected=%d, want clean", st.Failed, st.Rejected)
	}
	if st.Rounds != rep.Rounds {
		t.Fatalf("server rounds %d != client rounds %d", st.Rounds, rep.Rounds)
	}
	if st.BytesIn != rep.BytesWritten {
		t.Fatalf("server BytesIn %d != client bytes written %d", st.BytesIn, rep.BytesWritten)
	}
	if st.BytesOut != rep.BytesRead {
		t.Fatalf("server BytesOut %d != client bytes read %d", st.BytesOut, rep.BytesRead)
	}

	// Every completed session must be in the server histograms, and the
	// byte histogram must account every wire byte of the run.
	if st.LatencyUS.Count != wantSyncs || st.SessionRounds.Count != wantSyncs ||
		st.SessionBytes.Count != wantSyncs {
		t.Fatalf("histogram counts %d/%d/%d, want %d", st.LatencyUS.Count,
			st.SessionRounds.Count, st.SessionBytes.Count, wantSyncs)
	}
	if st.SessionBytes.Sum != st.BytesIn+st.BytesOut {
		t.Fatalf("SessionBytes.Sum %d != BytesIn+BytesOut %d",
			st.SessionBytes.Sum, st.BytesIn+st.BytesOut)
	}
	if st.SessionRounds.Sum != st.Rounds {
		t.Fatalf("SessionRounds.Sum %d != Rounds %d", st.SessionRounds.Sum, st.Rounds)
	}

	// Warm connections: 20 workers, 80 sessions, exactly 20 dials.
	if st.Accepted != int64(cfg.Workers) {
		t.Fatalf("server accepted %d connections, want %d (warm reuse)", st.Accepted, cfg.Workers)
	}

	// The verified differences oscillate between DiffSize and
	// DiffSize+Churn under the parked-churn model.
	min := int64(cfg.DiffSize * cfg.Workers * cfg.SyncsPerWorker)
	max := int64((cfg.DiffSize + cfg.Churn) * cfg.Workers * cfg.SyncsPerWorker)
	if rep.DiffElements < min || rep.DiffElements > max {
		t.Fatalf("total diff elements %d outside [%d, %d]", rep.DiffElements, min, max)
	}
}

// TestRunReconnectMode covers the cold-client shape: every sync dials a
// fresh connection, so the server sees exactly one session per accepted
// connection.
func TestRunReconnectMode(t *testing.T) {
	opt := &pbs.Options{Seed: 3}
	cfg := Config{
		Workers:        5,
		SyncsPerWorker: 3,
		SetSize:        600,
		DiffSize:       10,
		Seed:           11,
		Reconnect:      true,
		Verify:         true,
		Options:        opt,
	}
	srv, addr := startServer(t, cfg, pbs.ServerOptions{Protocol: opt})
	cfg.Addr = addr

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int64(cfg.Workers * cfg.SyncsPerWorker)
	if rep.Syncs != want || rep.Errors != 0 {
		t.Fatalf("syncs=%d errors=%d (first: %s), want %d/0", rep.Syncs, rep.Errors, rep.FirstError, want)
	}
	st := waitStats(t, srv, want)
	if st.Completed != want {
		t.Fatalf("server completed %d, want %d", st.Completed, want)
	}
	if st.Accepted != want {
		t.Fatalf("server accepted %d connections, want %d (one per sync)", st.Accepted, want)
	}
}

// TestRunOpenLoopRate checks the open-loop pacer: a low target rate must
// throttle a fleet that could go much faster.
func TestRunOpenLoopRate(t *testing.T) {
	opt := &pbs.Options{Seed: 8}
	cfg := Config{
		Workers:  4,
		Duration: 1200 * time.Millisecond,
		SetSize:  300,
		DiffSize: 5,
		Seed:     2,
		Rate:     20, // ~24 tokens over the run, far below closed-loop capacity
		Options:  opt,
	}
	_, addr := startServer(t, cfg, pbs.ServerOptions{Protocol: opt})
	cfg.Addr = addr

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v (first error: %s)", err, rep.FirstError)
	}
	// Generous upper bound: the pacer must keep throughput near the target
	// rate, nowhere near what 4 unthrottled workers sustain (hundreds/s).
	if rep.SyncsPerSec > 2.5*cfg.Rate {
		t.Fatalf("open loop did not pace: %.1f syncs/s against a target of %.1f", rep.SyncsPerSec, cfg.Rate)
	}
	if rep.Syncs == 0 {
		t.Fatal("no syncs completed")
	}
}

// TestRunMuxMode covers the shared-connection shape: MuxStreams workers
// multiplex their syncs over each dialed socket, and the client-observed
// wire bytes must still reconcile exactly with the server's counters —
// the envelope overhead is on the wire, so both sides count it alike.
func TestRunMuxMode(t *testing.T) {
	opt := &pbs.Options{Seed: 21}
	cfg := Config{
		Workers:        16,
		SyncsPerWorker: 4,
		SetSize:        1000,
		DiffSize:       20,
		Churn:          5,
		Seed:           9,
		MuxStreams:     4,
		Verify:         true,
		Options:        opt,
	}
	srv, addr := startServer(t, cfg, pbs.ServerOptions{Protocol: opt})
	cfg.Addr = addr

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v (first error: %s)", err, rep.FirstError)
	}
	want := int64(cfg.Workers * cfg.SyncsPerWorker)
	if rep.Syncs != want || rep.Errors != 0 {
		t.Fatalf("syncs=%d errors=%d (first: %s), want %d/0", rep.Syncs, rep.Errors, rep.FirstError, want)
	}
	if rep.MuxStreams != cfg.MuxStreams || rep.MuxConns != cfg.Workers/cfg.MuxStreams {
		t.Fatalf("report mux shape %d/%d, want %d streams over %d conns",
			rep.MuxStreams, rep.MuxConns, cfg.MuxStreams, cfg.Workers/cfg.MuxStreams)
	}

	st := waitStats(t, srv, want)
	if st.Completed != want || st.Failed != 0 || st.Rejected != 0 {
		t.Fatalf("server completed=%d failed=%d rejected=%d, want %d/0/0",
			st.Completed, st.Failed, st.Rejected, want)
	}
	if st.StreamsTotal != want {
		t.Fatalf("server StreamsTotal %d, want %d (one stream per sync)", st.StreamsTotal, want)
	}
	if st.Accepted != int64(cfg.Workers/cfg.MuxStreams) {
		t.Fatalf("server accepted %d connections, want %d (one socket per group)",
			st.Accepted, cfg.Workers/cfg.MuxStreams)
	}
	if st.BytesIn != rep.BytesWritten {
		t.Fatalf("server BytesIn %d != client bytes written %d", st.BytesIn, rep.BytesWritten)
	}
	if st.BytesOut != rep.BytesRead {
		t.Fatalf("server BytesOut %d != client bytes read %d", st.BytesOut, rep.BytesRead)
	}
}

// TestRunBadAddress must fail loudly, not hang or report an empty success.
func TestRunBadAddress(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := Run(ctx, Config{
		Addr:           "127.0.0.1:1", // nothing listens here
		Workers:        2,
		SyncsPerWorker: 1,
		SetSize:        100,
		DiffSize:       5,
	})
	if err == nil {
		t.Fatal("Run against a dead address succeeded")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},                                     // no address
		{Addr: "x", Workers: -1},               // negative workers
		{Addr: "x", SetSize: 10, DiffSize: 20}, // diff > size
		{Addr: "x", Rate: -1},                  // negative rate
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestRunRetriesIdleDroppedWarmConn pins the open-loop/warm-connection
// interaction: a server is entitled to idle-drop a warm connection while
// a slowly-paced worker sits between syncs, and the worker must redial
// transparently instead of reporting the healthy server as failing.
func TestRunRetriesIdleDroppedWarmConn(t *testing.T) {
	opt := &pbs.Options{Seed: 12}
	cfg := Config{
		Workers:        2,
		SyncsPerWorker: 2,
		SetSize:        300,
		DiffSize:       5,
		Seed:           4,
		Rate:           4, // ~500ms between one worker's syncs
		Verify:         true,
		Options:        opt,
	}
	// Idle-drop warm connections far sooner than the pacing gap.
	srv, addr := startServer(t, cfg, pbs.ServerOptions{
		Protocol:    opt,
		IdleTimeout: 100 * time.Millisecond,
	})
	cfg.Addr = addr

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v (first error: %s)", err, rep.FirstError)
	}
	want := int64(cfg.Workers * cfg.SyncsPerWorker)
	if rep.Syncs != want || rep.Errors != 0 {
		t.Fatalf("syncs=%d errors=%d (first: %s), want %d/0",
			rep.Syncs, rep.Errors, rep.FirstError, want)
	}
	st := waitStats(t, srv, want)
	if st.Completed != want {
		t.Fatalf("server completed %d, want %d", st.Completed, want)
	}
}

// TestManySetsRun drives the many-sets mode end to end against a hosting
// server with a resident cap small enough to force evictions: 30 hosted
// sets, a fleet syncing random (zipf-skewed) catalog entries with
// verification on, and every sync must reconcile exactly DiffSize
// elements even when the target set is cold.
func TestManySetsRun(t *testing.T) {
	opt := &pbs.Options{Seed: 17}
	cfg := Config{
		Workers:        8,
		SyncsPerWorker: 6,
		SetSize:        400,
		DiffSize:       12,
		Seed:           9,
		Sets:           30,
		ZipfS:          1.3,
		Verify:         true,
		Options:        opt,
	}
	srv := pbs.NewServer(pbs.ServerOptions{
		Protocol:         opt,
		DataDir:          t.TempDir(),
		MaxResidentBytes: 20_000, // ~5 of 30 sets resident
	})
	if _, err := srv.EnableHosting(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Sets; i++ {
		if err := srv.Host(ManySetName(i), workload.ManySet(cfg.Seed, i, cfg.SetSize)); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	cfg.Addr = ln.Addr().String()

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d sync errors, first: %s", rep.Errors, rep.FirstError)
	}
	if want := int64(cfg.Workers * cfg.SyncsPerWorker); rep.Syncs != want {
		t.Fatalf("syncs = %d, want %d", rep.Syncs, want)
	}
	if want := rep.Syncs * int64(cfg.DiffSize); rep.DiffElements != want {
		t.Fatalf("diff elements = %d, want %d", rep.DiffElements, want)
	}
	st := srv.Stats()
	if st.SetsHosted != int64(cfg.Sets) {
		t.Fatalf("SetsHosted = %d, want %d", st.SetsHosted, cfg.Sets)
	}
	if st.Evictions == 0 || st.ColdLoads == 0 {
		t.Fatalf("eviction machinery idle: evictions=%d coldLoads=%d", st.Evictions, st.ColdLoads)
	}
	if st.ResidentBytes > 20_000+int64(cfg.SetSize*8+256) {
		t.Fatalf("resident bytes %d far above cap", st.ResidentBytes)
	}
}

// TestManySetsValidate pins the config rules of many-sets mode.
func TestManySetsValidate(t *testing.T) {
	base := Config{Addr: "x", Sets: 10}
	for _, bad := range []Config{
		{Addr: "x", Sets: -1},
		{Addr: "x", Sets: 10, SetName: "named"},
		{Addr: "x", Sets: 10, Churn: 5},
		{Addr: "x", ZipfS: 1.5},
		{Addr: "x", Sets: 10, ZipfS: 0.9},
	} {
		if err := bad.withDefaults().validate(); err == nil {
			t.Errorf("config %+v validated; want error", bad)
		}
	}
	if err := base.withDefaults().validate(); err != nil {
		t.Errorf("base many-sets config rejected: %v", err)
	}
}
