// Package load drives a pbs server with a fleet of concurrent warm
// clients and measures what it sustains: syncs/s, bytes/s, and the
// client-observed sync latency distribution. It is the capacity-
// measurement layer behind cmd/pbs-loadgen and the CI load smoke.
//
// Each worker holds a long-lived pbs.Set built once from the A side of a
// synthetic workload (the server serves the B side of the same workload,
// as pbs-serve -demo-* does) and reconciles it repeatedly: closed-loop
// (back to back, the saturation measurement) or open-loop against a
// target arrival rate. Between syncs a worker can churn its set through
// the incremental Add/Remove path — the mutation pattern a live
// deployment sees — and either hold one warm connection across syncs or
// redial for every sync. Every worker counts its own wire bytes through
// the connection, so a run's client-side totals are exactly reconcilable
// with the server's BytesIn/BytesOut counters.
package load

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pbs"
	"pbs/internal/chaos"
	"pbs/internal/hist"
	"pbs/internal/workload"
)

// Config parameterizes one load run against a running server.
type Config struct {
	// Addr is the server's host:port.
	Addr string
	// SetName addresses a named registry set ("" = the server default).
	SetName string

	// Workers is the number of concurrent clients (default 1). Closed-loop,
	// every worker keeps exactly one sync in flight, so Workers is also the
	// concurrent-session count the server sustains.
	Workers int
	// Duration bounds the run (default 10s). Ignored when SyncsPerWorker
	// is set.
	Duration time.Duration
	// SyncsPerWorker, when > 0, runs exactly this many syncs per worker
	// instead of a timed run — the deterministic mode tests use.
	SyncsPerWorker int

	// SetSize is |A|, the per-client set size (default 10000). The server
	// must serve the B side of the same workload: |B| = SetSize - DiffSize.
	SetSize int
	// DiffSize is the initial per-client difference |A△B| (default 100).
	DiffSize int
	// Churn is the number of elements toggled between consecutive syncs
	// through the Set's incremental Add/Remove path: each cycle removes
	// Churn random owned elements, the next re-adds them, so the measured
	// difference oscillates in [DiffSize, DiffSize+Churn] and stays
	// stationary over a long run.
	Churn int
	// Seed derives the workload; it must match the server's workload seed
	// (pbs-serve -demo-seed) for the sets to actually differ by DiffSize.
	Seed int64

	// Sets, when > 0, switches the run to many-sets mode: instead of every
	// worker syncing one default set, each sync targets a named hosted set
	// drawn from a catalog of Sets deterministic sets (workload.ManySet,
	// named by ManySetName). The server must host the same catalog
	// (pbs-serve -host-sets with a matching -demo-seed and a -host-size
	// equal to SetSize). The client side holds the set minus its first
	// DiffSize elements, so every sync reconciles exactly DiffSize
	// elements. Incompatible with SetName and Churn.
	Sets int
	// ZipfS skews the many-sets access pattern: set indexes are drawn from
	// a Zipf distribution with parameter s (> 1), so a few sets stay hot
	// while the long tail goes cold — the access shape that exercises the
	// server's residency/eviction machinery. 0 selects uniform access.
	ZipfS float64

	// Rate is the open-loop target arrival rate in syncs/s across all
	// workers; 0 selects closed-loop (every worker syncs back to back).
	Rate float64
	// MuxStreams, when > 1, shares dialed connections N-ways: workers are
	// partitioned into groups of MuxStreams, each group multiplexes its
	// syncs as concurrent streams over one negotiated connection, and a
	// run of W workers holds only ceil(W/MuxStreams) sockets. Requires a
	// server that grants multiplexing (protocol version 2).
	MuxStreams int
	// Compress offers lz frame compression during mux negotiation (only
	// meaningful with MuxStreams > 1; the server may decline).
	Compress bool
	// Reconnect dials a fresh connection for every sync (the cold-client
	// shape). Default false: each worker holds one warm connection and the
	// server carries its sessions in sequence.
	Reconnect bool
	// SyncTimeout bounds a single sync (default 30s).
	SyncTimeout time.Duration
	// Verify checks every learned difference against the exact expected
	// set (ground truth tracked through churn) and counts mismatches as
	// errors. Costs O(d) per sync.
	Verify bool
	// LegacySync disables the single-RTT fast path and measures the
	// multi-RTT protocol-0 flow (the pre-fast-path baseline shape).
	LegacySync bool

	// Chaos, when enabled, wraps every client connection in the seeded
	// fault injector: drops, resets, corruption, stalls, latency, and
	// bandwidth shaping per chaos.Config. Per-connection seeds derive
	// deterministically from Chaos.Seed, the worker id, and the worker's
	// dial count, so a run's fault pattern is reproducible. Chaos.OnFault
	// is overridden by the run's own fault counter.
	Chaos chaos.Config
	// Retry syncs under a pbs.RetryPolicy (redial per attempt, exponential
	// backoff, retry-after hints honored) — the resilient-client shape a
	// chaos run measures. Sync errors then mean the retry budget was
	// exhausted, not a single connection failure.
	Retry bool
	// RetryAttempts overrides the retry policy's attempt budget
	// (0 = the pbs default).
	RetryAttempts int

	// Options is the protocol configuration; it must match the server's.
	Options *pbs.Options
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.SetSize == 0 {
		c.SetSize = 10000
	}
	if c.DiffSize == 0 {
		c.DiffSize = 100
	}
	if c.SyncTimeout == 0 {
		c.SyncTimeout = 30 * time.Second
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Addr == "":
		return fmt.Errorf("load: no server address")
	case c.Workers < 0 || c.SetSize < 0 || c.DiffSize < 0 || c.Churn < 0:
		return fmt.Errorf("load: negative workers/size/diff/churn")
	case c.DiffSize > c.SetSize:
		return fmt.Errorf("load: diff %d exceeds set size %d", c.DiffSize, c.SetSize)
	case c.Rate < 0:
		return fmt.Errorf("load: negative rate")
	case c.MuxStreams < 0:
		return fmt.Errorf("load: negative mux streams")
	case c.MuxStreams > 1 && c.Reconnect:
		return fmt.Errorf("load: mux shares warm connections; -reconnect contradicts it")
	case c.MuxStreams > 1 && c.LegacySync:
		return fmt.Errorf("load: mux negotiation requires the fast-path sync")
	case c.Compress && c.MuxStreams <= 1:
		return fmt.Errorf("load: compression is negotiated per mux connection; set MuxStreams > 1")
	case c.Sets < 0:
		return fmt.Errorf("load: negative set count")
	case c.Sets > 0 && c.SetName != "":
		return fmt.Errorf("load: many-sets mode names its own sets; SetName contradicts it")
	case c.Sets > 0 && c.Churn > 0:
		return fmt.Errorf("load: many-sets mode rebuilds the set per sync; churn contradicts it")
	case c.ZipfS != 0 && c.Sets == 0:
		return fmt.Errorf("load: zipf skew requires many-sets mode (Sets > 0)")
	case c.ZipfS != 0 && c.ZipfS <= 1:
		return fmt.Errorf("load: zipf parameter must exceed 1 (got %g)", c.ZipfS)
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	return nil
}

// ManySetName returns the registry name of set idx in a many-sets run.
// pbs-serve -host-sets registers the same names, so a loadgen fleet and a
// server agree on the catalog by construction.
func ManySetName(idx int) string {
	return fmt.Sprintf("bench/s%06d", idx)
}

// LatencySummary digests the client-observed sync latency distribution,
// in microseconds.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
}

// Report is the machine-readable outcome of a run (the BENCH_load.json
// payload).
type Report struct {
	Workers    int     `json:"workers"`
	SetSize    int     `json:"set_size"`
	DiffSize   int     `json:"diff_size"`
	Churn      int     `json:"churn"`
	Rate       float64 `json:"rate_target"` // 0 = closed loop
	Reconnect  bool    `json:"reconnect"`
	FastSync   bool    `json:"fast_sync"`             // single-RTT fast path in use
	MuxStreams int     `json:"mux_streams,omitempty"` // streams per shared connection (0 = unmuxed)
	MuxConns   int     `json:"mux_conns,omitempty"`   // shared connections the muxed fleet rides
	Sets       int     `json:"sets,omitempty"`        // many-sets catalog size (0 = single-set mode)
	ZipfS      float64 `json:"zipf_s,omitempty"`      // many-sets access skew (0 = uniform)

	DurationSec  float64        `json:"duration_sec"`
	Syncs        int64          `json:"syncs"`
	Errors       int64          `json:"errors"`
	SyncsPerSec  float64        `json:"syncs_per_sec"`
	BytesRead    int64          `json:"bytes_read"`    // client-observed, = server BytesOut
	BytesWritten int64          `json:"bytes_written"` // client-observed, = server BytesIn
	BytesPerSec  float64        `json:"bytes_per_sec"` // both directions
	Rounds       int64          `json:"rounds"`
	DiffElements int64          `json:"diff_elements"`
	LatencyUS    LatencySummary `json:"latency_us"`

	// Chaos-run outcome. Faults counts injected connection faults,
	// Retries the retry attempts the fleet spent recovering from them,
	// and Unreconciled the workers whose final fault-free convergence
	// check failed — the number that must be zero for a chaos soak to
	// pass (per-sync Errors are expected casualties under injection).
	Chaos        bool  `json:"chaos"`
	Faults       int64 `json:"faults_injected"`
	Retries      int64 `json:"retries"`
	Unreconciled int64 `json:"unreconciled"`

	// FirstError samples the first failure for diagnostics ("" when clean).
	FirstError string `json:"first_error,omitempty"`
}

// countingConn tallies wire bytes as they cross the connection, so the
// client side knows exactly what the server's BytesIn/BytesOut counters
// saw (frame headers included).
type countingConn struct {
	net.Conn
	r, w *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.r.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.w.Add(int64(n))
	return n, err
}

// muxGroup is one shared, lazily dialed multiplexed connection carrying
// the syncs of MuxStreams workers as concurrent streams.
type muxGroup struct {
	mu sync.Mutex
	mc *pbs.MuxConn
}

// stream returns a fresh stream on the group's shared connection, dialing
// it on first use or after a drop. The MuxConn is resolved under the lock
// but Stream blocks outside it — every stream past the first waits on the
// negotiating sync's hello reply, and holding the lock there would
// serialize the whole group behind one round trip.
func (g *muxGroup) stream(ctx context.Context, w *worker, bytesR, bytesW *atomic.Int64) (*pbs.MuxStream, *pbs.MuxConn, error) {
	for attempt := 0; ; attempt++ {
		g.mu.Lock()
		mc := g.mc
		if mc == nil {
			conn, err := w.dialConn(ctx, bytesR, bytesW)
			if err != nil {
				g.mu.Unlock()
				return nil, nil, err
			}
			mc = pbs.NewMuxConn(conn, pbs.WithMuxCompression(w.cfg.Compress))
			g.mc = mc
		}
		g.mu.Unlock()
		st, err := mc.Stream()
		if err == nil {
			return st, mc, nil
		}
		// A dead or exhausted connection gets replaced once; a second
		// failure (or a peer that declined mux outright) is the caller's
		// error to count.
		g.drop(mc)
		if attempt > 0 || errors.Is(err, pbs.ErrMuxDeclined) {
			return nil, nil, err
		}
	}
}

// drop discards the group's connection after a failure so the next stream
// redials. Only the current connection is dropped — a sibling worker may
// already have replaced it.
func (g *muxGroup) drop(mc *pbs.MuxConn) {
	g.mu.Lock()
	if g.mc == mc {
		g.mc = nil
	}
	g.mu.Unlock()
	mc.Close()
}

func (g *muxGroup) close() {
	g.mu.Lock()
	mc := g.mc
	g.mc = nil
	g.mu.Unlock()
	if mc != nil {
		mc.Close()
	}
}

// worker is one concurrent client: a warm Set, its churn state, and its
// (possibly persistent) connection.
type worker struct {
	id    int
	cfg   *Config
	set   *pbs.Set
	rng   *rand.Rand
	conn  net.Conn
	group *muxGroup // non-nil in mux mode: the shared connection pool slot

	elems  []uint64 // mutable mirror of the owned elements, for sampling
	parked []uint64 // currently-removed churn elements
	expect map[uint64]struct{}

	zipf    *rand.Zipf // many-sets skewed index source (nil = uniform)
	curName string     // many-sets: registry name of the set this sync targets

	dials uint64 // connections opened, keys the per-conn chaos seed

	syncs   atomic.Int64
	errs    atomic.Int64
	rounds  atomic.Int64
	diffs   atomic.Int64
	retries atomic.Int64
	faults  atomic.Int64
}

// dialConn opens one connection for the worker, wrapping it in the byte
// counter and, when configured, the chaos injector with a per-connection
// deterministic identity.
func (w *worker) dialConn(ctx context.Context, bytesR, bytesW *atomic.Int64) (net.Conn, error) {
	conn, err := dial(ctx, w.cfg.Addr)
	if err != nil {
		return nil, err
	}
	w.dials++
	var wrapped net.Conn = countingConn{Conn: conn, r: bytesR, w: bytesW}
	if w.cfg.Chaos.Enabled() {
		id := uint64(w.id)*1_000_003 + w.dials
		ccfg := w.cfg.Chaos
		ccfg.OnFault = func(chaos.Event) { w.faults.Add(1) }
		wrapped = chaos.Wrap(wrapped, ccfg, id)
	}
	return wrapped, nil
}

// Run executes one load run and aggregates the fleet's measurements. It
// returns an error only when the run could not measure anything (bad
// config, or not one sync succeeded); individual sync failures are
// counted in Report.Errors and sampled in Report.FirstError.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var pair *workload.Pair
	if cfg.Sets == 0 {
		var err error
		pair, err = workload.Generate(workload.Config{
			UniverseBits: 32, SizeA: cfg.SetSize, D: cfg.DiffSize, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
	}

	var groups []*muxGroup
	if cfg.MuxStreams > 1 {
		groups = make([]*muxGroup, (cfg.Workers+cfg.MuxStreams-1)/cfg.MuxStreams)
		for i := range groups {
			groups[i] = &muxGroup{}
		}
		defer func() {
			for _, g := range groups {
				g.close()
			}
		}()
	}

	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		w := &worker{
			id:  i,
			cfg: &cfg,
			rng: rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(i)*0x9E3779B97F4A7C15))),
		}
		if groups != nil {
			w.group = groups[i/cfg.MuxStreams]
		}
		if cfg.Sets > 0 {
			// Many-sets mode: the worker builds a fresh set per sync in
			// pickSet; here it only needs its index distribution.
			if cfg.ZipfS > 1 {
				w.zipf = rand.NewZipf(w.rng, cfg.ZipfS, 1, uint64(cfg.Sets-1))
			}
		} else {
			set, err := pbs.NewSet(pair.A, baseOption(cfg.Options))
			if err != nil {
				return nil, err
			}
			w.set = set
			w.elems = append([]uint64(nil), pair.A...)
			if cfg.Verify {
				w.expect = make(map[uint64]struct{}, len(pair.Diff))
				for _, x := range pair.Diff {
					w.expect[x] = struct{}{}
				}
			}
		}
		workers[i] = w
	}

	// runCtx is always cancelled when Run returns (not only in timed
	// mode), so the pacer goroutine below can never outlive the run.
	var (
		runCtx context.Context
		cancel context.CancelFunc
	)
	if cfg.SyncsPerWorker > 0 {
		runCtx, cancel = context.WithCancel(ctx)
	} else {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
	}
	defer cancel()

	// Open-loop pacing: one shared token stream at the target rate. A full
	// buffer means the fleet is lagging the offered rate; dropped tokens
	// keep the arrival process from bursting unboundedly when it catches
	// up.
	var tokens chan struct{}
	if cfg.Rate > 0 {
		tokens = make(chan struct{}, cfg.Workers)
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		tk := time.NewTicker(interval)
		defer tk.Stop()
		go func() {
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tk.C:
					select {
					case tokens <- struct{}{}:
					default:
					}
				}
			}
		}()
	}

	var (
		latency  hist.Histogram
		bytesR   atomic.Int64
		bytesW   atomic.Int64
		firstErr atomic.Pointer[string]
		wg       sync.WaitGroup
	)
	recordErr := func(err error) {
		msg := err.Error()
		firstErr.CompareAndSwap(nil, &msg)
	}

	start := time.Now()
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer w.closeConn()
			for n := 0; cfg.SyncsPerWorker <= 0 || n < cfg.SyncsPerWorker; n++ {
				if runCtx.Err() != nil {
					return
				}
				if tokens != nil {
					select {
					case <-runCtx.Done():
						return
					case <-tokens:
					}
				}
				if cfg.Sets > 0 {
					if err := w.pickSet(); err != nil {
						w.errs.Add(1)
						recordErr(fmt.Errorf("worker %d sync %d: %w", w.id, n, err))
						return
					}
				} else if n > 0 {
					w.churn()
				}
				// Syncs run under the caller's context, not the run
				// deadline: at the deadline the fleet stops *starting*
				// syncs and drains the in-flight ones (bounded by
				// SyncTimeout), so a timed run ends with zero half-aborted
				// server sessions.
				err := w.sync(ctx, &latency, &bytesR, &bytesW)
				if err != nil {
					// A cancellation from the caller is the run being torn
					// down, not a server failure.
					if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
						return
					}
					w.errs.Add(1)
					recordErr(fmt.Errorf("worker %d sync %d: %w", w.id, n, err))
					w.closeConn()
					select {
					case <-runCtx.Done():
						return
					case <-time.After(10 * time.Millisecond):
					}
					continue
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// After a fault-injected (or retrying) run, prove convergence: every
	// worker must reconcile exactly against ground truth over a clean,
	// fault-free connection. This is the chaos soak's pass criterion —
	// per-sync errors under injection are expected casualties, but a
	// worker that cannot reach the correct difference once the faults
	// stop means data was lost.
	var unreconciled atomic.Int64
	if cfg.Verify && (cfg.Chaos.Enabled() || cfg.Retry) {
		var cwg sync.WaitGroup
		for _, w := range workers {
			cwg.Add(1)
			go func(w *worker) {
				defer cwg.Done()
				if err := w.converge(ctx, &bytesR, &bytesW); err != nil {
					unreconciled.Add(1)
					recordErr(fmt.Errorf("worker %d unreconciled: %w", w.id, err))
				}
			}(w)
		}
		cwg.Wait()
	}

	rep := &Report{
		Workers:   cfg.Workers,
		SetSize:   cfg.SetSize,
		DiffSize:  cfg.DiffSize,
		Churn:     cfg.Churn,
		Rate:      cfg.Rate,
		Reconnect: cfg.Reconnect,
		FastSync:  !cfg.LegacySync,

		DurationSec:  elapsed.Seconds(),
		BytesRead:    bytesR.Load(),
		BytesWritten: bytesW.Load(),
	}
	if cfg.MuxStreams > 1 {
		rep.MuxStreams = cfg.MuxStreams
		rep.MuxConns = len(groups)
	}
	rep.Sets = cfg.Sets
	rep.ZipfS = cfg.ZipfS
	rep.Chaos = cfg.Chaos.Enabled()
	rep.Unreconciled = unreconciled.Load()
	for _, w := range workers {
		rep.Syncs += w.syncs.Load()
		rep.Errors += w.errs.Load()
		rep.Rounds += w.rounds.Load()
		rep.DiffElements += w.diffs.Load()
		rep.Retries += w.retries.Load()
		rep.Faults += w.faults.Load()
	}
	if sec := elapsed.Seconds(); sec > 0 {
		rep.SyncsPerSec = float64(rep.Syncs) / sec
		rep.BytesPerSec = float64(rep.BytesRead+rep.BytesWritten) / sec
	}
	snap := latency.Snapshot()
	rep.LatencyUS = LatencySummary{
		Count: snap.Count,
		P50:   snap.Quantile(0.50),
		P95:   snap.Quantile(0.95),
		P99:   snap.Quantile(0.99),
		Max:   snap.Max,
	}
	if snap.Count > 0 {
		rep.LatencyUS.Mean = float64(snap.Sum) / float64(snap.Count)
	}
	if msg := firstErr.Load(); msg != nil {
		rep.FirstError = *msg
	}
	if rep.Syncs == 0 {
		if rep.FirstError != "" {
			return rep, fmt.Errorf("load: no sync succeeded: %s", rep.FirstError)
		}
		return rep, fmt.Errorf("load: no sync completed within the run")
	}
	return rep, nil
}

// pickSet points the worker at the next catalog set for a many-sets
// sync: it draws an index (zipf-skewed or uniform), rebuilds the local
// set as the catalog set minus its first DiffSize elements, and tracks
// those withheld elements as the exact expected difference. The rebuild
// is the per-sync client cost of hosting-scale runs — it models a fresh
// client arriving for a set, which is exactly the access pattern that
// drives the server's cold-load and eviction machinery.
func (w *worker) pickSet() error {
	cfg := w.cfg
	var idx int
	if w.zipf != nil {
		idx = int(w.zipf.Uint64())
	} else {
		idx = w.rng.Intn(cfg.Sets)
	}
	full := workload.ManySet(cfg.Seed, idx, cfg.SetSize)
	set, err := pbs.NewSet(full[cfg.DiffSize:], baseOption(cfg.Options))
	if err != nil {
		return err
	}
	w.set = set
	w.curName = ManySetName(idx)
	if cfg.Verify {
		w.expect = make(map[uint64]struct{}, cfg.DiffSize)
		for _, x := range full[:cfg.DiffSize] {
			w.expect[x] = struct{}{}
		}
	}
	return nil
}

// setName resolves the registry name this worker's next sync addresses:
// the per-sync catalog name in many-sets mode, else the configured one.
func (w *worker) setName() string {
	if w.cfg.Sets > 0 {
		return w.curName
	}
	return w.cfg.SetName
}

// sync runs one reconciliation, dialing if the worker holds no connection
// (or redials every time under Reconnect). A failure on a *reused* warm
// connection gets one transparent retry on a fresh one: a server is
// entitled to idle-drop a warm connection between paced syncs (open-loop
// runs at low per-worker rates sit idle longer than the server's
// IdleTimeout), and that is connection hygiene, not a measurement of the
// server failing.
func (w *worker) sync(ctx context.Context, latency *hist.Histogram, bytesR, bytesW *atomic.Int64) error {
	cfg := w.cfg
	syncCtx, cancel := context.WithTimeout(ctx, cfg.SyncTimeout)
	defer cancel()
	opts := []pbs.Option{pbs.WithFastSync(!cfg.LegacySync)}
	if name := w.setName(); name != "" {
		opts = append(opts, pbs.WithSetName(name))
	}
	if w.group != nil {
		return w.syncMux(ctx, syncCtx, opts, latency, bytesR, bytesW)
	}
	if cfg.Retry {
		// Resilient-client mode: Sync owns the connection lifecycle,
		// dialing (and closing) each attempt through the policy's hook.
		w.closeConn()
		pol := pbs.RetryPolicy{
			MaxAttempts: cfg.RetryAttempts,
			Dial: func(ctx context.Context) (net.Conn, error) {
				return w.dialConn(ctx, bytesR, bytesW)
			},
			OnRetry: func(int, error, time.Duration) { w.retries.Add(1) },
		}
		start := time.Now()
		res, err := w.set.Sync(syncCtx, nil, append(opts, pbs.WithRetry(pol))...)
		if err != nil {
			return err
		}
		return w.finish(res, time.Since(start), latency)
	}
	reused := w.conn != nil && !cfg.Reconnect
	if w.conn == nil || cfg.Reconnect {
		w.closeConn()
		conn, err := w.dialConn(ctx, bytesR, bytesW)
		if err != nil {
			return err
		}
		w.conn = conn
	}
	start := time.Now()
	res, err := w.set.Sync(syncCtx, w.conn, opts...)
	elapsed := time.Since(start)
	if err != nil && reused && ctx.Err() == nil {
		w.closeConn()
		conn, derr := w.dialConn(syncCtx, bytesR, bytesW)
		if derr != nil {
			return err // report the sync failure, not the retry dial
		}
		w.conn = conn
		start = time.Now()
		res, err = w.set.Sync(syncCtx, w.conn, opts...)
		elapsed = time.Since(start)
	}
	if err != nil {
		return err
	}
	return w.finish(res, elapsed, latency)
}

// syncMux runs one reconciliation as a stream on the worker's shared
// group connection. Each sync takes a fresh single-use stream; a failed
// sync drops the whole group connection (its framing can no longer be
// trusted) and the group's next stream redials. Under Retry, the policy's
// Dial hands out streams instead of sockets, so attempts are retried
// without re-dialing while the connection itself stays healthy.
func (w *worker) syncMux(ctx, syncCtx context.Context, opts []pbs.Option, latency *hist.Histogram, bytesR, bytesW *atomic.Int64) error {
	if w.cfg.Retry {
		pol := pbs.RetryPolicy{
			MaxAttempts: w.cfg.RetryAttempts,
			Dial: func(ctx context.Context) (net.Conn, error) {
				st, _, err := w.group.stream(ctx, w, bytesR, bytesW)
				return st, err
			},
			OnRetry: func(int, error, time.Duration) { w.retries.Add(1) },
		}
		start := time.Now()
		res, err := w.set.Sync(syncCtx, nil, append(opts, pbs.WithRetry(pol))...)
		if err != nil {
			return err
		}
		return w.finish(res, time.Since(start), latency)
	}
	st, mc, err := w.group.stream(ctx, w, bytesR, bytesW)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := w.set.Sync(syncCtx, st, opts...)
	st.Close()
	if err != nil {
		w.group.drop(mc)
		return err
	}
	return w.finish(res, time.Since(start), latency)
}

// finish applies the post-sync bookkeeping shared by both connection
// modes: completion check, ground-truth verification, and measurement.
func (w *worker) finish(res *pbs.Result, elapsed time.Duration, latency *hist.Histogram) error {
	if !res.Complete {
		return fmt.Errorf("incomplete after %d rounds", res.Rounds)
	}
	if w.cfg.Verify {
		if err := w.verify(res.Difference); err != nil {
			return err
		}
	}
	latency.Record(uint64(w.id), elapsed.Microseconds())
	w.syncs.Add(1)
	w.rounds.Add(int64(res.Rounds))
	w.diffs.Add(int64(len(res.Difference)))
	return nil
}

// converge runs one fault-free, retried reconciliation against ground
// truth — the post-chaos convergence proof. The worker's connection (which
// may carry a chaos wrapper) is discarded; the attempts dial clean.
func (w *worker) converge(ctx context.Context, bytesR, bytesW *atomic.Int64) error {
	w.closeConn()
	ctx, cancel := context.WithTimeout(ctx, w.cfg.SyncTimeout)
	defer cancel()
	opts := []pbs.Option{pbs.WithFastSync(!w.cfg.LegacySync)}
	if name := w.setName(); name != "" {
		opts = append(opts, pbs.WithSetName(name))
	}
	pol := pbs.RetryPolicy{
		MaxAttempts: 6,
		Dial: func(ctx context.Context) (net.Conn, error) {
			conn, err := dial(ctx, w.cfg.Addr)
			if err != nil {
				return nil, err
			}
			return countingConn{Conn: conn, r: bytesR, w: bytesW}, nil
		},
	}
	res, err := w.set.Sync(ctx, nil, append(opts, pbs.WithRetry(pol))...)
	if err != nil {
		return err
	}
	if !res.Complete {
		return fmt.Errorf("incomplete after %d rounds", res.Rounds)
	}
	return w.verify(res.Difference)
}

// churn toggles Churn elements through the incremental Add/Remove path:
// one cycle removes a random sample, the next restores it.
func (w *worker) churn() {
	k := w.cfg.Churn
	if k <= 0 {
		return
	}
	if len(w.parked) > 0 {
		if _, err := w.set.Add(w.parked...); err == nil {
			w.elems = append(w.elems, w.parked...)
			for _, x := range w.parked {
				w.toggleExpect(x)
			}
		}
		w.parked = w.parked[:0]
		return
	}
	if k > len(w.elems) {
		k = len(w.elems)
	}
	for j := 0; j < k; j++ {
		i := w.rng.Intn(len(w.elems))
		w.parked = append(w.parked, w.elems[i])
		w.elems[i] = w.elems[len(w.elems)-1]
		w.elems = w.elems[:len(w.elems)-1]
	}
	w.set.Remove(w.parked...)
	for _, x := range w.parked {
		w.toggleExpect(x)
	}
}

// toggleExpect maintains the exact expected difference under churn: every
// membership toggle on the local set toggles the element's membership in
// A△B (the server's set never changes).
func (w *worker) toggleExpect(x uint64) {
	if w.expect == nil {
		return
	}
	if _, ok := w.expect[x]; ok {
		delete(w.expect, x)
	} else {
		w.expect[x] = struct{}{}
	}
}

// verify checks a learned difference against the tracked ground truth.
func (w *worker) verify(diff []uint64) error {
	if len(diff) != len(w.expect) {
		return fmt.Errorf("difference mismatch: got %d elements, want %d", len(diff), len(w.expect))
	}
	for _, x := range diff {
		if _, ok := w.expect[x]; !ok {
			return fmt.Errorf("difference contains unexpected element %#x", x)
		}
	}
	return nil
}

// dial opens one connection to the server with TCP_NODELAY set explicitly
// — the latency measurement depends on it, so it is not left to defaults.
func dial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return conn, nil
}

func (w *worker) closeConn() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
}

// baseOption adapts an optional *pbs.Options into the Set constructor's
// functional-option form (a zero Options resolves to the defaults, same
// as nil).
func baseOption(o *pbs.Options) pbs.Option {
	if o == nil {
		return pbs.WithOptions(pbs.Options{})
	}
	return pbs.WithOptions(*o)
}

// ServerSet returns the element slice the server must serve so that
// clients built by Run (same Config) differ from it by exactly DiffSize:
// the B side of the shared workload. cmd/pbs-serve's -demo-* flags
// compute the same thing; this helper is for in-process servers (tests,
// benchmarks).
func ServerSet(cfg Config) ([]uint64, error) {
	cfg = cfg.withDefaults()
	pair, err := workload.Generate(workload.Config{
		UniverseBits: 32, SizeA: cfg.SetSize, D: cfg.DiffSize, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return append([]uint64(nil), pair.B...), nil
}

// String renders the human-readable run summary pbs-loadgen prints.
func (r *Report) String() string {
	mode := "closed-loop"
	if r.Rate > 0 {
		mode = fmt.Sprintf("open-loop %.0f/s", r.Rate)
	}
	conn := "warm conns"
	if r.Reconnect {
		conn = "reconnect"
	}
	if r.MuxStreams > 1 {
		conn = fmt.Sprintf("mux %d streams/conn over %d conns", r.MuxStreams, r.MuxConns)
	}
	shape := fmt.Sprintf("|A|=%d d=%d churn=%d", r.SetSize, r.DiffSize, r.Churn)
	if r.Sets > 0 {
		dist := "uniform"
		if r.ZipfS > 0 {
			dist = fmt.Sprintf("zipf s=%g", r.ZipfS)
		}
		shape = fmt.Sprintf("%d sets (%s) size=%d d=%d", r.Sets, dist, r.SetSize, r.DiffSize)
	}
	s := fmt.Sprintf(
		"%d workers (%s, %s), %s: %d syncs (%d errors) in %.2fs = %.1f syncs/s, %.2f MB/s; latency p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		r.Workers, mode, conn, shape,
		r.Syncs, r.Errors, r.DurationSec, r.SyncsPerSec,
		r.BytesPerSec/1e6,
		r.LatencyUS.P50/1e3, r.LatencyUS.P95/1e3, r.LatencyUS.P99/1e3,
		float64(r.LatencyUS.Max)/1e3)
	if r.Chaos || r.Retries > 0 || r.Unreconciled > 0 {
		s += fmt.Sprintf("; chaos: %d faults injected, %d retries, %d unreconciled",
			r.Faults, r.Retries, r.Unreconciled)
	}
	return s
}
