// Package msethash implements an incremental multiset hash in the style of
// MSet-Add-Hash (Clarke et al., ASIACRYPT 2003), the stronger verification
// option §2.2.3 of the PBS paper suggests for mission-critical deployments:
// instead of the plain-sum checksum, Alice and Bob compare H(A△D̂) with
// H(B), where H hashes each element through a one-way function before
// accumulating.
//
// The accumulator is addition of per-element 256-bit digests modulo 2^256.
// Toggling an element in and out cancels exactly, so the hash supports the
// same incremental maintenance as PBS's plain checksum while making
// engineered collisions as hard as finding additive relations among
// one-way-function outputs.
//
// The per-element one-way function is SHA-256-like in structure but
// implemented here from scratch over the stdlib (crypto/sha256 would also
// do; we avoid importing crypto to keep the module's footprint explicit and
// the function seedable).
package msethash

import (
	"encoding/binary"
	"math/bits"

	"pbs/internal/hashutil"
)

// Digest is a 256-bit accumulator: four little-endian 64-bit limbs.
type Digest [4]uint64

// Hash accumulates a multiset of uint64 elements under a seed. Both parties
// must use the same seed. The zero Hash is an empty multiset.
type Hash struct {
	seed uint64
	acc  Digest
}

// New returns an empty multiset hash under seed.
func New(seed uint64) *Hash { return &Hash{seed: seed} }

// FromDigest returns a Hash whose accumulator resumes from a previously
// computed digest — the incremental continuation a cached whole-set digest
// enables: H(A △ D) is derived from the stored H(A) by toggling only the
// elements of D instead of re-hashing all of A.
func FromDigest(seed uint64, d Digest) *Hash { return &Hash{seed: seed, acc: d} }

// elementDigest expands x into a 256-bit pseudorandom value using four
// domain-separated xxHash64 invocations whitened through SplitMix64. This
// is the "one-way hash applied to each element first" of §2.2.3 footnote 1.
func (h *Hash) elementDigest(x uint64) Digest {
	var d Digest
	for i := range d {
		s := hashutil.XXH64Uint64(x, h.seed+uint64(i)*0x9E3779B97F4A7C15+1)
		// One extra mixing round decorrelates the limbs further.
		d[i] = hashutil.SplitMix64(&s)
	}
	return d
}

// Add accumulates one occurrence of x.
func (h *Hash) Add(x uint64) {
	d := h.elementDigest(x)
	var carry uint64
	for i := range h.acc {
		h.acc[i], carry = add64(h.acc[i], d[i], carry)
	}
}

// Remove cancels one occurrence of x (x need not be present; multiset
// counts may go transiently negative mod 2^256).
func (h *Hash) Remove(x uint64) {
	d := h.elementDigest(x)
	var borrow uint64
	for i := range h.acc {
		h.acc[i], borrow = sub64(h.acc[i], d[i], borrow)
	}
}

// Toggle adds x if present is false and removes it if true; it returns the
// flipped membership. Convenient for PBS-style XOR-toggle maintenance.
func (h *Hash) Toggle(x uint64, present bool) bool {
	if present {
		h.Remove(x)
		return false
	}
	h.Add(x)
	return true
}

// AddSet accumulates every element of set.
func (h *Hash) AddSet(set []uint64) {
	for _, x := range set {
		h.Add(x)
	}
}

// Sum returns the current 256-bit digest.
func (h *Hash) Sum() Digest { return h.acc }

// Equal reports whether two hashes (under the same seed) agree.
func (h *Hash) Equal(other *Hash) bool {
	return h.seed == other.seed && h.acc == other.acc
}

// Bytes serializes the digest (32 bytes, little-endian limbs).
func (d Digest) Bytes() []byte {
	out := make([]byte, 32)
	for i, limb := range d {
		binary.LittleEndian.PutUint64(out[i*8:], limb)
	}
	return out
}

// DigestFromBytes parses a 32-byte digest.
func DigestFromBytes(b []byte) (Digest, bool) {
	if len(b) != 32 {
		return Digest{}, false
	}
	var d Digest
	for i := range d {
		d[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return d, true
}

// IsZero reports whether the digest is the empty-multiset digest.
func (d Digest) IsZero() bool { return d == Digest{} }

func add64(a, b, carryIn uint64) (sum, carryOut uint64) {
	sum, c := bits.Add64(a, b, carryIn)
	return sum, c
}

func sub64(a, b, borrowIn uint64) (diff, borrowOut uint64) {
	diff, bo := bits.Sub64(a, b, borrowIn)
	return diff, bo
}
