package msethash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrderIndependence(t *testing.T) {
	xs := []uint64{5, 9, 1 << 40, 77, 3}
	a := New(1)
	b := New(1)
	a.AddSet(xs)
	for i := len(xs) - 1; i >= 0; i-- {
		b.Add(xs[i])
	}
	if !a.Equal(b) {
		t.Fatal("multiset hash must be order independent")
	}
}

func TestAddRemoveCancels(t *testing.T) {
	h := New(2)
	h.Add(42)
	h.Add(43)
	h.Remove(42)
	h.Remove(43)
	if !h.Sum().IsZero() {
		t.Fatal("add+remove must restore the empty digest")
	}
}

func TestRemoveBeforeAdd(t *testing.T) {
	// Transiently negative multiplicities must cancel too.
	h := New(3)
	h.Remove(7)
	h.Add(7)
	if !h.Sum().IsZero() {
		t.Fatal("remove-then-add must cancel")
	}
}

func TestMultiplicityMatters(t *testing.T) {
	a := New(4)
	a.Add(9)
	b := New(4)
	b.Add(9)
	b.Add(9)
	if a.Equal(b) {
		t.Fatal("multiset hash must distinguish multiplicities")
	}
}

func TestSeedSeparation(t *testing.T) {
	a := New(1)
	b := New(2)
	a.Add(5)
	b.Add(5)
	if a.Sum() == b.Sum() {
		t.Fatal("different seeds must give different digests")
	}
	if a.Equal(b) {
		t.Fatal("Equal must compare seeds")
	}
}

func TestToggle(t *testing.T) {
	h := New(5)
	present := h.Toggle(11, false) // add
	if !present {
		t.Fatal("toggle-in should report presence")
	}
	present = h.Toggle(11, present) // remove
	if present || !h.Sum().IsZero() {
		t.Fatal("toggle-out should cancel")
	}
}

func TestDigestSerialization(t *testing.T) {
	h := New(6)
	h.AddSet([]uint64{1, 2, 3})
	d := h.Sum()
	b := d.Bytes()
	if len(b) != 32 {
		t.Fatalf("digest bytes = %d", len(b))
	}
	d2, ok := DigestFromBytes(b)
	if !ok || d2 != d {
		t.Fatal("digest roundtrip failed")
	}
	if _, ok := DigestFromBytes(b[:31]); ok {
		t.Fatal("short digest must be rejected")
	}
}

// The PBS verification property: H(A △ D) == H(B) iff D == A△B, with
// overwhelming probability over random sets.
func TestSymmetricDifferenceVerification(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	common := make([]uint64, 500)
	for i := range common {
		common[i] = rng.Uint64() | 1
	}
	onlyA := []uint64{1111, 2222}
	onlyB := []uint64{3333}

	ha := New(9)
	ha.AddSet(common)
	ha.AddSet(onlyA)
	hb := New(9)
	hb.AddSet(common)
	hb.AddSet(onlyB)

	// Apply the true difference to ha: remove A-only, add B-only.
	for _, x := range onlyA {
		ha.Remove(x)
	}
	for _, x := range onlyB {
		ha.Add(x)
	}
	if !ha.Equal(hb) {
		t.Fatal("H(A △ diff) should equal H(B)")
	}
	// A wrong difference must not verify.
	ha.Add(4444)
	if ha.Equal(hb) {
		t.Fatal("extra element should break verification")
	}
}

func TestQuickSumCommutes(t *testing.T) {
	prop := func(xs []uint64, seed uint64) bool {
		a := New(seed)
		b := New(seed)
		for _, x := range xs {
			a.Add(x)
		}
		perm := rand.New(rand.NewSource(int64(seed))).Perm(len(xs))
		for _, i := range perm {
			b.Add(xs[i])
		}
		return a.Equal(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNoTrivialCollisions(t *testing.T) {
	// {x, y} vs {x+y}: the plain-sum checksum collides when element values
	// add up; the multiset hash must not (that is its whole point, §2.2.3).
	a := New(10)
	a.Add(100)
	a.Add(200)
	b := New(10)
	b.Add(300)
	if a.Equal(b) {
		t.Fatal("multiset hash collided on additive relation")
	}
}

func BenchmarkAdd(b *testing.B) {
	h := New(0)
	for i := 0; i < b.N; i++ {
		h.Add(uint64(i) | 1)
	}
}
