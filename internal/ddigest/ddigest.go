// Package ddigest implements the Difference Digest baseline (Eppstein et
// al., "What's the Difference?", described in §7–8 of the PBS paper): an
// invertible Bloom filter sized at 2·d̂ cells, with 3 index hash functions
// when d̂ > 200 and 4 otherwise — the configuration guideline the paper
// uses, tuned for a success rate of 0.99.
//
// Communication is the IBF itself: 2·d̂ cells × 3 words of log|U| bits ≈
// 6·d·log|U|, i.e. roughly six times the theoretical minimum — the paper's
// headline comparison point for IBF-based schemes.
package ddigest

import (
	"fmt"
	"time"

	"pbs/internal/ibf"
)

// Result reports a reconciliation outcome.
type Result struct {
	// Difference is the recovered A△B.
	Difference []uint64
	// Complete reports whether the IBF peeled fully.
	Complete bool
	// CommBits is the one-way communication cost in bits.
	CommBits int
	// EncodeTime is the time spent inserting into the IBFs (both parties).
	EncodeTime time.Duration
	// DecodeTime is the time spent subtracting and peeling.
	DecodeTime time.Duration
}

// Cells returns the cell count for an estimated difference d̂: 2·d̂ with a
// small floor so tiny estimates still decode.
func Cells(dhat int) int {
	c := 2 * dhat
	if c < 8 {
		c = 8
	}
	return c
}

// HashCount returns the paper's hash-function count rule: 3 if d̂ > 200
// else 4 (§8.1.1).
func HashCount(dhat int) int {
	if dhat > 200 {
		return 3
	}
	return 4
}

// Reconcile runs Difference Digest between sets a and b for the estimated
// difference cardinality dhat: Bob sends IBF(B); Alice subtracts her own
// IBF and peels.
func Reconcile(a, b []uint64, dhat int, sigBits uint, seed uint64) (*Result, error) {
	if dhat < 1 {
		return nil, fmt.Errorf("ddigest: estimated difference %d must be >= 1", dhat)
	}
	cells := Cells(dhat)
	k := HashCount(dhat)
	fa, err := ibf.New(cells, k, seed)
	if err != nil {
		return nil, err
	}
	fb, err := ibf.New(cells, k, seed)
	if err != nil {
		return nil, err
	}
	encStart := time.Now()
	fa.InsertSet(a)
	fb.InsertSet(b)
	res := &Result{CommBits: fb.Bits(int(sigBits)), EncodeTime: time.Since(encStart)}
	decStart := time.Now()
	if err := fa.Subtract(fb); err != nil {
		return nil, err
	}
	pos, neg, ok := fa.Decode()
	res.DecodeTime = time.Since(decStart)
	if !ok {
		return res, nil
	}
	res.Complete = true
	res.Difference = append(pos, neg...)
	return res, nil
}
