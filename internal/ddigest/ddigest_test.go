package ddigest

import (
	"sort"
	"testing"

	"pbs/internal/workload"
)

func assertSameSet(t *testing.T, got, want []uint64) {
	t.Helper()
	g := append([]uint64(nil), got...)
	w := append([]uint64(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	if len(g) != len(w) {
		t.Fatalf("size mismatch: %d vs %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestReconcileExact(t *testing.T) {
	for _, d := range []int{1, 10, 100, 1000} {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: d, Seed: int64(d)})
		res, err := Reconcile(p.A, p.B, d, 32, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("d=%d: peel failed with 2d cells", d)
		}
		assertSameSet(t, res.Difference, p.Diff)
	}
}

func TestCommIsSixTimesMinimum(t *testing.T) {
	// 2d cells × 3 words × 32 bits = 192·d bits = 6× the 32·d minimum.
	const d = 500
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: d, Seed: 9})
	res, err := Reconcile(p.A, p.B, d, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommBits != 2*d*3*32 {
		t.Errorf("comm = %d bits, want %d", res.CommBits, 2*d*3*32)
	}
}

func TestUndersizedFails(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 20000, D: 400, Seed: 10})
	res, err := Reconcile(p.A, p.B, 40, 32, 2) // sized for a tenth of the truth
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("severely undersized IBF should fail to peel")
	}
}

func TestHashCountRule(t *testing.T) {
	if HashCount(200) != 4 || HashCount(201) != 3 {
		t.Error("hash-count rule should switch at d̂ = 200")
	}
}

func TestCellsFloor(t *testing.T) {
	if Cells(1) != 8 {
		t.Errorf("Cells(1) = %d, want floor 8", Cells(1))
	}
	if Cells(100) != 200 {
		t.Errorf("Cells(100) = %d", Cells(100))
	}
}

func TestValidation(t *testing.T) {
	if _, err := Reconcile(nil, nil, 0, 32, 0); err == nil {
		t.Error("dhat=0 should error")
	}
}

func TestSuccessRateNearTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const d = 50
	ok := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 4000, D: d, Seed: int64(i)})
		res, err := Reconcile(p.A, p.B, d, 32, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Complete {
			ok++
		}
	}
	if ok < 92 { // target ~0.99 with 2d cells and exact d
		t.Errorf("success rate %d/100 below expectation", ok)
	}
}
