// Package workload generates the set pairs used throughout the paper's
// evaluation (§8, "Experiment Setup"): elements of A are drawn uniformly at
// random without replacement from a 32-bit universe, and B is a uniform
// subsample of A of size |A|−d, so that A△B = A\B contains exactly d
// elements.
//
// A more general generator is also provided for scenarios (and tests) where
// the difference is split between the two sides.
package workload

import (
	"fmt"
	"math/rand"
)

// Pair is a generated set pair with ground truth.
type Pair struct {
	A, B []uint64
	Diff []uint64 // A△B, the ground-truth difference
}

// Config controls generation.
type Config struct {
	UniverseBits uint    // signature length log|U|; the paper uses 32
	SizeA        int     // |A|; the paper fixes 10^6
	D            int     // |A△B|
	BOnlyFrac    float64 // fraction of the d differences that live only in B (0 = paper setup, B ⊂ A)
	Seed         int64
}

// Paper returns the paper's experiment configuration for a given d and seed.
func Paper(d int, seed int64) Config {
	return Config{UniverseBits: 32, SizeA: 1_000_000, D: d, Seed: seed}
}

// Generate builds a set pair per cfg. It returns an error on inconsistent
// parameters (d > |A|, universe too small to hold |A| distinct elements,
// etc.). Element 0 is excluded from the universe, as required by the XOR
// trick of §2.1.
func Generate(cfg Config) (*Pair, error) {
	if cfg.UniverseBits < 1 || cfg.UniverseBits > 64 {
		return nil, fmt.Errorf("workload: universe bits %d out of range", cfg.UniverseBits)
	}
	if cfg.D < 0 || cfg.SizeA < 0 {
		return nil, fmt.Errorf("workload: negative sizes")
	}
	dB := int(float64(cfg.D) * cfg.BOnlyFrac)
	dA := cfg.D - dB
	if dA > cfg.SizeA {
		return nil, fmt.Errorf("workload: d=%d exceeds |A|=%d", cfg.D, cfg.SizeA)
	}
	need := uint64(cfg.SizeA + dB)
	var uniLimit uint64
	if cfg.UniverseBits == 64 {
		uniLimit = ^uint64(0)
	} else {
		uniLimit = (uint64(1) << cfg.UniverseBits) - 1 // elements 1..uniLimit
	}
	if need > uniLimit/2 {
		return nil, fmt.Errorf("workload: universe 2^%d too small for %d distinct elements",
			cfg.UniverseBits, need)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seen := make(map[uint64]struct{}, need)
	draw := func() uint64 {
		for {
			x := rng.Uint64()&uniLimit | 0 // in [0, uniLimit]
			if x == 0 {
				continue
			}
			if _, dup := seen[x]; dup {
				continue
			}
			seen[x] = struct{}{}
			return x
		}
	}

	a := make([]uint64, cfg.SizeA)
	for i := range a {
		a[i] = draw()
	}
	// B = (A minus dA random elements) plus dB fresh elements.
	perm := rng.Perm(cfg.SizeA)
	removed := make(map[int]struct{}, dA)
	for _, i := range perm[:dA] {
		removed[i] = struct{}{}
	}
	b := make([]uint64, 0, cfg.SizeA-dA+dB)
	diff := make([]uint64, 0, cfg.D)
	for i, x := range a {
		if _, gone := removed[i]; gone {
			diff = append(diff, x)
		} else {
			b = append(b, x)
		}
	}
	for i := 0; i < dB; i++ {
		x := draw()
		b = append(b, x)
		diff = append(diff, x)
	}
	return &Pair{A: a, B: b, Diff: diff}, nil
}

// MustGenerate is like Generate but panics on error.
func MustGenerate(cfg Config) *Pair {
	p, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// ManySet returns the deterministic element set of index idx in a
// many-sets workload: size distinct nonzero 32-bit elements derived from
// (seed, idx) alone, so a server can host set idx and any client can
// reproduce it (and carve a known difference out of it) without the two
// ever exchanging the elements. Elements stream from a splitmix64
// sequence — no O(universe) state — so generating a 10^5-set catalog is
// cheap.
func ManySet(seed int64, idx, size int) []uint64 {
	const mask = (1 << 32) - 1
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(idx+1)*0xBF58476D1CE4E5B9
	out := make([]uint64, 0, size)
	seen := make(map[uint64]struct{}, size)
	for len(out) < size {
		// splitmix64 step
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		e := z & mask
		if e == 0 {
			continue
		}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}
