package workload

import (
	"testing"
	"testing/quick"
)

func TestGeneratePaperSetup(t *testing.T) {
	p, err := Generate(Config{UniverseBits: 32, SizeA: 5000, D: 37, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.A) != 5000 {
		t.Fatalf("|A| = %d", len(p.A))
	}
	if len(p.B) != 5000-37 {
		t.Fatalf("|B| = %d", len(p.B))
	}
	if len(p.Diff) != 37 {
		t.Fatalf("|diff| = %d", len(p.Diff))
	}
	// B must be a subset of A; diff must be exactly A \ B.
	inA := map[uint64]bool{}
	for _, x := range p.A {
		if x == 0 {
			t.Fatal("element 0 must be excluded")
		}
		if inA[x] {
			t.Fatal("duplicate element in A")
		}
		inA[x] = true
	}
	inB := map[uint64]bool{}
	for _, x := range p.B {
		if !inA[x] {
			t.Fatal("B not a subset of A in paper setup")
		}
		inB[x] = true
	}
	for _, x := range p.Diff {
		if !inA[x] || inB[x] {
			t.Fatal("diff element not in A\\B")
		}
	}
}

func TestGenerateBidirectionalSplit(t *testing.T) {
	p, err := Generate(Config{UniverseBits: 32, SizeA: 1000, D: 40, BOnlyFrac: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	inA := map[uint64]bool{}
	for _, x := range p.A {
		inA[x] = true
	}
	inB := map[uint64]bool{}
	for _, x := range p.B {
		inB[x] = true
	}
	var aOnly, bOnly int
	for _, x := range p.Diff {
		switch {
		case inA[x] && !inB[x]:
			aOnly++
		case inB[x] && !inA[x]:
			bOnly++
		default:
			t.Fatal("diff element in both or neither set")
		}
	}
	if aOnly != 20 || bOnly != 20 {
		t.Fatalf("split = %d/%d, want 20/20", aOnly, bOnly)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p1 := MustGenerate(Config{UniverseBits: 32, SizeA: 100, D: 5, Seed: 7})
	p2 := MustGenerate(Config{UniverseBits: 32, SizeA: 100, D: 5, Seed: 7})
	for i := range p1.A {
		if p1.A[i] != p2.A[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []Config{
		{UniverseBits: 0, SizeA: 10, D: 1},
		{UniverseBits: 65, SizeA: 10, D: 1},
		{UniverseBits: 32, SizeA: 10, D: 11},
		{UniverseBits: 8, SizeA: 1000, D: 0}, // universe too small
		{UniverseBits: 32, SizeA: -1, D: 0},
	}
	for i, c := range cases {
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
}

func TestQuickDiffInvariant(t *testing.T) {
	prop := func(seed int64, dRaw uint8) bool {
		d := int(dRaw % 50)
		p, err := Generate(Config{UniverseBits: 32, SizeA: 200, D: d, Seed: seed})
		if err != nil {
			return false
		}
		// |A△B| computed from scratch must equal d.
		count := map[uint64]int{}
		for _, x := range p.A {
			count[x]++
		}
		for _, x := range p.B {
			count[x]--
		}
		nd := 0
		for _, c := range count {
			if c != 0 {
				nd++
			}
		}
		return nd == d && len(p.Diff) == d
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestManySet(t *testing.T) {
	a := ManySet(7, 3, 500)
	b := ManySet(7, 3, 500)
	if len(a) != 500 {
		t.Fatalf("len = %d, want 500", len(a))
	}
	seen := map[uint64]struct{}{}
	for i, e := range a {
		if e == 0 || e >= 1<<32 {
			t.Fatalf("element %#x outside nonzero 32-bit universe", e)
		}
		if _, dup := seen[e]; dup {
			t.Fatalf("duplicate element %#x", e)
		}
		seen[e] = struct{}{}
		if b[i] != e {
			t.Fatalf("not deterministic at %d: %#x vs %#x", i, e, b[i])
		}
	}
	// Distinct indexes and seeds must give (almost surely) different sets.
	other := ManySet(7, 4, 500)
	same := 0
	for i := range a {
		if a[i] == other[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("sets for different indexes are identical")
	}
	// Prefix property: a smaller size is a prefix of a larger one, so a
	// client can reproduce "the first k elements of set idx" cheaply.
	short := ManySet(7, 3, 100)
	for i, e := range short {
		if a[i] != e {
			t.Fatalf("size-100 set is not a prefix of size-500 set at %d", i)
		}
	}
}
