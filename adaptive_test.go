package pbs

import (
	"context"
	"net"
	"testing"

	"pbs/internal/workload"
)

// TestAdaptiveColdFallback pins the controller's fallback ladder: a cold
// prior speculates at the stock default, an explicit WithKnownD always
// wins, and adaptive-off handles follow the legacy last-difference
// heuristic exactly even when the prior is warm.
func TestAdaptiveColdFallback(t *testing.T) {
	s, err := NewSet(hostedBase(1, 200))
	if err != nil {
		t.Fatal(err)
	}
	cold := &setConfig{}
	if got := s.adaptiveSpeculativeD(cold); got != DefaultSpeculativeD {
		t.Fatalf("cold prior speculated %d, want DefaultSpeculativeD=%d", got, DefaultSpeculativeD)
	}
	known := &setConfig{opt: Options{KnownD: 77}}
	if got := s.adaptiveSpeculativeD(known); got != 77 {
		t.Fatalf("KnownD=77 speculated %d, want 77", got)
	}

	// Warm the handle, then check the two opt-out paths defer to the
	// legacy heuristic bit-for-bit.
	for i := 0; i < 6; i++ {
		s.prior.observe(400)
	}
	s.specPrior.Store(401)
	off := &setConfig{adaptiveOff: true}
	if got, want := s.adaptiveSpeculativeD(off), s.speculativeD(off.opt); got != want {
		t.Fatalf("adaptive-off speculated %d, legacy heuristic says %d", got, want)
	}
	if got, want := s.adaptiveSpeculativeD(known), s.speculativeD(known.opt); got != want {
		t.Fatalf("warm KnownD speculated %d, legacy heuristic says %d", got, want)
	}
}

// TestAdaptivePriorConvergence drives the EWMA through a d 10 → 1000
// regime shift: the warm-up absorbs the small regime, the first 1000-draw
// reads as a shift (outside mean + 2σ + headroom), and after a handful of
// observations the smoothed mean has converged onto the new regime and
// 1000 is an ordinary draw again.
func TestAdaptivePriorConvergence(t *testing.T) {
	var p dhatPrior
	if _, ok := p.predict(); ok {
		t.Fatal("cold prior claimed a prediction")
	}
	if p.shifted(1000) {
		t.Fatal("cold prior reported a regime shift")
	}
	for i := 0; i < 8; i++ {
		p.observe(10)
	}
	spec, ok := p.predict()
	if !ok || spec != 10+specPredictHeadroom {
		t.Fatalf("converged small prior predicts %d (ok=%v), want %d", spec, ok, 10+specPredictHeadroom)
	}
	if !p.shifted(1000) {
		t.Fatal("d=1000 should read as a regime shift against a d=10 prior")
	}
	if p.shifted(12) {
		t.Fatal("d=12 is an ordinary draw against a d=10 prior, not a shift")
	}

	for i := 0; i < 8; i++ {
		p.observe(1000)
	}
	spec, _ = p.predict()
	// With the alpha floor at 0.25, eight observations carry the mean
	// within (0.75)^8 ≈ 10% of the way — well past 900.
	if spec < 900 || spec > 1000+specPredictHeadroom {
		t.Fatalf("EWMA failed to converge after the shift: predict=%d", spec)
	}
	if p.shifted(1000) {
		t.Fatal("converged prior still treats d=1000 as a regime shift")
	}
}

// TestAdaptiveRegimeShiftEscalation checks the speculation sizing around
// the learned prior: the mean-sized bound is floored at the stock default,
// an in-spread latest outcome does not move it, and an out-of-spread
// outcome escalates the bound to that outcome until the EWMA catches up.
func TestAdaptiveRegimeShiftEscalation(t *testing.T) {
	s, err := NewSet(hostedBase(2, 200))
	if err != nil {
		t.Fatal(err)
	}
	cfg := &setConfig{}
	for i := 0; i < 6; i++ {
		s.prior.observe(20)
	}
	// Small regime: mean + headroom is below the default, so the floor
	// holds the stock speculation.
	if got := s.adaptiveSpeculativeD(cfg); got != DefaultSpeculativeD {
		t.Fatalf("small-regime speculation %d, want floor %d", got, DefaultSpeculativeD)
	}
	// An ordinary in-spread outcome leaves the bound alone.
	s.specPrior.Store(22)
	if got := s.adaptiveSpeculativeD(cfg); got != DefaultSpeculativeD {
		t.Fatalf("in-spread outcome moved speculation to %d, want %d", got, DefaultSpeculativeD)
	}
	// An outcome far outside the spread escalates to outcome + headroom.
	s.specPrior.Store(5001)
	if got, want := s.adaptiveSpeculativeD(cfg), uint64(5000+specPredictHeadroom); got != want {
		t.Fatalf("regime-shift outcome speculated %d, want %d", got, want)
	}

	// Large regime: once the mean itself clears the default, speculation
	// follows mean + headroom, not the floor.
	var big Set
	big.specPrior.Store(0)
	for i := 0; i < 8; i++ {
		big.prior.observe(1000)
	}
	got := big.adaptiveSpeculativeD(cfg)
	if got < 900 || got > 1000+specPredictHeadroom {
		t.Fatalf("large-regime speculation %d, want ~mean+%d", got, specPredictHeadroom)
	}
}

// TestAdaptivePriorSurvivesRestart syncs against a hosted set (feeding its
// persisted prior), closes the server (flushing the prior into the segment
// footer), and reopens the store: the recovered hosted set must carry the
// learned prior without replaying any sync.
func TestAdaptivePriorSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opt := &Options{Seed: 912}
	base := hostedBase(3, 600)

	srvA := NewServer(ServerOptions{Protocol: opt, DataDir: dir})
	if _, err := srvA.EnableHosting(); err != nil {
		t.Fatal(err)
	}
	if err := srvA.Host("t1/prior", base); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srvA.Serve(ln)
	local, want := hostedClientSet(base, 3)
	mustSyncExact(t, ln.Addr().String(), opt, "t1", "prior", local, want)
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	hs := hostedFromServer(t, srvA, "t1/prior")
	hs.mu.Lock()
	liveCount := hs.meta.PriorCount
	hs.mu.Unlock()
	if liveCount == 0 {
		t.Fatal("sync against hosted set did not feed its d̂ prior")
	}

	srvB := NewServer(ServerOptions{Protocol: opt, DataDir: dir})
	if _, err := srvB.EnableHosting(); err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	rhs := hostedFromServer(t, srvB, "t1/prior")
	rhs.mu.Lock()
	mean, count := rhs.meta.PriorMean, rhs.meta.PriorCount
	rhs.mu.Unlock()
	if count != liveCount {
		t.Fatalf("recovered prior count %d, want %d from before restart", count, liveCount)
	}
	if mean <= 0 {
		t.Fatalf("recovered prior mean %v, want > 0", mean)
	}
}

func hostedFromServer(t *testing.T, srv *Server, name string) *hostedSet {
	t.Helper()
	src, ok := srv.sets.Get(name)
	if !ok {
		t.Fatalf("hosted set %q not registered", name)
	}
	hs, ok := src.(*hostedSet)
	if !ok {
		t.Fatalf("set %q is %T, not hosted", name, src)
	}
	return hs
}

// TestAdaptiveOffWireFlags pins the opt-out guarantee: with
// WithAdaptive(false) the fast hello carries no adaptive offer and the
// reply no grant, while the default negotiates both. Either way the
// exchange stays correct, and adaptive-off reports zero re-planned rounds.
func TestAdaptiveOffWireFlags(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 3000, D: 300, Seed: 83})
		opt := Options{Seed: 84}
		setA, err := NewSet(p.A, WithOptions(opt))
		if err != nil {
			t.Fatal(err)
		}
		setB, err := NewSet(p.B, WithOptions(opt))
		if err != nil {
			t.Fatal(err)
		}
		ca, cb := net.Pipe()
		iSide := &teeRW{ReadWriter: ca}
		rSide := &teeRW{ReadWriter: cb}
		respErr := make(chan error, 1)
		go func() {
			defer cb.Close()
			respErr <- setB.Respond(context.Background(), rSide, WithAdaptive(adaptive))
		}()
		res, err := setA.Sync(context.Background(), iSide,
			WithFastSync(true), WithAdaptive(adaptive))
		ca.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := <-respErr; err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("adaptive=%v: incomplete after %d rounds", adaptive, res.Rounds)
		}
		assertSameSet(t, res.Difference, p.Diff)
		if !adaptive && res.Replans != 0 {
			t.Fatalf("adaptive off reported %d re-planned rounds", res.Replans)
		}

		iFrames := parseStream(t, iSide.bytes())
		if len(iFrames) == 0 || iFrames[0].Type != msgHelloV1 {
			t.Fatalf("adaptive=%v: initiator opened with %v", adaptive, frameTypes(iFrames))
		}
		hello, err := parseFastHello(iFrames[0].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if hello.wantAdaptive != adaptive {
			t.Fatalf("adaptive=%v: hello wantAdaptive=%v", adaptive, hello.wantAdaptive)
		}
		rFrames := parseStream(t, rSide.bytes())
		if len(rFrames) == 0 || rFrames[0].Type != msgHelloReplyV1 {
			t.Fatalf("adaptive=%v: responder answered with %v", adaptive, frameTypes(rFrames))
		}
		reply, err := parseFastHelloReply(rFrames[0].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if reply.adaptive != adaptive {
			t.Fatalf("adaptive=%v: reply granted adaptive=%v", adaptive, reply.adaptive)
		}
	}
}

// TestAdaptiveLegacyWrappersUnchanged verifies the pre-Set wrappers never
// negotiate adaptive mode: a SyncInitiator exchange puts no adaptive offer
// on the wire regardless of any Set-level default.
func TestAdaptiveLegacyWrappersUnchanged(t *testing.T) {
	p := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 2000, D: 50, Seed: 85})
	opt := &Options{Seed: 86}
	ca, cb := net.Pipe()
	iSide := &teeRW{ReadWriter: ca}
	respErr := make(chan error, 1)
	go func() {
		defer cb.Close()
		respErr <- SyncResponder(p.B, cb, opt)
	}()
	res, err := SyncInitiator(p.A, iSide, opt)
	ca.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-respErr; err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("legacy sync incomplete")
	}
	assertSameSet(t, res.Difference, p.Diff)
	for _, f := range parseStream(t, iSide.bytes()) {
		if f.Type == msgHelloV1 {
			hello, err := parseFastHello(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if hello.wantAdaptive {
				t.Fatal("legacy wrapper offered adaptive mode on the wire")
			}
		}
	}
}
