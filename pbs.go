// Package pbs implements Parity Bitmap Sketch (PBS) set reconciliation —
// a space- and computationally-efficient scheme for two network-connected
// hosts to learn the difference A△B between their sets A and B
// (Gong et al., "Space- and Computationally-Efficient Set Reconciliation
// via Parity Bitmap Sketch (PBS)", VLDB 2020).
//
// PBS combines the low O(d) decoding cost of invertible-Bloom-filter
// schemes with communication overhead roughly twice the information-
// theoretic minimum d·log|U|, and is "piecewise reconciliable": each group
// pair decodes independently, so the vast majority of differences are
// learned in the first round even when a few groups need more rounds.
//
// # Quick start
//
//	res, err := pbs.Reconcile(mine, theirs, nil)
//	if err != nil { ... }
//	fmt.Println(res.Difference) // = mine △ theirs
//
// Reconcile runs the full pipeline: a Tug-of-War estimate of d = |A△B|,
// parameter optimization via the paper's Markov-chain framework, and the
// multi-round PBS protocol.
//
// # The Set API
//
// The primary surface is the Set handle: a long-lived, mutable,
// concurrency-safe set that keeps its estimator sketch, validated
// snapshot, and group partitions warm across reconciliations, and exposes
// every protocol role with context cancellation and functional options:
//
//	set, _ := pbs.NewSet(mine, pbs.WithSeed(42))
//	res, err := set.Sync(ctx, conn,
//		pbs.WithOnDelta(func(elems []uint64, round int) {
//			apply(elems) // differences stream in as group pairs verify
//		}))
//
// Set.Sync initiates over any connection, Set.Respond answers a single
// peer, Set.Serve runs a concurrent server on a listener, and
// Set.Reconcile runs both endpoints in process. See examples/serversync
// and cmd/pbs-serve for deployments, and the README migration guide for
// the mapping from the pre-Set entry points (SyncInitiator/SyncResponder,
// Client.Sync, NewInitiator/NewResponder), which remain supported as thin
// wrappers with byte-identical wire behavior.
package pbs

import (
	"context"
	"fmt"
	"math"

	"pbs/internal/core"
	"pbs/internal/estimator"
)

// Options tunes a reconciliation. The zero value (or nil) selects the
// paper's defaults: δ=5, r=3, p0=0.99, 32-bit signatures, ℓ=128 ToW
// sketches, γ=1.38.
type Options struct {
	// Delta is the target average number of distinct elements per group.
	Delta int
	// TargetRounds is the round budget r the parameter optimizer plans for.
	TargetRounds int
	// TargetSuccess is the probability p0 of completing within TargetRounds.
	TargetSuccess float64
	// SigBits is the element signature length log|U| in bits (8..64).
	// Elements must be nonzero and fit in SigBits bits.
	SigBits uint
	// Seed makes the run deterministic; both parties must agree on it.
	Seed uint64
	// MaxRounds caps protocol rounds. 0 selects the core.DefaultMaxRounds
	// safety cap of 64, which in practice runs to completion — PBS
	// converges in a few rounds, and the checksum layer guarantees
	// correctness whenever it terminates.
	MaxRounds int
	// EstimatorSketches is the ToW sketch count ℓ (default 128).
	EstimatorSketches int
	// Gamma is the conservative scale applied to the estimate (default 1.38).
	Gamma float64
	// KnownD skips the estimator when > 0: the caller asserts |A△B| <= KnownD.
	KnownD int
	// MaxD caps the difference estimate d̂ a wire session will accept
	// before deriving a Plan from it. The estimate is peer-influenced on
	// both sides — the responder echoes the value it computed from the
	// initiator's sketches, and hostile sketches can drive that value
	// arbitrarily high — so without a cap a malicious peer forces an
	// arbitrarily large Plan allocation. Sessions reject an over-limit d̂
	// with a protocol error before any allocation. 0 selects DefaultMaxD
	// (Server-driven responder sessions additionally tighten the default
	// to 64·|S|+1024 when that is smaller, since their per-session
	// allocation scales with d̂); negative lifts the cap to an effectively
	// unlimited 2^62 (never do this on a server exposed to untrusted
	// peers).
	MaxD int
	// StrongVerify adds a final multiset-hash verification exchange to
	// SyncInitiator/SyncResponder sessions — the §2.2.3 hardening that
	// pushes the false-verification probability to practically zero at the
	// cost of 32 extra bytes and one extra message.
	StrongVerify bool
	// Parallelism is the worker count for per-group encoding and decoding.
	// PBS group pairs are piecewise reconciliable — each decodes
	// independently — so the hot path fans out across this many goroutines.
	// 0 (the default) selects GOMAXPROCS; 1 forces the sequential reference
	// path. It is a purely local execution knob: the two endpoints may use
	// different values, and the wire bytes are identical for every setting.
	Parallelism int
}

// DefaultMaxD is the cap applied to the exchanged difference estimate d̂
// when Options.MaxD is zero. It is derived from maxFrame: at the default
// δ = 5 a plan for d differences emits first-round frames of a couple of
// bytes per difference and allocates endpoint state proportional to d, so
// an estimate within an order of magnitude of the 64 MiB frame limit could
// never complete a round anyway — a d̂ beyond this bound marks a broken or
// hostile peer, not a big reconciliation.
const DefaultMaxD = maxFrame / 8

func (o *Options) withDefaults() Options {
	var opt Options
	if o != nil {
		opt = *o
	}
	if opt.EstimatorSketches == 0 {
		opt.EstimatorSketches = estimator.DefaultSketches
	}
	if opt.Gamma == 0 {
		opt.Gamma = estimator.DefaultGamma
	}
	if opt.SigBits == 0 {
		opt.SigBits = core.DefaultSigBits
	}
	return opt
}

// validate rejects nonsensical option values at the API boundary with a
// clear pbs-prefixed error, instead of letting them surface as a deep
// internal/core or estimator failure mid-protocol. It runs after
// withDefaults, so zero values have already been resolved.
func (o Options) validate() error {
	switch {
	case o.Delta < 0:
		return fmt.Errorf("pbs: Delta must not be negative (got %d)", o.Delta)
	case o.TargetRounds < 0:
		return fmt.Errorf("pbs: TargetRounds must not be negative (got %d)", o.TargetRounds)
	case math.IsNaN(o.TargetSuccess) || o.TargetSuccess < 0 || o.TargetSuccess >= 1:
		return fmt.Errorf("pbs: TargetSuccess must be a probability in [0, 1) (got %v)", o.TargetSuccess)
	case o.SigBits < 8 || o.SigBits > 64:
		return fmt.Errorf("pbs: SigBits must be in [8, 64] (got %d)", o.SigBits)
	case o.EstimatorSketches < 0:
		return fmt.Errorf("pbs: EstimatorSketches must not be negative (got %d)", o.EstimatorSketches)
	case math.IsNaN(o.Gamma) || o.Gamma < 0:
		return fmt.Errorf("pbs: Gamma must not be negative (got %v)", o.Gamma)
	case o.KnownD < 0:
		return fmt.Errorf("pbs: KnownD must not be negative (got %d)", o.KnownD)
	case o.Parallelism < 0:
		return fmt.Errorf("pbs: Parallelism must not be negative (got %d)", o.Parallelism)
	}
	return nil
}

// withDefaultsValidated is the standard entry-point resolution: defaults
// applied, then validated.
func (o *Options) withDefaultsValidated() (Options, error) {
	opt := o.withDefaults()
	if err := opt.validate(); err != nil {
		return Options{}, err
	}
	return opt, nil
}

func (o Options) coreConfig() core.Config {
	return core.Config{
		Delta:         o.Delta,
		TargetRounds:  o.TargetRounds,
		TargetSuccess: o.TargetSuccess,
		SigBits:       o.SigBits,
		Seed:          o.Seed,
		MaxRounds:     o.MaxRounds,
		Parallelism:   o.Parallelism,
	}
}

// Result reports the outcome of a reconciliation.
type Result struct {
	// Difference is the learned A△B.
	Difference []uint64
	// Complete reports whether every group pair passed checksum
	// verification within the round budget. When true, Difference is
	// exactly A△B (up to the ~2^−SigBits false-verification probability
	// analysed in §2.2.3 of the paper).
	Complete bool
	// Rounds is the number of message exchanges used.
	Rounds int
	// EstimatedD is the conservative difference-cardinality estimate the
	// parameters were derived from (γ·d̂, or KnownD).
	EstimatedD int
	// PayloadBytes is the protocol communication overhead — codewords,
	// positions, XOR sums, checksums — the quantity the paper reports.
	PayloadBytes int
	// WireBytes is the full serialized message volume including framing.
	WireBytes int
	// EstimatorBytes is the one-way cost of the ToW estimate exchange
	// (0 when KnownD is used). The paper accounts it separately.
	EstimatorBytes int
	// Replans counts rounds whose parameters the adaptive controller
	// re-derived away from the static plan (see WithAdaptive). Always 0
	// when adaptive mode was off, not granted by the peer, or the session
	// finished in one round.
	Replans int
}

// Reconcile learns local △ remote. It simulates both endpoints in process,
// which is the mode used by tests, examples, and the benchmark harness;
// network deployments should instead use Set.Sync / Set.Serve.
//
// Reconcile is a thin wrapper over the Set API — equivalent to building
// two throwaway Sets and calling Set.Reconcile. Callers reconciling the
// same data repeatedly should hold on to the Sets instead, which keeps the
// validated snapshot and estimator sketch warm across calls.
func Reconcile(local, remote []uint64, o *Options) (*Result, error) {
	a, err := NewSet(local, withBaseOptions(o))
	if err != nil {
		return nil, err
	}
	b, err := NewSet(remote, withBaseOptions(o))
	if err != nil {
		return nil, err
	}
	return a.Reconcile(context.Background(), b)
}

// withBaseOptions adapts a legacy *Options (possibly nil) into the
// functional-option form the Set constructors take.
func withBaseOptions(o *Options) Option {
	return func(c *setConfig) {
		if o != nil {
			c.opt = *o
		}
	}
}

// Union returns local ∪ remote given a completed reconciliation result:
// the local set plus every difference element not already in it.
func Union(local []uint64, res *Result) []uint64 {
	in := make(map[uint64]struct{}, len(local))
	out := append([]uint64(nil), local...)
	for _, x := range local {
		in[x] = struct{}{}
	}
	for _, x := range res.Difference {
		if _, ok := in[x]; !ok {
			out = append(out, x)
		}
	}
	return out
}

// Plan is the concrete protocol parameterization both endpoints must agree
// on (bitmap size, BCH capacity, group count, seed). Derive it with
// PlanFor, then construct the two endpoints from it.
type Plan = core.Plan

// PlanFor derives a Plan for a conservative difference estimate d. Both
// parties must call it with identical arguments.
func PlanFor(d int, o *Options) (Plan, error) {
	opt, err := o.withDefaultsValidated()
	if err != nil {
		return Plan{}, err
	}
	return core.NewPlan(d, opt.coreConfig())
}

// Session is one side's protocol endpoint. The initiator (Alice, the side
// that learns the difference) repeatedly calls BuildRound and feeds the
// peer's reply to AbsorbReply; the responder (Bob) answers each message
// with HandleRound. See examples/kvsync for a complete exchange over a
// network-style transport.
//
// Session predates the Set API and remains for callers that transport the
// round messages themselves with an out-of-band Plan agreement; new code
// syncing over a stream should prefer Set.Sync/Set.Respond, which also
// run the estimation phase and support cancellation and streaming deltas.
type Session struct {
	alice *core.Alice
	bob   *core.Bob
}

// NewInitiator returns the endpoint that learns the difference.
func NewInitiator(set []uint64, plan Plan) (*Session, error) {
	a, err := core.NewAlice(set, plan)
	if err != nil {
		return nil, err
	}
	return &Session{alice: a}, nil
}

// NewResponder returns the endpoint that answers round messages.
func NewResponder(set []uint64, plan Plan) (*Session, error) {
	b, err := core.NewBob(set, plan)
	if err != nil {
		return nil, err
	}
	return &Session{bob: b}, nil
}

// BuildRound returns the next round message to send to the responder, or
// nil when reconciliation is complete. Initiator only.
func (s *Session) BuildRound() ([]byte, error) {
	if s.alice == nil {
		return nil, fmt.Errorf("pbs: BuildRound on a responder session")
	}
	return s.alice.BuildRound()
}

// AbsorbReply processes the responder's reply. Initiator only.
func (s *Session) AbsorbReply(reply []byte) error {
	if s.alice == nil {
		return fmt.Errorf("pbs: AbsorbReply on a responder session")
	}
	return s.alice.AbsorbReply(reply)
}

// HandleRound answers one round message. Responder only.
func (s *Session) HandleRound(msg []byte) ([]byte, error) {
	if s.bob == nil {
		return nil, fmt.Errorf("pbs: HandleRound on an initiator session")
	}
	return s.bob.HandleRound(msg)
}

// Done reports whether the initiator has verified every group pair.
// Responder sessions are never "done" on their own; they answer for as
// long as the initiator keeps asking.
func (s *Session) Done() bool { return s.alice != nil && s.alice.Done() }

// Difference returns the initiator's learned difference so far.
func (s *Session) Difference() []uint64 {
	if s.alice == nil {
		return nil
	}
	return s.alice.Difference()
}

// Rounds returns the number of rounds the initiator has started.
func (s *Session) Rounds() int {
	if s.alice == nil {
		return 0
	}
	return s.alice.Rounds()
}
