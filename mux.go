package pbs

// Stream multiplexing: protocol version 2. After a version-2 fast hello
// negotiates the mux feature (see fastProtoVersionMux in sync.go), every
// frame on the connection keeps the v0/v1 outer header — 4-byte big-endian
// length plus 1-byte type — but its payload gains a mux envelope:
//
//	uvarint(streamID) | uvarint(flags) | body
//
// so N logical sessions interleave over one connection, each stream driven
// by its own independent session engine. The envelope flags carry stream
// lifecycle (open on the first frame, close on the last) and per-frame
// compression; the outer framing, frame budgets, and coalesced-write path
// are untouched, and a connection that never negotiates v2 never sees an
// envelope byte — the legacy wire format stays byte-identical.
//
// Negotiation rides the existing single-RTT hello, so it costs zero extra
// round trips: the first stream taken from a MuxConn sends the fast hello
// with want-flags, and the switch to enveloped framing happens at the
// hello-reply boundary — a point where the fast-path initiator is
// guaranteed silent (it sends nothing between hello and reply), so neither
// side can misparse an in-flight frame under the old framing.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"pbs/internal/lz"
)

const (
	muxFlagOpen       = 1 << 0 // first frame of a new stream
	muxFlagClose      = 1 << 1 // last frame of the stream (sender side)
	muxFlagCompressed = 1 << 2 // body is lz-compressed
	muxFlagKnown      = muxFlagOpen | muxFlagClose | muxFlagCompressed
)

// maxStreamID caps client-allocated stream IDs; beyond it Stream returns
// ErrStreamsExhausted rather than risking varint ambiguity at the top of
// the uint64 range. At one sync per stream this allows 2^62 syncs per
// dialed connection, so exhaustion in practice means a counting bug.
const maxStreamID = 1 << 62

// muxCompressMin is the smallest body worth offering to the compressor:
// below it the lz header overhead and the CPU spent can't win anything
// that matters, so tiny frames (done, round replies for small d) skip it.
const muxCompressMin = 512

// muxInboxDepth bounds per-stream frames buffered between the shared
// reader and a stream's consumer. The session protocol is strictly
// request/response per stream, so more than a couple of undelivered
// frames means the peer is flooding; overflowing streams are torn down
// instead of letting one slow consumer wedge the whole connection.
const muxInboxDepth = 16

var (
	// ErrMuxDeclined reports that the peer answered the negotiating sync
	// without granting multiplexing (a v1-only peer, or a server with mux
	// disabled). The first stream's sync still completed as a plain fast
	// sync; callers fall back to one connection per session.
	ErrMuxDeclined = errors.New("pbs: peer declined stream multiplexing")
	// ErrMuxClosed reports use of a MuxConn after Close or after the
	// underlying connection failed.
	ErrMuxClosed = errors.New("pbs: mux connection closed")
	// ErrStreamsExhausted reports that the connection has allocated all
	// maxStreamID stream IDs; dial a fresh connection.
	ErrStreamsExhausted = errors.New("pbs: mux stream IDs exhausted")
)

// appendMuxPayload serializes a mux envelope (stream ID, flags, body) onto
// dst; the result is the payload of an outer v0-framed message.
func appendMuxPayload(dst []byte, streamID, flags uint64, body []byte) []byte {
	dst = binary.AppendUvarint(dst, streamID)
	dst = binary.AppendUvarint(dst, flags)
	return append(dst, body...)
}

// parseMuxPayload decodes a mux envelope. body aliases b.
func parseMuxPayload(b []byte) (streamID, flags uint64, body []byte, err error) {
	streamID, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, 0, nil, fmt.Errorf("pbs: mux envelope: truncated stream ID")
	}
	b = b[k:]
	flags, k = binary.Uvarint(b)
	if k <= 0 {
		return 0, 0, nil, fmt.Errorf("pbs: mux envelope: truncated flags")
	}
	return streamID, flags, b[k:], nil
}

// muxAppendFrame serializes one complete enveloped frame — outer header,
// stream ID, flags, body — onto dst. Both sides build their coalesced
// write batches with it, so a multi-frame burst still leaves in one Write.
func muxAppendFrame(dst []byte, streamID, flags uint64, typ byte, body []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, typ)
	dst = binary.AppendUvarint(dst, streamID)
	dst = binary.AppendUvarint(dst, flags)
	dst = append(dst, body...)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-5))
	return dst
}

// muxCompressBody returns the wire form of body under a negotiated-lz
// connection: the compressed bytes and true when body clears the size
// threshold and the codec actually shrank it, body unchanged and false
// otherwise (the receiver keys off the per-frame compressed flag, so
// declining is always safe).
func muxCompressBody(body []byte, lzOn bool) ([]byte, bool) {
	if !lzOn || len(body) < muxCompressMin {
		return body, false
	}
	if comp := lz.Compress(nil, body); comp != nil {
		return comp, true
	}
	return body, false
}

// featureRequester lets a connection ask Set.Sync to fold a protocol
// feature request into its fast hello. The negotiating MuxStream is the
// one implementation; everything else syncs with an empty request and a
// byte-identical legacy hello.
type featureRequester interface{ muxFeatureRequest() uint64 }

// muxDeadline makes a time.Time deadline selectable: wait returns a
// channel that closes once the current deadline passes, and set replaces
// the deadline, closing immediately when it is already in the past — the
// poisoned-deadline interruption idiom framePump relies on, rebuilt for a
// stream whose reads block on a channel instead of a socket.
type muxDeadline struct {
	mu    sync.Mutex
	timer *time.Timer
	ch    chan struct{} // nil = no deadline; closed = expired
}

func (d *muxDeadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.timer != nil {
		// A stopped-too-late timer closes the channel it captured, which is
		// no longer the live one — harmless either way.
		d.timer.Stop()
		d.timer = nil
	}
	if t.IsZero() {
		d.ch = nil
		return
	}
	ch := make(chan struct{})
	d.ch = ch
	if dur := time.Until(t); dur <= 0 {
		close(ch)
	} else {
		d.timer = time.AfterFunc(dur, func() { close(ch) })
	}
}

// wait returns the current deadline channel; nil (blocks forever in a
// select) when no deadline is set.
func (d *muxDeadline) wait() <-chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ch
}

func (d *muxDeadline) expired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ch == nil {
		return false
	}
	select {
	case <-d.ch:
		return true
	default:
		return false
	}
}

const (
	muxNegotiating = iota // hello in flight (or not yet sent)
	muxOn                 // peer granted mux: enveloped framing
	muxPassthrough        // peer declined: raw framing, single stream
	muxDead               // connection closed or failed
)

// MuxConn multiplexes many concurrent Set.Sync sessions over one dialed
// connection. Take streams with Stream; each stream is a net.Conn that
// carries exactly one sync session. The first stream is the negotiator:
// its Set.Sync (which must use the fast path, WithFastSync's default)
// piggybacks the feature request on the hello, and every later Stream call
// blocks until that reply lands. If the peer declines — a legacy or
// mux-disabled server — the first sync still completes as a plain fast
// sync and later Stream calls return ErrMuxDeclined so callers can fall
// back to a connection per session.
//
// Retry and chaos layers compose per-stream: wrap the dialed net.Conn
// before handing it to NewMuxConn and every stream's traffic flows through
// the wrapper; a RetryPolicy whose Dial returns fresh streams retries
// individual syncs without re-dialing.
type MuxConn struct {
	conn     net.Conn
	compress bool

	wmu sync.Mutex // serializes writes to conn

	mu              sync.Mutex
	state           int
	granted         uint64
	err             error         // first terminal connection error
	negCh           chan struct{} // closed once negotiation resolves (or dies)
	streams         map[uint64]*MuxStream
	nextID          uint64
	negotiatorTaken bool
}

// MuxOption configures a MuxConn.
type MuxOption func(*MuxConn)

// WithMuxCompression offers lz frame compression during negotiation; the
// peer may decline. Compressed framing only applies to frames at or above
// an internal size threshold that actually shrink, so enabling it on
// small-frame workloads costs one cheap encoding pass per large frame and
// nothing else.
func WithMuxCompression(on bool) MuxOption {
	return func(m *MuxConn) { m.compress = on }
}

// NewMuxConn wraps a dialed connection for stream multiplexing and starts
// its demultiplexing reader. The caller must run a fast-path Set.Sync on
// the first stream promptly — it carries the negotiation every other
// stream waits on. Close the MuxConn (not the inner conn) when done.
func NewMuxConn(conn net.Conn, opts ...MuxOption) *MuxConn {
	m := &MuxConn{
		conn:    conn,
		negCh:   make(chan struct{}),
		streams: make(map[uint64]*MuxStream),
		nextID:  2, // 1 is the negotiator
	}
	for _, o := range opts {
		o(m)
	}
	go m.readLoop()
	return m
}

// Stream returns a connection carrying one logical sync session. The
// first call returns the negotiator stream immediately; subsequent calls
// block until the peer's hello reply resolves the negotiation.
func (m *MuxConn) Stream() (*MuxStream, error) {
	m.mu.Lock()
	if m.err != nil {
		defer m.mu.Unlock()
		return nil, m.err
	}
	if !m.negotiatorTaken {
		m.negotiatorTaken = true
		st := m.newStreamLocked(1, true)
		m.mu.Unlock()
		return st, nil
	}
	negCh := m.negCh
	m.mu.Unlock()
	<-negCh

	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case muxOn:
		if m.nextID > maxStreamID {
			return nil, ErrStreamsExhausted
		}
		id := m.nextID
		m.nextID++
		return m.newStreamLocked(id, false), nil
	case muxPassthrough:
		return nil, ErrMuxDeclined
	default:
		if m.err != nil {
			return nil, m.err
		}
		return nil, ErrMuxClosed
	}
}

func (m *MuxConn) newStreamLocked(id uint64, negotiator bool) *MuxStream {
	st := &MuxStream{
		m:          m,
		id:         id,
		negotiator: negotiator,
		inbox:      make(chan muxMsg, muxInboxDepth),
		done:       make(chan struct{}),
	}
	m.streams[id] = st
	return st
}

// Granted reports the feature bitmap the peer granted; valid after the
// negotiation resolves (any Stream call past the first has waited for it).
func (m *MuxConn) Granted() (mux, compression bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.granted&featureMux != 0, m.granted&featureLZ != 0
}

// Close closes the underlying connection and fails every open stream.
func (m *MuxConn) Close() error {
	err := m.conn.Close()
	m.fail(ErrMuxClosed)
	return err
}

// fail records the first terminal error, resolves a pending negotiation,
// and tears down every stream. Called by the reader on connection errors
// and by Close.
func (m *MuxConn) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	if m.state == muxNegotiating {
		close(m.negCh)
	}
	m.state = muxDead
	streams := make([]*MuxStream, 0, len(m.streams))
	for _, st := range m.streams {
		streams = append(streams, st)
	}
	m.streams = make(map[uint64]*MuxStream)
	m.mu.Unlock()
	for _, st := range streams {
		st.teardown(err)
	}
}

// resolve records the peer's negotiation answer. Runs on the reader
// goroutine before the resolving frame is delivered, so a consumer that
// has read the hello reply observes the resolved state.
func (m *MuxConn) resolve(granted uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != muxNegotiating {
		return
	}
	m.granted = granted
	if granted&featureMux != 0 {
		m.state = muxOn
	} else {
		m.state = muxPassthrough
	}
	close(m.negCh)
}

func (m *MuxConn) muxed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == muxOn
}

func (m *MuxConn) removeStream(id uint64) {
	m.mu.Lock()
	delete(m.streams, id)
	m.mu.Unlock()
}

// writeWire writes one pre-framed batch to the connection under the shared
// write lock, with the writing stream's deadline applied for the duration.
// Any write error is terminal for the whole connection: a timed-out or
// short write may have left a partial frame on the wire, after which no
// stream can trust the framing.
func (m *MuxConn) writeWire(b []byte, deadline time.Time) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	m.conn.SetWriteDeadline(deadline)
	if _, err := m.conn.Write(b); err != nil {
		m.fail(fmt.Errorf("pbs: mux write: %w", err))
		return err
	}
	return nil
}

// readLoop is the demultiplexer: it owns all reads from the connection,
// resolves the negotiation at the hello-reply boundary, and routes frames
// to stream inboxes. readFrameInto with a nil buffer allocates per frame,
// so delivered payloads never alias each other.
func (m *MuxConn) readLoop() {
	for {
		typ, payload, err := readFrame(m.conn)
		if err != nil {
			m.fail(fmt.Errorf("pbs: mux read: %w", err))
			return
		}
		if !m.muxed() {
			// Negotiating or passthrough: every frame belongs to stream 1.
			// The first frame of the conversation resolves the negotiation:
			// a hello reply carries the grant flags; anything else (msgError
			// from a rejecting server, a legacy estimate reply) means no
			// grant and permanent passthrough.
			m.mu.Lock()
			negotiating := m.state == muxNegotiating
			st := m.streams[1]
			m.mu.Unlock()
			if negotiating {
				var granted uint64
				if typ == msgHelloReplyV1 {
					if rep, err := parseFastHelloReply(payload); err == nil {
						granted = rep.features
					}
				}
				m.resolve(granted)
			}
			m.deliver(st, typ, payload, false)
			continue
		}
		id, flags, body, perr := parseMuxPayload(payload)
		if perr != nil || flags&^uint64(muxFlagKnown) != 0 {
			m.fail(fmt.Errorf("pbs: mux read: malformed envelope (type %d)", typ))
			return
		}
		if flags&muxFlagCompressed != 0 {
			body, perr = lz.Decode(nil, body, maxFrame)
			if perr != nil {
				m.fail(fmt.Errorf("pbs: mux read: %w", perr))
				return
			}
		}
		m.mu.Lock()
		st := m.streams[id]
		m.mu.Unlock()
		if st == nil {
			// A frame for a stream we already closed: a benign close race.
			continue
		}
		m.deliver(st, typ, body, flags&muxFlagClose != 0)
	}
}

// deliver hands one frame to a stream without ever blocking the shared
// reader: an inbox that is full means the peer is violating the
// request/response discipline, and only that stream pays for it.
func (m *MuxConn) deliver(st *MuxStream, typ byte, payload []byte, close bool) {
	if st == nil {
		return
	}
	select {
	case st.inbox <- muxMsg{typ: typ, payload: payload}:
	default:
		st.teardown(fmt.Errorf("pbs: mux stream %d inbox overflow", st.id))
		m.removeStream(st.id)
		return
	}
	if close {
		// Remote end is done with the stream: frames already delivered
		// drain first (Read prefers the inbox over the done signal).
		st.teardown(nil)
		m.removeStream(st.id)
	}
}

type muxMsg struct {
	typ     byte
	payload []byte
}

// MuxStream is one logical session's net.Conn over a MuxConn. It speaks
// the ordinary frame wire format to its user — the session engines and
// frame pumps run unmodified — and translates to enveloped frames on the
// shared connection underneath. A stream carries exactly one sync
// session: the session's closing msgDone carries the stream-close flag,
// and a stream closed without one sends a bare msgStreamClose.
type MuxStream struct {
	m          *MuxConn
	id         uint64
	negotiator bool

	// Write side, guarded by wmu. wpending reassembles complete frames
	// out of arbitrary write segmentation (net.Buffers gather writes land
	// here buffer by buffer) before enveloping them.
	wmu       sync.Mutex
	wpending  []byte
	opened    bool
	closeSent bool
	wd        time.Time

	// Read side: the demux reader fills inbox; Read re-frames messages
	// into rbuf. done closes on teardown, err (under emu) holds the
	// terminal error — nil for a clean remote close, which reads as EOF.
	inbox chan muxMsg
	rbuf  []byte
	rd    muxDeadline

	emu      sync.Mutex
	err      error
	tornDown bool
	done     chan struct{}

	closeOnce sync.Once
}

var _ net.Conn = (*MuxStream)(nil)

// muxFeatureRequest implements featureRequester: the negotiator stream
// asks Set.Sync to fold the connection's feature offer into its hello.
func (s *MuxStream) muxFeatureRequest() uint64 {
	if !s.negotiator {
		return 0
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	if s.m.state != muxNegotiating {
		return 0
	}
	f := uint64(featureMux)
	if s.m.compress {
		f |= featureLZ
	}
	return f
}

func (s *MuxStream) teardown(err error) {
	s.emu.Lock()
	if s.tornDown {
		s.emu.Unlock()
		return
	}
	s.tornDown = true
	s.err = err
	close(s.done)
	s.emu.Unlock()
}

// termErr is what Read reports once the stream is down and drained: the
// terminal error, or io.EOF for a clean close.
func (s *MuxStream) termErr() error {
	s.emu.Lock()
	defer s.emu.Unlock()
	if s.err != nil {
		return s.err
	}
	return io.EOF
}

// raw reports whether writes bypass the envelope: the negotiator before
// the negotiation resolves (its hello IS the negotiation) and forever on
// a passthrough connection. The protocol guarantees the mode never flips
// mid-frame — the fast-path initiator is silent between hello and reply,
// and the reply resolves the mode before its bytes reach the consumer.
func (s *MuxStream) raw() bool {
	if !s.negotiator {
		return false
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return s.m.state == muxNegotiating || s.m.state == muxPassthrough
}

func (s *MuxStream) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for len(s.rbuf) == 0 {
		if s.rd.expired() {
			return 0, os.ErrDeadlineExceeded
		}
		select {
		case msg := <-s.inbox:
			s.rbuf = appendFrame(s.rbuf[:0], msg.typ, msg.payload)
		case <-s.done:
			// Frames delivered before teardown still count: drain the inbox
			// before reporting the terminal state.
			select {
			case msg := <-s.inbox:
				s.rbuf = appendFrame(s.rbuf[:0], msg.typ, msg.payload)
			default:
				return 0, s.termErr()
			}
		case <-s.rd.wait():
			// Deadline fired (or was replaced); re-check at the top.
		}
	}
	n := copy(p, s.rbuf)
	s.rbuf = s.rbuf[n:]
	return n, nil
}

func (s *MuxStream) Write(p []byte) (int, error) {
	select {
	case <-s.done:
		if err := s.termErr(); err != io.EOF {
			return 0, err
		}
		return 0, ErrMuxClosed
	default:
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.raw() {
		// Negotiator on a not-(yet-)muxed connection: bytes pass through
		// verbatim, so arbitrary segmentation is already preserved. The
		// raw hello doubles as the stream's open — if the peer grants mux,
		// its server-side stream 1 already exists, so later enveloped
		// frames must not carry the open flag again.
		if err := s.m.writeWire(p, s.wd); err != nil {
			return 0, err
		}
		s.opened = true
		return len(p), nil
	}
	s.wpending = append(s.wpending, p...)
	var out []byte
	s.m.mu.Lock()
	lzOn := s.m.granted&featureLZ != 0
	s.m.mu.Unlock()
	for {
		if len(s.wpending) < 5 {
			break
		}
		n := binary.BigEndian.Uint32(s.wpending[:4])
		if n > maxFrame {
			return 0, fmt.Errorf("pbs: mux stream %d: oversized frame (%d bytes)", s.id, n)
		}
		if uint32(len(s.wpending)-5) < n {
			break
		}
		typ := s.wpending[4]
		body := s.wpending[5 : 5+n]
		var flags uint64
		if !s.opened {
			flags |= muxFlagOpen
			s.opened = true
		}
		if typ == msgDone || typ == msgStreamClose {
			flags |= muxFlagClose
			s.closeSent = true
		}
		if wire, compressed := muxCompressBody(body, lzOn); compressed {
			body = wire
			flags |= muxFlagCompressed
		}
		out = muxAppendFrame(out, s.id, flags, typ, body)
		s.wpending = s.wpending[5+n:]
	}
	if len(s.wpending) == 0 {
		s.wpending = nil // frame boundary: release the buffer
	}
	if len(out) > 0 {
		if err := s.m.writeWire(out, s.wd); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// Close tears the stream down locally and, when the session didn't already
// say goodbye (msgDone carries the close flag), tells the peer with a bare
// msgStreamClose so the server frees the stream's session state promptly.
func (s *MuxStream) Close() error {
	s.closeOnce.Do(func() {
		s.wmu.Lock()
		needsWire := !s.raw() && s.opened && !s.closeSent
		s.closeSent = true
		s.wmu.Unlock()
		if needsWire && s.m.muxed() {
			// Best effort: the connection may already be gone.
			s.m.writeWire(muxAppendFrame(nil, s.id, muxFlagClose, msgStreamClose, nil), time.Time{})
		}
		s.teardown(nil)
		s.m.removeStream(s.id)
	})
	return nil
}

func (s *MuxStream) LocalAddr() net.Addr  { return s.m.conn.LocalAddr() }
func (s *MuxStream) RemoteAddr() net.Addr { return s.m.conn.RemoteAddr() }

func (s *MuxStream) SetDeadline(t time.Time) error {
	s.SetReadDeadline(t)
	return s.SetWriteDeadline(t)
}

func (s *MuxStream) SetReadDeadline(t time.Time) error {
	s.rd.set(t)
	return nil
}

func (s *MuxStream) SetWriteDeadline(t time.Time) error {
	s.wmu.Lock()
	s.wd = t
	s.wmu.Unlock()
	return nil
}
