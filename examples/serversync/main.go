// Hub-and-spoke reconciliation: the millions-of-clients deployment shape.
//
// One pbs.Set holds a reference catalog (a software-update catalog, a
// certificate-transparency log tip, a mempool) and serves a fleet of
// clients that concurrently reconcile their drifted local copies against
// it over TCP via Set.Serve. Every session shares the set's current
// immutable view — one validated snapshot, one ToW sketch, one group
// partition per plan size — and the set stays mutable while serving:
// catalog updates land with Add/Remove, the estimator sketch follows
// incrementally, and the next admitted session sees the new contents.
// Per-session limits (d̂ cap, bytes, rounds, idle time) keep one hostile
// or broken client from hurting the rest.
//
// Run with: go run ./examples/serversync
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"pbs"
)

func main() {
	// The reference set: 200k random 32-bit IDs, held as a live handle.
	rng := rand.New(rand.NewSource(7))
	catalogIDs := make(map[uint64]struct{})
	for len(catalogIDs) < 200_000 {
		catalogIDs[uint64(rng.Uint32()|1)] = struct{}{}
	}
	reference := make([]uint64, 0, len(catalogIDs))
	for x := range catalogIDs {
		reference = append(reference, x)
	}

	catalog, err := pbs.NewSet(reference, pbs.WithSeed(42), pbs.WithStrongVerify(true))
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stopServing := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- catalog.Serve(ctx, ln) }()
	fmt.Printf("serving %d IDs on %s\n", catalog.Len(), ln.Addr())

	// 32 clients, each missing a different few hundred IDs and carrying a
	// few local extras, sync concurrently.
	opt := &pbs.Options{Seed: 42, StrongVerify: true}
	const clients = 32
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local, drift := driftedCopy(reference, int64(i))
			c := &pbs.Client{Addr: ln.Addr().String(), Options: opt, Timeout: time.Minute}
			res, err := c.Sync(local)
			if err != nil {
				log.Fatalf("client %d: %v", i, err)
			}
			if !res.Complete || len(res.Difference) != drift {
				log.Fatalf("client %d: got %d differences, want %d", i, len(res.Difference), drift)
			}
			fmt.Printf("client %2d: caught up %3d IDs in %d rounds, %5d wire bytes\n",
				i, len(res.Difference), res.Rounds, res.WireBytes)
		}(i)
	}
	wg.Wait()

	// A catalog update lands while the server keeps running: publish 500
	// fresh IDs through the live handle (the sketch updates incrementally;
	// the next session rebuilds the shared view once and reuses it).
	fresh := make([]uint64, 0, 500)
	for len(fresh) < 500 {
		x := uint64(rng.Uint32() &^ 1) // even IDs are guaranteed novel
		if x != 0 {
			fresh = append(fresh, x)
		}
	}
	if _, err := catalog.Add(fresh...); err != nil {
		log.Fatal(err)
	}
	local, _ := driftedCopy(reference, 999)
	c := &pbs.Client{Addr: ln.Addr().String(), Options: opt, Timeout: time.Minute}
	res, err := c.Sync(local)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after live catalog update: client learned %d IDs (500 of them fresh)\n",
		len(res.Difference))

	stopServing()
	<-serveErr
	fmt.Println("server: drained and stopped — one shared snapshot per epoch, zero per-session copies")
}

// driftedCopy returns the reference set minus a client-specific slice of
// IDs plus a few IDs the server has never seen, and the drift size.
func driftedCopy(reference []uint64, seed int64) ([]uint64, int) {
	rng := rand.New(rand.NewSource(seed))
	missing := 100 + rng.Intn(200)
	local := append([]uint64(nil), reference[missing:]...)
	extras := 1 + rng.Intn(8)
	for j := 0; j < extras; j++ {
		// Catalog IDs are all odd; odd-offset even IDs stay novel while
		// fitting the default 32-bit signature space.
		local = append(local, uint64(0xFFFF0000+seed*32+int64(j)*2))
	}
	return local, missing + extras
}
