// Hub-and-spoke reconciliation: the millions-of-clients deployment shape.
//
// One pbs.Server holds an immutable snapshot of a reference set (a
// software-update catalog, a certificate-transparency log tip, a mempool)
// and a fleet of clients concurrently reconcile their drifted local copies
// against it over TCP. Every session shares the server's single snapshot —
// one validated copy, one ToW sketch, one group partition per plan size —
// and the session manager caps d̂, bytes, rounds, and idle time per
// session, so one hostile or broken client cannot hurt the rest.
//
// Run with: go run ./examples/serversync
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"pbs"
)

func main() {
	// The reference set: 200k random 32-bit IDs.
	rng := rand.New(rand.NewSource(7))
	catalog := make(map[uint64]struct{})
	for len(catalog) < 200_000 {
		catalog[uint64(rng.Uint32()|1)] = struct{}{}
	}
	reference := make([]uint64, 0, len(catalog))
	for x := range catalog {
		reference = append(reference, x)
	}

	opt := &pbs.Options{Seed: 42, StrongVerify: true}
	srv := pbs.NewServer(pbs.ServerOptions{Protocol: opt})
	if err := srv.Register(pbs.DefaultSetName, reference); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	fmt.Printf("serving %d IDs on %s\n", len(reference), ln.Addr())

	// 32 clients, each missing a different few hundred IDs and carrying a
	// few local extras, sync concurrently.
	const clients = 32
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local, drift := driftedCopy(reference, int64(i))
			c := &pbs.Client{Addr: ln.Addr().String(), Options: opt}
			res, err := c.Sync(local)
			if err != nil {
				log.Fatalf("client %d: %v", i, err)
			}
			if !res.Complete || len(res.Difference) != drift {
				log.Fatalf("client %d: got %d differences, want %d", i, len(res.Difference), drift)
			}
			fmt.Printf("client %2d: caught up %3d IDs in %d rounds, %5d wire bytes\n",
				i, len(res.Difference), res.Rounds, res.WireBytes)
		}(i)
	}
	wg.Wait()

	// Clients have all returned, but the last handlers may still be a beat
	// away from processing their final msgDone — let the drain finish them.
	srv.Shutdown(5 * time.Second)
	st := srv.Stats()
	fmt.Printf("server: %d sessions completed, %d rounds, %d B in, %d B out — one shared snapshot, zero per-session copies\n",
		st.Completed, st.Rounds, st.BytesIn, st.BytesOut)
}

// driftedCopy returns the reference set minus a client-specific slice of
// IDs plus a few IDs the server has never seen, and the drift size.
func driftedCopy(reference []uint64, seed int64) ([]uint64, int) {
	rng := rand.New(rand.NewSource(seed))
	missing := 100 + rng.Intn(200)
	local := append([]uint64(nil), reference[missing:]...)
	extras := 1 + rng.Intn(8)
	for j := 0; j < extras; j++ {
		// Catalog IDs are all odd; even IDs are guaranteed novel while
		// staying inside the default 32-bit signature space.
		local = append(local, uint64(0xFFFF0000+seed*32+int64(j)*2))
	}
	return local, missing + extras
}
