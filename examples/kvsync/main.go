// KV-store anti-entropy: the distributed-database motivation of §1.
//
// Two replicas of a key-value store drift apart (missed writes on either
// side). Anti-entropy runs PBS over the 32-bit key-version signatures using
// the explicit Session API across a real transport (net.Pipe), exactly as a
// production system would across TCP — demonstrating that the endpoints
// exchange only opaque byte messages.
//
// Run with: go run ./examples/kvsync
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"

	"pbs"
)

// replica is a toy KV store; the reconciled set contains signatures mixing
// the key and its version, so a stale value shows up as two differences
// (old signature on one side, new on the other).
type replica struct {
	name string
	data map[uint32]uint16 // key -> version
}

func (r *replica) signatures() []uint64 {
	out := make([]uint64, 0, len(r.data))
	for k, v := range r.data {
		out = append(out, sig(k, v))
	}
	return out
}

// sig packs a 23-bit key and an 8-bit version into a nonzero 32-bit
// signature. (A real system would hash key+version; packing keeps the demo
// decodable.)
func sig(key uint32, ver uint16) uint64 {
	return uint64(key&0x7FFFFF+1)<<8 | uint64(ver&0xFF)
}

func unpack(s uint64) (key uint32, ver uint16) {
	return uint32(s>>8) - 1, uint16(s & 0xFF)
}

func main() {
	rng := rand.New(rand.NewSource(5))
	primary := &replica{name: "primary", data: map[uint32]uint16{}}
	backup := &replica{name: "backup", data: map[uint32]uint16{}}

	for i := 0; i < 150_000; i++ {
		k := rng.Uint32() & 0x7FFFFF
		v := uint16(rng.Intn(200))
		primary.data[k] = v
		backup.data[k] = v
	}
	// Drift: writes the backup missed (new keys + version bumps).
	missed := 0
	for k := range primary.data {
		if missed >= 300 {
			break
		}
		primary.data[k]++
		missed++
	}
	for i := 0; i < 200; i++ {
		primary.data[rng.Uint32()&0x7FFFFF|0x400000] = 1
	}

	// Anti-entropy over a real byte-stream transport.
	connA, connB := net.Pipe()
	plan, err := pbs.PlanFor(1200, &pbs.Options{Seed: 31}) // provisioned bound on drift
	if err != nil {
		log.Fatal(err)
	}

	go func() { // backup side: responder loop
		resp, err := pbs.NewResponder(backup.signatures(), plan)
		if err != nil {
			log.Fatal(err)
		}
		for {
			msg, err := recvFrame(connB)
			if err != nil {
				return // initiator hung up: done
			}
			reply, err := resp.HandleRound(msg)
			if err != nil {
				log.Fatal(err)
			}
			if err := sendFrame(connB, reply); err != nil {
				return
			}
		}
	}()

	init, err := pbs.NewInitiator(primary.signatures(), plan)
	if err != nil {
		log.Fatal(err)
	}
	for !init.Done() {
		msg, err := init.BuildRound()
		if err != nil {
			log.Fatal(err)
		}
		if msg == nil {
			break
		}
		if err := sendFrame(connA, msg); err != nil {
			log.Fatal(err)
		}
		reply, err := recvFrame(connA)
		if err != nil {
			log.Fatal(err)
		}
		if err := init.AbsorbReply(reply); err != nil {
			log.Fatal(err)
		}
	}
	connA.Close()

	// Interpret the difference: which keys does the backup need?
	stale, fresh := 0, 0
	for _, s := range init.Difference() {
		key, ver := unpack(s)
		cur, ok := primary.data[key]
		switch {
		case ok && cur == ver: // primary-side signature: push key to backup
			backup.data[key] = ver
			fresh++
		default: // backup-side stale signature
			stale++
		}
	}
	fmt.Printf("anti-entropy finished in %d rounds: pushed %d key versions (%d stale signatures retired)\n",
		init.Rounds(), fresh, stale)

	// Verify convergence.
	same := len(primary.data) == len(backup.data)
	for k, v := range primary.data {
		if backup.data[k] != v {
			same = false
			break
		}
	}
	fmt.Printf("replicas converged: %v (%d keys)\n", same, len(primary.data))
}

// sendFrame / recvFrame implement trivial length-prefixed framing.
func sendFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func recvFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	b := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	_, err := io.ReadFull(r, b)
	return b, err
}
