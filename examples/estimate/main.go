// Estimator demo (§6): how the Tug-of-War sketch turns 336 bytes of
// communication into a difference-cardinality estimate accurate enough to
// parameterize PBS, and how the γ = 1.38 safety factor covers the true d
// ~99% of the time.
//
// Run with: go run ./examples/estimate
package main

import (
	"fmt"

	"pbs/internal/estimator"
	"pbs/internal/workload"
)

func main() {
	fmt.Println("ToW estimation of |A△B| with 128 sketches (paper §6):")
	fmt.Printf("%8s %10s %10s %10s %8s\n", "true d", "estimate", "1.38x est", "covered", "bytes")
	for _, d := range []int{10, 100, 1000, 10000} {
		pair := workload.MustGenerate(workload.Config{
			UniverseBits: 32, SizeA: 200_000, D: d, Seed: int64(d),
		})
		tow := estimator.MustNewToW(estimator.DefaultSketches, uint64(d)*3+1)
		ya := tow.Sketch(pair.A) // Alice sends these 128 integers...
		yb := tow.Sketch(pair.B) // ...Bob combines them with his own.
		dhat, err := tow.Estimate(ya, yb)
		if err != nil {
			panic(err)
		}
		scaled := estimator.ConservativeD(dhat, estimator.DefaultGamma)
		fmt.Printf("%8d %10.1f %10d %10v %8d\n",
			d, dhat, scaled, d <= scaled, tow.Bits(len(pair.A))/8)
	}

	fmt.Println("\ncoverage of Pr[d <= 1.38·d̂] across 200 independent hash draws (d=500):")
	pair := workload.MustGenerate(workload.Config{UniverseBits: 32, SizeA: 100_000, D: 500, Seed: 777})
	covered := 0
	for i := 0; i < 200; i++ {
		tow := estimator.MustNewToW(estimator.DefaultSketches, uint64(i))
		dhat, _ := tow.Estimate(tow.Sketch(pair.A), tow.Sketch(pair.B))
		if 500 <= estimator.ConservativeD(dhat, estimator.DefaultGamma) {
			covered++
		}
	}
	fmt.Printf("covered %d/200 (paper targets >= 99%%)\n", covered)
}
