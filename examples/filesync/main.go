// File synchronization: the cloud-storage motivation of §1 (Dropbox-style
// smart sync, where chunk signatures are synchronized far more often than
// chunk contents).
//
// Two directory replicas are modeled as pbs.Set handles of chunk
// signatures. The replicas reconcile over a real byte-stream connection
// with the Set API (Set.Sync against Set.Respond) — including the in-band
// Tug-of-War estimation phase and the strong multiset-hash verification —
// and exploit PBS's piecewise property: WithOnDelta streams differing
// signatures as each group pair verifies, so chunk transfers start before
// the protocol finishes.
//
// Run with: go run ./examples/filesync
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"pbs"
	"pbs/internal/hashutil"
)

// chunk is a content-addressed block of a file.
type chunk struct {
	file  string
	index int
	data  []byte
}

// signature derives the 32-bit chunk signature that the replicas reconcile.
func (c chunk) signature() uint64 {
	h := hashutil.XXH64(c.data, 0xF11E)
	h ^= hashutil.XXH64([]byte(c.file), uint64(c.index))
	s := h & 0xFFFFFFFF
	if s == 0 {
		s = 1
	}
	return s
}

type store struct {
	name   string
	chunks map[uint64]chunk // signature -> chunk
}

func (s *store) signatures() []uint64 {
	out := make([]uint64, 0, len(s.chunks))
	for sig := range s.chunks {
		out = append(out, sig)
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(12))
	laptop := &store{name: "laptop", chunks: map[uint64]chunk{}}
	cloud := &store{name: "cloud", chunks: map[uint64]chunk{}}

	// A synchronized baseline of 30k chunks across a few thousand files.
	for f := 0; f < 3000; f++ {
		name := fmt.Sprintf("docs/file-%04d.dat", f)
		for i := 0; i < 10; i++ {
			c := chunk{file: name, index: i, data: randBytes(rng, 64)}
			laptop.chunks[c.signature()] = c
			cloud.chunks[c.signature()] = c
		}
	}
	// Offline edits on the laptop: 120 chunks rewritten, 3 new files.
	edits := 0
	for sig, c := range laptop.chunks {
		if edits >= 120 {
			break
		}
		delete(laptop.chunks, sig)
		c.data = randBytes(rng, 64)
		laptop.chunks[c.signature()] = c
		edits++
	}
	for f := 0; f < 3; f++ {
		name := fmt.Sprintf("docs/new-%d.dat", f)
		for i := 0; i < 10; i++ {
			c := chunk{file: name, index: i, data: randBytes(rng, 64)}
			laptop.chunks[c.signature()] = c
		}
	}

	// Long-lived set handles: signatures are validated once and the
	// estimator sketch is maintained incrementally as chunks change.
	laptopSet, err := pbs.NewSet(laptop.signatures(), pbs.WithSeed(777), pbs.WithStrongVerify(true))
	if err != nil {
		log.Fatal(err)
	}
	cloudSet, err := pbs.NewSet(cloud.signatures(), pbs.WithSeed(777), pbs.WithStrongVerify(true))
	if err != nil {
		log.Fatal(err)
	}

	// Reconcile signatures over a connection, applying chunk transfers
	// round by round as group pairs verify (piecewise reconciliation).
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	connL, connC := net.Pipe()
	respErr := make(chan error, 1)
	go func() {
		respErr <- cloudSet.Respond(ctx, connC)
	}()
	var upload, retire int
	res, err := laptopSet.Sync(ctx, connL,
		pbs.WithOnDelta(func(sigs []uint64, round int) {
			// Signatures only the laptop holds are chunks to upload;
			// signatures only the cloud holds are stale versions to retire.
			for _, sig := range sigs {
				if c, mine := laptop.chunks[sig]; mine {
					cloud.chunks[sig] = c // "upload" the chunk body
					upload++
				} else {
					delete(cloud.chunks, sig)
					retire++
				}
			}
			fmt.Printf("  round %d: %d chunk transfers already under way\n", round, len(sigs))
		}))
	if err != nil {
		log.Fatal("initiator:", err)
	}
	if err := <-respErr; err != nil {
		log.Fatal("responder:", err)
	}

	fmt.Printf("sync complete=%v in %d rounds (strong verification passed)\n", res.Complete, res.Rounds)
	fmt.Printf("uploaded %d chunks, retired %d stale chunks\n", upload, retire)
	fmt.Printf("metadata traffic: %dB reconciliation + %dB estimator, for %d differing chunks out of %d\n",
		res.WireBytes-res.EstimatorBytes, res.EstimatorBytes, len(res.Difference), len(laptop.chunks))
	naive := len(cloud.chunks) * 4
	fmt.Printf("naive signature inventory would have been %dB (%.0fx more)\n",
		naive, float64(naive)/float64(res.WireBytes))

	// Verify replica equality.
	same := len(laptop.chunks) == len(cloud.chunks)
	for sig := range laptop.chunks {
		if _, ok := cloud.chunks[sig]; !ok {
			same = false
			break
		}
	}
	fmt.Printf("replicas identical: %v (%d chunks)\n", same, len(cloud.chunks))
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}
