// Quickstart: reconcile two in-memory sets with the one-call API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"pbs"
)

func main() {
	// Two hosts hold large, mostly overlapping sets of 32-bit item IDs.
	rng := rand.New(rand.NewSource(7))
	common := make([]uint64, 100_000)
	seen := map[uint64]bool{}
	for i := range common {
		for {
			x := uint64(rng.Uint32())
			if x != 0 && !seen[x] {
				seen[x] = true
				common[i] = x
				break
			}
		}
	}
	alice := append([]uint64{}, common...)
	bob := append([]uint64{}, common...)
	// Alice has 40 items Bob lacks; Bob has 25 items Alice lacks.
	for i := 0; i < 40; i++ {
		alice = append(alice, fresh(rng, seen))
	}
	for i := 0; i < 25; i++ {
		bob = append(bob, fresh(rng, seen))
	}

	// One call: estimate d, pick near-optimal parameters, run the rounds.
	res, err := pbs.Reconcile(alice, bob, &pbs.Options{Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(res.Difference, func(i, j int) bool { return res.Difference[i] < res.Difference[j] })
	fmt.Printf("reconciled: complete=%v |A△B|=%d rounds=%d\n",
		res.Complete, len(res.Difference), res.Rounds)
	fmt.Printf("cost: %d payload bytes + %d estimator bytes (theoretical minimum %d bytes)\n",
		res.PayloadBytes, res.EstimatorBytes, len(res.Difference)*4)

	union := pbs.Union(alice, res)
	fmt.Printf("after sync Alice holds %d items (was %d)\n", len(union), len(alice))

	// Syncing repeatedly? Hold pbs.Set handles instead: validation happens
	// once, the estimator sketch updates incrementally with Add/Remove, and
	// each Reconcile reuses the cached snapshot.
	setA, err := pbs.NewSet(union, pbs.WithSeed(2024))
	if err != nil {
		log.Fatal(err)
	}
	setB, err := pbs.NewSet(pbs.Union(bob, res), pbs.WithSeed(2024))
	if err != nil {
		log.Fatal(err)
	}
	setA.Add(fresh(rng, seen)) // new local item since the last sync
	res2, err := setA.Reconcile(context.Background(), setB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental re-sync: %d new difference(s) in %d round(s)\n",
		len(res2.Difference), res2.Rounds)
}

func fresh(rng *rand.Rand, seen map[uint64]bool) uint64 {
	for {
		x := uint64(rng.Uint32())
		if x != 0 && !seen[x] {
			seen[x] = true
			return x
		}
	}
}
